// Shared flag parsing for the command-line tools (same syntax as the bench
// binaries: --name value / --name=value).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace prodigy::tools {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "1";
      }
    }
  }

  double get(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  long long get(const std::string& name, long long fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  bool has(const std::string& name) const { return values_.contains(name); }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

[[noreturn]] inline void usage(const char* text) {
  std::fputs(text, stderr);
  std::exit(2);
}

}  // namespace prodigy::tools
