// prodigy_train — offline training (Fig. 3) from a DSOS snapshot.
//
//   prodigy_train --store store.dsos --out model_dir
//                 [--features 2000] [--epochs 300] [--batch 32] [--lr 1e-3]
//                 [--trim 60] [--system Eclipse] [--metrics-out PATH]
//
// Trains on every job in the snapshot: chi-square feature selection when the
// snapshot contains anomalous runs, variance ranking otherwise; the VAE is
// fitted to the healthy samples only and the bundle (weights + scaler +
// deployment metadata) is written to --out.
#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "tool_common.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace prodigy;
  const tools::Flags flags(argc, argv);
  if (!flags.has("store") || !flags.has("out")) {
    tools::usage("usage: prodigy_train --store FILE --out DIR "
                 "[--features K --epochs E --batch B --lr R --trim S "
                 "--metrics-out PATH]\n");
  }
  util::set_log_level(util::LogLevel::Info);

  const auto store = deploy::DsosStore::load(flags.get("store", std::string()));
  std::printf("loaded %zu jobs from %s\n", store.job_count(),
              flags.get("store", std::string()).c_str());

  deploy::TrainFromStoreOptions options;
  options.preprocess.trim_seconds = flags.get("trim", 60.0);
  options.top_k_features = static_cast<std::size_t>(flags.get("features", 2000LL));
  options.model.train.epochs = static_cast<std::size_t>(flags.get("epochs", 300LL));
  options.model.train.batch_size = static_cast<std::size_t>(flags.get("batch", 32LL));
  options.model.train.learning_rate = flags.get("lr", 1e-3);
  options.system_name = flags.get("system", std::string("Eclipse"));

  util::Timer timer;
  const auto service = deploy::AnalyticsService::train_from_store(
      store, store.job_ids(), options, /*explain=*/false);
  const std::string out = flags.get("out", std::string());
  service.bundle().save(out);

  std::printf("trained in %.1fs; threshold %.6f; %zu features; bundle -> %s\n",
              timer.elapsed_seconds(), service.bundle().detector.threshold(),
              service.bundle().metadata.feature_names.size(), out.c_str());
  if (flags.has("metrics-out")) {
    const auto path = flags.get("metrics-out", std::string());
    util::MetricsRegistry::global().write_file(path);
    std::printf("metrics -> %s\n", path.c_str());
  }
  return 0;
}
