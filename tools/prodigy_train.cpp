// prodigy_train — offline training (Fig. 3) from a DSOS snapshot.
//
//   prodigy_train --store store.dsos --out model_dir
//                 [--features 2000] [--epochs 300] [--batch 32] [--lr 1e-3]
//                 [--trim 60] [--system Eclipse] [--metrics-out PATH]
//
// Trains on every job in the snapshot: chi-square feature selection when the
// snapshot contains anomalous runs, variance ranking otherwise; the VAE is
// fitted to the healthy samples only and the bundle (weights + scaler +
// deployment metadata) is written to --out.
//
// Detector-zoo mode (construction via adapt::DetectorRegistry, the single
// source of truth for names/configs shared with the benches):
//
//   prodigy_train --store store.dsos --detector usad [--features K ...]
//   prodigy_train --list-detectors
//
// trains the named detector on the snapshot's feature dataset and reports
// its verdict counts (plus tuned macro-F1 when the snapshot is labeled)
// instead of writing a bundle — only the Prodigy VAE is deployable.
#include "adapt/detector_registry.hpp"
#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "eval/metrics.hpp"
#include "features/chi_square.hpp"
#include "pipeline/data_pipeline.hpp"
#include "pipeline/scaler.hpp"
#include "tool_common.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

#include <cstdio>

namespace {

using namespace prodigy;

/// The zoo path: same dataset flow as train_from_store (features -> select
/// -> scale) but through any registry detector; evaluation only, no bundle.
int run_zoo(const deploy::DsosStore& store, const tools::Flags& flags,
            const std::string& name) {
  auto& registry = adapt::DetectorRegistry::global();

  adapt::DetectorOptions options;
  options.epochs = static_cast<std::size_t>(flags.get("epochs", 300LL));
  options.batch_size = static_cast<std::size_t>(flags.get("batch", 32LL));
  options.learning_rate = flags.get("lr", 1e-3);
  options.usad_epochs = static_cast<std::size_t>(flags.get("usad-epochs", 100LL));

  pipeline::PreprocessOptions preprocess;
  preprocess.trim_seconds = flags.get("trim", 60.0);
  std::vector<telemetry::JobTelemetry> jobs;
  for (const auto job_id : store.job_ids()) jobs.push_back(store.query_job(job_id));
  auto dataset = pipeline::DataPipeline::build_from_jobs(jobs, preprocess);

  const auto top_k = static_cast<std::size_t>(flags.get("features", 2000LL));
  pipeline::Scaler select_scaler(pipeline::ScalerKind::MinMax);
  features::FeatureDataset scaled = dataset;
  scaled.X = select_scaler.fit_transform(dataset.X);
  const std::size_t anomalous = dataset.anomalous_count();
  const auto selection =
      (anomalous > 0 && anomalous < dataset.size())
          ? features::select_features_chi2(scaled, top_k)
          : features::select_features_variance(dataset, top_k);
  dataset = dataset.select_columns(selection.selected);
  pipeline::Scaler scaler(pipeline::ScalerKind::MinMax);
  dataset.X = scaler.fit_transform(dataset.X);

  auto detector = registry.make(name, options);
  std::printf("training %s on %zu samples x %zu features (%.1f%% anomalous)\n",
              registry.display_name(name).c_str(), dataset.size(),
              dataset.X.cols(), 100.0 * dataset.anomaly_ratio());
  util::Timer timer;
  detector->fit(dataset.X, dataset.labels);
  const double fit_seconds = timer.elapsed_seconds();

  const auto predictions = detector->predict(dataset.X);
  std::size_t flagged = 0;
  for (const int p : predictions) flagged += p != 0 ? 1 : 0;
  std::printf("fit in %.1fs; flags %zu of %zu samples\n", fit_seconds, flagged,
              predictions.size());
  if (anomalous > 0 && anomalous < dataset.size()) {
    detector->tune(dataset.X, dataset.labels);
    const auto tuned = detector->predict(dataset.X);
    std::printf("tuned macro-F1 %.4f\n",
                eval::macro_f1(dataset.labels, tuned));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Flags flags(argc, argv);
  if (flags.has("list-detectors")) {
    for (const auto& name : adapt::DetectorRegistry::global().names()) {
      std::printf("%-18s %s\n", name.c_str(),
                  adapt::DetectorRegistry::global().display_name(name).c_str());
    }
    return 0;
  }
  if (!flags.has("store") || (!flags.has("out") && !flags.has("detector"))) {
    tools::usage("usage: prodigy_train --store FILE --out DIR "
                 "[--features K --epochs E --batch B --lr R --trim S "
                 "--metrics-out PATH]\n"
                 "       prodigy_train --store FILE --detector NAME [...]\n"
                 "       prodigy_train --list-detectors\n");
  }
  util::set_log_level(util::LogLevel::Info);

  const auto store = deploy::DsosStore::load(flags.get("store", std::string()));
  std::printf("loaded %zu jobs from %s\n", store.job_count(),
              flags.get("store", std::string()).c_str());

  if (flags.has("detector")) {
    return run_zoo(store, flags, flags.get("detector", std::string("prodigy")));
  }

  deploy::TrainFromStoreOptions options;
  options.preprocess.trim_seconds = flags.get("trim", 60.0);
  options.top_k_features = static_cast<std::size_t>(flags.get("features", 2000LL));
  options.model.train.epochs = static_cast<std::size_t>(flags.get("epochs", 300LL));
  options.model.train.batch_size = static_cast<std::size_t>(flags.get("batch", 32LL));
  options.model.train.learning_rate = flags.get("lr", 1e-3);
  options.system_name = flags.get("system", std::string("Eclipse"));

  util::Timer timer;
  const auto service = deploy::AnalyticsService::train_from_store(
      store, store.job_ids(), options, /*explain=*/false);
  const std::string out = flags.get("out", std::string());
  service.bundle().save(out);

  std::printf("trained in %.1fs; threshold %.6f; %zu features; bundle -> %s\n",
              timer.elapsed_seconds(), service.bundle().detector.threshold(),
              service.bundle().metadata.feature_names.size(), out.c_str());
  if (flags.has("metrics-out")) {
    const auto path = flags.get("metrics-out", std::string());
    util::MetricsRegistry::global().write_file(path);
    std::printf("metrics -> %s\n", path.c_str());
  }
  return 0;
}
