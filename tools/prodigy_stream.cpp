// prodigy_stream — replay driver for the streaming subsystem: plays ldmsd-
// style 1 Hz telemetry into the StreamIngestor at a configurable real-time
// multiple and prints the alert stream (debounced state transitions).
//
//   prodigy_stream --model DIR [--app LAMMPS --nodes 32 --duration 300]
//                  [--anomaly memleak --intensity 1.0 --anomalous-nodes 1,3]
//                  [--drift 0.3] [--anomaly-start 0.5]
//                  [--seed 7] [--job-id 7001] [--speed 50]
//                  [--window 64 --hop 16 --debounce 3]
//                  [--adapt] [--adapt-warmup 64 --adapt-lambda 8
//                   --adapt-min-refit 64 --adapt-epochs 60 --adapt-sync]
//                  [--queue 256 --policy block|drop-oldest|drop-newest]
//                  [--flush-rows 256] [--verbose] [--verify-batch]
//                  [--replay FILE] [--out-store FILE] [--metrics-out PATH]
//   prodigy_stream --capture FILE [--app ... --nodes ... --duration ...]
//
// --speed is the real-time multiple (50 = fifty simulated seconds per wall
// second; 0 = unpaced firehose).  --capture writes the generated sample
// stream as a SampleBatch frame file and exits; --replay plays a frame file
// instead of generating.  --verify-batch re-scores every emitted window
// through the batch AnalyticsService path and fails (exit 1) on any verdict
// mismatch — the online and batch detectors must agree exactly.
//
// --drift ramps the healthy baseline toward a shifted operating point (the
// new normal); --anomaly-start delays the injected anomaly so it overlaps
// the drifted baseline.  --adapt hangs an AdaptiveModelManager off the
// scorer: drift detection on the verdict stream, reservoir refit, validated
// hot-swap — [drift]/[swap]/[refused] lines show the lifecycle, and the
// summary reports the adaptation counters.  --verify-batch compares against
// the frozen bundle and is therefore mutually exclusive with --adapt.
#include "adapt/model_manager.hpp"
#include "deploy/service.hpp"
#include "hpas/anomalies.hpp"
#include "stream/event_bus.hpp"
#include "stream/ingestor.hpp"
#include "stream/online_scorer.hpp"
#include "telemetry/app_profile.hpp"
#include "telemetry/generator.hpp"
#include "tool_common.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

namespace {

using namespace prodigy;

std::vector<std::size_t> parse_node_list(const std::string& csv) {
  std::vector<std::size_t> nodes;
  std::size_t start = 0;
  while (start < csv.size()) {
    const auto comma = csv.find(',', start);
    const auto token = csv.substr(start, comma - start);
    if (!token.empty()) nodes.push_back(std::stoul(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return nodes;
}

/// One frame per sample tick: row r of every node's series at timestamp t.
std::vector<stream::SampleBatch> batches_from_run(const telemetry::JobTelemetry& job) {
  std::size_t ticks = 0;
  for (const auto& node : job.nodes) ticks = std::max(ticks, node.values.rows());
  std::vector<stream::SampleBatch> batches;
  batches.reserve(ticks);
  for (std::size_t t = 0; t < ticks; ++t) {
    stream::SampleBatch batch;
    batch.sequence = t;
    for (const auto& node : job.nodes) {
      if (t >= node.values.rows()) continue;
      stream::SampleRow row;
      row.job_id = node.job_id;
      row.component_id = node.component_id;
      row.timestamp = static_cast<std::int64_t>(t);
      row.app = node.app;
      const auto values = node.values.row(t);
      row.values.assign(values.begin(), values.end());
      batch.rows.push_back(std::move(row));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

struct VerdictKey {
  std::int64_t job_id, component_id;
  std::uint64_t window_index;
  bool operator<(const VerdictKey& other) const {
    return std::tie(job_id, component_id, window_index) <
           std::tie(other.job_id, other.component_id, other.window_index);
  }
};

/// Re-scores every streamed window through the batch AnalyticsService path:
/// each window becomes one synthetic "node" of one synthetic job, analyzed
/// in a single batch request.  Online and batch verdicts must agree exactly.
int verify_against_batch(const deploy::DsosStore& store,
                         const core::ModelBundle& bundle,
                         const stream::OnlineScorerConfig& scorer_config,
                         const std::map<VerdictKey, stream::VerdictEvent>& verdicts) {
  if (verdicts.empty()) {
    std::printf("verify-batch: no windows were scored\n");
    return 1;
  }
  telemetry::JobTelemetry oracle_job;
  oracle_job.job_id = 1;
  oracle_job.app = "verify";
  std::vector<const stream::VerdictEvent*> order;
  for (const auto& [key, event] : verdicts) {
    const auto series = store.query_node(key.job_id, key.component_id);
    telemetry::NodeSeries window;
    window.job_id = 1;
    window.component_id = static_cast<std::int64_t>(order.size());
    window.app = oracle_job.app;
    window.values = series.values.slice_rows(
        static_cast<std::size_t>(key.window_index) * scorer_config.hop,
        scorer_config.window);
    oracle_job.nodes.push_back(std::move(window));
    order.push_back(&event);
  }
  deploy::DsosStore oracle_store;
  oracle_store.ingest(oracle_job);
  const deploy::AnalyticsService service(oracle_store, bundle,
                                         scorer_config.preprocess,
                                         /*explain=*/false);
  const deploy::JobAnalysis analysis = service.analyze_job(1);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& batch_verdict = analysis.nodes[i];
    const auto& online = *order[i];
    if (batch_verdict.score != online.score ||
        batch_verdict.anomalous != online.anomalous) {
      ++mismatches;
      std::printf("verify-batch MISMATCH job %lld node %lld window %llu: "
                  "online score %.17g (%s) vs batch %.17g (%s)\n",
                  static_cast<long long>(online.job_id),
                  static_cast<long long>(online.component_id),
                  static_cast<unsigned long long>(online.window_index),
                  online.score, online.anomalous ? "anomalous" : "healthy",
                  batch_verdict.score,
                  batch_verdict.anomalous ? "anomalous" : "healthy");
    }
  }
  std::printf("verify-batch: %zu windows compared against batch "
              "AnalyticsService scoring, %zu mismatches\n",
              order.size(), mismatches);
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Flags flags(argc, argv);
  const bool capture_only = flags.has("capture");
  if (!capture_only && !flags.has("model")) {
    tools::usage(
        "usage: prodigy_stream --model DIR [--app NAME --nodes N --duration S]\n"
        "                      [--anomaly KIND --intensity X --anomalous-nodes 1,3]\n"
        "                      [--drift X] [--anomaly-start F]\n"
        "                      [--seed S] [--job-id ID] [--speed X]\n"
        "                      [--window W --hop H --debounce K]\n"
        "                      [--adapt] [--adapt-warmup N --adapt-lambda X\n"
        "                       --adapt-min-refit N --adapt-epochs E --adapt-sync]\n"
        "                      [--queue CAP --policy block|drop-oldest|drop-newest]\n"
        "                      [--flush-rows N] [--verbose] [--verify-batch]\n"
        "                      [--replay FILE] [--out-store FILE] [--metrics-out PATH]\n"
        "       prodigy_stream --capture FILE [generation flags]\n");
  }
  util::set_log_level(util::LogLevel::Warn);

  // --- Acquire the sample stream: replay a capture file or generate a run.
  std::vector<stream::SampleBatch> batches;
  if (flags.has("replay")) {
    util::BinaryReader reader(flags.get("replay", std::string()));
    while (!reader.at_end()) {
      batches.push_back(stream::SampleBatch::read_frame(reader));
    }
  } else {
    telemetry::RunConfig config;
    config.app = telemetry::application_by_name(flags.get("app", std::string("LAMMPS")));
    config.job_id = flags.get("job-id", 7001LL);
    config.num_nodes = static_cast<std::size_t>(flags.get("nodes", 32LL));
    config.duration_s = flags.get("duration", 300.0);
    config.seed = static_cast<std::uint64_t>(flags.get("seed", 7LL));
    config.first_component_id = config.job_id * 100;
    if (flags.has("anomaly")) {
      config.anomaly.kind =
          hpas::anomaly_kind_from_string(flags.get("anomaly", std::string()));
      config.anomaly.intensity = flags.get("intensity", 1.0);
      config.anomaly.config = flags.get("anomaly", std::string());
      config.anomalous_nodes =
          parse_node_list(flags.get("anomalous-nodes", std::string()));
    }
    config.baseline_drift = flags.get("drift", 0.0);
    config.anomaly_start_frac = flags.get("anomaly-start", 0.0);
    batches = batches_from_run(telemetry::generate_run(config));
  }
  std::size_t total_samples = 0;
  for (const auto& batch : batches) total_samples += batch.sample_count();

  if (capture_only) {
    util::BinaryWriter writer(flags.get("capture", std::string()));
    for (const auto& batch : batches) batch.write_frame(writer);
    std::printf("captured %zu frames (%zu samples) to %s\n", batches.size(),
                total_samples, flags.get("capture", std::string()).c_str());
    return 0;
  }

  // --- Wire the subsystem: ingestor -> windows -> scorer -> alert bus.
  auto bundle = core::ModelBundle::load(flags.get("model", std::string()));

  stream::EventBusConfig bus_config;
  bus_config.debounce_windows =
      static_cast<std::size_t>(flags.get("debounce", 3LL));
  stream::EventBus bus(bus_config);

  const bool verbose = flags.has("verbose");
  const bool verify = flags.has("verify-batch");
  const bool adapt = flags.has("adapt");
  if (verify && adapt) {
    tools::usage("--verify-batch compares against the frozen bundle and "
                 "cannot be combined with --adapt\n");
  }
  std::mutex print_mutex;
  std::map<VerdictKey, stream::VerdictEvent> verdicts;
  bus.subscribe([&](const stream::VerdictEvent& event) {
    std::lock_guard lock(print_mutex);
    if (verify) {
      verdicts[{event.job_id, event.component_id, event.window_index}] = event;
    }
    if (verbose) {
      std::printf("[window] t=%lld..%lld job %lld node %lld: %s score %.6f "
                  "(threshold %.6f)\n",
                  static_cast<long long>(event.window_start_ts),
                  static_cast<long long>(event.window_end_ts),
                  static_cast<long long>(event.job_id),
                  static_cast<long long>(event.component_id),
                  event.anomalous ? "ANOMALOUS" : "healthy", event.score,
                  event.threshold);
    }
  });
  bus.subscribe_transitions([&](const stream::TransitionEvent& event) {
    std::lock_guard lock(print_mutex);
    if (event.initial && !event.anomalous && !verbose) return;  // quiet onboarding
    std::printf("[alert] t=%lld..%lld job %lld node %lld: %s%s (score %.6f vs "
                "threshold %.6f, confirmed x%llu)\n",
                static_cast<long long>(event.window_start_ts),
                static_cast<long long>(event.window_end_ts),
                static_cast<long long>(event.job_id),
                static_cast<long long>(event.component_id),
                event.anomalous ? "ANOMALOUS" : "recovered (healthy)",
                event.initial ? " [initial]" : "", event.score, event.threshold,
                static_cast<unsigned long long>(event.consecutive));
  });

  // The manager must outlive the scorer (the scorer calls back into it from
  // scoring tasks), so it is declared first.
  std::unique_ptr<adapt::AdaptiveModelManager> manager;
  if (adapt) {
    bus.subscribe_drift([&](const stream::DriftEvent& event) {
      std::lock_guard lock(print_mutex);
      const char* what = event.kind == stream::DriftEvent::Kind::DriftDetected
                             ? "DRIFT detected"
                             : (event.kind == stream::DriftEvent::Kind::ModelSwapped
                                    ? "model SWAPPED in"
                                    : "candidate REFUSED");
      std::printf("[adapt] %s: generation %llu, statistic %.3f (model "
                  "threshold %.3f), %llu reservoir samples\n",
                  what, static_cast<unsigned long long>(event.generation),
                  event.statistic, event.threshold,
                  static_cast<unsigned long long>(event.reservoir_samples));
    });
    adapt::AdaptationConfig adapt_config;
    adapt_config.drift.warmup_observations =
        static_cast<std::size_t>(flags.get("adapt-warmup", 64LL));
    adapt_config.drift.lambda = flags.get("adapt-lambda", 8.0);
    adapt_config.min_refit_samples =
        static_cast<std::size_t>(flags.get("adapt-min-refit", 64LL));
    adapt_config.refit_epochs =
        static_cast<std::size_t>(flags.get("adapt-epochs", 60LL));
    adapt_config.synchronous = flags.has("adapt-sync");
    manager = std::make_unique<adapt::AdaptiveModelManager>(
        bundle, adapt_config, &bus, "stream");
  }

  stream::OnlineScorerConfig scorer_config;
  scorer_config.window = static_cast<std::size_t>(flags.get("window", 64LL));
  scorer_config.hop = static_cast<std::size_t>(flags.get("hop", 16LL));
  scorer_config.model_provider = manager.get();
  stream::OnlineScorer scorer(bundle, bus, scorer_config);

  deploy::DsosStore store;
  stream::IngestorConfig ingest_config;
  ingest_config.queue_capacity = static_cast<std::size_t>(flags.get("queue", 256LL));
  ingest_config.policy =
      stream::backpressure_policy_from_string(flags.get("policy", std::string("block")));
  ingest_config.flush_rows = static_cast<std::size_t>(flags.get("flush-rows", 256LL));
  stream::StreamIngestor ingestor(store, ingest_config, &scorer);

  // --- Replay, paced at --speed x real time (1 Hz samplers).
  const double speed = flags.get("speed", 50.0);
  util::Timer wall;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < batches.size(); ++t) {
    if (speed > 0.0) {
      const auto due = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(t / speed));
      std::this_thread::sleep_until(due);
    }
    ingestor.offer(std::move(batches[t]));
  }
  const std::size_t ticks = batches.size();
  ingestor.stop();   // drain the queue, flush pending rows
  scorer.drain();    // wait for every scheduled window to publish
  const double elapsed = wall.elapsed_seconds();

  // --- Summary.
  const auto stats = ingestor.stats();
  char target_note[48] = "";
  if (speed > 0) {
    std::snprintf(target_note, sizeof(target_note), " (target %gx)", speed);
  }
  std::printf("\nreplayed %zu ticks (%zu samples) in %.3fs — %.0f samples/s, "
              "%.1fx real time%s\n",
              ticks, total_samples, elapsed,
              elapsed > 0 ? static_cast<double>(stats.flushed_samples) / elapsed : 0.0,
              elapsed > 0 ? static_cast<double>(ticks) / elapsed : 0.0,
              target_note);
  std::printf("ingest: %llu offered, %llu flushed, %llu dropped (%s), "
              "%llu duplicate, %llu late, %llu malformed, %llu flushes\n",
              static_cast<unsigned long long>(stats.offered_samples),
              static_cast<unsigned long long>(stats.flushed_samples),
              static_cast<unsigned long long>(stats.dropped_samples),
              to_string(ingest_config.policy).c_str(),
              static_cast<unsigned long long>(stats.duplicate_samples),
              static_cast<unsigned long long>(stats.late_samples),
              static_cast<unsigned long long>(stats.malformed_samples),
              static_cast<unsigned long long>(stats.flushes));
  std::printf("scoring: %llu windows (W=%zu H=%zu), %llu errors; alerts: %llu "
              "transitions, %llu verdicts debounced away\n",
              static_cast<unsigned long long>(scorer.windows_scored()),
              scorer_config.window, scorer_config.hop,
              static_cast<unsigned long long>(scorer.score_errors()),
              static_cast<unsigned long long>(bus.transitions_published()),
              static_cast<unsigned long long>(bus.suppressed()));
  if (manager) {
    manager->stop();  // join the refit worker before reading the counters
    const auto adapt_stats = manager->adaptation_stats();
    std::printf("adaptation: generation %llu, %llu drifts, %llu refits, "
                "%llu swaps, %llu refusals, %llu/%llu reservoir samples kept\n",
                static_cast<unsigned long long>(adapt_stats.generation),
                static_cast<unsigned long long>(adapt_stats.drifts_detected),
                static_cast<unsigned long long>(adapt_stats.refits_started),
                static_cast<unsigned long long>(adapt_stats.swaps_completed),
                static_cast<unsigned long long>(adapt_stats.swaps_refused),
                static_cast<unsigned long long>(adapt_stats.reservoir_samples),
                static_cast<unsigned long long>(adapt_stats.reservoir_offered));
  }

  if (flags.has("out-store")) {
    const auto path = flags.get("out-store", std::string());
    store.save(path);
    std::printf("store (%zu jobs, %zu datapoints) -> %s\n", store.job_count(),
                store.datapoint_count(), path.c_str());
  }

  int exit_code = 0;
  if (verify) {
    exit_code = verify_against_batch(store, bundle, scorer_config, verdicts);
  }
  if (flags.has("metrics-out")) {
    const auto path = flags.get("metrics-out", std::string());
    util::MetricsRegistry::global().write_file(path);
    std::fprintf(stderr, "metrics -> %s\n", path.c_str());
  }
  return exit_code;
}
