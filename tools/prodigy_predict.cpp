// prodigy_predict — the Fig. 4 dashboard request as a command-line call.
//
//   prodigy_predict --store store.dsos --model model_dir --job 1234
//                   [--trim 60] [--all] [--report] [--metrics-out PATH]
//
// --report prints the markdown dashboard block instead of plain lines.
// --metrics-out dumps the process metrics registry on exit (JSON when PATH
// ends in .json, Prometheus text otherwise).
//
// Prints one verdict per compute node of the job (or of every job with
// --all), exactly what the Grafana anomaly-detection dashboard displays.
#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "tool_common.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace prodigy;
  const tools::Flags flags(argc, argv);
  if (!flags.has("store") || !flags.has("model") ||
      (!flags.has("job") && !flags.has("all"))) {
    tools::usage("usage: prodigy_predict --store FILE --model DIR "
                 "(--job ID | --all) [--trim S] [--metrics-out PATH]\n");
  }
  util::set_log_level(util::LogLevel::Warn);

  const auto store = deploy::DsosStore::load(flags.get("store", std::string()));
  auto bundle = core::ModelBundle::load(flags.get("model", std::string()));
  pipeline::PreprocessOptions preprocess;
  preprocess.trim_seconds = flags.get("trim", 60.0);
  const deploy::AnalyticsService service(store, std::move(bundle), preprocess,
                                         /*explain=*/false);

  std::vector<std::int64_t> jobs;
  if (flags.has("all")) {
    jobs = store.job_ids();
  } else {
    jobs.push_back(flags.get("job", 0LL));
  }

  const bool report = flags.has("report");
  std::size_t anomalous_nodes = 0, total_nodes = 0;
  for (const auto job_id : jobs) {
    const auto analysis = service.analyze_job(job_id);
    if (report) {
      std::fputs(deploy::render_markdown_report(analysis).c_str(), stdout);
      for (const auto& node : analysis.nodes) {
        anomalous_nodes += node.anomalous ? 1 : 0;
        ++total_nodes;
      }
      continue;
    }
    std::printf("job %lld (%s): %.2fs\n", static_cast<long long>(analysis.job_id),
                analysis.app.c_str(), analysis.seconds);
    for (const auto& node : analysis.nodes) {
      std::printf("  component %lld: %-9s score %.6f (threshold %.6f)\n",
                  static_cast<long long>(node.component_id),
                  node.anomalous ? "ANOMALOUS" : "healthy", node.score,
                  node.threshold);
      anomalous_nodes += node.anomalous ? 1 : 0;
      ++total_nodes;
    }
  }
  if (jobs.size() > 1) {
    std::printf("\n%zu / %zu nodes anomalous across %zu jobs\n", anomalous_nodes,
                total_nodes, jobs.size());
  }
  if (flags.has("metrics-out")) {
    const auto path = flags.get("metrics-out", std::string());
    util::MetricsRegistry::global().write_file(path);
    std::fprintf(stderr, "metrics -> %s\n", path.c_str());
  }
  return 0;
}
