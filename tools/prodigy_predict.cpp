// prodigy_predict — the Fig. 4 dashboard request as a command-line call.
//
//   prodigy_predict --store store.dsos --model model_dir --job 1234
//                   [--trim 60] [--all] [--jobs N] [--concurrency K]
//                   [--repeat R] [--cache CAP] [--precision full|bf16|int8]
//                   [--report] [--metrics-out PATH]
//
// --precision selects the fused VAE inference plan's weight precision
// (default full = fp64, bit-exact; bf16/int8 trade a bounded F1 delta for
// scoring latency — see docs/performance.md).
// --report prints the markdown dashboard block instead of plain lines.
// --metrics-out dumps the process metrics registry on exit (JSON when PATH
// ends in .json, Prometheus text otherwise).
//
// Prints one verdict per compute node of the job (or of every job with
// --all; --jobs N takes the first N jobs of the store).  With --concurrency
// and/or --repeat the tool switches to throughput mode: K client threads
// analyze the selected jobs R times each (round-robin over a shared work
// queue, exercising the service result cache) and report jobs/sec plus
// latency percentiles instead of per-node verdict lines.
#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "tool_common.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

namespace {

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prodigy;
  const tools::Flags flags(argc, argv);
  if (!flags.has("store") || !flags.has("model") ||
      (!flags.has("job") && !flags.has("all") && !flags.has("jobs"))) {
    tools::usage("usage: prodigy_predict --store FILE --model DIR "
                 "(--job ID | --all | --jobs N) [--trim S] [--concurrency K] "
                 "[--repeat R] [--cache CAP] [--precision full|bf16|int8] "
                 "[--report] [--metrics-out PATH]\n");
  }
  util::set_log_level(util::LogLevel::Warn);

  const auto store = deploy::DsosStore::load(flags.get("store", std::string()));
  auto bundle = core::ModelBundle::load(flags.get("model", std::string()));
  const auto precision_name = flags.get("precision", std::string("full"));
  bundle.detector.set_inference_precision(
      nn::plan_precision_from_string(precision_name));
  pipeline::PreprocessOptions preprocess;
  preprocess.trim_seconds = flags.get("trim", 60.0);
  deploy::AnalyticsService service(store, std::move(bundle), preprocess,
                                   /*explain=*/false);
  service.set_cache_capacity(
      static_cast<std::size_t>(flags.get("cache", 128LL)));

  std::vector<std::int64_t> jobs;
  if (flags.has("all")) {
    jobs = store.job_ids();
  } else if (flags.has("jobs")) {
    jobs = store.job_ids();
    const auto limit = static_cast<std::size_t>(flags.get("jobs", 0LL));
    if (jobs.size() > limit) jobs.resize(limit);
  } else {
    jobs.push_back(flags.get("job", 0LL));
  }

  const auto concurrency =
      std::max<std::size_t>(1, static_cast<std::size_t>(flags.get("concurrency", 1LL)));
  const auto repeat =
      std::max<std::size_t>(1, static_cast<std::size_t>(flags.get("repeat", 1LL)));

  if (concurrency > 1 || repeat > 1) {
    // Throughput mode: K client threads drain a shared queue of job requests.
    std::vector<std::int64_t> work;
    work.reserve(jobs.size() * repeat);
    for (std::size_t r = 0; r < repeat; ++r) {
      work.insert(work.end(), jobs.begin(), jobs.end());
    }
    std::vector<double> latencies(work.size(), 0.0);
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> anomalous_nodes{0}, total_nodes{0}, cache_hits{0};

    util::Timer wall;
    std::vector<std::thread> clients;
    clients.reserve(concurrency);
    for (std::size_t t = 0; t < concurrency; ++t) {
      clients.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= work.size()) return;
          util::Timer request;
          const auto analysis = service.analyze_job(work[i]);
          latencies[i] = request.elapsed_seconds();
          std::size_t bad = 0;
          for (const auto& node : analysis.nodes) bad += node.anomalous ? 1 : 0;
          anomalous_nodes.fetch_add(bad, std::memory_order_relaxed);
          total_nodes.fetch_add(analysis.nodes.size(), std::memory_order_relaxed);
          if (analysis.from_cache) {
            cache_hits.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& client : clients) client.join();
    const double elapsed = wall.elapsed_seconds();

    std::sort(latencies.begin(), latencies.end());
    std::printf("analyzed %zu requests (%zu jobs x %zu repeats) on %zu client "
                "threads in %.3fs\n",
                work.size(), jobs.size(), repeat, concurrency, elapsed);
    std::printf("throughput %.1f jobs/s; latency p50 %.4fs p95 %.4fs p99 %.4fs; "
                "%zu cache hits\n",
                elapsed > 0 ? static_cast<double>(work.size()) / elapsed : 0.0,
                percentile(latencies, 0.50), percentile(latencies, 0.95),
                percentile(latencies, 0.99),
                cache_hits.load(std::memory_order_relaxed));
    std::printf("%zu / %zu nodes anomalous across %zu jobs\n",
                anomalous_nodes.load(std::memory_order_relaxed),
                total_nodes.load(std::memory_order_relaxed), jobs.size());
  } else {
    const bool report = flags.has("report");
    std::size_t anomalous_nodes = 0, total_nodes = 0;
    for (const auto job_id : jobs) {
      const auto analysis = service.analyze_job(job_id);
      if (report) {
        std::fputs(deploy::render_markdown_report(analysis).c_str(), stdout);
        for (const auto& node : analysis.nodes) {
          anomalous_nodes += node.anomalous ? 1 : 0;
          ++total_nodes;
        }
        continue;
      }
      std::printf("job %lld (%s): %.2fs\n", static_cast<long long>(analysis.job_id),
                  analysis.app.c_str(), analysis.seconds);
      for (const auto& node : analysis.nodes) {
        std::printf("  component %lld: %-9s score %.6f (threshold %.6f)\n",
                    static_cast<long long>(node.component_id),
                    node.anomalous ? "ANOMALOUS" : "healthy", node.score,
                    node.threshold);
        anomalous_nodes += node.anomalous ? 1 : 0;
        ++total_nodes;
      }
    }
    if (jobs.size() > 1) {
      std::printf("\n%zu / %zu nodes anomalous across %zu jobs\n", anomalous_nodes,
                  total_nodes, jobs.size());
    }
  }
  if (flags.has("metrics-out")) {
    const auto path = flags.get("metrics-out", std::string());
    util::MetricsRegistry::global().write_file(path);
    std::fprintf(stderr, "metrics -> %s\n", path.c_str());
  }
  return 0;
}
