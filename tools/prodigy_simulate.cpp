// prodigy_simulate — generate LDMS-style telemetry into a DSOS snapshot.
//
//   prodigy_simulate --out store.dsos [--system Eclipse|Volta]
//                    [--scale 0.02] [--duration 300] [--seed 1]
//                    [--metrics-out PATH]
//   prodigy_simulate --out store.dsos --app LAMMPS --jobs 5 --nodes 4 \
//                    [--anomaly memleak --intensity 1.0 --anomalous-nodes 1,3]
//
// Two modes: a whole system collection (the §5.2 ground-truth methodology,
// healthy + Table-2 anomaly runs), or explicit runs of one application.
#include "deploy/dsos.hpp"
#include "telemetry/dataset_builder.hpp"
#include "tool_common.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

#include <cstdio>

namespace {

std::vector<std::size_t> parse_node_list(const std::string& csv) {
  std::vector<std::size_t> nodes;
  std::size_t start = 0;
  while (start < csv.size()) {
    const auto comma = csv.find(',', start);
    const auto token = csv.substr(start, comma - start);
    if (!token.empty()) nodes.push_back(std::stoul(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return nodes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prodigy;
  const tools::Flags flags(argc, argv);
  if (!flags.has("out")) {
    tools::usage("usage: prodigy_simulate --out FILE "
                 "[--system Eclipse|Volta --scale S | --app NAME --jobs N]\n");
  }
  util::set_log_level(util::LogLevel::Warn);
  deploy::DsosStore store;

  if (flags.has("app")) {
    // Explicit runs of one application.
    const auto app = telemetry::application_by_name(flags.get("app", std::string()));
    const auto jobs = flags.get("jobs", 5LL);
    util::Rng rng(static_cast<std::uint64_t>(flags.get("seed", 1LL)));
    for (long long j = 0; j < jobs; ++j) {
      telemetry::RunConfig config;
      config.app = app;
      config.job_id = flags.get("first-job-id", 1000LL) + j;
      config.num_nodes = static_cast<std::size_t>(flags.get("nodes", 4LL));
      config.duration_s = flags.get("duration", 300.0);
      config.seed = rng();
      config.first_component_id = config.job_id * 100;
      if (flags.has("anomaly")) {
        config.anomaly.kind =
            hpas::anomaly_kind_from_string(flags.get("anomaly", std::string()));
        config.anomaly.intensity = flags.get("intensity", 1.0);
        config.anomaly.config = flags.get("anomaly", std::string());
        config.anomalous_nodes =
            parse_node_list(flags.get("anomalous-nodes", std::string()));
        config.duration_s *= hpas::expected_slowdown(config.anomaly);
      }
      store.ingest(telemetry::generate_run(config));
    }
  } else {
    // Whole-system ground-truth collection.
    const std::string system = flags.get("system", std::string("Eclipse"));
    telemetry::DatasetSpec spec =
        system == "Volta"
            ? telemetry::volta_dataset_spec(flags.get("scale", 0.02),
                                            flags.get("duration", 300.0))
            : telemetry::eclipse_dataset_spec(flags.get("scale", 0.02),
                                              flags.get("duration", 300.0));
    spec.seed ^= static_cast<std::uint64_t>(flags.get("seed", 1LL));
    telemetry::for_each_run(
        spec, [&store](const telemetry::JobTelemetry& job) { store.ingest(job); });
  }

  const std::string out = flags.get("out", std::string());
  store.save(out);
  std::printf("wrote %zu jobs (%zu datapoints) to %s\n", store.job_count(),
              store.datapoint_count(), out.c_str());
  if (flags.has("metrics-out")) {
    const auto path = flags.get("metrics-out", std::string());
    util::MetricsRegistry::global().write_file(path);
    std::printf("metrics -> %s\n", path.c_str());
  }
  return 0;
}
