// §5.4.3 ablation: anomaly-detection F1 as a function of the number of
// chi-square-selected features.  The paper sweeps the top 250, 500, 1000 and
// 2000 of TSFRESH's 794-per-metric feature space and finds 2000 best.  Our
// registry yields ~3400 columns (48 metrics x ~70 features), so the sweep
// covers the same fractions of the space.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace prodigy;
  util::set_log_level(util::LogLevel::Warn);
  const bench::Flags flags(argc, argv);
  auto data_options = bench::dataset_options_from_flags(flags);
  const auto model_options = bench::model_options_from_flags(flags);
  const std::size_t rounds = flags.get("rounds", static_cast<std::size_t>(3));

  // Build once with ALL columns; sweep selects subsets.
  data_options.top_k_features = static_cast<std::size_t>(-1);
  // Eclipse: the Table-2 mix is dominated (in chi-square rank) by memleak
  // features, so contention anomalies only become detectable once the
  // selection digs deep enough — reproducing the paper's finding that more
  // features (2000) outperform small selections.
  telemetry::DatasetSpec spec =
      telemetry::eclipse_dataset_spec(data_options.scale, data_options.duration_s);
  spec.seed ^= data_options.seed;
  pipeline::PreprocessOptions preprocess;
  preprocess.trim_seconds = data_options.trim_seconds;
  const auto dataset = pipeline::DataPipeline::build_dataset(spec, preprocess);
  std::printf("# %zu samples, %zu candidate features\n", dataset.size(),
              dataset.X.cols());

  pipeline::Scaler scaler(pipeline::ScalerKind::MinMax);
  features::FeatureDataset scaled = dataset;
  scaled.X = scaler.fit_transform(dataset.X);
  const auto scores = features::chi2_scores(scaled.X, scaled.labels);

  std::printf("\n=== Feature-count sweep (paper §5.4.3: top 250/500/1000/2000) ===\n");
  std::printf("%10s %10s %10s\n", "features", "mean_F1", "stddev");
  util::CsvTable csv;
  csv.header = {"features", "mean_f1", "stddev"};

  for (const std::size_t k : {64u, 128u, 250u, 500u, 1000u, 2000u}) {
    if (k > dataset.X.cols()) break;
    const auto selected = features::top_k_indices(scores, k);
    const auto subset = dataset.select_columns(selected);
    const auto result = eval::repeated_prodigy_eval(
        [&] {
          return std::make_unique<core::ProdigyDetector>(
              bench::prodigy_config(model_options));
        },
        subset, rounds, 42 + data_options.seed, {}, 0.2, 0.1);
    std::printf("%10zu %10.3f %10.3f\n", static_cast<std::size_t>(k),
                result.mean_f1(), result.stddev_f1());
    csv.rows.push_back({std::to_string(k), std::to_string(result.mean_f1()),
                        std::to_string(result.stddev_f1())});
  }

  const std::string out = flags.get("out", std::string("feature_sweep_results.csv"));
  util::write_csv(out, csv);
  std::printf("# results written to %s\n", out.c_str());
  return 0;
}
