// Figure 7 (paper §6.2): per-node anomaly verdicts and CoMTE counterfactual
// explanations for a job with the memleak anomaly.  The paper's "Chosen Job"
// runs Empire on 4 nodes with memleak injected on a subset; CoMTE's top
// explanation metrics were MemFree::meminfo and pgrotated::vmstat — MemFree
// shows a clear decreasing trend on the anomalous nodes.
//
// This bench reproduces the whole Grafana request flow (Figs. 2-4): DSOS
// ingest -> DataGenerator -> DataPipeline -> AnomalyDetector -> CoMTE, and
// prints the verdicts, explanations, and the MemFree trend statistics.
#include "bench_common.hpp"

#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "telemetry/metrics.hpp"
#include "tensor/stats.hpp"

int main(int argc, char** argv) {
  using namespace prodigy;
  util::set_log_level(util::LogLevel::Warn);
  const bench::Flags flags(argc, argv);
  const double duration = flags.get("duration", 240.0);
  const std::size_t healthy_jobs = flags.get("healthy-jobs", static_cast<std::size_t>(6));
  const auto model_options = bench::model_options_from_flags(flags);

  // The paper's Fig. 7 shows Empire runs; a leaner default app keeps the slow
  // leak below the reclaim threshold so the counterfactual stays compact.
  const std::string app_name = flags.get("app", std::string("LAMMPS"));
  deploy::DsosStore store;
  std::vector<std::int64_t> train_jobs;
  util::Rng seed_rng(flags.get("seed", static_cast<std::size_t>(13)));

  // Healthy Empire runs for training, plus two memleak runs so the offline
  // chi-square selection has anomalous samples (paper: 24 suffice).
  const hpas::AnomalySpec memleak{hpas::AnomalyKind::Memleak, 1.0, "-s 10M -p 1"};
  for (std::size_t j = 0; j < healthy_jobs; ++j) {
    telemetry::RunConfig config;
    config.app = telemetry::application_by_name(app_name);
    config.job_id = static_cast<std::int64_t>(100 + j);
    config.num_nodes = 4;
    config.duration_s = duration;
    config.seed = seed_rng();
    config.first_component_id = config.job_id * 10;
    store.ingest(telemetry::generate_run(config));
    train_jobs.push_back(config.job_id);
  }
  for (std::size_t j = 0; j < 2; ++j) {
    telemetry::RunConfig config;
    config.app = telemetry::application_by_name(app_name);
    config.job_id = static_cast<std::int64_t>(200 + j);
    config.num_nodes = 4;
    config.duration_s = duration;
    config.seed = seed_rng();
    config.anomaly = memleak;
    config.first_component_id = config.job_id * 10;
    store.ingest(telemetry::generate_run(config));
    train_jobs.push_back(config.job_id);
  }

  // The "Chosen Job": a slow in-the-wild leak on nodes 1 and 3 — small
  // enough that the node barely reaches reclaim, which keeps the
  // counterfactual compact like the paper's two-metric example (MemFree +
  // pgrotated).
  const hpas::AnomalySpec mild_memleak{hpas::AnomalyKind::Memleak, 0.25,
                                       "-s 1M -p 0.1 (slow leak)"};
  telemetry::RunConfig chosen;
  chosen.app = telemetry::application_by_name(app_name);
  chosen.job_id = 999;
  chosen.num_nodes = 4;
  chosen.duration_s = duration;
  chosen.seed = seed_rng();
  chosen.anomaly = mild_memleak;
  chosen.anomalous_nodes = {1, 3};
  chosen.first_component_id = 12;  // the paper's example mentions node 12 & 66
  store.ingest(telemetry::generate_run(chosen));

  deploy::TrainFromStoreOptions options;
  options.preprocess.trim_seconds = flags.get("trim", 30.0);
  options.top_k_features = flags.get("features", static_cast<std::size_t>(192));
  options.model = bench::prodigy_config(model_options);
  options.system_name = "Eclipse";

  util::Timer timer;
  const auto service = deploy::AnalyticsService::train_from_store(
      store, train_jobs, options, /*explain=*/true);
  std::printf("# offline training completed in %.1fs\n", timer.elapsed_seconds());

  std::printf("\n=== Figure 7: anomaly dashboard for job 999 (memleak) ===\n");
  const auto analysis = service.analyze_job(999);
  std::printf("job %lld app %s analyzed in %.2fs\n",
              static_cast<long long>(analysis.job_id), analysis.app.c_str(),
              analysis.seconds);
  for (const auto& node : analysis.nodes) {
    std::printf("\ncomponent_id %lld: %s  (score %.4f, threshold %.4f)\n",
                static_cast<long long>(node.component_id),
                node.anomalous ? "ANOMALOUS" : "healthy", node.score,
                node.threshold);
    if (node.explanation) {
      const auto& explanation = *node.explanation;
      std::printf("  CoMTE counterfactual (%s, %zu model calls):\n",
                  explanation.success ? "flips to healthy" : "no flip found",
                  explanation.evaluations);
      for (const auto& change : explanation.changes) {
        std::printf("    %-28s would be classified healthy if %s\n",
                    change.metric.c_str(),
                    change.mean_delta < 0 ? "this metric were lower"
                                          : "this metric were higher");
      }
      std::printf("    P(anomalous): %.3f -> %.3f\n",
                  explanation.original_probability, explanation.final_probability);
    }
  }

  // The raw MemFree trend the paper's Figure 7 plots.
  std::printf("\n=== MemFree::meminfo trend (tail/head mean ratio per node) ===\n");
  const auto job = store.query_job(999);
  const auto mem_free = telemetry::metric_index("MemFree::meminfo");
  for (const auto& node : job.nodes) {
    const auto series = node.values.column(mem_free);
    const std::size_t quarter = series.size() / 4;
    std::vector<double> head(series.begin() + quarter / 2,
                             series.begin() + quarter / 2 + quarter);
    std::vector<double> tail(series.end() - quarter, series.end());
    std::printf("component_id %lld (%s): ratio %.2f%s\n",
                static_cast<long long>(node.component_id),
                node.label ? "memleak" : "healthy",
                tensor::mean(tail) / tensor::mean(head),
                node.label ? "  <- decreasing trend" : "");
  }
  return 0;
}
