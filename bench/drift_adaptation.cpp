// Drift-adaptation benchmark: the ground-truth evaluation of the online
// adaptation subsystem (src/adapt/).  The live stream carries no labels, so
// the AdaptiveModelManager's swap gate has to reason about error profiles;
// here the replay is synthetic, labels exist, and the adaptive scorer can be
// scored against a frozen one on the exact scenario adaptation is for:
//
//   1. train a bundle on day-one healthy telemetry;
//   2. replay a long run whose healthy baseline DRIFTS toward a new normal
//      (telemetry::RunConfig::baseline_drift) while half the nodes pick up a
//      memleak that starts mid-run, overlapping the drift
//      (anomaly_start_frac);
//   3. score the replay twice — frozen bundle vs. the same bundle behind an
//      AdaptiveModelManager (synchronous refits) — and compare deployed and
//      tuned macro-F1 plus the false-alarm rate on drifted-healthy windows.
//
//   drift_adaptation [--nodes 8] [--duration 1536] [--drift 0.35]
//                    [--anomaly-start 0.55] [--window 64] [--hop 16]
//                    [--train-jobs 6] [--train-nodes 4] [--train-duration 80]
//                    [--epochs 120] [--features 64] [--refit-epochs 40]
//                    [--adapt-warmup 64] [--adapt-lambda 8]
//                    [--adapt-min-refit 64]
//
// Output is a markdown table (pasted into EXPERIMENTS.md).  Tuned macro-F1
// sweeps the score/threshold RATIO per model generation: every generation is
// a separately calibrated detector with its own score scale, so one global
// threshold across eras would conflate them.  The frozen pass has a single
// era, where the per-era sweep reduces to the plain global sweep.
#include "adapt/model_manager.hpp"
#include "bench_common.hpp"
#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "eval/metrics.hpp"
#include "hpas/anomalies.hpp"
#include "stream/event_bus.hpp"
#include "stream/ingestor.hpp"
#include "stream/online_scorer.hpp"
#include "util/timer.hpp"

#include <cstdio>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace {

using namespace prodigy;

telemetry::JobTelemetry make_job(const telemetry::RunConfig& config) {
  return telemetry::generate_run(config);
}

std::vector<stream::SampleBatch> batches_from_run(const telemetry::JobTelemetry& job) {
  std::size_t ticks = 0;
  for (const auto& node : job.nodes) ticks = std::max(ticks, node.values.rows());
  std::vector<stream::SampleBatch> batches;
  batches.reserve(ticks);
  for (std::size_t t = 0; t < ticks; ++t) {
    stream::SampleBatch batch;
    batch.sequence = t;
    for (const auto& node : job.nodes) {
      if (t >= node.values.rows()) continue;
      stream::SampleRow row;
      row.job_id = node.job_id;
      row.component_id = node.component_id;
      row.timestamp = static_cast<std::int64_t>(t);
      row.app = node.app;
      const auto values = node.values.row(t);
      row.values.assign(values.begin(), values.end());
      batch.rows.push_back(std::move(row));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

struct NodeTruth {
  int label = 0;
  std::int64_t onset_tick = 0;  // first anomalous sample (label-1 nodes)
};
using TruthMap = std::map<std::pair<std::int64_t, std::int64_t>, NodeTruth>;

struct PassOutcome {
  std::vector<int> truth;
  std::vector<int> predicted;
  std::vector<double> ratios;  // score / serving threshold, generation-safe
  std::vector<std::uint64_t> generations;
  std::size_t healthy_windows = 0;
  std::size_t healthy_flagged = 0;
  stream::AdaptationStats stats{};
};

/// Replays `workload` through an OnlineScorer — frozen, or adaptive behind a
/// synchronous AdaptiveModelManager — and labels every verdict.  Windows
/// straddling the anomaly onset are excluded: the injected ramp is still
/// near zero there, so neither model can honestly be charged with them.
PassOutcome run_pass(const core::ModelBundle& bundle,
                     const std::vector<stream::SampleBatch>& workload,
                     const TruthMap& truth_map, std::size_t window,
                     std::size_t hop,
                     const adapt::AdaptationConfig* adapt_config) {
  stream::EventBus bus;
  PassOutcome outcome;
  std::mutex collect_mutex;
  bus.subscribe([&](const stream::VerdictEvent& event) {
    const auto it = truth_map.find({event.job_id, event.component_id});
    if (it == truth_map.end()) return;
    const NodeTruth& node = it->second;
    int label = 0;
    if (node.label == 1) {
      if (event.window_start_ts < node.onset_tick) {
        if (event.window_end_ts >= node.onset_tick) return;  // straddles onset
      } else {
        label = 1;
      }
    }
    std::lock_guard lock(collect_mutex);
    outcome.truth.push_back(label);
    outcome.predicted.push_back(event.anomalous ? 1 : 0);
    outcome.ratios.push_back(event.threshold > 0 ? event.score / event.threshold
                                                 : event.score);
    outcome.generations.push_back(event.model_generation);
    if (label == 0) {
      ++outcome.healthy_windows;
      outcome.healthy_flagged += event.anomalous ? 1 : 0;
    }
  });

  // Manager before scorer: the scorer calls back into it from scoring tasks.
  std::unique_ptr<adapt::AdaptiveModelManager> manager;
  if (adapt_config) {
    manager = std::make_unique<adapt::AdaptiveModelManager>(bundle, *adapt_config,
                                                            &bus, "bench");
  }
  stream::OnlineScorerConfig scorer_config;
  scorer_config.window = window;
  scorer_config.hop = hop;
  scorer_config.model_provider = manager.get();
  stream::OnlineScorer scorer(bundle, bus, scorer_config);

  deploy::DsosStore store;
  stream::StreamIngestor ingestor(store, {}, &scorer);
  for (const auto& batch : workload) ingestor.offer(batch);  // copies: reusable
  ingestor.stop();
  scorer.drain();
  if (manager) {
    manager->stop();
    outcome.stats = manager->adaptation_stats();
  }
  return outcome;
}

/// Tuned macro-F1 with the ratio threshold swept independently per model
/// generation (see file comment).  Per-era best thresholds are applied to
/// that era's windows and one macro-F1 is computed over the union.
double tuned_macro_f1(const PassOutcome& outcome) {
  std::map<std::uint64_t, std::vector<std::size_t>> eras;
  for (std::size_t i = 0; i < outcome.ratios.size(); ++i) {
    eras[outcome.generations[i]].push_back(i);
  }
  std::vector<int> predicted(outcome.truth.size(), 0);
  for (const auto& [generation, indices] : eras) {
    std::vector<double> ratios;
    std::vector<int> truth;
    ratios.reserve(indices.size());
    truth.reserve(indices.size());
    for (const auto i : indices) {
      ratios.push_back(outcome.ratios[i]);
      truth.push_back(outcome.truth[i]);
    }
    const auto sweep = eval::best_threshold_by_f1(ratios, truth);
    for (const auto i : indices) {
      predicted[i] = outcome.ratios[i] > sweep.best_threshold ? 1 : 0;
    }
  }
  return eval::macro_f1(outcome.truth, predicted);
}

void print_row(const char* label, const PassOutcome& outcome) {
  const double deployed = eval::macro_f1(outcome.truth, outcome.predicted);
  const double tuned = tuned_macro_f1(outcome);
  const double false_alarms =
      outcome.healthy_windows > 0
          ? static_cast<double>(outcome.healthy_flagged) /
                static_cast<double>(outcome.healthy_windows)
          : 0.0;
  std::printf("| %s | %zu | %.4f | %.4f | %.1f%% | %llu | %llu |\n", label,
              outcome.truth.size(), deployed, tuned,
              100.0 * false_alarms,
              static_cast<unsigned long long>(outcome.stats.swaps_completed),
              static_cast<unsigned long long>(outcome.stats.swaps_refused));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto nodes = flags.get("nodes", static_cast<std::size_t>(8));
  const double duration = flags.get("duration", 1536.0);
  const double drift = flags.get("drift", 0.35);
  const double anomaly_start = flags.get("anomaly-start", 0.55);
  const auto window = flags.get("window", static_cast<std::size_t>(64));
  const auto hop = flags.get("hop", static_cast<std::size_t>(16));
  const auto train_jobs = flags.get("train-jobs", static_cast<std::size_t>(6));
  const auto train_nodes = flags.get("train-nodes", static_cast<std::size_t>(4));
  const double train_duration = flags.get("train-duration", 80.0);

  // --- Day-one bundle: healthy-only telemetry, no drift (variance feature
  // ranking; the paper's unsupervised deployment mode).
  deploy::DsosStore train_store;
  std::vector<std::int64_t> train_ids;
  for (std::size_t i = 0; i < train_jobs; ++i) {
    telemetry::RunConfig config;
    config.app = telemetry::application_by_name("LAMMPS");
    config.job_id = static_cast<std::int64_t>(i + 1);
    config.num_nodes = train_nodes;
    config.duration_s = train_duration;
    config.seed = static_cast<std::uint64_t>(i + 1) * 7919 + 13;
    config.first_component_id = config.job_id * 100;
    train_store.ingest(make_job(config));
    train_ids.push_back(config.job_id);
  }
  deploy::TrainFromStoreOptions options;
  options.preprocess.trim_seconds = 20;
  options.top_k_features = flags.get("features", static_cast<std::size_t>(64));
  options.model.vae.encoder_hidden = {24, 8};
  options.model.vae.latent_dim = 3;
  options.model.train.epochs = flags.get("epochs", static_cast<std::size_t>(120));
  options.model.train.batch_size = 16;
  options.model.train.learning_rate = 2e-3;
  options.model.train.validation_split = 0.0;
  options.model.train.early_stopping_patience = 0;
  util::Timer train_timer;
  const auto service = deploy::AnalyticsService::train_from_store(
      train_store, train_ids, options, /*explain=*/false);
  const core::ModelBundle& bundle = service.bundle();
  std::printf("# trained day-one bundle in %.1fs (%zu healthy jobs x %zu nodes)\n",
              train_timer.elapsed_seconds(), train_jobs, train_nodes);

  // --- Drifting replay: baseline ramps to `drift`; a memleak lands on the
  // odd nodes once the baseline has already shifted.
  telemetry::RunConfig replay_config;
  replay_config.app = telemetry::application_by_name("LAMMPS");
  replay_config.job_id = 9001;
  replay_config.num_nodes = nodes;
  replay_config.duration_s = duration;
  replay_config.seed = 1009;
  replay_config.first_component_id = replay_config.job_id * 100;
  replay_config.baseline_drift = drift;
  replay_config.anomaly_start_frac = anomaly_start;
  replay_config.anomaly = hpas::table2_configurations().back();  // memleak
  for (std::size_t n = 1; n < nodes; n += 2) {
    replay_config.anomalous_nodes.push_back(n);
  }
  const auto job = make_job(replay_config);
  const auto workload = batches_from_run(job);
  TruthMap truth_map;
  const auto onset_tick =
      static_cast<std::int64_t>(anomaly_start * duration);
  for (const auto& node : job.nodes) {
    truth_map[{node.job_id, node.component_id}] =
        NodeTruth{node.label, onset_tick};
  }
  std::printf("# replay: %zu ticks x %zu nodes, baseline drift %.2f, memleak "
              "on %zu nodes from t=%lld (W=%zu H=%zu)\n\n",
              workload.size(), nodes, drift,
              replay_config.anomalous_nodes.size(),
              static_cast<long long>(onset_tick), window, hop);

  adapt::AdaptationConfig adapt_config;
  adapt_config.drift.warmup_observations =
      flags.get("adapt-warmup", static_cast<std::size_t>(64));
  adapt_config.drift.lambda = flags.get("adapt-lambda", 8.0);
  adapt_config.refit_epochs =
      flags.get("refit-epochs", static_cast<std::size_t>(40));
  adapt_config.min_refit_samples =
      flags.get("adapt-min-refit", static_cast<std::size_t>(64));
  adapt_config.synchronous = true;  // swap points interleave with scoring

  std::printf("## drift_adaptation (frozen vs adaptive on a drifting replay)\n\n");
  std::printf("| model | windows | macro-F1 @ deployed | tuned macro-F1 | "
              "false alarms (healthy) | swaps | refusals |\n");
  std::printf("|---|---|---|---|---|---|---|\n");
  util::Timer frozen_timer;
  const PassOutcome frozen =
      run_pass(bundle, workload, truth_map, window, hop, nullptr);
  const double frozen_s = frozen_timer.elapsed_seconds();
  print_row("frozen", frozen);
  util::Timer adaptive_timer;
  const PassOutcome adaptive =
      run_pass(bundle, workload, truth_map, window, hop, &adapt_config);
  const double adaptive_s = adaptive_timer.elapsed_seconds();
  print_row("adaptive", adaptive);

  const double frozen_tuned = tuned_macro_f1(frozen);
  const double adaptive_tuned = tuned_macro_f1(adaptive);
  std::printf("\n# adaptive tuned macro-F1 %.4f vs frozen %.4f (delta %+.4f); "
              "%llu drifts -> %llu refits -> %llu swaps; replay %.1fs frozen, "
              "%.1fs adaptive\n",
              adaptive_tuned, frozen_tuned, adaptive_tuned - frozen_tuned,
              static_cast<unsigned long long>(adaptive.stats.drifts_detected),
              static_cast<unsigned long long>(adaptive.stats.refits_started),
              static_cast<unsigned long long>(adaptive.stats.swaps_completed),
              frozen_s, adaptive_s);
  return 0;
}
