// Figure 6 (paper §6.2, first production experiment): Prodigy's F1-score as
// a function of the number of healthy samples in the training set.
//
// Protocol per the paper: 4 applications (LAMMPS, sw4, sw4lite, ExaMiniMD),
// each run 5x healthy and 5x with the memleak anomaly on 4 compute nodes ->
// 160 samples (80 healthy / 80 anomalous).  For each healthy-count in
// {4, 8, 16, 32, 48, 64} the selection is repeated 10 times; the test set is
// all anomalous samples plus the remaining healthy ones.  Paper: 0.58 F1 at
// 4 samples, ~0.9 at 16, 0.96 at ~60.
#include "bench_common.hpp"

#include "pipeline/splits.hpp"
#include "tensor/stats.hpp"

int main(int argc, char** argv) {
  using namespace prodigy;
  util::set_log_level(util::LogLevel::Warn);
  const bench::Flags flags(argc, argv);
  const double duration = flags.get("duration", 240.0);
  const std::size_t repeats = flags.get("repeats", static_cast<std::size_t>(10));
  const std::size_t top_k = flags.get("features", static_cast<std::size_t>(256));
  const auto model_options = bench::model_options_from_flags(flags);

  // --- Data collection: 4 apps x (5 healthy + 5 memleak) runs x 4 nodes. ---
  const std::vector<std::string> apps{"LAMMPS", "sw4", "sw4lite", "ExaMiniMD"};
  const hpas::AnomalySpec memleak{hpas::AnomalyKind::Memleak, 1.0, "-s 10M -p 1"};
  std::vector<telemetry::JobTelemetry> jobs;
  std::int64_t job_id = 1;
  util::Rng seed_rng(flags.get("seed", static_cast<std::size_t>(7)));
  for (const auto& app : apps) {
    for (int run = 0; run < 10; ++run) {
      telemetry::RunConfig config;
      config.app = telemetry::application_by_name(app);
      config.job_id = job_id;
      config.num_nodes = 4;
      config.duration_s = duration;
      config.seed = seed_rng();
      config.first_component_id = job_id * 10;
      if (run >= 5) config.anomaly = memleak;
      jobs.push_back(telemetry::generate_run(config));
      ++job_id;
    }
  }

  pipeline::PreprocessOptions preprocess;
  preprocess.trim_seconds = flags.get("trim", 30.0);
  util::Timer timer;
  auto dataset = pipeline::DataPipeline::build_from_jobs(jobs, preprocess);
  std::printf("# collected %zu samples (%zu anomalous) in %.1fs\n", dataset.size(),
              dataset.anomalous_count(), timer.elapsed_seconds());

  // Offline feature selection once, as in deployment.
  {
    pipeline::Scaler scaler(pipeline::ScalerKind::MinMax);
    features::FeatureDataset scaled = dataset;
    scaled.X = scaler.fit_transform(dataset.X);
    dataset = dataset.select_columns(
        features::select_features_chi2(scaled, top_k).selected);
  }

  std::vector<std::size_t> healthy_rows, anomalous_rows;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    (dataset.labels[i] != 0 ? anomalous_rows : healthy_rows).push_back(i);
  }

  std::printf("\n=== Figure 6: F1 vs healthy training samples (%zu repeats) ===\n",
              repeats);
  std::printf("%10s %10s %10s\n", "n_healthy", "mean_F1", "stddev");
  util::CsvTable csv;
  csv.header = {"n_healthy", "mean_f1", "stddev"};

  util::Rng rng(flags.get("seed", static_cast<std::size_t>(7)) ^ 0x515);
  for (const std::size_t n_healthy : {4u, 8u, 16u, 32u, 48u, 64u}) {
    std::vector<double> f1s;
    for (std::size_t repeat = 0; repeat < repeats; ++repeat) {
      // Random selection of healthy training samples; everything else tests.
      auto pool = healthy_rows;
      for (std::size_t i = 0; i < n_healthy && i < pool.size(); ++i) {
        std::swap(pool[i], pool[i + rng.uniform_index(pool.size() - i)]);
      }
      std::vector<std::size_t> train_rows(pool.begin(), pool.begin() + n_healthy);
      std::vector<std::size_t> test_rows(pool.begin() + n_healthy, pool.end());
      test_rows.insert(test_rows.end(), anomalous_rows.begin(), anomalous_rows.end());

      const auto train = dataset.select_rows(train_rows);
      const auto test = dataset.select_rows(test_rows);

      auto config = bench::prodigy_config(bench::ModelOptions{
          model_options.epochs, std::min<std::size_t>(model_options.batch_size, 16),
          model_options.learning_rate, model_options.usad_epochs});
      core::ProdigyDetector detector(config);
      // No test-side tuning here: the experiment measures how well the
      // 99th-percentile threshold generalizes from few healthy samples.
      eval::EvalOptions eval_options;
      eval_options.tune_on_test = false;
      const auto result = eval::evaluate_fold(detector, train.X, train.labels,
                                              test.X, test.labels, eval_options);
      f1s.push_back(result.macro_f1);
    }
    const double mean = tensor::mean(f1s);
    const double sd = tensor::stddev(f1s);
    std::printf("%10zu %10.3f %10.3f\n", static_cast<std::size_t>(n_healthy), mean, sd);
    csv.rows.push_back({std::to_string(n_healthy), std::to_string(mean),
                        std::to_string(sd)});
  }

  const std::string out = flags.get("out", std::string("fig6_results.csv"));
  util::write_csv(out, csv);
  std::printf("# results written to %s\n", out.c_str());
  return 0;
}
