// §6.2 inference-time measurement, as a google-benchmark binary.
//
// Paper: predicting all 18,947 Eclipse / 14,589 Volta test samples takes
// 3.28 s / 2.5 s on average (two 14-core Xeon E5-2680v4).  Here we measure
// the same batch-prediction path (scaler + VAE reconstruction + threshold)
// at several batch sizes, plus the per-stage costs that dominate the
// deployment's request latency (feature extraction, preprocessing).
// Set PRODIGY_METRICS_OUT=<path> to dump the process metrics registry
// (stage histograms, thread-pool counters) after the benchmarks finish --
// JSON when the path ends in .json, Prometheus text otherwise.
//
// `--f1-delta [--system Eclipse|Volta] [...dataset/model flags]` switches to
// the reduced-precision accuracy harness instead of running benchmarks: it
// trains one Prodigy detector on the Tier-1 synthetic dataset and reports
// tuned macro-F1 under the full / bf16 / int8 fused inference plans as a
// markdown table (the numbers quoted in EXPERIMENTS.md).
#include "bench_common.hpp"

#include "pipeline/preprocess.hpp"
#include "telemetry/generator.hpp"
#include "util/metrics.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace {

using namespace prodigy;

struct InferenceFixture {
  InferenceFixture() {
    const std::size_t features = 256;
    util::Rng rng(3);
    tensor::Matrix train(512, features);
    for (std::size_t i = 0; i < train.size(); ++i) train.data()[i] = rng.uniform();

    bench::ModelOptions options;
    options.epochs = 40;  // weights just need to exist for latency timing
    detector = std::make_unique<core::ProdigyDetector>(bench::prodigy_config(options));
    detector->fit_healthy(train);

    probe = tensor::Matrix(20000, features);
    for (std::size_t i = 0; i < probe.size(); ++i) probe.data()[i] = rng.uniform();
  }

  std::unique_ptr<core::ProdigyDetector> detector;
  tensor::Matrix probe;
};

InferenceFixture& fixture() {
  static InferenceFixture instance;
  return instance;
}

/// Batch prediction latency (the paper's 18,947 / 14,589-sample batches).
void BM_BatchPredict(benchmark::State& state) {
  auto& f = fixture();
  const auto batch = static_cast<std::size_t>(state.range(0));
  const tensor::Matrix X = f.probe.slice_rows(0, batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.detector->predict(X));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  state.counters["samples_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * batch),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchPredict)->Arg(64)->Arg(1024)->Arg(14589)->Arg(18947)
    ->Unit(benchmark::kMillisecond);

/// Scoring (reconstruction MAE) alone.
void BM_Score(benchmark::State& state) {
  auto& f = fixture();
  const tensor::Matrix X = f.probe.slice_rows(0, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.detector->score(X));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Score)->Unit(benchmark::kMillisecond);

/// The streaming-score hot shape: one 1024-feature row through the fused
/// VAE inference plan (encoder 1024->64->24, mu head 24->8, decoder
/// 8->24->64->1024 — the same architecture the stream scorer deploys).
/// Mode 0 is the layer-by-layer oracle path; 1/2/3 are the packed plan at
/// full / bf16 / int8 weight precision.  Untrained weights: latency only
/// depends on the shapes.
struct VaeLatencyFixture {
  VaeLatencyFixture() : vae(make_config()) {
    util::Rng rng(17);
    row = tensor::Matrix(1, 1024);
    for (std::size_t i = 0; i < row.size(); ++i) row.data()[i] = rng.uniform();
    batch = tensor::Matrix(64, 1024);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch.data()[i] = rng.uniform();
    }
  }

  static core::VaeConfig make_config() {
    core::VaeConfig config = bench::prodigy_config(bench::ModelOptions{}).vae;
    config.input_dim = 1024;
    return config;
  }

  core::VariationalAutoencoder vae;
  tensor::Matrix row;
  tensor::Matrix batch;
};

VaeLatencyFixture& vae_fixture() {
  static VaeLatencyFixture instance;
  return instance;
}

constexpr const char* kPrecisionLabels[] = {"layerwise-fp64", "fused-fp64",
                                            "fused-bf16", "fused-int8"};

void set_precision(core::VariationalAutoencoder& vae, std::int64_t mode) {
  switch (mode) {
    case 1: vae.build_inference_plan(nn::PlanPrecision::Full); break;
    case 2: vae.build_inference_plan(nn::PlanPrecision::Bf16); break;
    case 3: vae.build_inference_plan(nn::PlanPrecision::Int8); break;
    default: break;  // mode 0 bypasses the plan entirely
  }
}

void BM_VaeScoreSingleRow(benchmark::State& state) {
  auto& f = vae_fixture();
  const auto mode = state.range(0);
  set_precision(f.vae, mode);
  state.SetLabel(kPrecisionLabels[mode]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mode == 0 ? f.vae.reconstruction_error_layerwise(f.row)
                  : f.vae.reconstruction_error(f.row));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VaeScoreSingleRow)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_VaeScoreBatch64(benchmark::State& state) {
  auto& f = vae_fixture();
  const auto mode = state.range(0);
  set_precision(f.vae, mode);
  state.SetLabel(kPrecisionLabels[mode]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mode == 0 ? f.vae.reconstruction_error_layerwise(f.batch)
                  : f.vae.reconstruction_error(f.batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_VaeScoreBatch64)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

/// `--f1-delta`: the reduced-precision accuracy gate on the Tier-1 synthetic
/// evaluation.  Fits once at fp64, then re-tunes the threshold and measures
/// macro-F1 under each plan precision.
int run_f1_delta(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto system = flags.get("system", std::string("Eclipse"));
  auto dataset =
      bench::build_system_dataset(system, bench::dataset_options_from_flags(flags));
  const auto model_options = bench::model_options_from_flags(flags);

  // Same preprocessing as the eval harness (crossval.cpp): min-max scale the
  // selected features before training — raw feature magnitudes overflow the
  // VAE to Inf/NaN scores.
  pipeline::Scaler scaler(pipeline::ScalerKind::MinMax);
  dataset.X = scaler.fit_transform(dataset.X);

  core::ProdigyDetector detector(bench::prodigy_config(model_options));
  util::Timer fit_timer;
  detector.fit(dataset.X, dataset.labels);
  std::printf("# fit %zu samples x %zu features in %.1fs\n", dataset.size(),
              dataset.X.cols(), fit_timer.elapsed_seconds());

  struct Row { const char* name; nn::PlanPrecision precision; };
  const Row rows[] = {{"full (fp64)", nn::PlanPrecision::Full},
                      {"bf16", nn::PlanPrecision::Bf16},
                      {"int8", nn::PlanPrecision::Int8}};
  double f1_full = 0.0;
  std::printf("\n| precision | tuned macro-F1 | delta vs full |\n");
  std::printf("|---|---|---|\n");
  for (const auto& row : rows) {
    detector.set_inference_precision(row.precision);
    const double f1 = detector.tune_threshold(dataset.X, dataset.labels);
    if (row.precision == nn::PlanPrecision::Full) f1_full = f1;
    std::printf("| %s | %.4f | %+.4f |\n", row.name, f1, f1 - f1_full);
  }
  detector.set_inference_precision(nn::PlanPrecision::Full);
  return 0;
}

/// Preprocessing one node's raw frame (interpolate + diff + trim).
void BM_PreprocessNode(benchmark::State& state) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name("LAMMPS");
  config.duration_s = static_cast<double>(state.range(0));
  config.num_nodes = 1;
  const auto job = telemetry::generate_run(config);
  pipeline::PreprocessOptions options;
  options.trim_seconds = 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::preprocess_node(job.nodes[0].values, options));
  }
}
BENCHMARK(BM_PreprocessNode)->Arg(300)->Arg(1200)->Unit(benchmark::kMillisecond);

/// Full feature extraction for one node (the dominant request-path cost).
void BM_ExtractNodeFeatures(benchmark::State& state) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name("LAMMPS");
  config.duration_s = static_cast<double>(state.range(0));
  config.num_nodes = 1;
  const auto job = telemetry::generate_run(config);
  pipeline::PreprocessOptions options;
  options.trim_seconds = 30;
  const auto prepared = pipeline::preprocess_node(job.nodes[0].values, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::extract_node_features(prepared));
  }
}
BENCHMARK(BM_ExtractNodeFeatures)->Arg(300)->Arg(1200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--f1-delta") == 0) return run_f1_delta(argc, argv);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* path = std::getenv("PRODIGY_METRICS_OUT")) {
    prodigy::util::MetricsRegistry::global().write_file(path);
    std::fprintf(stderr, "metrics -> %s\n", path);
  }
  return 0;
}
