// §6.2 inference-time measurement, as a google-benchmark binary.
//
// Paper: predicting all 18,947 Eclipse / 14,589 Volta test samples takes
// 3.28 s / 2.5 s on average (two 14-core Xeon E5-2680v4).  Here we measure
// the same batch-prediction path (scaler + VAE reconstruction + threshold)
// at several batch sizes, plus the per-stage costs that dominate the
// deployment's request latency (feature extraction, preprocessing).
// Set PRODIGY_METRICS_OUT=<path> to dump the process metrics registry
// (stage histograms, thread-pool counters) after the benchmarks finish --
// JSON when the path ends in .json, Prometheus text otherwise.
#include "bench_common.hpp"

#include "pipeline/preprocess.hpp"
#include "telemetry/generator.hpp"
#include "util/metrics.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

namespace {

using namespace prodigy;

struct InferenceFixture {
  InferenceFixture() {
    const std::size_t features = 256;
    util::Rng rng(3);
    tensor::Matrix train(512, features);
    for (std::size_t i = 0; i < train.size(); ++i) train.data()[i] = rng.uniform();

    bench::ModelOptions options;
    options.epochs = 40;  // weights just need to exist for latency timing
    detector = std::make_unique<core::ProdigyDetector>(bench::prodigy_config(options));
    detector->fit_healthy(train);

    probe = tensor::Matrix(20000, features);
    for (std::size_t i = 0; i < probe.size(); ++i) probe.data()[i] = rng.uniform();
  }

  std::unique_ptr<core::ProdigyDetector> detector;
  tensor::Matrix probe;
};

InferenceFixture& fixture() {
  static InferenceFixture instance;
  return instance;
}

/// Batch prediction latency (the paper's 18,947 / 14,589-sample batches).
void BM_BatchPredict(benchmark::State& state) {
  auto& f = fixture();
  const auto batch = static_cast<std::size_t>(state.range(0));
  const tensor::Matrix X = f.probe.slice_rows(0, batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.detector->predict(X));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  state.counters["samples_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * batch),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchPredict)->Arg(64)->Arg(1024)->Arg(14589)->Arg(18947)
    ->Unit(benchmark::kMillisecond);

/// Scoring (reconstruction MAE) alone.
void BM_Score(benchmark::State& state) {
  auto& f = fixture();
  const tensor::Matrix X = f.probe.slice_rows(0, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.detector->score(X));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Score)->Unit(benchmark::kMillisecond);

/// Preprocessing one node's raw frame (interpolate + diff + trim).
void BM_PreprocessNode(benchmark::State& state) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name("LAMMPS");
  config.duration_s = static_cast<double>(state.range(0));
  config.num_nodes = 1;
  const auto job = telemetry::generate_run(config);
  pipeline::PreprocessOptions options;
  options.trim_seconds = 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::preprocess_node(job.nodes[0].values, options));
  }
}
BENCHMARK(BM_PreprocessNode)->Arg(300)->Arg(1200)->Unit(benchmark::kMillisecond);

/// Full feature extraction for one node (the dominant request-path cost).
void BM_ExtractNodeFeatures(benchmark::State& state) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name("LAMMPS");
  config.duration_s = static_cast<double>(state.range(0));
  config.num_nodes = 1;
  const auto job = telemetry::generate_run(config);
  pipeline::PreprocessOptions options;
  options.trim_seconds = 30;
  const auto prepared = pipeline::preprocess_node(job.nodes[0].values, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::extract_node_features(prepared));
  }
}
BENCHMARK(BM_ExtractNodeFeatures)->Arg(300)->Arg(1200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* path = std::getenv("PRODIGY_METRICS_OUT")) {
    prodigy::util::MetricsRegistry::global().write_file(path);
    std::fprintf(stderr, "metrics -> %s\n", path);
  }
  return 0;
}
