// Ablations over Prodigy's design choices (DESIGN.md E-abl):
//  * threshold percentile — §3.3: "typically ... the 99th percentile or
//    maximum value ... one can experiment with different percentile values";
//  * scaler kind — §4.2.1 supports pluggable scalers (min-max default);
//  * KL weight — the ELBO's regularization strength (0 = plain autoencoder,
//    recovering the Borghesi-style semi-supervised AE baseline of §2.1);
//  * reconstruction loss for training (MSE Gaussian likelihood vs MAE).
#include "bench_common.hpp"

#include "pipeline/splits.hpp"

int main(int argc, char** argv) {
  using namespace prodigy;
  util::set_log_level(util::LogLevel::Warn);
  const bench::Flags flags(argc, argv);
  auto data_options = bench::dataset_options_from_flags(flags);
  const auto model_options = bench::model_options_from_flags(flags);
  const std::size_t rounds = flags.get("rounds", static_cast<std::size_t>(2));

  const auto dataset = bench::build_system_dataset("Eclipse", data_options);
  util::CsvTable csv;
  csv.header = {"ablation", "setting", "macro_f1", "stddev"};

  auto run = [&](const std::string& ablation, const std::string& setting,
                 const core::ProdigyConfig& config, const eval::EvalOptions& options) {
    const auto result = eval::repeated_prodigy_eval(
        [&] { return std::make_unique<core::ProdigyDetector>(config); }, dataset,
        rounds, 42 + data_options.seed, options, 0.2, 0.1);
    std::printf("%-22s %-12s F1=%.3f +/- %.3f\n", ablation.c_str(), setting.c_str(),
                result.mean_f1(), result.stddev_f1());
    csv.rows.push_back(std::vector<std::string>{
        ablation, setting, std::to_string(result.mean_f1()),
        std::to_string(result.stddev_f1())});
  };

  // --- Threshold percentile (no test-side tuning: the point is how well the
  // healthy-percentile threshold generalizes). ---
  std::printf("=== threshold percentile (tune_on_test off) ===\n");
  for (const double percentile : {90.0, 95.0, 99.0, 100.0}) {
    auto config = bench::prodigy_config(model_options);
    config.threshold_percentile = percentile;
    eval::EvalOptions options;
    options.tune_on_test = false;
    run("threshold_percentile", std::to_string(static_cast<int>(percentile)),
        config, options);
  }

  // --- Scaler kind. ---
  std::printf("\n=== scaler kind ===\n");
  for (const auto kind : {pipeline::ScalerKind::MinMax, pipeline::ScalerKind::Standard}) {
    eval::EvalOptions options;
    options.scaler = kind;
    run("scaler", pipeline::to_string(kind), bench::prodigy_config(model_options),
        options);
  }

  // --- KL weight (0 = plain deterministic-ish autoencoder). ---
  std::printf("\n=== KL weight ===\n");
  for (const double kl : {0.0, 0.1, 1.0, 4.0}) {
    auto config = bench::prodigy_config(model_options);
    config.vae.kl_weight = kl;
    run("kl_weight", std::to_string(kl), config, {});
  }

  // --- Training reconstruction loss. ---
  std::printf("\n=== training reconstruction loss ===\n");
  for (const auto loss : {core::ReconLoss::Mse, core::ReconLoss::Mae}) {
    auto config = bench::prodigy_config(model_options);
    config.vae.recon_loss = loss;
    run("recon_loss", loss == core::ReconLoss::Mse ? "mse" : "mae", config, {});
  }

  // --- §7 future work: fully unsupervised training (no labels at all). ---
  // The training split keeps its ~10% anomaly contamination; fit_unsupervised
  // self-labels and purges instead of relying on ground truth.
  std::printf("\n=== fully unsupervised training (§7 future work) ===\n");
  {
    const auto split = pipeline::prodigy_split(dataset.labels, 0.2, 0.1,
                                               91 ^ data_options.seed);
    const auto train = dataset.select_rows(split.train);
    const auto test = dataset.select_rows(split.test);
    pipeline::Scaler scaler(pipeline::ScalerKind::MinMax);
    const auto train_scaled = scaler.fit_transform(train.X);
    const auto test_scaled = scaler.transform(test.X);

    core::ProdigyDetector supervised(bench::prodigy_config(model_options));
    supervised.fit(train_scaled, train.labels);  // uses labels to drop anomalies
    supervised.tune(test_scaled, test.labels);
    const double supervised_f1 =
        eval::macro_f1(test.labels, supervised.predict(test_scaled));

    core::ProdigyDetector unsupervised(bench::prodigy_config(model_options));
    const auto report = unsupervised.fit_unsupervised(train_scaled, 0.10, 2);
    unsupervised.tune(test_scaled, test.labels);
    const double unsupervised_f1 =
        eval::macro_f1(test.labels, unsupervised.predict(test_scaled));

    std::size_t true_anomalies_kept = 0;
    for (const auto row : report.kept_indices) {
      true_anomalies_kept += train.labels[row] != 0 ? 1 : 0;
    }
    std::printf("healthy-labels training     F1=%.3f\n", supervised_f1);
    std::printf("fully unsupervised training F1=%.3f (purged %zu rows over %zu "
                "rounds; %zu true anomalies slipped through)\n",
                unsupervised_f1, train.X.rows() - report.final_training_size,
                report.rounds, true_anomalies_kept);
    csv.rows.push_back(std::vector<std::string>{
        "unsupervised", "labels", std::to_string(supervised_f1), "0"});
    csv.rows.push_back(std::vector<std::string>{
        "unsupervised", "self-labeled", std::to_string(unsupervised_f1), "0"});
  }

  const std::string out = flags.get("out", std::string("ablation_results.csv"));
  util::write_csv(out, csv);
  std::printf("\n# results written to %s\n", out.c_str());
  return 0;
}
