// Table 3 (paper §5.4.4): hyperparameter grid search for Prodigy and USAD.
// Paper grids:
//   Prodigy: lr {1e-5, 1e-4*, 1e-3, 1e-2}, batch {32, 64, 128, 256*},
//            epochs {400, 800, 1200, 2400*, 3000, 6000}
//   USAD:    batch {32, 64, 128, 256*}, epochs {50, 100*, 200, 400},
//            hidden {100, 200*, 400}, alpha&beta {0.1, 0.5*, 1}
// (* = paper optimum.)  The default grid here is budget-scaled: the same lr
// and batch axes, with the epoch axis compressed; pass --full for the
// paper's axes.
#include "bench_common.hpp"

#include "pipeline/splits.hpp"

int main(int argc, char** argv) {
  using namespace prodigy;
  util::set_log_level(util::LogLevel::Warn);
  const bench::Flags flags(argc, argv);
  auto data_options = bench::dataset_options_from_flags(flags);
  if (!flags.has("scale")) data_options.scale = 0.02;  // small grid dataset
  const bool full = flags.has("full");

  const auto dataset = bench::build_system_dataset("Volta", data_options);
  const auto split = pipeline::prodigy_split(dataset.labels, 0.2, 0.1,
                                             17 ^ data_options.seed);
  const auto train = dataset.select_rows(split.train);
  const auto test = dataset.select_rows(split.test);

  util::CsvTable csv;
  csv.header = {"model", "learning_rate", "batch", "epochs", "hidden",
                "alpha_beta", "macro_f1"};

  std::printf("=== Table 3: hyperparameter grid search (Prodigy) ===\n");
  std::printf("%10s %6s %7s %8s\n", "lr", "batch", "epochs", "F1");
  const std::vector<double> lrs = full
      ? std::vector<double>{1e-5, 1e-4, 1e-3, 1e-2}
      : std::vector<double>{1e-4, 1e-3, 1e-2};
  const std::vector<std::size_t> batches = full
      ? std::vector<std::size_t>{32, 64, 128, 256}
      : std::vector<std::size_t>{32, 128};
  const std::vector<std::size_t> epoch_grid = full
      ? std::vector<std::size_t>{400, 800, 1200, 2400}
      : std::vector<std::size_t>{100, 300};

  double best_f1 = 0.0;
  std::string best_desc;
  for (const double lr : lrs) {
    for (const std::size_t batch : batches) {
      for (const std::size_t epochs : epoch_grid) {
        bench::ModelOptions options;
        options.epochs = epochs;
        options.batch_size = batch;
        options.learning_rate = lr;
        core::ProdigyDetector detector(bench::prodigy_config(options));
        const auto result = eval::evaluate_fold(detector, train.X, train.labels,
                                                test.X, test.labels, {});
        std::printf("%10.0e %6zu %7zu %8.3f\n", lr, batch, epochs, result.macro_f1);
        csv.rows.push_back(std::vector<std::string>{"Prodigy", std::to_string(lr), std::to_string(batch),
                            std::to_string(epochs), "-", "-",
                            std::to_string(result.macro_f1)});
        if (result.macro_f1 > best_f1) {
          best_f1 = result.macro_f1;
          best_desc = "Prodigy lr=" + std::to_string(lr) +
                      " batch=" + std::to_string(batch) +
                      " epochs=" + std::to_string(epochs);
        }
      }
    }
  }
  std::printf("best: %s (F1 %.3f)\n", best_desc.c_str(), best_f1);

  std::printf("\n=== Table 3: hyperparameter grid search (USAD) ===\n");
  std::printf("%6s %7s %7s %11s %8s\n", "batch", "epochs", "hidden", "alpha", "F1");
  const std::vector<std::size_t> usad_epochs = full
      ? std::vector<std::size_t>{50, 100, 200, 400}
      : std::vector<std::size_t>{50, 100};
  const std::vector<std::size_t> hiddens = full
      ? std::vector<std::size_t>{100, 200, 400}
      : std::vector<std::size_t>{100, 200};
  const std::vector<double> alpha_betas{0.1, 0.5, 1.0};

  double usad_best = 0.0;
  std::string usad_desc;
  for (const std::size_t batch : batches) {
    for (const std::size_t epochs : usad_epochs) {
      for (const std::size_t hidden : hiddens) {
        for (const double ab : alpha_betas) {
          baselines::UsadConfig config;
          config.hidden = hidden;
          config.latent = hidden / 8;
          config.alpha = ab;
          config.beta = 1.0 - ab;  // USAD uses a convex mixture: alpha + beta = 1
          config.train.epochs = epochs;
          config.train.batch_size = batch;
          config.train.learning_rate = 1e-3;
          baselines::Usad usad(config);
          const auto result = eval::evaluate_fold(usad, train.X, train.labels,
                                                  test.X, test.labels, {});
          std::printf("%6zu %7zu %7zu %11.1f %8.3f\n", batch, epochs, hidden, ab,
                      result.macro_f1);
          csv.rows.push_back(std::vector<std::string>{"USAD", "1e-3", std::to_string(batch),
                              std::to_string(epochs), std::to_string(hidden),
                              std::to_string(ab), std::to_string(result.macro_f1)});
          if (result.macro_f1 > usad_best) {
            usad_best = result.macro_f1;
            usad_desc = "USAD batch=" + std::to_string(batch) +
                        " epochs=" + std::to_string(epochs) +
                        " hidden=" + std::to_string(hidden) +
                        " alpha&beta=" + std::to_string(ab);
          }
        }
      }
    }
  }
  std::printf("best: %s (F1 %.3f)\n", usad_desc.c_str(), usad_best);

  const std::string out = flags.get("out", std::string("table3_results.csv"));
  util::write_csv(out, csv);
  std::printf("\n# results written to %s\n", out.c_str());
  return 0;
}
