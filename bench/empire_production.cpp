// §6.2 second production experiment: detecting anomalies "in the wild".
//
// The paper's plasma-physics collaborators observed that Empire runs
// occasionally degrade by 10-30% due to backend Lustre filesystem issues.
// 7 healthy jobs (28 node-samples, 4 nodes each) train Prodigy; 2 degraded
// jobs (8 samples) are the test set.  Paper result: 7 of 8 anomalous samples
// detected (88% accuracy over the expert-labeled samples).
//
// The degradation here is organic (telemetry-level I/O stall model), not an
// HPAS injection — exactly the situation the deployment targets: anomalies
// never seen at feature-selection or training time.
#include "bench_common.hpp"

#include "tensor/stats.hpp"

int main(int argc, char** argv) {
  using namespace prodigy;
  util::set_log_level(util::LogLevel::Warn);
  const bench::Flags flags(argc, argv);
  const double duration = flags.get("duration", 300.0);
  const double degradation = flags.get("degradation", 0.6);
  const auto model_options = bench::model_options_from_flags(flags);

  util::Rng seed_rng(flags.get("seed", static_cast<std::size_t>(23)));
  std::vector<telemetry::JobTelemetry> healthy_jobs, degraded_jobs;
  for (int j = 0; j < 7; ++j) {
    telemetry::RunConfig config;
    config.app = telemetry::empire_application();
    config.job_id = 300 + j;
    config.num_nodes = 4;
    config.duration_s = duration;
    config.seed = seed_rng();
    config.first_component_id = config.job_id * 10;
    healthy_jobs.push_back(telemetry::generate_run(config));
  }
  for (int j = 0; j < 2; ++j) {
    telemetry::RunConfig config;
    config.app = telemetry::empire_application();
    config.job_id = 400 + j;
    config.num_nodes = 4;
    config.duration_s = duration * (1.0 + 0.2 * degradation);  // 10-30% longer
    config.seed = seed_rng();
    config.io_degradation = degradation;
    config.first_component_id = config.job_id * 10;
    degraded_jobs.push_back(telemetry::generate_run(config));
  }

  pipeline::PreprocessOptions preprocess;
  preprocess.trim_seconds = flags.get("trim", 30.0);
  auto train = pipeline::DataPipeline::build_from_jobs(healthy_jobs, preprocess);
  auto test = pipeline::DataPipeline::build_from_jobs(degraded_jobs, preprocess);
  std::printf("# train: %zu healthy samples; test: %zu expert-labeled anomalous\n",
              train.size(), test.size());

  // The deployed pipeline's "efficient features" were chi-square-selected
  // from the instrumented (synthetic-anomaly) collection before Empire was
  // ever analyzed (§4.2, §6.2) — reuse that offline selection here.
  bench::DatasetOptions selection_data;
  selection_data.scale = flags.get("selection-scale", 0.01);
  selection_data.duration_s = flags.get("selection-duration", 120.0);
  selection_data.top_k_features =
      flags.get("features", static_cast<std::size_t>(1024));
  selection_data.trim_seconds = 20.0;
  telemetry::DatasetSpec selection_spec = telemetry::eclipse_dataset_spec(
      selection_data.scale, selection_data.duration_s);
  pipeline::PreprocessOptions selection_preprocess;
  selection_preprocess.trim_seconds = selection_data.trim_seconds;
  auto selection_dataset =
      pipeline::DataPipeline::build_dataset(selection_spec, selection_preprocess);
  pipeline::Scaler selection_scaler(pipeline::ScalerKind::MinMax);
  selection_dataset.X = selection_scaler.fit_transform(selection_dataset.X);
  const auto selection = features::select_features_chi2(
      selection_dataset, selection_data.top_k_features);
  std::printf("# efficient features: top %zu by chi-square on a %zu-sample "
              "instrumented collection\n",
              selection.selected.size(), selection_dataset.size());
  train = train.select_columns(selection.selected);
  test = test.select_columns(selection.selected);

  pipeline::Scaler scaler(pipeline::ScalerKind::MinMax);
  const auto train_scaled = scaler.fit_transform(train.X);
  const auto test_scaled = scaler.transform(test.X);

  auto config = bench::prodigy_config(model_options);
  config.train.batch_size = std::min<std::size_t>(config.train.batch_size, 8);
  core::ProdigyDetector detector(config);
  util::Timer timer;
  detector.fit_healthy(train_scaled);
  std::printf("# trained on %zu samples in %.1fs (threshold %.4f)\n", train.size(),
              timer.elapsed_seconds(), detector.threshold());

  const auto predictions = detector.predict(test_scaled);
  const auto scores = detector.score(test_scaled);
  std::size_t detected = 0;
  std::printf("\n=== Empire in-the-wild detection (paper: 7/8, 88%% accuracy) ===\n");
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    detected += predictions[i];
    std::printf("job %lld node %lld: score %.4f -> %s\n",
                static_cast<long long>(test.meta[i].job_id),
                static_cast<long long>(test.meta[i].component_id), scores[i],
                predictions[i] ? "ANOMALOUS" : "healthy (missed)");
  }
  std::printf("\ndetected %zu / %zu anomalous samples (accuracy %.0f%%)\n", detected,
              predictions.size(),
              100.0 * static_cast<double>(detected) /
                  static_cast<double>(predictions.size()));

  // Sanity: healthy held-out Empire samples should mostly stay unflagged.
  telemetry::RunConfig held;
  held.app = telemetry::empire_application();
  held.job_id = 500;
  held.num_nodes = 4;
  held.duration_s = duration;
  held.seed = seed_rng();
  const auto held_features = pipeline::DataPipeline::build_from_jobs(
      {telemetry::generate_run(held)}, preprocess);
  const auto held_pred = detector.predict(
      scaler.transform(held_features.select_columns(selection.selected).X));
  std::size_t false_alarms = 0;
  for (const int p : held_pred) false_alarms += p;
  std::printf("false alarms on a held-out healthy job: %zu / %zu nodes\n",
              false_alarms, held_pred.size());
  return 0;
}
