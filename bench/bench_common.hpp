// Shared plumbing for the experiment binaries: a tiny flag parser, the
// Figure-5 dataset builders (scaled-down by default for single-core runs;
// every knob exposed as a flag so paper-scale runs are one command away),
// and the detector factory used across benches.
#pragma once

#include "adapt/detector_registry.hpp"
#include "baselines/usad.hpp"
#include "core/prodigy_detector.hpp"
#include "eval/crossval.hpp"
#include "features/chi_square.hpp"
#include "pipeline/data_pipeline.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <map>
#include <memory>
#include <string>

namespace prodigy::bench {

/// "--name value" and "--name=value" flags; everything else is ignored.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "1";
      }
    }
  }

  double get(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  std::size_t get(const std::string& name, std::size_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback
                               : static_cast<std::size_t>(std::atoll(it->second.c_str()));
  }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  bool has(const std::string& name) const { return values_.contains(name); }

 private:
  std::map<std::string, std::string> values_;
};

struct DatasetOptions {
  double scale = 0.035;       // fraction of the paper's run counts
  double duration_s = 150.0;  // paper: 20-45 min; scaled for single-core
  std::size_t top_k_features = 1024;  // paper best: 2000
  double trim_seconds = 20.0;        // paper: 60 (of 1200-2700 s runs)
  std::uint64_t seed = 1;
};

inline DatasetOptions dataset_options_from_flags(const Flags& flags) {
  DatasetOptions options;
  options.scale = flags.get("scale", options.scale);
  options.duration_s = flags.get("duration", options.duration_s);
  options.top_k_features = flags.get("features", options.top_k_features);
  options.trim_seconds = flags.get("trim", options.trim_seconds);
  options.seed = flags.get("seed", static_cast<std::size_t>(options.seed));
  return options;
}

/// Builds the (column-selected) labeled feature dataset for one system.
inline features::FeatureDataset build_system_dataset(const std::string& system,
                                                     const DatasetOptions& options) {
  telemetry::DatasetSpec spec = system == "Eclipse"
                                    ? telemetry::eclipse_dataset_spec(options.scale,
                                                                      options.duration_s)
                                    : telemetry::volta_dataset_spec(options.scale,
                                                                    options.duration_s);
  spec.seed ^= options.seed;

  pipeline::PreprocessOptions preprocess;
  preprocess.trim_seconds = options.trim_seconds;

  util::Timer timer;
  auto dataset = pipeline::DataPipeline::build_dataset(spec, preprocess);
  std::printf("# %s: %zu samples (%.1f%% anomalous), %zu raw features, %.1fs\n",
              system.c_str(), dataset.size(), 100.0 * dataset.anomaly_ratio(),
              dataset.X.cols(), timer.elapsed_seconds());

  // Offline chi-square feature selection on min-max-scaled features (Fig. 1).
  pipeline::Scaler scaler(pipeline::ScalerKind::MinMax);
  features::FeatureDataset scaled = dataset;
  scaled.X = scaler.fit_transform(dataset.X);
  const auto selection =
      features::select_features_chi2(scaled, options.top_k_features);
  return dataset.select_columns(selection.selected);
}

struct ModelOptions {
  std::size_t epochs = 300;       // paper Table 3: 2400
  std::size_t batch_size = 32;    // paper: 256
  double learning_rate = 1e-3;    // paper: 1e-4 (at 2400 epochs)
  std::size_t usad_epochs = 100;  // paper: 100
};

inline ModelOptions model_options_from_flags(const Flags& flags) {
  ModelOptions options;
  options.epochs = flags.get("epochs", options.epochs);
  options.batch_size = flags.get("batch", options.batch_size);
  options.learning_rate = flags.get("lr", options.learning_rate);
  options.usad_epochs = flags.get("usad-epochs", options.usad_epochs);
  return options;
}

inline core::ProdigyConfig prodigy_config(const ModelOptions& options) {
  core::ProdigyConfig config;
  config.vae.encoder_hidden = {64, 24};
  config.vae.latent_dim = 8;
  config.train.epochs = options.epochs;
  config.train.batch_size = options.batch_size;
  config.train.learning_rate = options.learning_rate;
  config.train.validation_split = 0.0;
  config.train.early_stopping_patience = 0;
  return config;
}

inline baselines::UsadConfig usad_config(const ModelOptions& options) {
  baselines::UsadConfig config;
  config.hidden = 96;   // paper Table 3: 200
  config.latent = 24;
  config.train.epochs = options.usad_epochs;
  config.train.batch_size = options.batch_size;
  config.train.learning_rate = options.learning_rate;
  return config;
}

/// Maps the bench budget knobs onto the registry's options (one place; the
/// per-detector configuration itself lives in adapt::DetectorRegistry).
inline adapt::DetectorOptions detector_options(const ModelOptions& options) {
  adapt::DetectorOptions detector_opts;
  detector_opts.epochs = options.epochs;
  detector_opts.batch_size = options.batch_size;
  detector_opts.learning_rate = options.learning_rate;
  detector_opts.usad_epochs = options.usad_epochs;
  return detector_opts;
}

/// The Figure-5 model roster, constructed through the DetectorRegistry (the
/// single source of truth for names and configs).  `extended` adds the
/// related-work models the paper discusses but does not plot (K-means §5.3,
/// Gaussian mixtures §2.1 [Ozer et al.], and a linear PCA-reconstruction
/// ablation).
inline std::vector<std::pair<std::string, eval::DetectorFactory>> fig5_roster(
    const ModelOptions& options, bool extended = false) {
  const auto& registry = adapt::DetectorRegistry::global();
  const adapt::DetectorOptions detector_opts = detector_options(options);
  std::vector<std::string> names = {"prodigy", "usad",           "majority",
                                    "random",  "isolation-forest", "lof"};
  if (extended) names.insert(names.end(), {"kmeans", "gmm", "pca"});
  std::vector<std::pair<std::string, eval::DetectorFactory>> roster;
  roster.reserve(names.size());
  for (const auto& name : names) {
    roster.emplace_back(registry.display_name(name),
                        registry.factory(name, detector_opts));
  }
  return roster;
}

}  // namespace prodigy::bench
