// Concurrent analytics-service benchmark: the serial-vs-concurrent request
// path delta.  Builds a multi-job DSOS store, trains a budget model, then
// measures analyze_job throughput (jobs/sec) and latency percentiles at
// 1/2/4/8 client threads — cold (cache disabled) and warm (result cache on).
//
//   service_throughput [--jobs 24] [--nodes 4] [--duration 80] [--repeat 3]
//                      [--epochs 120] [--features 64] [--explain]
//
// Output is a markdown table (pasted into EXPERIMENTS.md).
#include "bench_common.hpp"
#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "hpas/anomalies.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

namespace {

using namespace prodigy;

telemetry::JobTelemetry make_job(std::int64_t job_id, std::size_t nodes,
                                 double duration,
                                 hpas::AnomalySpec anomaly = hpas::healthy_spec(),
                                 std::vector<std::size_t> anomalous_nodes = {}) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name("LAMMPS");
  config.job_id = job_id;
  config.num_nodes = nodes;
  config.duration_s = duration;
  config.seed = static_cast<std::uint64_t>(job_id) * 7919 + 13;
  config.anomaly = anomaly;
  config.anomalous_nodes = std::move(anomalous_nodes);
  config.first_component_id = job_id * 100;
  return telemetry::generate_run(config);
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct PassResult {
  double jobs_per_sec = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// One benchmark pass: `clients` threads drain `repeat` rounds of `jobs`.
PassResult run_pass(const deploy::AnalyticsService& service,
                    const std::vector<std::int64_t>& jobs, std::size_t clients,
                    std::size_t repeat) {
  std::vector<std::int64_t> work;
  work.reserve(jobs.size() * repeat);
  for (std::size_t r = 0; r < repeat; ++r) {
    work.insert(work.end(), jobs.begin(), jobs.end());
  }
  std::vector<double> latencies(work.size(), 0.0);
  std::atomic<std::size_t> next{0};

  util::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= work.size()) return;
        util::Timer request;
        const auto analysis = service.analyze_job(work[i]);
        (void)analysis;
        latencies[i] = request.elapsed_seconds();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed = wall.elapsed_seconds();

  std::sort(latencies.begin(), latencies.end());
  PassResult result;
  result.jobs_per_sec =
      elapsed > 0 ? static_cast<double>(work.size()) / elapsed : 0.0;
  result.p50 = percentile(latencies, 0.50);
  result.p95 = percentile(latencies, 0.95);
  result.p99 = percentile(latencies, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto job_count = flags.get("jobs", static_cast<std::size_t>(24));
  const auto nodes = flags.get("nodes", static_cast<std::size_t>(4));
  const double duration = flags.get("duration", 80.0);
  const auto repeat = flags.get("repeat", static_cast<std::size_t>(3));
  const bool explain = flags.has("explain");

  deploy::DsosStore store;
  std::vector<std::int64_t> train_jobs, query_jobs;
  const auto memleak = hpas::table2_configurations().back();
  for (std::size_t i = 0; i < job_count; ++i) {
    const auto job_id = static_cast<std::int64_t>(i + 1);
    // Every 4th job carries a memleak on half its nodes, both in training
    // (chi-square needs two classes) and in the query set.
    if (i % 4 == 3) {
      std::vector<std::size_t> bad;
      for (std::size_t n = 0; n < nodes; n += 2) bad.push_back(n);
      store.ingest(make_job(job_id, nodes, duration, memleak, bad));
    } else {
      store.ingest(make_job(job_id, nodes, duration));
    }
    if (i < job_count / 2) {
      train_jobs.push_back(job_id);
    } else {
      query_jobs.push_back(job_id);
    }
  }
  std::printf("# store: %zu jobs x %zu nodes (%.0fs series), querying %zu jobs, "
              "repeat %zu\n",
              job_count, nodes, duration, query_jobs.size(), repeat);

  deploy::TrainFromStoreOptions options;
  options.preprocess.trim_seconds = 20;
  options.top_k_features = flags.get("features", static_cast<std::size_t>(64));
  options.model.vae.encoder_hidden = {24, 8};
  options.model.vae.latent_dim = 3;
  options.model.train.epochs = flags.get("epochs", static_cast<std::size_t>(120));
  options.model.train.batch_size = 16;
  options.model.train.learning_rate = 2e-3;
  options.model.train.validation_split = 0.0;
  options.model.train.early_stopping_patience = 0;

  util::Timer train_timer;
  deploy::AnalyticsService service =
      deploy::AnalyticsService::train_from_store(store, train_jobs, options, explain);
  std::printf("# trained in %.1fs (explain=%d)\n", train_timer.elapsed_seconds(),
              explain ? 1 : 0);

  // Serial baseline: one client, per-node fan-out pinned to a 1-thread pool,
  // no result cache — the PR-1 request path.
  util::ThreadPool serial_pool(1);
  service.set_thread_pool(&serial_pool);
  service.set_cache_capacity(0);
  const PassResult serial = run_pass(service, query_jobs, 1, repeat);
  std::printf("\n## service_throughput (%zu-core host)\n\n",
              static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::printf("| mode | clients | jobs/s | p50 (s) | p95 (s) | p99 (s) | vs serial |\n");
  std::printf("|---|---|---|---|---|---|---|\n");
  std::printf("| serial (PR-1 path) | 1 | %.1f | %.4f | %.4f | %.4f | 1.0x |\n",
              serial.jobs_per_sec, serial.p50, serial.p95, serial.p99);

  // Concurrent path, cache still off: pooled per-node fan-out + shared-read
  // DSOS under 1/2/4/8 client threads.
  service.set_thread_pool(nullptr);
  for (const std::size_t clients : {1, 2, 4, 8}) {
    const PassResult cold = run_pass(service, query_jobs, clients, repeat);
    std::printf("| concurrent, cold | %zu | %.1f | %.4f | %.4f | %.4f | %.1fx |\n",
                clients, cold.jobs_per_sec, cold.p50, cold.p95, cold.p99,
                serial.jobs_per_sec > 0 ? cold.jobs_per_sec / serial.jobs_per_sec
                                        : 0.0);
  }

  // Warm cache: first pass fills, measured passes hit.
  service.set_cache_capacity(job_count);
  run_pass(service, query_jobs, 1, 1);  // warm-up fill
  for (const std::size_t clients : {1, 4}) {
    const PassResult warm = run_pass(service, query_jobs, clients, repeat);
    std::printf("| concurrent, cached | %zu | %.1f | %.6f | %.6f | %.6f | %.1fx |\n",
                clients, warm.jobs_per_sec, warm.p50, warm.p95, warm.p99,
                serial.jobs_per_sec > 0 ? warm.jobs_per_sec / serial.jobs_per_sec
                                        : 0.0);
  }

  // Cache-hit speedup headline: cold single analyze vs cached single analyze.
  service.set_cache_capacity(0);
  service.set_cache_capacity(job_count);
  util::Timer cold_timer;
  (void)service.analyze_job(query_jobs.front());
  const double cold_s = cold_timer.elapsed_seconds();
  util::Timer hit_timer;
  (void)service.analyze_job(query_jobs.front());
  const double hit_s = hit_timer.elapsed_seconds();
  std::printf("\ncache-hit path: cold %.4fs vs hit %.6fs (%.0fx faster)\n", cold_s,
              hit_s, hit_s > 0 ? cold_s / hit_s : 0.0);
  return 0;
}
