// Concurrent analytics-service benchmark: the serial-vs-concurrent request
// path delta.  Builds a multi-job DSOS store, trains a budget model, then
// measures analyze_job throughput (jobs/sec) and latency percentiles at
// 1/2/4/8 client threads — cold (cache disabled) and warm (result cache on).
//
//   service_throughput [--jobs 24] [--nodes 4] [--duration 80] [--repeat 3]
//                      [--epochs 120] [--features 64] [--explain]
//
// Sharded fleet mode (--sharded): streams a synthetic multi-tenant fleet
// through the ShardedAnalyticsService while query clients fire bursty
// analyze_job traffic, then repeats a fixed-shard overload pass with the
// fleet admission budget off vs on.
//
//   service_throughput --sharded [--fleet 1024] [--ticks 96] [--tenant-nodes 16]
//                      [--shard-counts 1,2,4,8] [--query-clients 2] [--burst 8]
//                      [--bursts-per-client 16] [--window 32] [--hop 16]
//                      [--overload-shards 2] [--budget 4]
//                      [--flush-delay-us 400] [--epochs 80] [--features 64]
//
// Output is a markdown table (pasted into EXPERIMENTS.md).
#include "bench_common.hpp"
#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "hpas/anomalies.hpp"
#include "stream/sharded_service.hpp"
#include "telemetry/metrics.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace prodigy;

telemetry::JobTelemetry make_job(std::int64_t job_id, std::size_t nodes,
                                 double duration,
                                 hpas::AnomalySpec anomaly = hpas::healthy_spec(),
                                 std::vector<std::size_t> anomalous_nodes = {}) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name("LAMMPS");
  config.job_id = job_id;
  config.num_nodes = nodes;
  config.duration_s = duration;
  config.seed = static_cast<std::uint64_t>(job_id) * 7919 + 13;
  config.anomaly = anomaly;
  config.anomalous_nodes = std::move(anomalous_nodes);
  config.first_component_id = job_id * 100;
  return telemetry::generate_run(config);
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct PassResult {
  double jobs_per_sec = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// One benchmark pass: `clients` threads drain `repeat` rounds of `jobs`.
PassResult run_pass(const deploy::AnalyticsService& service,
                    const std::vector<std::int64_t>& jobs, std::size_t clients,
                    std::size_t repeat) {
  std::vector<std::int64_t> work;
  work.reserve(jobs.size() * repeat);
  for (std::size_t r = 0; r < repeat; ++r) {
    work.insert(work.end(), jobs.begin(), jobs.end());
  }
  std::vector<double> latencies(work.size(), 0.0);
  std::atomic<std::size_t> next{0};

  util::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= work.size()) return;
        util::Timer request;
        const auto analysis = service.analyze_job(work[i]);
        (void)analysis;
        latencies[i] = request.elapsed_seconds();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed = wall.elapsed_seconds();

  std::sort(latencies.begin(), latencies.end());
  PassResult result;
  result.jobs_per_sec =
      elapsed > 0 ? static_cast<double>(work.size()) / elapsed : 0.0;
  result.p50 = percentile(latencies, 0.50);
  result.p95 = percentile(latencies, 0.95);
  result.p99 = percentile(latencies, 0.99);
  return result;
}

// ---------------------------------------------------------------------------
// Sharded fleet mode

/// Cheap deterministic per-(node, tick, metric) reading: the scorer does the
/// same preprocessing/extraction/VAE work it would on generator telemetry,
/// but a 50k-node fleet does not need 50k generated NodeSeries held live.
double synth_reading(std::uint64_t node, std::uint64_t tick, std::uint64_t metric) {
  std::uint64_t x = node * 0x9e3779b97f4a7c15ULL + tick * 0xbf58476d1ce4e5b9ULL +
                    metric * 0x94d049bb133111ebULL + 1;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  // Gauge-ish positive value in [0, 100) with mild node-dependent baseline.
  return static_cast<double>(x % 10000) / 100.0;
}

struct FleetLayout {
  std::size_t fleet_nodes = 0;
  std::size_t tenant_nodes = 0;  // nodes per tenant job
  std::size_t columns = 0;
  std::vector<std::int64_t> tenants;  // job ids

  std::int64_t job_of(std::size_t node) const {
    return static_cast<std::int64_t>(node / tenant_nodes + 1);
  }
  std::int64_t component_of(std::size_t node) const {
    return static_cast<std::int64_t>(node) + job_of(node) * 1'000'000;
  }
};

stream::SampleBatch fleet_tick(const FleetLayout& layout, std::size_t tick) {
  stream::SampleBatch batch;
  batch.sequence = tick;
  batch.rows.reserve(layout.fleet_nodes);
  for (std::size_t n = 0; n < layout.fleet_nodes; ++n) {
    stream::SampleRow row;
    row.job_id = layout.job_of(n);
    row.component_id = layout.component_of(n);
    row.timestamp = static_cast<std::int64_t>(tick);
    row.app = "LAMMPS";
    row.values.resize(layout.columns);
    for (std::size_t c = 0; c < layout.columns; ++c) {
      row.values[c] = synth_reading(n, tick, c);
    }
    batch.rows.push_back(std::move(row));
  }
  return batch;
}

struct ShardedRun {
  std::uint64_t offered = 0, flushed = 0, shed = 0, windows = 0;
  double ingest_seconds = 0.0;
  double offer_p99 = 0.0;                 // per-offer dispatcher latency
  double score_p99 = 0.0;                 // worst per-shard window-score p99
  double query_p50 = 0.0, query_p99 = 0.0;
  std::uint64_t queries = 0, queries_failed = 0, queries_shed = 0;

  double rows_per_sec() const {
    return ingest_seconds > 0 ? static_cast<double>(offered) / ingest_seconds : 0.0;
  }
};

/// Streams `ticks` fleet frames; after a half-run warm-up, `query_clients`
/// threads fire bursts of analyze_job calls at random tenants until the
/// stream has fully drained (plus one guaranteed final burst each, so the
/// query columns are populated even when ingest outruns the clients).
/// `flush_delay` > 0 simulates a slow fleet via the fault-injection seam;
/// `queue_capacity` > 0 overrides the per-shard queue bound (overload pass).
ShardedRun run_sharded_pass(const core::ModelBundle& bundle,
                            const FleetLayout& layout, std::size_t shards,
                            std::size_t ticks, std::size_t query_clients,
                            std::size_t burst, std::size_t bursts_per_client,
                            std::size_t window, std::size_t hop,
                            std::size_t budget,
                            std::chrono::microseconds flush_delay =
                                std::chrono::microseconds(0),
                            std::size_t queue_capacity = 0) {
  stream::ShardedServiceConfig config;
  config.shards = shards;
  config.scorer.window = window;
  config.scorer.hop = hop;
  config.ingest.columns = layout.columns;
  if (queue_capacity > 0) config.ingest.queue_capacity = queue_capacity;
  config.max_total_queued_batches = budget;
  config.preprocess = stream::streaming_preprocess_defaults();
  stream::ShardFaultInjector faults(shards);
  stream::ShardedAnalyticsService service(
      bundle, config, flush_delay.count() > 0 ? &faults : nullptr);
  if (flush_delay.count() > 0) {
    for (std::size_t k = 0; k < shards; ++k) faults.set_delay(k, flush_delay);
  }

  // Isolate this pass's per-shard latency distributions (registry metrics are
  // process-global and the scaling loop reuses shard indices).
  auto& registry = util::MetricsRegistry::global();
  for (std::size_t k = 0; k < shards; ++k) {
    registry
        .histogram("prodigy_stream_shard" + std::to_string(k) +
                   "_window_score_seconds")
        .reset();
  }

  ShardedRun result;
  std::vector<double> offer_latencies;
  offer_latencies.reserve(ticks);

  std::atomic<bool> querying{false};
  std::atomic<bool> done{false};
  std::mutex query_mutex;
  std::vector<double> query_latencies;
  std::atomic<std::uint64_t> queries{0}, failed{0}, shed{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < query_clients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(c * 7919 + 17);
      std::vector<double> local;
      // One burst: a tenant fires `burst` back-to-back dashboard queries.
      auto fire_burst = [&] {
        const auto tenant = layout.tenants[rng() % layout.tenants.size()];
        for (std::size_t q = 0; q < burst; ++q) {
          util::Timer timer;
          try {
            const auto analysis = service.analyze_job(tenant);
            if (analysis.has_value()) {
              local.push_back(timer.elapsed_seconds());
              queries.fetch_add(1, std::memory_order_relaxed);
            } else {
              shed.fetch_add(1, std::memory_order_relaxed);
            }
          } catch (const std::exception&) {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      };
      // Fixed burst quota per client: deterministic query volume instead of
      // spinning on the result cache for the duration of the drain.  Bursts
      // overlap the stream's second half and the drain; leftovers finish
      // against the fully populated stores.
      for (std::size_t b = 0; b < bursts_per_client; ++b) {
        while (!querying.load(std::memory_order_acquire) &&
               !done.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        fire_burst();
      }
      std::lock_guard lock(query_mutex);
      query_latencies.insert(query_latencies.end(), local.begin(), local.end());
    });
  }

  // The measured window covers ingest AND drain (stop flushes every queue),
  // so rows/s is end-to-end scoring throughput, not enqueue speed.
  util::Timer wall;
  for (std::size_t t = 0; t < ticks; ++t) {
    auto batch = fleet_tick(layout, t);
    util::Timer offer_timer;
    (void)service.offer(batch);
    offer_latencies.push_back(offer_timer.elapsed_seconds());
    if (t == ticks / 2) querying.store(true, std::memory_order_release);
  }
  service.stop();
  result.ingest_seconds = wall.elapsed_seconds();
  done.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();

  const auto stats = service.stats();
  result.offered = stats.offered_samples;
  result.flushed = stats.totals.flushed_samples;
  result.shed = stats.shed_samples + stats.totals.dropped_samples;
  result.windows = service.windows_scored();
  result.queries = queries.load();
  result.queries_failed = failed.load();
  result.queries_shed = shed.load();

  std::sort(offer_latencies.begin(), offer_latencies.end());
  result.offer_p99 = percentile(offer_latencies, 0.99);
  for (std::size_t k = 0; k < shards; ++k) {
    const auto snapshot =
        registry
            .histogram("prodigy_stream_shard" + std::to_string(k) +
                       "_window_score_seconds")
            .snapshot();
    result.score_p99 = std::max(result.score_p99, snapshot.p99);
  }
  std::sort(query_latencies.begin(), query_latencies.end());
  result.query_p50 = percentile(query_latencies, 0.50);
  result.query_p99 = percentile(query_latencies, 0.99);
  return result;
}

std::vector<std::size_t> parse_counts(const std::string& csv) {
  std::vector<std::size_t> counts;
  std::size_t value = 0;
  bool pending = false;
  for (const char ch : csv) {
    if (ch >= '0' && ch <= '9') {
      value = value * 10 + static_cast<std::size_t>(ch - '0');
      pending = true;
    } else if (pending) {
      counts.push_back(value);
      value = 0;
      pending = false;
    }
  }
  if (pending) counts.push_back(value);
  return counts;
}

int run_sharded(const bench::Flags& flags) {
  const auto fleet = flags.get("fleet", static_cast<std::size_t>(1024));
  const auto ticks = flags.get("ticks", static_cast<std::size_t>(96));
  const auto tenant_nodes =
      flags.get("tenant-nodes", static_cast<std::size_t>(16));
  const auto query_clients =
      flags.get("query-clients", static_cast<std::size_t>(2));
  const auto burst = flags.get("burst", static_cast<std::size_t>(8));
  const auto bursts_per_client =
      flags.get("bursts-per-client", static_cast<std::size_t>(16));
  const auto window = flags.get("window", static_cast<std::size_t>(32));
  const auto hop = flags.get("hop", static_cast<std::size_t>(16));
  const auto shard_counts =
      parse_counts(flags.get("shard-counts", std::string("1,2,4,8")));
  const auto overload_shards =
      flags.get("overload-shards", static_cast<std::size_t>(2));
  // Must be below overload_shards * queue_capacity (4) or it can never trip.
  const auto budget = flags.get("budget", static_cast<std::size_t>(4));

  FleetLayout layout;
  layout.fleet_nodes = fleet;
  layout.tenant_nodes = tenant_nodes;
  layout.columns = telemetry::metric_count();
  for (std::size_t n = 0; n < fleet; n += tenant_nodes) {
    layout.tenants.push_back(layout.job_of(n));
  }

  // Train the shared bundle on a small generator store (same model the
  // single-shard mode benchmarks).
  deploy::DsosStore store;
  std::vector<std::int64_t> train_jobs;
  const auto memleak = hpas::table2_configurations().back();
  for (std::int64_t job = 1; job <= 8; ++job) {
    if (job % 4 == 0) {
      store.ingest(make_job(job, 4, 80.0, memleak, {0, 2}));
    } else {
      store.ingest(make_job(job, 4, 80.0));
    }
    train_jobs.push_back(job);
  }
  deploy::TrainFromStoreOptions options;
  options.preprocess.trim_seconds = 20;
  options.top_k_features = flags.get("features", static_cast<std::size_t>(64));
  options.model.vae.encoder_hidden = {24, 8};
  options.model.vae.latent_dim = 3;
  options.model.train.epochs = flags.get("epochs", static_cast<std::size_t>(80));
  options.model.train.batch_size = 16;
  options.model.train.learning_rate = 2e-3;
  options.model.train.validation_split = 0.0;
  options.model.train.early_stopping_patience = 0;
  util::Timer train_timer;
  const auto trained = deploy::AnalyticsService::train_from_store(
      store, train_jobs, options, /*explain=*/false);
  const core::ModelBundle& bundle = trained.bundle();
  std::printf("# sharded fleet: %zu nodes, %zu tenants x %zu nodes, %zu ticks, "
              "W=%zu H=%zu, trained in %.1fs\n",
              fleet, layout.tenants.size(), tenant_nodes, ticks, window, hop,
              train_timer.elapsed_seconds());

  std::printf("\n## sharded service: shard scaling (%zu-core host)\n\n",
              static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::printf("| shards | rows/s | windows | lost%% | score p99 (s) | "
              "query p50 (s) | query p99 (s) | queries |\n");
  std::printf("|---|---|---|---|---|---|---|---|\n");
  for (const std::size_t shards : shard_counts) {
    const ShardedRun run =
        run_sharded_pass(bundle, layout, shards, ticks, query_clients, burst,
                         bursts_per_client, window, hop, /*budget=*/0);
    std::printf("| %zu | %.0f | %llu | %.2f | %.5f | %.4f | %.4f | %llu |\n",
                shards, run.rows_per_sec(),
                static_cast<unsigned long long>(run.windows),
                run.offered > 0 ? 100.0 * static_cast<double>(run.shed) /
                                      static_cast<double>(run.offered)
                                : 0.0,
                run.score_p99, run.query_p50, run.query_p99,
                static_cast<unsigned long long>(run.queries));
  }

  // Overload: slow-flush fault (simulated saturated fleet) against small
  // per-shard Block queues, with the fleet admission budget off vs on.  Off,
  // the wedged queues stall producers (offer p99 ~ flush time); on, the
  // dispatcher sheds whole batches up front and the offer path stays bounded.
  const auto flush_delay = std::chrono::microseconds(
      flags.get("flush-delay-us", static_cast<std::size_t>(400)));
  std::printf("\n## sharded service: overload admission (%zu shards, "
              "budget %zu batches, %lldus/flush fault)\n\n",
              overload_shards, budget,
              static_cast<long long>(flush_delay.count()));
  std::printf("| admission | offer p99 (s) | shed%% | query p99 (s) | "
              "windows |\n");
  std::printf("|---|---|---|---|---|\n");
  for (const bool admission_on : {false, true}) {
    const ShardedRun run = run_sharded_pass(
        bundle, layout, overload_shards, ticks, query_clients, burst,
        bursts_per_client, window, hop, admission_on ? budget : 0, flush_delay,
        /*queue_capacity=*/4);
    std::printf("| %s | %.5f | %.2f | %.4f | %llu |\n",
                admission_on ? "budget on" : "off (Block only)", run.offer_p99,
                run.offered > 0 ? 100.0 * static_cast<double>(run.shed) /
                                      static_cast<double>(run.offered)
                                : 0.0,
                run.query_p99, static_cast<unsigned long long>(run.windows));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.has("sharded")) return run_sharded(flags);
  const auto job_count = flags.get("jobs", static_cast<std::size_t>(24));
  const auto nodes = flags.get("nodes", static_cast<std::size_t>(4));
  const double duration = flags.get("duration", 80.0);
  const auto repeat = flags.get("repeat", static_cast<std::size_t>(3));
  const bool explain = flags.has("explain");

  deploy::DsosStore store;
  std::vector<std::int64_t> train_jobs, query_jobs;
  const auto memleak = hpas::table2_configurations().back();
  for (std::size_t i = 0; i < job_count; ++i) {
    const auto job_id = static_cast<std::int64_t>(i + 1);
    // Every 4th job carries a memleak on half its nodes, both in training
    // (chi-square needs two classes) and in the query set.
    if (i % 4 == 3) {
      std::vector<std::size_t> bad;
      for (std::size_t n = 0; n < nodes; n += 2) bad.push_back(n);
      store.ingest(make_job(job_id, nodes, duration, memleak, bad));
    } else {
      store.ingest(make_job(job_id, nodes, duration));
    }
    if (i < job_count / 2) {
      train_jobs.push_back(job_id);
    } else {
      query_jobs.push_back(job_id);
    }
  }
  std::printf("# store: %zu jobs x %zu nodes (%.0fs series), querying %zu jobs, "
              "repeat %zu\n",
              job_count, nodes, duration, query_jobs.size(), repeat);

  deploy::TrainFromStoreOptions options;
  options.preprocess.trim_seconds = 20;
  options.top_k_features = flags.get("features", static_cast<std::size_t>(64));
  options.model.vae.encoder_hidden = {24, 8};
  options.model.vae.latent_dim = 3;
  options.model.train.epochs = flags.get("epochs", static_cast<std::size_t>(120));
  options.model.train.batch_size = 16;
  options.model.train.learning_rate = 2e-3;
  options.model.train.validation_split = 0.0;
  options.model.train.early_stopping_patience = 0;

  util::Timer train_timer;
  deploy::AnalyticsService service =
      deploy::AnalyticsService::train_from_store(store, train_jobs, options, explain);
  std::printf("# trained in %.1fs (explain=%d)\n", train_timer.elapsed_seconds(),
              explain ? 1 : 0);

  // Serial baseline: one client, per-node fan-out pinned to a 1-thread pool,
  // no result cache — the PR-1 request path.
  util::ThreadPool serial_pool(1);
  service.set_thread_pool(&serial_pool);
  service.set_cache_capacity(0);
  const PassResult serial = run_pass(service, query_jobs, 1, repeat);
  std::printf("\n## service_throughput (%zu-core host)\n\n",
              static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::printf("| mode | clients | jobs/s | p50 (s) | p95 (s) | p99 (s) | vs serial |\n");
  std::printf("|---|---|---|---|---|---|---|\n");
  std::printf("| serial (PR-1 path) | 1 | %.1f | %.4f | %.4f | %.4f | 1.0x |\n",
              serial.jobs_per_sec, serial.p50, serial.p95, serial.p99);

  // Concurrent path, cache still off: pooled per-node fan-out + shared-read
  // DSOS under 1/2/4/8 client threads.
  service.set_thread_pool(nullptr);
  for (const std::size_t clients : {1, 2, 4, 8}) {
    const PassResult cold = run_pass(service, query_jobs, clients, repeat);
    std::printf("| concurrent, cold | %zu | %.1f | %.4f | %.4f | %.4f | %.1fx |\n",
                clients, cold.jobs_per_sec, cold.p50, cold.p95, cold.p99,
                serial.jobs_per_sec > 0 ? cold.jobs_per_sec / serial.jobs_per_sec
                                        : 0.0);
  }

  // Warm cache: first pass fills, measured passes hit.
  service.set_cache_capacity(job_count);
  run_pass(service, query_jobs, 1, 1);  // warm-up fill
  for (const std::size_t clients : {1, 4}) {
    const PassResult warm = run_pass(service, query_jobs, clients, repeat);
    std::printf("| concurrent, cached | %zu | %.1f | %.6f | %.6f | %.6f | %.1fx |\n",
                clients, warm.jobs_per_sec, warm.p50, warm.p95, warm.p99,
                serial.jobs_per_sec > 0 ? warm.jobs_per_sec / serial.jobs_per_sec
                                        : 0.0);
  }

  // Cache-hit speedup headline: cold single analyze vs cached single analyze.
  service.set_cache_capacity(0);
  service.set_cache_capacity(job_count);
  util::Timer cold_timer;
  (void)service.analyze_job(query_jobs.front());
  const double cold_s = cold_timer.elapsed_seconds();
  util::Timer hit_timer;
  (void)service.analyze_job(query_jobs.front());
  const double hit_s = hit_timer.elapsed_seconds();
  std::printf("\ncache-hit path: cold %.4fs vs hit %.6fs (%.0fx faster)\n", cold_s,
              hit_s, hit_s > 0 ? cold_s / hit_s : 0.0);
  return 0;
}
