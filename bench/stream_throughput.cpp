// Streaming-subsystem benchmark: sustained ingest throughput and per-window
// scoring latency for the bounded-queue ingestor -> sliding-window scorer ->
// alert bus chain.  Replays a multi-node run as an unpaced firehose (the
// worst case: producers never sleep) through several window/hop and
// backpressure configurations.
//
//   stream_throughput [--nodes 32] [--duration 600] [--train-jobs 8]
//                     [--train-nodes 4] [--train-duration 80]
//                     [--epochs 120] [--features 64]
//
// Output is a markdown table (pasted into EXPERIMENTS.md).
#include "bench_common.hpp"
#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "hpas/anomalies.hpp"
#include "stream/event_bus.hpp"
#include "stream/ingestor.hpp"
#include "stream/online_scorer.hpp"
#include "telemetry/metrics.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

#include <cstdio>
#include <vector>

namespace {

using namespace prodigy;

telemetry::JobTelemetry make_job(std::int64_t job_id, std::size_t nodes,
                                 double duration,
                                 hpas::AnomalySpec anomaly = hpas::healthy_spec(),
                                 std::vector<std::size_t> anomalous_nodes = {}) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name("LAMMPS");
  config.job_id = job_id;
  config.num_nodes = nodes;
  config.duration_s = duration;
  config.seed = static_cast<std::uint64_t>(job_id) * 7919 + 13;
  config.anomaly = std::move(anomaly);
  config.anomalous_nodes = std::move(anomalous_nodes);
  config.first_component_id = job_id * 100;
  return telemetry::generate_run(config);
}

/// One frame per sample tick: row t of every node's series (ldmsd aggregator
/// flush shape, same as the prodigy_stream replay tool).
std::vector<stream::SampleBatch> batches_from_run(const telemetry::JobTelemetry& job) {
  std::size_t ticks = 0;
  for (const auto& node : job.nodes) ticks = std::max(ticks, node.values.rows());
  std::vector<stream::SampleBatch> batches;
  batches.reserve(ticks);
  for (std::size_t t = 0; t < ticks; ++t) {
    stream::SampleBatch batch;
    batch.sequence = t;
    for (const auto& node : job.nodes) {
      if (t >= node.values.rows()) continue;
      stream::SampleRow row;
      row.job_id = node.job_id;
      row.component_id = node.component_id;
      row.timestamp = static_cast<std::int64_t>(t);
      row.app = node.app;
      const auto values = node.values.row(t);
      row.values.assign(values.begin(), values.end());
      batch.rows.push_back(std::move(row));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

struct PassConfig {
  const char* label;
  std::size_t window;
  std::size_t hop;
  stream::BackpressurePolicy policy;
  std::size_t queue_capacity;
  stream::ExtractionMode extraction = stream::ExtractionMode::kIncremental;
};

struct PassResult {
  double samples_per_sec = 0.0;
  double realtime_multiple = 0.0;
  std::uint64_t windows = 0;
  std::uint64_t drops = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

PassResult run_pass(const core::ModelBundle& bundle,
                    const std::vector<stream::SampleBatch>& workload,
                    const PassConfig& pass) {
  auto& histogram = util::MetricsRegistry::global().histogram(
      "prodigy_stream_window_score_seconds");
  histogram.reset();  // isolate this pass's latency distribution

  deploy::DsosStore store;
  stream::EventBus bus;
  stream::OnlineScorerConfig scorer_config;
  scorer_config.window = pass.window;
  scorer_config.hop = pass.hop;
  scorer_config.extraction = pass.extraction;
  stream::OnlineScorer scorer(bundle, bus, scorer_config);
  stream::IngestorConfig ingest_config;
  ingest_config.policy = pass.policy;
  ingest_config.queue_capacity = pass.queue_capacity;
  stream::StreamIngestor ingestor(store, ingest_config, &scorer);

  util::Timer wall;
  for (const auto& batch : workload) ingestor.offer(batch);  // copies: reusable
  ingestor.stop();
  scorer.drain();
  const double elapsed = wall.elapsed_seconds();

  const auto stats = ingestor.stats();
  const auto after = histogram.snapshot();
  PassResult result;
  result.samples_per_sec =
      elapsed > 0 ? static_cast<double>(stats.flushed_samples) / elapsed : 0.0;
  result.realtime_multiple =
      elapsed > 0 ? static_cast<double>(workload.size()) / elapsed : 0.0;
  result.windows = scorer.windows_scored();
  result.drops = stats.dropped_samples;
  // The histogram was reset on entry, so the snapshot is this pass alone.
  // A pass that scored nothing (fully shed) has no latency distribution.
  if (after.count > 0) {
    result.p50_ms = after.p50 * 1e3;
    result.p99_ms = after.p99 * 1e3;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto nodes = flags.get("nodes", static_cast<std::size_t>(32));
  const double duration = flags.get("duration", 600.0);
  const auto train_jobs = flags.get("train-jobs", static_cast<std::size_t>(8));
  const auto train_nodes = flags.get("train-nodes", static_cast<std::size_t>(4));
  const double train_duration = flags.get("train-duration", 80.0);

  // --- Train a budget bundle from a small batch store (same recipe as the
  // service_throughput bench).
  deploy::DsosStore train_store;
  std::vector<std::int64_t> train_ids;
  const auto memleak = hpas::table2_configurations().back();
  for (std::size_t i = 0; i < train_jobs; ++i) {
    const auto job_id = static_cast<std::int64_t>(i + 1);
    if (i % 4 == 3) {
      std::vector<std::size_t> bad;
      for (std::size_t n = 0; n < train_nodes; n += 2) bad.push_back(n);
      train_store.ingest(make_job(job_id, train_nodes, train_duration, memleak, bad));
    } else {
      train_store.ingest(make_job(job_id, train_nodes, train_duration));
    }
    train_ids.push_back(job_id);
  }
  deploy::TrainFromStoreOptions options;
  options.preprocess.trim_seconds = 20;
  options.top_k_features = flags.get("features", static_cast<std::size_t>(64));
  options.model.vae.encoder_hidden = {24, 8};
  options.model.vae.latent_dim = 3;
  options.model.train.epochs = flags.get("epochs", static_cast<std::size_t>(120));
  options.model.train.batch_size = 16;
  options.model.train.learning_rate = 2e-3;
  options.model.train.validation_split = 0.0;
  options.model.train.early_stopping_patience = 0;

  util::Timer train_timer;
  const auto service = deploy::AnalyticsService::train_from_store(
      train_store, train_ids, options, /*explain=*/false);
  const core::ModelBundle& bundle = service.bundle();
  std::printf("# trained budget bundle in %.1fs (%zu jobs x %zu nodes)\n",
              train_timer.elapsed_seconds(), train_jobs, train_nodes);

  // --- Replay workload: one job, half its nodes carrying a memleak.
  std::vector<std::size_t> bad;
  for (std::size_t n = 0; n < nodes; n += 2) bad.push_back(n);
  const auto workload =
      batches_from_run(make_job(9001, nodes, duration, memleak, bad));
  std::size_t total_samples = 0;
  for (const auto& batch : workload) total_samples += batch.sample_count();
  std::printf("# workload: %zu ticks x %zu nodes = %zu samples (1 Hz firehose, "
              "unpaced)\n\n",
              workload.size(), nodes, total_samples);

  const PassConfig passes[] = {
      {"block", 64, 16, stream::BackpressurePolicy::Block, 256},
      {"block", 64, 64, stream::BackpressurePolicy::Block, 256},
      {"block", 32, 8, stream::BackpressurePolicy::Block, 256},
      {"drop-oldest, queue 4", 64, 16, stream::BackpressurePolicy::DropOldest, 4},
  };
  std::printf("## stream_throughput (%zu-node firehose replay)\n\n", nodes);
  std::printf("| policy | W | H | samples/s | x real time | windows | "
              "score p50 (ms) | score p99 (ms) | dropped |\n");
  std::printf("|---|---|---|---|---|---|---|---|---|\n");
  for (const auto& pass : passes) {
    const PassResult result = run_pass(bundle, workload, pass);
    std::printf("| %s | %zu | %zu | %.0f | %.0fx | %llu | ", pass.label,
                pass.window, pass.hop, result.samples_per_sec,
                result.realtime_multiple,
                static_cast<unsigned long long>(result.windows));
    if (result.windows > 0) {
      std::printf("%.2f | %.2f | ", result.p50_ms, result.p99_ms);
    } else {
      std::printf("- | - | ");
    }
    std::printf("%llu |\n", static_cast<unsigned long long>(result.drops));
  }

  // --- Deep-window extraction comparison: the incremental engine's target
  // shape (W=1024, H=16).  At 1 Hz a 1024-sample window needs a run longer
  // than the firehose workload above, so this section replays a smaller,
  // longer job and scores it through both extraction modes.
  const auto deep_nodes = flags.get("deep-nodes", static_cast<std::size_t>(8));
  const double deep_duration = flags.get("deep-duration", 2048.0);
  std::vector<std::size_t> deep_bad;
  for (std::size_t n = 0; n < deep_nodes; n += 2) deep_bad.push_back(n);
  const auto deep_workload = batches_from_run(
      make_job(9002, deep_nodes, deep_duration, memleak, deep_bad));
  std::printf("\n## deep-window extraction modes (%zu ticks x %zu nodes, "
              "W=1024 H=16)\n\n",
              deep_workload.size(), deep_nodes);
  std::printf("| extraction | samples/s | windows | score p50 (ms) | "
              "score p99 (ms) |\n");
  std::printf("|---|---|---|---|---|\n");
  const PassConfig deep_passes[] = {
      {"full-recompute", 1024, 16, stream::BackpressurePolicy::Block, 256,
       stream::ExtractionMode::kFullRecompute},
      {"incremental", 1024, 16, stream::BackpressurePolicy::Block, 256,
       stream::ExtractionMode::kIncremental},
  };
  auto& registry = util::MetricsRegistry::global();
  double deep_p50[2] = {0.0, 0.0};
  for (std::size_t i = 0; i < 2; ++i) {
    const double windows_before =
        registry.counter("prodigy_features_incremental_windows_total").value();
    const double fallbacks_before =
        registry.counter("prodigy_features_incremental_exact_fallbacks_total")
            .value();
    const PassResult result = run_pass(bundle, deep_workload, deep_passes[i]);
    deep_p50[i] = result.p50_ms;
    std::printf("| %s | %.0f | %llu | %.3f | %.3f |\n", deep_passes[i].label,
                result.samples_per_sec,
                static_cast<unsigned long long>(result.windows), result.p50_ms,
                result.p99_ms);
    // windows_total counts node-windows; fallbacks count metric-windows, so
    // the honest rate divides by windows x metrics-per-node.
    const double node_windows =
        registry.counter("prodigy_features_incremental_windows_total").value() -
        windows_before;
    const double metric_windows =
        node_windows * static_cast<double>(telemetry::metric_count());
    if (metric_windows > 0) {
      const double fallbacks =
          registry.counter("prodigy_features_incremental_exact_fallbacks_total")
              .value() -
          fallbacks_before;
      std::printf("# incremental: %.0f node-windows (%.0f metric-windows), "
                  "%.0f exact fallbacks (%.2f%% of metric-windows)\n",
                  node_windows, metric_windows, fallbacks,
                  100.0 * fallbacks / metric_windows);
    }
  }
  if (deep_p50[1] > 0.0) {
    std::printf("\n# incremental p50 speedup over full recompute: %.1fx\n",
                deep_p50[0] / deep_p50[1]);
  }
  return 0;
}
