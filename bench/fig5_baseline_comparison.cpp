// Figure 5 (paper §6.1): macro-F1 comparison of Prodigy against USAD,
// Majority Label Prediction, Random Prediction, Isolation Forest, and Local
// Outlier Factor on the Eclipse and Volta collections, averaged over 5
// repetitions of the §5.4.2 split (20% train with a 10% anomaly cap, 80%
// test).  Paper reference values: Prodigy 0.95 / 0.88, USAD 0.68 / 0.84,
// Majority ~0.47, Random ~0.39-0.47, IF 0.31 / 0.86, LOF 0.15 / ~0.6.
//
// Defaults are budget-scaled for a single core; paper scale:
//   fig5_baseline_comparison --scale 1.0 --duration 1800 --trim 60 \
//     --features 2000 --epochs 2400 --batch 256 --lr 1e-4 --rounds 5
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace prodigy;
  util::set_log_level(util::LogLevel::Warn);
  const bench::Flags flags(argc, argv);
  const auto data_options = bench::dataset_options_from_flags(flags);
  const auto model_options = bench::model_options_from_flags(flags);
  const std::size_t rounds = flags.get("rounds", static_cast<std::size_t>(5));

  std::printf("=== Figure 5: Prodigy vs baselines (macro average F1, %zu rounds) ===\n",
              rounds);
  util::CsvTable csv;
  csv.header = {"dataset", "model", "macro_f1", "stddev", "accuracy",
                "train_s", "infer_s"};

  for (const std::string system : {"Eclipse", "Volta"}) {
    const auto dataset = bench::build_system_dataset(system, data_options);
    std::printf("\n%-28s %8s %8s %9s %9s %9s\n", ("[" + system + "] model").c_str(),
                "F1", "+/-", "accuracy", "train(s)", "infer(s)");
    for (const auto& [name, factory] :
         bench::fig5_roster(model_options, flags.has("extended"))) {
      const auto result = eval::repeated_prodigy_eval(
          factory, dataset, rounds, 42 + data_options.seed, {}, 0.2, 0.1);
      double train_s = 0.0, infer_s = 0.0;
      for (const auto& round : result.rounds) {
        train_s += round.train_seconds;
        infer_s += round.inference_seconds;
      }
      train_s /= static_cast<double>(rounds);
      infer_s /= static_cast<double>(rounds);
      std::printf("%-28s %8.3f %8.3f %9.3f %9.2f %9.3f\n", name.c_str(),
                  result.mean_f1(), result.stddev_f1(), result.mean_accuracy(),
                  train_s, infer_s);
      csv.rows.push_back({system, name, std::to_string(result.mean_f1()),
                          std::to_string(result.stddev_f1()),
                          std::to_string(result.mean_accuracy()),
                          std::to_string(train_s), std::to_string(infer_s)});
    }
  }

  const std::string out = flags.get("out", std::string("fig5_results.csv"));
  util::write_csv(out, csv);
  std::printf("\n# results written to %s\n", out.c_str());
  return 0;
}
