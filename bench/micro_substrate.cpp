// Micro-benchmarks for the substrate kernels that determine whether the
// deployment's offline training and online scoring budgets (paper §4, §6.2)
// are attainable: GEMM, FFT, single feature extractors, chi-square scoring,
// one VAE training epoch, and the baselines' fit costs.
#include "bench_common.hpp"

#include "baselines/isolation_forest.hpp"
#include "baselines/lof.hpp"

#include "features/extractors.hpp"
#include "features/fft.hpp"
#include "features/registry.hpp"
#include "nn/trainer.hpp"
#include "telemetry/metrics.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/metrics.hpp"

#include <benchmark/benchmark.h>

#include <cmath>

namespace {

using namespace prodigy;

tensor::Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.gaussian();
  return m;
}

std::vector<double> random_series(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.gaussian();
  return xs;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 1);
  const auto b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * static_cast<double>(n * n * n) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Dense-forward: fused kernel vs a faithful replica of the pre-kernel-library
// scalar path (k-blocked axpy GEMM into a fresh matrix, separate bias and
// activation passes, and the two per-call caching copies Dense::forward used
// to make).  Same numerics, so the ratio is pure kernel/fusion/allocation win.

tensor::Matrix scalar_matmul_prepr(const tensor::Matrix& a, const tensor::Matrix& b) {
  constexpr std::size_t kBlock = 64;
  tensor::Matrix c(a.rows(), b.cols());
  const std::size_t n = b.cols();
  const std::size_t inner = a.cols();
  for (std::size_t kk = 0; kk < inner; kk += kBlock) {
    const std::size_t k_hi = std::min(inner, kk + kBlock);
    for (std::size_t r = 0; r < a.rows(); ++r) {
      const double* a_row = a.data() + r * inner;
      double* c_row = c.data() + r * n;
      for (std::size_t k = kk; k < k_hi; ++k) {
        const double a_val = a_row[k];
        const double* b_row = b.data() + k * n;
        for (std::size_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
      }
    }
  }
  return c;
}

void BM_DenseForwardScalarBaseline(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto in = static_cast<std::size_t>(state.range(1));
  const auto out_features = static_cast<std::size_t>(state.range(2));
  const auto x = random_matrix(m, in, 21);
  const auto w = random_matrix(in, out_features, 22);
  const auto bias = random_series(out_features, 23);
  for (auto _ : state) {
    tensor::Matrix cached_input = x;  // pre-PR Dense cached by value
    tensor::Matrix out = scalar_matmul_prepr(x, w);
    tensor::add_row_vector(out, bias);
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out.data()[i] < 0.0) out.data()[i] = 0.0;  // ReLU pass
    }
    tensor::Matrix cached_output = out;  // and cached the activation too
    benchmark::DoNotOptimize(cached_input.data());
    benchmark::DoNotOptimize(cached_output.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 *
          static_cast<double>(m * in * out_features) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DenseForwardScalarBaseline)
    ->Args({32, 1024, 64})
    ->Args({1, 1024, 64})
    ->Unit(benchmark::kMicrosecond);

void BM_DenseForwardFused(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto in = static_cast<std::size_t>(state.range(1));
  const auto out_features = static_cast<std::size_t>(state.range(2));
  const auto x = random_matrix(m, in, 21);
  const auto w = random_matrix(in, out_features, 22);
  const auto bias = random_series(out_features, 23);
  tensor::Matrix out;  // reused: allocation-free after the first iteration
  for (auto _ : state) {
    tensor::kernels::dense_forward(x, w, bias, tensor::kernels::FusedAct::ReLU,
                                   out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 *
          static_cast<double>(m * in * out_features) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DenseForwardFused)
    ->Args({32, 1024, 64})
    ->Args({1, 1024, 64})
    ->Unit(benchmark::kMicrosecond);

// GEMM sweep over the actual VAE layer stack (encoder 1024->64->24, the two
// 24->8 heads, decoder 8->24->64->1024) at streaming (m=1), training-batch
// (m=32), and bulk-scoring (m=256) heights.  Per-shape GFLOP/s lands in the
// metrics registry so tooling can scrape kernel throughput alongside the
// benchmark output.
void GemmVaeShapeArgs(benchmark::internal::Benchmark* bench) {
  const core::ProdigyConfig config = bench::prodigy_config({});
  std::vector<std::pair<std::int64_t, std::int64_t>> layers;
  std::int64_t in = 1024;  // dataset width after top-k feature selection
  for (const auto units : config.vae.encoder_hidden) {
    layers.emplace_back(in, static_cast<std::int64_t>(units));
    in = static_cast<std::int64_t>(units);
  }
  layers.emplace_back(in, static_cast<std::int64_t>(config.vae.latent_dim));
  std::int64_t din = static_cast<std::int64_t>(config.vae.latent_dim);
  for (auto it = config.vae.encoder_hidden.rbegin();
       it != config.vae.encoder_hidden.rend(); ++it) {
    layers.emplace_back(din, static_cast<std::int64_t>(*it));
    din = static_cast<std::int64_t>(*it);
  }
  layers.emplace_back(din, 1024);
  for (const std::int64_t m : {1, 32, 256}) {
    for (const auto& [k, n] : layers) bench->Args({m, k, n});
  }
}

void BM_GemmVaeShapes(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  const auto x = random_matrix(m, k, 31);
  const auto w = random_matrix(k, n, 32);
  tensor::Matrix out;
  util::Timer timer;
  for (auto _ : state) {
    tensor::matmul_into(x, w, out);
    benchmark::DoNotOptimize(out.data());
  }
  const double elapsed = timer.elapsed_seconds();
  const double flops = 2.0 * static_cast<double>(m * k * n);
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * flops / 1e9,
      benchmark::Counter::kIsRate);
  if (elapsed > 0.0) {
    util::MetricsRegistry::global()
        .gauge("prodigy_bench_gemm_gflops_m" + std::to_string(m) + "_k" +
               std::to_string(k) + "_n" + std::to_string(n))
        .update_max(static_cast<double>(state.iterations()) * flops /
                    (elapsed * 1e9));
  }
}
BENCHMARK(BM_GemmVaeShapes)->Apply(GemmVaeShapeArgs)->Unit(benchmark::kMicrosecond);

void BM_PowerSpectrum(benchmark::State& state) {
  const auto xs = random_series(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::power_spectrum(xs));
  }
}
BENCHMARK(BM_PowerSpectrum)->Arg(256)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_ApproximateEntropy(benchmark::State& state) {
  const auto xs = random_series(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::approximate_entropy(xs, 2, 0.2));
  }
}
BENCHMARK(BM_ApproximateEntropy)->Arg(256)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_FullRegistryOneSeries(benchmark::State& state) {
  const auto xs = random_series(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::compute_all_features(xs));
  }
  state.counters["features"] = static_cast<double>(features::features_per_metric());
}
BENCHMARK(BM_FullRegistryOneSeries)->Arg(120)->Arg(1200)->Unit(benchmark::kMillisecond);

void BM_Chi2Scores(benchmark::State& state) {
  const auto X = [&] {
    auto m = random_matrix(static_cast<std::size_t>(state.range(0)), 1024, 6);
    for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = std::abs(m.data()[i]);
    return m;
  }();
  std::vector<int> y(X.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = i % 10 == 0 ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::chi2_scores(X, y));
  }
}
BENCHMARK(BM_Chi2Scores)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_VaeEpoch(benchmark::State& state) {
  const auto X = random_matrix(256, static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    state.PauseTiming();
    bench::ModelOptions options;
    options.epochs = 1;
    core::ProdigyDetector detector(bench::prodigy_config(options));
    state.ResumeTiming();
    detector.fit_healthy(X);
  }
}
BENCHMARK(BM_VaeEpoch)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_IsolationForestFit(benchmark::State& state) {
  const auto X = random_matrix(static_cast<std::size_t>(state.range(0)), 256, 8);
  std::vector<int> y(X.rows(), 0);
  for (auto _ : state) {
    baselines::IsolationForest forest;
    forest.fit(X, y);
    benchmark::DoNotOptimize(forest);
  }
}
BENCHMARK(BM_IsolationForestFit)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_LofFit(benchmark::State& state) {
  const auto X = random_matrix(static_cast<std::size_t>(state.range(0)), 256, 9);
  std::vector<int> y(X.rows(), 0);
  for (auto _ : state) {
    baselines::LocalOutlierFactor lof;
    lof.fit(X, y);
    benchmark::DoNotOptimize(lof);
  }
}
BENCHMARK(BM_LofFit)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_TelemetryGeneration(benchmark::State& state) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name("HACC");
  config.duration_s = static_cast<double>(state.range(0));
  config.num_nodes = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(telemetry::generate_run(config));
    ++config.seed;
  }
  state.counters["datapoints_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * config.duration_s * 4.0 *
          static_cast<double>(telemetry::metric_count()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TelemetryGeneration)->Arg(300)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
