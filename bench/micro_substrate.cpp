// Micro-benchmarks for the substrate kernels that determine whether the
// deployment's offline training and online scoring budgets (paper §4, §6.2)
// are attainable: GEMM, FFT, single feature extractors, chi-square scoring,
// one VAE training epoch, and the baselines' fit costs.
#include "bench_common.hpp"

#include "features/extractors.hpp"
#include "features/fft.hpp"
#include "features/registry.hpp"
#include "nn/trainer.hpp"
#include "telemetry/metrics.hpp"
#include "tensor/ops.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace prodigy;

tensor::Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.gaussian();
  return m;
}

std::vector<double> random_series(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.gaussian();
  return xs;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 1);
  const auto b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * static_cast<double>(n * n * n) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_PowerSpectrum(benchmark::State& state) {
  const auto xs = random_series(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::power_spectrum(xs));
  }
}
BENCHMARK(BM_PowerSpectrum)->Arg(256)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_ApproximateEntropy(benchmark::State& state) {
  const auto xs = random_series(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::approximate_entropy(xs, 2, 0.2));
  }
}
BENCHMARK(BM_ApproximateEntropy)->Arg(256)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_FullRegistryOneSeries(benchmark::State& state) {
  const auto xs = random_series(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::compute_all_features(xs));
  }
  state.counters["features"] = static_cast<double>(features::features_per_metric());
}
BENCHMARK(BM_FullRegistryOneSeries)->Arg(120)->Arg(1200)->Unit(benchmark::kMillisecond);

void BM_Chi2Scores(benchmark::State& state) {
  const auto X = [&] {
    auto m = random_matrix(static_cast<std::size_t>(state.range(0)), 1024, 6);
    for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = std::abs(m.data()[i]);
    return m;
  }();
  std::vector<int> y(X.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = i % 10 == 0 ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::chi2_scores(X, y));
  }
}
BENCHMARK(BM_Chi2Scores)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_VaeEpoch(benchmark::State& state) {
  const auto X = random_matrix(256, static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    state.PauseTiming();
    bench::ModelOptions options;
    options.epochs = 1;
    core::ProdigyDetector detector(bench::prodigy_config(options));
    state.ResumeTiming();
    detector.fit_healthy(X);
  }
}
BENCHMARK(BM_VaeEpoch)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_IsolationForestFit(benchmark::State& state) {
  const auto X = random_matrix(static_cast<std::size_t>(state.range(0)), 256, 8);
  std::vector<int> y(X.rows(), 0);
  for (auto _ : state) {
    baselines::IsolationForest forest;
    forest.fit(X, y);
    benchmark::DoNotOptimize(forest);
  }
}
BENCHMARK(BM_IsolationForestFit)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_LofFit(benchmark::State& state) {
  const auto X = random_matrix(static_cast<std::size_t>(state.range(0)), 256, 9);
  std::vector<int> y(X.rows(), 0);
  for (auto _ : state) {
    baselines::LocalOutlierFactor lof;
    lof.fit(X, y);
    benchmark::DoNotOptimize(lof);
  }
}
BENCHMARK(BM_LofFit)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_TelemetryGeneration(benchmark::State& state) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name("HACC");
  config.duration_s = static_cast<double>(state.range(0));
  config.num_nodes = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(telemetry::generate_run(config));
    ++config.seed;
  }
  state.counters["datapoints_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * config.duration_s * 4.0 *
          static_cast<double>(telemetry::metric_count()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TelemetryGeneration)->Arg(300)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
