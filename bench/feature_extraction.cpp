// Feature-extraction engine microbenchmarks: the cold-path cost the
// SeriesProfile rewrite targets.  BM_ExtractWindow is the acceptance
// workload (64 metrics x 1024 samples, the size of one node's scoring
// window); BM_Group_* breaks a single series down by extractor group so
// regressions are attributable.  Set PRODIGY_METRICS_OUT=<path> to dump the
// metrics registry (stage histograms) after the run.
#include "bench_common.hpp"

#include "features/extractors.hpp"
#include "features/incremental_profile.hpp"
#include "features/kernels.hpp"
#include "features/registry.hpp"
#include "features/series_profile.hpp"
#include "util/aligned.hpp"
#include "util/metrics.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>
#include <string>

namespace {

using namespace prodigy;
namespace kernels = features::kernels;

tensor::Matrix make_window(std::size_t samples, std::size_t metrics,
                           std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Matrix values(samples, metrics);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values.data()[i] = rng.gaussian(5.0, 2.0);
  }
  return values;
}

std::vector<double> make_series(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.gaussian(5.0, 2.0);
  return xs;
}

/// The acceptance workload: full extraction of a 64-metric x 1024-sample
/// window (one node's scoring frame).
void BM_ExtractWindow(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  const auto metrics = static_cast<std::size_t>(state.range(1));
  const tensor::Matrix values = make_window(samples, metrics, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::extract_node_features(values));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(metrics));
  state.counters["windows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExtractWindow)
    ->Args({1024, 64})
    ->Args({256, 64})
    ->Args({1024, 256})
    ->Unit(benchmark::kMillisecond);

/// One series through the whole registry, scratch reused across iterations
/// (the steady-state cost inside extract_node_features).
void BM_ComputeAllFeatures(benchmark::State& state) {
  const auto xs = make_series(static_cast<std::size_t>(state.range(0)), 7);
  std::vector<double> out(features::features_per_metric());
  features::FeatureScratch scratch;
  for (auto _ : state) {
    features::compute_all_features(xs, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ComputeAllFeatures)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

/// Shared-profile construction alone (the one sort + one FFT + one fit +
/// the moment passes that every group reads from).
void BM_SeriesProfile(benchmark::State& state) {
  const auto xs = make_series(static_cast<std::size_t>(state.range(0)), 11);
  features::FeatureScratch scratch;
  for (auto _ : state) {
    auto profile = features::compute_series_profile(xs, scratch);
    benchmark::DoNotOptimize(&profile);
  }
}
BENCHMARK(BM_SeriesProfile)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

/// Per-hop cost of the incremental extractor: absorb `hop` new rows and
/// emit all features for the sliding window.  Compare against
/// BM_FullRecomputeHop at the same (window, hop) — the incremental engine's
/// reason to exist is this per-hop delta.  Single metric column so the
/// numbers isolate the per-series engines (no parallel_for fan-out noise).
void BM_IncrementalHop(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  const auto hop = static_cast<std::size_t>(state.range(1));
  features::IncrementalConfig config;
  config.window = window;
  config.hop = hop;
  features::IncrementalNodeExtractor extractor(
      1, {features::ColumnKind::kGauge}, config);
  std::vector<double> out(features::features_per_metric());
  // A long random ribbon replayed in hop-sized deltas (wraps around).
  const tensor::Matrix ribbon = make_window(window * 8, 1, 17);
  extractor.absorb_and_extract(ribbon.slice_rows(0, window), out);
  std::size_t at = window;
  for (auto _ : state) {
    if (at + hop > ribbon.rows()) at = 0;  // keep feeding; window stays full
    extractor.absorb_and_extract(ribbon.slice_rows(at, hop), out);
    benchmark::DoNotOptimize(out.data());
    at += hop;
  }
  state.counters["sdft"] = extractor.uses_sliding_dft() ? 1.0 : 0.0;
  state.counters["hops_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IncrementalHop)
    ->Args({256, 16})
    ->Args({1024, 16})
    ->Args({1024, 64})
    ->Args({4096, 16})
    ->Unit(benchmark::kMicrosecond);

/// The same per-hop workload through the batch path: rebuild the window
/// and run the full single-pass engine (what the streaming scorer's
/// kFullRecompute mode pays per hop).
void BM_FullRecomputeHop(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  const auto xs = make_series(window, 17);
  std::vector<double> out(features::features_per_metric());
  features::FeatureScratch scratch;
  for (auto _ : state) {
    features::compute_all_features(xs, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["hops_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullRecomputeHop)
    ->Args({256, 16})
    ->Args({1024, 16})
    ->Args({1024, 64})
    ->Args({4096, 16})
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Per-kernel before/after gauges: each benchmark registers a `/scalar` and a
// `/simd` shape via kernels::force_scalar, so the vectorization win of every
// kernel is measurable in one run (the /scalar leg IS the pre-kernel code:
// the scalar oracles are the verbatim historical loops or the identical
// lane DAG without vector hints).

/// ApEn pair sweep (the entropy group's dominant cost): subsampled series,
/// m = 2, r = 0.2 sigma — the registry's exact call shape.
void BM_ApEnSweep(benchmark::State& state) {
  kernels::force_scalar(state.range(1) != 0);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto xs = make_series(n, 29);
  // r at the pipeline's 0.2 * stddev (make_series draws from sd = 2.0).
  const double r = 0.4;
  constexpr std::size_t kDim = 2;
  std::vector<std::uint32_t> lo(n - kDim + 1);
  std::vector<std::uint32_t> hi(n - kDim);
  kernels::ApEnScratch scratch;
  for (auto _ : state) {
    std::fill(lo.begin(), lo.end(), 1u);
    std::fill(hi.begin(), hi.end(), 1u);
    kernels::apen_match_counts(xs, kDim, r, lo, hi, scratch);
    benchmark::DoNotOptimize(lo.data());
    benchmark::DoNotOptimize(hi.data());
  }
  kernels::force_scalar(false);
}
BENCHMARK(BM_ApEnSweep)
    ->Args({256, 0})   // the extractor's subsampled size
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->ArgNames({"n", "scalar"})
    ->Unit(benchmark::kMicrosecond);

/// Sliding-DFT apply: H deltas into W/2 + 1 bins, the per-emission spectral
/// cost on the SDFT path.  Grounds the spectral_cost_model constants.
void BM_SdftApply(benchmark::State& state) {
  const auto W = static_cast<std::size_t>(state.range(0));
  const auto hop = static_cast<std::size_t>(state.range(1));
  kernels::force_scalar(state.range(2) != 0);
  const std::size_t bins = W / 2 + 1;
  util::AlignedVec<double> tw_re(W), tw_im(W);
  for (std::size_t j = 0; j < W; ++j) {
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(j) /
                         static_cast<double>(W);
    tw_re[j] = std::cos(angle);
    tw_im[j] = std::sin(angle);
  }
  util::AlignedVec<double> bin_re(bins, 0.0), bin_im(bins, 0.0);
  const auto deltas = make_series(hop, 31);
  std::size_t u0 = 0;
  for (auto _ : state) {
    features::kernels::sdft_apply(bin_re.data(), bin_im.data(), bins,
                                  tw_re.data(), tw_im.data(),
                                  static_cast<std::uint32_t>(W), u0, deltas);
    benchmark::DoNotOptimize(bin_re.data());
    benchmark::DoNotOptimize(bin_im.data());
    u0 = (u0 + hop) % W;
  }
  kernels::force_scalar(false);
}
BENCHMARK(BM_SdftApply)
    ->Args({1024, 16, 0})
    ->Args({1024, 16, 1})
    ->Args({64, 16, 0})
    ->Args({64, 16, 1})
    ->ArgNames({"W", "H", "scalar"})
    ->Unit(benchmark::kMicrosecond);

/// The per-emission linear-aggregate family on one window: sum/energy,
/// variance, |dx|, runs — the profile passes the kernels replaced.
void BM_AggregateKernels(benchmark::State& state) {
  kernels::force_scalar(state.range(1) != 0);
  const auto xs = make_series(static_cast<std::size_t>(state.range(0)), 37);
  for (auto _ : state) {
    const auto se = kernels::sum_energy(xs);
    const double mean = se.sum / static_cast<double>(xs.size());
    benchmark::DoNotOptimize(kernels::centered_sq_sum(xs, mean));
    benchmark::DoNotOptimize(kernels::abs_change_sum(xs));
    auto rs = kernels::run_stats(xs, mean);
    benchmark::DoNotOptimize(&rs);
  }
  kernels::force_scalar(false);
}
BENCHMARK(BM_AggregateKernels)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->ArgNames({"n", "scalar"})
    ->Unit(benchmark::kMicrosecond);

/// Trend + autocorrelation + nonlinearity reductions (the remaining lane
/// kernels the registry groups route through).
void BM_ReductionKernels(benchmark::State& state) {
  kernels::force_scalar(state.range(1) != 0);
  const auto xs = make_series(static_cast<std::size_t>(state.range(0)), 41);
  const auto se = kernels::sum_energy(xs);
  const double mean = se.sum / static_cast<double>(xs.size());
  const double var =
      kernels::centered_sq_sum(xs, mean) / static_cast<double>(xs.size());
  const double stddev = std::sqrt(var);
  for (auto _ : state) {
    auto t = kernels::trend_sums(
        xs, (static_cast<double>(xs.size()) - 1.0) / 2.0, mean);
    benchmark::DoNotOptimize(&t);
    for (const std::size_t lag : {1, 2, 5, 10, 20}) {
      benchmark::DoNotOptimize(kernels::centered_lag_mac(xs, mean, lag));
    }
    for (const std::size_t lag : {1, 2, 3}) {
      auto c = kernels::c3_tr_sums(xs, lag);
      benchmark::DoNotOptimize(&c);
    }
    auto zm = kernels::zmoment_sums(xs, mean, stddev);
    benchmark::DoNotOptimize(&zm);
  }
  kernels::force_scalar(false);
}
BENCHMARK(BM_ReductionKernels)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->ArgNames({"n", "scalar"})
    ->Unit(benchmark::kMicrosecond);

/// Sanity gauge for the SDFT-vs-FFT cost model: the modelled ratio must
/// agree in *direction* with the measured per-emission costs, else the
/// model silently picks the slower spectral path (checked in
/// incremental_profile_test's golden-model suite; this reports the
/// measured inputs for re-tuning).
void BM_SpectralCostModel(benchmark::State& state) {
  const auto W = static_cast<std::size_t>(state.range(0));
  const auto hop = static_cast<std::size_t>(state.range(1));
  const auto model = features::spectral_cost_model(W, hop);
  for (auto _ : state) {
    auto m = features::spectral_cost_model(W, hop);
    benchmark::DoNotOptimize(&m);
  }
  state.counters["model_sdft"] = model.sdft_cost;
  state.counters["model_fft"] = model.fft_cost;
  state.counters["picks_sdft"] = model.use_sdft ? 1.0 : 0.0;
}
BENCHMARK(BM_SpectralCostModel)
    ->Args({1024, 16})
    ->Args({64, 16})
    ->Args({64, 48})
    ->ArgNames({"W", "H"});

/// Per-group cost over an already-built profile: how the registry's time
/// splits across extractor families.
void BM_Group(benchmark::State& state, const features::FeatureGroup* group) {
  static const std::vector<double> xs = make_series(1024, 13);
  features::FeatureScratch scratch;
  const features::SeriesProfile profile =
      features::compute_series_profile(xs, scratch);
  std::vector<double> out(group->count, 0.0);
  for (auto _ : state) {
    group->fn(profile, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["features"] = static_cast<double>(group->count);
}

void register_group_benchmarks() {
  for (const auto& group : features::feature_groups()) {
    benchmark::RegisterBenchmark(("BM_Group/" + group.name).c_str(), BM_Group,
                                 &group)
        ->Unit(benchmark::kMicrosecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_group_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* path = std::getenv("PRODIGY_METRICS_OUT")) {
    prodigy::util::MetricsRegistry::global().write_file(path);
    std::fprintf(stderr, "metrics -> %s\n", path);
  }
  return 0;
}
