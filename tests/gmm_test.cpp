#include "baselines/gmm.hpp"

#include "eval/metrics.hpp"
#include "test_helpers.hpp"
#include "tensor/stats.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace prodigy::baselines {
namespace {

TEST(GmmTest, UsageErrors) {
  GmmDetector gmm;
  EXPECT_EQ(gmm.name(), "Gaussian Mixture");
  EXPECT_THROW(gmm.score(tensor::Matrix(1, 2, 0.0)), std::logic_error);
  EXPECT_THROW(gmm.fit(tensor::Matrix(1, 2, 0.0), {0}), std::invalid_argument);
}

TEST(GmmTest, RecoversTwoWellSeparatedModes) {
  util::Rng rng(1);
  tensor::Matrix X(300, 2);
  for (std::size_t r = 0; r < 300; ++r) {
    const double center = r < 150 ? 0.0 : 12.0;
    X(r, 0) = rng.gaussian(center, 0.5);
    X(r, 1) = rng.gaussian(-center, 0.5);
  }
  GmmConfig config;
  config.components = 2;
  GmmDetector gmm(config);
  gmm.fit(X, std::vector<int>(300, 0));
  ASSERT_EQ(gmm.components(), 2u);
  // Balanced modes -> roughly equal weights.
  EXPECT_NEAR(gmm.weights()[0], 0.5, 0.1);
  EXPECT_NEAR(gmm.weights()[1], 0.5, 0.1);
}

TEST(GmmTest, LogLikelihoodImprovesOverEm) {
  auto [X, y] = testing::blob_dataset(200, 0, 4, 0.0, 2);
  GmmConfig one_iter;
  one_iter.max_iterations = 1;
  GmmDetector early(one_iter);
  early.fit(X, y);
  GmmConfig many;
  many.max_iterations = 60;
  GmmDetector late(many);
  late.fit(X, y);
  EXPECT_GE(late.train_log_likelihood(), early.train_log_likelihood() - 1e-9);
}

TEST(GmmTest, ConvergesBeforeMaxIterations) {
  auto [X, y] = testing::blob_dataset(300, 0, 3, 0.0, 3);
  GmmConfig config;
  config.max_iterations = 200;
  GmmDetector gmm(config);
  gmm.fit(X, y);
  EXPECT_LT(gmm.iterations_run(), 200u);
}

TEST(GmmTest, OutlierScoresAboveInlier) {
  auto [X, y] = testing::blob_dataset(400, 0, 4, 0.0, 4);
  GmmDetector gmm;
  gmm.fit(X, y);
  tensor::Matrix probes(2, 4);
  for (std::size_t c = 0; c < 4; ++c) {
    probes(0, c) = 0.0;
    probes(1, c) = 10.0;
  }
  const auto scores = gmm.score(probes);
  EXPECT_GT(scores[1], scores[0] + 10.0);  // NLL gap is large
}

TEST(GmmTest, DetectsNoveltiesAfterCleanTraining) {
  auto [X_train, y_train] = testing::blob_dataset(360, 0, 5, 0.0, 5);
  GmmConfig config;
  // Clean training data: a tight threshold (2% of healthy flagged) keeps
  // false positives low while the novelty NLL gap stays huge.
  config.contamination = 0.02;
  GmmDetector gmm(config);
  gmm.fit(X_train, y_train);

  auto [X_test, y_test] = testing::blob_dataset(90, 10, 5, 5.0, 15);
  const double f1 = eval::macro_f1(y_test, gmm.predict(X_test));
  EXPECT_GT(f1, 0.8);
}

TEST(GmmTest, ContaminatedClusterIsAbsorbedIntoAComponent) {
  // The known blind spot shared with LOF/K-means: a dense anomalous cluster
  // in unsupervised training claims its own mixture component and becomes
  // "likely" — one reason the paper trains Prodigy on healthy samples only.
  auto [X, y] = testing::blob_dataset(360, 40, 5, 5.0, 5);
  GmmConfig config;
  config.components = 4;
  GmmDetector gmm(config);
  gmm.fit(X, y);
  const auto scores = gmm.score(X);
  // Anomalous samples are NOT strongly separated from healthy ones.
  std::vector<double> healthy, anomalous;
  for (std::size_t i = 0; i < y.size(); ++i) {
    (y[i] ? anomalous : healthy).push_back(scores[i]);
  }
  const double healthy_mean = tensor::mean(healthy);
  const double anomalous_mean = tensor::mean(anomalous);
  EXPECT_LT(anomalous_mean, healthy_mean * 2.0);
}

TEST(GmmTest, DeterministicForFixedSeed) {
  auto [X, y] = testing::blob_dataset(150, 0, 3, 0.0, 6);
  GmmConfig config;
  config.seed = 5;
  GmmDetector a(config), b(config);
  a.fit(X, y);
  b.fit(X, y);
  EXPECT_EQ(a.score(X), b.score(X));
}

TEST(GmmTest, VarianceFloorKeepsScoresFinite) {
  // Degenerate feature (constant) would make variance 0 without the floor.
  tensor::Matrix X(100, 2);
  util::Rng rng(7);
  for (std::size_t r = 0; r < 100; ++r) {
    X(r, 0) = rng.gaussian();
    X(r, 1) = 5.0;  // constant
  }
  GmmDetector gmm;
  gmm.fit(X, std::vector<int>(100, 0));
  for (const double s : gmm.score(X)) EXPECT_TRUE(std::isfinite(s));
}

TEST(GmmTest, ComponentsClampToSampleCount) {
  tensor::Matrix X{{0.0}, {1.0}, {2.0}};
  GmmConfig config;
  config.components = 10;
  GmmDetector gmm(config);
  gmm.fit(X, {0, 0, 0});
  EXPECT_LE(gmm.components(), 3u);
}

}  // namespace
}  // namespace prodigy::baselines
