// Integration tests for online adaptation behind the streaming stack:
// adaptation disabled must be bit-identical to the pre-adaptation scorer, a
// mid-replay hot-swap must tag generations correctly with no torn model, the
// swap path must be race-free under concurrent forced swaps (the TSAN
// target), and the sharded service must roll adaptation stats up per fleet.
#include "adapt/model_manager.hpp"
#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "stream/event_bus.hpp"
#include "stream/ingestor.hpp"
#include "stream/online_scorer.hpp"
#include "stream/sharded_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace {

using namespace prodigy;

telemetry::JobTelemetry make_job(std::int64_t job_id, std::size_t nodes,
                                 double duration,
                                 hpas::AnomalySpec anomaly = hpas::healthy_spec(),
                                 std::vector<std::size_t> anomalous_nodes = {}) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name("LAMMPS");
  config.job_id = job_id;
  config.num_nodes = nodes;
  config.duration_s = duration;
  config.seed = static_cast<std::uint64_t>(job_id);
  config.anomaly = std::move(anomaly);
  config.anomalous_nodes = std::move(anomalous_nodes);
  config.first_component_id = job_id * 100;
  return telemetry::generate_run(config);
}

std::vector<stream::SampleBatch> batches_from_job(const telemetry::JobTelemetry& job) {
  std::size_t ticks = 0;
  for (const auto& node : job.nodes) ticks = std::max(ticks, node.values.rows());
  std::vector<stream::SampleBatch> batches;
  for (std::size_t t = 0; t < ticks; ++t) {
    stream::SampleBatch batch;
    batch.sequence = t;
    for (const auto& node : job.nodes) {
      if (t >= node.values.rows()) continue;
      stream::SampleRow row;
      row.job_id = node.job_id;
      row.component_id = node.component_id;
      row.timestamp = static_cast<std::int64_t>(t);
      row.app = node.app;
      const auto values = node.values.row(t);
      row.values.assign(values.begin(), values.end());
      batch.rows.push_back(std::move(row));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

/// An adaptation config that never drifts on its own: the tests below force
/// swaps explicitly, so auto-refits would only add noise.
adapt::AdaptationConfig inert_adapt_config() {
  adapt::AdaptationConfig config;
  config.drift.lambda = 1e12;
  config.synchronous = true;  // no idle worker thread to wind down
  return config;
}

class AdaptStreamTest : public ::testing::Test {
 protected:
  AdaptStreamTest() {
    std::int64_t job = 1;
    for (int i = 0; i < 6; ++i) {
      store_.ingest(make_job(job, 4, 150));
      train_jobs_.push_back(job++);
    }
    const auto memleak = hpas::table2_configurations().back();
    for (int i = 0; i < 2; ++i) {
      store_.ingest(make_job(job, 4, 150, memleak));
      train_jobs_.push_back(job++);
    }
  }

  static deploy::TrainFromStoreOptions fast_options() {
    deploy::TrainFromStoreOptions options;
    options.preprocess.trim_seconds = 20;
    options.top_k_features = 64;
    options.model.vae.encoder_hidden = {24, 8};
    options.model.vae.latent_dim = 3;
    options.model.train.epochs = 120;
    options.model.train.batch_size = 16;
    options.model.train.learning_rate = 2e-3;
    options.model.train.validation_split = 0.0;
    options.model.train.early_stopping_patience = 0;
    return options;
  }

  core::ModelBundle train_bundle() {
    const auto service = deploy::AnalyticsService::train_from_store(
        store_, train_jobs_, fast_options(), /*explain=*/false);
    core::ModelBundle bundle = service.bundle();
    // The batch threshold (99th pct over full-series errors) sits below
    // window-level healthy scores (~0.4-0.9 here; memleak windows score 39+).
    // Re-anchor it for streaming so healthy windows yield healthy verdicts
    // and can feed the adaptation reservoir.
    bundle.detector.set_threshold(5.0);
    return bundle;
  }

  deploy::DsosStore store_;
  std::vector<std::int64_t> train_jobs_;
};

using VerdictMap =
    std::map<std::pair<std::int64_t, std::uint64_t>, stream::VerdictEvent>;

/// Replays `batches` through a fresh ingestor -> scorer chain; `provider`
/// null scores through the scorer's own frozen bundle.
VerdictMap replay(const core::ModelBundle& bundle,
                  const std::vector<stream::SampleBatch>& batches,
                  stream::ModelProvider* provider) {
  stream::EventBus bus;
  std::mutex verdict_mutex;
  VerdictMap verdicts;
  bus.subscribe([&](const stream::VerdictEvent& event) {
    std::lock_guard lock(verdict_mutex);
    verdicts[{event.component_id, event.window_index}] = event;
  });
  stream::OnlineScorerConfig scorer_config;
  scorer_config.window = 64;
  scorer_config.hop = 16;
  scorer_config.model_provider = provider;
  stream::OnlineScorer scorer(bundle, bus, scorer_config);
  deploy::DsosStore live_store;
  stream::StreamIngestor ingestor(live_store, {}, &scorer);
  for (const auto& batch : batches) EXPECT_TRUE(ingestor.offer(batch));
  ingestor.stop();
  scorer.drain();
  EXPECT_EQ(scorer.score_errors(), 0u);
  return verdicts;
}

// A provider that never swaps serves the identical bundle through the lease
// path; scores and verdicts must be EXPECT_EQ-identical to the providerless
// scorer, with only the generation tag differing (0 -> frozen, 1 -> leased).
TEST_F(AdaptStreamTest, AdaptationDisabledIsBitIdentical) {
  const auto bundle = train_bundle();
  const auto memleak = hpas::table2_configurations().back();
  const auto batches = batches_from_job(make_job(50, 4, 150, memleak, {1, 3}));

  const VerdictMap frozen = replay(bundle, batches, nullptr);
  adapt::AdaptiveModelManager manager(bundle, inert_adapt_config());
  const VerdictMap leased = replay(bundle, batches, &manager);

  ASSERT_EQ(frozen.size(), 4u * 6u);
  ASSERT_EQ(leased.size(), frozen.size());
  for (const auto& [key, expect] : frozen) {
    const auto it = leased.find(key);
    ASSERT_NE(it, leased.end());
    EXPECT_EQ(it->second.score, expect.score);  // exact, not NEAR
    EXPECT_EQ(it->second.threshold, expect.threshold);
    EXPECT_EQ(it->second.anomalous, expect.anomalous);
    EXPECT_EQ(expect.model_generation, 0u);
    EXPECT_EQ(it->second.model_generation, 1u);
  }
  // No drift machinery fired, but the healthy windows did feed the reservoir.
  const auto stats = manager.adaptation_stats();
  EXPECT_EQ(stats.drifts_detected, 0u);
  EXPECT_EQ(stats.swaps_completed, 0u);
  EXPECT_GT(stats.reservoir_offered, 0u);
}

// Stop-the-stream, swap, resume: windows scored before the swap carry
// generation 1 and the old threshold, windows after carry generation 2 and
// the new threshold — and nothing in between (no torn model).
TEST_F(AdaptStreamTest, ForcedMidReplaySwapTagsGenerations) {
  const auto bundle = train_bundle();
  core::ModelBundle swapped = bundle;
  swapped.detector.set_threshold(2.0 * bundle.detector.threshold());

  adapt::AdaptiveModelManager manager(bundle, inert_adapt_config());
  stream::EventBus bus;
  std::mutex verdict_mutex;
  VerdictMap verdicts;
  bus.subscribe([&](const stream::VerdictEvent& event) {
    std::lock_guard lock(verdict_mutex);
    verdicts[{event.component_id, event.window_index}] = event;
  });
  stream::OnlineScorerConfig scorer_config;
  scorer_config.window = 64;
  scorer_config.hop = 16;
  scorer_config.model_provider = &manager;
  stream::OnlineScorer scorer(bundle, bus, scorer_config);

  const auto batches = batches_from_job(make_job(60, 1, 150));
  ASSERT_EQ(batches.size(), 150u);

  // First 100 ticks -> windows 0..2 under generation 1.
  {
    deploy::DsosStore live_store;
    stream::StreamIngestor ingestor(live_store, {}, &scorer);
    for (std::size_t t = 0; t < 100; ++t) {
      ASSERT_TRUE(ingestor.offer(batches[t]));
    }
    ingestor.stop();
    scorer.drain();
  }
  EXPECT_EQ(manager.swap_model(swapped), 2u);
  // Remaining ticks -> windows 3..5 under generation 2.
  {
    deploy::DsosStore live_store;
    stream::StreamIngestor ingestor(live_store, {}, &scorer);
    for (std::size_t t = 100; t < batches.size(); ++t) {
      ASSERT_TRUE(ingestor.offer(batches[t]));
    }
    ingestor.stop();
    scorer.drain();
  }

  ASSERT_EQ(verdicts.size(), 6u);
  for (const auto& [key, event] : verdicts) {
    if (key.second <= 2) {
      EXPECT_EQ(event.model_generation, 1u) << "window " << key.second;
      EXPECT_DOUBLE_EQ(event.threshold, bundle.detector.threshold());
    } else {
      EXPECT_EQ(event.model_generation, 2u) << "window " << key.second;
      EXPECT_DOUBLE_EQ(event.threshold, swapped.detector.threshold());
    }
  }
  const auto stats = manager.adaptation_stats();
  EXPECT_EQ(stats.generation, 2u);
  EXPECT_EQ(stats.swaps_completed, 1u);
}

// The TSAN target: forced swaps race a live multi-node replay.  Every window
// must score against exactly one coherent lease — finite score, a generation
// that exists, per-node generations nondecreasing in window order.
TEST_F(AdaptStreamTest, ConcurrentForcedSwapsAreRaceFree) {
  const auto bundle = train_bundle();
  adapt::AdaptiveModelManager manager(bundle, inert_adapt_config());

  stream::EventBus bus;
  std::mutex verdict_mutex;
  VerdictMap verdicts;
  bus.subscribe([&](const stream::VerdictEvent& event) {
    std::lock_guard lock(verdict_mutex);
    verdicts[{event.component_id, event.window_index}] = event;
  });
  stream::OnlineScorerConfig scorer_config;
  scorer_config.window = 64;
  scorer_config.hop = 16;
  scorer_config.model_provider = &manager;
  stream::OnlineScorer scorer(bundle, bus, scorer_config);

  constexpr std::size_t kSwaps = 10;
  std::thread swapper([&] {
    for (std::size_t i = 0; i < kSwaps; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      manager.swap_model(bundle);
    }
  });
  {
    deploy::DsosStore live_store;
    stream::StreamIngestor ingestor(live_store, {}, &scorer);
    for (const auto& batch : batches_from_job(make_job(70, 4, 150))) {
      ASSERT_TRUE(ingestor.offer(batch));
    }
    ingestor.stop();
    scorer.drain();
  }
  swapper.join();

  EXPECT_EQ(scorer.score_errors(), 0u);
  ASSERT_EQ(verdicts.size(), 4u * 6u);
  std::map<std::int64_t, std::uint64_t> last_generation;
  for (const auto& [key, event] : verdicts) {  // map: window order per node
    EXPECT_TRUE(std::isfinite(event.score));
    EXPECT_GE(event.model_generation, 1u);
    EXPECT_LE(event.model_generation, 1u + kSwaps);
    auto& last = last_generation[key.first];
    EXPECT_GE(event.model_generation, last);
    last = event.model_generation;
  }
  EXPECT_EQ(manager.generation(), 1u + kSwaps);
}

// Sharded deployment: every shard gets its own provider, the fleet rollup
// sums their counters, and the per-shard query services follow the provider
// generation (analyze_job stays consistent with the leased bundle).
TEST_F(AdaptStreamTest, ShardedServiceRollsUpPerShardAdaptation) {
  const auto bundle = train_bundle();
  stream::ShardedServiceConfig config;
  config.shards = 2;
  config.scorer.window = 64;
  config.scorer.hop = 16;
  config.adaptation = [](std::size_t shard, const core::ModelBundle& initial,
                         stream::EventBus& bus) {
    return std::make_unique<adapt::AdaptiveModelManager>(
        initial, inert_adapt_config(), &bus, "shard" + std::to_string(shard));
  };
  stream::ShardedAnalyticsService service(bundle, config);

  const auto job = make_job(80, 4, 150);
  for (const auto& batch : batches_from_job(job)) {
    EXPECT_TRUE(service.offer(batch));
  }
  service.stop();
  service.drain();

  EXPECT_EQ(service.windows_scored(), 4u * 6u);
  const auto fleet = service.adaptation_stats();
  ASSERT_EQ(fleet.per_shard.size(), 2u);
  EXPECT_EQ(fleet.totals.generation, 1u);
  std::uint64_t offered = 0;
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(service.shard_model_generation(k), 1u);
    EXPECT_EQ(fleet.per_shard[k].generation, 1u);
    offered += fleet.per_shard[k].reservoir_offered;
  }
  EXPECT_EQ(fleet.totals.reservoir_offered, offered);
  EXPECT_GT(offered, 0u);  // healthy replay: verdicts fed both reservoirs

  // The query path serves under the providers' generation without incident.
  const auto analysis = service.analyze_job(80);
  ASSERT_TRUE(analysis.has_value());
  EXPECT_EQ(analysis->nodes.size(), 4u);
}

TEST_F(AdaptStreamTest, AdaptationOffReportsGenerationZero) {
  const auto bundle = train_bundle();
  stream::ShardedServiceConfig config;
  config.shards = 2;
  stream::ShardedAnalyticsService service(bundle, config);
  EXPECT_EQ(service.shard_model_generation(0), 0u);
  const auto fleet = service.adaptation_stats();
  EXPECT_EQ(fleet.totals.generation, 0u);
  EXPECT_EQ(fleet.totals.reservoir_offered, 0u);
  service.stop();
}

}  // namespace
