// Regression tests for defects found (and fixed) while calibrating the
// reproduction — each test pins the failure mode that originally slipped
// through.
#include "baselines/usad.hpp"
#include "comte/comte.hpp"
#include "eval/metrics.hpp"
#include "pipeline/data_pipeline.hpp"
#include "pipeline/splits.hpp"
#include "telemetry/dataset_builder.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace prodigy {
namespace {

// A linear threshold sweep collapsed when a few extreme outlier scores
// stretched the range by orders of magnitude (memleak scores reach 1e4+),
// leaving every grid point above the healthy/anomalous boundary.
TEST(RegressionTest, ThresholdSweepSurvivesExtremeOutliers) {
  std::vector<double> scores;
  std::vector<int> truth;
  for (int i = 0; i < 100; ++i) {
    scores.push_back(0.01 + 0.001 * i);  // healthy bulk
    truth.push_back(0);
  }
  for (int i = 0; i < 50; ++i) {
    scores.push_back(0.2 + 0.001 * i);   // anomalous bulk
    truth.push_back(1);
  }
  scores.push_back(5.0e6);  // one extreme memleak-style outlier
  truth.push_back(1);

  const auto best = eval::best_threshold_by_f1(scores, truth);
  EXPECT_DOUBLE_EQ(best.best_macro_f1, 1.0);
  EXPECT_GT(best.best_threshold, 0.11);
  EXPECT_LT(best.best_threshold, 0.2);
}

TEST(RegressionTest, ThresholdSweepHandlesAllTiedScores) {
  const std::vector<double> scores(10, 0.5);
  const std::vector<int> truth{0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  const auto best = eval::best_threshold_by_f1(scores, truth);
  // Degenerate scores: the best achievable is predicting one class.
  EXPECT_GT(best.best_macro_f1, 0.3);
  EXPECT_LE(best.best_macro_f1, 0.5);
}

// Node counts used to cycle with the run index, which correlated allocation
// size with the healthy/anomalous split and skewed class ratios at small
// scales (Eclipse drifted from 74% to 86% anomalous).
TEST(RegressionTest, DatasetBuilderKeepsClassRatiosAtSmallScale) {
  const auto spec = telemetry::eclipse_dataset_spec(0.02, 60.0);
  std::size_t healthy = 0, anomalous = 0;
  telemetry::for_each_run(spec, [&](const telemetry::JobTelemetry& job) {
    for (const auto& node : job.nodes) {
      (node.label ? anomalous : healthy) += node.values.rows() > 0 ? 1 : 0;
    }
  });
  const double ratio = static_cast<double>(anomalous) /
                       static_cast<double>(anomalous + healthy);
  EXPECT_NEAR(ratio, 0.74, 0.08);  // the paper's 24,566 / 6,325 split
}

// A single anomalous run per app used to always draw the FIRST Table-2
// configuration, collapsing type diversity at small scales.
TEST(RegressionTest, DatasetBuilderMixesAnomalyTypesAtSmallScale) {
  auto spec = telemetry::volta_dataset_spec(0.05, 60.0);
  spec.anomalous_runs_per_app = 1;  // one anomalous run per app
  std::set<std::string> kinds;
  telemetry::for_each_run(spec, [&](const telemetry::JobTelemetry& job) {
    for (const auto& node : job.nodes) {
      if (node.label) kinds.insert(node.anomaly);
    }
  });
  EXPECT_GE(kinds.size(), 3u) << "anomalous runs should cycle through types";
}

// The prodigy split originally carved 20% of each class, which left almost
// no healthy test samples on anomalous-heavy data.
TEST(RegressionTest, ProdigySplitKeepsHealthyTestSamples) {
  std::vector<int> labels(72, 0);
  labels.insert(labels.end(), 432, 1);  // 86% anomalous, tiny healthy pool
  const auto split = pipeline::prodigy_split(labels, 0.2, 0.1, 3);
  std::size_t healthy_test = 0;
  for (const auto i : split.test) healthy_test += labels[i] == 0 ? 1 : 0;
  EXPECT_GE(healthy_test, 1u);
  // Train target = 20% of 504 ~ 101, at most 10% anomalous.
  std::size_t train_anomalous = 0;
  for (const auto i : split.train) train_anomalous += labels[i];
  // The healthy pool (72) cannot fill the 20% target, so the realized train
  // is smaller and the anomaly share sits slightly above 10%.
  EXPECT_LE(train_anomalous,
            static_cast<std::size_t>(0.15 * static_cast<double>(split.train.size())));
}

// USAD's maximization term is unbounded; without gradient clipping long
// training diverged to non-finite weights, and the linear threshold sweep
// then collapsed detection entirely (Volta F1 dropped to the majority
// floor).  Scores may grow large — that is USAD's design — but they must
// stay finite and the tuned threshold must still separate anomalies.
TEST(RegressionTest, UsadStaysUsableOverLongTraining) {
  auto [X, y] = testing::blob_dataset(250, 0, 6, 0.0, 4);
  baselines::UsadConfig config;
  config.hidden = 48;
  config.latent = 12;
  config.train.epochs = 150;  // long enough for (1 - 1/n) -> ~1
  config.train.batch_size = 32;
  config.train.learning_rate = 2e-3;
  baselines::Usad usad(config);
  usad.fit_healthy(X);
  for (const double s : usad.score(X)) EXPECT_TRUE(std::isfinite(s));

  auto [X_test, y_test] = testing::blob_dataset(60, 60, 6, 4.0, 5);
  usad.tune(X_test, y_test);
  EXPECT_GT(eval::macro_f1(y_test, usad.predict(X_test)), 0.8);
}

// CoMTE probabilities saturate to exactly 1.0 in double precision for
// strong anomalies; the margin-based search must still rank substitutions.
TEST(RegressionTest, ComteMarginSearchWorksUnderProbabilitySaturation) {
  class SaturatingModel final : public comte::ProbabilityModel {
   public:
    double anomaly_probability(std::span<const double> x) const override {
      return 1.0 / (1.0 + std::exp(-anomaly_margin(x)));  // == 1.0 for big x
    }
    double anomaly_margin(std::span<const double> x) const override {
      double margin = -5.0;  // healthy unless metric m0 is elevated
      margin += 500.0 * 0.5 * (x[0] + x[1]);
      return margin;
    }
  };
  SaturatingModel model;
  tensor::Matrix train(10, 4, 0.0);
  const std::vector<int> labels(10, 0);
  const std::vector<std::string> names{"m0::vmstat::a", "m0::vmstat::b",
                                       "m1::vmstat::a", "m1::vmstat::b"};
  comte::ComteExplainer explainer(model, train, labels, names);

  const std::vector<double> query{2.0, 2.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(model.anomaly_probability(query), 1.0);  // fully saturated
  const auto explanation = explainer.explain_optimized(query);
  EXPECT_TRUE(explanation.success);
  ASSERT_EQ(explanation.changes.size(), 1u);
  EXPECT_EQ(explanation.changes[0].metric, "m0::vmstat");
}

// Heterogeneous build_from_jobs must reject mismatched layouts loudly.
TEST(RegressionTest, HeterogeneousBuildValidatesLayout) {
  telemetry::JobTelemetry job;
  job.job_id = 1;
  telemetry::NodeSeries node;
  node.job_id = 1;
  node.values = tensor::Matrix(32, 3);
  job.nodes.push_back(node);

  const std::vector<std::string> names{"a::x", "b::x"};  // width 2 != 3
  const std::vector<telemetry::MetricKind> kinds{
      telemetry::MetricKind::Gauge, telemetry::MetricKind::Gauge};
  pipeline::PreprocessOptions preprocess;
  EXPECT_THROW(
      pipeline::DataPipeline::build_from_jobs({job}, names, kinds, preprocess),
      std::invalid_argument);

  const std::vector<telemetry::MetricKind> too_few{telemetry::MetricKind::Gauge};
  EXPECT_THROW(
      pipeline::DataPipeline::build_from_jobs({job}, names, too_few, preprocess),
      std::invalid_argument);
}

TEST(RegressionTest, ExactSweepMatchesBruteForceOnSmallInputs) {
  // Cross-check the incremental sweep against brute force over a grid of
  // candidate thresholds derived from the scores themselves.
  util::Rng rng(9);
  std::vector<double> scores(40);
  std::vector<int> truth(40);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.uniform();
    truth[i] = rng.bernoulli(0.4) ? 1 : 0;
  }
  const auto fast = eval::best_threshold_by_f1(scores, truth);

  double brute_best = 0.0;
  for (const double candidate : scores) {
    for (const double threshold : {candidate - 1e-9, candidate + 1e-9}) {
      brute_best = std::max(
          brute_best,
          eval::macro_f1(truth, eval::predictions_at_threshold(scores, threshold)));
    }
  }
  EXPECT_NEAR(fast.best_macro_f1, brute_best, 1e-12);
}

}  // namespace
}  // namespace prodigy
