// Fused-vs-layerwise inference-plan parity (the PlanPrecision::Full path
// must be EXPECT_EQ bit-identical to the layer-by-layer oracle for every
// batch height, pool size, and NaN/Inf input — same determinism contract as
// tensor/kernels), plus builder validation, alias immunity, the bf16/int8
// quantization mechanics, and the reduced-precision F1 accuracy gate.
#include "nn/inference_plan.hpp"

#include "core/prodigy_detector.hpp"
#include "core/vae.hpp"
#include "nn/mlp.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace prodigy::nn {
namespace {

// Bit-level equality: EXPECT_EQ on doubles rejects NaN == NaN, but the
// parity contract covers NaN/Inf propagation too, so compare the bits.
void expect_bits_equal(const tensor::Matrix& a, const tensor::Matrix& b,
                       const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.data()[i]),
              std::bit_cast<std::uint64_t>(b.data()[i]))
        << what << " element " << i << ": " << a.data()[i]
        << " != " << b.data()[i];
  }
}

Mlp make_mlp(std::size_t input_dim, std::uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<LayerSpec> specs = {{24, Activation::ReLU},
                                        {17, Activation::Tanh},
                                        {9, Activation::Sigmoid},
                                        {21, Activation::Linear}};
  return Mlp(input_dim, specs, rng);
}

tensor::Matrix random_input(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Matrix x(rows, cols);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.gaussian(0.0, 2.0);
  return x;
}

TEST(InferencePlanParityTest, FusedMatchesLayerwiseBitsAcrossHeightsAndPools) {
  const std::size_t input_dim = 33;
  const Mlp mlp = make_mlp(input_dim, 17);
  const InferencePlan plan = InferencePlan::Builder().add(mlp).build();
  EXPECT_EQ(plan.input_dim(), input_dim);
  EXPECT_EQ(plan.output_dim(), mlp.output_dim());
  EXPECT_EQ(plan.layer_count(), 4u);
  EXPECT_EQ(plan.precision(), PlanPrecision::Full);

  for (const std::size_t rows : {std::size_t{1}, std::size_t{7},
                                 std::size_t{64}, std::size_t{70}}) {
    const tensor::Matrix x = random_input(rows, input_dim, 100 + rows);
    const tensor::Matrix oracle = mlp.forward_inference(x);
    for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
      util::ThreadPool pool(workers);
      tensor::Matrix fused;
      plan.run(x, fused, &pool);
      expect_bits_equal(oracle, fused, "fused vs layerwise");
    }
  }
}

TEST(InferencePlanParityTest, NanAndInfPropagateIdentically) {
  const std::size_t input_dim = 12;
  const Mlp mlp = make_mlp(input_dim, 23);
  const InferencePlan plan = InferencePlan::Builder().add(mlp).build();

  for (const std::size_t rows : {std::size_t{1}, std::size_t{7},
                                 std::size_t{64}}) {
    tensor::Matrix x = random_input(rows, input_dim, 200 + rows);
    x(0, 3) = std::numeric_limits<double>::quiet_NaN();
    x(rows / 2, 0) = std::numeric_limits<double>::infinity();
    x(rows - 1, input_dim - 1) = -std::numeric_limits<double>::infinity();
    const tensor::Matrix oracle = mlp.forward_inference(x);
    tensor::Matrix fused;
    plan.run(x, fused);
    expect_bits_equal(oracle, fused, "NaN/Inf propagation");
  }
}

TEST(InferencePlanParityTest, SingleRowMatchesSameRowInsideBatch) {
  const std::size_t input_dim = 19;
  const Mlp mlp = make_mlp(input_dim, 31);
  const InferencePlan plan = InferencePlan::Builder().add(mlp).build();

  const tensor::Matrix batch = random_input(70, input_dim, 7);
  tensor::Matrix batch_out;
  plan.run(batch, batch_out);
  for (const std::size_t r : {std::size_t{0}, std::size_t{35}, std::size_t{69}}) {
    tensor::Matrix row(1, input_dim);
    for (std::size_t c = 0; c < input_dim; ++c) row(0, c) = batch(r, c);
    tensor::Matrix row_out;
    plan.run(row, row_out);
    ASSERT_EQ(row_out.cols(), batch_out.cols());
    for (std::size_t c = 0; c < row_out.cols(); ++c) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(row_out(0, c)),
                std::bit_cast<std::uint64_t>(batch_out(r, c)))
          << "row " << r << " col " << c;
    }
  }
}

TEST(InferencePlanParityTest, SingleDenseLayerMatchesDenseForward) {
  util::Rng rng(11);
  const Dense layer(15, 10, Activation::Tanh, rng);
  const InferencePlan plan = InferencePlan::Builder().add(layer).build();
  for (const std::size_t rows : {std::size_t{1}, std::size_t{5}}) {
    const tensor::Matrix x = random_input(rows, 15, 40 + rows);
    const tensor::Matrix oracle = layer.forward_inference(x);
    tensor::Matrix fused;
    plan.run(x, fused);
    expect_bits_equal(oracle, fused, "single-layer plan vs Dense");
  }
}

TEST(InferencePlanParityTest, RunIsAliasImmune) {
  const std::size_t input_dim = 21;
  const Mlp mlp = make_mlp(input_dim, 43);
  const InferencePlan plan = InferencePlan::Builder().add(mlp).build();

  for (const std::size_t rows : {std::size_t{1}, std::size_t{70}}) {
    tensor::Matrix x = random_input(rows, input_dim, 300 + rows);
    tensor::Matrix expected;
    plan.run(x, expected);
    // In-place: the same Matrix as input and output.
    plan.run(x, x);
    expect_bits_equal(expected, x, "aliased run");
  }
}

TEST(InferencePlanParityTest, EmptyAndZeroRowInputs) {
  const Mlp mlp = make_mlp(6, 47);
  const InferencePlan plan = InferencePlan::Builder().add(mlp).build();
  tensor::Matrix empty(0, 6);
  tensor::Matrix out;
  plan.run(empty, out);
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), mlp.output_dim());

  const InferencePlan unbuilt;
  EXPECT_THROW(unbuilt.run(empty, out), std::logic_error);
}

TEST(InferencePlanBuilderTest, ValidatesLayerChain) {
  util::Rng rng(3);
  const Dense a(8, 5, Activation::ReLU, rng);
  const Dense mismatched(6, 4, Activation::ReLU, rng);
  InferencePlan::Builder builder;
  builder.add(a);
  EXPECT_THROW(builder.add(mismatched), std::invalid_argument);
  EXPECT_THROW(InferencePlan::Builder().build(), std::invalid_argument);
}

TEST(InferencePlanBuilderTest, RejectsWrongInputWidthAtRun) {
  const Mlp mlp = make_mlp(9, 53);
  const InferencePlan plan = InferencePlan::Builder().add(mlp).build();
  tensor::Matrix wrong(2, 8);
  tensor::Matrix out;
  EXPECT_THROW(plan.run(wrong, out), std::invalid_argument);
}

TEST(InferencePlanBuilderTest, PackedBytesShrinkWithPrecision) {
  const Mlp mlp = make_mlp(64, 59);
  InferencePlan::Builder builder;
  builder.add(mlp);
  const auto full = builder.build(PlanPrecision::Full);
  const auto bf16 = builder.build(PlanPrecision::Bf16);
  const auto int8 = builder.build(PlanPrecision::Int8);
  EXPECT_GT(full.packed_bytes(), bf16.packed_bytes());
  EXPECT_GT(bf16.packed_bytes(), int8.packed_bytes());
}

TEST(InferencePlanQuantTest, Bf16RoundTripMechanics) {
  // Representable-in-bf16 values survive exactly.
  for (const double v : {0.0, 1.0, -2.0, 0.5, -0.375, 128.0}) {
    EXPECT_EQ(bf16_to_float(bf16_from_double(v)), static_cast<float>(v));
  }
  // Round-to-nearest-even: 1 + 2^-9 is exactly between 1.0 and the next
  // bf16 (1 + 2^-7 mantissa step is 2^-7; half step = 2^-8)...
  // 1.0 + 2^-8 is the exact midpoint and must round to even (1.0).
  EXPECT_EQ(bf16_to_float(bf16_from_double(1.0 + 0x1.0p-8)), 1.0f);
  // Just above the midpoint rounds up.
  EXPECT_EQ(bf16_to_float(bf16_from_double(1.0 + 0x1.8p-8)),
            1.0f + 0x1.0p-7f);
  // NaN stays NaN; infinities stay infinite.
  EXPECT_TRUE(std::isnan(
      bf16_to_float(bf16_from_double(std::numeric_limits<double>::quiet_NaN()))));
  EXPECT_EQ(bf16_to_float(bf16_from_double(
                std::numeric_limits<double>::infinity())),
            std::numeric_limits<float>::infinity());
}

TEST(InferencePlanQuantTest, Int8QuantizationBoundsPerColumn) {
  util::Rng rng(7);
  const Dense layer(13, 6, Activation::Linear, rng);
  const InferencePlan plan =
      InferencePlan::Builder().add(layer).build(PlanPrecision::Int8);
  const auto& q = plan.packed_int8();
  const auto& scales = plan.quant_scales();
  ASSERT_EQ(q.size(), layer.weights().size());
  ASSERT_EQ(scales.size(), 6u);
  for (std::size_t j = 0; j < 6; ++j) {
    EXPECT_GT(scales[j], 0.0f);
    for (std::size_t k = 0; k < 13; ++k) {
      const double w = layer.weights()(k, j);
      const double deq = static_cast<double>(q[k * 6 + j]) *
                         static_cast<double>(scales[j]);
      // Round-to-nearest symmetric quantization: within half a step.
      EXPECT_LE(std::abs(w - deq), 0.5 * static_cast<double>(scales[j]) + 1e-12)
          << "col " << j << " row " << k;
    }
  }
}

TEST(InferencePlanQuantTest, QuantizedOutputsTrackFullPrecision) {
  const std::size_t input_dim = 24;
  const Mlp mlp = make_mlp(input_dim, 61);
  InferencePlan::Builder builder;
  builder.add(mlp);
  const auto full = builder.build(PlanPrecision::Full);
  const auto bf16 = builder.build(PlanPrecision::Bf16);
  const auto int8 = builder.build(PlanPrecision::Int8);

  const tensor::Matrix x = random_input(70, input_dim, 9);
  tensor::Matrix out_full, out_bf16, out_int8;
  full.run(x, out_full);
  bf16.run(x, out_bf16);
  int8.run(x, out_int8);

  double scale = 0.0;
  for (std::size_t i = 0; i < out_full.size(); ++i) {
    scale = std::max(scale, std::abs(out_full.data()[i]));
  }
  ASSERT_GT(scale, 0.0);
  double bf16_dev = 0.0, int8_dev = 0.0;
  for (std::size_t i = 0; i < out_full.size(); ++i) {
    bf16_dev = std::max(bf16_dev,
                        std::abs(out_bf16.data()[i] - out_full.data()[i]));
    int8_dev = std::max(int8_dev,
                        std::abs(out_int8.data()[i] - out_full.data()[i]));
    EXPECT_TRUE(std::isfinite(out_bf16.data()[i]));
    EXPECT_TRUE(std::isfinite(out_int8.data()[i]));
  }
  // Loose closeness gates (the real accuracy gate is the F1 delta below):
  // bf16 keeps ~3 significant digits per weight, int8 ~2.
  EXPECT_LT(bf16_dev / scale, 0.05);
  EXPECT_LT(int8_dev / scale, 0.25);
}

TEST(InferencePlanQuantTest, QuantizedPoolSizeInvariance) {
  const Mlp mlp = make_mlp(16, 67);
  const InferencePlan plan =
      InferencePlan::Builder().add(mlp).build(PlanPrecision::Int8);
  const tensor::Matrix x = random_input(130, 16, 5);
  tensor::Matrix a, b;
  util::ThreadPool one(1), three(3);
  plan.run(x, a, &one);
  plan.run(x, b, &three);
  expect_bits_equal(a, b, "int8 pool invariance");
}

TEST(InferencePlanVaeTest, FusedReconstructionErrorMatchesLayerwiseOracle) {
  core::VaeConfig config;
  config.input_dim = 12;
  config.encoder_hidden = {16, 8};
  config.latent_dim = 3;
  config.seed = 5;
  core::VariationalAutoencoder vae(config);  // untrained weights are fine
  ASSERT_TRUE(vae.inference_plan() != nullptr);
  EXPECT_EQ(vae.inference_precision(), PlanPrecision::Full);

  for (const std::size_t rows : {std::size_t{1}, std::size_t{7},
                                 std::size_t{64}, std::size_t{70}}) {
    const tensor::Matrix x = random_input(rows, 12, 400 + rows);
    const auto fused = vae.reconstruction_error(x);
    const auto oracle = vae.reconstruction_error_layerwise(x);
    ASSERT_EQ(fused.size(), oracle.size());
    for (std::size_t i = 0; i < fused.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(fused[i]),
                std::bit_cast<std::uint64_t>(oracle[i]))
          << "rows=" << rows << " i=" << i;
    }
  }
}

TEST(InferencePlanVaeTest, PrecisionRoundTripRestoresBitExactScoring) {
  auto [X, labels] = testing::blob_dataset(48, 0, 10, 3.0, 21);
  core::VaeConfig config;
  config.input_dim = 10;
  config.encoder_hidden = {12, 6};
  config.latent_dim = 3;
  core::VariationalAutoencoder vae(config);
  nn::TrainOptions options;
  options.epochs = 20;
  options.batch_size = 16;
  vae.fit(X, options);

  const auto baseline = vae.reconstruction_error(X);
  vae.build_inference_plan(PlanPrecision::Int8);
  EXPECT_EQ(vae.inference_precision(), PlanPrecision::Int8);
  const auto quantized = vae.reconstruction_error(X);
  vae.build_inference_plan(PlanPrecision::Full);
  const auto restored = vae.reconstruction_error(X);

  ASSERT_EQ(baseline.size(), restored.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(baseline[i]),
              std::bit_cast<std::uint64_t>(restored[i]));
  }
  // And the quantized pass actually took the quantized path: scores differ
  // somewhere (while staying finite).
  bool any_diff = false;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_TRUE(std::isfinite(quantized[i]));
    any_diff = any_diff || quantized[i] != baseline[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(InferencePlanVaeTest, ReducedPrecisionF1DeltaWithinGate) {
  // The accuracy gate: a detector trained on blob data must keep its tuned
  // macro-F1 within 0.05 of the fp64 detector under bf16 and int8 weights
  // (mirrors the Tier-1 harness in bench/inference_latency --f1-delta).
  auto [X, labels] = testing::blob_dataset(160, 40, 12, 3.0, 33);
  core::ProdigyConfig config;
  config.vae.encoder_hidden = {16, 8};
  config.vae.latent_dim = 4;
  config.train.epochs = 60;
  config.train.batch_size = 32;
  config.train.validation_split = 0.2;
  config.train.early_stopping_patience = 0;
  core::ProdigyDetector detector(config);
  detector.fit(X, labels);

  const double f1_full = detector.tune_threshold(X, labels);
  EXPECT_GE(f1_full, 0.9);

  detector.set_inference_precision(PlanPrecision::Bf16);
  const double f1_bf16 = detector.tune_threshold(X, labels);
  detector.set_inference_precision(PlanPrecision::Int8);
  const double f1_int8 = detector.tune_threshold(X, labels);
  detector.set_inference_precision(PlanPrecision::Full);

  EXPECT_LE(std::abs(f1_full - f1_bf16), 0.05) << "bf16 F1 delta too large";
  EXPECT_LE(std::abs(f1_full - f1_int8), 0.05) << "int8 F1 delta too large";
}

TEST(InferencePlanVaeTest, DetectorRequiresFitBeforePrecisionChange) {
  core::ProdigyDetector detector;
  EXPECT_THROW(detector.set_inference_precision(PlanPrecision::Bf16),
               std::logic_error);
  EXPECT_EQ(detector.inference_precision(), PlanPrecision::Full);
}

TEST(InferencePlanVaeTest, PrecisionNamesRoundTrip) {
  EXPECT_EQ(plan_precision_from_string("full"), PlanPrecision::Full);
  EXPECT_EQ(plan_precision_from_string("fp64"), PlanPrecision::Full);
  EXPECT_EQ(plan_precision_from_string("bf16"), PlanPrecision::Bf16);
  EXPECT_EQ(plan_precision_from_string("int8"), PlanPrecision::Int8);
  EXPECT_THROW(plan_precision_from_string("fp8"), std::invalid_argument);
  EXPECT_EQ(to_string(PlanPrecision::Bf16), "bf16");
}

}  // namespace
}  // namespace prodigy::nn
