// StreamIngestor: bounded-queue MPSC ingest with reorder/dedup, backpressure
// policies, and shutdown draining.  Every test asserts the sample-accounting
// invariant: offered == flushed + dropped + duplicate + late + malformed.
#include "deploy/dsos.hpp"
#include "stream/ingestor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace {

using namespace prodigy;

constexpr std::size_t kCols = 4;

stream::SampleRow make_row(std::int64_t component, std::int64_t ts,
                           double fill = 0.0) {
  stream::SampleRow row;
  row.job_id = 7;
  row.component_id = component;
  row.timestamp = ts;
  row.app = "LAMMPS";
  row.values.assign(kCols, fill != 0.0 ? fill : static_cast<double>(ts));
  return row;
}

stream::SampleBatch one_row_batch(std::int64_t component, std::int64_t ts) {
  stream::SampleBatch batch;
  batch.sequence = static_cast<std::uint64_t>(ts);
  batch.rows.push_back(make_row(component, ts));
  return batch;
}

stream::IngestorConfig small_config() {
  stream::IngestorConfig config;
  config.columns = kCols;
  return config;
}

void expect_accounting_balances(const stream::IngestorStats& stats) {
  EXPECT_EQ(stats.offered_samples,
            stats.flushed_samples + stats.dropped_samples +
                stats.duplicate_samples + stats.late_samples +
                stats.malformed_samples);
}

/// Records every flush and exposes condition-variable waits so tests can
/// sequence against the consumer thread without wall-clock sleeps.
class CollectingSink : public stream::RowSink {
 public:
  void on_rows(std::int64_t job_id, std::int64_t component_id,
               const std::string& app,
               std::span<const std::int64_t> timestamps,
               const tensor::Matrix& rows) override {
    std::lock_guard lock(mutex_);
    Flush flush;
    flush.job_id = job_id;
    flush.component_id = component_id;
    flush.app = app;
    flush.timestamps.assign(timestamps.begin(), timestamps.end());
    flush.rows = rows.rows();
    flushed_rows_ += flush.rows;
    flushes_.push_back(std::move(flush));
    cv_.notify_all();
  }

  struct Flush {
    std::int64_t job_id = 0;
    std::int64_t component_id = 0;
    std::string app;
    std::vector<std::int64_t> timestamps;
    std::size_t rows = 0;
  };

  std::vector<Flush> flushes() const {
    std::lock_guard lock(mutex_);
    return flushes_;
  }

  /// Blocks until at least `rows` samples have been flushed through the sink
  /// (the deterministic replacement for the old poll-and-sleep loops).
  void wait_for_rows(std::uint64_t rows) const {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return flushed_rows_ >= rows; });
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::vector<Flush> flushes_;
  std::uint64_t flushed_rows_ = 0;
};

/// A sink whose gate starts closed: the consumer thread parks inside the
/// first on_rows until open() — so a test can build an exact queue state
/// behind a wedged consumer and assert backpressure arithmetic with
/// EXPECT_EQ instead of racing a sleep-slowed consumer.
class GatedSink : public stream::RowSink {
 public:
  void on_rows(std::int64_t, std::int64_t, const std::string&,
               std::span<const std::int64_t>,
               const tensor::Matrix& rows) override {
    std::unique_lock lock(mutex_);
    if (!open_) {
      parked_ = true;
      cv_.notify_all();
      cv_.wait(lock, [&] { return open_; });
      parked_ = false;
    }
    flushed_rows_ += rows.rows();
  }

  /// Blocks until the consumer thread is parked inside on_rows.
  void wait_until_parked() const {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return parked_; });
  }

  /// Opens the gate permanently; the parked consumer resumes.
  void open() {
    {
      std::lock_guard lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

  std::uint64_t flushed_rows() const {
    std::lock_guard lock(mutex_);
    return flushed_rows_;
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool open_ = false;
  bool parked_ = false;
  std::uint64_t flushed_rows_ = 0;
};

TEST(StreamIngestTest, OutOfOrderRowsWithinABatchFlushSorted) {
  deploy::DsosStore store;
  CollectingSink sink;
  stream::StreamIngestor ingestor(store, small_config(), &sink);

  stream::SampleBatch batch;
  for (const std::int64_t ts : {4, 1, 3, 0, 2}) {
    batch.rows.push_back(make_row(100, ts));
  }
  EXPECT_TRUE(ingestor.offer(std::move(batch)));
  ingestor.stop();

  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.offered_samples, 5u);
  EXPECT_EQ(stats.flushed_samples, 5u);
  EXPECT_EQ(stats.late_samples, 0u);
  expect_accounting_balances(stats);

  // The store and the sink both saw the rows in timestamp order.
  const auto series = store.query_node(7, 100);
  ASSERT_EQ(series.values.rows(), 5u);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_DOUBLE_EQ(series.values.at(r, 0), static_cast<double>(r));
  }
  std::vector<std::int64_t> seen;
  for (const auto& flush : sink.flushes()) {
    EXPECT_EQ(flush.job_id, 7);
    EXPECT_EQ(flush.component_id, 100);
    EXPECT_EQ(flush.app, "LAMMPS");
    seen.insert(seen.end(), flush.timestamps.begin(), flush.timestamps.end());
  }
  EXPECT_EQ(seen, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(StreamIngestTest, DuplicateTimestampsCountedOnce) {
  deploy::DsosStore store;
  stream::StreamIngestor ingestor(store, small_config(), nullptr);

  stream::SampleBatch batch;
  batch.rows.push_back(make_row(100, 1));
  batch.rows.push_back(make_row(100, 2));
  batch.rows.push_back(make_row(100, 1));  // duplicate of the first
  EXPECT_TRUE(ingestor.offer(std::move(batch)));
  ingestor.stop();

  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.offered_samples, 3u);
  EXPECT_EQ(stats.flushed_samples, 2u);
  EXPECT_EQ(stats.duplicate_samples, 1u);
  expect_accounting_balances(stats);
  EXPECT_EQ(store.query_node(7, 100).values.rows(), 2u);
}

TEST(StreamIngestTest, RowsBehindTheFlushWatermarkAreLate) {
  deploy::DsosStore store;
  CollectingSink sink;
  auto config = small_config();
  config.flush_rows = 1;  // flush after every batch
  stream::StreamIngestor ingestor(store, config, &sink);

  stream::SampleBatch first;
  first.rows.push_back(make_row(100, 10));
  first.rows.push_back(make_row(100, 11));
  EXPECT_TRUE(ingestor.offer(std::move(first)));
  // Wait (cv, not wall clock) for the flush: the node's watermark advances
  // to 11 before the sink sees the rows, so the next batch is judged late
  // deterministically.  (stats() may trail the sink by a beat; the final
  // accounting below covers it.)
  sink.wait_for_rows(2);

  stream::SampleBatch second;
  second.rows.push_back(make_row(100, 11));  // behind watermark: late
  second.rows.push_back(make_row(100, 5));   // far behind: late
  second.rows.push_back(make_row(100, 12));  // fresh
  EXPECT_TRUE(ingestor.offer(std::move(second)));
  ingestor.stop();

  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.offered_samples, 5u);
  EXPECT_EQ(stats.flushed_samples, 3u);
  EXPECT_EQ(stats.late_samples, 2u);
  expect_accounting_balances(stats);
  EXPECT_EQ(store.query_node(7, 100).values.rows(), 3u);
}

TEST(StreamIngestTest, MalformedRowWidthCountedAndSkipped) {
  deploy::DsosStore store;
  stream::StreamIngestor ingestor(store, small_config(), nullptr);

  stream::SampleBatch batch;
  batch.rows.push_back(make_row(100, 1));
  stream::SampleRow narrow = make_row(100, 2);
  narrow.values.resize(kCols - 1);
  batch.rows.push_back(std::move(narrow));
  EXPECT_TRUE(ingestor.offer(std::move(batch)));
  ingestor.stop();

  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.flushed_samples, 1u);
  EXPECT_EQ(stats.malformed_samples, 1u);
  expect_accounting_balances(stats);
}

TEST(StreamIngestTest, BlockPolicyLosesNothingUnderSlowConsumer) {
  deploy::DsosStore store;
  GatedSink sink;
  auto config = small_config();
  config.queue_capacity = 2;
  config.flush_rows = 1;  // every batch hits the gated sink
  config.policy = stream::BackpressurePolicy::Block;
  stream::StreamIngestor ingestor(store, config, &sink);

  // Wedge the consumer inside batch 0's flush, then fill the queue from a
  // producer thread: it must park on the full queue (Block) and, once the
  // gate opens, deliver every batch — nothing may be lost.
  constexpr std::int64_t kBatches = 40;
  EXPECT_TRUE(ingestor.offer(one_row_batch(100, 0)));
  sink.wait_until_parked();
  std::thread producer([&] {
    for (std::int64_t t = 1; t < kBatches; ++t) {
      EXPECT_TRUE(ingestor.offer(one_row_batch(100, t)));
    }
  });
  sink.open();
  producer.join();
  ingestor.stop();

  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.offered_samples, static_cast<std::uint64_t>(kBatches));
  EXPECT_EQ(stats.flushed_samples, static_cast<std::uint64_t>(kBatches));
  EXPECT_EQ(stats.dropped_samples, 0u);
  expect_accounting_balances(stats);
  EXPECT_EQ(store.query_node(7, 100).values.rows(),
            static_cast<std::size_t>(kBatches));
}

TEST(StreamIngestTest, DropOldestEvictsQueuedBatchesExactly) {
  deploy::DsosStore store;
  GatedSink sink;
  auto config = small_config();
  config.queue_capacity = 2;
  config.flush_rows = 1;
  config.policy = stream::BackpressurePolicy::DropOldest;
  stream::StreamIngestor ingestor(store, config, &sink);

  // Consumer wedged on batch 0's flush; batches 1..29 then hit a capacity-2
  // queue, so exactly 27 evictions happen and the 2 newest survive.
  constexpr std::int64_t kBatches = 30;
  EXPECT_TRUE(ingestor.offer(one_row_batch(100, 0)));
  sink.wait_until_parked();
  for (std::int64_t t = 1; t < kBatches; ++t) {
    // offer() never rejects under DropOldest; it evicts instead.
    EXPECT_TRUE(ingestor.offer(one_row_batch(100, t)));
  }
  sink.open();
  ingestor.stop();

  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.offered_samples, static_cast<std::uint64_t>(kBatches));
  EXPECT_EQ(stats.dropped_samples, static_cast<std::uint64_t>(kBatches) - 3);
  EXPECT_EQ(stats.flushed_samples, 3u);  // batch 0 + the 2 queue survivors
  expect_accounting_balances(stats);
  // Exactly the flushed rows reached the store, and the survivors are the
  // two newest batches.
  const auto series = store.query_node(7, 100);
  ASSERT_EQ(series.values.rows(), 3u);
  EXPECT_DOUBLE_EQ(series.values.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(series.values.at(1, 0), static_cast<double>(kBatches - 2));
  EXPECT_DOUBLE_EQ(series.values.at(2, 0), static_cast<double>(kBatches - 1));
}

TEST(StreamIngestTest, DropNewestRejectsAndReportsEachDrop) {
  deploy::DsosStore store;
  GatedSink sink;
  auto config = small_config();
  config.queue_capacity = 2;
  config.flush_rows = 1;
  config.policy = stream::BackpressurePolicy::DropNewest;
  stream::StreamIngestor ingestor(store, config, &sink);

  // Consumer wedged on batch 0's flush: batches 1 and 2 fill the queue and
  // every later offer is rejected outright — 27 exact, reported drops.
  constexpr std::int64_t kBatches = 30;
  EXPECT_TRUE(ingestor.offer(one_row_batch(100, 0)));
  sink.wait_until_parked();
  std::uint64_t rejected = 0;
  for (std::int64_t t = 1; t < kBatches; ++t) {
    if (!ingestor.offer(one_row_batch(100, t))) ++rejected;
  }
  sink.open();
  ingestor.stop();

  const auto stats = ingestor.stats();
  EXPECT_EQ(rejected, static_cast<std::uint64_t>(kBatches) - 3);
  EXPECT_EQ(stats.dropped_samples, rejected);  // one row per batch
  EXPECT_EQ(stats.flushed_samples, 3u);  // batch 0 + the 2 queued before full
  expect_accounting_balances(stats);
}

TEST(StreamIngestTest, StopDrainsEverythingAlreadyQueued) {
  deploy::DsosStore store;
  CollectingSink sink;
  auto config = small_config();
  config.queue_capacity = 64;
  config.flush_rows = 1'000'000;  // no pressure flush: rows stay pending
  stream::StreamIngestor ingestor(store, config, &sink);

  for (std::int64_t t = 0; t < 20; ++t) {
    EXPECT_TRUE(ingestor.offer(one_row_batch(100, t)));
  }
  ingestor.stop();  // must drain the queue and flush pending rows

  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.offered_samples, 20u);
  EXPECT_EQ(stats.flushed_samples, 20u);
  expect_accounting_balances(stats);
  EXPECT_EQ(store.query_node(7, 100).values.rows(), 20u);
}

TEST(StreamIngestTest, OfferAfterStopIsRejectedAndCounted) {
  deploy::DsosStore store;
  stream::StreamIngestor ingestor(store, small_config(), nullptr);
  ingestor.stop();
  ingestor.stop();  // idempotent

  EXPECT_FALSE(ingestor.offer(one_row_batch(100, 1)));
  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.offered_samples, 1u);
  EXPECT_EQ(stats.dropped_samples, 1u);
  expect_accounting_balances(stats);
}

TEST(StreamIngestTest, MultiProducerStressBalances) {
  deploy::DsosStore store;
  CollectingSink sink;
  auto config = small_config();
  config.queue_capacity = 4;
  config.policy = stream::BackpressurePolicy::Block;
  stream::StreamIngestor ingestor(store, config, &sink);

  constexpr std::size_t kProducers = 4;
  constexpr std::int64_t kTicksPerProducer = 50;
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::int64_t t = 0; t < kTicksPerProducer; ++t) {
        // Each producer feeds its own component, so timestamps never collide.
        stream::SampleBatch batch;
        batch.rows.push_back(make_row(static_cast<std::int64_t>(100 + p), t));
        batch.rows.push_back(make_row(static_cast<std::int64_t>(200 + p), t));
        EXPECT_TRUE(ingestor.offer(std::move(batch)));
      }
    });
  }
  for (auto& producer : producers) producer.join();
  ingestor.stop();

  const auto stats = ingestor.stats();
  const std::uint64_t total = kProducers * kTicksPerProducer * 2;
  EXPECT_EQ(stats.offered_samples, total);
  EXPECT_EQ(stats.flushed_samples, total);
  EXPECT_EQ(stats.dropped_samples, 0u);
  expect_accounting_balances(stats);
  for (std::size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(store.query_node(7, static_cast<std::int64_t>(100 + p)).values.rows(),
              static_cast<std::size_t>(kTicksPerProducer));
    EXPECT_EQ(store.query_node(7, static_cast<std::int64_t>(200 + p)).values.rows(),
              static_cast<std::size_t>(kTicksPerProducer));
  }
}

TEST(StreamIngestTest, ForeignStoreWidthCountedMalformed) {
  deploy::DsosStore store;
  // The store already holds this node with a different column width.
  telemetry::NodeSeries foreign;
  foreign.job_id = 7;
  foreign.component_id = 100;
  foreign.app = "other";
  foreign.values = tensor::Matrix(2, kCols + 3);
  store.ingest_node(foreign);

  stream::StreamIngestor ingestor(store, small_config(), nullptr);
  EXPECT_TRUE(ingestor.offer(one_row_batch(100, 1)));
  ingestor.stop();

  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.flushed_samples, 0u);
  EXPECT_EQ(stats.malformed_samples, 1u);
  expect_accounting_balances(stats);
  EXPECT_EQ(store.query_node(7, 100).values.rows(), 2u);  // untouched
}

}  // namespace
