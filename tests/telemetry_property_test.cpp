// Property tests over the telemetry substrate, parameterized across every
// Table-1 application and every Table-2 anomaly configuration.
#include "hpas/anomalies.hpp"
#include "telemetry/app_profile.hpp"
#include "telemetry/generator.hpp"
#include "telemetry/metrics.hpp"
#include "tensor/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prodigy::telemetry {
namespace {

std::vector<std::string> all_application_names() {
  std::vector<std::string> names;
  for (const auto& app : eclipse_applications()) names.push_back(app.name);
  for (const auto& app : volta_applications()) names.push_back(app.name);
  names.push_back(empire_application().name);
  return names;
}

class AppPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AppPropertyTest, StateStaysPhysical) {
  const auto& app = application_by_name(GetParam());
  util::Rng rng(7);
  const RunVariation variation = sample_run_variation(rng);
  for (double t = 0.0; t < 400.0; t += 7.0) {
    const ResourceState state = state_at(app, variation, t, 400.0, rng);
    EXPECT_GE(state.cpu_user, 0.0);
    EXPECT_GE(state.cpu_system, 0.0);
    EXPECT_GE(state.cpu_iowait, 0.0);
    EXPECT_GT(state.mem_used_frac, 0.0);
    EXPECT_LT(state.mem_used_frac, 1.5);  // clamped later by synthesis
    EXPECT_GE(state.page_fault_rate, 0.0);
    EXPECT_GE(state.io_rate, 0.0);
    EXPECT_GE(state.net_rate, 0.0);
    EXPECT_GE(state.ctx_switch_rate, 0.0);
    EXPECT_GE(state.runnable_procs, 0.0);
  }
}

TEST_P(AppPropertyTest, GeneratedRunIsFiniteWithoutDropout) {
  RunConfig config;
  config.app = application_by_name(GetParam());
  config.duration_s = 64;
  config.num_nodes = 2;
  config.dropout = 0.0;
  const JobTelemetry job = generate_run(config);
  for (const auto& node : job.nodes) {
    for (std::size_t i = 0; i < node.values.size(); ++i) {
      EXPECT_TRUE(std::isfinite(node.values.data()[i]));
      EXPECT_GE(node.values.data()[i], 0.0);  // all catalog metrics are counts/kB
    }
  }
}

TEST_P(AppPropertyTest, GaugesVaryCountersAccumulate) {
  RunConfig config;
  config.app = application_by_name(GetParam());
  config.duration_s = 96;
  config.num_nodes = 1;
  config.dropout = 0.0;
  const JobTelemetry job = generate_run(config);
  const auto& catalog = metric_catalog();
  for (std::size_t m = 0; m < catalog.size(); ++m) {
    const auto series = job.nodes[0].values.column(m);
    if (catalog[m].kind == MetricKind::Counter) {
      EXPECT_GE(series.back(), series.front()) << full_metric_name(catalog[m]);
      EXPECT_GT(series.front(), 1e5) << "counters start from a boot offset";
    }
  }
}

TEST_P(AppPropertyTest, RunToRunVariabilityIsModest) {
  // Same input deck, different seeds: mean CPU user ticks vary but stay
  // within a plausible band (the paper cites up to 70% worst-case run-to-run
  // variability; our healthy profiles sit well under that).
  const auto user_idx = metric_index("user::procstat");
  std::vector<double> run_means;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RunConfig config;
    config.app = application_by_name(GetParam());
    config.duration_s = 128;
    config.num_nodes = 1;
    config.dropout = 0.0;
    config.seed = seed;
    const JobTelemetry job = generate_run(config);
    const auto series = job.nodes[0].values.column(user_idx);
    run_means.push_back((series.back() - series.front()) /
                        static_cast<double>(series.size()));
  }
  const double mean = tensor::mean(run_means);
  for (const double m : run_means) {
    EXPECT_GT(m, mean * 0.6);
    EXPECT_LT(m, mean * 1.4);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApplications, AppPropertyTest,
                         ::testing::ValuesIn(all_application_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

class AnomalyPropertyTest
    : public ::testing::TestWithParam<hpas::AnomalySpec> {};

TEST_P(AnomalyPropertyTest, SlowdownIsAtLeastOne) {
  EXPECT_GE(hpas::expected_slowdown(GetParam()), 1.0);
  EXPECT_LE(hpas::expected_slowdown(GetParam()), 2.0);
}

TEST_P(AnomalyPropertyTest, InjectorKeepsStatePhysical) {
  util::Rng rng(3);
  auto injector = hpas::make_injector(GetParam(), rng);
  ASSERT_NE(injector, nullptr);
  for (double t_frac = 0.0; t_frac < 1.0; t_frac += 0.05) {
    ResourceState state;
    injector->perturb(t_frac, state, rng);
    EXPECT_GE(state.page_fault_rate, 0.0);
    EXPECT_GE(state.ctx_switch_rate, 0.0);
    EXPECT_GE(state.net_rate, 0.0);
    EXPECT_GE(state.io_rate, 0.0);
    const auto rates = synthesize_rates(state, 1e8, rng);
    for (const double r : rates) {
      EXPECT_TRUE(std::isfinite(r));
      EXPECT_GE(r, 0.0);
    }
  }
}

TEST_P(AnomalyPropertyTest, AnomalousRunDiffersFromHealthy) {
  RunConfig config;
  config.app = application_by_name("sw4");
  config.duration_s = 96;
  config.num_nodes = 1;
  config.dropout = 0.0;
  config.seed = 5;
  const JobTelemetry healthy = generate_run(config);
  config.anomaly = GetParam();
  const JobTelemetry anomalous = generate_run(config);

  const auto& catalog = metric_catalog();
  double total_relative_diff = 0.0;
  std::size_t counted = 0;
  for (std::size_t m = 0; m < metric_count(); ++m) {
    const auto h_series = healthy.nodes[0].values.column(m);
    const auto a_series = anomalous.nodes[0].values.column(m);
    // Counters carry a large since-boot offset; compare their growth.
    const bool counter = catalog[m].kind == MetricKind::Counter;
    const double h = counter ? h_series.back() - h_series.front()
                             : tensor::mean(h_series);
    const double a = counter ? a_series.back() - a_series.front()
                             : tensor::mean(a_series);
    if (h > 1e-9) {
      total_relative_diff += std::abs(a - h) / h;
      ++counted;
    }
  }
  EXPECT_GT(total_relative_diff / static_cast<double>(counted), 0.02)
      << "anomaly leaves no measurable signature";
}

INSTANTIATE_TEST_SUITE_P(
    Table2, AnomalyPropertyTest,
    ::testing::ValuesIn(hpas::table2_configurations()),
    [](const ::testing::TestParamInfo<hpas::AnomalySpec>& info) {
      return hpas::to_string(info.param.kind) + "_" +
             std::to_string(info.index);
    });

}  // namespace
}  // namespace prodigy::telemetry
