// Streaming building blocks: SampleBatch framing, the sliding-window ring
// buffer, and the debounced alert bus.
#include "stream/event_bus.hpp"
#include "stream/sample_batch.hpp"
#include "stream/window.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace prodigy;

// ---------------------------------------------------------------------------
// SampleBatch framing

stream::SampleBatch make_batch(std::uint64_t sequence, std::size_t rows,
                               std::size_t cols) {
  stream::SampleBatch batch;
  batch.sequence = sequence;
  for (std::size_t r = 0; r < rows; ++r) {
    stream::SampleRow row;
    row.job_id = 42;
    row.component_id = static_cast<std::int64_t>(100 + r);
    row.timestamp = static_cast<std::int64_t>(sequence);
    row.app = "LAMMPS";
    for (std::size_t c = 0; c < cols; ++c) {
      row.values.push_back(static_cast<double>(sequence * 1000 + r * 10 + c));
    }
    batch.rows.push_back(std::move(row));
  }
  return batch;
}

TEST(SampleBatchTest, MultiFrameFileRoundTrips) {
  const auto path = (std::filesystem::temp_directory_path() /
                     "prodigy_sample_batch_test.bin")
                        .string();
  std::vector<stream::SampleBatch> written;
  {
    util::BinaryWriter writer(path);
    for (std::uint64_t seq = 0; seq < 5; ++seq) {
      written.push_back(make_batch(seq, /*rows=*/3, /*cols=*/4));
      written.back().write_frame(writer);
    }
  }

  util::BinaryReader reader(path);
  std::vector<stream::SampleBatch> read;
  while (!reader.at_end()) {
    read.push_back(stream::SampleBatch::read_frame(reader));
  }
  std::filesystem::remove(path);

  ASSERT_EQ(read.size(), written.size());
  for (std::size_t b = 0; b < read.size(); ++b) {
    EXPECT_EQ(read[b].sequence, written[b].sequence);
    ASSERT_EQ(read[b].rows.size(), written[b].rows.size());
    for (std::size_t r = 0; r < read[b].rows.size(); ++r) {
      const auto& got = read[b].rows[r];
      const auto& want = written[b].rows[r];
      EXPECT_EQ(got.job_id, want.job_id);
      EXPECT_EQ(got.component_id, want.component_id);
      EXPECT_EQ(got.timestamp, want.timestamp);
      EXPECT_EQ(got.app, want.app);
      EXPECT_EQ(got.values, want.values);
    }
  }
}

TEST(SampleBatchTest, RejectsForeignFrame) {
  const auto path = (std::filesystem::temp_directory_path() /
                     "prodigy_sample_batch_bad.bin")
                        .string();
  {
    // A DSOS-style file starts with a different magic.
    util::BinaryWriter writer(path);
    writer.write_magic(0x1122334455667788ULL, 1);
    writer.write_u64(0);
  }
  util::BinaryReader reader(path);
  EXPECT_THROW(stream::SampleBatch::read_frame(reader), std::runtime_error);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// WindowState

std::vector<double> row_of(double v, std::size_t cols) {
  return std::vector<double>(cols, v);
}

TEST(WindowStateTest, OverlappingWindowsCoverHoppedRanges) {
  // W=4, H=2: window k holds rows [2k, 2k+4).
  stream::WindowState state(4, 2, 1);
  std::vector<stream::WindowSpan> spans;
  tensor::Matrix out;
  for (std::int64_t t = 0; t < 10; ++t) {
    state.push_row(t, row_of(static_cast<double>(t), 1));
    while (state.ready()) {
      spans.push_back(state.pop(out));
      // Rows come out in time order: values equal their timestamps.
      for (std::size_t r = 0; r < out.rows(); ++r) {
        EXPECT_DOUBLE_EQ(out.at(r, 0),
                         static_cast<double>(spans.back().start_ts +
                                             static_cast<std::int64_t>(r)));
      }
    }
  }
  ASSERT_EQ(spans.size(), 4u);  // windows at rows 0,2,4,6 complete by t=9
  for (std::size_t k = 0; k < spans.size(); ++k) {
    EXPECT_EQ(spans[k].index, k);
    EXPECT_EQ(spans[k].start_ts, static_cast<std::int64_t>(2 * k));
    EXPECT_EQ(spans[k].end_ts, static_cast<std::int64_t>(2 * k + 3));
  }
  EXPECT_EQ(state.rows_pushed(), 10u);
  EXPECT_EQ(state.windows_emitted(), 4u);
}

TEST(WindowStateTest, HopLargerThanWindowSkipsRows) {
  // W=2, H=3: window k holds rows [3k, 3k+2); row 3k+2 is never emitted.
  stream::WindowState state(2, 3, 1);
  tensor::Matrix out;
  std::vector<stream::WindowSpan> spans;
  for (std::int64_t t = 0; t < 8; ++t) {
    state.push_row(10 * t, row_of(static_cast<double>(t), 1));
    while (state.ready()) spans.push_back(state.pop(out));
  }
  ASSERT_EQ(spans.size(), 3u);  // windows at rows 0,3,6
  EXPECT_EQ(spans[1].start_ts, 30);
  EXPECT_EQ(spans[1].end_ts, 40);
  EXPECT_EQ(spans[2].start_ts, 60);
  EXPECT_EQ(spans[2].end_ts, 70);
}

TEST(WindowStateTest, PopWithoutReadyThrows) {
  stream::WindowState state(4, 2, 1);
  tensor::Matrix out;
  EXPECT_THROW(state.pop(out), std::logic_error);
  state.push_row(0, row_of(0.0, 1));
  EXPECT_FALSE(state.ready());
  EXPECT_THROW(state.pop(out), std::logic_error);
}

TEST(WindowStateTest, LazyDrainPastRingCapacityThrows) {
  // W=3, H=1: after 5 pushes window 0 (rows 0..2) has lost row 0 and 1 to
  // the ring; the eager-drain contract makes that caller error loud.
  stream::WindowState state(3, 1, 1);
  for (std::int64_t t = 0; t < 5; ++t) state.push_row(t, row_of(0.0, 1));
  tensor::Matrix out;
  EXPECT_THROW(state.pop(out), std::logic_error);
}

TEST(WindowStateTest, PopDeltaEmitsFullWindowThenHops) {
  // W=4, H=2: the first emission delivers all 4 rows, every later one just
  // the 2 new rows, while the span still names the full window.
  stream::WindowState state(4, 2, 1);
  tensor::Matrix out;
  std::vector<stream::WindowSpan> spans;
  std::vector<std::size_t> delta_rows;
  std::vector<double> delta_values;
  for (std::int64_t t = 0; t < 10; ++t) {
    state.push_row(t, row_of(static_cast<double>(t), 1));
    while (state.ready()) {
      spans.push_back(state.pop_delta(out));
      delta_rows.push_back(out.rows());
      for (std::size_t r = 0; r < out.rows(); ++r) {
        delta_values.push_back(out.at(r, 0));
      }
    }
  }
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(delta_rows, (std::vector<std::size_t>{4, 2, 2, 2}));
  // Concatenated deltas are exactly rows 0..9: each row delivered once.
  ASSERT_EQ(delta_values.size(), 10u);
  for (std::size_t i = 0; i < delta_values.size(); ++i) {
    EXPECT_DOUBLE_EQ(delta_values[i], static_cast<double>(i));
  }
  for (std::size_t k = 0; k < spans.size(); ++k) {
    EXPECT_EQ(spans[k].index, k);
    EXPECT_EQ(spans[k].start_ts, static_cast<std::int64_t>(2 * k));
    EXPECT_EQ(spans[k].end_ts, static_cast<std::int64_t>(2 * k + 3));
  }
}

TEST(WindowStateTest, PopDeltaDisjointWindowsDeliverFullWindows) {
  // H >= W: no overlap to reuse, so every delta is the whole window.
  stream::WindowState state(2, 3, 1);
  tensor::Matrix out;
  std::vector<stream::WindowSpan> spans;
  for (std::int64_t t = 0; t < 8; ++t) {
    state.push_row(10 * t, row_of(static_cast<double>(t), 1));
    while (state.ready()) {
      spans.push_back(state.pop_delta(out));
      EXPECT_EQ(out.rows(), 2u);
      EXPECT_DOUBLE_EQ(out.at(0, 0), static_cast<double>(spans.back().index * 3));
    }
  }
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[2].start_ts, 60);
  EXPECT_EQ(spans[2].end_ts, 70);
}

TEST(WindowStateTest, PopDeltaKeepsPopContractOnErrors) {
  stream::WindowState fresh(4, 2, 1);
  tensor::Matrix out;
  EXPECT_THROW(fresh.pop_delta(out), std::logic_error);

  stream::WindowState lazy(3, 1, 1);
  for (std::int64_t t = 0; t < 5; ++t) lazy.push_row(t, row_of(0.0, 1));
  EXPECT_THROW(lazy.pop_delta(out), std::logic_error);
}

// ---------------------------------------------------------------------------
// EventBus debouncing

stream::VerdictEvent verdict(std::int64_t component, std::uint64_t window,
                             bool anomalous) {
  stream::VerdictEvent event;
  event.job_id = 7;
  event.component_id = component;
  event.app = "HACC";
  event.window_index = window;
  event.window_start_ts = static_cast<std::int64_t>(window) * 16;
  event.window_end_ts = event.window_start_ts + 63;
  event.score = anomalous ? 2.0 : 0.1;
  event.threshold = 1.0;
  event.anomalous = anomalous;
  return event;
}

TEST(AlertBusTest, DebounceRequiresKConsecutiveVerdicts) {
  stream::EventBus bus({.debounce_windows = 3});
  std::vector<stream::TransitionEvent> transitions;
  bus.subscribe_transitions(
      [&](const stream::TransitionEvent& event) { transitions.push_back(event); });

  std::uint64_t window = 0;
  // Three healthy verdicts settle the initial state.
  for (int i = 0; i < 3; ++i) bus.publish(verdict(1, window++, false));
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_FALSE(transitions[0].anomalous);
  EXPECT_TRUE(transitions[0].initial);
  EXPECT_EQ(transitions[0].consecutive, 3u);
  ASSERT_TRUE(bus.node_state(7, 1).has_value());
  EXPECT_FALSE(*bus.node_state(7, 1));

  // Two anomalous verdicts are not enough...
  bus.publish(verdict(1, window++, true));
  bus.publish(verdict(1, window++, true));
  EXPECT_EQ(transitions.size(), 1u);
  EXPECT_FALSE(*bus.node_state(7, 1));
  // ...the third flips the state.
  bus.publish(verdict(1, window++, true));
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_TRUE(transitions[1].anomalous);
  EXPECT_FALSE(transitions[1].initial);
  EXPECT_EQ(transitions[1].window_index, window - 1);
  EXPECT_TRUE(*bus.node_state(7, 1));
}

TEST(AlertBusTest, FlappingVerdictsRaiseNoAlert) {
  stream::EventBus bus({.debounce_windows = 3});
  std::vector<stream::TransitionEvent> transitions;
  bus.subscribe_transitions(
      [&](const stream::TransitionEvent& event) { transitions.push_back(event); });

  std::uint64_t window = 0;
  for (int i = 0; i < 3; ++i) bus.publish(verdict(1, window++, false));
  ASSERT_EQ(transitions.size(), 1u);  // initial settle

  // healthy, anomalous, healthy, anomalous... never 3 in a row.
  for (int i = 0; i < 10; ++i) bus.publish(verdict(1, window++, i % 2 == 0));
  EXPECT_EQ(transitions.size(), 1u);
  EXPECT_FALSE(*bus.node_state(7, 1));  // still healthy

  // Two anomalous then one healthy also breaks the candidate run.
  bus.publish(verdict(1, window++, true));
  bus.publish(verdict(1, window++, true));
  bus.publish(verdict(1, window++, false));
  bus.publish(verdict(1, window++, true));
  bus.publish(verdict(1, window++, true));
  EXPECT_EQ(transitions.size(), 1u);
  EXPECT_EQ(bus.verdicts_published(),
            bus.transitions_published() + bus.suppressed());
}

TEST(AlertBusTest, DebounceOfOneForwardsEveryFlip) {
  stream::EventBus bus({.debounce_windows = 1});
  std::vector<stream::TransitionEvent> transitions;
  bus.subscribe_transitions(
      [&](const stream::TransitionEvent& event) { transitions.push_back(event); });

  bus.publish(verdict(1, 0, false));  // initial healthy
  bus.publish(verdict(1, 1, true));
  bus.publish(verdict(1, 2, false));
  bus.publish(verdict(1, 3, false));  // repeat: no transition
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_TRUE(transitions[0].initial);
  EXPECT_TRUE(transitions[1].anomalous);
  EXPECT_FALSE(transitions[2].anomalous);
  EXPECT_EQ(bus.suppressed(), 1u);
}

TEST(AlertBusTest, NodesDebounceIndependently) {
  stream::EventBus bus({.debounce_windows = 2});
  for (int i = 0; i < 2; ++i) bus.publish(verdict(1, i, true));
  for (int i = 0; i < 2; ++i) bus.publish(verdict(2, i, false));
  ASSERT_TRUE(bus.node_state(7, 1).has_value());
  ASSERT_TRUE(bus.node_state(7, 2).has_value());
  EXPECT_TRUE(*bus.node_state(7, 1));
  EXPECT_FALSE(*bus.node_state(7, 2));
  EXPECT_FALSE(bus.node_state(7, 3).has_value());  // never seen
  EXPECT_EQ(bus.transitions_published(), 2u);
}

TEST(AlertBusTest, VerdictSinksSeeEveryPublishAndUnsubscribeStops) {
  stream::EventBus bus({.debounce_windows = 2});
  std::size_t seen = 0;
  const auto id = bus.subscribe([&](const stream::VerdictEvent&) { ++seen; });
  bus.publish(verdict(1, 0, false));
  bus.publish(verdict(1, 1, false));
  EXPECT_EQ(seen, 2u);
  bus.unsubscribe(id);
  bus.publish(verdict(1, 2, false));
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(bus.verdicts_published(), 3u);
}

// Regression for debounce state across a model hot-swap: a candidate streak
// accumulated under one model generation must not be completed (or
// cheapened) by verdicts from the next generation, while the settled health
// state survives the swap untouched (a swap is not a health change).
TEST(AlertBusTest, ModelSwapResetsCandidateStreakKeepsSettledState) {
  stream::EventBus bus({.debounce_windows = 3});
  std::vector<stream::TransitionEvent> transitions;
  bus.subscribe_transitions(
      [&](const stream::TransitionEvent& event) { transitions.push_back(event); });

  auto generational = [](std::int64_t component, std::uint64_t window,
                         bool anomalous, std::uint64_t generation) {
    auto event = verdict(component, window, anomalous);
    event.model_generation = generation;
    return event;
  };

  std::uint64_t window = 0;
  // Settle healthy under generation 1.
  for (int i = 0; i < 3; ++i) bus.publish(generational(1, window++, false, 1));
  ASSERT_EQ(transitions.size(), 1u);
  ASSERT_FALSE(*bus.node_state(7, 1));

  // Two anomalous verdicts under generation 1: one short of a transition.
  bus.publish(generational(1, window++, true, 1));
  bus.publish(generational(1, window++, true, 1));
  EXPECT_EQ(transitions.size(), 1u);

  // The model swaps.  Two more anomalous verdicts — under generation 2 —
  // must NOT complete the old streak (2 + 2 is not 3-in-a-row under one
  // model), and the settled healthy state must survive the swap.
  bus.publish(generational(1, window++, true, 2));
  bus.publish(generational(1, window++, true, 2));
  EXPECT_EQ(transitions.size(), 1u);
  EXPECT_FALSE(*bus.node_state(7, 1));

  // Three consecutive generation-2 anomalous verdicts DO transition, and the
  // transition carries the confirming verdict's generation.
  bus.publish(generational(1, window++, true, 2));
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_TRUE(transitions[1].anomalous);
  EXPECT_EQ(transitions[1].consecutive, 3u);
  EXPECT_EQ(transitions[1].model_generation, 2u);
  EXPECT_TRUE(*bus.node_state(7, 1));

  // A swap alone (generation bump on otherwise steady verdicts) raises no
  // transition: the node is anomalous before and after.
  bus.publish(generational(1, window++, true, 3));
  bus.publish(generational(1, window++, true, 3));
  bus.publish(generational(1, window++, true, 3));
  EXPECT_EQ(transitions.size(), 2u);
  EXPECT_EQ(bus.verdicts_published(),
            bus.transitions_published() + bus.suppressed());
}

TEST(AlertBusTest, ZeroDebounceRejected) {
  EXPECT_THROW(stream::EventBus bus({.debounce_windows = 0}),
               std::invalid_argument);
}

// One shared EventBus under concurrent multi-shard publishers: each "shard"
// thread owns a disjoint node set (exactly the sharded service's routing
// guarantee) and publishes its nodes' verdict sequences in window order.
// Debounced per-node transition streams must then be identical to a serial
// oracle, whatever the thread interleaving — debounce state is per-node, so
// shard concurrency must never leak between nodes.
TEST(AlertBusConcurrencyTest, ShardPublishersKeepPerNodeTransitionsOrdered) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kNodesPerShard = 3;
  constexpr std::uint64_t kWindows = 40;

  // Deterministic per-node verdict script: settle healthy, then a
  // node-dependent mix of runs long enough to flip and flaps short enough to
  // be suppressed.
  auto scripted = [](std::int64_t component, std::uint64_t window) {
    if (window < 3) return false;                      // initial settle
    const auto phase = (window + static_cast<std::uint64_t>(component)) / 6;
    return phase % 2 == 1;                             // 6-window state runs
  };

  auto run = [&](bool concurrent) {
    stream::EventBus bus({.debounce_windows = 3});
    std::mutex transitions_mutex;
    std::map<std::int64_t, std::vector<stream::TransitionEvent>> transitions;
    bus.subscribe_transitions([&](const stream::TransitionEvent& event) {
      std::lock_guard lock(transitions_mutex);
      transitions[event.component_id].push_back(event);
    });

    auto publish_shard = [&](std::size_t shard) {
      // Per-node window order is the publisher's contract (the OnlineScorer
      // chains each node's windows); across nodes the order is free.
      for (std::uint64_t window = 0; window < kWindows; ++window) {
        for (std::size_t n = 0; n < kNodesPerShard; ++n) {
          const auto component =
              static_cast<std::int64_t>(100 * (shard + 1) + n);
          bus.publish(verdict(component, window, scripted(component, window)));
        }
      }
    };

    if (concurrent) {
      std::vector<std::thread> shards;
      for (std::size_t s = 0; s < kShards; ++s) {
        shards.emplace_back([&, s] { publish_shard(s); });
      }
      for (auto& shard : shards) shard.join();
    } else {
      for (std::size_t s = 0; s < kShards; ++s) publish_shard(s);
    }

    // The debounce ledger balances regardless of interleaving.
    EXPECT_EQ(bus.verdicts_published(), kShards * kNodesPerShard * kWindows);
    EXPECT_EQ(bus.verdicts_published(),
              bus.transitions_published() + bus.suppressed());
    std::lock_guard lock(transitions_mutex);
    return transitions;
  };

  const auto oracle = run(/*concurrent=*/false);
  const auto concurrent = run(/*concurrent=*/true);

  ASSERT_EQ(concurrent.size(), oracle.size());
  for (const auto& [component, expected] : oracle) {
    const auto it = concurrent.find(component);
    ASSERT_NE(it, concurrent.end()) << "node " << component;
    const auto& got = it->second;
    ASSERT_EQ(got.size(), expected.size()) << "node " << component;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].anomalous, expected[i].anomalous);
      EXPECT_EQ(got[i].initial, expected[i].initial);
      EXPECT_EQ(got[i].window_index, expected[i].window_index);
      EXPECT_EQ(got[i].consecutive, expected[i].consecutive);
      // Ordered: each node's transition stream advances monotonically.
      if (i > 0) {
        EXPECT_GT(got[i].window_index, got[i - 1].window_index);
      }
    }
  }
}

}  // namespace
