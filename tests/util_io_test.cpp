#include "util/csv.hpp"
#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace prodigy::util {
namespace {

class TempFile {
 public:
  explicit TempFile(const char* name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(CsvTest, EscapePlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvTest, EscapeQuotesCommasNewlines) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, RoundTripSimpleTable) {
  TempFile file("prodigy_csv_test1.csv");
  CsvTable table;
  table.header = {"model", "f1", "dataset"};
  table.rows = {{"Prodigy", "0.95", "Eclipse"}, {"USAD", "0.68", "Eclipse"}};
  write_csv(file.path(), table);
  const CsvTable loaded = read_csv(file.path());
  EXPECT_EQ(loaded.header, table.header);
  EXPECT_EQ(loaded.rows, table.rows);
}

TEST(CsvTest, RoundTripQuotedFields) {
  TempFile file("prodigy_csv_test2.csv");
  CsvTable table;
  table.header = {"name", "note"};
  table.rows = {{"a,b", "quote \"x\" here"}};
  write_csv(file.path(), table);
  const CsvTable loaded = read_csv(file.path());
  EXPECT_EQ(loaded.rows, table.rows);
}

TEST(CsvTest, ColumnIndexFindsAndThrows) {
  CsvTable table;
  table.header = {"a", "b", "c"};
  EXPECT_EQ(table.column_index("b"), 1u);
  EXPECT_THROW(table.column_index("missing"), std::out_of_range);
}

TEST(CsvTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/dir/file.csv"), std::runtime_error);
}

TEST(SerializeTest, RoundTripScalars) {
  TempFile file("prodigy_bin_test1.bin");
  {
    BinaryWriter writer(file.path());
    writer.write_u64(42);
    writer.write_i64(-7);
    writer.write_f64(3.25);
    writer.write_string("prodigy");
  }
  BinaryReader reader(file.path());
  EXPECT_EQ(reader.read_u64(), 42u);
  EXPECT_EQ(reader.read_i64(), -7);
  EXPECT_DOUBLE_EQ(reader.read_f64(), 3.25);
  EXPECT_EQ(reader.read_string(), "prodigy");
}

TEST(SerializeTest, RoundTripVectors) {
  TempFile file("prodigy_bin_test2.bin");
  const std::vector<double> values{1.5, -2.5, 0.0, 1e300};
  const std::vector<std::string> names{"MemFree::meminfo", "pgfault::vmstat", ""};
  {
    BinaryWriter writer(file.path());
    writer.write_f64_vector(values);
    writer.write_string_vector(names);
  }
  BinaryReader reader(file.path());
  EXPECT_EQ(reader.read_f64_vector(), values);
  EXPECT_EQ(reader.read_string_vector(), names);
}

TEST(SerializeTest, MagicMismatchThrows) {
  TempFile file("prodigy_bin_test3.bin");
  {
    BinaryWriter writer(file.path());
    writer.write_magic(0xAA, 1);
  }
  BinaryReader reader(file.path());
  EXPECT_THROW(reader.expect_magic(0xBB, 1), std::runtime_error);
}

TEST(SerializeTest, VersionMismatchThrows) {
  TempFile file("prodigy_bin_test4.bin");
  {
    BinaryWriter writer(file.path());
    writer.write_magic(0xAA, 1);
  }
  BinaryReader reader(file.path());
  EXPECT_THROW(reader.expect_magic(0xAA, 2), std::runtime_error);
}

TEST(SerializeTest, TruncatedReadThrows) {
  TempFile file("prodigy_bin_test5.bin");
  {
    BinaryWriter writer(file.path());
    writer.write_u64(1);
  }
  BinaryReader reader(file.path());
  reader.read_u64();
  EXPECT_THROW(reader.read_u64(), std::runtime_error);
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(BinaryReader("/nonexistent/dir/f.bin"), std::runtime_error);
}

}  // namespace
}  // namespace prodigy::util
