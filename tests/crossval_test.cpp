#include "eval/crossval.hpp"

#include "test_helpers.hpp"

#include <gtest/gtest.h>

namespace prodigy::eval {
namespace {

/// Oracle detector: scores by distance from the origin; anomalies in the
/// blob dataset are shifted, so a tuned threshold separates perfectly.
class OracleDetector final : public core::Detector {
 public:
  std::string name() const override { return "oracle"; }
  void fit(const tensor::Matrix&, const std::vector<int>&) override {}
  std::vector<double> score(const tensor::Matrix& X) const override {
    std::vector<double> scores(X.rows(), 0.0);
    for (std::size_t r = 0; r < X.rows(); ++r) {
      for (std::size_t c = 0; c < X.cols(); ++c) scores[r] += X(r, c);
    }
    return scores;
  }
  std::vector<int> predict(const tensor::Matrix& X) const override {
    const auto scores = score(X);
    std::vector<int> predictions(scores.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      predictions[i] = scores[i] > threshold_ ? 1 : 0;
    }
    return predictions;
  }
  void tune(const tensor::Matrix& X, const std::vector<int>& labels) override {
    threshold_ = best_threshold_by_f1(score(X), labels).best_threshold;
  }

 private:
  double threshold_ = 0.0;
};

TEST(EvaluateFoldTest, OracleReachesPerfectF1WithTuning) {
  auto train = prodigy::testing::blob_feature_dataset(80, 10, 6, 8.0, 1);
  auto test = prodigy::testing::blob_feature_dataset(40, 40, 6, 8.0, 2);
  OracleDetector oracle;
  EvalOptions options;
  const DetectorEvaluation result = evaluate_fold(
      oracle, train.X, train.labels, test.X, test.labels, options);
  EXPECT_NEAR(result.macro_f1, 1.0, 0.02);
  EXPECT_EQ(result.train_size, 90u);
  EXPECT_EQ(result.test_size, 80u);
  EXPECT_GE(result.train_seconds, 0.0);
}

TEST(EvaluateFoldTest, TuningCanBeDisabled) {
  auto train = prodigy::testing::blob_feature_dataset(80, 10, 6, 8.0, 3);
  auto test = prodigy::testing::blob_feature_dataset(40, 40, 6, 8.0, 4);
  OracleDetector oracle;
  EvalOptions options;
  options.tune_on_test = false;
  const DetectorEvaluation result = evaluate_fold(
      oracle, train.X, train.labels, test.X, test.labels, options);
  // Untuned oracle threshold 0 flags everything above zero-sum: poor macro-F1.
  EXPECT_LT(result.macro_f1, 0.9);
}

TEST(RepeatedEvalTest, RunsRequestedRounds) {
  const auto dataset = prodigy::testing::blob_feature_dataset(150, 150, 5, 6.0, 5);
  const auto result = repeated_prodigy_eval(
      [] { return std::make_unique<OracleDetector>(); }, dataset, 5, 42, {});
  ASSERT_EQ(result.rounds.size(), 5u);
  EXPECT_GT(result.mean_f1(), 0.95);
  EXPECT_GE(result.stddev_f1(), 0.0);
  EXPECT_GT(result.mean_accuracy(), 0.95);
}

TEST(RepeatedEvalTest, TrainSideRespectsAnomalyCap) {
  const auto dataset = prodigy::testing::blob_feature_dataset(100, 400, 4, 6.0, 6);
  const auto result = repeated_prodigy_eval(
      [] { return std::make_unique<OracleDetector>(); }, dataset, 2, 7, {}, 0.2, 0.1);
  for (const auto& round : result.rounds) {
    // 20% of 500 = 100 train samples, at most 10% of them anomalous; the
    // excess anomalous samples all land on the test side.
    EXPECT_EQ(round.train_size, 100u);
    EXPECT_EQ(round.test_size, 400u);
  }
}

TEST(KfoldEvalTest, FoldsCoverDataset) {
  const auto dataset = prodigy::testing::blob_feature_dataset(60, 60, 4, 6.0, 8);
  const auto result = kfold_eval(
      [] { return std::make_unique<OracleDetector>(); }, dataset, 4, 9, {});
  ASSERT_EQ(result.rounds.size(), 4u);
  std::size_t total_test = 0;
  for (const auto& round : result.rounds) total_test += round.test_size;
  EXPECT_EQ(total_test, dataset.size());
}

TEST(RepeatedEvalTest, EmptySummaryIsZero) {
  RepeatedEvaluation empty;
  EXPECT_DOUBLE_EQ(empty.mean_f1(), 0.0);
  EXPECT_DOUBLE_EQ(empty.stddev_f1(), 0.0);
}

}  // namespace
}  // namespace prodigy::eval
