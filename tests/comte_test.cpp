#include "comte/comte.hpp"

#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prodigy::comte {
namespace {

TEST(MetricOfFeatureTest, ParsesThreePartNames) {
  EXPECT_EQ(metric_of_feature("MemFree::meminfo::mean"), "MemFree::meminfo");
  EXPECT_EQ(metric_of_feature("pgrotated::vmstat::c3_lag_1"), "pgrotated::vmstat");
  EXPECT_EQ(metric_of_feature("plain"), "plain");
  EXPECT_EQ(metric_of_feature("a::b"), "a::b");
}

/// Fake detector whose score is the first coordinate (model-input space).
class FirstCoordinateDetector final : public core::Detector {
 public:
  std::string name() const override { return "fake"; }
  void fit(const tensor::Matrix&, const std::vector<int>&) override {}
  std::vector<double> score(const tensor::Matrix& X) const override {
    std::vector<double> scores(X.rows());
    for (std::size_t r = 0; r < X.rows(); ++r) scores[r] = X(r, 0);
    return scores;
  }
  std::vector<int> predict(const tensor::Matrix& X) const override {
    const auto scores = score(X);
    std::vector<int> predictions(scores.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      predictions[i] = scores[i] > 0.5 ? 1 : 0;
    }
    return predictions;
  }
};

TEST(ThresholdAdapterTest, ProbabilityIsMonotoneInScore) {
  FirstCoordinateDetector detector;
  ThresholdModelAdapter adapter(detector, 0.5, 0.1);
  const std::vector<double> low{0.1, 0.0};
  const std::vector<double> at{0.5, 0.0};
  const std::vector<double> high{0.9, 0.0};
  EXPECT_LT(adapter.anomaly_probability(low), 0.5);
  EXPECT_NEAR(adapter.anomaly_probability(at), 0.5, 1e-9);
  EXPECT_GT(adapter.anomaly_probability(high), 0.5);
}

TEST(ThresholdAdapterTest, EstimateScalePositive) {
  EXPECT_GT(ThresholdModelAdapter::estimate_scale({1.0, 2.0, 3.0, 4.0}), 0.0);
  EXPECT_GT(ThresholdModelAdapter::estimate_scale({2.0, 2.0, 2.0}), 0.0);
}

/// Model that flags a sample anomalous iff the mean of metric "m0" columns is
/// high.  The explainer must identify m0 as the counterfactual metric.
class MetricZeroModel final : public ProbabilityModel {
 public:
  double anomaly_probability(std::span<const double> x) const override {
    // Columns 0..1 belong to metric m0 (2 features per metric in the helper).
    const double mean = 0.5 * (x[0] + x[1]);
    return 1.0 / (1.0 + std::exp(-(mean - 0.5) * 10.0));
  }
};

class ComteExplainerTest : public ::testing::Test {
 protected:
  ComteExplainerTest() {
    // 3 metrics x 2 features.  Healthy training data near 0; the anomalous
    // query has metric m0 elevated.
    train_ = tensor::Matrix(20, 6, 0.1);
    labels_.assign(20, 0);
    labels_[19] = 1;  // one anomalous training row (ignored as distractor)
    for (std::size_t c = 0; c < 6; ++c) train_(19, c) = 0.9;
    names_ = {"m0::vmstat::mean", "m0::vmstat::max", "m1::vmstat::mean",
              "m1::vmstat::max", "m2::vmstat::mean", "m2::vmstat::max"};
  }

  tensor::Matrix train_;
  std::vector<int> labels_;
  std::vector<std::string> names_;
  MetricZeroModel model_;
};

TEST_F(ComteExplainerTest, GroupsMetrics) {
  ComteExplainer explainer(model_, train_, labels_, names_);
  EXPECT_EQ(explainer.metric_names(),
            (std::vector<std::string>{"m0::vmstat", "m1::vmstat", "m2::vmstat"}));
}

TEST_F(ComteExplainerTest, ValidatesInputs) {
  EXPECT_THROW(ComteExplainer(model_, train_, labels_, {"just_one"}),
               std::invalid_argument);
  EXPECT_THROW(ComteExplainer(model_, train_, {0, 1}, names_), std::invalid_argument);
  EXPECT_THROW(ComteExplainer(model_, train_, std::vector<int>(20, 1), names_),
               std::invalid_argument);
}

TEST_F(ComteExplainerTest, BruteForceFindsSingleMetricCounterfactual) {
  ComteExplainer explainer(model_, train_, labels_, names_);
  std::vector<double> query{0.9, 0.95, 0.1, 0.1, 0.1, 0.1};  // m0 elevated
  const Explanation explanation = explainer.explain_brute_force(query);
  EXPECT_TRUE(explanation.success);
  ASSERT_EQ(explanation.changes.size(), 1u);
  EXPECT_EQ(explanation.changes[0].metric, "m0::vmstat");
  EXPECT_LT(explanation.changes[0].mean_delta, 0.0);  // "healthy if m0 were lower"
  EXPECT_GT(explanation.original_probability, 0.5);
  EXPECT_LT(explanation.final_probability, 0.5);
}

TEST_F(ComteExplainerTest, OptimizedSearchAgreesOnEasyCase) {
  ComteExplainer explainer(model_, train_, labels_, names_);
  std::vector<double> query{0.9, 0.95, 0.1, 0.1, 0.1, 0.1};
  const Explanation explanation = explainer.explain_optimized(query);
  EXPECT_TRUE(explanation.success);
  ASSERT_GE(explanation.changes.size(), 1u);
  EXPECT_EQ(explanation.changes[0].metric, "m0::vmstat");
}

/// Needs two metrics replaced: probability driven by max of m0, m1 means.
class TwoMetricModel final : public ProbabilityModel {
 public:
  double anomaly_probability(std::span<const double> x) const override {
    const double m0 = 0.5 * (x[0] + x[1]);
    const double m1 = 0.5 * (x[2] + x[3]);
    const double drive = std::max(m0, m1);
    return 1.0 / (1.0 + std::exp(-(drive - 0.5) * 10.0));
  }
};

TEST_F(ComteExplainerTest, FindsTwoMetricCounterfactual) {
  TwoMetricModel model;
  ComteExplainer explainer(model, train_, labels_, names_);
  std::vector<double> query{0.9, 0.9, 0.9, 0.9, 0.1, 0.1};  // m0 AND m1 elevated
  const Explanation brute = explainer.explain_brute_force(query);
  EXPECT_TRUE(brute.success);
  EXPECT_EQ(brute.changes.size(), 2u);
  const Explanation greedy = explainer.explain_optimized(query);
  EXPECT_TRUE(greedy.success);
  EXPECT_EQ(greedy.changes.size(), 2u);
}

TEST_F(ComteExplainerTest, UnexplainableSampleReportsFailure) {
  // Probability is 1 regardless of features -> no counterfactual exists.
  class AlwaysAnomalous final : public ProbabilityModel {
   public:
    double anomaly_probability(std::span<const double>) const override { return 1.0; }
  };
  AlwaysAnomalous model;
  ComteExplainer explainer(model, train_, labels_, names_);
  std::vector<double> query(6, 0.9);
  const Explanation explanation = explainer.explain_optimized(query);
  EXPECT_FALSE(explanation.success);
}

TEST_F(ComteExplainerTest, EvaluationBudgetIsTracked) {
  ComteExplainer explainer(model_, train_, labels_, names_);
  std::vector<double> query{0.9, 0.9, 0.1, 0.1, 0.1, 0.1};
  const Explanation explanation = explainer.explain_brute_force(query);
  EXPECT_GT(explanation.evaluations, 0u);
}

}  // namespace
}  // namespace prodigy::comte
