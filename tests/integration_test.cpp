// End-to-end integration: the full Figure-5 pipeline at miniature scale —
// telemetry generation -> preprocessing -> feature extraction -> chi-square
// selection -> paper split -> Prodigy vs heuristics.  Verifies the headline
// qualitative claim: Prodigy clearly beats the heuristic floor.
#include "baselines/heuristics.hpp"
#include "core/prodigy_detector.hpp"
#include "eval/crossval.hpp"
#include "features/chi_square.hpp"
#include "pipeline/data_pipeline.hpp"

#include <gtest/gtest.h>

namespace prodigy {
namespace {

class MiniFig5Test : public ::testing::Test {
 protected:
  static features::FeatureDataset build() {
    telemetry::DatasetSpec spec;
    spec.system = telemetry::volta_system();
    spec.system.apps = {telemetry::application_by_name("cg"),
                        telemetry::application_by_name("miniMD")};
    spec.system.node_counts = {4};
    spec.healthy_runs_per_app = 14;
    spec.anomalous_runs_per_app = 6;
    spec.duration_s = 120;
    spec.seed = 321;

    pipeline::PreprocessOptions preprocess;
    preprocess.trim_seconds = 20;
    auto dataset = pipeline::DataPipeline::build_dataset(spec, preprocess);

    // Offline feature selection on min-max-scaled features.
    pipeline::Scaler scaler(pipeline::ScalerKind::MinMax);
    features::FeatureDataset scaled = dataset;
    scaled.X = scaler.fit_transform(dataset.X);
    const auto selection = features::select_features_chi2(scaled, 192);
    return dataset.select_columns(selection.selected);
  }

  static const features::FeatureDataset& dataset() {
    static const features::FeatureDataset data = build();
    return data;
  }
};

TEST_F(MiniFig5Test, DatasetHasExpectedShape) {
  const auto& data = dataset();
  EXPECT_EQ(data.size(), 2u * 20u * 4u);
  EXPECT_EQ(data.X.cols(), 192u);
  EXPECT_NEAR(data.anomaly_ratio(), 0.3, 0.01);
  EXPECT_EQ(data.feature_names.size(), 192u);
}

TEST_F(MiniFig5Test, ProdigyBeatsHeuristicFloor) {
  core::ProdigyConfig config;
  config.vae.encoder_hidden = {32, 12};
  config.vae.latent_dim = 4;
  config.train.epochs = 150;
  config.train.batch_size = 16;
  config.train.learning_rate = 3e-3;
  config.train.validation_split = 0.0;
  config.train.early_stopping_patience = 0;

  const auto prodigy_result = eval::repeated_prodigy_eval(
      [&] { return std::make_unique<core::ProdigyDetector>(config); }, dataset(),
      2, 11, {}, 0.35, 0.10);
  const auto random_result = eval::repeated_prodigy_eval(
      [] { return std::make_unique<baselines::RandomPrediction>(3); }, dataset(),
      2, 11, {}, 0.35, 0.10);
  const auto majority_result = eval::repeated_prodigy_eval(
      [] { return std::make_unique<baselines::MajorityLabelPrediction>(); },
      dataset(), 2, 11, {}, 0.35, 0.10);

  EXPECT_GT(prodigy_result.mean_f1(), 0.75);
  EXPECT_GT(prodigy_result.mean_f1(), random_result.mean_f1() + 0.15);
  EXPECT_GT(prodigy_result.mean_f1(), majority_result.mean_f1() + 0.15);
}

TEST_F(MiniFig5Test, SelectedFeaturesIncludeMemorySignals) {
  // The Table-2 anomaly mix is memory-heavy; chi-square should surface at
  // least some meminfo/vmstat features among the efficient set.
  const auto& data = dataset();
  bool memory_feature = false;
  for (const auto& name : data.feature_names) {
    if (name.find("meminfo") != std::string::npos ||
        name.find("vmstat") != std::string::npos) {
      memory_feature = true;
      break;
    }
  }
  EXPECT_TRUE(memory_feature);
}

}  // namespace
}  // namespace prodigy
