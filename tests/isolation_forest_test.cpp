#include "baselines/isolation_forest.hpp"

#include "eval/metrics.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace prodigy::baselines {
namespace {

TEST(AveragePathLengthTest, KnownValues) {
  EXPECT_DOUBLE_EQ(average_path_length(0), 0.0);
  EXPECT_DOUBLE_EQ(average_path_length(1), 0.0);
  EXPECT_DOUBLE_EQ(average_path_length(2), 1.0);
  // c(n) grows logarithmically.
  EXPECT_GT(average_path_length(256), average_path_length(100));
  EXPECT_NEAR(average_path_length(256), 2.0 * (std::log(255.0) + 0.5772156649) -
                                            2.0 * 255.0 / 256.0,
              1e-9);
}

TEST(IsolationForestTest, UsageErrors) {
  IsolationForest forest;
  EXPECT_THROW(forest.score(tensor::Matrix(1, 2, 0.0)), std::logic_error);
  EXPECT_THROW(forest.fit(tensor::Matrix{}, {}), std::invalid_argument);
  EXPECT_EQ(forest.name(), "Isolation Forest");
}

TEST(IsolationForestTest, ObviousOutlierGetsHighScore) {
  auto [X, y] = testing::blob_dataset(256, 0, 4, 0.0, 1);
  IsolationForest forest;
  forest.fit(X, y);

  tensor::Matrix probe(2, 4);
  for (std::size_t c = 0; c < 4; ++c) {
    probe(0, c) = 0.0;    // dead center of the blob
    probe(1, c) = 12.0;   // far outside
  }
  const auto scores = forest.score(probe);
  EXPECT_LT(scores[0], 0.55);
  EXPECT_GT(scores[1], 0.65);
  EXPECT_GT(scores[1], scores[0] + 0.1);
}

TEST(IsolationForestTest, ScoresAreInUnitInterval) {
  auto [X, y] = testing::blob_dataset(200, 20, 5, 3.0, 2);
  IsolationForest forest;
  forest.fit(X, y);
  for (const double s : forest.score(X)) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(IsolationForestTest, ContaminationControlsTrainFlagRate) {
  auto [X, y] = testing::blob_dataset(400, 0, 4, 0.0, 3);
  IsolationForestConfig config;
  config.contamination = 0.10;
  IsolationForest forest(config);
  forest.fit(X, y);
  std::size_t flagged = 0;
  for (const int p : forest.predict(X)) flagged += p;
  EXPECT_NEAR(static_cast<double>(flagged), 40.0, 12.0);
}

TEST(IsolationForestTest, SeparatesShiftedAnomaliesWithMatchingRatio) {
  // Volta-like: contamination matches the true anomaly rate -> IF works well.
  auto [X, y] = testing::blob_dataset(360, 40, 6, 5.0, 4);
  IsolationForestConfig config;
  config.contamination = 0.10;
  IsolationForest forest(config);
  forest.fit(X, y);
  const double f1 = eval::macro_f1(y, forest.predict(X));
  EXPECT_GT(f1, 0.85);
}

TEST(IsolationForestTest, MismatchedContaminationDegradesEclipseStyle) {
  // Eclipse-style failure mode (paper §6.1): the 10%-contamination threshold
  // is calibrated to flag ~10% of points, so on a 90%-anomalous test set
  // with overlapping score distributions IF misses most anomalies and its
  // macro-F1 collapses relative to the Volta-style (10% anomalous) setting.
  auto [X_train, y_train] = testing::blob_dataset(360, 40, 6, 1.5, 5);
  IsolationForestConfig config;
  config.contamination = 0.10;
  IsolationForest forest(config);
  forest.fit(X_train, y_train);

  auto [X_volta, y_volta] = testing::blob_dataset(270, 30, 6, 1.5, 6);
  const double volta_f1 = eval::macro_f1(y_volta, forest.predict(X_volta));

  auto [X_eclipse, y_eclipse] = testing::blob_dataset(30, 270, 6, 1.5, 7);
  const double eclipse_f1 = eval::macro_f1(y_eclipse, forest.predict(X_eclipse));

  EXPECT_LT(eclipse_f1, volta_f1 - 0.1);
  EXPECT_LT(eclipse_f1, 0.6);
}

TEST(IsolationForestTest, DeterministicForFixedSeed) {
  auto [X, y] = testing::blob_dataset(150, 15, 4, 3.0, 7);
  IsolationForestConfig config;
  config.seed = 42;
  IsolationForest a(config), b(config);
  a.fit(X, y);
  b.fit(X, y);
  EXPECT_EQ(a.score(X), b.score(X));
}

TEST(IsolationForestTest, HandlesConstantFeatures) {
  tensor::Matrix X(100, 3, 1.0);  // every feature constant
  std::vector<int> y(100, 0);
  IsolationForest forest;
  EXPECT_NO_THROW(forest.fit(X, y));
  const auto scores = forest.score(X);
  // All points identical -> identical scores.
  for (const double s : scores) EXPECT_DOUBLE_EQ(s, scores[0]);
}

TEST(IsolationForestTest, FewerTreesStillWork) {
  auto [X, y] = testing::blob_dataset(128, 0, 4, 0.0, 8);
  IsolationForestConfig config;
  config.n_estimators = 5;
  IsolationForest forest(config);
  forest.fit(X, y);
  EXPECT_EQ(forest.score(X).size(), X.rows());
}

}  // namespace
}  // namespace prodigy::baselines
