#include "telemetry/gpu.hpp"

#include "core/prodigy_detector.hpp"
#include "eval/metrics.hpp"
#include "features/chi_square.hpp"
#include "pipeline/data_pipeline.hpp"
#include "tensor/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace prodigy::telemetry::gpu {
namespace {

TEST(GpuCatalogTest, NamesUniqueAndDcgmScoped) {
  std::set<std::string> names;
  for (const auto& spec : gpu_metric_catalog()) {
    EXPECT_EQ(spec.sampler, Sampler::Dcgm);
    EXPECT_TRUE(names.insert(full_metric_name(spec)).second);
  }
  EXPECT_EQ(names.size(), gpu_metric_count());
  EXPECT_TRUE(names.contains("gpu_utilization::dcgm"));
  EXPECT_TRUE(names.contains("fb_used::dcgm"));
  EXPECT_TRUE(names.contains("xid_errors::dcgm"));
}

TEST(GpuCatalogTest, HeterogeneousLayoutConcatenatesCatalogs) {
  const auto names = heterogeneous_metric_names();
  const auto kinds = heterogeneous_metric_kinds();
  EXPECT_EQ(names.size(), metric_count() + gpu_metric_count());
  EXPECT_EQ(kinds.size(), names.size());
  EXPECT_EQ(names.front(), full_metric_name(metric_catalog().front()));
  EXPECT_EQ(names.back(), full_metric_name(gpu_metric_catalog().back()));
}

TEST(GpuCatalogTest, SynthesizedRatesAreSane) {
  GpuState state;
  state.util = 0.8;
  state.fb_used_frac = 0.5;
  util::Rng rng(1);
  const auto rates = synthesize_gpu_rates(state, 40960.0, rng);
  ASSERT_EQ(rates.size(), gpu_metric_count());
  for (const double r : rates) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GE(r, 0.0);
  }
  // fb_used + fb_free ~ total.
  std::size_t used_idx = 0, free_idx = 0;
  const auto& catalog = gpu_metric_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].name == "fb_used") used_idx = i;
    if (catalog[i].name == "fb_free") free_idx = i;
  }
  EXPECT_NEAR(rates[used_idx] + rates[free_idx], 40960.0, 1000.0);
}

TEST(GpuAppTest, ProfilesExistAndLookupWorks) {
  EXPECT_GE(gpu_applications().size(), 3u);
  EXPECT_EQ(gpu_application_by_name("LAMMPS-GPU").name, "LAMMPS-GPU");
  EXPECT_THROW(gpu_application_by_name("missing"), std::out_of_range);
  // GPU builds are lighter on the host CPU than the CPU-only profiles.
  EXPECT_LT(gpu_application_by_name("LAMMPS-GPU").host.cpu_intensity,
            application_by_name("LAMMPS").cpu_intensity);
}

TEST(GpuRunTest, ShapeAndDeterminism) {
  GpuRunConfig config;
  config.app = gpu_application_by_name("HACC-GPU");
  config.duration_s = 48;
  config.num_nodes = 2;
  config.dropout = 0.0;
  const auto a = generate_gpu_run(config);
  const auto b = generate_gpu_run(config);
  ASSERT_EQ(a.nodes.size(), 2u);
  EXPECT_EQ(a.nodes[0].values.cols(), metric_count() + gpu_metric_count());
  EXPECT_EQ(a.nodes[0].values.rows(), 48u);
  for (std::size_t i = 0; i < a.nodes[0].values.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.nodes[0].values.data()[i], b.nodes[0].values.data()[i]);
  }
}

TEST(GpuRunTest, GpuCountersAccumulate) {
  GpuRunConfig config;
  config.app = gpu_application_by_name("sw4-GPU");
  config.duration_s = 64;
  config.num_nodes = 1;
  config.dropout = 0.0;
  const auto job = generate_gpu_run(config);
  const auto& catalog = gpu_metric_catalog();
  for (std::size_t m = 0; m < catalog.size(); ++m) {
    if (catalog[m].kind != MetricKind::Counter) continue;
    const auto series = job.nodes[0].values.column(metric_count() + m);
    for (std::size_t t = 1; t < series.size(); ++t) {
      EXPECT_GE(series[t], series[t - 1]) << catalog[m].name;
    }
  }
}

TEST(GpuRunTest, GpuMemleakFillsFramebuffer) {
  GpuRunConfig config;
  config.app = gpu_application_by_name("LAMMPS-GPU");
  config.duration_s = 128;
  config.num_nodes = 1;
  config.dropout = 0.0;
  config.anomaly = GpuAnomalyKind::GpuMemleak;
  const auto job = generate_gpu_run(config);
  EXPECT_EQ(job.nodes[0].label, 1);
  EXPECT_EQ(job.nodes[0].anomaly, "gpu_memleak");

  std::size_t fb_used_idx = metric_count();
  const auto& catalog = gpu_metric_catalog();
  for (std::size_t m = 0; m < catalog.size(); ++m) {
    if (catalog[m].name == "fb_used") fb_used_idx = metric_count() + m;
  }
  const auto series = job.nodes[0].values.column(fb_used_idx);
  const std::size_t q = series.size() / 4;
  const double head = tensor::mean(std::span(series).subspan(0, q));
  const double tail = tensor::mean(std::span(series).subspan(series.size() - q, q));
  EXPECT_GT(tail, head * 1.5);  // monotone fill
}

TEST(GpuRunTest, ThermalThrottleDropsClocksRaisesTemp) {
  GpuRunConfig config;
  config.app = gpu_application_by_name("HACC-GPU");
  config.duration_s = 96;
  config.num_nodes = 1;
  config.dropout = 0.0;
  const auto healthy = generate_gpu_run(config);
  config.anomaly = GpuAnomalyKind::ThermalThrottle;
  const auto throttled = generate_gpu_run(config);

  std::size_t clock_idx = 0, temp_idx = 0;
  const auto& catalog = gpu_metric_catalog();
  for (std::size_t m = 0; m < catalog.size(); ++m) {
    if (catalog[m].name == "sm_clock") clock_idx = metric_count() + m;
    if (catalog[m].name == "gpu_temp") temp_idx = metric_count() + m;
  }
  EXPECT_LT(tensor::mean(throttled.nodes[0].values.column(clock_idx)),
            tensor::mean(healthy.nodes[0].values.column(clock_idx)) * 0.9);
  EXPECT_GT(tensor::mean(throttled.nodes[0].values.column(temp_idx)),
            tensor::mean(healthy.nodes[0].values.column(temp_idx)) + 10.0);
}

TEST(GpuPipelineTest, EndToEndJointModelDetectsGpuMemleak) {
  // Heterogeneous future-work flow: train a joint CPU+GPU model on healthy
  // GPU-app runs, then flag a device memory leak.
  std::vector<JobTelemetry> healthy_jobs;
  util::Rng rng(9);
  for (int run = 0; run < 6; ++run) {
    GpuRunConfig config;
    config.app = gpu_application_by_name("LAMMPS-GPU");
    config.job_id = run;
    config.num_nodes = 4;
    config.duration_s = 120;
    config.seed = rng();
    config.first_component_id = run * 10;
    healthy_jobs.push_back(generate_gpu_run(config));
  }
  // Instrumented runs with synthetic GPU anomalies feed the offline
  // chi-square selection (the Fig.-1 methodology applied to the partition).
  std::vector<JobTelemetry> selection_jobs = healthy_jobs;
  for (const auto kind : {GpuAnomalyKind::GpuMemleak, GpuAnomalyKind::ThermalThrottle}) {
    GpuRunConfig config;
    config.app = gpu_application_by_name("LAMMPS-GPU");
    config.job_id = 50 + static_cast<int>(kind);
    config.num_nodes = 4;
    config.duration_s = 120;
    config.seed = rng();
    config.anomaly = kind;
    config.first_component_id = config.job_id * 10;
    selection_jobs.push_back(generate_gpu_run(config));
  }

  pipeline::PreprocessOptions preprocess;
  preprocess.trim_seconds = 20;
  const auto names = heterogeneous_metric_names();
  const auto kinds = heterogeneous_metric_kinds();
  auto selection_data = pipeline::DataPipeline::build_from_jobs(
      selection_jobs, names, kinds, preprocess);
  pipeline::Scaler selection_scaler;
  selection_data.X = selection_scaler.fit_transform(selection_data.X);
  const auto selection = features::select_features_chi2(selection_data, 192);

  auto train = pipeline::DataPipeline::build_from_jobs(healthy_jobs, names, kinds,
                                                       preprocess);
  EXPECT_EQ(train.X.cols(),
            names.size() * features::features_per_metric());
  train = train.select_columns(selection.selected);
  pipeline::Scaler scaler;
  const auto train_scaled = scaler.fit_transform(train.X);

  core::ProdigyConfig model;
  model.vae.encoder_hidden = {32, 12};
  model.vae.latent_dim = 4;
  model.train.epochs = 120;
  model.train.batch_size = 16;
  model.train.learning_rate = 1e-3;
  model.train.validation_split = 0.0;
  model.train.early_stopping_patience = 0;
  core::ProdigyDetector detector(model);
  detector.fit_healthy(train_scaled);

  GpuRunConfig incident;
  incident.app = gpu_application_by_name("LAMMPS-GPU");
  incident.job_id = 99;
  incident.num_nodes = 4;
  incident.duration_s = 120;
  incident.seed = rng();
  incident.anomaly = GpuAnomalyKind::GpuMemleak;
  incident.anomalous_nodes = {0, 2};
  incident.first_component_id = 990;
  auto test = pipeline::DataPipeline::build_from_jobs(
      {generate_gpu_run(incident)}, names, kinds, preprocess);
  test = test.select_columns(selection.selected);
  const auto predictions = detector.predict(scaler.transform(test.X));
  EXPECT_EQ(predictions, (std::vector<int>{1, 0, 1, 0}));
}

}  // namespace
}  // namespace prodigy::telemetry::gpu
