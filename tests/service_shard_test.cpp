// Sharded fleet-scale service harness (stream/sharded_service.hpp):
//
//  * golden determinism — sharded streaming verdicts and merged analyze_job
//    results are bit-identical (EXPECT_EQ) to the single-shard oracle for
//    shard counts {1, 2, 4, 8} and any per-shard pool size;
//  * fault injection — a stalled, crashed, or slow shard never breaks the
//    fleet-wide accounting invariant
//      offered == shed + flushed + dropped + duplicate + late + malformed
//    and a released (stalled) shard catches up losslessly;
//  * admission control — the fleet queued-batch budget sheds deterministic
//    batches, and the query gate's admitted/shed ledger always balances.
//
// All fault sequencing is condition-variable driven (wait_until_stalled);
// there are no wall-clock sleeps to flake under TSAN.
#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "stream/event_bus.hpp"
#include "stream/sharded_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

namespace {

using namespace prodigy;

telemetry::JobTelemetry make_job(std::int64_t job_id, const std::string& app,
                                 std::size_t nodes, double duration,
                                 hpas::AnomalySpec anomaly = hpas::healthy_spec(),
                                 std::vector<std::size_t> anomalous_nodes = {}) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name(app);
  config.job_id = job_id;
  config.num_nodes = nodes;
  config.duration_s = duration;
  config.seed = static_cast<std::uint64_t>(job_id);
  config.anomaly = std::move(anomaly);
  config.anomalous_nodes = std::move(anomalous_nodes);
  config.first_component_id = job_id * 100;
  return telemetry::generate_run(config);
}

/// One frame per tick with rows for every node (the replay-tool shape).
std::vector<stream::SampleBatch> batches_from_job(
    const telemetry::JobTelemetry& job) {
  std::size_t ticks = 0;
  for (const auto& node : job.nodes) ticks = std::max(ticks, node.values.rows());
  std::vector<stream::SampleBatch> batches;
  for (std::size_t t = 0; t < ticks; ++t) {
    stream::SampleBatch batch;
    batch.sequence = t;
    for (const auto& node : job.nodes) {
      if (t >= node.values.rows()) continue;
      stream::SampleRow row;
      row.job_id = node.job_id;
      row.component_id = node.component_id;
      row.timestamp = static_cast<std::int64_t>(t);
      row.app = node.app;
      const auto values = node.values.row(t);
      row.values.assign(values.begin(), values.end());
      batch.rows.push_back(std::move(row));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

class ServiceShardTest : public ::testing::Test {
 protected:
  ServiceShardTest() {
    std::int64_t job = 1;
    for (int i = 0; i < 5; ++i) {
      store_.ingest(make_job(job, "LAMMPS", 3, 120));
      train_jobs_.push_back(job++);
    }
    const auto memleak = hpas::table2_configurations().back();
    store_.ingest(make_job(job, "LAMMPS", 3, 120, memleak));
    train_jobs_.push_back(job++);
  }

  core::ModelBundle train_bundle() {
    deploy::TrainFromStoreOptions options;
    options.preprocess.trim_seconds = 20;
    options.top_k_features = 64;
    options.model.vae.encoder_hidden = {24, 8};
    options.model.vae.latent_dim = 3;
    options.model.train.epochs = 80;
    options.model.train.batch_size = 16;
    options.model.train.learning_rate = 2e-3;
    options.model.train.validation_split = 0.0;
    options.model.train.early_stopping_patience = 0;
    const auto service = deploy::AnalyticsService::train_from_store(
        store_, train_jobs_, options, /*explain=*/false);
    return service.bundle();
  }

  deploy::DsosStore store_;
  std::vector<std::int64_t> train_jobs_;
};

using VerdictKey = std::pair<std::int64_t, std::uint64_t>;  // (component, window)

struct VerdictRecord {
  double score = 0.0;
  double threshold = 0.0;
  bool anomalous = false;
  std::int64_t start_ts = 0;
  std::int64_t end_ts = 0;
};

TEST_F(ServiceShardTest, GoldenDeterminismAcrossShardCountsAndPoolSizes) {
  const core::ModelBundle bundle = train_bundle();
  const auto replay_job = make_job(90, "LAMMPS", 16, 120,
                                   hpas::table2_configurations().back(), {3, 11});
  const auto batches = batches_from_job(replay_job);
  constexpr std::size_t kWindowsPerNode = 4;  // 120 rows, W=48, H=24

  auto run_replay = [&](std::size_t shards, std::size_t threads) {
    stream::ShardedServiceConfig config;
    config.shards = shards;
    config.scorer_threads = threads;
    config.scorer.window = 48;
    config.scorer.hop = 24;
    // Pin the batch-exact extraction path: this suite asserts EXPECT_EQ
    // against the unsharded oracle (the incremental mode's tolerance story
    // is owned by stream_scoring_test).
    config.scorer.extraction = stream::ExtractionMode::kFullRecompute;
    config.preprocess = stream::streaming_preprocess_defaults();
    stream::ShardedAnalyticsService service(bundle, config);

    std::mutex verdict_mutex;
    std::map<VerdictKey, VerdictRecord> verdicts;
    service.bus().subscribe([&](const stream::VerdictEvent& event) {
      std::lock_guard lock(verdict_mutex);
      verdicts[{event.component_id, event.window_index}] = {
          event.score, event.threshold, event.anomalous, event.window_start_ts,
          event.window_end_ts};
    });

    for (const auto& batch : batches) EXPECT_TRUE(service.offer(batch));
    service.stop();

    // Unsaturated Block queues: every offered sample flushed, none shed.
    const auto stats = service.stats();
    EXPECT_TRUE(stats.accounting_balances());
    EXPECT_EQ(stats.shed_samples, 0u);
    EXPECT_EQ(stats.totals.dropped_samples, 0u);
    EXPECT_EQ(stats.offered_samples, stats.totals.flushed_samples);
    EXPECT_EQ(service.score_errors(), 0u);
    EXPECT_EQ(service.windows_scored(),
              replay_job.nodes.size() * kWindowsPerNode);

    // Placement: every node's full history lives in exactly the shard the
    // frozen hash names, and the per-shard scored-window counts sum to the
    // fleet total.
    std::uint64_t per_shard_windows = 0;
    for (std::size_t k = 0; k < service.shard_count(); ++k) {
      per_shard_windows += service.shard_windows_scored(k);
    }
    EXPECT_EQ(per_shard_windows, service.windows_scored());
    for (const auto& node : replay_job.nodes) {
      const std::size_t owner =
          service.shard_of_node(node.job_id, node.component_id);
      const auto stored =
          service.shard_store(owner).query_node(node.job_id, node.component_id);
      EXPECT_EQ(stored.values.rows(), node.values.rows());
    }

    // Merged query, computed from the shard-local stores.
    const auto analysis = service.analyze_job(replay_job.job_id);
    EXPECT_TRUE(analysis.has_value());
    std::lock_guard lock(verdict_mutex);
    return std::make_pair(verdicts, *analysis);
  };

  const auto [golden_verdicts, golden_analysis] = run_replay(1, 1);
  ASSERT_EQ(golden_verdicts.size(), replay_job.nodes.size() * kWindowsPerNode);
  ASSERT_EQ(golden_analysis.nodes.size(), replay_job.nodes.size());

  // The unsharded batch oracle: one store holding the whole job, analyzed by
  // the plain AnalyticsService with identical preprocessing.
  deploy::DsosStore oracle_store;
  oracle_store.ingest(replay_job);
  const deploy::AnalyticsService oracle(oracle_store, bundle,
                                        stream::streaming_preprocess_defaults(),
                                        /*explain=*/false);
  const deploy::JobAnalysis oracle_analysis =
      oracle.analyze_job(replay_job.job_id);
  ASSERT_EQ(oracle_analysis.nodes.size(), golden_analysis.nodes.size());
  for (std::size_t i = 0; i < oracle_analysis.nodes.size(); ++i) {
    EXPECT_EQ(golden_analysis.nodes[i].component_id,
              oracle_analysis.nodes[i].component_id);
    EXPECT_EQ(golden_analysis.nodes[i].score, oracle_analysis.nodes[i].score);
    EXPECT_EQ(golden_analysis.nodes[i].threshold,
              oracle_analysis.nodes[i].threshold);
    EXPECT_EQ(golden_analysis.nodes[i].anomalous,
              oracle_analysis.nodes[i].anomalous);
  }

  for (const std::size_t shards : {2u, 4u, 8u}) {
    for (const std::size_t threads : {1u, 3u}) {
      SCOPED_TRACE(::testing::Message()
                   << shards << " shards, " << threads << " scorer threads");
      const auto [verdicts, analysis] = run_replay(shards, threads);
      ASSERT_EQ(verdicts.size(), golden_verdicts.size());
      for (const auto& [key, golden] : golden_verdicts) {
        const auto it = verdicts.find(key);
        ASSERT_NE(it, verdicts.end())
            << "node " << key.first << " window " << key.second;
        // EXPECT_EQ, not EXPECT_NEAR: sharding must not perturb one bit.
        EXPECT_EQ(it->second.score, golden.score);
        EXPECT_EQ(it->second.threshold, golden.threshold);
        EXPECT_EQ(it->second.anomalous, golden.anomalous);
        EXPECT_EQ(it->second.start_ts, golden.start_ts);
        EXPECT_EQ(it->second.end_ts, golden.end_ts);
      }
      ASSERT_EQ(analysis.nodes.size(), golden_analysis.nodes.size());
      for (std::size_t i = 0; i < analysis.nodes.size(); ++i) {
        EXPECT_EQ(analysis.nodes[i].component_id,
                  golden_analysis.nodes[i].component_id);
        EXPECT_EQ(analysis.nodes[i].score, golden_analysis.nodes[i].score);
        EXPECT_EQ(analysis.nodes[i].threshold,
                  golden_analysis.nodes[i].threshold);
        EXPECT_EQ(analysis.nodes[i].anomalous,
                  golden_analysis.nodes[i].anomalous);
      }
    }
  }
}

TEST_F(ServiceShardTest, StalledShardCatchesUpLosslessly) {
  const core::ModelBundle bundle = train_bundle();
  const auto replay_job = make_job(91, "LAMMPS", 6, 100);
  const auto batches = batches_from_job(replay_job);
  constexpr std::size_t kWindowsPerNode = 3;  // 100 rows, W=32, H=32

  stream::ShardFaultInjector faults(2);
  stream::ShardedServiceConfig config;
  config.shards = 2;
  config.scorer.window = 32;
  config.scorer.hop = 32;
  stream::ShardedAnalyticsService service(bundle, config, &faults);

  // Pick the shard owning the first node as the victim; with 6 nodes both
  // shards are expected to own some (asserted below).
  const std::size_t victim = service.shard_of_node(
      replay_job.nodes[0].job_id, replay_job.nodes[0].component_id);
  std::set<std::size_t> owners;
  for (const auto& node : replay_job.nodes) {
    owners.insert(service.shard_of_node(node.job_id, node.component_id));
  }
  ASSERT_EQ(owners.size(), 2u) << "replay job must span both shards";

  faults.stall(victim);
  EXPECT_TRUE(service.offer(batches[0]));
  faults.wait_until_stalled(victim);
  EXPECT_TRUE(faults.stalled(victim));
  EXPECT_EQ(service.shard_windows_scored(victim), 0u);

  for (std::size_t t = 1; t < batches.size(); ++t) {
    EXPECT_TRUE(service.offer(batches[t]));
  }
  // The frozen consumer popped batch 0 and parked; everything since is
  // queued behind it.
  EXPECT_EQ(service.shard_queue_depth(victim), batches.size() - 1);

  // Bounded staleness: release -> the shard drains its backlog completely.
  faults.release(victim);
  service.stop();

  const auto stats = service.stats();
  EXPECT_TRUE(stats.accounting_balances());
  EXPECT_EQ(stats.shed_samples, 0u);
  EXPECT_EQ(stats.totals.dropped_samples, 0u);
  EXPECT_EQ(stats.offered_samples, stats.totals.flushed_samples);
  EXPECT_EQ(service.windows_scored(),
            replay_job.nodes.size() * kWindowsPerNode);
  EXPECT_EQ(service.score_errors(), 0u);

  // Recovery is complete enough to serve the merged query for every node.
  const auto analysis = service.analyze_job(replay_job.job_id);
  ASSERT_TRUE(analysis.has_value());
  EXPECT_EQ(analysis->nodes.size(), replay_job.nodes.size());
}

TEST_F(ServiceShardTest, CrashedShardKeepsFleetAccountingBalanced) {
  const core::ModelBundle bundle = train_bundle();
  const auto replay_job = make_job(91, "LAMMPS", 6, 100);
  const auto batches = batches_from_job(replay_job);
  constexpr std::size_t kWindowsPerNode = 3;

  stream::ShardFaultInjector faults(2);
  stream::ShardedServiceConfig config;
  config.shards = 2;
  config.scorer.window = 32;
  config.scorer.hop = 32;
  stream::ShardedAnalyticsService service(bundle, config, &faults);

  const std::size_t victim = service.shard_of_node(
      replay_job.nodes[0].job_id, replay_job.nodes[0].component_id);
  const std::size_t survivor = 1 - victim;
  std::size_t survivor_nodes = 0;
  for (const auto& node : replay_job.nodes) {
    if (service.shard_of_node(node.job_id, node.component_id) == survivor) {
      ++survivor_nodes;
    }
  }
  ASSERT_GT(survivor_nodes, 0u);
  ASSERT_LT(survivor_nodes, replay_job.nodes.size());

  // Freeze the victim with a backlog, then kill it: the queued batches and
  // reordered-but-unflushed rows must land in `dropped`, not vanish.  Park
  // the consumer on batch 0's flush FIRST — offered any later, batches pile
  // up behind the frozen consumer instead of being drained into its pending
  // buffer, so the backlog is deterministic.
  faults.stall(victim);
  EXPECT_TRUE(service.offer(batches[0]));
  faults.wait_until_stalled(victim);
  for (std::size_t t = 1; t < 30; ++t) EXPECT_TRUE(service.offer(batches[t]));
  ASSERT_EQ(service.shard_queue_depth(victim), 29u);
  service.crash_shard(victim);
  EXPECT_FALSE(service.shard_alive(victim));
  EXPECT_TRUE(service.shard_alive(survivor));

  // Post-crash traffic: rows routed to the dead shard are shed by the
  // dispatcher (offer reports the loss), the survivor's rows still flow.
  for (std::size_t t = 30; t < batches.size(); ++t) {
    EXPECT_FALSE(service.offer(batches[t]));
  }
  service.stop();

  const auto stats = service.stats();
  EXPECT_TRUE(stats.accounting_balances())
      << "offered=" << stats.offered_samples << " shed=" << stats.shed_samples
      << " flushed=" << stats.totals.flushed_samples
      << " dropped=" << stats.totals.dropped_samples;
  EXPECT_GT(stats.shed_samples, 0u);             // dead-shard traffic
  EXPECT_GT(stats.totals.dropped_samples, 0u);   // the crashed backlog
  // The survivor personally lost nothing.
  EXPECT_EQ(stats.per_shard[survivor].dropped_samples, 0u);
  EXPECT_EQ(stats.per_shard[survivor].offered_samples,
            stats.per_shard[survivor].flushed_samples);

  // Every survivor-owned node scored its full window schedule; the victim
  // scored nothing (it was frozen from the first flush until the crash).
  EXPECT_EQ(service.shard_windows_scored(survivor),
            survivor_nodes * kWindowsPerNode);
  EXPECT_EQ(service.shard_windows_scored(victim), 0u);
  EXPECT_EQ(service.score_errors(), 0u);
}

TEST_F(ServiceShardTest, SlowShardDelaysButLosesNothing) {
  const core::ModelBundle bundle = train_bundle();
  const auto replay_job = make_job(92, "LAMMPS", 4, 80);
  const auto batches = batches_from_job(replay_job);
  constexpr std::size_t kWindowsPerNode = 2;  // 80 rows, W=32, H=32

  stream::ShardFaultInjector faults(2);
  stream::ShardedServiceConfig config;
  config.shards = 2;
  config.scorer.window = 32;
  config.scorer.hop = 32;
  stream::ShardedAnalyticsService service(bundle, config, &faults);

  faults.set_delay(0, std::chrono::microseconds(500));
  faults.set_delay(1, std::chrono::microseconds(200));
  for (const auto& batch : batches) EXPECT_TRUE(service.offer(batch));
  service.stop();

  const auto stats = service.stats();
  EXPECT_TRUE(stats.accounting_balances());
  EXPECT_EQ(stats.shed_samples, 0u);
  EXPECT_EQ(stats.totals.dropped_samples, 0u);
  EXPECT_EQ(stats.offered_samples, stats.totals.flushed_samples);
  EXPECT_EQ(service.windows_scored(),
            replay_job.nodes.size() * kWindowsPerNode);
}

TEST_F(ServiceShardTest, FleetAdmissionBudgetShedsDeterministically) {
  const core::ModelBundle bundle = train_bundle();
  const auto replay_job = make_job(93, "LAMMPS", 2, 50);
  const auto batches = batches_from_job(replay_job);
  const std::uint64_t rows_per_batch = batches[0].sample_count();

  stream::ShardFaultInjector faults(1);
  stream::ShardedServiceConfig config;
  config.shards = 1;
  config.scorer.window = 16;
  config.scorer.hop = 16;
  config.max_total_queued_batches = 2;
  stream::ShardedAnalyticsService service(bundle, config, &faults);

  // Freeze the only consumer: it pops batch 0 and parks, so the next two
  // offers occupy the whole fleet budget and the two after that are shed at
  // the dispatcher, before any per-shard policy runs.
  faults.stall(0);
  EXPECT_TRUE(service.offer(batches[0]));
  faults.wait_until_stalled(0);
  EXPECT_TRUE(service.offer(batches[1]));
  EXPECT_TRUE(service.offer(batches[2]));
  EXPECT_EQ(service.shard_queue_depth(0), 2u);
  EXPECT_FALSE(service.offer(batches[3]));
  EXPECT_FALSE(service.offer(batches[4]));
  EXPECT_EQ(service.stats().shed_samples, 2 * rows_per_batch);

  faults.release(0);
  service.stop();

  const auto stats = service.stats();
  EXPECT_TRUE(stats.accounting_balances());
  EXPECT_EQ(stats.offered_samples, 5 * rows_per_batch);
  EXPECT_EQ(stats.shed_samples, 2 * rows_per_batch);
  EXPECT_EQ(stats.totals.flushed_samples, 3 * rows_per_batch);
  EXPECT_EQ(stats.totals.dropped_samples, 0u);
}

TEST_F(ServiceShardTest, ReplayedTrafficLandsInDuplicateOrLateBuckets) {
  const core::ModelBundle bundle = train_bundle();
  const auto replay_job = make_job(94, "LAMMPS", 3, 60);
  const auto batches = batches_from_job(replay_job);
  std::uint64_t replay_samples = 0;
  for (const auto& batch : batches) replay_samples += batch.sample_count();

  stream::ShardedServiceConfig config;
  config.shards = 2;
  config.scorer.window = 32;
  config.scorer.hop = 32;
  stream::ShardedAnalyticsService service(bundle, config);

  // Offer the whole run twice: every second-pass sample must land in a
  // terminal bucket (duplicate while still pending, late once flushed) and
  // the ledger must still balance — an at-least-once upstream retry storm
  // must not corrupt fleet accounting.
  for (const auto& batch : batches) EXPECT_TRUE(service.offer(batch));
  for (const auto& batch : batches) EXPECT_TRUE(service.offer(batch));
  service.stop();

  const auto stats = service.stats();
  EXPECT_TRUE(stats.accounting_balances());
  EXPECT_EQ(stats.offered_samples, 2 * replay_samples);
  EXPECT_EQ(stats.totals.flushed_samples, replay_samples);
  EXPECT_EQ(stats.totals.duplicate_samples + stats.totals.late_samples,
            replay_samples);
  EXPECT_EQ(stats.totals.dropped_samples, 0u);
}

TEST_F(ServiceShardTest, QueryGateLedgerBalancesUnderConcurrency) {
  const core::ModelBundle bundle = train_bundle();
  const auto replay_job = make_job(95, "LAMMPS", 4, 60);
  const auto batches = batches_from_job(replay_job);

  auto load_store = [&](stream::ShardedAnalyticsService& service) {
    for (const auto& batch : batches) EXPECT_TRUE(service.offer(batch));
    service.stop();  // queries run against the populated shard stores
  };

  {  // Block admission: callers park, every query completes.
    stream::ShardedServiceConfig config;
    config.shards = 2;
    config.max_concurrent_queries = 1;
    config.query_admission = stream::BackpressurePolicy::Block;
    stream::ShardedAnalyticsService service(bundle, config);
    load_store(service);

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 4; ++i) {
          const auto analysis = service.analyze_job(replay_job.job_id);
          ASSERT_TRUE(analysis.has_value());
          EXPECT_EQ(analysis->nodes.size(), replay_job.nodes.size());
        }
      });
    }
    for (auto& thread : threads) thread.join();
    const auto stats = service.stats();
    EXPECT_EQ(stats.queries, 16u);
    EXPECT_EQ(stats.queries_shed, 0u);
  }

  {  // Shedding admission: overlapping callers may be rejected, but the
     // admitted + shed ledger always equals the calls made and every nullopt
     // corresponds to exactly one shed.
    stream::ShardedServiceConfig config;
    config.shards = 2;
    config.max_concurrent_queries = 1;
    config.query_admission = stream::BackpressurePolicy::DropNewest;
    stream::ShardedAnalyticsService service(bundle, config);
    load_store(service);

    std::atomic<std::uint64_t> rejected{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 8; ++i) {
          const auto analysis = service.analyze_job(replay_job.job_id);
          if (!analysis.has_value()) {
            rejected.fetch_add(1, std::memory_order_relaxed);
          } else {
            EXPECT_EQ(analysis->nodes.size(), replay_job.nodes.size());
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    const auto stats = service.stats();
    EXPECT_EQ(stats.queries + stats.queries_shed, 32u);
    EXPECT_EQ(stats.queries_shed, rejected.load());
  }
}

}  // namespace
