#include "pipeline/splits.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace prodigy::pipeline {
namespace {

std::vector<int> make_labels(std::size_t healthy, std::size_t anomalous) {
  std::vector<int> labels(healthy, 0);
  labels.insert(labels.end(), anomalous, 1);
  return labels;
}

std::pair<std::size_t, std::size_t> class_counts(const std::vector<int>& labels,
                                                 const std::vector<std::size_t>& idx) {
  std::size_t healthy = 0, anomalous = 0;
  for (const auto i : idx) (labels[i] != 0 ? anomalous : healthy) += 1;
  return {healthy, anomalous};
}

void expect_partition(const SplitIndices& split, std::size_t n) {
  std::set<std::size_t> seen;
  for (const auto i : split.train) EXPECT_TRUE(seen.insert(i).second);
  for (const auto i : split.test) EXPECT_TRUE(seen.insert(i).second);
  EXPECT_EQ(seen.size(), n);
}

TEST(StratifiedSplitTest, PreservesClassRatio) {
  const auto labels = make_labels(800, 200);
  const auto split = stratified_split(labels, 0.2, 1);
  expect_partition(split, labels.size());
  const auto [train_h, train_a] = class_counts(labels, split.train);
  EXPECT_EQ(train_h, 160u);
  EXPECT_EQ(train_a, 40u);
}

TEST(StratifiedSplitTest, InvalidFractionThrows) {
  const auto labels = make_labels(10, 10);
  EXPECT_THROW(stratified_split(labels, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(stratified_split(labels, 1.0, 1), std::invalid_argument);
}

TEST(StratifiedSplitTest, DifferentSeedsShuffleDifferently) {
  const auto labels = make_labels(100, 100);
  const auto a = stratified_split(labels, 0.5, 1);
  const auto b = stratified_split(labels, 0.5, 2);
  EXPECT_NE(a.train, b.train);
}

TEST(StratifiedSplitTest, SameSeedIsDeterministic) {
  const auto labels = make_labels(50, 50);
  const auto a = stratified_split(labels, 0.3, 7);
  const auto b = stratified_split(labels, 0.3, 7);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
}

TEST(ProdigySplitTest, ReproducesPaperRatios) {
  // Paper §5.4.2 (Eclipse): 24,566 samples, 6,325 healthy; 20-80 split with a
  // 10% training anomaly cap leaves the test side ~90% anomalous.
  const auto labels = make_labels(6325, 24566 - 6325);
  const auto split = prodigy_split(labels, 0.2, 0.10, 3);
  expect_partition(split, labels.size());

  const auto [train_h, train_a] = class_counts(labels, split.train);
  const double train_ratio =
      static_cast<double>(train_a) / static_cast<double>(train_a + train_h);
  EXPECT_NEAR(train_ratio, 0.10, 0.005);

  const auto [test_h, test_a] = class_counts(labels, split.test);
  const double test_ratio =
      static_cast<double>(test_a) / static_cast<double>(test_a + test_h);
  EXPECT_NEAR(test_ratio, 0.90, 0.02);
}

TEST(ProdigySplitTest, VoltaLikeDataKeepsNativeRatio) {
  // Volta: 20,915 samples, 18,980 healthy (~9.3% anomalous) — already under
  // the 10% cap, so nothing moves.
  const auto labels = make_labels(18980, 20915 - 18980);
  const auto split = prodigy_split(labels, 0.2, 0.10, 5);
  const auto [train_h, train_a] = class_counts(labels, split.train);
  const double train_ratio =
      static_cast<double>(train_a) / static_cast<double>(train_a + train_h);
  EXPECT_NEAR(train_ratio, 0.093, 0.01);
  EXPECT_NEAR(static_cast<double>(split.train.size()),
              0.2 * static_cast<double>(labels.size()), 10.0);
}

class KFoldTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KFoldTest, FoldsPartitionTheData) {
  const std::size_t k = GetParam();
  const auto labels = make_labels(90, 30);
  const auto folds = stratified_kfold(labels, k, 11);
  ASSERT_EQ(folds.size(), k);

  // Every sample appears in exactly one test fold.
  std::vector<std::size_t> test_count(labels.size(), 0);
  for (const auto& fold : folds) {
    expect_partition(fold, labels.size());
    for (const auto i : fold.test) ++test_count[i];
  }
  for (const auto count : test_count) EXPECT_EQ(count, 1u);
}

TEST_P(KFoldTest, FoldsAreStratified) {
  const std::size_t k = GetParam();
  const auto labels = make_labels(400, 100);
  const auto folds = stratified_kfold(labels, k, 13);
  for (const auto& fold : folds) {
    const auto [h, a] = class_counts(labels, fold.test);
    const double ratio = static_cast<double>(a) / static_cast<double>(a + h);
    EXPECT_NEAR(ratio, 0.2, 0.03);
  }
}

INSTANTIATE_TEST_SUITE_P(VariousK, KFoldTest, ::testing::Values(2, 3, 5, 10));

TEST(KFoldTest, RejectsSingleFold) {
  EXPECT_THROW(stratified_kfold(make_labels(10, 10), 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace prodigy::pipeline
