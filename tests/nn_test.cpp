#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

namespace prodigy::nn {
namespace {

using tensor::Matrix;

TEST(ActivationTest, ReluClampsNegatives) {
  Matrix m{{-1.0, 0.0, 2.0}};
  apply_activation(Activation::ReLU, m);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 2.0);
}

TEST(ActivationTest, SigmoidValues) {
  Matrix m{{0.0, 100.0, -100.0}};
  apply_activation(Activation::Sigmoid, m);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.5);
  EXPECT_NEAR(m(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(m(0, 2), 0.0, 1e-12);
}

TEST(ActivationTest, TanhValues) {
  Matrix m{{0.0, 1.0}};
  apply_activation(Activation::Tanh, m);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_NEAR(m(0, 1), std::tanh(1.0), 1e-12);
}

TEST(ActivationTest, GradientFromPostActivation) {
  // sigmoid'(x) = s(1-s); at x=0, s=0.5 -> 0.25.
  Matrix activated{{0.5}};
  Matrix grad{{1.0}};
  apply_activation_gradient(Activation::Sigmoid, activated, grad);
  EXPECT_DOUBLE_EQ(grad(0, 0), 0.25);

  Matrix tanh_act{{std::tanh(1.0)}};
  Matrix tanh_grad{{1.0}};
  apply_activation_gradient(Activation::Tanh, tanh_act, tanh_grad);
  EXPECT_NEAR(tanh_grad(0, 0), 1.0 - std::tanh(1.0) * std::tanh(1.0), 1e-12);
}

TEST(ActivationTest, StringRoundTrip) {
  for (const auto act : {Activation::Linear, Activation::ReLU, Activation::Tanh,
                         Activation::Sigmoid}) {
    EXPECT_EQ(activation_from_string(to_string(act)), act);
  }
  EXPECT_THROW(activation_from_string("swish"), std::invalid_argument);
}

TEST(LossTest, MseValueAndGradient) {
  const Matrix pred{{1.0, 2.0}};
  const Matrix target{{0.0, 4.0}};
  const LossResult loss = mse_loss(pred, target);
  EXPECT_DOUBLE_EQ(loss.value, (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(loss.grad(0, 0), 2.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(loss.grad(0, 1), 2.0 * -2.0 / 2.0);
}

TEST(LossTest, MaeValueAndGradient) {
  const Matrix pred{{1.0, 2.0, 3.0}};
  const Matrix target{{0.0, 2.0, 5.0}};
  const LossResult loss = mae_loss(pred, target);
  EXPECT_DOUBLE_EQ(loss.value, (1.0 + 0.0 + 2.0) / 3.0);
  EXPECT_DOUBLE_EQ(loss.grad(0, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(loss.grad(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(loss.grad(0, 2), -1.0 / 3.0);
}

TEST(LossTest, KlOfStandardNormalIsZero) {
  const Matrix mu(2, 3, 0.0);
  const Matrix logvar(2, 3, 0.0);
  const KlResult kl = gaussian_kl(mu, logvar);
  EXPECT_NEAR(kl.value, 0.0, 1e-12);
  for (std::size_t i = 0; i < kl.grad_mu.size(); ++i) {
    EXPECT_NEAR(kl.grad_mu.data()[i], 0.0, 1e-12);
    EXPECT_NEAR(kl.grad_logvar.data()[i], 0.0, 1e-12);
  }
}

TEST(LossTest, KlPositiveAwayFromPrior) {
  const Matrix mu(1, 2, 2.0);
  const Matrix logvar(1, 2, 1.0);
  EXPECT_GT(gaussian_kl(mu, logvar).value, 0.0);
}

TEST(LossTest, KlGradientMatchesNumerical) {
  Matrix mu{{0.3, -0.7}};
  Matrix logvar{{0.2, -0.4}};
  const KlResult kl = gaussian_kl(mu, logvar);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    Matrix mu_p = mu;
    mu_p.data()[i] += eps;
    Matrix mu_m = mu;
    mu_m.data()[i] -= eps;
    const double numeric =
        (gaussian_kl(mu_p, logvar).value - gaussian_kl(mu_m, logvar).value) / (2 * eps);
    EXPECT_NEAR(kl.grad_mu.data()[i], numeric, 1e-5);

    Matrix lv_p = logvar;
    lv_p.data()[i] += eps;
    Matrix lv_m = logvar;
    lv_m.data()[i] -= eps;
    const double numeric_lv =
        (gaussian_kl(mu, lv_p).value - gaussian_kl(mu, lv_m).value) / (2 * eps);
    EXPECT_NEAR(kl.grad_logvar.data()[i], numeric_lv, 1e-5);
  }
}

TEST(DenseTest, ForwardLinearAlgebra) {
  util::Rng rng(1);
  Dense layer(2, 1, Activation::Linear, rng);
  layer.weights()(0, 0) = 2.0;
  layer.weights()(1, 0) = -1.0;
  layer.bias()[0] = 0.5;
  const Matrix out = layer.forward(Matrix{{3.0, 4.0}});
  EXPECT_DOUBLE_EQ(out(0, 0), 3.0 * 2.0 + 4.0 * -1.0 + 0.5);
}

TEST(DenseTest, NumericalGradientCheck) {
  util::Rng rng(2);
  Dense layer(3, 2, Activation::Tanh, rng);
  const Matrix x{{0.2, -0.5, 0.8}, {-0.1, 0.4, 0.3}};
  const Matrix target(2, 2, 0.7);

  layer.zero_gradients();
  const Matrix out = layer.forward(x);
  const LossResult loss = mse_loss(out, target);
  layer.backward(loss.grad);

  const double eps = 1e-6;
  auto loss_at = [&](Dense& l) {
    return mse_loss(l.forward_inference(x), target).value;
  };
  // Check a handful of weight gradients numerically.
  for (const auto [r, c] : {std::pair<std::size_t, std::size_t>{0, 0}, {1, 1}, {2, 0}}) {
    Dense probe = layer;
    probe.weights()(r, c) += eps;
    const double up = loss_at(probe);
    probe.weights()(r, c) -= 2 * eps;
    const double down = loss_at(probe);
    EXPECT_NEAR(layer.weight_grad()(r, c), (up - down) / (2 * eps), 1e-5);
  }
  // And a bias gradient.
  Dense probe = layer;
  probe.bias()[1] += eps;
  const double up = loss_at(probe);
  probe.bias()[1] -= 2 * eps;
  const double down = loss_at(probe);
  EXPECT_NEAR(layer.bias_grad()[1], (up - down) / (2 * eps), 1e-5);
}

TEST(DenseTest, InputGradientCheck) {
  util::Rng rng(3);
  Dense layer(2, 2, Activation::Sigmoid, rng);
  Matrix x{{0.3, -0.6}};
  const Matrix target(1, 2, 0.2);

  layer.zero_gradients();
  const LossResult loss = mse_loss(layer.forward(x), target);
  const Matrix grad_in = layer.backward(loss.grad);

  const double eps = 1e-6;
  for (std::size_t c = 0; c < 2; ++c) {
    Matrix xp = x;
    xp(0, c) += eps;
    Matrix xm = x;
    xm(0, c) -= eps;
    const double numeric = (mse_loss(layer.forward_inference(xp), target).value -
                            mse_loss(layer.forward_inference(xm), target).value) /
                           (2 * eps);
    EXPECT_NEAR(grad_in(0, c), numeric, 1e-5);
  }
}

TEST(DenseTest, SaveLoadRoundTrip) {
  util::Rng rng(4);
  Dense layer(3, 2, Activation::ReLU, rng);
  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_dense_test.bin").string();
  {
    util::BinaryWriter writer(path);
    layer.save(writer);
  }
  util::BinaryReader reader(path);
  const Dense loaded = Dense::load(reader);
  std::remove(path.c_str());

  const Matrix x{{0.1, 0.2, 0.3}};
  const Matrix a = layer.forward_inference(x);
  const Matrix b = loaded.forward_inference(x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
}

TEST(MlpTest, ShapesAndParameterCount) {
  util::Rng rng(5);
  const Mlp mlp(4, {{8, Activation::ReLU}, {2, Activation::Linear}}, rng);
  EXPECT_EQ(mlp.input_dim(), 4u);
  EXPECT_EQ(mlp.output_dim(), 2u);
  EXPECT_EQ(mlp.layer_count(), 2u);
  EXPECT_EQ(mlp.parameter_count(), (4 * 8 + 8) + (8 * 2 + 2));
}

TEST(MlpTest, InvalidSpecsThrow) {
  util::Rng rng(6);
  EXPECT_THROW(Mlp(0, {{4, Activation::ReLU}}, rng), std::invalid_argument);
  EXPECT_THROW(Mlp(4, {{0, Activation::ReLU}}, rng), std::invalid_argument);
}

TEST(MlpTest, EndToEndGradientCheck) {
  util::Rng rng(7);
  Mlp mlp(3, {{5, Activation::Tanh}, {3, Activation::Linear}}, rng);
  const Matrix x{{0.5, -0.2, 0.1}, {0.3, 0.8, -0.4}};
  const Matrix target(2, 3, 0.25);

  mlp.zero_gradients();
  const LossResult loss = mse_loss(mlp.forward(x), target);
  mlp.backward(loss.grad);

  const double eps = 1e-6;
  Mlp probe = mlp;
  auto loss_at = [&] { return mse_loss(probe.forward_inference(x), target).value; };
  // Check first-layer and last-layer weights.
  for (std::size_t layer_id : {std::size_t{0}, std::size_t{1}}) {
    probe = mlp;
    probe.layer(layer_id).weights()(0, 0) += eps;
    const double up = loss_at();
    probe.layer(layer_id).weights()(0, 0) -= 2 * eps;
    const double down = loss_at();
    EXPECT_NEAR(mlp.layer(layer_id).weight_grad()(0, 0), (up - down) / (2 * eps), 1e-5)
        << "layer " << layer_id;
  }
}

TEST(MlpTest, SaveLoadRoundTrip) {
  util::Rng rng(8);
  const Mlp mlp(3, {{4, Activation::ReLU}, {3, Activation::Linear}}, rng);
  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_mlp_test.bin").string();
  {
    util::BinaryWriter writer(path);
    mlp.save(writer);
  }
  util::BinaryReader reader(path);
  const Mlp loaded = Mlp::load(reader);
  std::remove(path.c_str());

  const Matrix x{{0.4, 0.5, 0.6}};
  const Matrix a = mlp.forward_inference(x);
  const Matrix b = loaded.forward_inference(x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
}

TEST(MlpTest, ForwardInferenceIntoRejectsAliasedBuffers) {
  util::Rng rng(9);
  const Mlp mlp(3, {{4, Activation::ReLU}, {3, Activation::Linear}}, rng);
  Matrix x{{0.4, 0.5, 0.6}};
  // The kernels stream into `out` while the last layer still reads it; an
  // aliased call would silently corrupt the result, so it must throw.
  EXPECT_THROW(mlp.forward_inference_into(x, x), std::invalid_argument);
  // Non-aliased calls are unaffected.
  Matrix out;
  mlp.forward_inference_into(x, out);
  EXPECT_EQ(out.cols(), 3u);
}

TEST(MlpTest, LoadRejectsBrokenLayerChain) {
  util::Rng rng(10);
  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_mlp_corrupt.bin")
          .string();
  {
    // Hand-assemble a stream in Mlp::save's format whose second layer does
    // not chain: 4 -> 5 followed by 7 -> 3.
    util::BinaryWriter writer(path);
    writer.write_u64(4);
    writer.write_u64(2);
    Dense(4, 5, Activation::ReLU, rng).save(writer);
    Dense(7, 3, Activation::Linear, rng).save(writer);
  }
  util::BinaryReader reader(path);
  try {
    Mlp::load(reader);
    FAIL() << "Mlp::load accepted a broken layer chain";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("does not chain"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(MlpTest, LoadRejectsZeroInputDim) {
  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_mlp_zero.bin").string();
  {
    util::BinaryWriter writer(path);
    writer.write_u64(0);  // input_dim
    writer.write_u64(0);  // layer count
  }
  util::BinaryReader reader(path);
  EXPECT_THROW(Mlp::load(reader), std::runtime_error);
  std::remove(path.c_str());
}

TEST(DenseTest, LoadRejectsZeroSizedLayer) {
  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_dense_zero.bin")
          .string();
  {
    util::BinaryWriter writer(path);
    writer.write_u64(0);  // in
    writer.write_u64(2);  // out
    writer.write_string("relu");
  }
  util::BinaryReader reader(path);
  EXPECT_THROW(Dense::load(reader), std::runtime_error);
  std::remove(path.c_str());
}

TEST(OptimizerTest, SgdStepDirection) {
  std::vector<double> param{1.0};
  std::vector<double> grad{2.0};
  Sgd sgd(0.1);
  sgd.register_parameters({param.data(), grad.data(), 1});
  sgd.step();
  EXPECT_DOUBLE_EQ(param[0], 1.0 - 0.1 * 2.0);
}

TEST(OptimizerTest, SgdMomentumAccumulates) {
  std::vector<double> param{0.0};
  std::vector<double> grad{1.0};
  Sgd sgd(0.1, 0.9);
  sgd.register_parameters({param.data(), grad.data(), 1});
  sgd.step();  // v = -0.1, param = -0.1
  sgd.step();  // v = -0.19, param = -0.29
  EXPECT_NEAR(param[0], -0.29, 1e-12);
}

TEST(OptimizerTest, AdamFirstStepIsLearningRateSized) {
  std::vector<double> param{1.0};
  std::vector<double> grad{0.5};
  Adam adam(0.01);
  adam.register_parameters({param.data(), grad.data(), 1});
  adam.step();
  // Bias-corrected first Adam step has magnitude ~lr regardless of |grad|.
  EXPECT_NEAR(param[0], 1.0 - 0.01, 1e-6);
}

TEST(OptimizerTest, AdamMinimizesQuadratic) {
  std::vector<double> param{5.0};
  std::vector<double> grad{0.0};
  Adam adam(0.1);
  adam.register_parameters({param.data(), grad.data(), 1});
  for (int i = 0; i < 500; ++i) {
    grad[0] = 2.0 * param[0];  // d/dx x^2
    adam.step();
  }
  EXPECT_NEAR(param[0], 0.0, 1e-2);
}

TEST(TrainerTest, MakeBatchesPartitionsAllIndices) {
  util::Rng rng(9);
  const auto batches = make_batches(103, 32, rng);
  EXPECT_EQ(batches.size(), 4u);
  std::vector<bool> seen(103, false);
  for (const auto& batch : batches) {
    for (const auto i : batch) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(TrainerTest, EarlyStoppingTriggersAfterPatience) {
  EarlyStopping stopper(2);
  EXPECT_FALSE(stopper.update(1.0));
  EXPECT_FALSE(stopper.update(0.9));   // improved
  EXPECT_FALSE(stopper.update(0.95));  // 1 without improvement
  EXPECT_TRUE(stopper.update(0.99));   // 2 without improvement
  EXPECT_DOUBLE_EQ(stopper.best(), 0.9);
}

TEST(TrainerTest, EarlyStoppingDisabledNeverStops) {
  EarlyStopping stopper(0);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(stopper.update(1.0 + i));
}

TEST(TrainerTest, AutoencoderLearnsLowRankData) {
  // Data on a 1-D manifold embedded in 4-D: x = [t, 2t, -t, 0.5t].
  util::Rng rng(10);
  Matrix data(64, 4);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const double t = rng.uniform(-1.0, 1.0);
    data(r, 0) = t;
    data(r, 1) = 2 * t;
    data(r, 2) = -t;
    data(r, 3) = 0.5 * t;
  }
  Mlp autoencoder(4, {{8, Activation::Tanh}, {1, Activation::Linear},
                      {8, Activation::Tanh}, {4, Activation::Linear}}, rng);
  TrainOptions options;
  options.epochs = 300;
  options.batch_size = 16;
  options.learning_rate = 5e-3;
  const TrainHistory history = fit_reconstruction(autoencoder, data, options);
  ASSERT_FALSE(history.train_loss.empty());
  EXPECT_LT(history.train_loss.back(), history.train_loss.front() * 0.1);
  EXPECT_LT(history.train_loss.back(), 0.02);
}

TEST(TrainerTest, ValidationSplitAndEarlyStoppingRecorded) {
  util::Rng rng(11);
  Matrix data(40, 3);
  for (std::size_t i = 0; i < data.size(); ++i) data.data()[i] = rng.gaussian();
  Mlp model(3, {{4, Activation::ReLU}, {3, Activation::Linear}}, rng);
  TrainOptions options;
  options.epochs = 50;
  options.validation_split = 0.25;
  options.early_stopping_patience = 3;
  const TrainHistory history = fit_reconstruction(model, data, options);
  EXPECT_EQ(history.validation_loss.size(), history.epochs_run);
  EXPECT_LE(history.epochs_run, 50u);
}

}  // namespace
}  // namespace prodigy::nn
