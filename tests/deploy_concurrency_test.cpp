// Concurrency/stress layer for the deployment path: shared-read DsosStore
// under writer pressure, the parallel analyze_job fan-out, and the
// generation-keyed result cache.  Every test here is meant to run clean
// under -fsanitize=thread (see the CI tsan job).
#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "telemetry/metrics.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <latch>
#include <thread>
#include <vector>

namespace prodigy::deploy {
namespace {

telemetry::JobTelemetry make_job(std::int64_t job_id, const std::string& app,
                                 std::size_t nodes, double duration,
                                 hpas::AnomalySpec anomaly = hpas::healthy_spec(),
                                 std::vector<std::size_t> anomalous_nodes = {},
                                 std::uint64_t seed = 0) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name(app);
  config.job_id = job_id;
  config.num_nodes = nodes;
  config.duration_s = duration;
  config.seed = seed == 0 ? static_cast<std::uint64_t>(job_id) : seed;
  config.anomaly = anomaly;
  config.anomalous_nodes = std::move(anomalous_nodes);
  config.first_component_id = job_id * 100;
  return telemetry::generate_run(config);
}

/// A node series whose every reading equals `version` — a torn read (data
/// mixed from two ingests) is then detectable as a non-constant matrix.
telemetry::NodeSeries constant_node(std::int64_t job_id, std::int64_t component_id,
                                    double version) {
  telemetry::NodeSeries node;
  node.job_id = job_id;
  node.component_id = component_id;
  node.app = "stress";
  node.values = tensor::Matrix(32, 8, version);
  return node;
}

TEST(DsosConcurrencyTest, NoTornReadsUnderConcurrentReingest) {
  DsosStore store;
  constexpr std::int64_t kJob = 1;
  constexpr int kComponents = 3;
  constexpr int kVersions = 60;
  for (int c = 0; c < kComponents; ++c) {
    store.ingest_node(constant_node(kJob, c, 0.0));
  }

  // Start gate instead of wall-clock timing: writers hold until every reader
  // is live, and each reader completes at least one full iteration before
  // honoring stop — so the overlap (and reads > 0) is guaranteed even on a
  // one-core host where writers could otherwise finish before any reader ran.
  constexpr int kReaders = 4;
  std::latch readers_live(kReaders);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&store, &readers_live, w] {
      readers_live.wait();
      for (int v = 1; v <= kVersions; ++v) {
        telemetry::JobTelemetry job;
        job.job_id = kJob;
        job.app = "stress";
        for (int c = 0; c < kComponents; ++c) {
          job.nodes.push_back(constant_node(kJob, c, w * 1000.0 + v));
        }
        store.ingest(job);
      }
    });
  }

  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      readers_live.count_down();
      do {
        const auto job = store.query_job(kJob);
        for (const auto& node : job.nodes) {
          const double first = node.values(0, 0);
          for (const double value : node.values.storage()) {
            ASSERT_EQ(value, first) << "torn read: mixed ingest versions";
          }
        }
        const auto single = store.query_node(kJob, 0);
        const double first = single.values(0, 0);
        for (const double value : single.values.storage()) {
          ASSERT_EQ(value, first) << "torn read in query_node";
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      } while (!stop.load(std::memory_order_acquire));
    });
  }

  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);
  // 3 seed ingest_node calls + 2 writers x kVersions job ingests.
  EXPECT_EQ(store.generation(), 3u + 2u * kVersions);
}

TEST(DsosConcurrencyTest, GenerationIsMonotonicPerJob) {
  DsosStore store;
  store.ingest(make_job(1, "LAMMPS", 2, 16));
  const auto g1 = store.job_generation(1);
  EXPECT_GT(g1, 0u);
  EXPECT_EQ(store.job_generation(999), 0u);  // unknown job

  store.ingest(make_job(2, "sw4", 2, 16));
  EXPECT_EQ(store.job_generation(1), g1);  // untouched job keeps its stamp
  store.ingest(make_job(1, "LAMMPS", 2, 16, hpas::healthy_spec(), {}, 777));
  EXPECT_GT(store.job_generation(1), store.job_generation(2));

  std::uint64_t snapshot_gen = 0;
  const auto job = store.query_job(1, &snapshot_gen);
  EXPECT_EQ(snapshot_gen, store.job_generation(1));
  EXPECT_EQ(job.nodes.size(), 2u);
}

// Regression: the move constructor used to read other.nodes_ without taking
// other.mutex_, racing with concurrent ingest into the source store.
TEST(DsosConcurrencyTest, MoveConstructorLocksSourceStore) {
  DsosStore source;
  source.ingest(make_job(1, "LAMMPS", 2, 16));
  source.ingest(make_job(2, "sw4", 2, 16));

  std::thread writer([&source] {
    for (int i = 0; i < 50; ++i) {
      source.ingest_node(constant_node(3, i, static_cast<double>(i)));
    }
  });
  const DsosStore moved(std::move(source));
  writer.join();

  // The move happened at some point in the writer's stream: the destination
  // holds a consistent prefix (at least the two seed jobs), and the
  // moved-from store keeps absorbing writes without crashing.
  EXPECT_GE(moved.job_count(), 2u);
  EXPECT_TRUE(moved.has_job(1));
  EXPECT_EQ(moved.query_job(2).app, "sw4");
  EXPECT_NO_THROW(source.job_count());
}

class ServiceConcurrencyTest : public ::testing::Test {
 protected:
  ServiceConcurrencyTest() {
    std::int64_t job = 1;
    for (int i = 0; i < 4; ++i) {
      store_.ingest(make_job(job, "LAMMPS", 3, 100));
      train_jobs_.push_back(job++);
    }
    const auto memleak = hpas::table2_configurations().back();
    for (int i = 0; i < 2; ++i) {
      store_.ingest(make_job(job, "LAMMPS", 3, 100, memleak));
      train_jobs_.push_back(job++);
    }
    store_.ingest(make_job(50, "LAMMPS", 3, 100, memleak, {1}));
    store_.ingest(make_job(51, "LAMMPS", 3, 100));
    store_.ingest(make_job(52, "LAMMPS", 3, 100, memleak, {0, 2}));
  }

  TrainFromStoreOptions fast_options() {
    TrainFromStoreOptions options;
    options.preprocess.trim_seconds = 20;
    options.top_k_features = 48;
    options.model.vae.encoder_hidden = {16, 6};
    options.model.vae.latent_dim = 2;
    options.model.train.epochs = 60;
    options.model.train.batch_size = 16;
    options.model.train.learning_rate = 2e-3;
    options.model.train.validation_split = 0.0;
    options.model.train.early_stopping_patience = 0;
    options.explanations =
        comte::ComteConfig{/*max_metrics=*/4, /*distractor_candidates=*/3,
                           /*restarts=*/2};
    return options;
  }

  DsosStore store_;
  std::vector<std::int64_t> train_jobs_;
};

// Tentpole guarantee: analyze_job is bit-identical no matter how many pool
// workers fan out the per-node work — node order, scores, verdicts, and
// CoMTE explanation contents all match.
TEST_F(ServiceConcurrencyTest, GoldenDeterminismAcrossConcurrency) {
  AnalyticsService service = AnalyticsService::train_from_store(
      store_, train_jobs_, fast_options(), /*explain=*/true);
  service.set_cache_capacity(0);  // force both runs through the full path

  util::ThreadPool pool1(1), pool8(8);
  service.set_thread_pool(&pool1);
  const JobAnalysis serial = service.analyze_job(50);
  service.set_thread_pool(&pool8);
  const JobAnalysis parallel = service.analyze_job(50);

  ASSERT_EQ(serial.nodes.size(), parallel.nodes.size());
  EXPECT_EQ(serial.store_generation, parallel.store_generation);
  for (std::size_t i = 0; i < serial.nodes.size(); ++i) {
    const NodeVerdict& a = serial.nodes[i];
    const NodeVerdict& b = parallel.nodes[i];
    EXPECT_EQ(a.component_id, b.component_id);
    EXPECT_EQ(a.anomalous, b.anomalous);
    EXPECT_EQ(a.score, b.score) << "score differs at node " << i;  // bit-exact
    EXPECT_EQ(a.threshold, b.threshold);
    ASSERT_EQ(a.explanation.has_value(), b.explanation.has_value());
    if (a.explanation) {
      EXPECT_EQ(a.explanation->success, b.explanation->success);
      EXPECT_EQ(a.explanation->distractor_row, b.explanation->distractor_row);
      EXPECT_EQ(a.explanation->original_probability,
                b.explanation->original_probability);
      EXPECT_EQ(a.explanation->final_probability, b.explanation->final_probability);
      ASSERT_EQ(a.explanation->changes.size(), b.explanation->changes.size());
      for (std::size_t c = 0; c < a.explanation->changes.size(); ++c) {
        EXPECT_EQ(a.explanation->changes[c].metric,
                  b.explanation->changes[c].metric);
        EXPECT_EQ(a.explanation->changes[c].mean_delta,
                  b.explanation->changes[c].mean_delta);
      }
    }
  }
}

TEST_F(ServiceConcurrencyTest, CacheHitServesIdenticalAnalysis) {
  const AnalyticsService service = AnalyticsService::train_from_store(
      store_, train_jobs_, fast_options(), /*explain=*/false);
  auto& hits =
      util::MetricsRegistry::global().counter("prodigy_deploy_cache_hits_total");
  const auto hits_before = hits.value();

  const JobAnalysis cold = service.analyze_job(50);
  EXPECT_FALSE(cold.from_cache);
  const JobAnalysis warm = service.analyze_job(50);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_GE(hits.value(), hits_before + 1);

  EXPECT_EQ(warm.store_generation, cold.store_generation);
  ASSERT_EQ(warm.nodes.size(), cold.nodes.size());
  for (std::size_t i = 0; i < cold.nodes.size(); ++i) {
    EXPECT_EQ(warm.nodes[i].score, cold.nodes[i].score);
    EXPECT_EQ(warm.nodes[i].anomalous, cold.nodes[i].anomalous);
  }
}

TEST_F(ServiceConcurrencyTest, ReingestInvalidatesCachedAnalysis) {
  const AnalyticsService service = AnalyticsService::train_from_store(
      store_, train_jobs_, fast_options(), /*explain=*/false);

  const JobAnalysis before = service.analyze_job(50);
  EXPECT_TRUE(service.analyze_job(50).from_cache);

  // Re-ingest the job with a different seed: new generation, new telemetry.
  const auto memleak = hpas::table2_configurations().back();
  store_.ingest(make_job(50, "LAMMPS", 3, 100, memleak, {1}, 4242));

  const JobAnalysis after = service.analyze_job(50);
  EXPECT_FALSE(after.from_cache) << "cache served a stale generation";
  EXPECT_GT(after.store_generation, before.store_generation);
  EXPECT_EQ(after.store_generation, store_.job_generation(50));
}

TEST_F(ServiceConcurrencyTest, CacheStaysBoundedAndCountsEvictions) {
  AnalyticsService service = AnalyticsService::train_from_store(
      store_, train_jobs_, fast_options(), /*explain=*/false);
  service.set_cache_capacity(2);
  auto& evictions = util::MetricsRegistry::global().counter(
      "prodigy_deploy_cache_evictions_total");
  const auto evictions_before = evictions.value();

  for (const std::int64_t job : {50, 51, 52}) (void)service.analyze_job(job);
  EXPECT_LE(service.cached_analyses(), 2u);
  EXPECT_GE(evictions.value(), evictions_before + 1);

  // Least-recently-used (job 50) was evicted; 52 is still cached.
  EXPECT_TRUE(service.analyze_job(52).from_cache);
  EXPECT_FALSE(service.analyze_job(50).from_cache);
}

// The headline stress test: writers re-ingest jobs while readers run
// analyze_job and query_node.  Asserts no torn reads (analysis is always a
// complete, finite verdict set) and that the cache never serves an analysis
// older than the generation observed before the request.
TEST_F(ServiceConcurrencyTest, ConcurrentReadersAndWritersStayConsistent) {
  AnalyticsService service = AnalyticsService::train_from_store(
      store_, train_jobs_, fast_options(), /*explain=*/false);
  const auto memleak = hpas::table2_configurations().back();

  // Same start-gate discipline as NoTornReadsUnderConcurrentReingest: the
  // readers' do-while guarantees analyses > 0 without wall-clock assumptions.
  constexpr int kWriterRounds = 6;
  constexpr int kReaders = 3;
  std::latch readers_live(kReaders);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      readers_live.wait();
      for (int round = 1; round <= kWriterRounds; ++round) {
        const auto seed = static_cast<std::uint64_t>(1000 + w * 100 + round);
        store_.ingest(make_job(50, "LAMMPS", 3, 100, memleak, {1}, seed));
        store_.ingest(make_job(51, "LAMMPS", 3, 100, hpas::healthy_spec(), {}, seed));
      }
    });
  }

  std::atomic<std::uint64_t> analyses{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      readers_live.count_down();
      do {
        for (const std::int64_t job : {50LL, 51LL}) {
          const std::uint64_t gen_before = store_.job_generation(job);
          const JobAnalysis analysis = service.analyze_job(job);
          ASSERT_EQ(analysis.nodes.size(), 3u);
          for (const auto& node : analysis.nodes) {
            ASSERT_TRUE(std::isfinite(node.score));
          }
          // Never stale: the served analysis is at least as new as the
          // generation this reader observed before asking.
          ASSERT_GE(analysis.store_generation, gen_before);
          (void)store_.query_node(job, analysis.nodes.front().component_id);
        }
        analyses.fetch_add(1, std::memory_order_relaxed);
      } while (!stop.load(std::memory_order_acquire));
    });
  }

  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_GT(analyses.load(), 0u);

  // After the dust settles, the concurrent answer (possibly a cache hit)
  // must match a serial, cache-less reference on the final telemetry.
  const JobAnalysis final_analysis = service.analyze_job(50);
  EXPECT_EQ(final_analysis.store_generation, store_.job_generation(50));

  util::ThreadPool pool1(1);
  service.set_thread_pool(&pool1);
  service.set_cache_capacity(0);
  const JobAnalysis reference = service.analyze_job(50);
  ASSERT_EQ(final_analysis.nodes.size(), reference.nodes.size());
  for (std::size_t i = 0; i < reference.nodes.size(); ++i) {
    EXPECT_EQ(final_analysis.nodes[i].component_id,
              reference.nodes[i].component_id);
    EXPECT_EQ(final_analysis.nodes[i].score, reference.nodes[i].score);
    EXPECT_EQ(final_analysis.nodes[i].anomalous, reference.nodes[i].anomalous);
  }
}

}  // namespace
}  // namespace prodigy::deploy
