// End-to-end online scoring: the streaming path (ingestor -> sliding windows
// -> OnlineScorer -> EventBus) must emit exactly the verdicts the batch
// AnalyticsService computes for the equivalent windows — same model, same
// preprocessing, bit-identical scores.
#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "stream/event_bus.hpp"
#include "stream/ingestor.hpp"
#include "stream/online_scorer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <mutex>
#include <vector>

namespace {

using namespace prodigy;

telemetry::JobTelemetry make_job(std::int64_t job_id, const std::string& app,
                                 std::size_t nodes, double duration,
                                 hpas::AnomalySpec anomaly = hpas::healthy_spec(),
                                 std::vector<std::size_t> anomalous_nodes = {}) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name(app);
  config.job_id = job_id;
  config.num_nodes = nodes;
  config.duration_s = duration;
  config.seed = static_cast<std::uint64_t>(job_id);
  config.anomaly = std::move(anomaly);
  config.anomalous_nodes = std::move(anomalous_nodes);
  config.first_component_id = job_id * 100;
  return telemetry::generate_run(config);
}

/// One frame per tick, rows for every node (the replay-tool shape).
std::vector<stream::SampleBatch> batches_from_job(const telemetry::JobTelemetry& job) {
  std::size_t ticks = 0;
  for (const auto& node : job.nodes) ticks = std::max(ticks, node.values.rows());
  std::vector<stream::SampleBatch> batches;
  for (std::size_t t = 0; t < ticks; ++t) {
    stream::SampleBatch batch;
    batch.sequence = t;
    for (const auto& node : job.nodes) {
      if (t >= node.values.rows()) continue;
      stream::SampleRow row;
      row.job_id = node.job_id;
      row.component_id = node.component_id;
      row.timestamp = static_cast<std::int64_t>(t);
      row.app = node.app;
      const auto values = node.values.row(t);
      row.values.assign(values.begin(), values.end());
      batch.rows.push_back(std::move(row));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

class StreamScoringTest : public ::testing::Test {
 protected:
  StreamScoringTest() {
    std::int64_t job = 1;
    for (int i = 0; i < 6; ++i) {
      store_.ingest(make_job(job, "LAMMPS", 4, 150));
      train_jobs_.push_back(job++);
    }
    const auto memleak = hpas::table2_configurations().back();
    for (int i = 0; i < 2; ++i) {
      store_.ingest(make_job(job, "LAMMPS", 4, 150, memleak));
      train_jobs_.push_back(job++);
    }
  }

  deploy::TrainFromStoreOptions fast_options() {
    deploy::TrainFromStoreOptions options;
    options.preprocess.trim_seconds = 20;
    options.top_k_features = 64;
    options.model.vae.encoder_hidden = {24, 8};
    options.model.vae.latent_dim = 3;
    options.model.train.epochs = 120;
    options.model.train.batch_size = 16;
    options.model.train.learning_rate = 2e-3;
    options.model.train.validation_split = 0.0;
    options.model.train.early_stopping_patience = 0;
    return options;
  }

  deploy::DsosStore store_;
  std::vector<std::int64_t> train_jobs_;
};

TEST_F(StreamScoringTest, StreamVerdictsMatchBatchScoringExactly) {
  const auto service = deploy::AnalyticsService::train_from_store(
      store_, train_jobs_, fast_options(), /*explain=*/false);
  const core::ModelBundle& bundle = service.bundle();

  // Replay job 50 (memleak on nodes 1 and 3) through the streaming stack.
  const auto memleak = hpas::table2_configurations().back();
  const auto replay_job = make_job(50, "LAMMPS", 4, 150, memleak, {1, 3});

  stream::EventBus bus;
  std::mutex verdict_mutex;
  std::map<std::pair<std::int64_t, std::uint64_t>, stream::VerdictEvent> verdicts;
  bus.subscribe([&](const stream::VerdictEvent& event) {
    std::lock_guard lock(verdict_mutex);
    verdicts[{event.component_id, event.window_index}] = event;
  });

  stream::OnlineScorerConfig scorer_config;
  scorer_config.window = 64;
  scorer_config.hop = 16;
  // This test asserts EXPECT_DOUBLE_EQ against the batch oracle; pin the
  // bit-exact full-recompute path (IncrementalScoringMatchesFullRecompute
  // covers the default incremental mode with its documented tolerances).
  scorer_config.extraction = stream::ExtractionMode::kFullRecompute;
  stream::OnlineScorer scorer(bundle, bus, scorer_config);
  ASSERT_EQ(scorer.extraction_mode(), stream::ExtractionMode::kFullRecompute);

  deploy::DsosStore live_store;
  stream::StreamIngestor ingestor(live_store, {}, &scorer);
  for (auto& batch : batches_from_job(replay_job)) {
    EXPECT_TRUE(ingestor.offer(std::move(batch)));
  }
  ingestor.stop();
  scorer.drain();

  // Block policy on an unsaturated queue: nothing may be lost.
  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.dropped_samples, 0u);
  EXPECT_EQ(stats.offered_samples, stats.flushed_samples);
  EXPECT_EQ(scorer.score_errors(), 0u);

  // 150 rows, W=64, H=16 -> windows 0..5 per node, 4 nodes.
  constexpr std::size_t kWindowsPerNode = 6;
  ASSERT_EQ(verdicts.size(), 4 * kWindowsPerNode);
  EXPECT_EQ(scorer.windows_scored(), 4 * kWindowsPerNode);
  EXPECT_EQ(bus.verdicts_published(), 4 * kWindowsPerNode);

  // Batch oracle: every streamed window becomes one synthetic node of one
  // batch job, scored by the AnalyticsService with the same preprocessing.
  telemetry::JobTelemetry oracle_job;
  oracle_job.job_id = 1;
  oracle_job.app = "LAMMPS";
  std::vector<const stream::VerdictEvent*> order;
  for (const auto& [key, event] : verdicts) {
    const auto* source = &replay_job.nodes[0];
    for (const auto& node : replay_job.nodes) {
      if (node.component_id == key.first) source = &node;
    }
    telemetry::NodeSeries window;
    window.job_id = 1;
    window.component_id = static_cast<std::int64_t>(order.size());
    window.app = oracle_job.app;
    window.values = source->values.slice_rows(
        static_cast<std::size_t>(key.second) * scorer_config.hop,
        scorer_config.window);
    oracle_job.nodes.push_back(std::move(window));
    order.push_back(&event);

    // The verdict's span names the rows it covers.
    EXPECT_EQ(event.window_start_ts,
              static_cast<std::int64_t>(key.second * scorer_config.hop));
    EXPECT_EQ(event.window_end_ts,
              static_cast<std::int64_t>(key.second * scorer_config.hop +
                                        scorer_config.window - 1));
  }
  deploy::DsosStore oracle_store;
  oracle_store.ingest(oracle_job);
  const deploy::AnalyticsService oracle(oracle_store, bundle,
                                        scorer_config.preprocess,
                                        /*explain=*/false);
  const deploy::JobAnalysis analysis = oracle.analyze_job(1);
  ASSERT_EQ(analysis.nodes.size(), order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_DOUBLE_EQ(analysis.nodes[i].score, order[i]->score);
    EXPECT_EQ(analysis.nodes[i].anomalous, order[i]->anomalous);
    EXPECT_DOUBLE_EQ(analysis.nodes[i].threshold, order[i]->threshold);
  }

  // The streamed rows also landed in the live store, byte for byte.
  for (const auto& node : replay_job.nodes) {
    const auto stored = live_store.query_node(node.job_id, node.component_id);
    ASSERT_EQ(stored.values.rows(), node.values.rows());
  }
}

TEST_F(StreamScoringTest, IncrementalScoringMatchesFullRecompute) {
  const auto service = deploy::AnalyticsService::train_from_store(
      store_, train_jobs_, fast_options(), /*explain=*/false);
  const core::ModelBundle& bundle = service.bundle();

  const auto memleak = hpas::table2_configurations().back();
  const auto replay_job = make_job(51, "LAMMPS", 4, 150, memleak, {1, 3});

  // Score the same replay twice: once per extraction mode.
  auto run_replay = [&](stream::ExtractionMode mode) {
    stream::EventBus bus;
    std::mutex verdict_mutex;
    std::map<std::pair<std::int64_t, std::uint64_t>, stream::VerdictEvent>
        verdicts;
    bus.subscribe([&](const stream::VerdictEvent& event) {
      std::lock_guard lock(verdict_mutex);
      verdicts[{event.component_id, event.window_index}] = event;
    });
    stream::OnlineScorerConfig scorer_config;
    scorer_config.window = 64;
    scorer_config.hop = 16;
    scorer_config.extraction = mode;
    stream::OnlineScorer scorer(bundle, bus, scorer_config);
    EXPECT_EQ(scorer.extraction_mode(), mode);
    deploy::DsosStore live_store;
    stream::StreamIngestor ingestor(live_store, {}, &scorer);
    for (auto& batch : batches_from_job(replay_job)) {
      EXPECT_TRUE(ingestor.offer(std::move(batch)));
    }
    ingestor.stop();
    scorer.drain();
    EXPECT_EQ(scorer.score_errors(), 0u);
    EXPECT_EQ(scorer.windows_skipped(), 0u);
    return verdicts;
  };

  const auto full = run_replay(stream::ExtractionMode::kFullRecompute);
  const auto incremental = run_replay(stream::ExtractionMode::kIncremental);

  ASSERT_EQ(full.size(), incremental.size());
  ASSERT_EQ(full.size(), 4u * 6u);
  for (const auto& [key, expect] : full) {
    const auto it = incremental.find(key);
    ASSERT_NE(it, incremental.end());
    const auto& got = it->second;
    EXPECT_EQ(got.window_start_ts, expect.window_start_ts);
    EXPECT_EQ(got.window_end_ts, expect.window_end_ts);
    // Scores agree within the incremental engine's documented feature
    // tolerance amplified through the scaler + VAE; verdict flags must be
    // identical (scores sit well away from the threshold in this replay).
    EXPECT_NEAR(got.score, expect.score,
                1e-6 * std::max(1.0, std::abs(expect.score)));
    EXPECT_EQ(got.anomalous, expect.anomalous)
        << "node " << key.first << " window " << key.second;
  }
}

TEST_F(StreamScoringTest, DisjointWindowsCoverTheRunOnce) {
  const auto service = deploy::AnalyticsService::train_from_store(
      store_, train_jobs_, fast_options(), /*explain=*/false);

  stream::EventBus bus({.debounce_windows = 1});
  std::mutex verdict_mutex;
  std::vector<stream::VerdictEvent> verdicts;
  bus.subscribe([&](const stream::VerdictEvent& event) {
    std::lock_guard lock(verdict_mutex);
    verdicts.push_back(event);
  });

  // hop == window: back-to-back disjoint windows.
  stream::OnlineScorerConfig scorer_config;
  scorer_config.window = 32;
  scorer_config.hop = 32;
  stream::OnlineScorer scorer(service.bundle(), bus, scorer_config);

  deploy::DsosStore live_store;
  stream::StreamIngestor ingestor(live_store, {}, &scorer);
  const auto replay_job = make_job(60, "LAMMPS", 2, 130);
  for (auto& batch : batches_from_job(replay_job)) {
    ASSERT_TRUE(ingestor.offer(std::move(batch)));
  }
  ingestor.stop();
  scorer.drain();

  // 130 rows / 32 -> windows 0..3 per node; the 2-row tail never scores.
  EXPECT_EQ(scorer.windows_scored(), 2 * 4u);
  std::lock_guard lock(verdict_mutex);
  for (const auto& event : verdicts) {
    EXPECT_EQ(event.window_start_ts % 32, 0);
    EXPECT_EQ(event.window_end_ts, event.window_start_ts + 31);
  }
  // Debounce bookkeeping stays balanced even at K=1.
  EXPECT_EQ(bus.verdicts_published(),
            bus.transitions_published() + bus.suppressed());
}

}  // namespace
