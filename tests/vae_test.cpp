#include "core/vae.hpp"

#include "nn/loss.hpp"
#include "test_helpers.hpp"
#include "tensor/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace prodigy::core {
namespace {

VaeConfig small_config(std::size_t input_dim) {
  VaeConfig config;
  config.input_dim = input_dim;
  config.encoder_hidden = {16, 8};
  config.latent_dim = 3;
  config.seed = 5;
  return config;
}

nn::TrainOptions fast_options() {
  nn::TrainOptions options;
  options.epochs = 120;
  options.batch_size = 32;
  options.learning_rate = 2e-3;
  options.seed = 9;
  return options;
}

/// Correlated healthy data on a low-dimensional manifold.
tensor::Matrix manifold_data(std::size_t n, std::size_t dims, std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Matrix X(n, dims);
  for (std::size_t r = 0; r < n; ++r) {
    const double t = rng.uniform(-1.0, 1.0);
    const double u = rng.uniform(-1.0, 1.0);
    for (std::size_t c = 0; c < dims; ++c) {
      const double weight_t = std::sin(static_cast<double>(c));
      const double weight_u = std::cos(static_cast<double>(c) * 0.7);
      X(r, c) = weight_t * t + weight_u * u + 0.02 * rng.gaussian();
    }
  }
  return X;
}

TEST(VaeTest, ConstructorValidatesConfig) {
  VaeConfig bad;
  bad.input_dim = 0;
  EXPECT_THROW(VariationalAutoencoder{bad}, std::invalid_argument);
  VaeConfig no_hidden = small_config(4);
  no_hidden.encoder_hidden.clear();
  EXPECT_THROW(VariationalAutoencoder{no_hidden}, std::invalid_argument);
}

TEST(VaeTest, ParameterCountMatchesArchitecture) {
  const VariationalAutoencoder vae(small_config(10));
  // encoder: 10*16+16 + 16*8+8; heads: 2*(8*3+3); decoder: 3*8+8 + 8*16+16 + 16*10+10.
  const std::size_t expected = (10 * 16 + 16) + (16 * 8 + 8) + 2 * (8 * 3 + 3) +
                               (3 * 8 + 8) + (8 * 16 + 16) + (16 * 10 + 10);
  EXPECT_EQ(vae.parameter_count(), expected);
}

TEST(VaeTest, FitRejectsWrongWidth) {
  VariationalAutoencoder vae(small_config(5));
  EXPECT_THROW(vae.fit(tensor::Matrix(10, 4, 0.0), fast_options()),
               std::invalid_argument);
}

TEST(VaeTest, TrainingLossDecreases) {
  const auto data = manifold_data(128, 10, 1);
  VariationalAutoencoder vae(small_config(10));
  const auto history = vae.fit(data, fast_options());
  ASSERT_GE(history.train_loss.size(), 10u);
  const double early = history.train_loss[2];
  const double late = history.train_loss.back();
  EXPECT_LT(late, early * 0.8);
}

TEST(VaeTest, ReconstructionErrorSeparatesInAndOutOfDistribution) {
  const auto healthy = manifold_data(200, 12, 2);
  VariationalAutoencoder vae(small_config(12));
  auto options = fast_options();
  options.epochs = 200;
  vae.fit(healthy, options);

  const auto held_out = manifold_data(50, 12, 3);
  util::Rng rng(4);
  tensor::Matrix outliers(50, 12);
  for (std::size_t i = 0; i < outliers.size(); ++i) {
    outliers.data()[i] = rng.gaussian(2.5, 1.0);  // far off-manifold
  }

  const double in_dist = tensor::mean(vae.reconstruction_error(held_out));
  const double out_dist = tensor::mean(vae.reconstruction_error(outliers));
  EXPECT_GT(out_dist, in_dist * 2.0);
}

TEST(VaeTest, EncodeMeanHasLatentShape) {
  const auto data = manifold_data(20, 10, 5);
  VariationalAutoencoder vae(small_config(10));
  const auto z = vae.encode_mean(data);
  EXPECT_EQ(z.rows(), 20u);
  EXPECT_EQ(z.cols(), 3u);
}

TEST(VaeTest, KlRegularizationKeepsLatentNearPrior) {
  const auto data = manifold_data(200, 10, 6);
  auto config = small_config(10);
  config.kl_weight = 1.0;
  VariationalAutoencoder vae(config);
  auto options = fast_options();
  options.epochs = 150;
  vae.fit(data, options);
  const auto z = vae.encode_mean(data);
  // Latent means should be O(1), not exploding: KL pulls them to N(0, I).
  for (std::size_t i = 0; i < z.size(); ++i) {
    EXPECT_LT(std::abs(z.data()[i]), 6.0);
  }
}

TEST(VaeTest, SampleGeneratesFiniteData) {
  const auto data = manifold_data(100, 8, 7);
  VariationalAutoencoder vae(small_config(8));
  vae.fit(data, fast_options());
  util::Rng rng(8);
  const auto generated = vae.sample(10, rng);
  EXPECT_EQ(generated.rows(), 10u);
  EXPECT_EQ(generated.cols(), 8u);
  for (std::size_t i = 0; i < generated.size(); ++i) {
    EXPECT_TRUE(std::isfinite(generated.data()[i]));
  }
}

TEST(VaeTest, MaeReconLossVariantTrains) {
  auto config = small_config(6);
  config.recon_loss = ReconLoss::Mae;
  const auto data = manifold_data(96, 6, 9);
  VariationalAutoencoder vae(config);
  const auto history = vae.fit(data, fast_options());
  EXPECT_LT(history.train_loss.back(), history.train_loss.front());
}

TEST(VaeTest, EarlyStoppingCutsEpochs) {
  const auto data = manifold_data(100, 6, 10);
  VariationalAutoencoder vae(small_config(6));
  auto options = fast_options();
  options.epochs = 2000;
  options.validation_split = 0.2;
  options.early_stopping_patience = 10;
  const auto history = vae.fit(data, options);
  EXPECT_LT(history.epochs_run, 2000u);
  EXPECT_TRUE(history.stopped_early);
}

TEST(VaeTest, SaveLoadReconstructsIdentically) {
  const auto data = manifold_data(80, 7, 11);
  VariationalAutoencoder vae(small_config(7));
  vae.fit(data, fast_options());

  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_vae_test.bin").string();
  {
    util::BinaryWriter writer(path);
    vae.save(writer);
  }
  util::BinaryReader reader(path);
  const VariationalAutoencoder loaded = VariationalAutoencoder::load(reader);
  std::remove(path.c_str());

  const auto a = vae.reconstruction_error(data);
  const auto b = loaded.reconstruction_error(data);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  EXPECT_EQ(loaded.config().latent_dim, 3u);
}

// Regression for the ragged-batch epoch-loss bug: forward_backward returns
// per-batch *means*, so a 33-row epoch with batch_size 16 (batches of 16, 16
// and 1) must weight each batch by its row count.  The old code averaged the
// three batch means equally, letting the 1-row tail batch count 16x.  With
// learning_rate 0 the Adam updates are exact no-ops, so the epoch can be
// replicated by hand against frozen initial weights.
TEST(VaeTest, EpochLossIsRowWeightedAcrossRaggedBatches) {
  const std::size_t rows = 33;
  const auto data = manifold_data(rows, 9, 12);
  VariationalAutoencoder vae(small_config(9));

  nn::TrainOptions options;
  options.epochs = 1;
  options.batch_size = 16;
  options.learning_rate = 0.0;
  options.validation_split = 0.0;
  options.seed = 13;
  const auto history = vae.fit(data, options);
  ASSERT_EQ(history.train_loss.size(), 1u);

  // Replicate fit()'s exact RNG consumption order: permutation (drawn even
  // when the validation split is empty), batch shuffling, then one gaussian
  // per latent element per batch — all from the same seed.
  util::Rng rng(options.seed);
  const auto perm = rng.permutation(rows);
  const tensor::Matrix train = data.select_rows({perm.begin(), perm.end()});
  const auto batches = nn::make_batches(rows, options.batch_size, rng);
  ASSERT_EQ(batches.size(), 3u);

  double weighted = 0.0;
  double unweighted = 0.0;
  std::size_t total_rows = 0;
  for (const auto& batch : batches) {
    const tensor::Matrix x = train.select_rows(batch);
    const tensor::Matrix h = vae.encoder().forward_inference(x);
    const tensor::Matrix mu = vae.mu_head().forward_inference(h);
    const tensor::Matrix logvar = vae.logvar_head().forward_inference(h);
    tensor::Matrix eps(mu.rows(), mu.cols());
    for (std::size_t i = 0; i < eps.size(); ++i) eps.data()[i] = rng.gaussian();
    tensor::Matrix z = mu;
    for (std::size_t i = 0; i < z.size(); ++i) {
      const double lv = std::clamp(logvar.data()[i], -10.0, 10.0);
      z.data()[i] += std::exp(0.5 * lv) * eps.data()[i];
    }
    const tensor::Matrix recon = vae.decoder().forward_inference(z);
    const double batch_loss =
        nn::mse_loss(recon, x).value +
        vae.config().kl_weight * nn::gaussian_kl(mu, logvar).value;
    weighted += batch_loss * static_cast<double>(x.rows());
    unweighted += batch_loss;
    total_rows += x.rows();
  }
  ASSERT_EQ(total_rows, rows);
  EXPECT_DOUBLE_EQ(history.train_loss[0],
                   weighted / static_cast<double>(rows));
  // And the fix is observable: the unweighted mean-of-means differs.
  EXPECT_NE(history.train_loss[0],
            unweighted / static_cast<double>(batches.size()));
}

namespace {

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::string serialized_bytes(const auto& component) {
  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_vae_component.bin")
          .string();
  {
    util::BinaryWriter writer(path);
    component.save(writer);
  }
  auto bytes = read_file_bytes(path);
  std::remove(path.c_str());
  return bytes;
}

}  // namespace

TEST(VaeTest, LoadRejectsMismatchedHeadDimensions) {
  // Compose a byte-level corrupt model: a valid save with its mu head
  // replaced by a Dense whose input width does not match the encoder's last
  // hidden layer.  Every component parses individually, so only the VAE-level
  // cross-validation can catch it.
  VariationalAutoencoder vae(small_config(6));
  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_vae_corrupt.bin")
          .string();
  {
    util::BinaryWriter writer(path);
    vae.save(writer);
  }
  const std::string full = read_file_bytes(path);
  const std::string enc = serialized_bytes(vae.encoder());
  const std::string mu = serialized_bytes(vae.mu_head());
  const std::string lv = serialized_bytes(vae.logvar_head());
  const std::string dec = serialized_bytes(vae.decoder());
  ASSERT_GT(full.size(), enc.size() + mu.size() + lv.size() + dec.size());
  const std::size_t header =
      full.size() - enc.size() - mu.size() - lv.size() - dec.size();

  util::Rng rng(99);
  // hidden.back() is 8; a 7-wide head is internally consistent but wrong.
  const nn::Dense bad_head(7, 3, nn::Activation::Linear, rng);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(header + enc.size()));
    const std::string bad = serialized_bytes(bad_head);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    const std::size_t rest = header + enc.size() + mu.size();
    out.write(full.data() + rest,
              static_cast<std::streamsize>(full.size() - rest));
  }
  util::BinaryReader reader(path);
  try {
    VariationalAutoencoder::load(reader);
    FAIL() << "load accepted a mu head that does not chain";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(VaeTest, LoadRejectsTruncatedFile) {
  VariationalAutoencoder vae(small_config(5));
  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_vae_truncated.bin")
          .string();
  {
    util::BinaryWriter writer(path);
    vae.save(writer);
  }
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  util::BinaryReader reader(path);
  EXPECT_THROW(VariationalAutoencoder::load(reader), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace prodigy::core
