#include "baselines/usad.hpp"

#include "eval/metrics.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

namespace prodigy::baselines {
namespace {

UsadConfig fast_config() {
  UsadConfig config;
  config.hidden = 48;
  config.latent = 12;
  config.train.epochs = 60;
  config.train.batch_size = 32;
  config.train.learning_rate = 2e-3;
  return config;
}

TEST(UsadTest, NameAndUsageErrors) {
  Usad usad(fast_config());
  EXPECT_EQ(usad.name(), "USAD");
  EXPECT_THROW(usad.score(tensor::Matrix(1, 4, 0.0)), std::logic_error);
  EXPECT_THROW(usad.fit_healthy(tensor::Matrix{}), std::invalid_argument);
  EXPECT_THROW(usad.fit(tensor::Matrix(2, 3, 0.0), {1}), std::invalid_argument);
  EXPECT_THROW(usad.fit(tensor::Matrix(2, 3, 0.0), {1, 1}), std::invalid_argument);
}

TEST(UsadTest, TrainingRunsRequestedEpochs) {
  auto [X, y] = testing::blob_dataset(100, 0, 6, 0.0, 1);
  Usad usad(fast_config());
  usad.fit_healthy(X);
  EXPECT_EQ(usad.history().epochs_run, 60u);
  EXPECT_FALSE(usad.history().train_loss.empty());
}

TEST(UsadTest, DetectsShiftedAnomalies) {
  auto [X, y] = testing::blob_dataset(300, 30, 8, 4.0, 2);
  auto config = fast_config();
  config.train.epochs = 120;
  Usad usad(config);
  usad.fit(X, y);

  auto [X_test, y_test] = testing::blob_dataset(60, 60, 8, 4.0, 3);
  usad.tune(X_test, y_test);  // paper tunes the threshold on the test scores
  const double f1 = eval::macro_f1(y_test, usad.predict(X_test));
  EXPECT_GT(f1, 0.8);
}

TEST(UsadTest, ScoresHigherForAnomalies) {
  auto [X, y] = testing::blob_dataset(250, 0, 6, 0.0, 4);
  Usad usad(fast_config());
  usad.fit_healthy(X);

  auto [X_mixed, y_mixed] = testing::blob_dataset(50, 50, 6, 4.0, 5);
  const auto scores = usad.score(X_mixed);
  double healthy_mean = 0.0, anomalous_mean = 0.0;
  for (std::size_t i = 0; i < 50; ++i) healthy_mean += scores[i];
  for (std::size_t i = 50; i < 100; ++i) anomalous_mean += scores[i];
  EXPECT_GT(anomalous_mean, healthy_mean * 2.0);
}

TEST(UsadTest, AlphaBetaChangeScoreMixture) {
  auto [X, y] = testing::blob_dataset(100, 0, 5, 0.0, 6);
  UsadConfig direct_only = fast_config();
  direct_only.alpha = 1.0;
  direct_only.beta = 0.0;
  UsadConfig adversarial_only = fast_config();
  adversarial_only.alpha = 0.0;
  adversarial_only.beta = 1.0;

  Usad a(direct_only), b(adversarial_only);
  a.fit_healthy(X);
  b.fit_healthy(X);
  const auto sa = a.score(X);
  const auto sb = b.score(X);
  double diff = 0.0;
  for (std::size_t i = 0; i < sa.size(); ++i) diff += std::abs(sa[i] - sb[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(UsadTest, DefaultThresholdFlagsFewTrainingSamples) {
  auto [X, y] = testing::blob_dataset(200, 0, 6, 0.0, 7);
  Usad usad(fast_config());
  usad.fit_healthy(X);
  std::size_t flagged = 0;
  for (const int p : usad.predict(X)) flagged += p;
  EXPECT_LE(flagged, X.rows() / 20);  // ~1% by the 99th-percentile threshold
}

}  // namespace
}  // namespace prodigy::baselines
