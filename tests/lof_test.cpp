#include "baselines/lof.hpp"

#include "eval/metrics.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

namespace prodigy::baselines {
namespace {

TEST(LofTest, UsageErrors) {
  LocalOutlierFactor lof;
  EXPECT_EQ(lof.name(), "Local Outlier Factor");
  EXPECT_THROW(lof.score(tensor::Matrix(1, 2, 0.0)), std::logic_error);
  EXPECT_THROW(lof.fit(tensor::Matrix(1, 2, 0.0), {0}), std::invalid_argument);
}

TEST(LofTest, InlierScoresNearOne) {
  auto [X, y] = testing::blob_dataset(300, 0, 4, 0.0, 1);
  LofConfig config;
  config.n_neighbors = 20;
  LocalOutlierFactor lof(config);
  lof.fit(X, y);

  tensor::Matrix center(1, 4, 0.0);
  const double score = lof.score(center)[0];
  EXPECT_GT(score, 0.7);
  EXPECT_LT(score, 1.3);
}

TEST(LofTest, OutlierScoresWellAboveOne) {
  auto [X, y] = testing::blob_dataset(300, 0, 4, 0.0, 2);
  LocalOutlierFactor lof;
  lof.fit(X, y);
  tensor::Matrix outlier(1, 4, 15.0);
  EXPECT_GT(lof.score(outlier)[0], 3.0);
}

TEST(LofTest, DetectsShiftedAnomalies) {
  // Training contamination kept below n_neighbors (10 < 20): a handful of
  // anomalies cannot form a self-supporting dense cluster, so test anomalies
  // near them still look sparse relative to their healthy neighbourhoods.
  auto [X_train, y_train] = testing::blob_dataset(290, 10, 5, 6.0, 3);
  LofConfig config;
  config.contamination = 0.10;
  LocalOutlierFactor lof(config);
  lof.fit(X_train, y_train);

  auto [X_test, y_test] = testing::blob_dataset(90, 10, 5, 6.0, 4);
  const double f1 = eval::macro_f1(y_test, lof.predict(X_test));
  EXPECT_GT(f1, 0.6);
}

TEST(LofTest, DenseAnomalyClusterIsAKnownBlindSpot) {
  // The flip side (why the paper pairs LOF with other baselines): once the
  // anomalous training cluster exceeds k, LOF sees it as a legitimate dense
  // region and stops flagging points near it.
  auto [X_train, y_train] = testing::blob_dataset(270, 30, 5, 6.0, 5);
  LofConfig config;
  config.n_neighbors = 20;  // < 30 cluster size
  LocalOutlierFactor lof(config);
  lof.fit(X_train, y_train);
  tensor::Matrix near_cluster(1, 5, 6.0);
  EXPECT_LT(lof.score(near_cluster)[0], 1.5);  // looks like an inlier
}

TEST(LofTest, DuplicateHeavyDataDoesNotExplode) {
  tensor::Matrix X(60, 3, 1.0);  // all identical -> infinite densities
  for (std::size_t r = 50; r < 60; ++r) {
    for (std::size_t c = 0; c < 3; ++c) X(r, c) = 5.0 + static_cast<double>(r);
  }
  std::vector<int> y(60, 0);
  LocalOutlierFactor lof;
  EXPECT_NO_THROW(lof.fit(X, y));
  const auto scores = lof.score(X);
  for (const double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(LofTest, NeighbourCountClampsToDatasetSize) {
  auto [X, y] = testing::blob_dataset(10, 0, 3, 0.0, 5);
  LofConfig config;
  config.n_neighbors = 50;  // more than available
  LocalOutlierFactor lof(config);
  EXPECT_NO_THROW(lof.fit(X, y));
  EXPECT_EQ(lof.score(X).size(), 10u);
}

TEST(LofTest, ContaminationSetsTrainFlagRate) {
  auto [X, y] = testing::blob_dataset(400, 0, 4, 0.0, 6);
  LofConfig config;
  config.contamination = 0.10;
  LocalOutlierFactor lof(config);
  lof.fit(X, y);
  std::size_t flagged = 0;
  for (const int p : lof.predict(X)) flagged += p;
  EXPECT_NEAR(static_cast<double>(flagged), 40.0, 15.0);
}

}  // namespace
}  // namespace prodigy::baselines
