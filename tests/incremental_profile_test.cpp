// Incremental-vs-full parity: the rolling IncrementalNodeExtractor must
// reproduce the batch single-pass engine (series_preprocess cleaning +
// compute_all_features) over long replays — bit-exactly for every feature
// except the sliding-DFT-carried spectral family, which matches within the
// documented per-feature tolerances (see DESIGN.md).
#include "features/incremental_profile.hpp"

#include "features/kernels.hpp"
#include "features/registry.hpp"
#include "features/series_preprocess.hpp"
#include "features/series_profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

namespace {

using namespace prodigy;
using features::ColumnKind;
using features::IncrementalConfig;
using features::IncrementalNodeExtractor;
using features::SortedWindow;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------------
// SortedWindow

TEST(SortedWindowTest, FuzzMatchesMultiset) {
  std::mt19937_64 rng(7);
  // Small discrete value set so duplicates (the hard case for erase) are
  // everywhere.
  std::uniform_real_distribution<double> value(0.0, 8.0);
  SortedWindow window;
  std::multiset<double> oracle;
  std::vector<double> pool;
  util::AlignedVec<double> got;
  for (int step = 0; step < 20000; ++step) {
    const bool do_insert = oracle.empty() || (rng() % 3) != 0;
    if (do_insert) {
      const double v = std::floor(value(rng) * 4.0) / 4.0;
      window.insert(v);
      oracle.insert(v);
      pool.push_back(v);
    } else {
      const std::size_t at = rng() % pool.size();
      const double v = pool[at];
      pool[at] = pool.back();
      pool.pop_back();
      ASSERT_TRUE(window.erase(v));
      oracle.erase(oracle.find(v));
    }
    ASSERT_EQ(window.size(), oracle.size());
    if (step % 500 == 0) {
      window.copy_sorted(got);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), oracle.begin()));
    }
  }
  window.copy_sorted(got);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), oracle.begin()));
  EXPECT_FALSE(window.erase(-1.0));  // absent value reports a miss
}

TEST(SortedWindowTest, RebuildAndCopyReproduceStdSort) {
  std::mt19937_64 rng(11);
  std::normal_distribution<double> value(0.0, 3.0);
  std::vector<double> data(513);
  for (auto& v : data) v = value(rng);
  SortedWindow window;
  window.rebuild(data);
  util::AlignedVec<double> got;
  window.copy_sorted(got);
  std::sort(data.begin(), data.end());
  ASSERT_EQ(got.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(got[i], data[i]);
}

// ---------------------------------------------------------------------------
// Replay parity harness

/// Synthetic 4-column telemetry: a noisy gauge, a cumulative counter, a
/// constant, and a mostly-zero spiky gauge.
tensor::Matrix make_replay(std::size_t rows, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  tensor::Matrix m(rows, 4);
  double walk = 10.0;
  double counter = 1000.0;
  for (std::size_t r = 0; r < rows; ++r) {
    walk += noise(rng) * 0.5;
    counter += 2.0 + std::abs(noise(rng));
    m.at(r, 0) = walk;
    m.at(r, 1) = counter;
    m.at(r, 2) = 0.1;
    m.at(r, 3) = uni(rng) < 0.05 ? 25.0 + noise(rng) : 0.0;
  }
  return m;
}

std::vector<ColumnKind> replay_kinds() {
  return {ColumnKind::kGauge, ColumnKind::kCounter, ColumnKind::kGauge,
          ColumnKind::kGauge};
}

/// Batch oracle for one (window, metric): window-local cleaning exactly as
/// pipeline::preprocess_node does it, then the single-pass engine.  Also
/// returns the window's one-sided power spectrum (for the peak-frequency
/// tie carve-out in expect_window_parity).
std::vector<double> oracle_features(const tensor::Matrix& data,
                                    std::size_t start, std::size_t window,
                                    std::size_t col, bool counter,
                                    std::span<double> out) {
  std::vector<double> series(window);
  for (std::size_t r = 0; r < window; ++r) series[r] = data.at(start + r, col);
  features::linear_interpolate(series);
  if (counter) features::counter_to_rate_inplace(series);
  features::FeatureScratch scratch;
  features::compute_all_features(series, out, scratch);
  return features::power_spectrum(series);
}

bool is_tolerant_feature(const std::string& name) {
  // Only the sliding-DFT-carried spectral family is tolerance-carried;
  // every linear aggregate (sum, energy, successive differences) is
  // recomputed exactly per emission and must match bit for bit.
  return name.rfind("spectral_", 0) == 0;
}

/// Bit-exact for every feature except the SDFT-carried spectral family,
/// which gets a documented relative tolerance.  `oracle_power` (the batch
/// one-sided spectrum of this window, empty to skip) backs the
/// peak-frequency carve-out: argmax over near-tied bins is ill-conditioned
/// (a single-spike window has an exactly flat spectrum), so a differing
/// peak location is accepted iff the bin the incremental path picked holds
/// power within tolerance of the true maximum.
void expect_window_parity(std::span<const double> got,
                          std::span<const double> want,
                          std::span<const double> oracle_power,
                          std::size_t window_no, std::size_t col) {
  const auto& defs = features::feature_registry();
  const std::size_t per_metric = features::features_per_metric();
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.size() % per_metric, 0u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto& name = defs[i % per_metric].name;
    const char* context = "window ";
    if (is_tolerant_feature(name)) {
      const bool spectral = name.rfind("spectral_", 0) == 0;
      const double rel = spectral ? 1e-6 : 1e-9;
      if (name == "spectral_peak_frequency" && got[i] != want[i] &&
          oracle_power.size() > 1) {
        const double bins = static_cast<double>(oracle_power.size() - 1);
        const auto bin = static_cast<std::size_t>(
            std::llround(got[i] * bins));
        ASSERT_LT(bin, oracle_power.size());
        const double max_power =
            *std::max_element(oracle_power.begin(), oracle_power.end());
        EXPECT_GE(oracle_power[bin], max_power * (1.0 - 1e-6))
            << name << " " << context << window_no << " col " << col
            << ": picked a bin that is not a near-tied maximum";
        continue;
      }
      EXPECT_NEAR(got[i], want[i],
                  rel * std::max(std::abs(want[i]), 1.0) + 1e-9)
          << name << " " << context << window_no << " col " << col;
    } else {
      EXPECT_EQ(got[i], want[i])
          << name << " " << context << window_no << " col " << col;
    }
  }
}

struct ReplayResult {
  std::size_t windows = 0;
  features::IncrementalStats stats;
  bool used_sdft = false;
};

/// Streams `data` through an extractor hop by hop and checks every emitted
/// window against the batch oracle.
ReplayResult run_parity_replay(const tensor::Matrix& data,
                               IncrementalConfig config) {
  const std::size_t cols = data.cols();
  const auto kinds = replay_kinds();
  IncrementalNodeExtractor extractor(cols, kinds, config);
  const std::size_t per_metric = features::features_per_metric();
  std::vector<double> got(cols * per_metric);
  std::vector<double> want(cols * per_metric);

  ReplayResult result;
  result.used_sdft = extractor.uses_sliding_dft();
  std::size_t fed = 0;
  while (fed < data.rows()) {
    const std::size_t chunk = fed == 0
                                  ? config.window
                                  : std::min(config.hop, data.rows() - fed);
    if (fed + chunk > data.rows()) break;
    const tensor::Matrix delta = data.slice_rows(fed, chunk);
    const bool emitted = extractor.absorb_and_extract(delta, got);
    fed += chunk;
    EXPECT_EQ(emitted, fed >= config.window) << "at row " << fed;
    if (!emitted) continue;
    const std::size_t start = fed - config.window;
    for (std::size_t c = 0; c < cols; ++c) {
      const auto power = oracle_features(
          data, start, config.window, c, kinds[c] == ColumnKind::kCounter,
          std::span(want).subspan(c * per_metric, per_metric));
      expect_window_parity(
          std::span(got).subspan(c * per_metric, per_metric),
          std::span(want).subspan(c * per_metric, per_metric), power,
          result.windows, c);
    }
    ++result.windows;
  }
  result.stats = extractor.stats();
  EXPECT_EQ(result.stats.windows, result.windows);
  return result;
}

TEST(IncrementalParityTest, LongReplayFftPath) {
  // W=64, H=64 (tumbling windows): 64 * 33 = 2112 bin updates cost
  // ~444 model units (x0.21) vs ~352 for the recompute, so the cost model
  // picks the per-emission FFT and spectral is bit-exact too.  The
  // measured crossover at W=64 sits at hop 51; hop 16 used to live here
  // but the vectorized apply kernel moved it to the SDFT side.
  IncrementalConfig config;
  config.window = 64;
  config.hop = 64;
  const auto data = make_replay(64 + 210 * 64, 101);
  const auto result = run_parity_replay(data, config);
  EXPECT_GE(result.windows, 200u);
  EXPECT_FALSE(result.used_sdft);
  EXPECT_GT(result.stats.scheduled_recomputes, 0u);  // interval = 64 < 200
  EXPECT_EQ(result.stats.exact_fallbacks, 0u);
}

TEST(IncrementalParityTest, LongReplaySlidingDftPath) {
  // W=64, H=4: 4 * 33 = 132 bin updates beat the FFT, so the sliding DFT
  // carries the spectral family between emissions.
  IncrementalConfig config;
  config.window = 64;
  config.hop = 4;
  const auto data = make_replay(64 + 210 * 4, 202);
  const auto result = run_parity_replay(data, config);
  EXPECT_GE(result.windows, 200u);
  EXPECT_TRUE(result.used_sdft);
}

/// Streams `data` hop by hop and collects every emitted feature vector,
/// with the kernel dispatch seam forced to the requested side.
std::vector<std::vector<double>> collect_replay_outputs(
    const tensor::Matrix& data, const IncrementalConfig& config,
    bool scalar) {
  features::kernels::force_scalar(scalar);
  const std::size_t cols = data.cols();
  IncrementalNodeExtractor extractor(cols, replay_kinds(), config);
  std::vector<std::vector<double>> outputs;
  std::vector<double> got(cols * features::features_per_metric());
  std::size_t fed = 0;
  while (fed < data.rows()) {
    const std::size_t chunk = fed == 0
                                  ? config.window
                                  : std::min(config.hop, data.rows() - fed);
    if (fed + chunk > data.rows()) break;
    if (extractor.absorb_and_extract(data.slice_rows(fed, chunk), got)) {
      outputs.push_back(got);
    }
    fed += chunk;
  }
  features::kernels::force_scalar(false);
  return outputs;
}

TEST(IncrementalParityTest, ForceScalarReplayBitEqual) {
  // SIMD-vs-scalar over the whole streaming engine: the same replay run
  // with the vector kernels and with their scalar oracles must emit
  // bit-identical feature vectors at every hop — including the SDFT-carried
  // spectral family and the NaN-gap exact-fallback windows.
  auto data = make_replay(64 + 60 * 16, 404);
  for (std::size_t r = 100; r < data.rows(); r += 97) {
    data.at(r, 0) = kNaN;  // gap-straddling windows hit the exact fallback
  }
  IncrementalConfig config;
  config.window = 64;
  config.hop = 16;
  const auto vec = collect_replay_outputs(data, config, /*scalar=*/false);
  const auto sca = collect_replay_outputs(data, config, /*scalar=*/true);
  ASSERT_EQ(vec.size(), sca.size());
  ASSERT_GT(vec.size(), 50u);
  for (std::size_t w = 0; w < vec.size(); ++w) {
    ASSERT_EQ(vec[w].size(), sca[w].size());
    for (std::size_t i = 0; i < vec[w].size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(vec[w][i]),
                std::bit_cast<std::uint64_t>(sca[w][i]))
          << "window " << w << " index " << i;
    }
  }
}

TEST(IncrementalCostModelTest, GoldenCrossovers) {
  // Pins the retuned spectral cost model (kSdftVectorFactor = 0.21, from
  // the measured ~1.04ns/bin-update SDFT apply vs ~5.0ns/unit FFT).  If a
  // retune moves these crossovers, the LongReplay* path tests above must
  // move with them.
  const auto m64 = features::spectral_cost_model(64, 16);
  EXPECT_TRUE(m64.use_sdft);
  EXPECT_NEAR(m64.sdft_cost, 0.21 * 16 * 33, 1e-9);
  EXPECT_NEAR(m64.fft_cost, 1.5 * 32 * 6 + 64, 1e-9);

  // Measured crossover at W=64: hop 50 is the last SDFT shape.
  EXPECT_TRUE(features::spectral_cost_model(64, 50).use_sdft);
  EXPECT_FALSE(features::spectral_cost_model(64, 51).use_sdft);
  EXPECT_FALSE(features::spectral_cost_model(64, 64).use_sdft);

  // W=1024 crossover sits at hop 80/81.
  EXPECT_TRUE(features::spectral_cost_model(1024, 16).use_sdft);
  EXPECT_TRUE(features::spectral_cost_model(1024, 80).use_sdft);
  EXPECT_FALSE(features::spectral_cost_model(1024, 81).use_sdft);
  EXPECT_FALSE(features::spectral_cost_model(1024, 512).use_sdft);

  // Non-power-of-two windows always recompute regardless of hop.
  EXPECT_FALSE(features::spectral_cost_model(100, 1).use_sdft);
}

TEST(IncrementalParityTest, NonPowerOfTwoWindow) {
  IncrementalConfig config;
  config.window = 100;
  config.hop = 10;
  const auto data = make_replay(100 + 205 * 10, 303);
  const auto result = run_parity_replay(data, config);
  EXPECT_GE(result.windows, 200u);
  EXPECT_FALSE(result.used_sdft);  // SDFT needs a power-of-two window
}

TEST(IncrementalParityTest, LargeWindowSlidingDft) {
  // The acceptance-criteria shape: W=1024, H=16 (16 * 513 = 8208 updates
  // vs ~8704 for the FFT recompute -> SDFT).  Shorter replay: each hop
  // still exercises retire/add across the full ring.
  IncrementalConfig config;
  config.window = 1024;
  config.hop = 16;
  const auto data = make_replay(1024 + 80 * 16, 404);
  const auto result = run_parity_replay(data, config);
  EXPECT_GE(result.windows, 80u);
  EXPECT_TRUE(result.used_sdft);
}

TEST(IncrementalParityTest, NaNRowsFallBackToExactWindows) {
  IncrementalConfig config;
  config.window = 64;
  config.hop = 16;
  auto data = make_replay(64 + 205 * 16, 505);
  // NaN bursts in the gauge and the counter: every window containing one
  // must fall back to the exact batch computation (and therefore stay
  // bit-exact, which run_parity_replay's oracle asserts — the oracle
  // cleaning interpolates the same gaps).
  for (std::size_t r = 200; r < 206; ++r) data.at(r, 0) = kNaN;
  data.at(400, 1) = kNaN;
  data.at(1000, 3) = kNaN;
  const auto result = run_parity_replay(data, config);
  EXPECT_GE(result.windows, 200u);
  EXPECT_GT(result.stats.exact_fallbacks, 0u);
}

TEST(IncrementalParityTest, ZeroDriftToleranceForcesRecomputes) {
  // drift_tolerance = 0 turns the sentinels into tripwires: any rounding
  // difference between the rolling and exact sums triggers a rebuild.
  // Parity must survive constant rebuilding (they are exact by definition).
  IncrementalConfig config;
  config.window = 64;
  config.hop = 4;
  config.drift_tolerance = 0.0;
  config.recompute_interval = 1000000;  // isolate the drift trigger
  const auto data = make_replay(64 + 100 * 4, 606);
  const auto result = run_parity_replay(data, config);
  EXPECT_GE(result.windows, 100u);
  EXPECT_GT(result.stats.drift_recomputes, 0u);
  EXPECT_EQ(result.stats.scheduled_recomputes, 0u);
}

TEST(IncrementalParityTest, ResetRefillsBeforeEmitting) {
  IncrementalConfig config;
  config.window = 64;
  config.hop = 16;
  const auto kinds = replay_kinds();
  const auto data = make_replay(64 + 8 * 16, 707);
  IncrementalNodeExtractor extractor(data.cols(), kinds, config);
  const std::size_t per_metric = features::features_per_metric();
  std::vector<double> got(data.cols() * per_metric);
  std::vector<double> want(data.cols() * per_metric);

  EXPECT_FALSE(extractor.window_complete());
  ASSERT_TRUE(extractor.absorb_and_extract(data.slice_rows(0, 64), got));
  EXPECT_TRUE(extractor.window_complete());

  extractor.reset();
  EXPECT_FALSE(extractor.window_complete());
  // Refill with hop-sized deltas: no emission until a full window is back.
  std::size_t fed = 64;
  for (int hop = 0; hop < 3; ++hop) {
    EXPECT_FALSE(
        extractor.absorb_and_extract(data.slice_rows(fed, 16), got));
    fed += 16;
  }
  ASSERT_TRUE(extractor.absorb_and_extract(data.slice_rows(fed, 16), got));
  fed += 16;
  // The refilled window is the last 64 rows fed since the reset.
  for (std::size_t c = 0; c < data.cols(); ++c) {
    const auto power = oracle_features(
        data, fed - 64, 64, c, kinds[c] == ColumnKind::kCounter,
        std::span(want).subspan(c * per_metric, per_metric));
    expect_window_parity(std::span(got).subspan(c * per_metric, per_metric),
                         std::span(want).subspan(c * per_metric, per_metric),
                         power, 0, c);
  }
}

TEST(IncrementalParityTest, RejectsMalformedInput) {
  IncrementalConfig config;
  config.window = 8;
  config.hop = 2;
  IncrementalNodeExtractor extractor(2, {}, config);
  std::vector<double> out(2 * features::features_per_metric());
  EXPECT_THROW(extractor.absorb_and_extract(tensor::Matrix(4, 3), out),
               std::invalid_argument);
  std::vector<double> bad(3);
  EXPECT_THROW(extractor.absorb_and_extract(tensor::Matrix(4, 2), bad),
               std::invalid_argument);
  EXPECT_THROW(IncrementalNodeExtractor(0, {}, config), std::invalid_argument);
  IncrementalConfig tiny;
  tiny.window = 1;
  EXPECT_THROW(IncrementalNodeExtractor(2, {}, tiny), std::invalid_argument);
}

}  // namespace
