// Property tests for the NN substrate: numerical gradient checks across
// every activation and several architectures, and optimizer invariants.
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prodigy::nn {
namespace {

using tensor::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed,
                     double scale = 0.7) {
  util::Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = scale * rng.gaussian();
  return m;
}

struct GradCheckCase {
  Activation hidden;
  std::size_t input_dim;
  std::size_t hidden_units;
  std::size_t output_dim;
  std::size_t batch;
};

class GradCheckTest : public ::testing::TestWithParam<GradCheckCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumericalEverywhere) {
  const auto& param = GetParam();
  util::Rng rng(11);
  Mlp mlp(param.input_dim,
          {{param.hidden_units, param.hidden},
           {param.output_dim, Activation::Linear}},
          rng);
  // Keep pre-activations away from ReLU kinks for clean finite differences.
  const Matrix x = random_matrix(param.batch, param.input_dim, 21);
  const Matrix target = random_matrix(param.batch, param.output_dim, 22, 0.3);

  mlp.zero_gradients();
  const LossResult loss = mse_loss(mlp.forward(x), target);
  mlp.backward(loss.grad);

  const double eps = 1e-6;
  auto loss_at = [&](Mlp& model) {
    return mse_loss(model.forward_inference(x), target).value;
  };
  // Probe every layer: a few weights and a bias each.
  util::Rng probe_rng(33);
  for (std::size_t layer_id = 0; layer_id < mlp.layer_count(); ++layer_id) {
    auto& layer = mlp.layer(layer_id);
    for (int probe = 0; probe < 4; ++probe) {
      const auto r = probe_rng.uniform_index(layer.weights().rows());
      const auto c = probe_rng.uniform_index(layer.weights().cols());
      Mlp copy = mlp;
      copy.layer(layer_id).weights()(r, c) += eps;
      const double up = loss_at(copy);
      copy.layer(layer_id).weights()(r, c) -= 2 * eps;
      const double down = loss_at(copy);
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(layer.weight_grad()(r, c), numeric,
                  1e-4 * std::max(1.0, std::abs(numeric)))
          << "layer " << layer_id << " w(" << r << "," << c << ")";
    }
    const auto b = probe_rng.uniform_index(layer.bias().size());
    Mlp copy = mlp;
    copy.layer(layer_id).bias()[b] += eps;
    const double up = loss_at(copy);
    copy.layer(layer_id).bias()[b] -= 2 * eps;
    const double down = loss_at(copy);
    EXPECT_NEAR(layer.bias_grad()[b], (up - down) / (2 * eps), 1e-5)
        << "layer " << layer_id << " b(" << b << ")";
  }
}

TEST_P(GradCheckTest, GradientsAccumulateAcrossBackwardCalls) {
  const auto& param = GetParam();
  util::Rng rng(12);
  Mlp mlp(param.input_dim,
          {{param.hidden_units, param.hidden},
           {param.output_dim, Activation::Linear}},
          rng);
  const Matrix x = random_matrix(param.batch, param.input_dim, 23);
  const Matrix target = random_matrix(param.batch, param.output_dim, 24, 0.3);

  mlp.zero_gradients();
  const LossResult loss = mse_loss(mlp.forward(x), target);
  mlp.backward(loss.grad);
  const double once = mlp.layer(0).weight_grad()(0, 0);
  // Same pass again without zeroing -> exactly doubled.
  mlp.forward(x);
  mlp.backward(loss.grad);
  EXPECT_NEAR(mlp.layer(0).weight_grad()(0, 0), 2.0 * once,
              1e-9 * std::max(1.0, std::abs(once)));
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, GradCheckTest,
    ::testing::Values(GradCheckCase{Activation::Tanh, 3, 5, 2, 4},
                      GradCheckCase{Activation::Sigmoid, 4, 6, 3, 2},
                      GradCheckCase{Activation::ReLU, 5, 8, 4, 6},
                      GradCheckCase{Activation::Linear, 2, 3, 2, 1}),
    [](const ::testing::TestParamInfo<GradCheckCase>& info) {
      return to_string(info.param.hidden) + "_" +
             std::to_string(info.param.input_dim) + "in";
    });

class OptimizerPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(OptimizerPropertyTest, AdamIsInvariantToGradientScale) {
  // Adam's update direction depends on g / sqrt(g^2): rescaling all
  // gradients by a constant leaves the first step (almost) unchanged.
  const double scale = GetParam();
  std::vector<double> p1{1.0}, g1{0.3};
  std::vector<double> p2{1.0}, g2{0.3 * scale};
  Adam a(0.05), b(0.05);
  a.register_parameters({p1.data(), g1.data(), 1});
  b.register_parameters({p2.data(), g2.data(), 1});
  a.step();
  b.step();
  EXPECT_NEAR(p1[0], p2[0], 1e-6);
}

TEST_P(OptimizerPropertyTest, SgdScalesLinearlyWithGradient) {
  const double scale = GetParam();
  std::vector<double> p1{0.0}, g1{0.3};
  std::vector<double> p2{0.0}, g2{0.3 * scale};
  Sgd a(0.1), b(0.1);
  a.register_parameters({p1.data(), g1.data(), 1});
  b.register_parameters({p2.data(), g2.data(), 1});
  a.step();
  b.step();
  EXPECT_NEAR(p2[0], p1[0] * scale, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Scales, OptimizerPropertyTest,
                         ::testing::Values(0.1, 2.0, 100.0));

}  // namespace
}  // namespace prodigy::nn
