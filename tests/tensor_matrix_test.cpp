#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

namespace prodigy::tensor {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(MatrixTest, FromRows) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  EXPECT_THROW(Matrix::from_rows({{1}, {2, 3}}), std::invalid_argument);
}

TEST(MatrixTest, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_NO_THROW(m.at(1, 1));
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

TEST(MatrixTest, RowSpanWritesThrough) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
}

TEST(MatrixTest, ColumnExtractAndSet) {
  Matrix m{{1, 2}, {3, 4}};
  const auto col = m.column(1);
  EXPECT_EQ(col, (std::vector<double>{2, 4}));
  const std::vector<double> fresh{7, 8};
  m.set_column(0, fresh);
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 8.0);
  EXPECT_THROW(m.column(5), std::out_of_range);
}

TEST(MatrixTest, SetRowValidatesLength) {
  Matrix m(2, 3);
  const std::vector<double> bad{1, 2};
  EXPECT_THROW(m.set_row(0, bad), std::out_of_range);
}

TEST(MatrixTest, SliceRows) {
  Matrix m{{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  const Matrix mid = m.slice_rows(1, 2);
  EXPECT_EQ(mid.rows(), 2u);
  EXPECT_DOUBLE_EQ(mid(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(mid(1, 0), 3.0);
  EXPECT_THROW(m.slice_rows(3, 2), std::out_of_range);
}

TEST(MatrixTest, SelectRowsReorders) {
  Matrix m{{1, 0}, {2, 0}, {3, 0}};
  const std::vector<std::size_t> idx{2, 0};
  const Matrix sel = m.select_rows(idx);
  EXPECT_EQ(sel.rows(), 2u);
  EXPECT_DOUBLE_EQ(sel(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sel(1, 0), 1.0);
  const std::vector<std::size_t> bad{5};
  EXPECT_THROW(m.select_rows(bad), std::out_of_range);
}

TEST(MatrixTest, SelectColumnsReorders) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const std::vector<std::size_t> idx{2, 0};
  const Matrix sel = m.select_columns(idx);
  EXPECT_EQ(sel.cols(), 2u);
  EXPECT_DOUBLE_EQ(sel(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sel(1, 1), 4.0);
  const std::vector<std::size_t> bad{3};
  EXPECT_THROW(m.select_columns(bad), std::out_of_range);
}

TEST(MatrixTest, ElementwiseAddSubScale) {
  Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{10, 20}, {30, 40}};
  a += b;
  EXPECT_DOUBLE_EQ(a(1, 1), 44.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(1, 1), 4.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
}

TEST(MatrixTest, ShapeMismatchThrows) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(MatrixTest, ShapeString) {
  EXPECT_EQ(Matrix(3, 4).shape_string(), "(3x4)");
}

}  // namespace
}  // namespace prodigy::tensor
