#include "features/extractors.hpp"
#include "features/feature_matrix.hpp"
#include "features/registry.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>
#include <vector>

namespace prodigy::features {
namespace {

const std::vector<double> kRamp{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};

TEST(ExtractorTest, AbsEnergyAndRms) {
  const std::vector<double> xs{1, -2, 2};
  EXPECT_DOUBLE_EQ(abs_energy(xs), 9.0);
  EXPECT_DOUBLE_EQ(root_mean_square(xs), std::sqrt(3.0));
}

TEST(ExtractorTest, ChangeStatisticsOnRamp) {
  EXPECT_DOUBLE_EQ(mean_abs_change(kRamp), 1.0);
  EXPECT_DOUBLE_EQ(mean_change(kRamp), 1.0);
  EXPECT_DOUBLE_EQ(absolute_sum_of_changes(kRamp), 9.0);
  EXPECT_DOUBLE_EQ(mean_second_derivative_central(kRamp), 0.0);
}

TEST(ExtractorTest, ChangeStatisticsDegenerate) {
  const std::vector<double> single{5.0};
  EXPECT_DOUBLE_EQ(mean_abs_change(single), 0.0);
  EXPECT_DOUBLE_EQ(mean_change(single), 0.0);
}

TEST(ExtractorTest, VariationCoefficient) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};  // mean 5, sd 2
  EXPECT_DOUBLE_EQ(variation_coefficient(xs), 0.4);
  const std::vector<double> zero_mean{-1, 1};
  EXPECT_DOUBLE_EQ(variation_coefficient(zero_mean), 0.0);
}

TEST(ExtractorTest, RangeAndIqr) {
  EXPECT_DOUBLE_EQ(value_range(kRamp), 9.0);
  EXPECT_DOUBLE_EQ(interquartile_range(kRamp), 4.5);
}

TEST(ExtractorTest, ExtremaLocationsRelative) {
  const std::vector<double> xs{0, 5, 1, 5, -2};
  EXPECT_DOUBLE_EQ(first_location_of_maximum(xs), 0.2);
  EXPECT_DOUBLE_EQ(last_location_of_maximum(xs), 0.6);
  EXPECT_DOUBLE_EQ(first_location_of_minimum(xs), 0.8);
  EXPECT_DOUBLE_EQ(last_location_of_minimum(xs), 0.8);
}

TEST(ExtractorTest, CountsAboveBelowMean) {
  const std::vector<double> xs{0, 0, 0, 0, 10};  // mean 2
  EXPECT_DOUBLE_EQ(count_above_mean(xs), 0.2);
  EXPECT_DOUBLE_EQ(count_below_mean(xs), 0.8);
}

TEST(ExtractorTest, LongestStrikes) {
  const std::vector<double> xs{1, 1, 10, 10, 10, 1, 10};  // mean ~6.1
  EXPECT_DOUBLE_EQ(longest_strike_above_mean(xs), 3.0 / 7.0);
  EXPECT_DOUBLE_EQ(longest_strike_below_mean(xs), 2.0 / 7.0);
}

TEST(ExtractorTest, MeanCrossingRateOfAlternatingSeries) {
  const std::vector<double> xs{-1, 1, -1, 1, -1};
  EXPECT_DOUBLE_EQ(mean_crossing_rate(xs), 1.0);
  const std::vector<double> flat{1, 1, 1};
  EXPECT_DOUBLE_EQ(mean_crossing_rate(flat), 0.0);
}

TEST(ExtractorTest, NumberPeaksFindsLocalMaxima) {
  const std::vector<double> xs{0, 3, 0, 5, 0, 2, 0};
  EXPECT_DOUBLE_EQ(number_peaks(xs, 1), 3.0 / 7.0);
  // With support 2 only the big middle peak survives.
  EXPECT_DOUBLE_EQ(number_peaks(xs, 2), 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(number_peaks(xs, 0), 0.0);
}

TEST(ExtractorTest, RatioBeyondSigma) {
  std::vector<double> xs(100, 0.0);
  xs[0] = 100.0;  // one extreme outlier
  EXPECT_NEAR(ratio_beyond_r_sigma(xs, 3.0), 0.01, 1e-12);
  const std::vector<double> constant(10, 1.0);
  EXPECT_DOUBLE_EQ(ratio_beyond_r_sigma(constant, 1.0), 0.0);
}

TEST(ExtractorTest, C3OfConstantSeries) {
  const std::vector<double> twos(10, 2.0);
  EXPECT_DOUBLE_EQ(c3(twos, 1), 8.0);  // 2*2*2
  EXPECT_DOUBLE_EQ(c3(twos, 0), 0.0);  // invalid lag
  const std::vector<double> tiny{1, 2};
  EXPECT_DOUBLE_EQ(c3(tiny, 1), 0.0);  // too short
}

TEST(ExtractorTest, TimeReversalAsymmetryOfSymmetricSeries) {
  // A symmetric (time-reversible) series has ~0 asymmetry.
  std::vector<double> xs(101);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 25.0);
  }
  EXPECT_NEAR(time_reversal_asymmetry(xs, 1), 0.0, 0.05);
  // A sawtooth (sudden drops, slow rises) is strongly asymmetric.
  std::vector<double> saw(100);
  for (std::size_t i = 0; i < saw.size(); ++i) saw[i] = static_cast<double>(i % 10);
  EXPECT_GT(std::abs(time_reversal_asymmetry(saw, 1)), 1.0);
}

TEST(ExtractorTest, CidCeMeasuresComplexity) {
  std::vector<double> smooth(100), rough(100);
  util::Rng rng(3);
  for (std::size_t i = 0; i < 100; ++i) {
    smooth[i] = static_cast<double>(i) * 0.01;
    rough[i] = rng.gaussian();
  }
  EXPECT_GT(cid_ce(rough, true), cid_ce(smooth, true));
  EXPECT_DOUBLE_EQ(cid_ce(std::vector<double>(5, 1.0), true), 0.0);
}

TEST(ExtractorTest, ApproximateEntropyRegularVsRandom) {
  std::vector<double> regular(200), random(200);
  util::Rng rng(4);
  for (std::size_t i = 0; i < 200; ++i) {
    regular[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 10.0);
    random[i] = rng.gaussian();
  }
  const double apen_regular = approximate_entropy(regular, 2, 0.2);
  const double apen_random = approximate_entropy(random, 2, 0.2);
  EXPECT_LT(apen_regular, apen_random);
  EXPECT_DOUBLE_EQ(approximate_entropy(std::vector<double>(3, 1.0), 2, 0.2), 0.0);
}

TEST(ExtractorTest, ApproximateEntropyHandlesLongSeries) {
  std::vector<double> xs(5000);
  util::Rng rng(5);
  for (auto& x : xs) x = rng.gaussian();
  const double apen = approximate_entropy(xs, 2, 0.2);  // subsampled internally
  EXPECT_GT(apen, 0.0);
  EXPECT_TRUE(std::isfinite(apen));
}

TEST(ExtractorTest, BinnedEntropyUniformVsConcentrated) {
  std::vector<double> uniform(1000), concentrated(1000, 0.0);
  util::Rng rng(6);
  for (auto& x : uniform) x = rng.uniform();
  concentrated[0] = 1.0;  // all mass in one bin except a single point
  EXPECT_GT(binned_entropy(uniform, 10), binned_entropy(concentrated, 10));
  EXPECT_DOUBLE_EQ(binned_entropy(std::vector<double>(5, 2.0), 10), 0.0);
}

TEST(ExtractorTest, BenfordCorrelationOfBenfordData) {
  // Exponential growth follows Benford's law closely.
  std::vector<double> exponential;
  double value = 1.0;
  for (int i = 0; i < 500; ++i) {
    exponential.push_back(value);
    value *= 1.07;
  }
  EXPECT_GT(benford_correlation(exponential), 0.95);
  // Constant-leading-digit data anti-correlates.
  std::vector<double> nines(100, 9.5);
  EXPECT_LT(benford_correlation(nines), 0.0);
  EXPECT_DOUBLE_EQ(benford_correlation(std::vector<double>{0.0, 0.0}), 0.0);
}

TEST(ExtractorTest, LinearTrendOnExactLine) {
  std::vector<double> xs(20);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = 3.0 * static_cast<double>(i) + 7.0;
  const LinearTrendResult trend = linear_trend(xs);
  EXPECT_NEAR(trend.slope, 3.0, 1e-9);
  EXPECT_NEAR(trend.intercept, 7.0, 1e-9);
  EXPECT_NEAR(trend.r_squared, 1.0, 1e-9);
}

TEST(ExtractorTest, LinearTrendOnNoiseHasLowR2) {
  util::Rng rng(7);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.gaussian();
  EXPECT_LT(linear_trend(xs).r_squared, 0.05);
}

TEST(RegistryTest, HasUniqueNamesAndReasonableSize) {
  const auto& registry = feature_registry();
  EXPECT_GE(registry.size(), 60u);
  std::set<std::string> names;
  for (const auto& def : registry) {
    EXPECT_TRUE(names.insert(def.name).second) << "duplicate " << def.name;
  }
}

TEST(RegistryTest, PaperNamedFeaturesPresent) {
  // §3.1/§4.2.1 name these features explicitly.
  std::set<std::string> names;
  for (const auto& def : feature_registry()) names.insert(def.name);
  EXPECT_TRUE(names.contains("approximate_entropy_m2_r02"));
  EXPECT_TRUE(names.contains("variation_coefficient"));
  EXPECT_TRUE(names.contains("benford_correlation"));
  EXPECT_TRUE(names.contains("c3_lag_1"));
  EXPECT_TRUE(names.contains("spectral_total_power"));  // power spectral density
  EXPECT_TRUE(names.contains("mean"));
  EXPECT_TRUE(names.contains("maximum"));
}

TEST(RegistryTest, ComputeAllFeaturesIsFiniteOnPathologicalInput) {
  const std::vector<double> empty;
  const std::vector<double> constant(50, 1e12);
  for (const auto& series : {empty, constant}) {
    const auto values = compute_all_features(series);
    ASSERT_EQ(values.size(), features_per_metric());
    for (const double v : values) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(FeatureMatrixTest, ColumnNamesCrossProduct) {
  const std::vector<std::string> metrics{"A::meminfo", "B::vmstat"};
  const auto names = feature_column_names(metrics);
  ASSERT_EQ(names.size(), 2 * features_per_metric());
  EXPECT_EQ(names.front(), "A::meminfo::" + feature_registry().front().name);
  EXPECT_EQ(names[features_per_metric()],
            "B::vmstat::" + feature_registry().front().name);
}

TEST(FeatureMatrixTest, ExtractNodeFeaturesShapeAndOrder) {
  tensor::Matrix values(50, 3);
  for (std::size_t t = 0; t < 50; ++t) {
    values(t, 0) = static_cast<double>(t);       // ramp
    values(t, 1) = 5.0;                          // constant
    values(t, 2) = (t % 2 == 0) ? 1.0 : -1.0;    // alternating
  }
  const auto features = extract_node_features(values);
  ASSERT_EQ(features.size(), 3 * features_per_metric());
  // Locate the "mean" feature in the registry.
  std::size_t mean_idx = 0;
  for (; mean_idx < feature_registry().size(); ++mean_idx) {
    if (feature_registry()[mean_idx].name == "mean") break;
  }
  EXPECT_DOUBLE_EQ(features[1 * features_per_metric() + mean_idx], 5.0);
  EXPECT_NEAR(features[2 * features_per_metric() + mean_idx], 0.0, 1e-12);
}

TEST(FeatureDatasetTest, SelectionAndConcat) {
  features::FeatureDataset a;
  a.X = tensor::Matrix{{1, 2}, {3, 4}};
  a.labels = {0, 1};
  a.meta.resize(2);
  a.feature_names = {"f0", "f1"};

  const auto rows = a.select_rows({1});
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.labels[0], 1);
  EXPECT_DOUBLE_EQ(rows.X(0, 0), 3.0);

  const auto cols = a.select_columns({1});
  EXPECT_EQ(cols.feature_names, std::vector<std::string>{"f1"});
  EXPECT_DOUBLE_EQ(cols.X(1, 0), 4.0);

  const auto both = concat(a, a);
  EXPECT_EQ(both.size(), 4u);
  EXPECT_EQ(both.anomalous_count(), 2u);
  EXPECT_DOUBLE_EQ(both.anomaly_ratio(), 0.5);

  features::FeatureDataset other;
  other.X = tensor::Matrix{{1.0}};
  other.labels = {0};
  other.meta.resize(1);
  other.feature_names = {"different"};
  EXPECT_THROW(concat(a, other), std::invalid_argument);
}

}  // namespace
}  // namespace prodigy::features
