#include "features/chi_square.hpp"

#include "test_helpers.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace prodigy::features {
namespace {

TEST(Chi2Test, DiscriminativeFeatureRankedFirst) {
  // Column 0 separates classes perfectly; columns 1-2 are uniform noise.
  util::Rng rng(1);
  tensor::Matrix X(200, 3);
  std::vector<int> y(200);
  for (std::size_t r = 0; r < 200; ++r) {
    y[r] = r < 100 ? 0 : 1;
    X(r, 0) = y[r] == 1 ? rng.uniform(0.8, 1.0) : rng.uniform(0.0, 0.2);
    X(r, 1) = rng.uniform();
    X(r, 2) = rng.uniform();
  }
  const auto scores = chi2_scores(X, y);
  EXPECT_GT(scores[0], scores[1] * 5.0);
  EXPECT_GT(scores[0], scores[2] * 5.0);
  const auto top = top_k_indices(scores, 1);
  EXPECT_EQ(top[0], 0u);
}

TEST(Chi2Test, RequiresBothClasses) {
  tensor::Matrix X(4, 2, 1.0);
  EXPECT_THROW(chi2_scores(X, {0, 0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(chi2_scores(X, {1, 1, 1, 1}), std::invalid_argument);
}

TEST(Chi2Test, RejectsNegativeFeatures) {
  tensor::Matrix X{{-1.0, 0.5}, {0.2, 0.3}};
  EXPECT_THROW(chi2_scores(X, {0, 1}), std::invalid_argument);
}

TEST(Chi2Test, ClampsFloatingPointNoiseBelowZero) {
  // Min-max scaling can leave values a hair under 0; they must be treated
  // as exact zeros, not rejected.
  tensor::Matrix noisy{{-1e-12, 0.5}, {0.2, 0.3}, {-5e-10, 0.4}, {0.9, 0.1}};
  tensor::Matrix exact{{0.0, 0.5}, {0.2, 0.3}, {0.0, 0.4}, {0.9, 0.1}};
  const std::vector<int> y{0, 0, 1, 1};
  const auto noisy_scores = chi2_scores(noisy, y);
  const auto exact_scores = chi2_scores(exact, y);
  ASSERT_EQ(noisy_scores.size(), exact_scores.size());
  for (std::size_t c = 0; c < noisy_scores.size(); ++c) {
    EXPECT_NEAR(noisy_scores[c], exact_scores[c], 1e-9);
  }
}

TEST(Chi2Test, GenuinelyNegativeStillRejected) {
  tensor::Matrix X{{-1e-6, 0.5}, {0.2, 0.3}};
  EXPECT_THROW(chi2_scores(X, {0, 1}), std::invalid_argument);
}

TEST(Chi2Test, RejectsSizeMismatch) {
  tensor::Matrix X(4, 2, 1.0);
  EXPECT_THROW(chi2_scores(X, {0, 1}), std::invalid_argument);
}

TEST(Chi2Test, AllZeroFeatureScoresZero) {
  tensor::Matrix X(4, 2, 0.0);
  X(0, 1) = 1.0;
  X(3, 1) = 2.0;
  const auto scores = chi2_scores(X, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_GT(scores[1], 0.0);
}

TEST(Chi2Test, BalancedFeatureScoresNearZero) {
  // Equal class sums -> observed == expected -> chi2 == 0.
  tensor::Matrix X{{1.0}, {2.0}, {1.0}, {2.0}};
  const auto scores = chi2_scores(X, {0, 0, 1, 1});
  EXPECT_NEAR(scores[0], 0.0, 1e-12);
}

TEST(TopKTest, OrdersDescendingAndDeterministicTies) {
  const std::vector<double> scores{1.0, 5.0, 3.0, 5.0};
  const auto top = top_k_indices(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // ties broken by lower index
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
}

TEST(TopKTest, ClampsKToSize) {
  const std::vector<double> scores{1.0, 2.0};
  EXPECT_EQ(top_k_indices(scores, 10).size(), 2u);
}

TEST(SelectFeaturesTest, Chi2PipelineFindsShiftedColumns) {
  // Columns 0..3 shifted for anomalies, 4..9 identical noise.
  util::Rng rng(2);
  FeatureDataset dataset;
  dataset.X = tensor::Matrix(300, 10);
  dataset.labels.resize(300);
  dataset.meta.resize(300);
  for (std::size_t r = 0; r < 300; ++r) {
    dataset.labels[r] = r < 250 ? 0 : 1;
    for (std::size_t c = 0; c < 10; ++c) {
      double value = rng.uniform(0.2, 0.4);
      if (c < 4 && dataset.labels[r] == 1) value += 0.5;
      dataset.X(r, c) = value;
    }
  }
  for (std::size_t c = 0; c < 10; ++c) {
    dataset.feature_names.push_back("f" + std::to_string(c));
  }
  const SelectionResult result = select_features_chi2(dataset, 4);
  ASSERT_EQ(result.selected.size(), 4u);
  for (const auto idx : result.selected) EXPECT_LT(idx, 4u);
}

TEST(SelectFeaturesTest, VarianceSelectionLabelFree) {
  FeatureDataset dataset;
  dataset.X = tensor::Matrix(50, 3);
  util::Rng rng(3);
  for (std::size_t r = 0; r < 50; ++r) {
    dataset.X(r, 0) = 10.0;                        // constant -> score 0
    dataset.X(r, 1) = r % 2 ? 100.0 : -100.0;      // max scaled variance
    dataset.X(r, 2) = rng.uniform(0.0, 0.1) + 5.0; // small spread
  }
  dataset.labels.assign(50, 0);  // single class: chi2 would throw
  dataset.meta.resize(50);
  dataset.feature_names = {"a", "b", "c"};
  const SelectionResult result = select_features_variance(dataset, 2);
  EXPECT_EQ(result.selected[0], 1u);
  EXPECT_DOUBLE_EQ(result.scores[0], 0.0);
}

}  // namespace
}  // namespace prodigy::features
