#include "features/chi_square.hpp"

#include "test_helpers.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace prodigy::features {
namespace {

TEST(Chi2Test, DiscriminativeFeatureRankedFirst) {
  // Column 0 separates classes perfectly; columns 1-2 are uniform noise.
  util::Rng rng(1);
  tensor::Matrix X(200, 3);
  std::vector<int> y(200);
  for (std::size_t r = 0; r < 200; ++r) {
    y[r] = r < 100 ? 0 : 1;
    X(r, 0) = y[r] == 1 ? rng.uniform(0.8, 1.0) : rng.uniform(0.0, 0.2);
    X(r, 1) = rng.uniform();
    X(r, 2) = rng.uniform();
  }
  const auto scores = chi2_scores(X, y);
  EXPECT_GT(scores[0], scores[1] * 5.0);
  EXPECT_GT(scores[0], scores[2] * 5.0);
  const auto top = top_k_indices(scores, 1);
  EXPECT_EQ(top[0], 0u);
}

TEST(Chi2Test, RequiresBothClasses) {
  tensor::Matrix X(4, 2, 1.0);
  EXPECT_THROW(chi2_scores(X, {0, 0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(chi2_scores(X, {1, 1, 1, 1}), std::invalid_argument);
}

TEST(Chi2Test, RejectsNegativeFeatures) {
  tensor::Matrix X{{-1.0, 0.5}, {0.2, 0.3}};
  EXPECT_THROW(chi2_scores(X, {0, 1}), std::invalid_argument);
}

TEST(Chi2Test, TermMatchesClassicFormulaWhenExpectedPositive) {
  // The pseudo-count path only engages at expected == 0; every
  // well-conditioned cell keeps the textbook (O - E)^2 / E value.
  EXPECT_DOUBLE_EQ(chi2_term(10.0, 4.0), 36.0 / 4.0);
  EXPECT_DOUBLE_EQ(chi2_term(0.0, 4.0), 16.0 / 4.0);
  EXPECT_DOUBLE_EQ(chi2_term(4.0, 4.0), 0.0);
}

TEST(Chi2Test, TermZeroExpectedUsesPseudoCount) {
  // expected == 0 with observed > 0 historically contributed NOTHING (the
  // guard silently skipped the cell); it now scores O^2 / 0.5.
  EXPECT_DOUBLE_EQ(chi2_term(10.0, 0.0), 100.0 / 0.5);
  // Any representable evidence counts (observed^2 must not underflow).
  EXPECT_GT(chi2_term(1e-9, 0.0), 0.0);
  // No observation and no expectation is genuinely zero information.
  EXPECT_DOUBLE_EQ(chi2_term(0.0, 0.0), 0.0);
}

TEST(Chi2Test, ScoresUnchangedOnWellConditionedInputs) {
  // Regression pin: on inputs where every expected frequency is positive
  // (all realistic min-max-scaled datasets), chi2_scores must reproduce the
  // pre-pseudo-count arithmetic bit for bit.
  util::Rng rng(7);
  tensor::Matrix X(60, 4);
  std::vector<int> y(60);
  for (std::size_t r = 0; r < 60; ++r) {
    y[r] = r % 3 == 0 ? 1 : 0;
    for (std::size_t c = 0; c < 4; ++c) {
      X(r, c) = c == 0 ? (y[r] ? rng.uniform(0.5, 1.0) : rng.uniform(0.0, 0.5))
                       : rng.uniform();
    }
  }
  const auto scores = chi2_scores(X, y);
  const double p_pos = 20.0 / 60.0;
  for (std::size_t c = 0; c < 4; ++c) {
    double obs_pos = 0.0, obs_neg = 0.0;
    for (std::size_t r = 0; r < 60; ++r) {
      (y[r] ? obs_pos : obs_neg) += X(r, c);
    }
    const double total = obs_pos + obs_neg;
    const double exp_pos = total * p_pos;
    const double exp_neg = total * (1.0 - p_pos);
    // The historical loop body, verbatim.
    double chi2 = 0.0;
    if (exp_pos > 0.0) {
      const double d = obs_pos - exp_pos;
      chi2 += d * d / exp_pos;
    }
    if (exp_neg > 0.0) {
      const double d = obs_neg - exp_neg;
      chi2 += d * d / exp_neg;
    }
    EXPECT_DOUBLE_EQ(scores[c], chi2) << "column " << c;
  }
}

TEST(Chi2Test, ClampsFloatingPointNoiseBelowZero) {
  // Min-max scaling can leave values a hair under 0; they must be treated
  // as exact zeros, not rejected.
  tensor::Matrix noisy{{-1e-12, 0.5}, {0.2, 0.3}, {-5e-10, 0.4}, {0.9, 0.1}};
  tensor::Matrix exact{{0.0, 0.5}, {0.2, 0.3}, {0.0, 0.4}, {0.9, 0.1}};
  const std::vector<int> y{0, 0, 1, 1};
  const auto noisy_scores = chi2_scores(noisy, y);
  const auto exact_scores = chi2_scores(exact, y);
  ASSERT_EQ(noisy_scores.size(), exact_scores.size());
  for (std::size_t c = 0; c < noisy_scores.size(); ++c) {
    EXPECT_NEAR(noisy_scores[c], exact_scores[c], 1e-9);
  }
}

TEST(Chi2Test, GenuinelyNegativeStillRejected) {
  tensor::Matrix X{{-1e-6, 0.5}, {0.2, 0.3}};
  EXPECT_THROW(chi2_scores(X, {0, 1}), std::invalid_argument);
}

TEST(Chi2Test, RejectsSizeMismatch) {
  tensor::Matrix X(4, 2, 1.0);
  EXPECT_THROW(chi2_scores(X, {0, 1}), std::invalid_argument);
}

TEST(Chi2Test, AllZeroFeatureScoresZero) {
  tensor::Matrix X(4, 2, 0.0);
  X(0, 1) = 1.0;
  X(3, 1) = 2.0;
  const auto scores = chi2_scores(X, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_GT(scores[1], 0.0);
}

TEST(Chi2Test, BalancedFeatureScoresNearZero) {
  // Equal class sums -> observed == expected -> chi2 == 0.
  tensor::Matrix X{{1.0}, {2.0}, {1.0}, {2.0}};
  const auto scores = chi2_scores(X, {0, 0, 1, 1});
  EXPECT_NEAR(scores[0], 0.0, 1e-12);
}

TEST(TopKTest, OrdersDescendingAndDeterministicTies) {
  const std::vector<double> scores{1.0, 5.0, 3.0, 5.0};
  const auto top = top_k_indices(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // ties broken by lower index
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
}

TEST(TopKTest, ClampsKToSize) {
  const std::vector<double> scores{1.0, 2.0};
  EXPECT_EQ(top_k_indices(scores, 10).size(), 2u);
}

TEST(SelectFeaturesTest, Chi2PipelineFindsShiftedColumns) {
  // Columns 0..3 shifted for anomalies, 4..9 identical noise.
  util::Rng rng(2);
  FeatureDataset dataset;
  dataset.X = tensor::Matrix(300, 10);
  dataset.labels.resize(300);
  dataset.meta.resize(300);
  for (std::size_t r = 0; r < 300; ++r) {
    dataset.labels[r] = r < 250 ? 0 : 1;
    for (std::size_t c = 0; c < 10; ++c) {
      double value = rng.uniform(0.2, 0.4);
      if (c < 4 && dataset.labels[r] == 1) value += 0.5;
      dataset.X(r, c) = value;
    }
  }
  for (std::size_t c = 0; c < 10; ++c) {
    dataset.feature_names.push_back("f" + std::to_string(c));
  }
  const SelectionResult result = select_features_chi2(dataset, 4);
  ASSERT_EQ(result.selected.size(), 4u);
  for (const auto idx : result.selected) EXPECT_LT(idx, 4u);
}

TEST(SelectFeaturesTest, VarianceSelectionLabelFree) {
  FeatureDataset dataset;
  dataset.X = tensor::Matrix(50, 3);
  util::Rng rng(3);
  for (std::size_t r = 0; r < 50; ++r) {
    dataset.X(r, 0) = 10.0;                        // constant -> score 0
    dataset.X(r, 1) = r % 2 ? 100.0 : -100.0;      // max scaled variance
    dataset.X(r, 2) = rng.uniform(0.0, 0.1) + 5.0; // small spread
  }
  dataset.labels.assign(50, 0);  // single class: chi2 would throw
  dataset.meta.resize(50);
  dataset.feature_names = {"a", "b", "c"};
  const SelectionResult result = select_features_variance(dataset, 2);
  EXPECT_EQ(result.selected[0], 1u);
  EXPECT_DOUBLE_EQ(result.scores[0], 0.0);
}

}  // namespace
}  // namespace prodigy::features
