#include "pipeline/scaler.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>

namespace prodigy::pipeline {
namespace {

TEST(ScalerTest, KindStringRoundTrip) {
  EXPECT_EQ(scaler_kind_from_string(to_string(ScalerKind::MinMax)), ScalerKind::MinMax);
  EXPECT_EQ(scaler_kind_from_string(to_string(ScalerKind::Standard)),
            ScalerKind::Standard);
  EXPECT_THROW(scaler_kind_from_string("robust"), std::invalid_argument);
}

TEST(ScalerTest, MinMaxMapsTrainingDataToUnitInterval) {
  tensor::Matrix X{{0.0, -10.0}, {5.0, 0.0}, {10.0, 10.0}};
  Scaler scaler(ScalerKind::MinMax);
  const auto scaled = scaler.fit_transform(X);
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(scaled(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(scaled(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(scaled(2, 1), 1.0);
}

TEST(ScalerTest, MinMaxTestDataMayExceedRange) {
  tensor::Matrix train{{0.0}, {10.0}};
  Scaler scaler(ScalerKind::MinMax);
  scaler.fit(train);
  const tensor::Matrix test{{20.0}};
  EXPECT_DOUBLE_EQ(scaler.transform(test)(0, 0), 2.0);  // no clamping (sklearn)
}

TEST(ScalerTest, StandardZeroMeanUnitVariance) {
  util::Rng rng(1);
  tensor::Matrix X(500, 2);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    X(r, 0) = rng.gaussian(5.0, 3.0);
    X(r, 1) = rng.gaussian(-2.0, 0.5);
  }
  Scaler scaler(ScalerKind::Standard);
  const auto scaled = scaler.fit_transform(X);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t r = 0; r < X.rows(); ++r) mean += scaled(r, c);
    mean /= static_cast<double>(X.rows());
    for (std::size_t r = 0; r < X.rows(); ++r) {
      var += (scaled(r, c) - mean) * (scaled(r, c) - mean);
    }
    var /= static_cast<double>(X.rows());
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(ScalerTest, ConstantColumnsStayFinite) {
  tensor::Matrix X{{3.0}, {3.0}, {3.0}};
  for (const auto kind : {ScalerKind::MinMax, ScalerKind::Standard}) {
    Scaler scaler(kind);
    const auto scaled = scaler.fit_transform(X);
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      EXPECT_TRUE(std::isfinite(scaled.data()[i]));
    }
  }
}

TEST(ScalerTest, InverseTransformRoundTrips) {
  util::Rng rng(2);
  tensor::Matrix X(20, 3);
  for (std::size_t i = 0; i < X.size(); ++i) X.data()[i] = rng.gaussian(7.0, 4.0);
  for (const auto kind : {ScalerKind::MinMax, ScalerKind::Standard}) {
    Scaler scaler(kind);
    const auto recovered = scaler.inverse_transform(scaler.fit_transform(X));
    for (std::size_t i = 0; i < X.size(); ++i) {
      EXPECT_NEAR(recovered.data()[i], X.data()[i], 1e-9);
    }
  }
}

TEST(ScalerTest, UsageErrors) {
  Scaler scaler;
  const tensor::Matrix X(2, 2, 1.0);
  EXPECT_THROW(scaler.transform(X), std::logic_error);
  EXPECT_THROW(scaler.inverse_transform(X), std::logic_error);
  EXPECT_THROW(scaler.fit(tensor::Matrix{}), std::invalid_argument);
  scaler.fit(X);
  EXPECT_THROW(scaler.transform(tensor::Matrix(2, 3, 1.0)), std::invalid_argument);
}

TEST(ScalerTest, MinMaxFitSkipsNonFiniteEntries) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  tensor::Matrix X{{0.0, nan}, {nan, 2.0}, {10.0, 4.0}, {5.0, inf}};
  Scaler scaler(ScalerKind::MinMax);
  scaler.fit(X);
  // Column 0: finite values {0, 10, 5}; column 1: finite values {2, 4}.
  const tensor::Matrix probe{{0.0, 2.0}, {10.0, 4.0}};
  const auto scaled = scaler.transform(probe);
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(scaled(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(scaled(1, 1), 1.0);
}

TEST(ScalerTest, StandardFitSkipsNonFiniteEntries) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  tensor::Matrix X{{1.0}, {nan}, {3.0}, {nan}};
  Scaler scaler(ScalerKind::Standard);
  scaler.fit(X);
  // Finite values {1, 3}: mean 2, population stddev 1.
  const tensor::Matrix probe{{2.0}, {3.0}};
  const auto scaled = scaler.transform(probe);
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled(1, 0), 1.0);
}

TEST(ScalerTest, AllNanColumnThrowsDescriptiveError) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  tensor::Matrix X{{1.0, nan}, {2.0, nan}};
  for (const auto kind : {ScalerKind::MinMax, ScalerKind::Standard}) {
    Scaler scaler(kind);
    try {
      scaler.fit(X);
      FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("column 1"), std::string::npos);
      EXPECT_NE(std::string(error.what()).find("finite"), std::string::npos);
    }
  }
}

TEST(ScalerTest, SaveLoadPreservesTransform) {
  util::Rng rng(3);
  tensor::Matrix X(10, 4);
  for (std::size_t i = 0; i < X.size(); ++i) X.data()[i] = rng.uniform(-5.0, 5.0);
  Scaler scaler(ScalerKind::Standard);
  scaler.fit(X);

  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_scaler_test.bin").string();
  {
    util::BinaryWriter writer(path);
    scaler.save(writer);
  }
  util::BinaryReader reader(path);
  const Scaler loaded = Scaler::load(reader);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.kind(), ScalerKind::Standard);
  const auto a = scaler.transform(X);
  const auto b = loaded.transform(X);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
}

}  // namespace
}  // namespace prodigy::pipeline
