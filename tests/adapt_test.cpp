// Unit tests for the online-adaptation subsystem (src/adapt/): the detector
// registry, the healthy-sample reservoir, the Page–Hinkley drift monitor,
// and the AdaptiveModelManager's refit/validate/swap cycle driven directly
// (no streaming stack; tests/adapt_stream_test.cpp covers the integration).
#include "adapt/detector_registry.hpp"
#include "adapt/drift_monitor.hpp"
#include "adapt/healthy_reservoir.hpp"
#include "adapt/model_manager.hpp"
#include "core/model_trainer.hpp"
#include "stream/event_bus.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

namespace {

using namespace prodigy;

// ---------------------------------------------------------------------------
// DetectorRegistry

TEST(DetectorRegistryTest, BuiltinZooRegisteredInOrder) {
  const auto& registry = adapt::DetectorRegistry::global();
  const std::vector<std::string> expected = {
      "prodigy", "usad", "majority", "random", "isolation-forest",
      "lof",     "kmeans", "gmm",    "pca"};
  const auto names = registry.names();
  ASSERT_GE(names.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(names[i], expected[i]);
    EXPECT_TRUE(registry.contains(expected[i]));
  }
  EXPECT_EQ(registry.display_name("prodigy"), "Prodigy");
  EXPECT_EQ(registry.display_name("usad"), "USAD");
  EXPECT_EQ(registry.display_name("majority"), "Majority Label Prediction");
  EXPECT_EQ(registry.display_name("lof"), "Local Outlier Factor");
}

TEST(DetectorRegistryTest, MakeConstructsCheapBaselines) {
  const auto& registry = adapt::DetectorRegistry::global();
  for (const auto* name : {"random", "majority", "isolation-forest", "lof"}) {
    const auto detector = registry.make(name);
    ASSERT_NE(detector, nullptr) << name;
    EXPECT_FALSE(detector->name().empty());
  }
}

TEST(DetectorRegistryTest, UnknownNameThrows) {
  const auto& registry = adapt::DetectorRegistry::global();
  EXPECT_THROW((void)registry.make("no-such-detector"), std::out_of_range);
  EXPECT_THROW((void)registry.display_name("no-such-detector"),
               std::out_of_range);
  EXPECT_FALSE(registry.contains("no-such-detector"));
}

TEST(DetectorRegistryTest, OpenRegistrationAndBoundFactory) {
  adapt::DetectorRegistry registry;  // project-local, not the global zoo
  std::vector<std::uint64_t> seen_seeds;
  registry.register_detector(
      "stub", "Stub Detector",
      [&seen_seeds](const adapt::DetectorOptions& options) {
        seen_seeds.push_back(options.seed);
        return adapt::DetectorRegistry::global().make("random", options);
      });
  EXPECT_TRUE(registry.contains("stub"));
  EXPECT_EQ(registry.display_name("stub"), "Stub Detector");
  ASSERT_EQ(registry.names(), std::vector<std::string>{"stub"});

  adapt::DetectorOptions options;
  options.seed = 123;
  const auto bound = registry.factory("stub", options);
  // The bound factory owns copies of name + options: usable repeatedly and
  // after the registry entry is replaced.
  EXPECT_NE(bound(), nullptr);
  registry.register_detector("stub", "Replaced",
                             [](const adapt::DetectorOptions& o) {
                               return adapt::DetectorRegistry::global().make(
                                   "majority", o);
                             });
  EXPECT_NE(bound(), nullptr);
  ASSERT_EQ(seen_seeds.size(), 2u);
  EXPECT_EQ(seen_seeds[0], 123u);
  EXPECT_EQ(seen_seeds[1], 123u);
}

// ---------------------------------------------------------------------------
// HealthyReservoir

std::vector<double> tagged_row(double tag, std::size_t width = 3) {
  std::vector<double> row(width, tag);
  return row;
}

TEST(HealthyReservoirTest, BoundedAndFullyAccounted) {
  adapt::HealthyReservoir reservoir({.capacity = 8, .holdout_capacity = 0,
                                     .holdout_stride = 0, .seed = 5});
  for (int i = 0; i < 100; ++i) reservoir.offer(tagged_row(i));
  EXPECT_EQ(reservoir.size(), 8u);
  EXPECT_EQ(reservoir.holdout_size(), 0u);
  EXPECT_EQ(reservoir.offered(), 100u);
  const auto snap = reservoir.snapshot();
  EXPECT_EQ(snap.train.rows(), 8u);
  EXPECT_EQ(snap.train.cols(), 3u);
  EXPECT_EQ(snap.holdout.rows(), 0u);
  EXPECT_EQ(snap.offered, 100u);
}

TEST(HealthyReservoirTest, DeterministicForFixedOfferOrder) {
  const adapt::HealthyReservoirConfig config{
      .capacity = 16, .holdout_capacity = 4, .holdout_stride = 4, .seed = 17};
  adapt::HealthyReservoir a(config);
  adapt::HealthyReservoir b(config);
  for (int i = 0; i < 200; ++i) {
    a.offer(tagged_row(i));
    b.offer(tagged_row(i));
  }
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();
  ASSERT_EQ(sa.train.rows(), sb.train.rows());
  ASSERT_EQ(sa.holdout.rows(), sb.holdout.rows());
  for (std::size_t r = 0; r < sa.train.rows(); ++r) {
    EXPECT_EQ(sa.train(r, 0), sb.train(r, 0));
  }
  for (std::size_t r = 0; r < sa.holdout.rows(); ++r) {
    EXPECT_EQ(sa.holdout(r, 0), sb.holdout(r, 0));
  }
}

TEST(HealthyReservoirTest, HoldoutSliceIsDisjointFromTrainPool) {
  // Capacities exceed the offer count, so every admitted row is retained and
  // the stride routing is fully observable: every 4th arrival (1-based
  // ordinals 4, 8, ... = tags 3, 7, ...) validates.
  adapt::HealthyReservoir reservoir({.capacity = 64, .holdout_capacity = 16,
                                     .holdout_stride = 4, .seed = 17});
  for (int i = 0; i < 40; ++i) reservoir.offer(tagged_row(i));
  EXPECT_EQ(reservoir.size(), 30u);
  EXPECT_EQ(reservoir.holdout_size(), 10u);
  const auto snap = reservoir.snapshot();
  std::set<double> train_tags, holdout_tags;
  for (std::size_t r = 0; r < snap.train.rows(); ++r) {
    train_tags.insert(snap.train(r, 0));
  }
  for (std::size_t r = 0; r < snap.holdout.rows(); ++r) {
    holdout_tags.insert(snap.holdout(r, 0));
    EXPECT_EQ(static_cast<int>(snap.holdout(r, 0)) % 4, 3);
  }
  for (const double tag : holdout_tags) {
    EXPECT_EQ(train_tags.count(tag), 0u) << "row validated AND trained: " << tag;
  }
}

TEST(HealthyReservoirTest, WidthMismatchCountedNotStored) {
  adapt::HealthyReservoir reservoir({.capacity = 8, .holdout_stride = 0});
  reservoir.offer(tagged_row(1.0, 3));  // pins width 3
  reservoir.offer(tagged_row(2.0, 5));
  reservoir.offer(tagged_row(3.0, 3));
  EXPECT_EQ(reservoir.size(), 2u);
  EXPECT_EQ(reservoir.offered(), 3u);
  EXPECT_EQ(reservoir.mismatched(), 1u);
}

TEST(HealthyReservoirTest, ClearDropsRowsKeepsCounters) {
  adapt::HealthyReservoir reservoir({.capacity = 8, .holdout_stride = 0});
  for (int i = 0; i < 5; ++i) reservoir.offer(tagged_row(i));
  reservoir.clear();
  EXPECT_EQ(reservoir.size(), 0u);
  EXPECT_EQ(reservoir.offered(), 5u);
  reservoir.offer(tagged_row(9.0));  // width stays pinned at 3
  EXPECT_EQ(reservoir.size(), 1u);
  reservoir.offer(tagged_row(9.0, 4));
  EXPECT_EQ(reservoir.mismatched(), 1u);
}

TEST(HealthyReservoirTest, InvalidConfigThrows) {
  EXPECT_THROW(adapt::HealthyReservoir({.capacity = 0}), std::invalid_argument);
  EXPECT_THROW(adapt::HealthyReservoir({.capacity = 8, .holdout_stride = 1}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// DriftMonitor

TEST(DriftMonitorTest, StableStreamNeverFlags) {
  adapt::DriftMonitor monitor({.warmup_observations = 8, .delta = 0.02,
                               .lambda = 4.0});
  util::Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    EXPECT_FALSE(monitor.observe(1.0 + 0.01 * rng.gaussian()));
  }
  EXPECT_TRUE(monitor.armed());
  EXPECT_EQ(monitor.drifts_detected(), 0u);
  EXPECT_LT(monitor.statistic(), 4.0);
}

TEST(DriftMonitorTest, UpwardShiftFlagsAndResets) {
  adapt::DriftMonitor monitor({.warmup_observations = 8, .delta = 0.02,
                               .lambda = 4.0});
  for (int i = 0; i < 8; ++i) monitor.observe(1.0);
  ASSERT_TRUE(monitor.armed());
  bool flagged = false;
  int steps = 0;
  while (!flagged && steps < 200) {
    flagged = monitor.observe(5.0);
    ++steps;
  }
  EXPECT_TRUE(flagged) << "5x error shift never flagged in 200 observations";
  EXPECT_GT(monitor.last_drift_statistic(), 4.0);
  EXPECT_EQ(monitor.drifts_detected(), 1u);
  // A flag resets to cold warm-up: the next episode is independent.
  EXPECT_FALSE(monitor.armed());
  EXPECT_EQ(monitor.statistic(), 0.0);
}

TEST(DriftMonitorTest, DownwardShiftNeverFlags) {
  adapt::DriftMonitor monitor({.warmup_observations = 8, .delta = 0.02,
                               .lambda = 4.0});
  for (int i = 0; i < 8; ++i) monitor.observe(1.0);
  for (int i = 0; i < 300; ++i) EXPECT_FALSE(monitor.observe(0.05));
  EXPECT_EQ(monitor.drifts_detected(), 0u);
}

TEST(DriftMonitorTest, NonFiniteScoresIgnored) {
  adapt::DriftMonitor monitor({.warmup_observations = 4});
  monitor.observe(std::numeric_limits<double>::quiet_NaN());
  monitor.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(monitor.observations(), 0u);
  for (int i = 0; i < 4; ++i) monitor.observe(1.0);
  EXPECT_TRUE(monitor.armed());
  EXPECT_EQ(monitor.observations(), 4u);
}

TEST(DriftMonitorTest, InvalidConfigThrows) {
  EXPECT_THROW(adapt::DriftMonitor({.warmup_observations = 0}),
               std::invalid_argument);
  EXPECT_THROW(adapt::DriftMonitor({.warmup_observations = 8, .delta = 0.02,
                                    .lambda = 0.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// AdaptiveModelManager

constexpr std::size_t kCols = 6;

/// A healthy feature row around the training center.
std::vector<double> healthy_row(util::Rng& rng) {
  std::vector<double> row(kCols);
  for (auto& v : row) v = 0.5 + 0.05 * rng.gaussian();
  return row;
}

/// A tiny fitted bundle: VAE trained on synthetic healthy rows.  The manager
/// unit tests drive on_verdict directly, so scaler/metadata stay defaults.
core::ModelBundle tiny_bundle(std::uint64_t seed = 7) {
  tensor::Matrix X(96, kCols);
  util::Rng rng(seed);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto row = healthy_row(rng);
    for (std::size_t c = 0; c < kCols; ++c) X(r, c) = row[c];
  }
  core::ProdigyConfig config;
  config.vae.encoder_hidden = {8, 4};
  config.vae.latent_dim = 2;
  config.vae.seed = seed;
  config.train.epochs = 40;
  config.train.batch_size = 16;
  config.train.learning_rate = 2e-3;
  config.train.validation_split = 0.0;
  config.train.early_stopping_patience = 0;
  core::ModelBundle bundle;
  bundle.detector = core::ProdigyDetector(config);
  bundle.detector.fit_healthy(X);
  return bundle;
}

adapt::AdaptationConfig fast_adapt_config() {
  adapt::AdaptationConfig config;
  config.reservoir = {.capacity = 128, .holdout_capacity = 32,
                      .holdout_stride = 4, .seed = 17};
  config.drift = {.warmup_observations = 8, .delta = 0.02, .lambda = 2.0};
  config.min_refit_samples = 32;
  config.min_holdout_samples = 4;
  config.refit_epochs = 20;
  config.validation_margin = 4.0;     // generous: unit tests assert mechanics
  config.max_false_alarm_rate = 0.5;  // (the bench asserts quality)
  config.synchronous = true;
  return config;
}

stream::VerdictEvent scored_verdict(double score, double threshold,
                                    std::uint64_t window) {
  stream::VerdictEvent event;
  event.job_id = 1;
  event.component_id = 1;
  event.window_index = window;
  event.score = score;
  event.threshold = threshold;
  event.anomalous = score > threshold;
  return event;
}

TEST(AdaptiveModelManagerTest, InitialGenerationIsOneAndLeaseServes) {
  adapt::AdaptiveModelManager manager(tiny_bundle(), fast_adapt_config());
  EXPECT_EQ(manager.generation(), 1u);
  const auto lease = manager.acquire();
  EXPECT_EQ(lease.generation, 1u);
  ASSERT_NE(lease.bundle, nullptr);
  EXPECT_TRUE(lease.bundle->detector.fitted());
  const auto stats = manager.adaptation_stats();
  EXPECT_EQ(stats.generation, 1u);
  EXPECT_EQ(stats.swaps_completed, 0u);
}

TEST(AdaptiveModelManagerTest, UnfittedInitialBundleRejected) {
  EXPECT_THROW(adapt::AdaptiveModelManager(core::ModelBundle(),
                                           fast_adapt_config()),
               std::invalid_argument);
}

TEST(AdaptiveModelManagerTest, OnlyHealthyVerdictsFeedReservoir) {
  adapt::AdaptiveModelManager manager(tiny_bundle(), fast_adapt_config());
  util::Rng rng(11);
  const auto healthy = healthy_row(rng);
  manager.on_verdict(scored_verdict(0.1, 1.0, 0), healthy);
  EXPECT_EQ(manager.reservoir().offered(), 1u);
  manager.on_verdict(scored_verdict(5.0, 1.0, 1), healthy);  // anomalous
  EXPECT_EQ(manager.reservoir().offered(), 1u);
  EXPECT_EQ(manager.adaptation_stats().reservoir_offered, 1u);
}

TEST(AdaptiveModelManagerTest, DriftTriggersSynchronousRefitAndSwap) {
  stream::EventBus bus;
  std::vector<stream::DriftEvent> events;
  bus.subscribe_drift(
      [&](const stream::DriftEvent& event) { events.push_back(event); });

  auto bundle = tiny_bundle();
  const double threshold = bundle.detector.threshold();
  adapt::AdaptiveModelManager manager(std::move(bundle), fast_adapt_config(),
                                      &bus, "unit");
  util::Rng rng(23);
  std::uint64_t window = 0;
  // Healthy era: fills the reservoir past min_refit_samples and warms up the
  // drift monitor at the baseline error level.
  for (int i = 0; i < 64; ++i) {
    manager.on_verdict(scored_verdict(0.2 * threshold, threshold, window++),
                       healthy_row(rng));
  }
  ASSERT_GE(manager.reservoir().size(), 32u);
  // Creep era: scores rise toward (but stay under) the threshold — the
  // windows still read healthy, yet the error level has clearly shifted.
  int steps = 0;
  while (manager.generation() == 1 && steps < 300) {
    manager.on_verdict(scored_verdict(0.9 * threshold, threshold, window++),
                       healthy_row(rng));
    ++steps;
  }
  EXPECT_EQ(manager.generation(), 2u)
      << "sub-threshold error creep never produced a swap";

  const auto stats = manager.adaptation_stats();
  EXPECT_GE(stats.drifts_detected, 1u);
  EXPECT_EQ(stats.refits_started, 1u);
  EXPECT_EQ(stats.swaps_completed, 1u);
  EXPECT_EQ(stats.swaps_refused, 0u);

  // Lifecycle events: a DriftDetected, then the ModelSwapped for gen 2.
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.front().kind, stream::DriftEvent::Kind::DriftDetected);
  EXPECT_EQ(events.front().scope, "unit");
  bool saw_swap = false;
  for (const auto& event : events) {
    if (event.kind == stream::DriftEvent::Kind::ModelSwapped) {
      saw_swap = true;
      EXPECT_EQ(event.generation, 2u);
    }
  }
  EXPECT_TRUE(saw_swap);
  EXPECT_EQ(bus.drift_events_published(), events.size());

  // The new lease serves the refit candidate atomically.
  const auto lease = manager.acquire();
  EXPECT_EQ(lease.generation, 2u);
  EXPECT_TRUE(lease.bundle->detector.fitted());
}

TEST(AdaptiveModelManagerTest, ImpossibleMarginRefusesCandidate) {
  stream::EventBus bus;
  std::vector<stream::DriftEvent> events;
  bus.subscribe_drift(
      [&](const stream::DriftEvent& event) { events.push_back(event); });
  auto config = fast_adapt_config();
  config.validation_margin = 0.0;  // candidate mean <= 0 is unsatisfiable
  adapt::AdaptiveModelManager manager(tiny_bundle(), config, &bus);
  util::Rng rng(29);
  for (int i = 0; i < 64; ++i) {
    manager.on_verdict(scored_verdict(0.1, 1.0, i), healthy_row(rng));
  }
  EXPECT_EQ(manager.refit_now(),
            adapt::AdaptiveModelManager::RefitOutcome::RefusedValidation);
  EXPECT_EQ(manager.generation(), 1u);
  const auto stats = manager.adaptation_stats();
  EXPECT_EQ(stats.refits_started, 1u);
  EXPECT_EQ(stats.swaps_refused, 1u);
  EXPECT_EQ(stats.swaps_completed, 0u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, stream::DriftEvent::Kind::SwapRefused);
  EXPECT_EQ(events[0].generation, 1u);
}

TEST(AdaptiveModelManagerTest, RefitWithoutSamplesIsANoOp) {
  adapt::AdaptiveModelManager manager(tiny_bundle(), fast_adapt_config());
  EXPECT_EQ(manager.refit_now(),
            adapt::AdaptiveModelManager::RefitOutcome::InsufficientSamples);
  EXPECT_EQ(manager.generation(), 1u);
  EXPECT_EQ(manager.adaptation_stats().refits_started, 0u);
}

TEST(AdaptiveModelManagerTest, ForcedSwapBumpsGenerationRejectsUnfitted) {
  const auto bundle = tiny_bundle();
  adapt::AdaptiveModelManager manager(bundle, fast_adapt_config());
  EXPECT_EQ(manager.swap_model(bundle), 2u);
  EXPECT_EQ(manager.swap_model(bundle), 3u);
  EXPECT_EQ(manager.acquire().generation, 3u);
  EXPECT_EQ(manager.adaptation_stats().swaps_completed, 2u);
  EXPECT_THROW((void)manager.swap_model(core::ModelBundle()),
               std::invalid_argument);
  EXPECT_EQ(manager.generation(), 3u);  // failed swap left the slot alone
}

}  // namespace
