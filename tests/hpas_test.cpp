#include "hpas/anomalies.hpp"

#include "telemetry/app_profile.hpp"
#include "telemetry/generator.hpp"
#include "telemetry/metrics.hpp"
#include "tensor/stats.hpp"

#include <gtest/gtest.h>

namespace prodigy::hpas {
namespace {

using telemetry::ResourceState;

TEST(AnomalySpecTest, Table2HasTenConfigurations) {
  const auto configs = table2_configurations();
  EXPECT_EQ(configs.size(), 10u);  // 2 cpuoccupy + 2 cachecopy + 3 membw + 3 memleak
  std::size_t memleak = 0, membw = 0, cpu = 0, cache = 0;
  for (const auto& config : configs) {
    EXPECT_TRUE(config.is_anomalous());
    switch (config.kind) {
      case AnomalyKind::Memleak: ++memleak; break;
      case AnomalyKind::Membw: ++membw; break;
      case AnomalyKind::Cpuoccupy: ++cpu; break;
      case AnomalyKind::Cachecopy: ++cache; break;
      default: FAIL() << "unexpected kind in Table 2";
    }
  }
  EXPECT_EQ(memleak, 3u);
  EXPECT_EQ(membw, 3u);
  EXPECT_EQ(cpu, 2u);
  EXPECT_EQ(cache, 2u);
}

TEST(AnomalySpecTest, HealthySpecIsNotAnomalous) {
  EXPECT_FALSE(healthy_spec().is_anomalous());
  util::Rng rng(1);
  EXPECT_EQ(make_injector(healthy_spec(), rng), nullptr);
}

TEST(AnomalySpecTest, KindStringRoundTrip) {
  for (const auto kind : {AnomalyKind::None, AnomalyKind::Memleak, AnomalyKind::Membw,
                          AnomalyKind::Cpuoccupy, AnomalyKind::Cachecopy,
                          AnomalyKind::Iobw, AnomalyKind::Netoccupy}) {
    EXPECT_EQ(anomaly_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(anomaly_kind_from_string("quantum"), std::invalid_argument);
}

// Each injector must leave its documented signature on the resource state.
class InjectorSignatureTest : public ::testing::Test {
 protected:
  ResourceState perturb(AnomalyKind kind, double intensity, double t_frac) {
    util::Rng rng(5);
    AnomalySpec spec{kind, intensity, "test"};
    auto injector = make_injector(spec, rng);
    ResourceState state;  // defaults = light baseline load
    injector->perturb(t_frac, state, rng);
    return state;
  }
};

TEST_F(InjectorSignatureTest, MemleakGrowsAnonymousMemoryOverTime) {
  const ResourceState early = perturb(AnomalyKind::Memleak, 1.0, 0.1);
  const ResourceState late = perturb(AnomalyKind::Memleak, 1.0, 0.9);
  EXPECT_GT(late.mem_anon_frac, early.mem_anon_frac);
  EXPECT_GT(late.mem_used_frac, 0.6);  // big leak late in the run
}

TEST_F(InjectorSignatureTest, MemleakTriggersReclaimUnderPressure) {
  const ResourceState late = perturb(AnomalyKind::Memleak, 1.0, 0.95);
  EXPECT_GT(late.reclaim_rate, 0.0);
  EXPECT_GT(late.swap_rate, 0.0);
}

TEST_F(InjectorSignatureTest, MembwRaisesBandwidthPressureAndSlowsVictim) {
  ResourceState base;
  const ResourceState hit = perturb(AnomalyKind::Membw, 1.0, 0.5);
  EXPECT_GT(hit.membw_pressure, base.membw_pressure + 0.5);
  EXPECT_LT(hit.page_fault_rate, base.page_fault_rate);  // victim slowed
}

TEST_F(InjectorSignatureTest, CpuoccupyAddsUserCpu) {
  ResourceState base;
  const ResourceState hit = perturb(AnomalyKind::Cpuoccupy, 1.0, 0.5);
  EXPECT_GT(hit.cpu_user, base.cpu_user + 0.5);
  EXPECT_GT(hit.runnable_procs, base.runnable_procs);
}

TEST_F(InjectorSignatureTest, CpuoccupyScalesWithUtilization) {
  const ResourceState full = perturb(AnomalyKind::Cpuoccupy, 1.0, 0.5);
  const ResourceState partial = perturb(AnomalyKind::Cpuoccupy, 0.5, 0.5);
  EXPECT_GT(full.cpu_user, partial.cpu_user);
}

TEST_F(InjectorSignatureTest, CachecopyRaisesCachePressureAndCtx) {
  ResourceState base;
  const ResourceState hit = perturb(AnomalyKind::Cachecopy, 1.0, 0.30);
  EXPECT_GT(hit.cache_pressure, base.cache_pressure);
  EXPECT_GT(hit.ctx_switch_rate, base.ctx_switch_rate);
}

TEST_F(InjectorSignatureTest, IobwRaisesIowaitAndBlockedProcs) {
  ResourceState base;
  const ResourceState hit = perturb(AnomalyKind::Iobw, 1.0, 0.5);
  EXPECT_GT(hit.cpu_iowait, base.cpu_iowait + 0.1);
  EXPECT_GT(hit.blocked_procs, base.blocked_procs);
  EXPECT_GT(hit.io_rate, base.io_rate);
}

TEST_F(InjectorSignatureTest, NetoccupyRaisesInterruptsAndNetRate) {
  ResourceState base;
  const ResourceState hit = perturb(AnomalyKind::Netoccupy, 1.0, 0.5);
  EXPECT_GT(hit.net_rate, base.net_rate);
  EXPECT_GT(hit.interrupt_rate, base.interrupt_rate);
}

// End-to-end signature: a generated memleak run shows the decreasing
// MemFree trend Figure 7 of the paper highlights.
TEST(EndToEndSignatureTest, MemleakRunShowsDecreasingMemFree) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name("LAMMPS");
  config.duration_s = 240;
  config.num_nodes = 1;
  config.dropout = 0.0;
  config.anomaly = {AnomalyKind::Memleak, 1.0, "-s 10M -p 1"};
  const auto anomalous = telemetry::generate_run(config);

  config.anomaly = healthy_spec();
  config.seed = config.seed + 1;
  const auto healthy = telemetry::generate_run(config);

  const auto idx = telemetry::metric_index("MemFree::meminfo");
  auto trend = [&](const telemetry::JobTelemetry& job) {
    const auto series = job.nodes[0].values.column(idx);
    // Compare mean of the last quarter against the first quarter.
    const std::size_t q = series.size() / 4;
    const double head = tensor::mean(std::span(series).subspan(q / 2, q));
    const double tail = tensor::mean(std::span(series).subspan(series.size() - q, q));
    return tail / head;
  };
  EXPECT_LT(trend(anomalous), 0.7);  // clear decreasing trend
  EXPECT_GT(trend(healthy), 0.7);    // roughly flat
}

TEST(EndToEndSignatureTest, CpuoccupyRunRaisesUserTicks) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name("miniMD");
  config.duration_s = 120;
  config.num_nodes = 1;
  config.dropout = 0.0;
  const auto healthy = telemetry::generate_run(config);
  config.anomaly = {AnomalyKind::Cpuoccupy, 1.0, "-u 100%"};
  config.seed = config.seed + 1;
  const auto anomalous = telemetry::generate_run(config);

  const auto idx = telemetry::metric_index("user::procstat");
  // Counters: compare total accumulated increments.
  auto growth = [&](const telemetry::JobTelemetry& job) {
    const auto series = job.nodes[0].values.column(idx);
    return series.back() - series.front();
  };
  EXPECT_GT(growth(anomalous), growth(healthy) * 1.2);
}

}  // namespace
}  // namespace prodigy::hpas
