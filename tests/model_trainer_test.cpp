#include "core/model_trainer.hpp"

#include "features/chi_square.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace prodigy::core {
namespace {

ProdigyConfig fast_config() {
  ProdigyConfig config;
  config.vae.encoder_hidden = {12, 6};
  config.vae.latent_dim = 2;
  config.train.epochs = 80;
  config.train.batch_size = 32;
  config.train.learning_rate = 2e-3;
  config.train.validation_split = 0.0;
  config.train.early_stopping_patience = 0;
  return config;
}

class ModelTrainerTest : public ::testing::Test {
 protected:
  ModelTrainerTest()
      : dataset_(prodigy::testing::blob_feature_dataset(200, 25, 8, 5.0, 1)) {}

  features::FeatureDataset dataset_;
};

TEST_F(ModelTrainerTest, TrainProducesWorkingBundle) {
  const ModelTrainer trainer(fast_config());
  const std::vector<std::size_t> columns{0, 1, 2, 3, 4, 5};
  const ModelBundle bundle = trainer.train(dataset_, columns, "Eclipse");

  EXPECT_EQ(bundle.metadata.system, "Eclipse");
  EXPECT_EQ(bundle.metadata.selected_columns, columns);
  EXPECT_EQ(bundle.metadata.feature_names.size(), columns.size());
  EXPECT_EQ(bundle.metadata.training_samples, 200u);  // healthy rows only
  EXPECT_NEAR(bundle.metadata.train_anomaly_ratio, 25.0 / 225.0, 1e-9);

  // The bundle detects the shifted anomalies end-to-end from full features.
  const auto predictions = bundle.predict_full(dataset_.X);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (dataset_.labels[i] == 1 && predictions[i] == 1) ++hits;
  }
  EXPECT_GT(hits, 20u);  // most of the 25 anomalies flagged
}

TEST_F(ModelTrainerTest, TrainValidatesInputs) {
  const ModelTrainer trainer(fast_config());
  EXPECT_THROW(trainer.train(dataset_, {}, "X"), std::invalid_argument);

  features::FeatureDataset all_anomalous = dataset_;
  std::fill(all_anomalous.labels.begin(), all_anomalous.labels.end(), 1);
  EXPECT_THROW(trainer.train(all_anomalous, {0, 1}, "X"), std::invalid_argument);
}

TEST_F(ModelTrainerTest, BundleSaveLoadRoundTrip) {
  const ModelTrainer trainer(fast_config());
  const std::vector<std::size_t> columns{0, 2, 4, 6};
  const ModelBundle bundle = trainer.train(dataset_, columns, "Volta");

  const auto dir =
      (std::filesystem::temp_directory_path() / "prodigy_bundle_test").string();
  bundle.save(dir);
  const ModelBundle loaded = ModelBundle::load(dir);
  std::filesystem::remove_all(dir);

  EXPECT_EQ(loaded.metadata.system, "Volta");
  EXPECT_EQ(loaded.metadata.selected_columns, columns);
  EXPECT_DOUBLE_EQ(loaded.detector.threshold(), bundle.detector.threshold());

  const auto a = bundle.score_full(dataset_.X);
  const auto b = loaded.score_full(dataset_.X);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST_F(ModelTrainerTest, ChiSquareSelectionFeedsTrainer) {
  // End-to-end offline flow of Fig. 1: scale -> chi2 -> train on top-k.
  pipeline::Scaler scaler(pipeline::ScalerKind::MinMax);
  features::FeatureDataset scaled = dataset_;
  scaled.X = scaler.fit_transform(dataset_.X);
  const auto selection = features::select_features_chi2(scaled, 4);
  ASSERT_EQ(selection.selected.size(), 4u);

  const ModelTrainer trainer(fast_config());
  const ModelBundle bundle = trainer.train(dataset_, selection.selected, "Eclipse");
  EXPECT_EQ(bundle.metadata.feature_names.size(), 4u);
}

TEST(DeploymentMetadataTest, SaveLoadRoundTrip) {
  DeploymentMetadata metadata;
  metadata.system = "Eclipse";
  metadata.feature_names = {"a::b::c", "d::e::f"};
  metadata.selected_columns = {3, 17};
  metadata.train_anomaly_ratio = 0.1;
  metadata.training_samples = 4913;

  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_meta_test.bin").string();
  {
    util::BinaryWriter writer(path);
    metadata.save(writer);
  }
  util::BinaryReader reader(path);
  const DeploymentMetadata loaded = DeploymentMetadata::load(reader);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.system, metadata.system);
  EXPECT_EQ(loaded.feature_names, metadata.feature_names);
  EXPECT_EQ(loaded.selected_columns, metadata.selected_columns);
  EXPECT_DOUBLE_EQ(loaded.train_anomaly_ratio, 0.1);
  EXPECT_EQ(loaded.training_samples, 4913u);
}

}  // namespace
}  // namespace prodigy::core
