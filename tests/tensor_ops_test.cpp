#include "tensor/ops.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace prodigy::tensor {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.gaussian();
  return m;
}

void expect_near(const Matrix& a, const Matrix& b, double tol = 1e-9) {
  ASSERT_TRUE(a.same_shape(b)) << a.shape_string() << " vs " << b.shape_string();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], tol);
  }
}

TEST(OpsTest, MatmulHandComputed) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(OpsTest, MatmulDimensionMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 2)), std::invalid_argument);
}

TEST(OpsTest, MatmulIdentity) {
  const Matrix a = random_matrix(5, 5, 1);
  Matrix eye(5, 5);
  for (std::size_t i = 0; i < 5; ++i) eye(i, i) = 1.0;
  expect_near(matmul(a, eye), a);
  expect_near(matmul(eye, a), a);
}

TEST(OpsTest, LargeMatmulMatchesNaive) {
  // Big enough to trigger the threaded path.
  const Matrix a = random_matrix(70, 130, 2);
  const Matrix b = random_matrix(130, 90, 3);
  const Matrix c = matmul(a, b);
  // Naive spot checks.
  util::Rng rng(4);
  for (int check = 0; check < 20; ++check) {
    const auto r = rng.uniform_index(70);
    const auto j = rng.uniform_index(90);
    double expected = 0.0;
    for (std::size_t k = 0; k < 130; ++k) expected += a(r, k) * b(k, j);
    EXPECT_NEAR(c(r, j), expected, 1e-9);
  }
}

TEST(OpsTest, TransposedVariantsAgree) {
  const Matrix a = random_matrix(7, 11, 5);
  const Matrix b = random_matrix(11, 13, 6);
  expect_near(matmul_transposed_b(a, transpose(b)), matmul(a, b));
  expect_near(matmul_transposed_a(transpose(a), b), matmul(a, b));
}

TEST(OpsTest, MatmulPropagatesNaNThroughZeroWeights) {
  // Regression: gemm_rows used to skip a==0 terms, so a zero weight silently
  // absorbed a NaN/Inf activation (0 * NaN must stay NaN per IEEE 754).  A
  // detector scoring a corrupted window would then report a clean-looking
  // finite error instead of surfacing the corruption.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  Matrix a{{0.0, 0.0}, {1.0, 0.0}};
  Matrix b{{nan, 2.0}, {3.0, inf}};
  const Matrix c = matmul(a, b);
  EXPECT_TRUE(std::isnan(c(0, 0)));  // 0*NaN + 0*3
  EXPECT_TRUE(std::isnan(c(0, 1)));  // 0*2 + 0*Inf
  EXPECT_TRUE(std::isnan(c(1, 0)));  // 1*NaN + 0*3
  EXPECT_TRUE(std::isnan(c(1, 1)));  // 1*2 + 0*Inf -> NaN (0*Inf)
}

TEST(OpsTest, MatmulTransposedAPropagatesNaNThroughZeroWeights) {
  // Same regression on the backward-pass kernel.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Matrix a{{0.0}, {0.0}};        // a^T is 1x2, all zero
  Matrix b{{nan, 1.0}, {2.0, 3.0}};
  const Matrix c = matmul_transposed_a(a, b);
  EXPECT_TRUE(std::isnan(c(0, 0)));      // 0*NaN + 0*2
  EXPECT_DOUBLE_EQ(c(0, 1), 0.0);        // 0*1 + 0*3 stays finite
}

TEST(OpsTest, TransposeRoundTrip) {
  const Matrix a = random_matrix(4, 9, 7);
  expect_near(transpose(transpose(a)), a);
}

TEST(OpsTest, AddRowVector) {
  Matrix m{{1, 2}, {3, 4}};
  const std::vector<double> bias{10, 20};
  add_row_vector(m, bias);
  EXPECT_DOUBLE_EQ(m(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 24.0);
  const std::vector<double> bad{1};
  EXPECT_THROW(add_row_vector(m, bad), std::invalid_argument);
}

TEST(OpsTest, MapAppliesElementwise) {
  const Matrix m{{1, -2}, {-3, 4}};
  const Matrix mapped = map(m, [](double x) { return std::abs(x); });
  EXPECT_DOUBLE_EQ(mapped(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(mapped(1, 0), 3.0);
}

TEST(OpsTest, HadamardInplace) {
  Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{2, 2}, {0.5, 1}};
  hadamard_inplace(a, b);
  EXPECT_DOUBLE_EQ(a(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.5);
}

TEST(OpsTest, ColumnSums) {
  const Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const auto sums = column_sums(m);
  EXPECT_DOUBLE_EQ(sums[0], 9.0);
  EXPECT_DOUBLE_EQ(sums[1], 12.0);
}

TEST(OpsTest, RowwiseMeanAbsError) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{1, 4}, {0, 4}};
  const auto errors = rowwise_mean_abs_error(a, b);
  EXPECT_DOUBLE_EQ(errors[0], 1.0);   // (0 + 2) / 2
  EXPECT_DOUBLE_EQ(errors[1], 1.5);   // (3 + 0) / 2
}

TEST(OpsTest, RowwiseMeanSquaredError) {
  const Matrix a{{1, 2}};
  const Matrix b{{3, 2}};
  const auto errors = rowwise_mean_squared_error(a, b);
  EXPECT_DOUBLE_EQ(errors[0], 2.0);  // (4 + 0) / 2
}

TEST(OpsTest, Distances) {
  const std::vector<double> x{0, 0}, y{3, 4};
  EXPECT_DOUBLE_EQ(squared_distance(x, y), 25.0);
  EXPECT_DOUBLE_EQ(euclidean_distance(x, y), 5.0);
  const std::vector<double> z{1};
  EXPECT_THROW(squared_distance(x, z), std::invalid_argument);
}

TEST(OpsTest, Vstack) {
  const Matrix top{{1, 2}};
  const Matrix bottom{{3, 4}, {5, 6}};
  const Matrix stacked = vstack(top, bottom);
  EXPECT_EQ(stacked.rows(), 3u);
  EXPECT_DOUBLE_EQ(stacked(2, 1), 6.0);
  EXPECT_THROW(vstack(Matrix(1, 2), Matrix(1, 3)), std::invalid_argument);
}

TEST(OpsTest, VstackWithEmpty) {
  const Matrix m{{1, 2}};
  EXPECT_EQ(vstack(Matrix{}, m).rows(), 1u);
  EXPECT_EQ(vstack(m, Matrix{}).rows(), 1u);
}

}  // namespace
}  // namespace prodigy::tensor
