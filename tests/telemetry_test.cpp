#include "telemetry/app_profile.hpp"
#include "telemetry/dataset_builder.hpp"
#include "telemetry/generator.hpp"
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace prodigy::telemetry {
namespace {

TEST(MetricCatalogTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& spec : metric_catalog()) {
    EXPECT_TRUE(names.insert(full_metric_name(spec)).second)
        << "duplicate metric " << full_metric_name(spec);
  }
  EXPECT_EQ(names.size(), metric_count());
}

TEST(MetricCatalogTest, HasAllThreeSamplers) {
  std::set<Sampler> samplers;
  for (const auto& spec : metric_catalog()) samplers.insert(spec.sampler);
  EXPECT_EQ(samplers.size(), 3u);
}

TEST(MetricCatalogTest, PaperMetricsPresent) {
  // Metrics named in the paper's Fig. 7 explanation and §4.1.
  EXPECT_NO_THROW(metric_index("MemFree::meminfo"));
  EXPECT_NO_THROW(metric_index("MemAvailable::meminfo"));
  EXPECT_NO_THROW(metric_index("AnonPages::meminfo"));
  EXPECT_NO_THROW(metric_index("Active::meminfo"));
  EXPECT_NO_THROW(metric_index("pgrotated::vmstat"));
  EXPECT_NO_THROW(metric_index("pginodesteal::vmstat"));
  EXPECT_THROW(metric_index("bogus::meminfo"), std::out_of_range);
}

TEST(MetricCatalogTest, SynthesizeRatesCoversCatalog) {
  ResourceState state;
  util::Rng rng(1);
  const auto rates = synthesize_rates(state, 128.0 * 1024 * 1024, rng);
  ASSERT_EQ(rates.size(), metric_count());
  for (const double r : rates) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GE(r, 0.0);
  }
}

TEST(MetricCatalogTest, MemoryPressureShrinksMemFree) {
  util::Rng rng(2);
  ResourceState low, high;
  low.mem_used_frac = 0.2;
  high.mem_used_frac = 0.9;
  const auto idx = metric_index("MemFree::meminfo");
  const double free_low = synthesize_rates(low, 1e8, rng)[idx];
  const double free_high = synthesize_rates(high, 1e8, rng)[idx];
  EXPECT_GT(free_low, free_high * 3.0);
}

TEST(AppProfileTest, CatalogsNonEmptyAndNamed) {
  EXPECT_EQ(eclipse_applications().size(), 6u);   // Table 1 Eclipse apps
  EXPECT_EQ(volta_applications().size(), 11u);    // Table 1 Volta apps
  EXPECT_EQ(empire_application().name, "Empire");
}

TEST(AppProfileTest, LookupByName) {
  EXPECT_EQ(application_by_name("LAMMPS").name, "LAMMPS");
  EXPECT_EQ(application_by_name("Kripke").name, "Kripke");
  EXPECT_EQ(application_by_name("Empire").name, "Empire");
  EXPECT_THROW(application_by_name("nonexistent"), std::out_of_range);
}

TEST(AppProfileTest, InitializationRampSuppressesActivity) {
  util::Rng rng(3);
  const auto& app = application_by_name("LAMMPS");
  const RunVariation variation;
  const ResourceState at_start = state_at(app, variation, 0.0, 600.0, rng);
  const ResourceState at_middle = state_at(app, variation, 300.0, 600.0, rng);
  EXPECT_LT(at_start.cpu_user, at_middle.cpu_user);
}

TEST(AppProfileTest, RunVariationIsBounded) {
  util::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const RunVariation v = sample_run_variation(rng);
    EXPECT_GT(v.cpu_scale, 0.4);
    EXPECT_LT(v.cpu_scale, 1.6);
    EXPECT_GE(v.phase_offset, 0.0);
  }
}

TEST(GeneratorTest, ShapesAndIdentity) {
  RunConfig config;
  config.app = application_by_name("sw4");
  config.job_id = 77;
  config.num_nodes = 3;
  config.duration_s = 64;
  config.first_component_id = 100;
  const JobTelemetry job = generate_run(config);
  EXPECT_EQ(job.job_id, 77);
  EXPECT_EQ(job.app, "sw4");
  ASSERT_EQ(job.nodes.size(), 3u);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(job.nodes[n].component_id, 100 + static_cast<std::int64_t>(n));
    EXPECT_EQ(job.nodes[n].values.rows(), 64u);
    EXPECT_EQ(job.nodes[n].values.cols(), metric_count());
    EXPECT_EQ(job.nodes[n].label, 0);
    EXPECT_EQ(job.nodes[n].anomaly, "none");
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  RunConfig config;
  config.app = application_by_name("cg");
  config.duration_s = 32;
  config.seed = 99;
  config.dropout = 0.0;
  const JobTelemetry a = generate_run(config);
  const JobTelemetry b = generate_run(config);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes[0].values.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.nodes[0].values.data()[i], b.nodes[0].values.data()[i]);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  RunConfig config;
  config.app = application_by_name("cg");
  config.duration_s = 32;
  config.dropout = 0.0;
  config.seed = 1;
  const JobTelemetry a = generate_run(config);
  config.seed = 2;
  const JobTelemetry b = generate_run(config);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.nodes[0].values.size(); ++i) {
    diff += std::abs(a.nodes[0].values.data()[i] - b.nodes[0].values.data()[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(GeneratorTest, CountersAreMonotone) {
  RunConfig config;
  config.app = application_by_name("ft");
  config.duration_s = 48;
  config.dropout = 0.0;
  const JobTelemetry job = generate_run(config);
  const auto& catalog = metric_catalog();
  for (std::size_t m = 0; m < catalog.size(); ++m) {
    if (catalog[m].kind != MetricKind::Counter) continue;
    const auto series = job.nodes[0].values.column(m);
    for (std::size_t t = 1; t < series.size(); ++t) {
      EXPECT_GE(series[t], series[t - 1]) << full_metric_name(catalog[m]);
    }
  }
}

TEST(GeneratorTest, DropoutProducesNaNs) {
  RunConfig config;
  config.app = application_by_name("lu");
  config.duration_s = 128;
  config.dropout = 0.05;
  const JobTelemetry job = generate_run(config);
  std::size_t nans = 0;
  for (const auto& node : job.nodes) {
    for (std::size_t i = 0; i < node.values.size(); ++i) {
      nans += std::isnan(node.values.data()[i]) ? 1 : 0;
    }
  }
  EXPECT_GT(nans, 0u);
}

TEST(GeneratorTest, AnomalyMaskLabelsOnlySelectedNodes) {
  RunConfig config;
  config.app = application_by_name("LAMMPS");
  config.duration_s = 32;
  config.num_nodes = 4;
  config.anomaly = hpas::table2_configurations().front();
  config.anomalous_nodes = {1, 3};
  const JobTelemetry job = generate_run(config);
  EXPECT_EQ(job.nodes[0].label, 0);
  EXPECT_EQ(job.nodes[1].label, 1);
  EXPECT_EQ(job.nodes[2].label, 0);
  EXPECT_EQ(job.nodes[3].label, 1);
  EXPECT_EQ(job.nodes[1].anomaly, "cpuoccupy");
}

TEST(GeneratorTest, EmptyMaskMarksAllNodesAnomalous) {
  RunConfig config;
  config.app = application_by_name("LAMMPS");
  config.duration_s = 32;
  config.num_nodes = 2;
  config.anomaly = hpas::table2_configurations().back();
  const JobTelemetry job = generate_run(config);
  for (const auto& node : job.nodes) EXPECT_EQ(node.label, 1);
}

TEST(GeneratorTest, OrganicIoDegradationLabelsNodes) {
  RunConfig config;
  config.app = empire_application();
  config.duration_s = 64;
  config.io_degradation = 0.7;
  const JobTelemetry job = generate_run(config);
  for (const auto& node : job.nodes) {
    EXPECT_EQ(node.label, 1);
    EXPECT_EQ(node.anomaly, "io_degradation");
  }
}

TEST(DatasetBuilderTest, SystemsMatchPaper) {
  EXPECT_EQ(eclipse_system().name, "Eclipse");
  EXPECT_EQ(volta_system().name, "Volta");
  EXPECT_GT(eclipse_system().node_ram_kb, volta_system().node_ram_kb);
}

TEST(DatasetBuilderTest, RunCountAndSampleEstimate) {
  DatasetSpec spec;
  spec.system = eclipse_system();
  spec.healthy_runs_per_app = 2;
  spec.anomalous_runs_per_app = 1;
  EXPECT_EQ(run_count(spec), 3u * spec.system.apps.size());
  EXPECT_GT(spec.approx_samples(), 0u);
}

TEST(DatasetBuilderTest, StreamsExpectedRunsWithLabels) {
  DatasetSpec spec;
  spec.system = volta_system();
  spec.healthy_runs_per_app = 1;
  spec.anomalous_runs_per_app = 1;
  spec.duration_s = 24;
  std::size_t healthy_runs = 0, anomalous_runs = 0;
  std::set<std::int64_t> job_ids;
  for_each_run(spec, [&](const JobTelemetry& job) {
    EXPECT_TRUE(job_ids.insert(job.job_id).second);
    const bool anomalous = job.nodes.front().label == 1;
    (anomalous ? anomalous_runs : healthy_runs) += 1;
  });
  EXPECT_EQ(healthy_runs, spec.system.apps.size());
  EXPECT_EQ(anomalous_runs, spec.system.apps.size());
}

TEST(DatasetBuilderTest, PaperScaleApproximatesPublishedCounts) {
  // At scale = 1.0 the specs should be within 10% of the paper's sample
  // counts (Eclipse 24,566; Volta 20,915).
  const auto eclipse = eclipse_dataset_spec(1.0);
  const auto volta = volta_dataset_spec(1.0);
  EXPECT_NEAR(static_cast<double>(eclipse.approx_samples()), 24566.0, 2456.0);
  EXPECT_NEAR(static_cast<double>(volta.approx_samples()), 20915.0, 2091.0);
}

}  // namespace
}  // namespace prodigy::telemetry
