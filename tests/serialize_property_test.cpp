// Round-trip property tests for every persistable artifact: random payloads
// in, identical payloads out — across sizes and value ranges.
#include "core/model_trainer.hpp"
#include "pipeline/scaler.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

namespace prodigy {
namespace {

class SerializePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::string temp_path(const char* tag) const {
    return (std::filesystem::temp_directory_path() /
            (std::string("prodigy_roundtrip_") + tag + "_" +
             std::to_string(GetParam()) + ".bin"))
        .string();
  }
};

TEST_P(SerializePropertyTest, MixedPayloadRoundTrips) {
  util::Rng rng(GetParam());
  const auto path = temp_path("mixed");

  const auto count = 1 + rng.uniform_index(50);
  std::vector<double> doubles(count);
  for (auto& d : doubles) {
    // Exercise subnormals, huge values, negative zero.
    const double magnitude = std::pow(10.0, rng.uniform(-300.0, 300.0));
    d = (rng.bernoulli(0.5) ? 1.0 : -1.0) * magnitude;
  }
  std::vector<std::string> strings;
  for (std::size_t i = 0; i < 1 + rng.uniform_index(10); ++i) {
    std::string s;
    for (std::size_t c = 0; c < rng.uniform_index(32); ++c) {
      s += static_cast<char>(rng.uniform_index(256));  // arbitrary bytes
    }
    strings.push_back(std::move(s));
  }
  const auto u = rng();
  const auto i = static_cast<std::int64_t>(rng()) - (1LL << 62);

  {
    util::BinaryWriter writer(path);
    writer.write_magic(0xABCDEF, 3);
    writer.write_u64(u);
    writer.write_i64(i);
    writer.write_f64_vector(doubles);
    writer.write_string_vector(strings);
  }
  util::BinaryReader reader(path);
  reader.expect_magic(0xABCDEF, 3);
  EXPECT_EQ(reader.read_u64(), u);
  EXPECT_EQ(reader.read_i64(), i);
  EXPECT_EQ(reader.read_f64_vector(), doubles);
  EXPECT_EQ(reader.read_string_vector(), strings);
  std::remove(path.c_str());
}

TEST_P(SerializePropertyTest, ScalerRoundTripsExactly) {
  util::Rng rng(GetParam() ^ 0x51);
  const std::size_t dims = 1 + rng.uniform_index(40);
  tensor::Matrix X(8 + rng.uniform_index(20), dims);
  for (std::size_t k = 0; k < X.size(); ++k) {
    X.data()[k] = rng.gaussian(rng.uniform(-100.0, 100.0), rng.uniform(0.1, 50.0));
  }
  const auto kind = GetParam() % 2 == 0 ? pipeline::ScalerKind::MinMax
                                        : pipeline::ScalerKind::Standard;
  pipeline::Scaler scaler(kind);
  scaler.fit(X);

  const auto path = temp_path("scaler");
  {
    util::BinaryWriter writer(path);
    scaler.save(writer);
  }
  util::BinaryReader reader(path);
  const auto loaded = pipeline::Scaler::load(reader);
  std::remove(path.c_str());

  const auto a = scaler.transform(X);
  const auto b = loaded.transform(X);
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.data()[k], b.data()[k]);
  }
}

TEST_P(SerializePropertyTest, MetadataRoundTripsExactly) {
  util::Rng rng(GetParam() ^ 0x99);
  core::DeploymentMetadata metadata;
  metadata.system = GetParam() % 2 ? "Eclipse" : "Volta";
  for (std::size_t i = 0; i < 1 + rng.uniform_index(64); ++i) {
    metadata.feature_names.push_back("metric" + std::to_string(rng.uniform_index(50)) +
                                     "::vmstat::feature" + std::to_string(i));
    metadata.selected_columns.push_back(rng.uniform_index(100000));
  }
  metadata.train_anomaly_ratio = rng.uniform();
  metadata.training_samples = rng.uniform_index(1u << 20);

  const auto path = temp_path("meta");
  {
    util::BinaryWriter writer(path);
    metadata.save(writer);
  }
  util::BinaryReader reader(path);
  const auto loaded = core::DeploymentMetadata::load(reader);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.system, metadata.system);
  EXPECT_EQ(loaded.feature_names, metadata.feature_names);
  EXPECT_EQ(loaded.selected_columns, metadata.selected_columns);
  EXPECT_DOUBLE_EQ(loaded.train_anomaly_ratio, metadata.train_anomaly_ratio);
  EXPECT_EQ(loaded.training_samples, metadata.training_samples);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializePropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u));

}  // namespace
}  // namespace prodigy
