#include "pipeline/preprocess.hpp"

#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace prodigy::pipeline {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(InterpolateTest, FillsInteriorGapLinearly) {
  std::vector<double> xs{0.0, kNaN, kNaN, 3.0};
  linear_interpolate(xs);
  EXPECT_DOUBLE_EQ(xs[1], 1.0);
  EXPECT_DOUBLE_EQ(xs[2], 2.0);
}

TEST(InterpolateTest, BackfillsLeadingGap) {
  std::vector<double> xs{kNaN, kNaN, 5.0, 6.0};
  linear_interpolate(xs);
  EXPECT_DOUBLE_EQ(xs[0], 5.0);
  EXPECT_DOUBLE_EQ(xs[1], 5.0);
}

TEST(InterpolateTest, ForwardFillsTrailingGap) {
  std::vector<double> xs{1.0, 2.0, kNaN, kNaN};
  linear_interpolate(xs);
  EXPECT_DOUBLE_EQ(xs[2], 2.0);
  EXPECT_DOUBLE_EQ(xs[3], 2.0);
}

TEST(InterpolateTest, AllNaNBecomesZeros) {
  std::vector<double> xs{kNaN, kNaN, kNaN};
  linear_interpolate(xs);
  for (const double x : xs) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(InterpolateTest, NoNaNsUnchanged) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  const auto original = xs;
  linear_interpolate(xs);
  EXPECT_EQ(xs, original);
}

TEST(InterpolateTest, MultipleGaps) {
  std::vector<double> xs{0.0, kNaN, 2.0, kNaN, kNaN, 8.0};
  linear_interpolate(xs);
  EXPECT_DOUBLE_EQ(xs[1], 1.0);
  EXPECT_DOUBLE_EQ(xs[3], 4.0);
  EXPECT_DOUBLE_EQ(xs[4], 6.0);
}

TEST(CounterToRateTest, FirstDifference) {
  const std::vector<double> counter{100, 110, 125, 125, 160};
  const auto rates = counter_to_rate(counter);
  ASSERT_EQ(rates.size(), counter.size());
  EXPECT_DOUBLE_EQ(rates[0], 10.0);  // duplicated second diff keeps alignment
  EXPECT_DOUBLE_EQ(rates[1], 10.0);
  EXPECT_DOUBLE_EQ(rates[2], 15.0);
  EXPECT_DOUBLE_EQ(rates[3], 0.0);
  EXPECT_DOUBLE_EQ(rates[4], 35.0);
}

TEST(CounterToRateTest, ShortSeries) {
  EXPECT_EQ(counter_to_rate(std::vector<double>{5.0}).size(), 1u);
  EXPECT_DOUBLE_EQ(counter_to_rate(std::vector<double>{5.0})[0], 0.0);
}

class PreprocessNodeTest : public ::testing::Test {
 protected:
  // A raw frame over the real catalog: gauges constant 100, counters ramp.
  tensor::Matrix make_raw(std::size_t timestamps) {
    const auto& catalog = telemetry::metric_catalog();
    tensor::Matrix raw(timestamps, catalog.size());
    for (std::size_t t = 0; t < timestamps; ++t) {
      for (std::size_t m = 0; m < catalog.size(); ++m) {
        raw(t, m) = catalog[m].kind == telemetry::MetricKind::Counter
                        ? 1000.0 + 5.0 * static_cast<double>(t)
                        : 100.0;
      }
    }
    return raw;
  }
};

TEST_F(PreprocessNodeTest, TrimsHeadAndTail) {
  PreprocessOptions options;
  options.trim_seconds = 60;
  const auto out = preprocess_node(make_raw(300), options);
  EXPECT_EQ(out.rows(), 300u - 120u);
  EXPECT_EQ(out.cols(), telemetry::metric_count());
}

TEST_F(PreprocessNodeTest, CountersBecomeRates) {
  PreprocessOptions options;
  options.trim_seconds = 10;
  const auto out = preprocess_node(make_raw(100), options);
  const auto& catalog = telemetry::metric_catalog();
  for (std::size_t m = 0; m < catalog.size(); ++m) {
    const double expected =
        catalog[m].kind == telemetry::MetricKind::Counter ? 5.0 : 100.0;
    EXPECT_DOUBLE_EQ(out(5, m), expected) << telemetry::full_metric_name(catalog[m]);
  }
}

TEST_F(PreprocessNodeTest, ShortRunsShrinkTrimInsteadOfVanishing) {
  PreprocessOptions options;
  options.trim_seconds = 60;
  options.min_timestamps = 16;
  const auto out = preprocess_node(make_raw(40), options);
  EXPECT_GE(out.rows(), 16u);
  EXPECT_LT(out.rows(), 40u);
}

TEST_F(PreprocessNodeTest, InterpolationAppliedBeforeDiff) {
  auto raw = make_raw(50);
  raw(10, 0) = kNaN;  // gauge gap
  // Counter gap: find the first counter column.
  std::size_t counter_col = 0;
  const auto& catalog = telemetry::metric_catalog();
  for (std::size_t m = 0; m < catalog.size(); ++m) {
    if (catalog[m].kind == telemetry::MetricKind::Counter) {
      counter_col = m;
      break;
    }
  }
  raw(20, counter_col) = kNaN;
  PreprocessOptions options;
  options.trim_seconds = 0;
  const auto out = preprocess_node(raw, options);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i]));
  }
  // The interpolated counter still produces the constant rate.
  EXPECT_DOUBLE_EQ(out(20, counter_col), 5.0);
}

TEST_F(PreprocessNodeTest, OptionsCanDisableStages) {
  auto raw = make_raw(30);
  PreprocessOptions options;
  options.trim_seconds = 0;
  options.diff_counters = false;
  const auto out = preprocess_node(raw, options);
  // Counters stay accumulated.
  std::size_t counter_col = 0;
  const auto& catalog = telemetry::metric_catalog();
  for (std::size_t m = 0; m < catalog.size(); ++m) {
    if (catalog[m].kind == telemetry::MetricKind::Counter) {
      counter_col = m;
      break;
    }
  }
  EXPECT_DOUBLE_EQ(out(2, counter_col), 1010.0);
}

}  // namespace
}  // namespace prodigy::pipeline
