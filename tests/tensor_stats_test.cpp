#include "tensor/stats.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace prodigy::tensor {
namespace {

const std::vector<double> kSimple{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(StatsTest, SumAndMean) {
  EXPECT_DOUBLE_EQ(sum(kSimple), 40.0);
  EXPECT_DOUBLE_EQ(mean(kSimple), 5.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, VarianceAndStddevKnownValues) {
  // Classic example: population stddev of kSimple is exactly 2.
  EXPECT_DOUBLE_EQ(variance(kSimple), 4.0);
  EXPECT_DOUBLE_EQ(stddev(kSimple), 2.0);
}

TEST(StatsTest, VarianceOfConstantIsZero) {
  const std::vector<double> constant(10, 3.3);
  EXPECT_DOUBLE_EQ(variance(constant), 0.0);
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(min_value(kSimple), 2.0);
  EXPECT_DOUBLE_EQ(max_value(kSimple), 9.0);
  EXPECT_DOUBLE_EQ(min_value(std::vector<double>{}), 0.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> xs{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.125), 0.5);
}

TEST(StatsTest, QuantileUnsortedInput) {
  const std::vector<double> xs{4, 0, 3, 1, 2};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
}

TEST(StatsTest, QuantileClampsOutOfRange) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.5), 3.0);
}

TEST(StatsTest, QuantileSortedSingleton) {
  const std::vector<double> xs{42};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.7), 42.0);
}

TEST(StatsTest, SkewnessSigns) {
  // Right-skewed data -> positive skewness.
  const std::vector<double> right{1, 1, 1, 2, 2, 3, 8, 20};
  EXPECT_GT(skewness(right), 0.5);
  // Symmetric data -> ~0.
  const std::vector<double> symmetric{-2, -1, 0, 1, 2};
  EXPECT_NEAR(skewness(symmetric), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(skewness(std::vector<double>(5, 1.0)), 0.0);
}

TEST(StatsTest, KurtosisOfGaussianNearZero) {
  util::Rng rng(11);
  std::vector<double> xs(200000);
  for (auto& x : xs) x = rng.gaussian();
  EXPECT_NEAR(kurtosis(xs), 0.0, 0.1);
}

TEST(StatsTest, KurtosisHeavyTailsPositive) {
  std::vector<double> xs(100, 0.0);
  xs[0] = 50.0;
  xs[1] = -50.0;
  EXPECT_GT(kurtosis(xs), 5.0);
}

TEST(StatsTest, PearsonCorrelationPerfect) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonCorrelationConstantIsZero) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> c{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, c), 0.0);
}

TEST(StatsTest, PearsonCorrelationLengthMismatchThrows) {
  const std::vector<double> x{1, 2}, y{1};
  EXPECT_THROW(pearson_correlation(x, y), std::invalid_argument);
}

TEST(StatsTest, AutocorrelationOfSineAtPeriod) {
  std::vector<double> xs(200);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 20.0);
  }
  EXPECT_GT(autocorrelation(xs, 20), 0.9);   // full period: in phase
  EXPECT_LT(autocorrelation(xs, 10), -0.9);  // half period: anti-phase
}

TEST(StatsTest, AutocorrelationDegenerate) {
  const std::vector<double> constant(10, 2.0);
  EXPECT_DOUBLE_EQ(autocorrelation(constant, 1), 0.0);
  const std::vector<double> tiny{1.0};
  EXPECT_DOUBLE_EQ(autocorrelation(tiny, 1), 0.0);
}

TEST(StatsTest, AutocorrelationLagOneOfNoiseSmall) {
  util::Rng rng(12);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.gaussian();
  EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.02);
}

}  // namespace
}  // namespace prodigy::tensor
