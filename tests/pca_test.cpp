#include "baselines/pca.hpp"

#include "eval/metrics.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prodigy::baselines {
namespace {

/// Data on a known 1-D subspace (direction ~ (3,4)/5) plus tiny noise.
tensor::Matrix line_data(std::size_t n, std::uint64_t seed, double noise = 0.01) {
  util::Rng rng(seed);
  tensor::Matrix X(n, 2);
  for (std::size_t r = 0; r < n; ++r) {
    const double t = rng.uniform(-2.0, 2.0);
    X(r, 0) = 0.6 * t + noise * rng.gaussian();
    X(r, 1) = 0.8 * t + noise * rng.gaussian();
  }
  return X;
}

TEST(PcaTest, UsageErrors) {
  PcaDetector pca;
  EXPECT_EQ(pca.name(), "PCA Reconstruction");
  EXPECT_THROW(pca.score(tensor::Matrix(1, 2, 0.0)), std::logic_error);
  EXPECT_THROW(pca.fit(tensor::Matrix(4, 2, 0.0), {1, 1, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(pca.fit_healthy(tensor::Matrix(1, 2, 0.0)), std::invalid_argument);
}

TEST(PcaTest, RecoversPrincipalDirection) {
  PcaConfig config;
  config.components = 1;
  PcaDetector pca(config);
  pca.fit_healthy(line_data(400, 1));
  // Eigenvalue ~= variance of t along the line (uniform[-2,2] var = 4/3).
  ASSERT_EQ(pca.explained_variance().size(), 1u);
  EXPECT_NEAR(pca.explained_variance()[0], 4.0 / 3.0, 0.15);
}

TEST(PcaTest, OnSubspaceLowOffSubspaceHigh) {
  PcaConfig config;
  config.components = 1;
  PcaDetector pca(config);
  pca.fit_healthy(line_data(400, 2));
  tensor::Matrix probes{{0.6, 0.8},    // on the line
                        {-0.8, 0.6}};  // orthogonal
  const auto scores = pca.score(probes);
  EXPECT_LT(scores[0], 0.05);
  EXPECT_GT(scores[1], 0.5);
}

TEST(PcaTest, FullRankReconstructionIsLossless) {
  auto [X, y] = testing::blob_dataset(100, 0, 3, 0.0, 3);
  PcaConfig config;
  config.components = 3;  // = dims
  PcaDetector pca(config);
  pca.fit_healthy(X);
  for (const double s : pca.score(X)) EXPECT_NEAR(s, 0.0, 1e-6);
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  auto [X, y] = testing::blob_dataset(300, 0, 6, 0.0, 4);
  PcaConfig config;
  config.components = 4;
  PcaDetector pca(config);
  pca.fit_healthy(X);
  // Recover the components via explained_variance size and score coherence:
  // eigenvalues must be non-increasing.
  const auto& ev = pca.explained_variance();
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_LE(ev[i], ev[i - 1] + 1e-6);
  }
}

TEST(PcaTest, DetectsOffManifoldAnomalies) {
  // Healthy data on a 2-D manifold in 6-D; anomalies are isotropic.
  util::Rng rng(5);
  tensor::Matrix X(240, 6);
  std::vector<int> y(240, 0);
  for (std::size_t r = 0; r < 240; ++r) {
    if (r < 200) {
      const double t = rng.gaussian(), u = rng.gaussian();
      for (std::size_t c = 0; c < 6; ++c) {
        X(r, c) = std::sin(static_cast<double>(c)) * t +
                  std::cos(static_cast<double>(c)) * u + 0.05 * rng.gaussian();
      }
    } else {
      y[r] = 1;
      for (std::size_t c = 0; c < 6; ++c) X(r, c) = rng.gaussian(0.0, 1.5);
    }
  }
  PcaConfig config;
  config.components = 2;
  PcaDetector pca(config);
  pca.fit(X, y);
  pca.tune(X, y);
  EXPECT_GT(eval::macro_f1(y, pca.predict(X)), 0.9);
}

TEST(PcaTest, ThresholdFlagsFewHealthySamples) {
  auto [X, y] = testing::blob_dataset(300, 0, 5, 0.0, 6);
  PcaConfig config;
  config.components = 2;
  PcaDetector pca(config);
  pca.fit_healthy(X);
  std::size_t flagged = 0;
  for (const int p : pca.predict(X)) flagged += p;
  EXPECT_LE(flagged, X.rows() / 20);
}

TEST(PcaTest, DeterministicForFixedSeed) {
  auto [X, y] = testing::blob_dataset(150, 0, 4, 0.0, 7);
  PcaDetector a, b;
  a.fit_healthy(X);
  b.fit_healthy(X);
  EXPECT_EQ(a.score(X), b.score(X));
}

}  // namespace
}  // namespace prodigy::baselines
