#include "util/metrics.hpp"

#include "util/lru_cache.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace prodigy::util {
namespace {

TEST(MetricsTest, CounterConcurrentIncrements) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIncrements; ++i) {
        registry.counter("requests_total").increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("requests_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsTest, GaugeSetAddMax) {
  Gauge gauge;
  gauge.set(3.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.add(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 5.5);
  gauge.update_max(4.0);  // below current -> no change
  EXPECT_DOUBLE_EQ(gauge.value(), 5.5);
  gauge.update_max(9.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 9.0);
}

TEST(MetricsTest, HistogramQuantilesOnKnownData) {
  Histogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.observe(static_cast<double>(i));
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.p50, 50.0);
  EXPECT_DOUBLE_EQ(snap.p95, 95.0);
  EXPECT_DOUBLE_EQ(snap.p99, 99.0);
}

TEST(MetricsTest, HistogramBoundedMemoryKeepsRecentWindow) {
  Histogram histogram(64);
  for (int i = 0; i < 100000; ++i) histogram.observe(1.0);
  for (int i = 0; i < 64; ++i) histogram.observe(5.0);  // fills the window
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 100064u);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);  // min/max cover every observation
  EXPECT_DOUBLE_EQ(snap.max, 5.0);
  EXPECT_DOUBLE_EQ(snap.p50, 5.0);  // quantiles follow the recent window
}

TEST(MetricsTest, HistogramConcurrentObserves) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kObservations; ++i) {
        registry.histogram("latency_seconds").observe(0.001 * (i % 10));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto snap = registry.histogram("latency_seconds").snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kObservations);
}

// The deployment request path updates counters and histograms from pool
// workers (parallel_for fan-out), not just raw std::threads — exercise
// exactly that path.
TEST(MetricsTest, CounterAndHistogramUpdatesFromThreadPool) {
  MetricsRegistry registry;
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 2000;
  parallel_for(pool, 0, kTasks, [&registry](std::size_t i) {
    registry.counter("pool_events_total").increment();
    registry.histogram("pool_latency_seconds").observe(0.001 * (i % 16));
    registry.gauge("pool_high_water").update_max(static_cast<double>(i));
  });
  EXPECT_EQ(registry.counter("pool_events_total").value(), kTasks);
  const auto snap = registry.histogram("pool_latency_seconds").snapshot();
  EXPECT_EQ(snap.count, kTasks);
  EXPECT_DOUBLE_EQ(registry.gauge("pool_high_water").value(),
                   static_cast<double>(kTasks - 1));
}

TEST(LruCacheTest, HitMissEvictionCountersAndOrder) {
  MetricsRegistry registry;
  auto& hits = registry.counter("cache_hits_total");
  auto& misses = registry.counter("cache_misses_total");
  auto& evictions = registry.counter("cache_evictions_total");
  LruCache<int, std::string> cache(2, &hits, &misses, &evictions);

  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(misses.value(), 1u);

  cache.put(1, "one");
  cache.put(2, "two");
  EXPECT_EQ(cache.get(1).value(), "one");  // 1 becomes most-recent
  EXPECT_EQ(hits.value(), 1u);

  cache.put(3, "three");  // evicts 2 (least-recently-used)
  EXPECT_EQ(evictions.value(), 1u);
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(1).value(), "one");
  EXPECT_EQ(cache.get(3).value(), "three");
  EXPECT_EQ(cache.size(), 2u);

  cache.put(3, "III");  // refresh in place, no eviction
  EXPECT_EQ(cache.get(3).value(), "III");
  EXPECT_EQ(evictions.value(), 1u);
}

TEST(LruCacheTest, ZeroCapacityDisablesCaching) {
  LruCache<int, int> cache(0);
  cache.put(1, 10);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(1).has_value());
}

TEST(LruCacheTest, SetCapacityShrinksAndEvicts) {
  MetricsRegistry registry;
  auto& evictions = registry.counter("cache_evictions_total");
  LruCache<int, int> cache(4, nullptr, nullptr, &evictions);
  for (int i = 0; i < 4; ++i) cache.put(i, i * 10);
  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(evictions.value(), 3u);
  EXPECT_EQ(cache.get(3).value(), 30);  // most recent survives
}

TEST(LruCacheTest, ConcurrentGetPutFromPoolIsConsistent) {
  MetricsRegistry registry;
  auto& hits = registry.counter("cache_hits_total");
  auto& misses = registry.counter("cache_misses_total");
  LruCache<int, int> cache(16, &hits, &misses, nullptr);
  ThreadPool pool(4);
  constexpr std::size_t kOps = 4000;
  parallel_for(pool, 0, kOps, [&cache](std::size_t i) {
    const int key = static_cast<int>(i % 32);
    if (const auto value = cache.get(key)) {
      // Values are keyed deterministically, so a hit can never be torn.
      ASSERT_EQ(*value, key * 7);
    } else {
      cache.put(key, key * 7);
    }
  });
  EXPECT_LE(cache.size(), 16u);
  EXPECT_EQ(hits.value() + misses.value(), kOps);
}

TEST(MetricsTest, KindConflictThrows) {
  MetricsRegistry registry;
  registry.counter("shared_name");
  EXPECT_THROW(registry.gauge("shared_name"), std::logic_error);
  EXPECT_THROW(registry.histogram("shared_name"), std::logic_error);
  EXPECT_NO_THROW(registry.counter("shared_name"));
}

TEST(MetricsTest, NameSanitization) {
  EXPECT_EQ(MetricsRegistry::sanitize_name("pipeline.preprocess/stage-1"),
            "pipeline_preprocess_stage_1");
  EXPECT_EQ(MetricsRegistry::sanitize_name("9lives"), "_9lives");
  MetricsRegistry registry;
  registry.counter("a.b").increment(7);
  // Dotted and underscored spellings address the same metric.
  EXPECT_EQ(registry.counter("a_b").value(), 7u);
}

// Parses Prometheus text: every non-comment line is "name[{labels}] value",
// every metric has exactly one # TYPE line, and no duplicates exist.
TEST(MetricsTest, PrometheusExportParses) {
  MetricsRegistry registry;
  registry.counter("events_total").increment(3);
  registry.gauge("queue_depth").set(4.5);
  for (int i = 1; i <= 10; ++i) {
    registry.histogram("stage_seconds").observe(0.1 * i);
  }
  const std::string text = registry.to_prometheus();

  std::map<std::string, int> type_lines;
  std::set<std::string> sample_names;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name, type;
      fields >> name >> type;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "summary")
          << line;
      ++type_lines[name];
      continue;
    }
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
    const auto brace = name.find('{');
    const bool labeled = brace != std::string::npos;
    if (labeled) name = name.substr(0, brace);
    // Quantile samples share their summary's name; plain samples are unique.
    if (!labeled) {
      EXPECT_TRUE(sample_names.insert(name).second)
          << "duplicate sample " << name;
    }
  }
  ASSERT_EQ(type_lines.size(), 3u);
  for (const auto& [name, count] : type_lines) {
    EXPECT_EQ(count, 1) << "duplicate # TYPE for " << name;
  }
  EXPECT_TRUE(type_lines.contains("events_total"));
  EXPECT_TRUE(type_lines.contains("queue_depth"));
  EXPECT_TRUE(type_lines.contains("stage_seconds"));
  EXPECT_TRUE(sample_names.contains("stage_seconds_sum"));
  EXPECT_TRUE(sample_names.contains("stage_seconds_count"));
}

TEST(MetricsTest, JsonExportContainsSections) {
  MetricsRegistry registry;
  registry.counter("events_total").increment(3);
  registry.gauge("queue_depth").set(4.5);
  registry.histogram("stage_seconds").observe(0.25);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"events_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\": 4.5"), std::string::npos);
  EXPECT_NE(json.find("\"stage_seconds\": {\"count\": 1"), std::string::npos);
  // Balanced braces (cheap structural sanity check).
  int depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsTest, WriteFilePicksFormatByExtension) {
  MetricsRegistry registry;
  registry.counter("events_total").increment(1);
  const auto dir = std::filesystem::temp_directory_path();
  const auto json_path = (dir / "prodigy_metrics_test.json").string();
  const auto prom_path = (dir / "prodigy_metrics_test.prom").string();
  registry.write_file(json_path);
  registry.write_file(prom_path);

  std::ifstream json_file(json_path);
  std::string json((std::istreambuf_iterator<char>(json_file)),
                   std::istreambuf_iterator<char>());
  std::ifstream prom_file(prom_path);
  std::string prom((std::istreambuf_iterator<char>(prom_file)),
                   std::istreambuf_iterator<char>());
  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());

  ASSERT_FALSE(json.empty());
  ASSERT_FALSE(prom.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(prom.rfind("# TYPE", 0), 0u);
}

TEST(MetricsTest, ResetClearsEverything) {
  MetricsRegistry registry;
  registry.counter("events_total").increment(5);
  registry.reset();
  EXPECT_EQ(registry.counter("events_total").value(), 0u);
}

TEST(StageTimerTest, RecordsIntoGlobalRegistryAndSink) {
  auto& histogram = MetricsRegistry::global().histogram(
      "prodigy_stage_test_stage_tracer_seconds");
  const auto before = histogram.snapshot().count;
  double sink = -1.0;
  {
    StageTimer timer("test.stage.tracer", &sink);
  }
  EXPECT_EQ(histogram.snapshot().count, before + 1);
  EXPECT_GE(sink, 0.0);
}

TEST(StageTimerTest, StopIsIdempotent) {
  auto& histogram = MetricsRegistry::global().histogram(
      "prodigy_stage_test_stage_idempotent_seconds");
  const auto before = histogram.snapshot().count;
  StageTimer timer("test.stage.idempotent");
  const double first = timer.stop();
  const double second = timer.stop();
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(histogram.snapshot().count, before + 1);  // destructor adds nothing
}

}  // namespace
}  // namespace prodigy::util
