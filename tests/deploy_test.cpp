#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace prodigy::deploy {
namespace {

telemetry::JobTelemetry make_job(std::int64_t job_id, const std::string& app,
                                 std::size_t nodes, double duration,
                                 hpas::AnomalySpec anomaly = hpas::healthy_spec(),
                                 std::vector<std::size_t> anomalous_nodes = {},
                                 std::uint64_t seed = 0) {
  telemetry::RunConfig config;
  config.app = telemetry::application_by_name(app);
  config.job_id = job_id;
  config.num_nodes = nodes;
  config.duration_s = duration;
  config.seed = seed == 0 ? static_cast<std::uint64_t>(job_id) : seed;
  config.anomaly = anomaly;
  config.anomalous_nodes = std::move(anomalous_nodes);
  config.first_component_id = job_id * 100;
  return telemetry::generate_run(config);
}

TEST(DsosStoreTest, IngestAndQuery) {
  DsosStore store;
  store.ingest(make_job(1, "LAMMPS", 2, 32));
  store.ingest(make_job(2, "sw4", 3, 32));

  EXPECT_EQ(store.job_count(), 2u);
  EXPECT_TRUE(store.has_job(1));
  EXPECT_FALSE(store.has_job(99));
  EXPECT_EQ(store.job_ids(), (std::vector<std::int64_t>{1, 2}));

  const auto job = store.query_job(2);
  EXPECT_EQ(job.app, "sw4");
  EXPECT_EQ(job.nodes.size(), 3u);
  EXPECT_EQ(store.components_of(2),
            (std::vector<std::int64_t>{200, 201, 202}));
  EXPECT_THROW(store.query_job(99), std::out_of_range);
}

TEST(DsosStoreTest, QueryNodeAndDatapoints) {
  DsosStore store;
  store.ingest(make_job(5, "HACC", 2, 16));
  const auto node = store.query_node(5, 501);
  EXPECT_EQ(node.component_id, 501);
  EXPECT_EQ(node.values.rows(), 16u);
  EXPECT_THROW(store.query_node(5, 999), std::out_of_range);
  EXPECT_EQ(store.datapoint_count(), 2 * 16 * telemetry::metric_count());
}

TEST(DsosStoreTest, StreamingNodeIngestBuildsJobs) {
  DsosStore store;
  const auto job = make_job(9, "SWFFT", 3, 16);
  for (const auto& node : job.nodes) store.ingest_node(node);
  EXPECT_TRUE(store.has_job(9));
  EXPECT_EQ(store.components_of(9).size(), 3u);
  EXPECT_EQ(store.query_job(9).app, "SWFFT");
}

TEST(DsosStoreTest, NodeReingestUpdatesAppName) {
  // Regression: ingest_node used job_apps_.emplace, so a re-ingested job
  // kept its stale app name even though its telemetry was replaced.
  DsosStore store;
  auto job = make_job(4, "LAMMPS", 1, 16);
  store.ingest_node(job.nodes[0]);
  EXPECT_EQ(store.query_job(4).app, "LAMMPS");

  auto renamed = make_job(4, "sw4", 1, 16);
  store.ingest_node(renamed.nodes[0]);
  EXPECT_EQ(store.query_job(4).app, "sw4");
}

TEST(DsosStoreTest, AppendNodeAccumulatesRows) {
  DsosStore store;
  const auto job = make_job(6, "HACC", 1, 32);
  const auto& node = job.nodes[0];

  // Stream the series in as three chunks: 10 + 10 + 12 rows.
  const std::size_t cuts[] = {0, 10, 20, 32};
  for (int chunk = 0; chunk < 3; ++chunk) {
    telemetry::NodeSeries delta = node;
    delta.values = node.values.slice_rows(cuts[chunk], cuts[chunk + 1] - cuts[chunk]);
    store.append_node(delta);
  }

  const auto stored = store.query_node(6, node.component_id);
  ASSERT_EQ(stored.values.rows(), node.values.rows());
  ASSERT_EQ(stored.values.cols(), node.values.cols());
  for (std::size_t i = 0; i < node.values.size(); ++i) {
    const double expected = node.values.data()[i];
    const double got = stored.values.data()[i];
    if (std::isnan(expected)) {
      EXPECT_TRUE(std::isnan(got));
    } else {
      EXPECT_DOUBLE_EQ(expected, got);
    }
  }
  // Three appends -> three generation bumps, unlike replace semantics the
  // datapoint count grows monotonically.
  EXPECT_EQ(store.generation(), 3u);
  EXPECT_EQ(store.datapoint_count(), node.values.size());
}

TEST(DsosStoreTest, AppendNodeKeepsGroundTruthButReassignsApp) {
  DsosStore store;
  auto job = make_job(8, "LAMMPS", 1, 16, hpas::table2_configurations().back());
  auto first = job.nodes[0];
  first.label = 1;
  store.append_node(first);

  telemetry::NodeSeries delta = first;
  delta.app = "sw4";      // job re-labeled mid-stream
  delta.label = 0;        // a live stream carries no ground truth
  delta.anomaly = "none";
  store.append_node(delta);

  const auto stored = store.query_node(8, first.component_id);
  EXPECT_EQ(stored.label, 1);
  EXPECT_EQ(stored.anomaly, first.anomaly);
  EXPECT_EQ(store.query_job(8).app, "sw4");
}

TEST(DsosStoreTest, AppendNodeRejectsColumnMismatch) {
  DsosStore store;
  const auto job = make_job(10, "SWFFT", 1, 16);
  store.append_node(job.nodes[0]);
  telemetry::NodeSeries bad = job.nodes[0];
  bad.values = tensor::Matrix(4, job.nodes[0].values.cols() + 1);
  EXPECT_THROW(store.append_node(bad), std::invalid_argument);
}

TEST(DsosStoreTest, ReingestReplacesJob) {
  DsosStore store;
  store.ingest(make_job(1, "LAMMPS", 2, 16));
  store.ingest(make_job(1, "LAMMPS", 2, 16, hpas::healthy_spec(), {}, 777));
  EXPECT_EQ(store.job_count(), 1u);
}

TEST(DsosStoreTest, MoveTransfersDataAndGenerations) {
  DsosStore source;
  source.ingest(make_job(1, "LAMMPS", 2, 16));
  source.ingest(make_job(2, "sw4", 3, 16));
  const auto gen_before = source.job_generation(2);
  ASSERT_GT(gen_before, 0u);

  DsosStore moved(std::move(source));
  EXPECT_EQ(moved.job_count(), 2u);
  EXPECT_EQ(moved.query_job(2).nodes.size(), 3u);
  EXPECT_EQ(moved.job_generation(2), gen_before);
  EXPECT_EQ(moved.generation(), 2u);

  DsosStore assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.job_count(), 2u);
  EXPECT_EQ(assigned.job_generation(2), gen_before);
}

TEST(DsosStoreTest, ReingestBumpsGeneration) {
  DsosStore store;
  store.ingest(make_job(1, "LAMMPS", 2, 16));
  const auto g1 = store.job_generation(1);
  store.ingest(make_job(1, "LAMMPS", 2, 16, hpas::healthy_spec(), {}, 777));
  EXPECT_GT(store.job_generation(1), g1);
  EXPECT_EQ(store.generation(), 2u);
}

TEST(DsosStoreTest, SaveLoadRoundTrip) {
  DsosStore store;
  store.ingest(make_job(7, "ExaMiniMD", 2, 24));
  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_dsos_test.bin").string();
  store.save(path);
  const DsosStore loaded = DsosStore::load(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.job_count(), 1u);
  const auto a = store.query_node(7, 700);
  const auto b = loaded.query_node(7, 700);
  EXPECT_EQ(a.app, b.app);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    const double x = a.values.data()[i];
    const double y = b.values.data()[i];
    if (std::isnan(x)) {
      EXPECT_TRUE(std::isnan(y));
    } else {
      EXPECT_DOUBLE_EQ(x, y);
    }
  }
}

class AnalyticsServiceTest : public ::testing::Test {
 protected:
  AnalyticsServiceTest() {
    // Training store: healthy runs plus a few memleak runs so chi-square
    // selection has both classes (paper: 24 anomalous samples suffice).
    std::int64_t job = 1;
    for (int i = 0; i < 6; ++i) {
      store_.ingest(make_job(job, "LAMMPS", 4, 150));
      train_jobs_.push_back(job++);
    }
    const auto memleak = hpas::table2_configurations().back();
    for (int i = 0; i < 2; ++i) {
      store_.ingest(make_job(job, "LAMMPS", 4, 150, memleak));
      train_jobs_.push_back(job++);
    }
    // Query job 50: memleak on nodes 1 and 3 only (the Fig. 7 scenario).
    store_.ingest(make_job(50, "LAMMPS", 4, 150, memleak, {1, 3}));
  }

  TrainFromStoreOptions fast_options() {
    TrainFromStoreOptions options;
    options.preprocess.trim_seconds = 20;
    options.top_k_features = 64;
    options.model.vae.encoder_hidden = {24, 8};
    options.model.vae.latent_dim = 3;
    options.model.train.epochs = 120;
    options.model.train.batch_size = 16;
    options.model.train.learning_rate = 2e-3;
    options.model.train.validation_split = 0.0;
    options.model.train.early_stopping_patience = 0;
    return options;
  }

  DsosStore store_;
  std::vector<std::int64_t> train_jobs_;
};

TEST_F(AnalyticsServiceTest, EndToEndTrainingAndJobAnalysis) {
  const AnalyticsService service =
      AnalyticsService::train_from_store(store_, train_jobs_, fast_options());

  const JobAnalysis analysis = service.analyze_job(50);
  EXPECT_EQ(analysis.job_id, 50);
  EXPECT_EQ(analysis.app, "LAMMPS");
  ASSERT_EQ(analysis.nodes.size(), 4u);
  EXPECT_GT(analysis.seconds, 0.0);

  // Nodes 1 and 3 carry the memleak; they must score higher than 0 and 2,
  // and the binary verdicts should match the injected ground truth.
  const auto& nodes = analysis.nodes;
  EXPECT_GT(std::min(nodes[1].score, nodes[3].score),
            std::max(nodes[0].score, nodes[2].score));
  EXPECT_TRUE(nodes[1].anomalous);
  EXPECT_TRUE(nodes[3].anomalous);
  EXPECT_FALSE(nodes[0].anomalous);
  EXPECT_FALSE(nodes[2].anomalous);

  // Anomalous nodes carry CoMTE explanations; healthy nodes do not.
  EXPECT_TRUE(nodes[1].explanation.has_value());
  EXPECT_FALSE(nodes[0].explanation.has_value());
  if (nodes[1].explanation->success) {
    EXPECT_GE(nodes[1].explanation->changes.size(), 1u);
  }
}

TEST_F(AnalyticsServiceTest, StageBreakdownCoversRequestLatency) {
  const AnalyticsService service = AnalyticsService::train_from_store(
      store_, train_jobs_, fast_options(), /*explain=*/false);
  const JobAnalysis analysis = service.analyze_job(50);

  ASSERT_EQ(analysis.stages.size(), 4u);
  EXPECT_EQ(analysis.stages[0].stage, "query");
  EXPECT_EQ(analysis.stages[1].stage, "features");
  EXPECT_EQ(analysis.stages[2].stage, "score");
  EXPECT_EQ(analysis.stages[3].stage, "verdicts");

  double stage_sum = 0.0;
  for (const auto& stage : analysis.stages) {
    EXPECT_GE(stage.seconds, 0.0);
    stage_sum += stage.seconds;
  }
  // The stages cover contiguous regions of analyze_job, so they must account
  // for (almost) the whole end-to-end latency.
  EXPECT_LE(stage_sum, analysis.seconds);
  EXPECT_NEAR(stage_sum, analysis.seconds, 0.10 * analysis.seconds + 1e-3);

  const std::string report = render_markdown_report(analysis);
  EXPECT_NE(report.find("### Stage latency breakdown"), std::string::npos);
  EXPECT_NE(report.find("| features |"), std::string::npos);
}

TEST_F(AnalyticsServiceTest, NodeLevelAnalysisMatchesJobLevel) {
  const AnalyticsService service = AnalyticsService::train_from_store(
      store_, train_jobs_, fast_options(), /*explain=*/false);
  const JobAnalysis analysis = service.analyze_job(50);
  const NodeVerdict node = service.analyze_node(50, analysis.nodes[1].component_id);
  EXPECT_EQ(node.component_id, analysis.nodes[1].component_id);
  EXPECT_EQ(node.anomalous, analysis.nodes[1].anomalous);
  EXPECT_DOUBLE_EQ(node.score, analysis.nodes[1].score);
  EXPECT_THROW(service.analyze_node(50, 424242), std::out_of_range);
}

TEST_F(AnalyticsServiceTest, MarkdownReportContainsVerdictsAndExplanations) {
  const AnalyticsService service =
      AnalyticsService::train_from_store(store_, train_jobs_, fast_options());
  const JobAnalysis analysis = service.analyze_job(50);
  const std::string report = render_markdown_report(analysis);
  EXPECT_NE(report.find("## Anomaly detection: job 50"), std::string::npos);
  EXPECT_NE(report.find("| component | verdict |"), std::string::npos);
  EXPECT_NE(report.find("**ANOMALOUS**"), std::string::npos);
  EXPECT_NE(report.find("healthy"), std::string::npos);
  // At least one explanation section for an anomalous node.
  EXPECT_NE(report.find("### Why component"), std::string::npos);
  EXPECT_NE(report.find("would be classified healthy if"), std::string::npos);
}

TEST_F(AnalyticsServiceTest, ExplanationsCanBeDisabled) {
  const AnalyticsService service =
      AnalyticsService::train_from_store(store_, train_jobs_, fast_options(),
                                         /*explain=*/false);
  const JobAnalysis analysis = service.analyze_job(50);
  for (const auto& node : analysis.nodes) {
    EXPECT_FALSE(node.explanation.has_value());
  }
}

TEST_F(AnalyticsServiceTest, UnknownJobThrows) {
  const AnalyticsService service = AnalyticsService::train_from_store(
      store_, train_jobs_, fast_options(), false);
  EXPECT_THROW(service.analyze_job(12345), std::out_of_range);
}

TEST_F(AnalyticsServiceTest, TrainFromStoreRequiresJobs) {
  EXPECT_THROW(AnalyticsService::train_from_store(store_, {}, fast_options()),
               std::invalid_argument);
}

}  // namespace
}  // namespace prodigy::deploy
