#include "eval/metrics.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace prodigy::eval {
namespace {

TEST(ConfusionMatrixTest, CountsAllFourCells) {
  const std::vector<int> truth{1, 1, 0, 0, 1, 0};
  const std::vector<int> pred{1, 0, 0, 1, 1, 0};
  const ConfusionMatrix cm = confusion_matrix(truth, pred);
  EXPECT_EQ(cm.true_positive, 2u);
  EXPECT_EQ(cm.false_negative, 1u);
  EXPECT_EQ(cm.true_negative, 2u);
  EXPECT_EQ(cm.false_positive, 1u);
  EXPECT_EQ(cm.total(), 6u);
}

TEST(ConfusionMatrixTest, SizeMismatchThrows) {
  EXPECT_THROW(confusion_matrix({1, 0}, {1}), std::invalid_argument);
}

TEST(MetricsTest, PerfectPredictions) {
  const std::vector<int> truth{1, 0, 1, 0};
  const ConfusionMatrix cm = confusion_matrix(truth, truth);
  EXPECT_DOUBLE_EQ(accuracy(cm), 1.0);
  EXPECT_DOUBLE_EQ(precision(cm), 1.0);
  EXPECT_DOUBLE_EQ(recall(cm), 1.0);
  EXPECT_DOUBLE_EQ(f1_score(cm), 1.0);
  EXPECT_DOUBLE_EQ(macro_f1(cm), 1.0);
}

TEST(MetricsTest, HandComputedValues) {
  // tp=8, fp=2, fn=4, tn=6.
  const ConfusionMatrix cm{8, 6, 2, 4};
  EXPECT_DOUBLE_EQ(precision(cm), 0.8);
  EXPECT_DOUBLE_EQ(recall(cm), 8.0 / 12.0);
  const double f1_pos = 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(f1_score(cm), f1_pos);
  // Negative class: tp'=6, fp'=4, fn'=2.
  const double precision_neg = 0.6, recall_neg = 0.75;
  const double f1_neg =
      2 * precision_neg * recall_neg / (precision_neg + recall_neg);
  EXPECT_DOUBLE_EQ(macro_f1(cm), 0.5 * (f1_pos + f1_neg));
  EXPECT_DOUBLE_EQ(accuracy(cm), 0.7);
}

TEST(MetricsTest, DegenerateDenominatorsAreZero) {
  const ConfusionMatrix no_positives{0, 10, 0, 0};
  EXPECT_DOUBLE_EQ(precision(no_positives), 0.0);
  EXPECT_DOUBLE_EQ(recall(no_positives), 0.0);
  EXPECT_DOUBLE_EQ(f1_score(no_positives), 0.0);
  const ConfusionMatrix empty{};
  EXPECT_DOUBLE_EQ(accuracy(empty), 0.0);
}

TEST(MetricsTest, MajorityPredictionOnImbalancedDataHasLowMacroF1) {
  // 90% anomalous; predicting all-anomalous gives high accuracy but the
  // macro-F1 the paper reports (~0.47) stays low.
  std::vector<int> truth(100, 1);
  for (int i = 0; i < 10; ++i) truth[i] = 0;
  const std::vector<int> all_ones(100, 1);
  const auto cm = confusion_matrix(truth, all_ones);
  EXPECT_DOUBLE_EQ(accuracy(cm), 0.9);
  EXPECT_NEAR(macro_f1(truth, all_ones), 0.4737, 0.001);
}

TEST(MetricsTest, MacroF1SymmetricUnderLabelSwap) {
  const std::vector<int> truth{1, 1, 0, 0, 1, 0, 1, 0};
  const std::vector<int> pred{1, 0, 0, 1, 1, 1, 0, 0};
  std::vector<int> truth_swapped, pred_swapped;
  for (const int t : truth) truth_swapped.push_back(1 - t);
  for (const int p : pred) pred_swapped.push_back(1 - p);
  EXPECT_DOUBLE_EQ(macro_f1(truth, pred), macro_f1(truth_swapped, pred_swapped));
}

TEST(ThresholdTest, PredictionsAtThreshold) {
  const std::vector<double> scores{0.1, 0.5, 0.9};
  EXPECT_EQ(predictions_at_threshold(scores, 0.5), (std::vector<int>{0, 0, 1}));
  EXPECT_EQ(predictions_at_threshold(scores, 0.05), (std::vector<int>{1, 1, 1}));
}

TEST(ThresholdTest, SearchFindsSeparatingThreshold) {
  // Healthy scores < 0.4, anomalous > 0.6 -> any threshold between works.
  std::vector<double> scores;
  std::vector<int> truth;
  for (int i = 0; i < 50; ++i) {
    scores.push_back(0.1 + 0.005 * i);
    truth.push_back(0);
    scores.push_back(0.65 + 0.005 * i);
    truth.push_back(1);
  }
  const ThresholdSearch best = best_threshold_by_f1(scores, truth);
  EXPECT_DOUBLE_EQ(best.best_macro_f1, 1.0);
  EXPECT_GT(best.best_threshold, 0.34);
  EXPECT_LT(best.best_threshold, 0.65);
}

TEST(ThresholdTest, SearchHandlesOverlap) {
  const std::vector<double> scores{0.1, 0.2, 0.3, 0.4, 0.25, 0.35};
  const std::vector<int> truth{0, 0, 1, 1, 1, 0};
  const ThresholdSearch best = best_threshold_by_f1(scores, truth);
  EXPECT_GT(best.best_macro_f1, 0.5);
  EXPECT_LT(best.best_macro_f1, 1.0);
}

TEST(ThresholdTest, RejectsBadInput) {
  EXPECT_THROW(best_threshold_by_f1({}, {}), std::invalid_argument);
  EXPECT_THROW(best_threshold_by_f1({0.1}, {0, 1}), std::invalid_argument);
}

// Regression: a NaN score used to wedge the tie-grouping loop forever
// (NaN == NaN is false, so the sweep index never advanced).  NaN must be
// treated exactly as predictions_at_threshold treats it — `NaN > t` is false
// for every t, i.e. permanently predicted healthy — and the search must
// still find the separating threshold among the finite scores.
TEST(ThresholdTest, NanScoresTerminateAndCountAsPredictedHealthy) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> scores{0.1, 0.2, nan, 0.8, 0.9, nan};
  const std::vector<int> truth{0, 0, 0, 1, 1, 1};
  const ThresholdSearch best = best_threshold_by_f1(scores, truth);
  EXPECT_GT(best.best_threshold, 0.2);
  EXPECT_LT(best.best_threshold, 0.8);
  // At the best threshold: 2 TP, 3 TN, 1 FN (the anomalous NaN), 0 FP.
  const auto cm = confusion_matrix(
      truth, predictions_at_threshold(scores, best.best_threshold));
  EXPECT_DOUBLE_EQ(best.best_macro_f1, macro_f1(cm));
  EXPECT_EQ(cm.false_negative, 1u);
  EXPECT_EQ(cm.false_positive, 0u);
}

TEST(ThresholdTest, AllNanScoresYieldAllHealthyPrediction) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> scores{nan, nan, nan};
  const std::vector<int> truth{0, 1, 1};
  const ThresholdSearch best = best_threshold_by_f1(scores, truth);
  EXPECT_TRUE(std::isinf(best.best_threshold));
  // All-healthy on {0,1,1}: positive-class F1 = 0; negative class has
  // precision 1/3 and recall 1, so F1 = 1/2 and macro-F1 = 1/4.
  EXPECT_DOUBLE_EQ(best.best_macro_f1, 0.25);
}

// Infinite scores are legal threshold candidates and must not stall the
// sweep either (Inf == Inf holds, but the midpoint/nextafter arithmetic
// has to stay finite-safe).
TEST(ThresholdTest, InfiniteScoresAreSweptNormally) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> scores{0.1, 0.2, inf, inf};
  const std::vector<int> truth{0, 0, 1, 1};
  const ThresholdSearch best = best_threshold_by_f1(scores, truth);
  EXPECT_DOUBLE_EQ(best.best_macro_f1, 1.0);
  EXPECT_GT(best.best_threshold, 0.2);
}

}  // namespace
}  // namespace prodigy::eval
