// Property-based tests for the feature extractors: exact invariance /
// equivariance laws checked over randomized series families.  These pin the
// mathematical identities the detection pipeline quietly relies on (e.g.
// scale-free features stay comparable across metrics of different units).
#include "features/extractors.hpp"
#include "features/registry.hpp"
#include "tensor/stats.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace prodigy::features {
namespace {

/// Series families exercised by every property.
enum class Family { GaussianNoise, Sine, Ramp, RandomWalk, Bursty };

std::vector<double> make_series(Family family, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs(n);
  double walk = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    switch (family) {
      case Family::GaussianNoise:
        xs[i] = rng.gaussian(5.0, 2.0);
        break;
      case Family::Sine:
        xs[i] = 3.0 + std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 24.0) +
                0.05 * rng.gaussian();
        break;
      case Family::Ramp:
        xs[i] = 0.1 * static_cast<double>(i) + 0.2 * rng.gaussian();
        break;
      case Family::RandomWalk:
        walk += rng.gaussian();
        xs[i] = walk;
        break;
      case Family::Bursty:
        xs[i] = rng.bernoulli(0.05) ? rng.uniform(20.0, 50.0) : rng.uniform(0.0, 1.0);
        break;
    }
  }
  return xs;
}

class ExtractorPropertyTest
    : public ::testing::TestWithParam<std::tuple<Family, std::uint64_t>> {
 protected:
  std::vector<double> series() const {
    return make_series(std::get<0>(GetParam()), 192, std::get<1>(GetParam()));
  }
  static std::vector<double> shifted(std::vector<double> xs, double delta) {
    for (auto& x : xs) x += delta;
    return xs;
  }
  static std::vector<double> scaled(std::vector<double> xs, double factor) {
    for (auto& x : xs) x *= factor;
    return xs;
  }
  static std::vector<double> reversed(std::vector<double> xs) {
    std::reverse(xs.begin(), xs.end());
    return xs;
  }
};

TEST_P(ExtractorPropertyTest, ShiftInvariantFeatures) {
  const auto xs = series();
  const auto ys = shifted(xs, 37.5);
  // These depend only on deviations from the mean.
  EXPECT_NEAR(tensor::stddev(xs), tensor::stddev(ys), 1e-9);
  EXPECT_NEAR(tensor::skewness(xs), tensor::skewness(ys), 1e-8);
  EXPECT_NEAR(tensor::kurtosis(xs), tensor::kurtosis(ys), 1e-7);
  EXPECT_NEAR(tensor::autocorrelation(xs, 3), tensor::autocorrelation(ys, 3), 1e-8);
  EXPECT_NEAR(mean_abs_change(xs), mean_abs_change(ys), 1e-9);
  EXPECT_NEAR(value_range(xs), value_range(ys), 1e-9);
  EXPECT_NEAR(count_above_mean(xs), count_above_mean(ys), 1e-12);
  EXPECT_NEAR(mean_crossing_rate(xs), mean_crossing_rate(ys), 1e-12);
  EXPECT_NEAR(cid_ce(xs, true), cid_ce(ys, true), 1e-8);
  EXPECT_NEAR(binned_entropy(xs, 10), binned_entropy(ys, 10), 1e-9);
  EXPECT_NEAR(ratio_beyond_r_sigma(xs, 1.0), ratio_beyond_r_sigma(ys, 1.0), 1e-12);
}

TEST_P(ExtractorPropertyTest, ScaleInvariantFeatures) {
  const auto xs = series();
  const auto ys = scaled(xs, 4.5);
  EXPECT_NEAR(tensor::skewness(xs), tensor::skewness(ys), 1e-8);
  EXPECT_NEAR(tensor::kurtosis(xs), tensor::kurtosis(ys), 1e-7);
  EXPECT_NEAR(tensor::autocorrelation(xs, 5), tensor::autocorrelation(ys, 5), 1e-8);
  EXPECT_NEAR(variation_coefficient(xs), variation_coefficient(ys), 1e-9);
  EXPECT_NEAR(count_above_mean(xs), count_above_mean(ys), 1e-12);
  EXPECT_NEAR(longest_strike_above_mean(xs), longest_strike_above_mean(ys), 1e-12);
  EXPECT_NEAR(cid_ce(xs, true), cid_ce(ys, true), 1e-8);
  EXPECT_NEAR(first_location_of_maximum(xs), first_location_of_maximum(ys), 1e-12);
  EXPECT_NEAR(linear_trend(xs).r_squared, linear_trend(ys).r_squared, 1e-9);
}

TEST_P(ExtractorPropertyTest, HomogeneousFeaturesScaleExactly) {
  const auto xs = series();
  const double factor = 2.5;
  const auto ys = scaled(xs, factor);
  // Degree-1 features.
  EXPECT_NEAR(tensor::mean(ys), factor * tensor::mean(xs), 1e-8);
  EXPECT_NEAR(tensor::stddev(ys), factor * tensor::stddev(xs), 1e-8);
  EXPECT_NEAR(mean_abs_change(ys), factor * mean_abs_change(xs), 1e-8);
  EXPECT_NEAR(value_range(ys), factor * value_range(xs), 1e-8);
  EXPECT_NEAR(root_mean_square(ys), factor * root_mean_square(xs), 1e-8);
  // Degree-2.
  EXPECT_NEAR(abs_energy(ys), factor * factor * abs_energy(xs),
              1e-6 * std::abs(abs_energy(xs)));
  // Degree-3.
  EXPECT_NEAR(c3(ys, 1), factor * factor * factor * c3(xs, 1),
              1e-6 * std::max(1.0, std::abs(c3(xs, 1))));
}

TEST_P(ExtractorPropertyTest, ReversalSymmetries) {
  const auto xs = series();
  const auto ys = reversed(xs);
  // Distributional features ignore time order entirely.
  EXPECT_NEAR(tensor::mean(xs), tensor::mean(ys), 1e-9);
  EXPECT_NEAR(tensor::quantile(xs, 0.9), tensor::quantile(ys, 0.9), 1e-9);
  EXPECT_NEAR(binned_entropy(xs, 10), binned_entropy(ys, 10), 1e-9);
  EXPECT_NEAR(benford_correlation(xs), benford_correlation(ys), 1e-9);
  // Autocorrelation-family features are reversal-invariant too.
  EXPECT_NEAR(tensor::autocorrelation(xs, 2), tensor::autocorrelation(ys, 2), 1e-8);
  EXPECT_NEAR(abs_energy(xs), abs_energy(ys), 1e-8);
  // The time-reversal asymmetry statistic flips sign by construction.
  EXPECT_NEAR(time_reversal_asymmetry(xs, 1), -time_reversal_asymmetry(ys, 1),
              1e-6 * std::max(1.0, std::abs(time_reversal_asymmetry(xs, 1))));
  // Extremum locations mirror: first-of-max becomes (n-1-last-of-max)/n.
  const double n = static_cast<double>(xs.size());
  EXPECT_NEAR(first_location_of_maximum(xs),
              (n - 1.0) / n - last_location_of_maximum(ys), 1e-9);
}

TEST_P(ExtractorPropertyTest, BoundedFeaturesStayInRange) {
  const auto xs = series();
  for (const double value :
       {count_above_mean(xs), count_below_mean(xs), longest_strike_above_mean(xs),
        longest_strike_below_mean(xs), mean_crossing_rate(xs),
        first_location_of_maximum(xs), last_location_of_minimum(xs),
        ratio_beyond_r_sigma(xs, 2.0)}) {
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
  }
  EXPECT_GE(binned_entropy(xs, 10), 0.0);
  EXPECT_LE(binned_entropy(xs, 10), std::log(10.0) + 1e-12);
  EXPECT_GE(linear_trend(xs).r_squared, 0.0);
  EXPECT_LE(linear_trend(xs).r_squared, 1.0 + 1e-12);
  const double benford = benford_correlation(xs);
  EXPECT_GE(benford, -1.0 - 1e-12);
  EXPECT_LE(benford, 1.0 + 1e-12);
}

TEST_P(ExtractorPropertyTest, WholeRegistryIsFiniteAndDeterministic) {
  const auto xs = series();
  const auto a = compute_all_features(xs);
  const auto b = compute_all_features(xs);
  ASSERT_EQ(a.size(), features_per_metric());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(std::isfinite(a[i])) << feature_registry()[i].name;
    EXPECT_DOUBLE_EQ(a[i], b[i]) << feature_registry()[i].name;
  }
}

TEST_P(ExtractorPropertyTest, CountAboveAndBelowMeanPartition) {
  const auto xs = series();
  std::size_t at_mean = 0;
  const double mean = tensor::mean(xs);
  for (const double x : xs) at_mean += x == mean ? 1 : 0;
  EXPECT_NEAR(count_above_mean(xs) + count_below_mean(xs) +
                  static_cast<double>(at_mean) / static_cast<double>(xs.size()),
              1.0, 1e-12);
}

std::string family_param_name(
    const ::testing::TestParamInfo<std::tuple<Family, std::uint64_t>>& info) {
  static constexpr const char* kNames[] = {"GaussianNoise", "Sine", "Ramp",
                                           "RandomWalk", "Bursty"};
  return std::string(kNames[static_cast<int>(std::get<0>(info.param))]) +
         "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ExtractorPropertyTest,
    ::testing::Combine(::testing::Values(Family::GaussianNoise, Family::Sine,
                                         Family::Ramp, Family::RandomWalk,
                                         Family::Bursty),
                       ::testing::Values(1u, 2u, 3u)),
    family_param_name);

}  // namespace
}  // namespace prodigy::features
