#include "core/prodigy_detector.hpp"

#include "eval/metrics.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace prodigy::core {
namespace {

ProdigyConfig fast_config() {
  ProdigyConfig config;
  config.vae.encoder_hidden = {16, 8};
  config.vae.latent_dim = 3;
  config.train.epochs = 150;
  config.train.batch_size = 32;
  config.train.learning_rate = 2e-3;
  config.train.early_stopping_patience = 0;
  config.train.validation_split = 0.0;
  return config;
}

TEST(ProdigyDetectorTest, UsageErrorsBeforeFit) {
  ProdigyDetector detector(fast_config());
  EXPECT_FALSE(detector.fitted());
  EXPECT_THROW(detector.score(tensor::Matrix(1, 4, 0.0)), std::logic_error);
}

TEST(ProdigyDetectorTest, FitRejectsDegenerateInputs) {
  ProdigyDetector detector(fast_config());
  EXPECT_THROW(detector.fit_healthy(tensor::Matrix{}), std::invalid_argument);
  EXPECT_THROW(detector.fit(tensor::Matrix(2, 3, 0.0), {1, 1}), std::invalid_argument);
  EXPECT_THROW(detector.fit(tensor::Matrix(2, 3, 0.0), {0}), std::invalid_argument);
}

TEST(ProdigyDetectorTest, DetectsShiftedAnomalies) {
  auto [X, y] = testing::blob_dataset(300, 40, 8, 4.0, 1);
  ProdigyDetector detector(fast_config());
  detector.fit(X, y);  // trains on the 300 healthy rows only
  EXPECT_TRUE(detector.fitted());

  auto [X_test, y_test] = testing::blob_dataset(60, 60, 8, 4.0, 2);
  const auto predictions = detector.predict(X_test);
  const double f1 = eval::macro_f1(y_test, predictions);
  EXPECT_GT(f1, 0.85);
}

TEST(ProdigyDetectorTest, ThresholdIs99thPercentileOfTrainingErrors) {
  auto [X, y] = testing::blob_dataset(200, 0, 6, 0.0, 3);
  ProdigyDetector detector(fast_config());
  detector.fit_healthy(X);
  const auto errors = detector.score(X);
  std::vector<double> sorted(errors);
  std::sort(sorted.begin(), sorted.end());
  // ~1% of healthy training samples sit above the threshold.
  std::size_t above = 0;
  for (const double e : errors) above += e > detector.threshold() ? 1 : 0;
  EXPECT_LE(above, errors.size() / 50);
}

TEST(ProdigyDetectorTest, ThresholdPercentileIsConfigurable) {
  auto config = fast_config();
  config.threshold_percentile = 50.0;
  auto [X, y] = testing::blob_dataset(200, 0, 6, 0.0, 4);
  ProdigyDetector detector(config);
  detector.fit_healthy(X);
  std::size_t above = 0;
  for (const double e : detector.score(X)) above += e > detector.threshold() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(above), 100.0, 15.0);
}

TEST(ProdigyDetectorTest, TuneThresholdImprovesOrMatchesF1) {
  auto [X, y] = testing::blob_dataset(250, 30, 8, 3.0, 5);
  ProdigyDetector detector(fast_config());
  detector.fit(X, y);

  auto [X_test, y_test] = testing::blob_dataset(80, 80, 8, 3.0, 6);
  const double before = eval::macro_f1(y_test, detector.predict(X_test));
  const double tuned_f1 = detector.tune_threshold(X_test, y_test);
  const double after = eval::macro_f1(y_test, detector.predict(X_test));
  EXPECT_GE(after + 1e-9, before);
  EXPECT_NEAR(tuned_f1, after, 1e-9);
}

TEST(ProdigyDetectorTest, SetThresholdOverrides) {
  auto [X, y] = testing::blob_dataset(100, 0, 4, 0.0, 7);
  ProdigyDetector detector(fast_config());
  detector.fit_healthy(X);
  detector.set_threshold(1e9);
  const auto predictions = detector.predict(X);
  for (const int p : predictions) EXPECT_EQ(p, 0);
  detector.set_threshold(-1.0);
  for (const int p : detector.predict(X)) EXPECT_EQ(p, 1);
}

TEST(ProdigyDetectorTest, SaveLoadPredictsIdentically) {
  auto [X, y] = testing::blob_dataset(150, 20, 6, 3.0, 8);
  ProdigyDetector detector(fast_config());
  detector.fit(X, y);

  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_detector_test.bin").string();
  {
    util::BinaryWriter writer(path);
    detector.save(writer);
  }
  util::BinaryReader reader(path);
  const ProdigyDetector loaded = ProdigyDetector::load(reader);
  std::remove(path.c_str());

  EXPECT_DOUBLE_EQ(loaded.threshold(), detector.threshold());
  const auto a = detector.predict(X);
  const auto b = loaded.predict(X);
  EXPECT_EQ(a, b);
}

TEST(ProdigyDetectorTest, SaveBeforeFitThrows) {
  ProdigyDetector detector(fast_config());
  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_detector_bad.bin").string();
  util::BinaryWriter writer(path);
  EXPECT_THROW(detector.save(writer), std::logic_error);
  std::remove(path.c_str());
}


TEST(ProdigyDetectorTest, UnsupervisedFitRejectsBadContamination) {
  ProdigyDetector detector(fast_config());
  auto [X, y] = testing::blob_dataset(50, 0, 4, 0.0, 20);
  EXPECT_THROW(detector.fit_unsupervised(X, -0.1), std::invalid_argument);
  EXPECT_THROW(detector.fit_unsupervised(X, 0.5), std::invalid_argument);
}

TEST(ProdigyDetectorTest, UnsupervisedFitPurgesContamination) {
  // Unlabeled training data with ~8% hidden anomalies (the paper's §7
  // future-work scenario: production telemetry is never perfectly healthy).
  auto [X, y] = testing::blob_dataset(230, 20, 8, 5.0, 21);
  ProdigyDetector detector(fast_config());
  const auto report = detector.fit_unsupervised(X, 0.08, 2);

  EXPECT_EQ(report.rounds, 3u);  // initial fit + 2 refinements
  EXPECT_EQ(report.excluded_per_round.size(), 2u);
  EXPECT_LT(report.final_training_size, 250u);
  EXPECT_GE(report.final_training_size, 200u);

  // The self-labeling purge removed (almost) all hidden anomalies: rows
  // 230..249 are the anomalous ones in blob_dataset's layout.
  std::size_t surviving_anomalies = 0;
  for (const auto row : report.kept_indices) {
    surviving_anomalies += row >= 230 ? 1 : 0;
  }
  EXPECT_LE(surviving_anomalies, 2u);
}

TEST(ProdigyDetectorTest, UnsupervisedFitTightensThresholdVsNaive) {
  auto [X, y] = testing::blob_dataset(230, 20, 8, 5.0, 23);
  ProdigyDetector naive(fast_config());
  naive.fit_healthy(X);  // pretends everything is healthy
  ProdigyDetector robust(fast_config());
  robust.fit_unsupervised(X, 0.08, 2);
  // The naive model's 99th-percentile threshold is dragged up by the hidden
  // anomalies; the robust fit ends with a much tighter threshold.
  EXPECT_LT(robust.threshold(), naive.threshold());
}

TEST(ProdigyDetectorTest, UnsupervisedFitOnCleanDataMatchesHealthyFit) {
  auto [X, y] = testing::blob_dataset(200, 0, 6, 0.0, 24);
  ProdigyDetector robust(fast_config());
  const auto report = robust.fit_unsupervised(X, 0.0, 3);
  EXPECT_EQ(report.rounds, 1u);  // contamination 0 -> single fit
  EXPECT_EQ(report.final_training_size, 200u);
}

TEST(ProdigyDetectorTest, UnsupervisedFitRestoresEpochsOnThrow) {
  // Regression: fit_unsupervised temporarily shrinks config_.train.epochs for
  // the screening rounds.  A fit that threw mid-loop used to leave the
  // detector stuck at the screening budget, so every later supervised fit
  // silently undertrained.  Forcing an input_dim mismatch makes the first
  // screening fit throw.
  auto config = fast_config();
  auto [X, y] = testing::blob_dataset(64, 0, 6, 0.0, 30);
  config.vae.input_dim = X.cols() + 1;  // fit_healthy will reject the data
  ProdigyDetector detector(config);
  EXPECT_THROW(detector.fit_unsupervised(X, 0.08, 2), std::invalid_argument);
  EXPECT_EQ(detector.config().train.epochs, 150u);
}

TEST(ProdigyDetectorTest, LoadedDetectorRefitsWithPersistedArchitecture) {
  // Regression: load() used to leave config_.vae at its defaults, so a
  // refit on a loaded detector would silently swap in the default
  // architecture (latent 8, hidden {64, 32}) instead of the persisted one.
  auto [X, y] = testing::blob_dataset(120, 0, 6, 0.0, 31);
  ProdigyDetector detector(fast_config());
  detector.fit_healthy(X);

  const auto path =
      (std::filesystem::temp_directory_path() / "prodigy_detector_refit.bin").string();
  {
    util::BinaryWriter writer(path);
    detector.save(writer);
  }
  util::BinaryReader reader(path);
  ProdigyDetector loaded = ProdigyDetector::load(reader);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.config().vae.latent_dim, 3u);
  EXPECT_EQ(loaded.config().vae.input_dim, X.cols());

  loaded.fit_healthy(X);  // must train the persisted architecture, not defaults
  EXPECT_EQ(loaded.vae().config().latent_dim, 3u);
  EXPECT_EQ(loaded.vae().config().input_dim, X.cols());
  EXPECT_EQ(loaded.vae().config().encoder_hidden, (std::vector<std::size_t>{16, 8}));
}

TEST(ProdigyDetectorTest, NameIsProdigy) {
  EXPECT_EQ(ProdigyDetector().name(), "Prodigy");
}

}  // namespace
}  // namespace prodigy::core
