// Shared fixtures: tiny synthetic datasets that are fast to build on one
// core but still exercise the full pipeline.
#pragma once

#include "features/feature_matrix.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

#include <vector>

namespace prodigy::testing {

/// Gaussian blob dataset: healthy points around the origin, anomalies offset
/// by `shift` on every axis.  Returns (X, labels).
inline std::pair<tensor::Matrix, std::vector<int>> blob_dataset(
    std::size_t healthy, std::size_t anomalous, std::size_t dims, double shift,
    std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Matrix X(healthy + anomalous, dims);
  std::vector<int> labels(healthy + anomalous, 0);
  for (std::size_t r = 0; r < healthy + anomalous; ++r) {
    const bool anomaly = r >= healthy;
    labels[r] = anomaly ? 1 : 0;
    for (std::size_t c = 0; c < dims; ++c) {
      X(r, c) = rng.gaussian(anomaly ? shift : 0.0, 1.0);
    }
  }
  return {std::move(X), std::move(labels)};
}

/// Wraps a blob dataset into a FeatureDataset with synthetic column names of
/// the "<Metric>::<sampler>::<feature>" form (two features per metric).
inline features::FeatureDataset blob_feature_dataset(std::size_t healthy,
                                                     std::size_t anomalous,
                                                     std::size_t dims, double shift,
                                                     std::uint64_t seed) {
  auto [X, labels] = blob_dataset(healthy, anomalous, dims, shift, seed);
  features::FeatureDataset dataset;
  dataset.X = std::move(X);
  dataset.labels = std::move(labels);
  dataset.meta.resize(dataset.labels.size());
  for (std::size_t i = 0; i < dataset.meta.size(); ++i) {
    dataset.meta[i].job_id = static_cast<std::int64_t>(i / 4);
    dataset.meta[i].component_id = static_cast<std::int64_t>(i);
    dataset.meta[i].app = "test";
    dataset.meta[i].anomaly = dataset.labels[i] ? "memleak" : "none";
  }
  dataset.feature_names.reserve(dims);
  for (std::size_t c = 0; c < dims; ++c) {
    dataset.feature_names.push_back("metric" + std::to_string(c / 2) +
                                    "::vmstat::feat" + std::to_string(c % 2));
  }
  return dataset;
}

}  // namespace prodigy::testing
