#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace prodigy::util {
namespace {

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.submit([&value] { value = 42; }).get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelForTest, NonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  parallel_for(pool, 10, 20, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
}

TEST(ParallelForTest, RethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 57) throw std::logic_error("bad index");
                   }),
      std::logic_error);
}

TEST(ParallelForTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(pool, 0, 10, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // sequential execution preserves order
}

TEST(ParallelForTest, GlobalPoolOverloadWorks) {
  std::atomic<int> count{0};
  parallel_for(0, 64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelForTest, LargeGrainStillCoversRange) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  parallel_for(pool, 0, 10, [&](std::size_t) { ++count; }, 100);
  EXPECT_EQ(count.load(), 10);
}

// Regression: a parallel_for issued from inside a pool task used to block in
// future.get() while its chunks sat behind other blocked workers, wedging
// the process.  Nested calls must now run inline and complete.  This test
// binary carries a ctest TIMEOUT so a reintroduced deadlock fails fast.
TEST(ParallelForTest, NestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  // Outer width > worker count so every worker is busy with an outer chunk.
  parallel_for(pool, 0, 8, [&](std::size_t) {
    parallel_for(pool, 0, 64, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 8 * 64);
}

TEST(ParallelForTest, DeeplyNestedParallelForCompletes) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  parallel_for(pool, 0, 6, [&](std::size_t) {
    parallel_for(pool, 0, 4, [&](std::size_t) {
      parallel_for(pool, 0, 16, [&](std::size_t) { ++count; });
    });
  });
  EXPECT_EQ(count.load(), 6 * 4 * 16);
}

TEST(ParallelForTest, NestedGlobalPoolOverloadCompletes) {
  std::atomic<int> count{0};
  parallel_for(0, 4, [&](std::size_t) {
    parallel_for(0, 32, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 4 * 32);
}

TEST(ThreadPoolTest, OnWorkerThreadDetection) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.on_worker_thread());  // caller is not a worker
  std::atomic<bool> inside{false}, inside_other{false};
  pool.submit([&] {
        inside = pool.on_worker_thread();
        inside_other = other.on_worker_thread();
      })
      .get();
  EXPECT_TRUE(inside.load());
  EXPECT_FALSE(inside_other.load());  // flag is per-pool, not per-thread
}

}  // namespace
}  // namespace prodigy::util
