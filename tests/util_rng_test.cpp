#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace prodigy::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(123), b(124);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(3);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIndexWithinBound) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(6);
  constexpr int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(7);
  constexpr int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(9);
  const auto perm = rng.permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(RngTest, PermutationActuallyShuffles) {
  Rng rng(10);
  const auto perm = rng.permutation(1000);
  std::size_t fixed_points = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) fixed_points += perm[i] == i ? 1 : 0;
  EXPECT_LT(fixed_points, 20u);  // expected ~1 for a uniform shuffle
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent() == child() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitMixIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(RngTest, WorksWithStdShuffleConcept) {
  static_assert(std::uniform_random_bit_generator<Rng>);
}

}  // namespace
}  // namespace prodigy::util
