// Shard placement contract (deploy/shard_router.hpp): the node-hash must be
// (a) stable — pinned golden vectors, so a hash change cannot silently
// reshuffle a deployed fleet's shard-local state — and (b) uniform — shard
// occupancy over realistic node-ID corpora passes a chi-square bound for
// every shard count the service runs at.
#include "deploy/shard_router.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

namespace prodigy::deploy {
namespace {

TEST(ShardRouterTest, GoldenHashVectorsPinTheMixFunction) {
  // FROZEN: these values define the fleet placement.  If this test fails,
  // you changed the hash — that reshuffles every shard-local window, cache,
  // and store on a live fleet.  Do not update the goldens without a
  // migration story.
  EXPECT_EQ(node_placement_hash(0, 0), 0x0397ab29740681d9ULL);
  EXPECT_EQ(node_placement_hash(1, 0), 0xddc1ed05282d1d64ULL);
  EXPECT_EQ(node_placement_hash(0, 1), 0x4870e329627082a1ULL);
  EXPECT_EQ(node_placement_hash(1, 1), 0xc3d2f46d90c18273ULL);
  EXPECT_EQ(node_placement_hash(42, 4200), 0xadafac75b9b34e4cULL);
  EXPECT_EQ(node_placement_hash(-1, -1), 0x96b8647c27e9e0b1ULL);
  EXPECT_EQ(node_placement_hash(INT64_MAX, INT64_MIN),
            0xd120189f4c3ba2ebULL);
}

TEST(ShardRouterTest, GoldenShardAssignmentsPinTheMapping) {
  // The derived (job, component) -> shard mapping for the shard counts the
  // sharded service is deployed at.  Same freeze rules as the hash goldens.
  struct Golden {
    std::int64_t job;
    std::int64_t component;
    std::size_t shards;
    std::size_t expected;
  };
  const std::vector<Golden> goldens = {
      {1, 100, 2, 0},  {1, 101, 2, 1},  {1, 102, 2, 1},  {1, 103, 2, 1},
      {1, 100, 4, 1},  {1, 101, 4, 2},  {1, 102, 4, 3},  {1, 103, 4, 3},
      {1, 100, 8, 3},  {1, 101, 8, 5},  {1, 102, 8, 7},  {1, 103, 8, 7},
      {7, 700, 8, 7},  {7, 701, 8, 1},  {50, 5000, 8, 7}, {50, 5001, 8, 2},
  };
  for (const auto& golden : goldens) {
    EXPECT_EQ(shard_of(golden.job, golden.component, golden.shards),
              golden.expected)
        << "node (" << golden.job << ", " << golden.component << ") @ "
        << golden.shards << " shards";
  }
}

TEST(ShardRouterTest, PlacementIsStableAcrossCalls) {
  util::Rng rng(20260808);
  for (int i = 0; i < 2000; ++i) {
    const auto job = static_cast<std::int64_t>(rng() % 100000);
    const auto component = static_cast<std::int64_t>(rng() % 1000000);
    for (const std::size_t shards : {1u, 2u, 3u, 4u, 8u, 16u}) {
      const std::size_t first = shard_of(job, component, shards);
      EXPECT_LT(first, shards);
      EXPECT_EQ(shard_of(job, component, shards), first);
    }
  }
}

TEST(ShardRouterTest, ZeroOrOneShardsCollapseToShardZero) {
  EXPECT_EQ(shard_of(123, 456, 0), 0u);
  EXPECT_EQ(shard_of(123, 456, 1), 0u);
}

/// chi2 occupancy statistic for `nodes` assignments over `shards` bins.
double occupancy_chi2(const std::vector<std::pair<std::int64_t, std::int64_t>>& nodes,
                      std::size_t shards) {
  std::vector<std::size_t> counts(shards, 0);
  for (const auto& [job, component] : nodes) {
    ++counts[shard_of(job, component, shards)];
  }
  const double expected = static_cast<double>(nodes.size()) / shards;
  double chi2 = 0.0;
  for (const std::size_t count : counts) {
    const double delta = static_cast<double>(count) - expected;
    chi2 += delta * delta / expected;
  }
  return chi2;
}

/// chi-square critical values at p = 0.001 for df = shards - 1.  An unlucky
/// corpus fails one bound with probability 1e-3; the corpora below are fixed
/// (seeded), so the test is deterministic — the bound only bites if the hash
/// itself skews.
double chi2_bound(std::size_t shards) {
  static const std::map<std::size_t, double> critical = {
      {2, 10.83}, {3, 13.82}, {4, 16.27}, {5, 18.47},
      {8, 24.32}, {16, 37.70}, {32, 61.10}, {64, 103.44}};
  return critical.at(shards);
}

TEST(ShardRouterTest, SequentialFleetIdsSpreadUniformly) {
  // The common HPC layout: jobs with dense sequential component ids
  // (first_component_id = job * 100 + n), exactly what the simulator emits.
  std::vector<std::pair<std::int64_t, std::int64_t>> nodes;
  for (std::int64_t job = 1; job <= 64; ++job) {
    for (std::int64_t n = 0; n < 256; ++n) {
      nodes.emplace_back(job, job * 1000 + n);
    }
  }
  for (const std::size_t shards : {2u, 4u, 8u, 16u, 32u, 64u}) {
    EXPECT_LT(occupancy_chi2(nodes, shards), chi2_bound(shards))
        << "sequential corpus skews at " << shards << " shards";
  }
}

TEST(ShardRouterTest, RandomizedCorporaSpreadUniformly) {
  for (const std::uint64_t seed : {1ULL, 77ULL, 20260808ULL}) {
    util::Rng rng(seed);
    std::vector<std::pair<std::int64_t, std::int64_t>> nodes;
    nodes.reserve(16384);
    for (int i = 0; i < 16384; ++i) {
      nodes.emplace_back(static_cast<std::int64_t>(rng() >> 20),
                         static_cast<std::int64_t>(rng() >> 16));
    }
    for (const std::size_t shards : {2u, 4u, 8u, 16u}) {
      EXPECT_LT(occupancy_chi2(nodes, shards), chi2_bound(shards))
          << "random corpus (seed " << seed << ") skews at " << shards
          << " shards";
    }
  }
}

TEST(ShardRouterTest, SingleJobFleetSpreadsUniformly) {
  // A 50k-node fleet under ONE job id: component id is the only entropy.
  std::vector<std::pair<std::int64_t, std::int64_t>> nodes;
  for (std::int64_t n = 0; n < 50000; ++n) nodes.emplace_back(424242, n);
  for (const std::size_t shards : {2u, 4u, 8u, 16u, 32u}) {
    EXPECT_LT(occupancy_chi2(nodes, shards), chi2_bound(shards))
        << "single-job fleet skews at " << shards << " shards";
  }
}

}  // namespace
}  // namespace prodigy::deploy
