// Golden parity test for the SeriesProfile grouped-extraction engine.
//
// The registry used to evaluate one closure per feature, each recomputing
// its own mean/stddev/sort/FFT/trend fit.  The grouped engine shares those
// intermediates through a SeriesProfile.  This test keeps the historical
// one-closure-per-feature registry alive as a reference oracle and asserts
// that the rewrite changed *nothing observable*: the flat feature-name
// order is identical, and every value matches to 1e-12 relative across
// random, constant, spiky, and NaN-bearing series (plus empty/short
// degenerate inputs).
#include "features/extractors.hpp"
#include "features/feature_matrix.hpp"
#include "features/fft.hpp"
#include "features/kernels.hpp"
#include "features/registry.hpp"
#include "features/series_profile.hpp"
#include "tensor/stats.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <string>
#include <vector>

namespace prodigy::features {
namespace {

using OracleFn = std::function<double(std::span<const double>)>;

struct OracleDef {
  std::string name;
  OracleFn fn;
};

/// Historical two-pass approximate_entropy, inlined verbatim from the
/// pre-rewrite extractors.cpp so the oracle stays independent of the
/// production single-sweep implementation (which was rewritten in place).
double oracle_approximate_entropy(std::span<const double> xs, std::size_t m,
                                  double r_frac) {
  constexpr std::size_t kMaxPoints = 256;  // O(n^2) cost control
  std::vector<double> series;
  if (xs.size() > kMaxPoints) {
    series.reserve(kMaxPoints);
    const double stride = static_cast<double>(xs.size()) / kMaxPoints;
    for (std::size_t i = 0; i < kMaxPoints; ++i) {
      series.push_back(xs[static_cast<std::size_t>(static_cast<double>(i) * stride)]);
    }
  } else {
    series.assign(xs.begin(), xs.end());
  }
  const std::size_t n = series.size();
  if (n < m + 2) return 0.0;
  const double r = r_frac * tensor::stddev(series);
  if (r == 0.0) return 0.0;

  auto phi = [&](std::size_t dim) {
    const std::size_t count = n - dim + 1;
    double total = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t matches = 0;
      for (std::size_t j = 0; j < count; ++j) {
        bool match = true;
        for (std::size_t k = 0; k < dim && match; ++k) {
          if (std::abs(series[i + k] - series[j + k]) > r) match = false;
        }
        if (match) ++matches;
      }
      total += std::log(static_cast<double>(matches) / static_cast<double>(count));
    }
    return total / static_cast<double>(count);
  };

  return std::abs(phi(m) - phi(m + 1));
}

/// The pre-rewrite registry, verbatim: one independent closure per feature,
/// each calling the standalone extractors that recompute every intermediate.
std::vector<OracleDef> build_oracle_registry() {
  std::vector<OracleDef> defs;
  auto add = [&defs](std::string name, OracleFn fn) {
    defs.push_back({std::move(name), std::move(fn)});
  };

  add("sum", [](auto xs) { return tensor::sum(xs); });
  add("mean", [](auto xs) { return tensor::mean(xs); });
  add("median", [](auto xs) { return tensor::median(xs); });
  add("minimum", [](auto xs) { return tensor::min_value(xs); });
  add("maximum", [](auto xs) { return tensor::max_value(xs); });
  add("standard_deviation", [](auto xs) { return tensor::stddev(xs); });
  add("variance", [](auto xs) { return tensor::variance(xs); });
  add("skewness", [](auto xs) { return tensor::skewness(xs); });
  add("kurtosis", [](auto xs) { return tensor::kurtosis(xs); });
  add("range", [](auto xs) { return value_range(xs); });
  add("interquartile_range", [](auto xs) { return interquartile_range(xs); });
  add("variation_coefficient", [](auto xs) { return variation_coefficient(xs); });
  add("root_mean_square", [](auto xs) { return root_mean_square(xs); });
  add("abs_energy", [](auto xs) { return abs_energy(xs); });

  for (const double q : {0.05, 0.1, 0.25, 0.75, 0.9, 0.95}) {
    add("quantile_q" + std::to_string(static_cast<int>(q * 100)),
        [q](auto xs) { return tensor::quantile(xs, q); });
  }

  add("mean_abs_change", [](auto xs) { return mean_abs_change(xs); });
  add("mean_change", [](auto xs) { return mean_change(xs); });
  add("absolute_sum_of_changes", [](auto xs) { return absolute_sum_of_changes(xs); });
  add("mean_second_derivative_central",
      [](auto xs) { return mean_second_derivative_central(xs); });

  add("first_location_of_maximum", [](auto xs) { return first_location_of_maximum(xs); });
  add("last_location_of_maximum", [](auto xs) { return last_location_of_maximum(xs); });
  add("first_location_of_minimum", [](auto xs) { return first_location_of_minimum(xs); });
  add("last_location_of_minimum", [](auto xs) { return last_location_of_minimum(xs); });

  add("count_above_mean", [](auto xs) { return count_above_mean(xs); });
  add("count_below_mean", [](auto xs) { return count_below_mean(xs); });
  add("longest_strike_above_mean", [](auto xs) { return longest_strike_above_mean(xs); });
  add("longest_strike_below_mean", [](auto xs) { return longest_strike_below_mean(xs); });
  add("mean_crossing_rate", [](auto xs) { return mean_crossing_rate(xs); });
  for (const std::size_t support : {1u, 3u, 5u}) {
    add("number_peaks_support_" + std::to_string(support),
        [support](auto xs) { return number_peaks(xs, support); });
  }
  for (const double r : {1.0, 2.0, 3.0}) {
    add("ratio_beyond_" + std::to_string(static_cast<int>(r)) + "_sigma",
        [r](auto xs) { return ratio_beyond_r_sigma(xs, r); });
  }

  for (const std::size_t lag : {1u, 2u, 5u, 10u, 20u}) {
    add("autocorrelation_lag_" + std::to_string(lag),
        [lag](auto xs) { return tensor::autocorrelation(xs, lag); });
  }

  for (const std::size_t lag : {1u, 2u, 3u}) {
    add("c3_lag_" + std::to_string(lag), [lag](auto xs) { return c3(xs, lag); });
  }
  for (const std::size_t lag : {1u, 2u, 3u}) {
    add("time_reversal_asymmetry_lag_" + std::to_string(lag),
        [lag](auto xs) { return time_reversal_asymmetry(xs, lag); });
  }
  add("cid_ce_normalized", [](auto xs) { return cid_ce(xs, true); });
  add("cid_ce", [](auto xs) { return cid_ce(xs, false); });
  add("approximate_entropy_m2_r02",
      [](auto xs) { return oracle_approximate_entropy(xs, 2, 0.2); });
  add("binned_entropy_10", [](auto xs) { return binned_entropy(xs, 10); });
  add("benford_correlation", [](auto xs) { return benford_correlation(xs); });

  add("linear_trend_slope", [](auto xs) { return linear_trend(xs).slope; });
  add("linear_trend_intercept", [](auto xs) { return linear_trend(xs).intercept; });
  add("linear_trend_r_squared", [](auto xs) { return linear_trend(xs).r_squared; });

  add("spectral_total_power", [](auto xs) { return spectral_summary(xs).total_power; });
  add("spectral_centroid", [](auto xs) { return spectral_summary(xs).centroid; });
  add("spectral_spread", [](auto xs) { return spectral_summary(xs).spread; });
  add("spectral_entropy", [](auto xs) { return spectral_summary(xs).entropy; });
  add("spectral_peak_frequency",
      [](auto xs) { return spectral_summary(xs).peak_frequency; });
  for (int band = 0; band < 4; ++band) {
    add("spectral_band_power_" + std::to_string(band), [band](auto xs) {
      return spectral_summary(xs).band_power[band];
    });
  }

  return defs;
}

const std::vector<OracleDef>& oracle_registry() {
  static const std::vector<OracleDef> registry = build_oracle_registry();
  return registry;
}

/// The pre-rewrite compute_all_features: per-feature evaluation with the
/// same non-finite -> 0.0 clamp.
std::vector<double> oracle_all_features(std::span<const double> series) {
  std::vector<double> values;
  values.reserve(oracle_registry().size());
  for (const auto& def : oracle_registry()) {
    const double value = def.fn(series);
    values.push_back(std::isfinite(value) ? value : 0.0);
  }
  return values;
}

std::vector<double> series_random(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.gaussian(5.0, 2.0);
  return xs;
}

std::vector<double> series_constant(std::size_t n, double value) {
  return std::vector<double>(n, value);
}

std::vector<double> series_spiky(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = rng.bernoulli(0.04) ? rng.uniform(50.0, 200.0) : rng.uniform(0.0, 1.0);
  }
  return xs;
}

std::vector<double> series_with_nans(std::size_t n, std::uint64_t seed) {
  auto xs = series_random(n, seed);
  for (std::size_t i = 0; i < n; i += 17) {
    xs[i] = std::numeric_limits<double>::quiet_NaN();
  }
  xs[n / 2] = std::numeric_limits<double>::infinity();
  return xs;
}

void expect_parity(std::span<const double> series, const std::string& label) {
  const auto expected = oracle_all_features(series);
  const auto actual = compute_all_features(series);
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const double tol = 1e-12 * std::max(1.0, std::abs(expected[i]));
    EXPECT_NEAR(actual[i], expected[i], tol)
        << label << ": feature " << feature_registry()[i].name;
  }
}

TEST(FeatureParityTest, RegistryNamesAndOrderUnchanged) {
  const auto& oracle = oracle_registry();
  const auto& registry = feature_registry();
  ASSERT_EQ(registry.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(registry[i].name, oracle[i].name) << "at index " << i;
  }
}

TEST(FeatureParityTest, GroupsTileTheRegistryInOrder) {
  std::size_t next = 0;
  for (const auto& group : feature_groups()) {
    EXPECT_EQ(group.first, next) << "group " << group.name;
    EXPECT_GT(group.count, 0u) << "group " << group.name;
    for (std::size_t i = 0; i < group.count; ++i) {
      EXPECT_EQ(feature_registry()[group.first + i].group, group.name);
    }
    next = group.first + group.count;
  }
  EXPECT_EQ(next, features_per_metric());
}

TEST(FeatureParityTest, ColumnNamesUnchanged) {
  const std::vector<std::string> metrics{"cpu::user", "mem::free"};
  const auto names = feature_column_names(metrics);
  ASSERT_EQ(names.size(), 2 * oracle_registry().size());
  for (std::size_t m = 0; m < metrics.size(); ++m) {
    for (std::size_t i = 0; i < oracle_registry().size(); ++i) {
      EXPECT_EQ(names[m * oracle_registry().size() + i],
                metrics[m] + "::" + oracle_registry()[i].name);
    }
  }
}

TEST(FeatureParityTest, RandomSeries) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    expect_parity(series_random(1024, seed), "random/seed" + std::to_string(seed));
    expect_parity(series_random(193, seed), "random_odd/seed" + std::to_string(seed));
  }
}

TEST(FeatureParityTest, ConstantSeries) {
  expect_parity(series_constant(256, 0.0), "constant_zero");
  expect_parity(series_constant(256, 3.25), "constant");
  expect_parity(series_constant(300, 1e12), "constant_huge");
  expect_parity(series_constant(1, 7.0), "single_sample");
}

TEST(FeatureParityTest, SpikySeries) {
  for (const std::uint64_t seed : {11u, 12u}) {
    expect_parity(series_spiky(1024, seed), "spiky/seed" + std::to_string(seed));
  }
}

TEST(FeatureParityTest, NaNBearingSeries) {
  // Raw (pre-preprocessing) telemetry can carry NaN/Inf; both engines must
  // degrade identically (non-finite outputs clamp to 0 on both paths).
  expect_parity(series_with_nans(512, 21), "nan_bearing");
}

TEST(FeatureParityTest, DegenerateSeries) {
  expect_parity(std::vector<double>{}, "empty");
  expect_parity(std::vector<double>{4.0, -2.0}, "two_samples");
  expect_parity(std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}, "five_samples");
}

TEST(FeatureParityTest, ScratchReuseIsStateless) {
  // One scratch across different series/lengths must not leak state.
  FeatureScratch scratch;
  std::vector<double> out(features_per_metric());
  const auto long_series = series_random(2048, 31);
  const auto short_series = series_random(64, 32);
  compute_all_features(long_series, out, scratch);
  compute_all_features(short_series, out, scratch);
  const auto fresh = compute_all_features(short_series);
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], fresh[i]) << feature_registry()[i].name;
  }
}

TEST(FeatureParityTest, RejectsWrongOutputSize) {
  FeatureScratch scratch;
  std::vector<double> out(features_per_metric() + 1);
  const auto xs = series_random(32, 5);
  EXPECT_THROW(compute_all_features(xs, out, scratch), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SIMD-vs-scalar kernel sweeps.
//
// Every kernel in features/kernels.cpp promises bit-identical results
// between its vector path and its scalar oracle (fixed-lane reduction DAG
// for floating point, order-invariant tallies for integers).  These sweeps
// enforce that promise with EXPECT_EQ on the raw bit patterns across
// ragged lengths (vector-width remainders), constant/spiky/NaN-bearing
// data, and the dispatch seam itself.  Under -DPRODIGY_NO_SIMD the vector
// entry points compile to the scalar loops and the sweeps pin the fallback.

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Lengths straddling every lane boundary the kernels care about: empty,
/// sub-lane, one lane +/- 1, several lanes, and large odd sizes.
const std::vector<std::size_t>& sweep_lengths() {
  static const std::vector<std::size_t> lens{
      0, 1, 2, 3, 5, 7, 15, 16, 17, 31, 32, 33,
      63, 64, 65, 255, 256, 257, 1000, 1023, 1024, 1025};
  return lens;
}

std::vector<std::vector<double>> sweep_datasets(std::size_t n,
                                                bool include_nonfinite) {
  std::vector<std::vector<double>> sets;
  sets.push_back(series_random(n, 0x5eed + n));
  sets.push_back(series_constant(n, 3.25));
  sets.push_back(series_spiky(n, 0xab + n));
  if (include_nonfinite && n >= 2) sets.push_back(series_with_nans(n, n));
  return sets;
}

TEST(FeatureKernelTest, FloatReductionsMatchScalarBitwise) {
  for (const std::size_t n : sweep_lengths()) {
    for (const auto& xs : sweep_datasets(n, /*include_nonfinite=*/true)) {
      const double mean = n == 0 ? 0.0 : kernels::lane_sum_scalar(xs) /
                                             static_cast<double>(n);
      const double scale = 1.0 / static_cast<double>(std::max<std::size_t>(
                                     1, n > 0 ? n - 1 : 1));
      SCOPED_TRACE("n=" + std::to_string(n));

      const auto se = kernels::sum_energy(xs);
      const auto se_s = kernels::sum_energy_scalar(xs);
      EXPECT_EQ(bits(se.sum), bits(se_s.sum));
      EXPECT_EQ(bits(se.energy), bits(se_s.energy));

      EXPECT_EQ(bits(kernels::lane_sum(xs)), bits(kernels::lane_sum_scalar(xs)));
      EXPECT_EQ(bits(kernels::freq_weighted_sum(xs, scale)),
                bits(kernels::freq_weighted_sum_scalar(xs, scale)));
      EXPECT_EQ(bits(kernels::freq_spread_sum(xs, scale, 0.37)),
                bits(kernels::freq_spread_sum_scalar(xs, scale, 0.37)));
      EXPECT_EQ(bits(kernels::centered_sq_sum(xs, mean)),
                bits(kernels::centered_sq_sum_scalar(xs, mean)));
      EXPECT_EQ(bits(kernels::abs_change_sum(xs)),
                bits(kernels::abs_change_sum_scalar(xs)));
      EXPECT_EQ(bits(kernels::sq_change_sum(xs)),
                bits(kernels::sq_change_sum_scalar(xs)));
      EXPECT_EQ(bits(kernels::sq_zchange_sum(xs, mean, 1.7)),
                bits(kernels::sq_zchange_sum_scalar(xs, mean, 1.7)));
      EXPECT_EQ(bits(kernels::second_derivative_sum(xs)),
                bits(kernels::second_derivative_sum_scalar(xs)));

      const auto zm = kernels::zmoment_sums(xs, mean, 1.7);
      const auto zm_s = kernels::zmoment_sums_scalar(xs, mean, 1.7);
      EXPECT_EQ(bits(zm.z3), bits(zm_s.z3));
      EXPECT_EQ(bits(zm.z4), bits(zm_s.z4));

      const double t_mean = (static_cast<double>(n) - 1.0) / 2.0;
      const auto tr = kernels::trend_sums(xs, t_mean, mean);
      const auto tr_s = kernels::trend_sums_scalar(xs, t_mean, mean);
      EXPECT_EQ(bits(tr.stx), bits(tr_s.stx));
      EXPECT_EQ(bits(tr.stt), bits(tr_s.stt));
      EXPECT_EQ(bits(tr.sxx), bits(tr_s.sxx));

      for (const std::size_t lag : {std::size_t{1}, std::size_t{2},
                                    std::size_t{5}}) {
        if (n > lag) {
          EXPECT_EQ(bits(kernels::centered_lag_mac(xs, mean, lag)),
                    bits(kernels::centered_lag_mac_scalar(xs, mean, lag)));
        }
        if (n >= 2 * lag + 1) {
          const auto c3 = kernels::c3_tr_sums(xs, lag);
          const auto c3_s = kernels::c3_tr_sums_scalar(xs, lag);
          EXPECT_EQ(bits(c3.c3), bits(c3_s.c3));
          EXPECT_EQ(bits(c3.tr), bits(c3_s.tr));
        }
      }
    }
  }
}

TEST(FeatureKernelTest, IntegerTalliesMatchScalar) {
  for (const std::size_t n : sweep_lengths()) {
    for (const auto& xs : sweep_datasets(n, /*include_nonfinite=*/true)) {
      const double mean = n == 0 ? 0.0 : kernels::lane_sum_scalar(xs) /
                                             static_cast<double>(n);
      SCOPED_TRACE("n=" + std::to_string(n));

      const auto rs = kernels::run_stats(xs, mean);
      const auto rs_s = kernels::run_stats_scalar(xs, mean);
      EXPECT_EQ(rs.count_above, rs_s.count_above);
      EXPECT_EQ(rs.count_below, rs_s.count_below);
      EXPECT_EQ(rs.longest_above, rs_s.longest_above);
      EXPECT_EQ(rs.longest_below, rs_s.longest_below);
      EXPECT_EQ(rs.crossings, rs_s.crossings);

      EXPECT_EQ(kernels::count_beyond(xs, mean, 1.5),
                kernels::count_beyond_scalar(xs, mean, 1.5));
    }
    std::vector<std::uint8_t> flags(n);
    for (std::size_t i = 0; i < n; ++i) {
      flags[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 13);
    }
    for (const std::uint8_t bit : {std::uint8_t{1}, std::uint8_t{2}}) {
      EXPECT_EQ(kernels::count_flag_bits(flags, bit),
                kernels::count_flag_bits_scalar(flags, bit))
          << "n=" << n;
    }
  }
}

TEST(FeatureKernelTest, ApEnMatchCountsMatchScalar) {
  kernels::ApEnScratch scratch;
  kernels::ApEnScratch scratch_s;
  for (const std::size_t n : sweep_lengths()) {
    // Finite series only: approximate_entropy short-circuits non-finite r
    // before the kernel ever runs (the header documents the precondition).
    for (const auto& xs : sweep_datasets(n, /*include_nonfinite=*/false)) {
      for (const std::size_t m : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}}) {
        if (n < m + 2) continue;
        const double r = 0.2 * tensor::stddev(xs);  // 0 for constant data
        const std::size_t count_lo = n - m + 1;
        std::vector<std::uint32_t> lo(count_lo, 1), lo_s(count_lo, 1);
        std::vector<std::uint32_t> hi(count_lo - 1, 1), hi_s(count_lo - 1, 1);
        kernels::apen_match_counts(xs, m, r, lo, hi, scratch);
        kernels::apen_match_counts_scalar(xs, m, r, lo_s, hi_s, scratch_s);
        EXPECT_EQ(lo, lo_s) << "n=" << n << " m=" << m;
        EXPECT_EQ(hi, hi_s) << "n=" << n << " m=" << m;
      }
    }
  }
}

TEST(FeatureKernelTest, SdftApplyMatchesScalarBitwise) {
  constexpr std::uint32_t kW = 64;
  constexpr std::size_t kBins = kW / 2 + 1;
  std::vector<double> tw_re(kW), tw_im(kW);
  for (std::uint32_t t = 0; t < kW; ++t) {
    const double ang = -2.0 * std::numbers::pi * t / kW;
    tw_re[t] = std::cos(ang);
    tw_im[t] = std::sin(ang);
  }
  util::Rng rng(99);
  for (const std::size_t ndeltas : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}, std::size_t{16},
                                    std::size_t{64}, std::size_t{100}}) {
    for (const std::size_t u0 : {std::size_t{0}, std::size_t{7},
                                 std::size_t{1000}}) {
      std::vector<double> deltas(ndeltas);
      for (std::size_t j = 0; j < ndeltas; ++j) {
        // Zeros exercise the skip path on both sides.
        deltas[j] = rng.bernoulli(0.25) ? 0.0 : rng.gaussian(0.0, 2.0);
      }
      std::vector<double> re(kBins, 0.5), im(kBins, -0.25);
      std::vector<double> re_s = re, im_s = im;
      kernels::sdft_apply(re.data(), im.data(), kBins, tw_re.data(),
                          tw_im.data(), kW, u0, deltas);
      kernels::sdft_apply_scalar(re_s.data(), im_s.data(), kBins,
                                 tw_re.data(), tw_im.data(), kW, u0, deltas);
      for (std::size_t k = 0; k < kBins; ++k) {
        EXPECT_EQ(bits(re[k]), bits(re_s[k])) << "bin " << k;
        EXPECT_EQ(bits(im[k]), bits(im_s[k])) << "bin " << k;
      }
    }
  }
}

TEST(FeatureKernelTest, BinnedEntropySortedMatchesScan) {
  // The sorted-path replacement must agree exactly with the historical
  // O(n) scan whenever the profile routes to it (finite data, finite
  // extrema): identical bin counts, identical fold order, identical bits.
  for (const std::size_t n : sweep_lengths()) {
    for (const auto& xs : sweep_datasets(n, /*include_nonfinite=*/false)) {
      if (xs.empty()) continue;
      auto sorted = xs;
      std::sort(sorted.begin(), sorted.end());
      const double lo = sorted.front();
      const double hi = sorted.back();
      for (const std::size_t bins : {std::size_t{1}, std::size_t{3},
                                     std::size_t{10}, std::size_t{16}}) {
        EXPECT_EQ(bits(binned_entropy_sorted(sorted, bins, lo, hi)),
                  bits(binned_entropy(xs, bins, lo, hi)))
            << "n=" << n << " bins=" << bins;
      }
    }
  }
}

struct ScalarKernelGuard {
  explicit ScalarKernelGuard(bool on) { kernels::force_scalar(on); }
  ~ScalarKernelGuard() { kernels::force_scalar(false); }
};

TEST(FeatureKernelTest, ForceScalarPipelineBitEqual) {
  // The whole-engine version of the per-kernel sweeps: flipping the
  // dispatch seam must not change a single output bit for any feature on
  // any series class, because every kernel's scalar oracle evaluates the
  // same arithmetic DAG as its vector path.
  const std::vector<std::vector<double>> series{
      series_random(1024, 7), series_random(193, 8), series_spiky(1024, 9),
      series_with_nans(512, 10), series_constant(256, 3.25),
      std::vector<double>{}, std::vector<double>{4.0, -2.0}};
  for (std::size_t s = 0; s < series.size(); ++s) {
    std::vector<double> vec_out;
    std::vector<double> scalar_out;
    {
      ScalarKernelGuard guard(false);
      vec_out = compute_all_features(series[s]);
    }
    {
      ScalarKernelGuard guard(true);
      scalar_out = compute_all_features(series[s]);
    }
    ASSERT_EQ(vec_out.size(), scalar_out.size());
    for (std::size_t i = 0; i < vec_out.size(); ++i) {
      EXPECT_EQ(bits(vec_out[i]), bits(scalar_out[i]))
          << "series " << s << ": " << feature_registry()[i].name;
    }
  }
}

}  // namespace
}  // namespace prodigy::features
