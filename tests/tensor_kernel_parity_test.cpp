// Property tests for the register-tiled GEMM kernel library: every layout,
// epilogue, and shape class is checked bit-for-bit against the naive
// ascending-k oracle, NaN/Inf propagation is pinned for each variant, and
// results are required to be identical across thread-pool sizes and batch
// heights (the guarantee the streaming-vs-batch equality tests build on).
#include "tensor/kernels.hpp"

#include "nn/dense.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace {

using prodigy::tensor::Matrix;
namespace kernels = prodigy::tensor::kernels;
using kernels::Epilogue;
using kernels::FusedAct;
using kernels::Layout;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

Matrix random_matrix(std::size_t rows, std::size_t cols, prodigy::util::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.gaussian();
  return m;
}

// Physical operand shapes for logical C(m x n) = op(A) * op(B).
void physical_shapes(Layout layout, std::size_t m, std::size_t n, std::size_t k,
                     std::size_t& ar, std::size_t& ac, std::size_t& br,
                     std::size_t& bc) {
  switch (layout) {
    case Layout::NN:
      ar = m, ac = k, br = k, bc = n;
      break;
    case Layout::TN:
      ar = k, ac = m, br = k, bc = n;
      break;
    case Layout::NT:
      ar = m, ac = k, br = n, bc = k;
      break;
  }
}

Matrix run_naive(Layout layout, const Matrix& a, const Matrix& b, std::size_t m,
                 std::size_t n, std::size_t k, const Epilogue& ep = {},
                 const Matrix* c0 = nullptr) {
  Matrix c = c0 != nullptr ? *c0 : Matrix(m, n);
  kernels::gemm_naive(layout, m, n, k, a.data(), a.cols(), b.data(), b.cols(),
                      c.data(), c.cols(), ep);
  return c;
}

struct Shape {
  std::size_t m, n, k;
};

// Full tiles, ragged tails in every dimension, single row/column, empty
// inner dimension, empty output, and shapes large enough to trigger packing
// and (with a pool) banding.
const std::vector<Shape> kShapes = {
    {0, 5, 3},  {5, 0, 3},   {1, 1, 0},    {1, 1, 1},  {1, 7, 3},
    {3, 1, 5},  {4, 8, 16},  {5, 9, 17},   {2, 3, 1},  {1, 64, 256},
    {7, 13, 5}, {32, 24, 8}, {33, 25, 65}, {12, 8, 4}, {48, 70, 31},
};

const std::vector<Layout> kLayouts = {Layout::NN, Layout::TN, Layout::NT};

TEST(KernelParityTest, AllLayoutsMatchNaiveOracleBitExact) {
  prodigy::util::Rng rng(42);
  for (const Layout layout : kLayouts) {
    for (const auto& s : kShapes) {
      std::size_t ar, ac, br, bc;
      physical_shapes(layout, s.m, s.n, s.k, ar, ac, br, bc);
      const Matrix a = random_matrix(ar, ac, rng);
      const Matrix b = random_matrix(br, bc, rng);

      Matrix c;
      kernels::gemm(layout, a, b, c);
      const Matrix expected = run_naive(layout, a, b, s.m, s.n, s.k);

      ASSERT_EQ(c.rows(), s.m);
      ASSERT_EQ(c.cols(), s.n);
      for (std::size_t i = 0; i < c.size(); ++i) {
        // Bit-exact: the kernel promises the same ascending-k sum as the
        // oracle, not merely a small relative error.
        EXPECT_EQ(c.data()[i], expected.data()[i])
            << "layout=" << static_cast<int>(layout) << " m=" << s.m
            << " n=" << s.n << " k=" << s.k << " elem=" << i;
      }
    }
  }
}

TEST(KernelParityTest, AccumulateEpilogueMatchesOracle) {
  prodigy::util::Rng rng(7);
  for (const Layout layout : kLayouts) {
    for (const auto& s : kShapes) {
      std::size_t ar, ac, br, bc;
      physical_shapes(layout, s.m, s.n, s.k, ar, ac, br, bc);
      const Matrix a = random_matrix(ar, ac, rng);
      const Matrix b = random_matrix(br, bc, rng);
      const Matrix c0 = random_matrix(s.m, s.n, rng);

      Epilogue ep;
      ep.accumulate = true;
      Matrix c = c0;
      kernels::gemm(layout, a, b, c, ep);
      const Matrix expected = run_naive(layout, a, b, s.m, s.n, s.k, ep, &c0);

      for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_EQ(c.data()[i], expected.data()[i]);
      }
    }
  }
}

TEST(KernelParityTest, FusedBiasActivationMatchesOracle) {
  prodigy::util::Rng rng(11);
  const std::vector<FusedAct> acts = {FusedAct::None, FusedAct::ReLU,
                                      FusedAct::Tanh, FusedAct::Sigmoid};
  for (const FusedAct act : acts) {
    for (const auto& s : kShapes) {
      const Matrix x = random_matrix(s.m, s.k, rng);
      const Matrix w = random_matrix(s.k, s.n, rng);
      std::vector<double> bias(s.n);
      for (auto& v : bias) v = rng.gaussian();

      Matrix out;
      kernels::dense_forward(x, w, bias, act, out);

      Epilogue ep;
      ep.bias = bias.data();
      ep.act = act;
      const Matrix expected = run_naive(Layout::NN, x, w, s.m, s.n, s.k, ep);

      ASSERT_EQ(out.rows(), s.m);
      ASSERT_EQ(out.cols(), s.n);
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out.data()[i], expected.data()[i]);
      }
    }
  }
}

TEST(KernelParityTest, OpsEntryPointsMatchNaive) {
  prodigy::util::Rng rng(3);
  const Matrix a = random_matrix(9, 33, rng);
  const Matrix b = random_matrix(33, 21, rng);
  const Matrix c = prodigy::tensor::matmul(a, b);
  const Matrix expected = run_naive(Layout::NN, a, b, 9, 21, 33);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.data()[i], expected.data()[i]);
  }

  const Matrix at = random_matrix(33, 9, rng);
  const Matrix cta = prodigy::tensor::matmul_transposed_a(at, b);
  const Matrix expected_ta = run_naive(Layout::TN, at, b, 9, 21, 33);
  for (std::size_t i = 0; i < cta.size(); ++i) {
    EXPECT_EQ(cta.data()[i], expected_ta.data()[i]);
  }

  const Matrix bt = random_matrix(21, 33, rng);
  const Matrix ctb = prodigy::tensor::matmul_transposed_b(a, bt);
  const Matrix expected_tb = run_naive(Layout::NT, a, bt, 9, 21, 33);
  for (std::size_t i = 0; i < ctb.size(); ++i) {
    EXPECT_EQ(ctb.data()[i], expected_tb.data()[i]);
  }
}

TEST(KernelParityTest, AccumulateInPlaceMatchesTemporaryPlusAdd) {
  prodigy::util::Rng rng(19);
  const Matrix a = random_matrix(14, 6, rng);   // A^T*B: 6 x 10 result
  const Matrix b = random_matrix(14, 10, rng);
  Matrix grad = random_matrix(6, 10, rng);

  // The historical Dense::backward pattern: temporary + operator+=.
  Matrix expected = grad;
  expected += prodigy::tensor::matmul_transposed_a(a, b);

  prodigy::tensor::matmul_transposed_a_accumulate(a, b, grad);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_EQ(grad.data()[i], expected.data()[i]);
  }
}

TEST(KernelParityTest, TransposeBlockedMatchesNaive) {
  prodigy::util::Rng rng(23);
  for (const auto& dims : std::vector<std::pair<std::size_t, std::size_t>>{
           {0, 0}, {1, 1}, {1, 9}, {9, 1}, {64, 64}, {65, 63}, {130, 70}}) {
    const Matrix a = random_matrix(dims.first, dims.second, rng);
    const Matrix t = prodigy::tensor::transpose(a);
    ASSERT_EQ(t.rows(), a.cols());
    ASSERT_EQ(t.cols(), a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r) {
      for (std::size_t c = 0; c < a.cols(); ++c) {
        EXPECT_EQ(t(c, r), a(r, c));
      }
    }
  }
}

// --- NaN/Inf propagation: no kernel variant may zero-skip. -----------------

TEST(KernelNaNTest, ZeroTimesNaNPropagatesInEveryLayout) {
  for (const Layout layout : kLayouts) {
    const std::size_t m = 5, n = 9, k = 7;
    std::size_t ar, ac, br, bc;
    physical_shapes(layout, m, n, k, ar, ac, br, bc);
    Matrix a(ar, ac, 0.0);  // all-zero A: a zero-skip would erase the NaN
    Matrix b(br, bc, 1.0);
    // Poison one inner-dimension entry of B for every output column.
    switch (layout) {
      case Layout::NN:
      case Layout::TN:
        for (std::size_t j = 0; j < n; ++j) b(k / 2, j) = kNan;
        break;
      case Layout::NT:
        for (std::size_t j = 0; j < n; ++j) b(j, k / 2) = kNan;
        break;
    }
    Matrix c;
    kernels::gemm(layout, a, b, c);
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_TRUE(std::isnan(c.data()[i]))
          << "layout=" << static_cast<int>(layout) << " elem=" << i;
    }
  }
}

TEST(KernelNaNTest, InfMinusInfYieldsNaNNotSilentZero) {
  // +Inf * 1 + (-Inf) * 1 must follow IEEE (NaN), proving no term is dropped.
  Matrix a(1, 2);
  a(0, 0) = kInf;
  a(0, 1) = kInf;
  Matrix b(2, 1);
  b(0, 0) = 1.0;
  b(1, 0) = -1.0;
  Matrix c;
  kernels::gemm(Layout::NN, a, b, c);
  EXPECT_TRUE(std::isnan(c(0, 0)));
}

TEST(KernelNaNTest, FusedActivationsPassNaNThrough) {
  // A NaN pre-activation must survive every fused activation exactly like
  // nn::apply_activation (ReLU's `v < 0` comparison is false for NaN).
  for (const FusedAct act : {FusedAct::None, FusedAct::ReLU, FusedAct::Tanh,
                             FusedAct::Sigmoid}) {
    Matrix x(2, 3, 0.0);
    x(0, 1) = kNan;
    Matrix w(3, 4, 1.0);
    const std::vector<double> bias(4, 0.5);
    Matrix out;
    kernels::dense_forward(x, w, bias, act, out);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_TRUE(std::isnan(out(0, j))) << "act=" << static_cast<int>(act);
      EXPECT_FALSE(std::isnan(out(1, j)));
    }
  }
}

TEST(KernelNaNTest, NaNBiasAndAccumulatePropagate) {
  Matrix x(1, 2, 1.0);
  Matrix w(2, 3, 1.0);
  std::vector<double> bias = {0.0, kNan, 0.0};
  Matrix out;
  kernels::dense_forward(x, w, bias, FusedAct::ReLU, out);
  EXPECT_FALSE(std::isnan(out(0, 0)));
  EXPECT_TRUE(std::isnan(out(0, 1)));
  EXPECT_FALSE(std::isnan(out(0, 2)));

  Epilogue ep;
  ep.accumulate = true;
  Matrix acc(1, 3, 0.0);
  acc(0, 2) = kNan;
  kernels::gemm(Layout::NN, x, w, acc, ep);
  EXPECT_FALSE(std::isnan(acc(0, 0)));
  EXPECT_TRUE(std::isnan(acc(0, 2)));
}

// --- Determinism across thread-pool sizes and batch heights. ---------------

TEST(KernelDeterminismTest, PoolSizeDoesNotChangeBits) {
  prodigy::util::Rng rng(99);
  // Large enough that m*n*k clears the banding threshold (2^21 > 2^20).
  const std::size_t m = 128, n = 128, k = 128;
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);

  const Matrix reference = run_naive(Layout::NN, a, b, m, n, k);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    prodigy::util::ThreadPool pool(workers);
    Matrix c;
    kernels::gemm(Layout::NN, a, b, c, {}, &pool);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_EQ(c.data()[i], reference.data()[i]) << "workers=" << workers;
    }
  }
}

TEST(KernelDeterminismTest, RowScoredAloneMatchesRowInBatch) {
  // The streaming guarantee: a 1 x k GEMM of one row is bit-identical to the
  // same row inside an m x k batch, for every layout-relevant path (packed
  // vs direct B included, since m = 1 skips packing and m = 32 packs).
  prodigy::util::Rng rng(5);
  const std::size_t m = 32, n = 24, k = 67;
  const Matrix batch = random_matrix(m, k, rng);
  const Matrix w = random_matrix(k, n, rng);
  std::vector<double> bias(n);
  for (auto& v : bias) v = rng.gaussian();

  Matrix full;
  kernels::dense_forward(batch, w, bias, FusedAct::Tanh, full);
  for (std::size_t r = 0; r < m; ++r) {
    const Matrix row = batch.slice_rows(r, 1);
    Matrix single;
    kernels::dense_forward(row, w, bias, FusedAct::Tanh, single);
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(single(0, j), full(r, j)) << "row=" << r;
    }
  }
}

TEST(KernelDeterminismTest, DenseLayerInferencePathsAgreeBitExact) {
  prodigy::util::Rng rng(1234);
  prodigy::nn::Dense layer(31, 17, prodigy::nn::Activation::Sigmoid, rng);
  const Matrix x = random_matrix(6, 31, rng);

  prodigy::nn::Dense trained = layer;  // copies share weights by value
  const Matrix train_out = trained.forward(x);
  const Matrix infer_out = layer.forward_inference(x);
  Matrix into_out;
  layer.forward_inference_into(x, into_out);

  ASSERT_TRUE(train_out.same_shape(infer_out));
  for (std::size_t i = 0; i < train_out.size(); ++i) {
    EXPECT_EQ(train_out.data()[i], infer_out.data()[i]);
    EXPECT_EQ(train_out.data()[i], into_out.data()[i]);
  }
}

TEST(KernelDeterminismTest, WorkspaceReuseAcrossShapesStaysCorrect) {
  // Shrinking then growing the packed panels must never leave stale data
  // visible: run a large GEMM, then a small one, then the large one again.
  prodigy::util::Rng rng(77);
  const Matrix a = random_matrix(40, 50, rng);
  const Matrix b = random_matrix(50, 60, rng);
  const Matrix expected = run_naive(Layout::NN, a, b, 40, 60, 50);

  Matrix c;
  kernels::gemm(Layout::NN, a, b, c);
  const Matrix a2 = random_matrix(1, 3, rng);
  const Matrix b2 = random_matrix(3, 2, rng);
  Matrix c2;
  kernels::gemm(Layout::NN, a2, b2, c2);
  kernels::gemm(Layout::NN, a, b, c);

  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.data()[i], expected.data()[i]);
  }
}

}  // namespace
