#include "baselines/kmeans.hpp"

#include "test_helpers.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace prodigy::baselines {
namespace {

TEST(KMeansTest, UsageErrors) {
  KMeansDetector kmeans;
  EXPECT_EQ(kmeans.name(), "K-means");
  EXPECT_THROW(kmeans.score(tensor::Matrix(1, 2, 0.0)), std::logic_error);
  EXPECT_THROW(kmeans.fit(tensor::Matrix{}, {}), std::invalid_argument);
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  // Two tight clusters at 0 and 10.
  util::Rng rng(1);
  tensor::Matrix X(200, 2);
  for (std::size_t r = 0; r < 200; ++r) {
    const double center = r < 100 ? 0.0 : 10.0;
    X(r, 0) = rng.gaussian(center, 0.3);
    X(r, 1) = rng.gaussian(center, 0.3);
  }
  KMeansConfig config;
  config.clusters = 2;
  KMeansDetector kmeans(config);
  kmeans.fit(X, std::vector<int>(200, 0));
  ASSERT_EQ(kmeans.centroids().rows(), 2u);
  // One centroid near each cluster center.
  const double c0 = kmeans.centroids()(0, 0);
  const double c1 = kmeans.centroids()(1, 0);
  EXPECT_NEAR(std::min(c0, c1), 0.0, 0.5);
  EXPECT_NEAR(std::max(c0, c1), 10.0, 0.5);
}

TEST(KMeansTest, DistantPointScoresHigh) {
  auto [X, y] = testing::blob_dataset(200, 0, 3, 0.0, 2);
  KMeansDetector kmeans;
  kmeans.fit(X, y);
  tensor::Matrix probes(2, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    probes(0, c) = 0.0;
    probes(1, c) = 20.0;
  }
  const auto scores = kmeans.score(probes);
  EXPECT_GT(scores[1], scores[0] * 5.0);
}

TEST(KMeansTest, ClustersClampToDataSize) {
  tensor::Matrix X{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}};
  KMeansConfig config;
  config.clusters = 10;
  KMeansDetector kmeans(config);
  kmeans.fit(X, {0, 0, 0});
  EXPECT_LE(kmeans.centroids().rows(), 3u);
}

TEST(KMeansTest, ConvergesBeforeMaxIterations) {
  auto [X, y] = testing::blob_dataset(300, 0, 4, 0.0, 3);
  KMeansConfig config;
  config.max_iterations = 100;
  KMeansDetector kmeans(config);
  kmeans.fit(X, y);
  EXPECT_LT(kmeans.iterations_run(), 100u);
}

TEST(KMeansTest, DeterministicForFixedSeed) {
  auto [X, y] = testing::blob_dataset(150, 0, 3, 0.0, 4);
  KMeansConfig config;
  config.seed = 77;
  KMeansDetector a(config), b(config);
  a.fit(X, y);
  b.fit(X, y);
  EXPECT_EQ(a.score(X), b.score(X));
}

TEST(KMeansTest, ContaminationSetsTrainFlagRate) {
  auto [X, y] = testing::blob_dataset(500, 0, 4, 0.0, 5);
  KMeansConfig config;
  config.contamination = 0.10;
  KMeansDetector kmeans(config);
  kmeans.fit(X, y);
  std::size_t flagged = 0;
  for (const int p : kmeans.predict(X)) flagged += p;
  EXPECT_NEAR(static_cast<double>(flagged), 50.0, 15.0);
}

}  // namespace
}  // namespace prodigy::baselines
