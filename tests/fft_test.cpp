#include "features/fft.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace prodigy::features {
namespace {

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(3);
  EXPECT_THROW(fft_radix2(data), std::invalid_argument);
}

TEST(FftTest, DcSignal) {
  std::vector<std::complex<double>> data(8, {1.0, 0.0});
  fft_radix2(data);
  EXPECT_NEAR(data[0].real(), 8.0, 1e-12);
  for (std::size_t k = 1; k < 8; ++k) EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-12);
}

TEST(FftTest, SingleToneLandsInCorrectBin) {
  constexpr std::size_t n = 64;
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = {std::cos(2.0 * std::numbers::pi * 5.0 * static_cast<double>(i) / n), 0.0};
  }
  fft_radix2(data);
  // Energy concentrated in bins 5 and n-5.
  EXPECT_NEAR(std::abs(data[5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - 5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[3]), 0.0, 1e-9);
}

TEST(FftTest, ParsevalHolds) {
  util::Rng rng(1);
  constexpr std::size_t n = 128;
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (auto& d : data) {
    d = {rng.gaussian(), 0.0};
    time_energy += std::norm(d);
  }
  fft_radix2(data);
  double freq_energy = 0.0;
  for (const auto& d : data) freq_energy += std::norm(d);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-6 * time_energy);
}

TEST(PowerSpectrumTest, PadsArbitraryLengths) {
  const std::vector<double> xs(100, 1.0);
  const auto power = power_spectrum(xs);
  EXPECT_EQ(power.size(), 128 / 2 + 1);  // padded to 128
}

TEST(PowerSpectrumTest, MeanRemovedSoDcIsZero) {
  const std::vector<double> xs(64, 5.0);
  const auto power = power_spectrum(xs);
  for (const double p : power) EXPECT_NEAR(p, 0.0, 1e-12);
}

TEST(SpectralSummaryTest, PeakFrequencyOfSine) {
  constexpr std::size_t n = 256;
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = std::sin(2.0 * std::numbers::pi * 32.0 * static_cast<double>(i) / n);
  }
  const SpectralSummary summary = spectral_summary(xs);
  // Bin 32 of 128 one-sided bins -> normalized frequency 0.25.
  EXPECT_NEAR(summary.peak_frequency, 0.25, 0.02);
  EXPECT_NEAR(summary.centroid, 0.25, 0.05);
  EXPECT_GT(summary.total_power, 0.0);
}

TEST(SpectralSummaryTest, EntropyOrdersToneVsNoise) {
  util::Rng rng(2);
  std::vector<double> tone(256), noise(256);
  for (std::size_t i = 0; i < 256; ++i) {
    tone[i] = std::sin(2.0 * std::numbers::pi * 10.0 * static_cast<double>(i) / 256.0);
    noise[i] = rng.gaussian();
  }
  EXPECT_LT(spectral_summary(tone).entropy, spectral_summary(noise).entropy);
}

TEST(SpectralSummaryTest, BandPowersSumToOne) {
  util::Rng rng(3);
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.gaussian();
  const SpectralSummary summary = spectral_summary(xs);
  const double total = summary.band_power[0] + summary.band_power[1] +
                       summary.band_power[2] + summary.band_power[3];
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SpectralSummaryTest, DegenerateInputsAreZero) {
  const SpectralSummary empty = spectral_summary(std::vector<double>{});
  EXPECT_DOUBLE_EQ(empty.total_power, 0.0);
  const SpectralSummary constant = spectral_summary(std::vector<double>(32, 7.0));
  EXPECT_DOUBLE_EQ(constant.total_power, 0.0);
  EXPECT_DOUBLE_EQ(constant.centroid, 0.0);
}

// Zero-padding audit: padding an odd-length window to the next power of two
// must not shift the frequency axis.  Normalized frequency 1.0 is Nyquist
// (half the sample rate) whatever the true sample count, because padding
// changes the grid resolution, not the sample period.
TEST(SpectralSummaryTest, OddLengthPaddingKeepsFrequencyAxis) {
  // A tone at 1/4 of the sample rate (half of Nyquist): x[i] = cos(pi/2 i).
  // n = 97 pads to 128; the peak must land at normalized frequency ~0.5
  // regardless (bin 32 of 64), not at 97-relative coordinates.
  std::vector<double> tone(97);
  for (std::size_t i = 0; i < tone.size(); ++i) {
    tone[i] = std::cos(std::numbers::pi / 2.0 * static_cast<double>(i));
  }
  const auto power = power_spectrum(tone);
  ASSERT_EQ(power.size(), 128 / 2 + 1);  // padded one-sided spectrum
  const SpectralSummary summary = spectral_summary_from_power(power);
  // Leakage from the rectangular cut spreads the tone over neighbouring
  // bins, so allow one bin (1/64) of slack around 0.5.
  EXPECT_NEAR(summary.peak_frequency, 0.5, 1.0 / 64.0 + 1e-12);
  EXPECT_NEAR(summary.centroid, 0.5, 0.05);
}

TEST(SpectralSummaryTest, OddLengthMatchesTruncatedPowerOfTwoAxis) {
  // The same Nyquist-relative tone sampled over 64 and over 96 samples must
  // peak at the same normalized frequency even though one path pads (96 ->
  // 128) and the other does not: the axis is sample-period-relative.
  auto tone_of = [](std::size_t n) {
    std::vector<double> xs(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = std::sin(2.0 * std::numbers::pi * 0.25 * static_cast<double>(i));
    }
    return xs;
  };
  const SpectralSummary exact = spectral_summary(tone_of(64));
  const SpectralSummary padded = spectral_summary(tone_of(96));
  EXPECT_NEAR(exact.peak_frequency, 0.5, 1e-12);
  EXPECT_NEAR(padded.peak_frequency, 0.5, 1.0 / 64.0 + 1e-12);
}

}  // namespace
}  // namespace prodigy::features
