#include "baselines/heuristics.hpp"

#include "eval/metrics.hpp"

#include <gtest/gtest.h>

namespace prodigy::baselines {
namespace {

TEST(RandomPredictionTest, RoughlyBalancedOutput) {
  RandomPrediction random(1);
  const tensor::Matrix X(10000, 1);
  const auto predictions = random.predict(X);
  std::size_t positives = 0;
  for (const int p : predictions) positives += p;
  EXPECT_NEAR(static_cast<double>(positives), 5000.0, 200.0);
}

TEST(RandomPredictionTest, DeterministicPerSeed) {
  const tensor::Matrix X(100, 1);
  RandomPrediction a(7), b(7), c(8);
  EXPECT_EQ(a.predict(X), b.predict(X));
  EXPECT_NE(a.predict(X), c.predict(X));
}

TEST(RandomPredictionTest, ScoresInUnitInterval) {
  RandomPrediction random(2);
  for (const double s : random.score(tensor::Matrix(100, 1))) {
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(RandomPredictionTest, MacroF1NearHalfOnBalancedData) {
  // The paper's Volta floor: random prediction lands around 0.39-0.5.
  std::vector<int> truth(2000);
  for (std::size_t i = 0; i < truth.size(); ++i) truth[i] = i % 2;
  RandomPrediction random(3);
  const auto predictions = random.predict(tensor::Matrix(truth.size(), 1));
  EXPECT_NEAR(eval::macro_f1(truth, predictions), 0.5, 0.05);
}

TEST(MajorityTest, FitUsesTrainingMajority) {
  MajorityLabelPrediction majority;
  majority.fit(tensor::Matrix(4, 1), {1, 1, 1, 0});
  EXPECT_EQ(majority.majority(), 1);
  majority.fit(tensor::Matrix(4, 1), {0, 0, 1, 0});
  EXPECT_EQ(majority.majority(), 0);
}

TEST(MajorityTest, TuneOverridesWithTestMajority) {
  // The paper's definition: the majority label of the *test* dataset.
  MajorityLabelPrediction majority;
  majority.fit(tensor::Matrix(4, 1), {0, 0, 0, 0});
  majority.tune(tensor::Matrix(3, 1), {1, 1, 0});
  EXPECT_EQ(majority.majority(), 1);
  const auto predictions = majority.predict(tensor::Matrix(5, 1));
  for (const int p : predictions) EXPECT_EQ(p, 1);
}

TEST(MajorityTest, TieGoesToHealthy) {
  MajorityLabelPrediction majority;
  majority.fit(tensor::Matrix(4, 1), {1, 1, 0, 0});
  EXPECT_EQ(majority.majority(), 0);
}

TEST(MajorityTest, EmptyTuneKeepsCurrent) {
  MajorityLabelPrediction majority;
  majority.fit(tensor::Matrix(2, 1), {1, 1});
  majority.tune(tensor::Matrix(0, 0), {});
  EXPECT_EQ(majority.majority(), 1);
}

TEST(MajorityTest, MacroF1OnEclipseStyleTestMatchesPaperBallpark) {
  // 90% anomalous test set: predicting all-anomalous -> macro-F1 ~0.47.
  std::vector<int> truth(1000, 1);
  for (int i = 0; i < 100; ++i) truth[static_cast<std::size_t>(i)] = 0;
  MajorityLabelPrediction majority;
  majority.tune(tensor::Matrix(truth.size(), 1), truth);
  const auto predictions = majority.predict(tensor::Matrix(truth.size(), 1));
  EXPECT_NEAR(eval::macro_f1(truth, predictions), 0.47, 0.02);
}

}  // namespace
}  // namespace prodigy::baselines
