// PCA-reconstruction detector: the classic linear counterpart of the VAE.
// Projects onto the top-k principal components (computed by orthogonal power
// iteration on the covariance) and scores samples by the reconstruction
// error outside that subspace.  Serves as the "is a *nonlinear* encoder even
// needed?" ablation the Prodigy design implies (§3.3 motivates VAEs over
// simpler representations).
#pragma once

#include "core/detector_iface.hpp"

#include <vector>

namespace prodigy::baselines {

struct PcaConfig {
  std::size_t components = 8;
  std::size_t power_iterations = 60;
  double contamination = 0.10;
  std::uint64_t seed = 37;
};

class PcaDetector final : public core::Detector {
 public:
  PcaDetector() = default;
  explicit PcaDetector(PcaConfig config) : config_(config) {}

  std::string name() const override { return "PCA Reconstruction"; }

  /// Fits on the healthy rows only (like Prodigy/USAD, §5.4.4).
  void fit(const tensor::Matrix& X, const std::vector<int>& labels) override;
  void fit_healthy(const tensor::Matrix& X);

  std::vector<double> score(const tensor::Matrix& X) const override;
  std::vector<int> predict(const tensor::Matrix& X) const override;
  void tune(const tensor::Matrix& X, const std::vector<int>& labels) override;

  const std::vector<double>& explained_variance() const noexcept {
    return eigenvalues_;
  }
  std::size_t components() const noexcept { return components_.rows(); }

 private:
  PcaConfig config_;
  std::vector<double> mean_;        // (D)
  tensor::Matrix components_;       // (K x D), orthonormal rows
  std::vector<double> eigenvalues_; // (K), descending
  double threshold_ = 0.0;
};

}  // namespace prodigy::baselines
