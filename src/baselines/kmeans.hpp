// K-means-based detector.  The paper (§5.3) discusses K-means clustering as
// the classic unsupervised approach and replaces it with LOF for
// high-dimensional data; we keep the implementation for the ablation benches
// that demonstrate exactly that weakness.  Scoring: distance to the nearest
// centroid, thresholded at the contamination quantile of training scores.
#pragma once

#include "core/detector_iface.hpp"
#include "util/rng.hpp"

#include <vector>

namespace prodigy::baselines {

struct KMeansConfig {
  std::size_t clusters = 8;
  std::size_t max_iterations = 100;
  double tolerance = 1e-6;
  double contamination = 0.10;
  std::uint64_t seed = 29;
};

class KMeansDetector final : public core::Detector {
 public:
  KMeansDetector() = default;
  explicit KMeansDetector(KMeansConfig config) : config_(config) {}

  std::string name() const override { return "K-means"; }

  void fit(const tensor::Matrix& X, const std::vector<int>& labels) override;
  std::vector<double> score(const tensor::Matrix& X) const override;
  std::vector<int> predict(const tensor::Matrix& X) const override;

  const tensor::Matrix& centroids() const noexcept { return centroids_; }
  std::size_t iterations_run() const noexcept { return iterations_run_; }

 private:
  /// k-means++ seeding.
  tensor::Matrix init_centroids(const tensor::Matrix& X, util::Rng& rng) const;

  KMeansConfig config_;
  tensor::Matrix centroids_;
  double threshold_ = 0.0;
  std::size_t iterations_run_ = 0;
};

}  // namespace prodigy::baselines
