// USAD baseline (Audibert et al., KDD'20; paper §5.3): two autoencoders
// sharing an encoder, trained adversarially.
//
//   AE1(x) = D1(E(x)),  AE2(x) = D2(E(x)),  AE2(AE1(x)) = D2(E(D1(E(x))))
//   L_AE1 = 1/n * ||x - AE1(x)||^2 + (1 - 1/n) * ||x - AE2(AE1(x))||^2
//   L_AE2 = 1/n * ||x - AE2(x)||^2 - (1 - 1/n) * ||x - AE2(AE1(x))||^2
//
// where n is the (1-indexed) epoch.  Score: alpha * ||x - AE1(x)||^2 +
// beta * ||x - AE2(AE1(x))||^2.  As in the paper's §5.4.4 adaptation, inputs
// are selected/scaled statistical features rather than raw windows.
//
// Faithfulness note: gradients of the composite term are propagated through
// the inner reconstruction chain but stopped at the AE1 output (the
// re-encoded input is treated as data).  This is a common simplification of
// the reference implementation's alternating optimization and preserves the
// adversarial dynamics.
#pragma once

#include "core/detector_iface.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"

#include <optional>

namespace prodigy::baselines {

struct UsadConfig {
  std::size_t input_dim = 0;  // 0 = set from data
  std::size_t hidden = 200;   // Table 3 optimum
  std::size_t latent = 32;
  double alpha = 0.5;         // Table 3 optimum
  double beta = 0.5;
  nn::TrainOptions train;
  double threshold_percentile = 99.0;

  UsadConfig() {
    // Table 3 optima: batch 256, epochs 100.  Scaled defaults; benches
    // expose flags.
    train.learning_rate = 1e-3;
    train.batch_size = 64;
    train.epochs = 100;
    train.validation_split = 0.2;
  }
};

class Usad final : public core::Detector {
 public:
  Usad() = default;
  explicit Usad(UsadConfig config) : config_(std::move(config)) {}

  std::string name() const override { return "USAD"; }

  /// Trains on the healthy rows only (anomalous rows removed, §5.4.4).
  void fit(const tensor::Matrix& X, const std::vector<int>& labels) override;
  void fit_healthy(const tensor::Matrix& X);

  std::vector<double> score(const tensor::Matrix& X) const override;
  std::vector<int> predict(const tensor::Matrix& X) const override;
  void tune(const tensor::Matrix& X, const std::vector<int>& labels) override;

  double threshold() const noexcept { return threshold_; }
  const nn::TrainHistory& history() const noexcept { return history_; }

 private:
  struct Nets {
    nn::Mlp encoder;
    nn::Mlp decoder1;
    nn::Mlp decoder2;
  };

  UsadConfig config_;
  std::optional<Nets> nets_;
  nn::TrainHistory history_;
  double threshold_ = 0.0;
};

}  // namespace prodigy::baselines
