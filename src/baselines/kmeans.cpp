#include "baselines/kmeans.hpp"

#include "tensor/ops.hpp"
#include "tensor/stats.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace prodigy::baselines {

namespace {

std::pair<std::size_t, double> nearest_centroid(const tensor::Matrix& centroids,
                                                std::span<const double> x) {
  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    const double d = tensor::squared_distance(x, centroids.row(c));
    if (d < best_distance) {
      best_distance = d;
      best = c;
    }
  }
  return {best, best_distance};
}

}  // namespace

tensor::Matrix KMeansDetector::init_centroids(const tensor::Matrix& X,
                                              util::Rng& rng) const {
  const std::size_t k = std::min(config_.clusters, X.rows());
  tensor::Matrix centroids(k, X.cols());
  centroids.set_row(0, X.row(rng.uniform_index(X.rows())));

  std::vector<double> min_distance(X.rows(), std::numeric_limits<double>::infinity());
  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t r = 0; r < X.rows(); ++r) {
      const double d = tensor::squared_distance(X.row(r), centroids.row(c - 1));
      min_distance[r] = std::min(min_distance[r], d);
      total += min_distance[r];
    }
    // Sample proportionally to squared distance (k-means++).
    double target = rng.uniform() * total;
    std::size_t chosen = X.rows() - 1;
    for (std::size_t r = 0; r < X.rows(); ++r) {
      target -= min_distance[r];
      if (target <= 0.0) {
        chosen = r;
        break;
      }
    }
    centroids.set_row(c, X.row(chosen));
  }
  return centroids;
}

void KMeansDetector::fit(const tensor::Matrix& X, const std::vector<int>& labels) {
  if (X.rows() == 0) throw std::invalid_argument("KMeansDetector::fit: empty data");
  (void)labels;
  util::Rng rng(config_.seed);
  centroids_ = init_centroids(X, rng);
  const std::size_t k = centroids_.rows();

  std::vector<std::size_t> assignment(X.rows(), 0);
  for (iterations_run_ = 0; iterations_run_ < config_.max_iterations;
       ++iterations_run_) {
    // Assignment step.
    util::parallel_for(0, X.rows(), [&](std::size_t r) {
      assignment[r] = nearest_centroid(centroids_, X.row(r)).first;
    }, 32);

    // Update step.
    tensor::Matrix sums(k, X.cols());
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t r = 0; r < X.rows(); ++r) {
      const auto row = X.row(r);
      double* sum_row = sums.data() + assignment[r] * X.cols();
      for (std::size_t c = 0; c < X.cols(); ++c) sum_row[c] += row[c];
      ++counts[assignment[r]];
    }
    double shift = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster on a random point.
        sums.set_row(c, X.row(rng.uniform_index(X.rows())));
        counts[c] = 1;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      double* sum_row = sums.data() + c * X.cols();
      for (std::size_t j = 0; j < X.cols(); ++j) sum_row[j] *= inv;
      shift += tensor::squared_distance(sums.row(c), centroids_.row(c));
    }
    centroids_ = std::move(sums);
    if (shift < config_.tolerance) break;
  }

  const auto scores = score(X);
  threshold_ = tensor::quantile(scores, 1.0 - config_.contamination);
}

std::vector<double> KMeansDetector::score(const tensor::Matrix& X) const {
  if (centroids_.empty()) throw std::logic_error("KMeansDetector::score before fit");
  std::vector<double> scores(X.rows());
  util::parallel_for(0, X.rows(), [&](std::size_t r) {
    scores[r] = std::sqrt(nearest_centroid(centroids_, X.row(r)).second);
  }, 32);
  return scores;
}

std::vector<int> KMeansDetector::predict(const tensor::Matrix& X) const {
  const auto scores = score(X);
  std::vector<int> predictions(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    predictions[i] = scores[i] > threshold_ ? 1 : 0;
  }
  return predictions;
}

}  // namespace prodigy::baselines
