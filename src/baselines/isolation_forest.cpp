#include "baselines/isolation_forest.hpp"

#include "tensor/stats.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prodigy::baselines {

double average_path_length(std::size_t n) noexcept {
  if (n <= 1) return 0.0;
  if (n == 2) return 1.0;
  const double nd = static_cast<double>(n);
  constexpr double kEulerMascheroni = 0.5772156649015329;
  return 2.0 * (std::log(nd - 1.0) + kEulerMascheroni) - 2.0 * (nd - 1.0) / nd;
}

std::int32_t IsolationForest::build_node(Tree& tree, const tensor::Matrix& X,
                                         std::vector<std::size_t>& rows,
                                         std::size_t depth, std::size_t max_depth,
                                         util::Rng& rng) {
  const auto index = static_cast<std::int32_t>(tree.nodes.size());
  tree.nodes.emplace_back();

  if (rows.size() <= 1 || depth >= max_depth) {
    tree.nodes[static_cast<std::size_t>(index)].size = rows.size();
    return index;
  }

  // Pick a random feature with spread; give up after a few tries (leaf).
  int feature = -1;
  double lo = 0.0, hi = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto candidate = static_cast<int>(rng.uniform_index(X.cols()));
    lo = hi = X(rows[0], static_cast<std::size_t>(candidate));
    for (const auto r : rows) {
      lo = std::min(lo, X(r, static_cast<std::size_t>(candidate)));
      hi = std::max(hi, X(r, static_cast<std::size_t>(candidate)));
    }
    if (hi > lo) {
      feature = candidate;
      break;
    }
  }
  if (feature < 0) {
    tree.nodes[static_cast<std::size_t>(index)].size = rows.size();
    return index;
  }

  const double split = rng.uniform(lo, hi);
  std::vector<std::size_t> left_rows, right_rows;
  for (const auto r : rows) {
    (X(r, static_cast<std::size_t>(feature)) < split ? left_rows : right_rows)
        .push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) {
    tree.nodes[static_cast<std::size_t>(index)].size = rows.size();
    return index;
  }
  rows.clear();
  rows.shrink_to_fit();

  const auto left = build_node(tree, X, left_rows, depth + 1, max_depth, rng);
  const auto right = build_node(tree, X, right_rows, depth + 1, max_depth, rng);
  Node& node = tree.nodes[static_cast<std::size_t>(index)];
  node.feature = feature;
  node.split = split;
  node.left = left;
  node.right = right;
  return index;
}

void IsolationForest::fit(const tensor::Matrix& X, const std::vector<int>& labels) {
  if (X.rows() == 0) throw std::invalid_argument("IsolationForest::fit: empty data");
  (void)labels;  // contaminated training data is handled by the algorithm

  const std::size_t psi = std::min(config_.max_samples, X.rows());
  c_psi_ = std::max(1e-12, average_path_length(psi));
  const auto max_depth =
      static_cast<std::size_t>(std::ceil(std::log2(std::max<std::size_t>(2, psi))));

  util::Rng rng(config_.seed);
  trees_.assign(config_.n_estimators, Tree{});
  std::vector<util::Rng> tree_rngs;
  tree_rngs.reserve(config_.n_estimators);
  for (std::size_t t = 0; t < config_.n_estimators; ++t) tree_rngs.push_back(rng.fork());

  util::parallel_for(0, config_.n_estimators, [&](std::size_t t) {
    util::Rng& tree_rng = tree_rngs[t];
    // Subsample psi rows without replacement (partial Fisher-Yates).
    std::vector<std::size_t> all(X.rows());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    for (std::size_t i = 0; i < psi; ++i) {
      std::swap(all[i], all[i + tree_rng.uniform_index(all.size() - i)]);
    }
    std::vector<std::size_t> rows(all.begin(),
                                  all.begin() + static_cast<std::ptrdiff_t>(psi));
    build_node(trees_[t], X, rows, 0, max_depth, tree_rng);
  });

  // Contamination threshold: the (1 - contamination) quantile of training
  // scores, matching scikit-learn's offset semantics.
  const auto scores = score(X);
  threshold_ = tensor::quantile(scores, 1.0 - config_.contamination);
}

double IsolationForest::path_length(const Tree& tree, std::span<const double> x) const {
  std::size_t depth = 0;
  std::int32_t index = 0;
  for (;;) {
    const Node& node = tree.nodes[static_cast<std::size_t>(index)];
    if (node.feature < 0) {
      return static_cast<double>(depth) + average_path_length(node.size);
    }
    index = x[static_cast<std::size_t>(node.feature)] < node.split ? node.left
                                                                   : node.right;
    ++depth;
  }
}

std::vector<double> IsolationForest::score(const tensor::Matrix& X) const {
  if (trees_.empty()) throw std::logic_error("IsolationForest::score before fit");
  std::vector<double> scores(X.rows());
  util::parallel_for(0, X.rows(), [&](std::size_t r) {
    double total = 0.0;
    for (const auto& tree : trees_) total += path_length(tree, X.row(r));
    const double mean_path = total / static_cast<double>(trees_.size());
    scores[r] = std::pow(2.0, -mean_path / c_psi_);
  }, 16);
  return scores;
}

std::vector<int> IsolationForest::predict(const tensor::Matrix& X) const {
  const auto scores = score(X);
  std::vector<int> predictions(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    predictions[i] = scores[i] > threshold_ ? 1 : 0;
  }
  return predictions;
}

}  // namespace prodigy::baselines
