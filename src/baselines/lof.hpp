// Local Outlier Factor baseline (Breunig et al.; paper §5.3): density-based
// outlier scoring.  For each point, the local reachability density is
// compared with that of its k nearest neighbours; LOF >> 1 marks points in
// sparser regions than their neighbourhood.  Used in novelty mode: fitted on
// the training set (anomalous rows included, §5.4.4), scoring new points
// against the training neighbourhood, with a contamination-quantile
// threshold.
#pragma once

#include "core/detector_iface.hpp"

#include <vector>

namespace prodigy::baselines {

struct LofConfig {
  std::size_t n_neighbors = 20;  // scikit-learn default
  double contamination = 0.10;   // paper §5.4.4
};

class LocalOutlierFactor final : public core::Detector {
 public:
  LocalOutlierFactor() = default;
  explicit LocalOutlierFactor(LofConfig config) : config_(config) {}

  std::string name() const override { return "Local Outlier Factor"; }

  void fit(const tensor::Matrix& X, const std::vector<int>& labels) override;
  std::vector<double> score(const tensor::Matrix& X) const override;
  std::vector<int> predict(const tensor::Matrix& X) const override;

  double threshold() const noexcept { return threshold_; }

 private:
  struct Neighbourhood {
    std::vector<std::size_t> indices;  // k nearest training rows
    std::vector<double> distances;     // matching distances (ascending)
  };

  /// k nearest training rows to `x`; `exclude` skips one training index
  /// (self-exclusion during fit), pass npos otherwise.
  Neighbourhood knn(std::span<const double> x, std::size_t exclude) const;

  LofConfig config_;
  tensor::Matrix train_;
  std::vector<double> k_distance_;  // per training row
  std::vector<double> lrd_;         // local reachability density per row
  double threshold_ = 1.5;
};

}  // namespace prodigy::baselines
