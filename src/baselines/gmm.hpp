// Gaussian-mixture-model detector — the approach of Ozer et al. (ISC'20,
// paper §2.1 [34]), who characterize HPC performance variation with
// (Bayesian) Gaussian mixtures over monitoring data.  We fit a diagonal-
// covariance mixture with EM; the anomaly score of a sample is its negative
// log-likelihood under the fitted mixture, thresholded at the contamination
// quantile of training scores.
#pragma once

#include "core/detector_iface.hpp"
#include "util/rng.hpp"

#include <vector>

namespace prodigy::baselines {

struct GmmConfig {
  std::size_t components = 4;
  std::size_t max_iterations = 100;
  double tolerance = 1e-4;       // EM stop on log-likelihood improvement
  double covariance_floor = 1e-6;  // keeps variances positive definite
  double contamination = 0.10;
  std::uint64_t seed = 31;
};

class GmmDetector final : public core::Detector {
 public:
  GmmDetector() = default;
  explicit GmmDetector(GmmConfig config) : config_(config) {}

  std::string name() const override { return "Gaussian Mixture"; }

  void fit(const tensor::Matrix& X, const std::vector<int>& labels) override;
  std::vector<double> score(const tensor::Matrix& X) const override;
  std::vector<int> predict(const tensor::Matrix& X) const override;

  std::size_t components() const noexcept { return weights_.size(); }
  const std::vector<double>& weights() const noexcept { return weights_; }
  std::size_t iterations_run() const noexcept { return iterations_run_; }
  double train_log_likelihood() const noexcept { return train_log_likelihood_; }

 private:
  /// Log of the weighted component density log(w_k * N(x | mu_k, var_k)).
  double component_log_density(std::size_t k, std::span<const double> x) const;
  /// log p(x) via log-sum-exp over components.
  double log_likelihood(std::span<const double> x) const;

  GmmConfig config_;
  std::vector<double> weights_;          // (K)
  tensor::Matrix means_;                 // (K x D)
  tensor::Matrix variances_;             // (K x D), diagonal covariances
  double threshold_ = 0.0;
  std::size_t iterations_run_ = 0;
  double train_log_likelihood_ = 0.0;
};

}  // namespace prodigy::baselines
