#include "baselines/usad.hpp"

#include "eval/metrics.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"
#include "tensor/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prodigy::baselines {

void Usad::fit(const tensor::Matrix& X, const std::vector<int>& labels) {
  if (X.rows() != labels.size()) {
    throw std::invalid_argument("Usad::fit: rows != labels");
  }
  std::vector<std::size_t> healthy;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 0) healthy.push_back(i);
  }
  if (healthy.empty()) throw std::invalid_argument("Usad::fit: no healthy samples");
  fit_healthy(X.select_rows(healthy));
}

void Usad::fit_healthy(const tensor::Matrix& X) {
  if (X.rows() == 0) throw std::invalid_argument("Usad::fit_healthy: empty data");
  UsadConfig config = config_;
  if (config.input_dim == 0) config.input_dim = X.cols();

  util::Rng rng(config.train.seed);
  const nn::Activation act = nn::Activation::ReLU;
  nets_.emplace(Nets{
      nn::Mlp(config.input_dim, {{config.hidden, act}, {config.latent, act}}, rng),
      nn::Mlp(config.latent,
              {{config.hidden, act}, {config.input_dim, nn::Activation::Linear}}, rng),
      nn::Mlp(config.latent,
              {{config.hidden, act}, {config.input_dim, nn::Activation::Linear}}, rng),
  });
  auto& [encoder, decoder1, decoder2] = *nets_;

  // Two optimizers, the shared encoder registered with both — mirroring the
  // reference implementation's alternating optimization.
  nn::Adam opt1(config.train.learning_rate);
  encoder.register_with(opt1);
  decoder1.register_with(opt1);
  nn::Adam opt2(config.train.learning_rate);
  encoder.register_with(opt2);
  decoder2.register_with(opt2);

  auto zero_all = [&] {
    encoder.zero_gradients();
    decoder1.zero_gradients();
    decoder2.zero_gradients();
  };

  // Global-norm gradient clipping: the maximization term of L_AE2 is
  // unbounded, so without clipping the adversarial phase can blow the
  // decoders up once (1 - 1/n) dominates.
  constexpr double kMaxGradNorm = 5.0;
  auto clip_all = [&] {
    double norm_sq = 0.0;
    auto accumulate = [&norm_sq](nn::Mlp& net) {
      for (std::size_t l = 0; l < net.layer_count(); ++l) {
        for (const double g : net.layer(l).weight_grad().storage()) norm_sq += g * g;
        for (const double g : net.layer(l).bias_grad()) norm_sq += g * g;
      }
    };
    accumulate(encoder);
    accumulate(decoder1);
    accumulate(decoder2);
    const double norm = std::sqrt(norm_sq);
    if (norm <= kMaxGradNorm) return;
    const double scale = kMaxGradNorm / norm;
    auto rescale = [scale](nn::Mlp& net) {
      for (std::size_t l = 0; l < net.layer_count(); ++l) {
        net.layer(l).weight_grad() *= scale;
        for (double& g : net.layer(l).bias_grad()) g *= scale;
      }
    };
    rescale(encoder);
    rescale(decoder1);
    rescale(decoder2);
  };

  history_ = nn::TrainHistory{};
  for (std::size_t epoch = 0; epoch < config.train.epochs; ++epoch) {
    const double n = static_cast<double>(epoch + 1);
    const double w_direct = 1.0 / n;
    const double w_adv = 1.0 - 1.0 / n;
    double epoch_loss = 0.0;
    std::size_t batches = 0;

    for (const auto& batch : nn::make_batches(X.rows(), config.train.batch_size, rng)) {
      const tensor::Matrix x = X.select_rows(batch);

      // ---- Phase 1: update encoder + decoder1 on L_AE1. ----
      zero_all();
      // Direct term: 1/n * ||x - D1(E(x))||^2.
      {
        const tensor::Matrix w1 = decoder1.forward(encoder.forward(x));
        nn::LossResult loss = nn::mse_loss(w1, x);
        loss.grad *= w_direct;
        encoder.backward(decoder1.backward(loss.grad));
        epoch_loss += w_direct * loss.value;
      }
      // Adversarial term: (1-1/n) * ||x - D2(E(w1))||^2, gradient stopped
      // at w1 (treated as data for this pass).
      {
        const tensor::Matrix w1 = decoder1.forward_inference(encoder.forward_inference(x));
        const tensor::Matrix w3 = decoder2.forward(encoder.forward(w1));
        nn::LossResult loss = nn::mse_loss(w3, x);
        loss.grad *= w_adv;
        encoder.backward(decoder2.backward(loss.grad));
        epoch_loss += w_adv * loss.value;
        // decoder2's accumulated gradients are not in opt1 -> inert.
      }
      clip_all();
      opt1.step();

      // ---- Phase 2: update encoder + decoder2 on L_AE2. ----
      zero_all();
      // Direct term: 1/n * ||x - D2(E(x))||^2.
      {
        const tensor::Matrix w2 = decoder2.forward(encoder.forward(x));
        nn::LossResult loss = nn::mse_loss(w2, x);
        loss.grad *= w_direct;
        encoder.backward(decoder2.backward(loss.grad));
      }
      // Adversarial term: -(1-1/n) * ||x - D2(E(w1))||^2 (decoder2 learns to
      // *fail* to reconstruct AE1's output, isolating anomalies).
      {
        const tensor::Matrix w1 = decoder1.forward_inference(encoder.forward_inference(x));
        const tensor::Matrix w3 = decoder2.forward(encoder.forward(w1));
        nn::LossResult loss = nn::mse_loss(w3, x);
        loss.grad *= -w_adv;
        encoder.backward(decoder2.backward(loss.grad));
      }
      clip_all();
      opt2.step();
      ++batches;
    }
    history_.train_loss.push_back(epoch_loss /
                                  static_cast<double>(std::max<std::size_t>(1, batches)));
    ++history_.epochs_run;
  }

  const auto scores = score(X);
  threshold_ = tensor::quantile(scores, config_.threshold_percentile / 100.0);
}

std::vector<double> Usad::score(const tensor::Matrix& X) const {
  if (!nets_) throw std::logic_error("Usad::score before fit");
  const auto& [encoder, decoder1, decoder2] = *nets_;
  // Per-thread scratch keeps repeated scoring allocation-free (and concurrent
  // scoring of a shared const model safe); none of these alias the
  // Mlp-internal inference buffers.
  thread_local struct {
    tensor::Matrix latent, w1, latent2, w3;
  } s;
  encoder.forward_inference_into(X, s.latent);
  decoder1.forward_inference_into(s.latent, s.w1);
  encoder.forward_inference_into(s.w1, s.latent2);
  decoder2.forward_inference_into(s.latent2, s.w3);
  const auto direct = tensor::rowwise_mean_squared_error(X, s.w1);
  const auto adversarial = tensor::rowwise_mean_squared_error(X, s.w3);
  std::vector<double> scores(X.rows());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = config_.alpha * direct[i] + config_.beta * adversarial[i];
  }
  return scores;
}

std::vector<int> Usad::predict(const tensor::Matrix& X) const {
  const auto scores = score(X);
  std::vector<int> predictions(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    predictions[i] = scores[i] > threshold_ ? 1 : 0;
  }
  return predictions;
}

void Usad::tune(const tensor::Matrix& X, const std::vector<int>& labels) {
  threshold_ = eval::best_threshold_by_f1(score(X), labels).best_threshold;
}

}  // namespace prodigy::baselines
