#include "baselines/pca.hpp"

#include "eval/metrics.hpp"
#include "tensor/ops.hpp"
#include "tensor/stats.hpp"
#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace prodigy::baselines {

namespace {

/// y = C * x for the centered data matrix held implicitly: C = X^T X / n.
/// Computed as X^T (X x) to stay O(n*d) per product.
std::vector<double> covariance_product(const tensor::Matrix& centered,
                                       std::span<const double> x) {
  const std::size_t n = centered.rows();
  const std::size_t d = centered.cols();
  std::vector<double> projected(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = centered.data() + i * d;
    double acc = 0.0;
    for (std::size_t j = 0; j < d; ++j) acc += row[j] * x[j];
    projected[i] = acc;
  }
  std::vector<double> result(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = centered.data() + i * d;
    const double scale = projected[i] / static_cast<double>(n);
    for (std::size_t j = 0; j < d; ++j) result[j] += scale * row[j];
  }
  return result;
}

double norm(std::span<const double> x) {
  double acc = 0.0;
  for (const double v : x) acc += v * v;
  return std::sqrt(acc);
}

}  // namespace

void PcaDetector::fit(const tensor::Matrix& X, const std::vector<int>& labels) {
  if (X.rows() != labels.size()) {
    throw std::invalid_argument("PcaDetector::fit: rows != labels");
  }
  std::vector<std::size_t> healthy;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 0) healthy.push_back(i);
  }
  if (healthy.empty()) throw std::invalid_argument("PcaDetector::fit: no healthy rows");
  fit_healthy(X.select_rows(healthy));
}

void PcaDetector::fit_healthy(const tensor::Matrix& X) {
  if (X.rows() < 2) throw std::invalid_argument("PcaDetector::fit_healthy: too few rows");
  const std::size_t d = X.cols();
  const std::size_t k = std::min({config_.components, d, X.rows() - 1});

  // Center.
  mean_.assign(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) mean_[j] = tensor::mean(X.column(j));
  tensor::Matrix centered = X;
  for (std::size_t i = 0; i < X.rows(); ++i) {
    double* row = centered.data() + i * d;
    for (std::size_t j = 0; j < d; ++j) row[j] -= mean_[j];
  }

  // Orthogonal power iteration with deflation via Gram-Schmidt against the
  // components found so far.
  util::Rng rng(config_.seed);
  components_ = tensor::Matrix(k, d);
  eigenvalues_.assign(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<double> v(d);
    for (auto& value : v) value = rng.gaussian();
    for (std::size_t iter = 0; iter < config_.power_iterations; ++iter) {
      auto w = covariance_product(centered, v);
      // Deflate: remove projections onto previous components.
      for (std::size_t p = 0; p < c; ++p) {
        const auto prev = components_.row(p);
        double dot = 0.0;
        for (std::size_t j = 0; j < d; ++j) dot += w[j] * prev[j];
        for (std::size_t j = 0; j < d; ++j) w[j] -= dot * prev[j];
      }
      const double length = norm(w);
      if (length < 1e-14) break;  // exhausted variance
      for (std::size_t j = 0; j < d; ++j) w[j] /= length;
      v = std::move(w);
    }
    // Rayleigh quotient = eigenvalue.
    const auto cv = covariance_product(centered, v);
    double lambda = 0.0;
    for (std::size_t j = 0; j < d; ++j) lambda += v[j] * cv[j];
    eigenvalues_[c] = std::max(0.0, lambda);
    components_.set_row(c, v);
  }

  const auto scores = score(X);
  threshold_ = tensor::quantile(scores, 0.99);  // like Prodigy's 99th pct
}

std::vector<double> PcaDetector::score(const tensor::Matrix& X) const {
  if (components_.empty()) throw std::logic_error("PcaDetector::score before fit");
  const std::size_t d = X.cols();
  if (d != mean_.size()) throw std::invalid_argument("PcaDetector::score: width mismatch");

  std::vector<double> scores(X.rows(), 0.0);
  for (std::size_t i = 0; i < X.rows(); ++i) {
    // Residual = ||x_c||^2 - sum_k <x_c, v_k>^2  (components orthonormal).
    std::vector<double> xc(d);
    const auto row = X.row(i);
    for (std::size_t j = 0; j < d; ++j) xc[j] = row[j] - mean_[j];
    double total = 0.0;
    for (const double v : xc) total += v * v;
    double captured = 0.0;
    for (std::size_t c = 0; c < components_.rows(); ++c) {
      const auto component = components_.row(c);
      double dot = 0.0;
      for (std::size_t j = 0; j < d; ++j) dot += xc[j] * component[j];
      captured += dot * dot;
    }
    scores[i] = std::sqrt(std::max(0.0, total - captured) / static_cast<double>(d));
  }
  return scores;
}

std::vector<int> PcaDetector::predict(const tensor::Matrix& X) const {
  const auto scores = score(X);
  std::vector<int> predictions(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    predictions[i] = scores[i] > threshold_ ? 1 : 0;
  }
  return predictions;
}

void PcaDetector::tune(const tensor::Matrix& X, const std::vector<int>& labels) {
  threshold_ = eval::best_threshold_by_f1(score(X), labels).best_threshold;
}

}  // namespace prodigy::baselines
