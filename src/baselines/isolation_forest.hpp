// Isolation Forest baseline (Liu et al.; paper §5.3): an ensemble of random
// isolation trees.  Anomalies are isolated with fewer random splits, so the
// expected path length over the ensemble yields the anomaly score
// s(x) = 2^(-E[h(x)] / c(psi)).  Configured per §5.4.4: max_samples = 100,
// contamination = 10%, scikit-learn defaults otherwise (100 trees).
#pragma once

#include "core/detector_iface.hpp"
#include "util/rng.hpp"

#include <memory>
#include <vector>

namespace prodigy::baselines {

struct IsolationForestConfig {
  std::size_t n_estimators = 100;
  std::size_t max_samples = 100;   // psi; paper sets 100
  double contamination = 0.10;     // paper sets the training anomaly ratio
  std::uint64_t seed = 13;
};

class IsolationForest final : public core::Detector {
 public:
  IsolationForest() = default;
  explicit IsolationForest(IsolationForestConfig config) : config_(config) {}

  std::string name() const override { return "Isolation Forest"; }

  /// Trains on the full training set, anomalous rows included (the method
  /// handles contaminated data; §5.4.4 keeps them in).
  void fit(const tensor::Matrix& X, const std::vector<int>& labels) override;

  std::vector<double> score(const tensor::Matrix& X) const override;
  std::vector<int> predict(const tensor::Matrix& X) const override;

  double threshold() const noexcept { return threshold_; }

 private:
  struct Node {
    int feature = -1;        // -1 = leaf
    double split = 0.0;
    std::size_t size = 0;    // samples reaching a leaf
    std::int32_t left = -1;  // child indices within the tree's node pool
    std::int32_t right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  static std::int32_t build_node(Tree& tree, const tensor::Matrix& X,
                                 std::vector<std::size_t>& rows, std::size_t depth,
                                 std::size_t max_depth, util::Rng& rng);
  double path_length(const Tree& tree, std::span<const double> x) const;

  IsolationForestConfig config_;
  std::vector<Tree> trees_;
  double c_psi_ = 1.0;  // normalization c(max_samples)
  double threshold_ = 0.5;
};

/// Average unsuccessful-search path length of a BST with n nodes, c(n).
double average_path_length(std::size_t n) noexcept;

}  // namespace prodigy::baselines
