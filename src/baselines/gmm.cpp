#include "baselines/gmm.hpp"

#include "tensor/stats.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace prodigy::baselines {

namespace {

double log_sum_exp(std::span<const double> xs) {
  const double max = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(max)) return max;
  double acc = 0.0;
  for (const double x : xs) acc += std::exp(x - max);
  return max + std::log(acc);
}

}  // namespace

double GmmDetector::component_log_density(std::size_t k,
                                          std::span<const double> x) const {
  constexpr double kLog2Pi = 1.8378770664093453;  // log(2*pi)
  double acc = std::log(weights_[k]);
  for (std::size_t d = 0; d < x.size(); ++d) {
    const double var = variances_(k, d);
    const double diff = x[d] - means_(k, d);
    acc -= 0.5 * (kLog2Pi + std::log(var) + diff * diff / var);
  }
  return acc;
}

double GmmDetector::log_likelihood(std::span<const double> x) const {
  std::vector<double> logs(weights_.size());
  for (std::size_t k = 0; k < weights_.size(); ++k) {
    logs[k] = component_log_density(k, x);
  }
  return log_sum_exp(logs);
}

void GmmDetector::fit(const tensor::Matrix& X, const std::vector<int>& labels) {
  if (X.rows() < 2) throw std::invalid_argument("GmmDetector::fit: too few rows");
  (void)labels;  // unsupervised; contaminated training data stays in

  const std::size_t n = X.rows();
  const std::size_t dims = X.cols();
  const std::size_t k_components = std::min(config_.components, n);

  // Init: random distinct samples as means, global variance as covariance.
  util::Rng rng(config_.seed);
  weights_.assign(k_components, 1.0 / static_cast<double>(k_components));
  means_ = tensor::Matrix(k_components, dims);
  variances_ = tensor::Matrix(k_components, dims);
  const auto init_rows = rng.permutation(n);
  for (std::size_t k = 0; k < k_components; ++k) {
    means_.set_row(k, X.row(init_rows[k]));
    for (std::size_t d = 0; d < dims; ++d) {
      const double var = tensor::variance(X.column(d));
      variances_(k, d) = std::max(var, config_.covariance_floor);
    }
  }

  tensor::Matrix responsibilities(n, k_components);
  double previous_ll = -std::numeric_limits<double>::infinity();

  for (iterations_run_ = 0; iterations_run_ < config_.max_iterations;
       ++iterations_run_) {
    // E-step.
    double total_ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> logs(k_components);
      for (std::size_t k = 0; k < k_components; ++k) {
        logs[k] = component_log_density(k, X.row(i));
      }
      const double lse = log_sum_exp(logs);
      total_ll += lse;
      for (std::size_t k = 0; k < k_components; ++k) {
        responsibilities(i, k) = std::exp(logs[k] - lse);
      }
    }
    train_log_likelihood_ = total_ll / static_cast<double>(n);

    // M-step.
    for (std::size_t k = 0; k < k_components; ++k) {
      double resp_sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) resp_sum += responsibilities(i, k);
      if (resp_sum < 1e-10) {
        // Dead component: re-seed on a random sample.
        means_.set_row(k, X.row(rng.uniform_index(n)));
        weights_[k] = 1.0 / static_cast<double>(n);
        continue;
      }
      weights_[k] = resp_sum / static_cast<double>(n);
      for (std::size_t d = 0; d < dims; ++d) {
        double mean_acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          mean_acc += responsibilities(i, k) * X(i, d);
        }
        const double mean = mean_acc / resp_sum;
        means_(k, d) = mean;
        double var_acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double diff = X(i, d) - mean;
          var_acc += responsibilities(i, k) * diff * diff;
        }
        variances_(k, d) = std::max(var_acc / resp_sum, config_.covariance_floor);
      }
    }
    // Renormalize weights (re-seeded components perturb the sum).
    double weight_sum = 0.0;
    for (const double w : weights_) weight_sum += w;
    for (double& w : weights_) w /= weight_sum;

    if (train_log_likelihood_ - previous_ll < config_.tolerance &&
        iterations_run_ > 0) {
      ++iterations_run_;
      break;
    }
    previous_ll = train_log_likelihood_;
  }

  const auto scores = score(X);
  threshold_ = tensor::quantile(scores, 1.0 - config_.contamination);
}

std::vector<double> GmmDetector::score(const tensor::Matrix& X) const {
  if (weights_.empty()) throw std::logic_error("GmmDetector::score before fit");
  std::vector<double> scores(X.rows());
  util::parallel_for(0, X.rows(), [&](std::size_t i) {
    scores[i] = -log_likelihood(X.row(i));  // higher = less likely = anomalous
  }, 16);
  return scores;
}

std::vector<int> GmmDetector::predict(const tensor::Matrix& X) const {
  const auto scores = score(X);
  std::vector<int> predictions(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    predictions[i] = scores[i] > threshold_ ? 1 : 0;
  }
  return predictions;
}

}  // namespace prodigy::baselines
