// The paper's two heuristic baselines (§5.3):
//  * Random Prediction — uniformly random labels;
//  * Majority Label Prediction — predicts the majority label of the *test*
//    dataset (the paper's definition; an intentionally clairvoyant floor:
//    an ML model failing to beat it adds no value).
#pragma once

#include "core/detector_iface.hpp"
#include "util/rng.hpp"

#include <vector>

namespace prodigy::baselines {

class RandomPrediction final : public core::Detector {
 public:
  explicit RandomPrediction(std::uint64_t seed = 99) : seed_(seed) {}

  std::string name() const override { return "Random Prediction"; }

  void fit(const tensor::Matrix&, const std::vector<int>&) override {}

  std::vector<double> score(const tensor::Matrix& X) const override;
  std::vector<int> predict(const tensor::Matrix& X) const override;

 private:
  std::uint64_t seed_;
};

class MajorityLabelPrediction final : public core::Detector {
 public:
  std::string name() const override { return "Majority Label Prediction"; }

  /// Remembers the training majority as a fallback.
  void fit(const tensor::Matrix&, const std::vector<int>& labels) override;

  /// The paper's majority is taken from the test dataset; the harness hands
  /// the labeled test set to tune().
  void tune(const tensor::Matrix&, const std::vector<int>& labels) override;

  std::vector<double> score(const tensor::Matrix& X) const override;
  std::vector<int> predict(const tensor::Matrix& X) const override;

  int majority() const noexcept { return majority_; }

 private:
  static int majority_of(const std::vector<int>& labels) noexcept;
  int majority_ = 0;
};

}  // namespace prodigy::baselines
