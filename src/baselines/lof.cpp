#include "baselines/lof.hpp"

#include "tensor/ops.hpp"
#include "tensor/stats.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace prodigy::baselines {

namespace {
constexpr std::size_t kNoExclude = static_cast<std::size_t>(-1);
}

LocalOutlierFactor::Neighbourhood LocalOutlierFactor::knn(std::span<const double> x,
                                                          std::size_t exclude) const {
  const std::size_t n = train_.rows();
  const std::size_t k = std::min(config_.n_neighbors, n > 1 ? n - 1 : n);

  // Max-heap over (distance, index) pairs of size k.
  std::vector<std::pair<double, std::size_t>> heap;
  heap.reserve(k + 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == exclude) continue;
    const double d = tensor::euclidean_distance(x, train_.row(i));
    if (heap.size() < k) {
      heap.emplace_back(d, i);
      std::push_heap(heap.begin(), heap.end());
    } else if (d < heap.front().first) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {d, i};
      std::push_heap(heap.begin(), heap.end());
    }
  }
  std::sort_heap(heap.begin(), heap.end());

  Neighbourhood result;
  result.indices.reserve(heap.size());
  result.distances.reserve(heap.size());
  for (const auto& [distance, index] : heap) {
    result.indices.push_back(index);
    result.distances.push_back(distance);
  }
  return result;
}

void LocalOutlierFactor::fit(const tensor::Matrix& X, const std::vector<int>& labels) {
  if (X.rows() < 2) throw std::invalid_argument("LocalOutlierFactor::fit: too few rows");
  (void)labels;  // contaminated training data stays in (§5.4.4)
  train_ = X;

  const std::size_t n = train_.rows();
  std::vector<Neighbourhood> neighbourhoods(n);
  k_distance_.assign(n, 0.0);
  util::parallel_for(0, n, [&](std::size_t i) {
    neighbourhoods[i] = knn(train_.row(i), i);
    k_distance_[i] = neighbourhoods[i].distances.empty()
                         ? 0.0
                         : neighbourhoods[i].distances.back();
  }, 4);

  // Local reachability density of every training point.  A tiny floor on the
  // reachability sum keeps densities finite for duplicate-heavy data
  // (mirrors scikit-learn's 1e-10 guard).
  lrd_.assign(n, 0.0);
  util::parallel_for(0, n, [&](std::size_t i) {
    const auto& nb = neighbourhoods[i];
    double reach_sum = 0.0;
    for (std::size_t j = 0; j < nb.indices.size(); ++j) {
      reach_sum += std::max(nb.distances[j], k_distance_[nb.indices[j]]);
    }
    lrd_[i] = static_cast<double>(nb.indices.size()) / std::max(reach_sum, 1e-10);
  }, 16);

  const auto train_scores = score(train_);
  threshold_ = tensor::quantile(train_scores, 1.0 - config_.contamination);
}

std::vector<double> LocalOutlierFactor::score(const tensor::Matrix& X) const {
  if (train_.empty()) throw std::logic_error("LocalOutlierFactor::score before fit");
  std::vector<double> scores(X.rows(), 0.0);
  util::parallel_for(0, X.rows(), [&](std::size_t r) {
    const auto nb = knn(X.row(r), kNoExclude);
    if (nb.indices.empty()) return;
    double reach_sum = 0.0;
    double neighbour_lrd_sum = 0.0;
    for (std::size_t j = 0; j < nb.indices.size(); ++j) {
      reach_sum += std::max(nb.distances[j], k_distance_[nb.indices[j]]);
      neighbour_lrd_sum += lrd_[nb.indices[j]];
    }
    const double k = static_cast<double>(nb.indices.size());
    const double lrd_x = k / std::max(reach_sum, 1e-10);
    scores[r] = (neighbour_lrd_sum / k) / lrd_x;
  }, 4);
  return scores;
}

std::vector<int> LocalOutlierFactor::predict(const tensor::Matrix& X) const {
  const auto scores = score(X);
  std::vector<int> predictions(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    predictions[i] = scores[i] > threshold_ ? 1 : 0;
  }
  return predictions;
}

}  // namespace prodigy::baselines
