#include "baselines/heuristics.hpp"

namespace prodigy::baselines {

std::vector<double> RandomPrediction::score(const tensor::Matrix& X) const {
  util::Rng rng(seed_);
  std::vector<double> scores(X.rows());
  for (auto& s : scores) s = rng.uniform();
  return scores;
}

std::vector<int> RandomPrediction::predict(const tensor::Matrix& X) const {
  util::Rng rng(seed_);
  std::vector<int> predictions(X.rows());
  for (auto& p : predictions) p = rng.bernoulli(0.5) ? 1 : 0;
  return predictions;
}

int MajorityLabelPrediction::majority_of(const std::vector<int>& labels) noexcept {
  std::size_t anomalous = 0;
  for (int label : labels) anomalous += label != 0 ? 1 : 0;
  return 2 * anomalous > labels.size() ? 1 : 0;
}

void MajorityLabelPrediction::fit(const tensor::Matrix&,
                                  const std::vector<int>& labels) {
  majority_ = majority_of(labels);
}

void MajorityLabelPrediction::tune(const tensor::Matrix&,
                                   const std::vector<int>& labels) {
  if (!labels.empty()) majority_ = majority_of(labels);
}

std::vector<double> MajorityLabelPrediction::score(const tensor::Matrix& X) const {
  return std::vector<double>(X.rows(), static_cast<double>(majority_));
}

std::vector<int> MajorityLabelPrediction::predict(const tensor::Matrix& X) const {
  return std::vector<int>(X.rows(), majority_);
}

}  // namespace prodigy::baselines
