// This translation unit carries the Full-precision fused sweep and is
// compiled with -ffp-contract=off (see src/CMakeLists.txt), exactly like
// tensor/kernels.cpp: every output element must be the same pure ascending-k
// mul-then-add sum the layerwise Dense path commits, so fused-vs-layerwise
// EXPECT_EQ parity cannot depend on whether the compiler fused an FMA in one
// loop body and not the other.  The reduced-precision sweeps live in
// inference_plan_quant.cpp, which has no such contract.
#include "nn/inference_plan.hpp"

#include "nn/mlp.hpp"
#include "tensor/kernels.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#if defined(PRODIGY_NO_SIMD)
#define PRODIGY_SIMD
#else
#define PRODIGY_SIMD _Pragma("omp simd")
#endif

namespace prodigy::nn {

namespace {

// Rows per batch tile: one ping-pong tile half of the widest VAE layer
// (64 x 1024 doubles = 512 KB for the Tier-1 shape) stays L2-resident while
// the packed weights stream over it.
constexpr std::size_t kTileRows = 64;

tensor::kernels::FusedAct fused(Activation act) {
  switch (act) {
    case Activation::Linear:
      return tensor::kernels::FusedAct::None;
    case Activation::ReLU:
      return tensor::kernels::FusedAct::ReLU;
    case Activation::Tanh:
      return tensor::kernels::FusedAct::Tanh;
    case Activation::Sigmoid:
      return tensor::kernels::FusedAct::Sigmoid;
  }
  return tensor::kernels::FusedAct::None;
}

// Mirror of kernels' epilogue activation; must stay formula-identical (ReLU
// via `v < 0 ? 0 : v` so NaN propagates) for the bit-exactness contract.
inline double activate(Activation act, double v) {
  switch (act) {
    case Activation::Linear:
      return v;
    case Activation::ReLU:
      return v < 0.0 ? 0.0 : v;
    case Activation::Tanh:
      return std::tanh(v);
    case Activation::Sigmoid:
      return 1.0 / (1.0 + std::exp(-v));
  }
  return v;
}

// Per-thread activation tile: two ping-pong halves of kTileRows x max_width
// doubles.  Grows once per thread to the largest plan seen, then every run
// is allocation-free.
double* tile_scratch(std::size_t doubles) {
  thread_local std::vector<double> buf;
  if (buf.size() < doubles) buf.resize(doubles);
  return buf.data();
}

}  // namespace

std::string to_string(PlanPrecision precision) {
  switch (precision) {
    case PlanPrecision::Full:
      return "full";
    case PlanPrecision::Bf16:
      return "bf16";
    case PlanPrecision::Int8:
      return "int8";
  }
  return "full";
}

PlanPrecision plan_precision_from_string(const std::string& name) {
  if (name == "full" || name == "fp64") return PlanPrecision::Full;
  if (name == "bf16") return PlanPrecision::Bf16;
  if (name == "int8") return PlanPrecision::Int8;
  throw std::invalid_argument("unknown inference precision '" + name +
                              "' (expected full, bf16, or int8)");
}

InferencePlan::Builder& InferencePlan::Builder::add(const Dense& layer) {
  if (layer.in_features() == 0 || layer.out_features() == 0) {
    throw std::invalid_argument(
        "InferencePlan::Builder: layer has zero-sized dimensions (" +
        std::to_string(layer.in_features()) + " x " +
        std::to_string(layer.out_features()) + ")");
  }
  if (!layers_.empty() &&
      layer.in_features() != layers_.back()->out_features()) {
    throw std::invalid_argument(
        "InferencePlan::Builder: layer input dim " +
        std::to_string(layer.in_features()) +
        " does not chain from previous output dim " +
        std::to_string(layers_.back()->out_features()));
  }
  layers_.push_back(&layer);
  return *this;
}

InferencePlan::Builder& InferencePlan::Builder::add(const Mlp& mlp) {
  for (std::size_t i = 0; i < mlp.layer_count(); ++i) add(mlp.layer(i));
  return *this;
}

InferencePlan InferencePlan::Builder::build(PlanPrecision precision) const {
  if (layers_.empty()) {
    throw std::invalid_argument("InferencePlan::Builder: no layers added");
  }
  InferencePlan plan;
  plan.precision_ = precision;
  plan.input_dim_ = layers_.front()->in_features();
  plan.output_dim_ = layers_.back()->out_features();
  plan.max_width_ = plan.input_dim_;
  plan.layers_.reserve(layers_.size());

  std::size_t w_total = 0;
  std::size_t b_total = 0;
  for (const Dense* dense : layers_) {
    Layer layer;
    layer.in = dense->in_features();
    layer.out = dense->out_features();
    layer.act = dense->activation();
    if (precision == PlanPrecision::Full) {
      // Weights then bias, contiguous per layer, one buffer for the chain.
      layer.w_off = w_total + b_total;
      layer.b_off = layer.w_off + layer.in * layer.out;
    } else {
      layer.w_off = w_total;
      layer.b_off = b_total;
    }
    w_total += layer.in * layer.out;
    b_total += layer.out;
    plan.max_width_ = std::max(plan.max_width_, layer.out);
    plan.layers_.push_back(layer);
  }

  switch (precision) {
    case PlanPrecision::Full: {
      plan.packed_.resize(w_total + b_total);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Dense& dense = *layers_[l];
        const Layer& layer = plan.layers_[l];
        std::copy_n(dense.weights().data(), layer.in * layer.out,
                    plan.packed_.data() + layer.w_off);
        std::copy_n(dense.bias().data(), layer.out,
                    plan.packed_.data() + layer.b_off);
      }
      break;
    }
    case PlanPrecision::Bf16: {
      plan.wq16_.resize(w_total);
      plan.bias_f_.resize(b_total);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Dense& dense = *layers_[l];
        const Layer& layer = plan.layers_[l];
        const double* w = dense.weights().data();
        std::uint16_t* dst = plan.wq16_.data() + layer.w_off;
        for (std::size_t i = 0; i < layer.in * layer.out; ++i) {
          dst[i] = bf16_from_double(w[i]);
        }
        for (std::size_t j = 0; j < layer.out; ++j) {
          plan.bias_f_[layer.b_off + j] = static_cast<float>(dense.bias()[j]);
        }
      }
      break;
    }
    case PlanPrecision::Int8: {
      plan.wq8_.resize(w_total);
      plan.bias_f_.resize(b_total);
      plan.scales_.resize(b_total);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Dense& dense = *layers_[l];
        const Layer& layer = plan.layers_[l];
        const double* w = dense.weights().data();
        std::int8_t* dst = plan.wq8_.data() + layer.w_off;
        for (std::size_t j = 0; j < layer.out; ++j) {
          // Symmetric per-output-column scale: amax / 127.
          double amax = 0.0;
          for (std::size_t k = 0; k < layer.in; ++k) {
            const double v = std::abs(w[k * layer.out + j]);
            if (std::isfinite(v) && v > amax) amax = v;
          }
          const double scale = amax > 0.0 ? amax / 127.0 : 1.0;
          for (std::size_t k = 0; k < layer.in; ++k) {
            const double q = std::nearbyint(w[k * layer.out + j] / scale);
            dst[k * layer.out + j] = static_cast<std::int8_t>(
                std::clamp(q, -127.0, 127.0));
          }
          plan.scales_[layer.b_off + j] = static_cast<float>(scale);
          plan.bias_f_[layer.b_off + j] = static_cast<float>(dense.bias()[j]);
        }
      }
      break;
    }
  }
  return plan;
}

std::size_t InferencePlan::packed_bytes() const noexcept {
  return packed_.size() * sizeof(double) + wq16_.size() * sizeof(std::uint16_t) +
         wq8_.size() * sizeof(std::int8_t) + bias_f_.size() * sizeof(float) +
         scales_.size() * sizeof(float);
}

// Fused m == 1 streaming sweep: every layer's output element is the pure
// ascending-k axpy sum committed once through the bias+activation epilogue —
// numerically the exact loop gemm_single_row runs, minus all per-layer
// dispatch, shape checks, and Matrix plumbing.  Like gemm_single_row, the
// accumulators live in a chunk-local stack buffer: the compiler can prove it
// never aliases the weight stream (a heap destination would force reload
// checks inside the axpy), and a chunk stays L1-resident for wide layers.
void InferencePlan::run_single_row_full(const double* x, double* out) const {
  constexpr std::size_t kChunk = 256;
  double* scratch = tile_scratch(2 * max_width_);
  double* ping = scratch;
  double* pong = scratch + max_width_;
  const double* cur = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const bool last = l + 1 == layers_.size();
    double* dst = last ? out : (l % 2 == 0 ? ping : pong);
    const double* w = packed_.data() + layer.w_off;
    const double* bias = packed_.data() + layer.b_off;
    const std::size_t n = layer.out;
    for (std::size_t j0 = 0; j0 < n; j0 += kChunk) {
      const std::size_t width = std::min(n - j0, kChunk);
      double buf[kChunk];
      PRODIGY_SIMD
      for (std::size_t jj = 0; jj < width; ++jj) buf[jj] = 0.0;
      for (std::size_t kk = 0; kk < layer.in; ++kk) {
        const double av = cur[kk];
        const double* wrow = w + kk * n + j0;
        PRODIGY_SIMD
        for (std::size_t jj = 0; jj < width; ++jj) buf[jj] += av * wrow[jj];
      }
      const double* brow = bias + j0;
      double* drow = dst + j0;
      switch (layer.act) {
        case Activation::Linear:
          PRODIGY_SIMD
          for (std::size_t jj = 0; jj < width; ++jj) drow[jj] = buf[jj] + brow[jj];
          break;
        case Activation::ReLU:
          PRODIGY_SIMD
          for (std::size_t jj = 0; jj < width; ++jj) {
            const double v = buf[jj] + brow[jj];
            drow[jj] = v < 0.0 ? 0.0 : v;
          }
          break;
        default:
          for (std::size_t jj = 0; jj < width; ++jj) {
            drow[jj] = activate(layer.act, buf[jj] + brow[jj]);
          }
          break;
      }
    }
    cur = dst;
  }
}

// One tile of up to kTileRows rows through the whole chain.  Each layer is a
// raw NN GEMM over the packed weights with the fused bias+activation
// epilogue; intermediates ping-pong between the two tile halves.
void InferencePlan::run_rows_full(const double* x, std::size_t rows,
                                  double* out, util::ThreadPool* pool) const {
  if (rows == 1) {
    run_single_row_full(x, out);
    return;
  }
  double* scratch = tile_scratch(2 * kTileRows * max_width_);
  double* ping = scratch;
  double* pong = scratch + kTileRows * max_width_;
  const double* cur = x;
  std::size_t ld = input_dim_;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const bool last = l + 1 == layers_.size();
    double* dst = last ? out : (l % 2 == 0 ? ping : pong);
    tensor::kernels::Epilogue ep;
    ep.bias = packed_.data() + layer.b_off;
    ep.act = fused(layer.act);
    tensor::kernels::gemm(tensor::kernels::Layout::NN, rows, layer.out,
                          layer.in, cur, ld, packed_.data() + layer.w_off,
                          layer.out, dst, layer.out, ep, pool);
    cur = dst;
    ld = layer.out;
  }
}

void InferencePlan::run(const tensor::Matrix& x, tensor::Matrix& out,
                        util::ThreadPool* pool) const {
  if (layers_.empty()) {
    throw std::logic_error("InferencePlan::run: empty plan (nothing built)");
  }
  if (x.cols() != input_dim_) {
    throw std::invalid_argument("InferencePlan::run: input has " +
                                std::to_string(x.cols()) +
                                " columns, plan expects " +
                                std::to_string(input_dim_));
  }
  // Alias immunity by construction: if the caller hands the same Matrix as
  // input and output, snapshot the input into a per-thread backup before the
  // resize below can disturb it.
  const tensor::Matrix* src = &x;
  if (&x == &out) {
    thread_local tensor::Matrix alias_backup;
    alias_backup = x;
    src = &alias_backup;
  }
  out.resize_for_overwrite(src->rows(), output_dim_);
  const std::size_t rows = src->rows();
  if (rows == 0) return;

  util::ThreadPool& tp = pool != nullptr ? *pool : util::ThreadPool::global();
  const std::size_t tiles = (rows + kTileRows - 1) / kTileRows;
  auto run_tile = [&](std::size_t t) {
    const std::size_t r0 = t * kTileRows;
    const std::size_t m = std::min(kTileRows, rows - r0);
    const double* in = src->data() + r0 * input_dim_;
    double* dst = out.data() + r0 * output_dim_;
    switch (precision_) {
      case PlanPrecision::Full:
        // Inside a tile fan-out each task must stay single-threaded-in: the
        // nested gemm still receives the pool, but parallel_for runs nested
        // ranges inline on workers, and bits are pool-size-invariant anyway.
        run_rows_full(in, m, dst, &tp);
        break;
      case PlanPrecision::Bf16:
        detail::run_rows_bf16(*this, in, m, dst);
        break;
      case PlanPrecision::Int8:
        detail::run_rows_int8(*this, in, m, dst);
        break;
    }
  };
  if (tiles <= 1 || tp.size() <= 1) {
    for (std::size_t t = 0; t < tiles; ++t) run_tile(t);
  } else {
    // Tile banding: every output element is produced by exactly one task
    // with the same per-element sum order, so any pool size gives the same
    // bits (same argument as the kernel library's row banding).
    util::parallel_for(tp, 0, tiles, run_tile, 1);
  }
}

}  // namespace prodigy::nn
