// Fused whole-network inference plans (the SwiftNetMLP idea adapted to the
// Prodigy scoring path): every Dense layer of a chain — for the VAE that is
// encoder -> mu head -> decoder — is packed ONCE into one contiguous,
// layout-optimized parameter buffer, and the whole network executes in a
// single cache-resident sweep per batch tile.  Activation intermediates live
// in a fixed per-thread tile (two ping-pong halves sized tile_rows x
// max_width) and never touch the heap after warmup.
//
// Precision modes:
//  - PlanPrecision::Full  — double weights, the default.  Bit-identical
//    (EXPECT_EQ) to the layer-by-layer Dense/Mlp inference path: every output
//    element is the same pure ascending-k mul-then-add sum the tensor kernel
//    library commits (this translation unit is compiled with
//    -ffp-contract=off exactly like tensor/kernels.cpp), so fused vs
//    layerwise, any batch height, and any thread-pool size all round
//    identically.  The m == 1 streaming shape takes a dedicated fused sweep
//    with zero per-layer dispatch.
//  - PlanPrecision::Bf16  — weights rounded to bfloat16 (stored as uint16,
//    expanded by a bit shift in the inner loop: 4x less weight traffic than
//    double) with fp32 activations and accumulation.
//  - PlanPrecision::Int8  — symmetric per-output-column int8 weight
//    quantization (8x less weight traffic) with fp32 accumulation and a
//    per-column dequantization scale fused into the bias epilogue.
//  Reduced precision is opt-in (off by default everywhere) and gated by an
//  accuracy harness reporting the Tier-1 F1 delta (see docs/performance.md
//  and EXPERIMENTS.md).
#pragma once

#include "nn/dense.hpp"
#include "tensor/matrix.hpp"

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace prodigy::util {
class ThreadPool;
}

namespace prodigy::nn {

class Mlp;

enum class PlanPrecision { Full, Bf16, Int8 };

std::string to_string(PlanPrecision precision);
/// Accepts "full" (or "fp64"), "bf16", "int8"; throws std::invalid_argument.
PlanPrecision plan_precision_from_string(const std::string& name);

/// Round-to-nearest-even bfloat16 encoding of a double (via float), the
/// emulation used by the Bf16 plan mode.  NaN stays a (quiet) NaN.
inline std::uint16_t bf16_from_double(double value) {
  const float f = static_cast<float>(value);
  std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  if ((bits & 0x7fffffffu) > 0x7f800000u) {
    return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
  }
  const std::uint32_t lsb = (bits >> 16) & 1u;
  bits += 0x7fffu + lsb;
  return static_cast<std::uint16_t>(bits >> 16);
}

inline float bf16_to_float(std::uint16_t value) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(value) << 16);
}

class InferencePlan {
 public:
  /// One packed layer: `w_off` indexes the precision-specific weight array
  /// (row-major in x out, exactly Dense's layout), `b_off` the bias array
  /// (packed_ for Full, quant_bias()/quant_scales() for Bf16/Int8).
  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    Activation act = Activation::Linear;
    std::size_t w_off = 0;
    std::size_t b_off = 0;
  };

  /// Collects the layer chain, validating that consecutive dimensions line
  /// up, then packs the weights.  The referenced layers only need to stay
  /// alive until build() — the plan owns copies of every parameter.
  class Builder {
   public:
    /// Appends one dense layer; its in_features must equal the chain tail.
    Builder& add(const Dense& layer);
    /// Appends every layer of an Mlp in order.
    Builder& add(const Mlp& mlp);

    InferencePlan build(PlanPrecision precision = PlanPrecision::Full) const;

   private:
    std::vector<const Dense*> layers_;
  };

  InferencePlan() = default;

  bool empty() const noexcept { return layers_.empty(); }
  std::size_t input_dim() const noexcept { return input_dim_; }
  std::size_t output_dim() const noexcept { return output_dim_; }
  std::size_t layer_count() const noexcept { return layers_.size(); }
  PlanPrecision precision() const noexcept { return precision_; }
  /// Bytes of packed parameters (the per-score weight traffic).
  std::size_t packed_bytes() const noexcept;

  /// Runs the whole chain: out = L_n(...L_1(x)), resizing `out`
  /// (capacity-reusing, allocation-free after warmup).  Safe to call
  /// concurrently on a shared const plan; safe even when `out` aliases `x`
  /// (the input is snapshotted into a per-thread backup first), so the plan
  /// is immune to the aliasing hazard Mlp::forward_inference_into rejects.
  /// Batch tiles fan out across `pool` (nullptr = the global pool); results
  /// are bit-identical for any pool size.
  void run(const tensor::Matrix& x, tensor::Matrix& out,
           util::ThreadPool* pool = nullptr) const;

  // Introspection for the reduced-precision kernels and tests.
  const std::vector<Layer>& layers() const noexcept { return layers_; }
  std::size_t max_width() const noexcept { return max_width_; }
  const std::vector<double>& packed() const noexcept { return packed_; }
  const std::vector<std::uint16_t>& packed_bf16() const noexcept { return wq16_; }
  const std::vector<std::int8_t>& packed_int8() const noexcept { return wq8_; }
  const std::vector<float>& quant_bias() const noexcept { return bias_f_; }
  const std::vector<float>& quant_scales() const noexcept { return scales_; }

 private:
  void run_rows_full(const double* x, std::size_t rows, double* out,
                     util::ThreadPool* pool) const;
  void run_single_row_full(const double* x, double* out) const;

  PlanPrecision precision_ = PlanPrecision::Full;
  std::vector<Layer> layers_;
  std::size_t input_dim_ = 0;
  std::size_t output_dim_ = 0;
  std::size_t max_width_ = 0;  // widest activation (input or any layer out)

  // Full: weights and bias interleaved per layer in one contiguous buffer.
  std::vector<double> packed_;
  // Bf16 / Int8: packed weights, plus float bias and per-column scales.
  std::vector<std::uint16_t> wq16_;
  std::vector<std::int8_t> wq8_;
  std::vector<float> bias_f_;
  std::vector<float> scales_;  // Int8 only; dequantization per output column
};

namespace detail {
/// Reduced-precision row sweeps (separate TU: unlike the Full path these
/// carry no bit-exactness contract, so their TU allows FP contraction/FMA).
void run_rows_bf16(const InferencePlan& plan, const double* x, std::size_t rows,
                   double* out);
void run_rows_int8(const InferencePlan& plan, const double* x, std::size_t rows,
                   double* out);
}  // namespace detail

}  // namespace prodigy::nn
