// Shared training-loop plumbing: option bundle, mini-batch scheduling,
// early stopping, and a plain-autoencoder fit used by tests and baselines.
#pragma once

#include "nn/mlp.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

#include <cstddef>
#include <limits>
#include <vector>

namespace prodigy::nn {

struct TrainOptions {
  std::size_t epochs = 100;
  std::size_t batch_size = 64;
  double learning_rate = 1e-3;
  /// Fraction of the training set carved off for validation (0 disables).
  double validation_split = 0.0;
  /// Stop after this many epochs without validation improvement (0 disables).
  std::size_t early_stopping_patience = 0;
  std::uint64_t seed = 42;
  bool verbose = false;
};

struct TrainHistory {
  std::vector<double> train_loss;
  std::vector<double> validation_loss;
  std::size_t epochs_run = 0;
  bool stopped_early = false;
};

/// Shuffled contiguous batches over n rows for one epoch.
std::vector<std::vector<std::size_t>> make_batches(std::size_t n,
                                                   std::size_t batch_size,
                                                   util::Rng& rng);

/// Tracks the best validation loss and signals when patience is exhausted.
class EarlyStopping {
 public:
  explicit EarlyStopping(std::size_t patience) : patience_(patience) {}

  /// Returns true when training should stop.
  bool update(double validation_loss) noexcept;

  double best() const noexcept { return best_; }
  bool enabled() const noexcept { return patience_ > 0; }

 private:
  std::size_t patience_;
  std::size_t since_best_ = 0;
  double best_ = std::numeric_limits<double>::infinity();
};

/// Trains `model` to reconstruct its input with MSE loss.  Used directly by
/// plain autoencoders; the VAE and USAD own richer loops with the same steps.
TrainHistory fit_reconstruction(Mlp& model, const tensor::Matrix& data,
                                const TrainOptions& options);

}  // namespace prodigy::nn
