#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace prodigy::nn {

LossResult mse_loss(const tensor::Matrix& pred, const tensor::Matrix& target) {
  if (!pred.same_shape(target)) {
    throw std::invalid_argument("mse_loss: shape mismatch");
  }
  LossResult result;
  result.grad = tensor::Matrix(pred.rows(), pred.cols());
  const double scale = pred.size() == 0 ? 0.0 : 1.0 / static_cast<double>(pred.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double diff = pred.data()[i] - target.data()[i];
    acc += diff * diff;
    result.grad.data()[i] = 2.0 * diff * scale;
  }
  result.value = acc * scale;
  return result;
}

LossResult mae_loss(const tensor::Matrix& pred, const tensor::Matrix& target) {
  if (!pred.same_shape(target)) {
    throw std::invalid_argument("mae_loss: shape mismatch");
  }
  LossResult result;
  result.grad = tensor::Matrix(pred.rows(), pred.cols());
  const double scale = pred.size() == 0 ? 0.0 : 1.0 / static_cast<double>(pred.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double diff = pred.data()[i] - target.data()[i];
    acc += std::abs(diff);
    result.grad.data()[i] = (diff > 0.0 ? 1.0 : diff < 0.0 ? -1.0 : 0.0) * scale;
  }
  result.value = acc * scale;
  return result;
}

KlResult gaussian_kl(const tensor::Matrix& mu, const tensor::Matrix& logvar) {
  if (!mu.same_shape(logvar)) {
    throw std::invalid_argument("gaussian_kl: shape mismatch");
  }
  KlResult result;
  result.grad_mu = tensor::Matrix(mu.rows(), mu.cols());
  result.grad_logvar = tensor::Matrix(mu.rows(), mu.cols());
  const double batch = mu.rows() == 0 ? 1.0 : static_cast<double>(mu.rows());
  double acc = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    const double m = mu.data()[i];
    const double lv = logvar.data()[i];
    const double var = std::exp(lv);
    acc += -0.5 * (1.0 + lv - m * m - var);
    result.grad_mu.data()[i] = m / batch;
    result.grad_logvar.data()[i] = 0.5 * (var - 1.0) / batch;
  }
  result.value = acc / batch;
  return result;
}

}  // namespace prodigy::nn
