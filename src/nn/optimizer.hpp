// Gradient-descent optimizers.  Parameter buffers are registered once; each
// step() consumes the accumulated gradients of the registered buffers.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace prodigy::nn {

/// A view over one parameter buffer and its gradient buffer (equal length).
struct ParamView {
  double* param = nullptr;
  double* grad = nullptr;
  std::size_t size = 0;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registers a buffer; must be called before the first step().
  virtual void register_parameters(ParamView view) = 0;

  /// Applies one update using the current gradients (does not zero them).
  virtual void step() = 0;

  virtual double learning_rate() const noexcept = 0;
  virtual void set_learning_rate(double lr) noexcept = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);

  void register_parameters(ParamView view) override;
  void step() override;
  double learning_rate() const noexcept override { return lr_; }
  void set_learning_rate(double lr) noexcept override { lr_ = lr; }

 private:
  double lr_;
  double momentum_;
  std::vector<ParamView> views_;
  std::vector<std::vector<double>> velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);

  void register_parameters(ParamView view) override;
  void step() override;
  double learning_rate() const noexcept override { return lr_; }
  void set_learning_rate(double lr) noexcept override { lr_ = lr; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  std::size_t t_ = 0;
  std::vector<ParamView> views_;
  std::vector<std::vector<double>> m_;
  std::vector<std::vector<double>> v_;
};

}  // namespace prodigy::nn
