#include "nn/mlp.hpp"

#include <stdexcept>

namespace prodigy::nn {

Mlp::Mlp(std::size_t input_dim, const std::vector<LayerSpec>& specs, util::Rng& rng)
    : input_dim_(input_dim) {
  if (input_dim == 0) throw std::invalid_argument("Mlp: input_dim must be > 0");
  std::size_t in = input_dim;
  layers_.reserve(specs.size());
  for (const auto& spec : specs) {
    if (spec.units == 0) throw std::invalid_argument("Mlp: layer units must be > 0");
    layers_.emplace_back(in, spec.units, spec.activation, rng);
    in = spec.units;
  }
}

tensor::Matrix Mlp::forward(const tensor::Matrix& input) {
  tensor::Matrix current = input;
  for (auto& layer : layers_) current = layer.forward(current);
  return current;
}

tensor::Matrix Mlp::forward_inference(const tensor::Matrix& input) const {
  tensor::Matrix current = input;
  for (const auto& layer : layers_) current = layer.forward_inference(current);
  return current;
}

tensor::Matrix Mlp::backward(const tensor::Matrix& grad_output) {
  tensor::Matrix grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = it->backward(grad);
  }
  return grad;
}

void Mlp::zero_gradients() noexcept {
  for (auto& layer : layers_) layer.zero_gradients();
}

void Mlp::register_with(Optimizer& optimizer) {
  for (auto& layer : layers_) {
    optimizer.register_parameters({layer.weights().data(),
                                   layer.weight_grad().data(),
                                   layer.weights().size()});
    optimizer.register_parameters({layer.bias().data(), layer.bias_grad().data(),
                                   layer.bias().size()});
  }
}

std::size_t Mlp::parameter_count() const noexcept {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer.parameter_count();
  return total;
}

void Mlp::save(util::BinaryWriter& writer) const {
  writer.write_u64(input_dim_);
  writer.write_u64(layers_.size());
  for (const auto& layer : layers_) layer.save(writer);
}

Mlp Mlp::load(util::BinaryReader& reader) {
  Mlp mlp;
  mlp.input_dim_ = reader.read_u64();
  const auto count = reader.read_u64();
  mlp.layers_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    mlp.layers_.push_back(Dense::load(reader));
  }
  return mlp;
}

}  // namespace prodigy::nn
