#include "nn/mlp.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace prodigy::nn {

Mlp::Mlp(std::size_t input_dim, const std::vector<LayerSpec>& specs, util::Rng& rng)
    : input_dim_(input_dim) {
  if (input_dim == 0) throw std::invalid_argument("Mlp: input_dim must be > 0");
  std::size_t in = input_dim;
  layers_.reserve(specs.size());
  for (const auto& spec : specs) {
    if (spec.units == 0) throw std::invalid_argument("Mlp: layer units must be > 0");
    layers_.emplace_back(in, spec.units, spec.activation, rng);
    in = spec.units;
  }
}

const tensor::Matrix& Mlp::forward(const tensor::Matrix& input) {
  // Each layer writes into its own capacity-reused output buffer and keeps a
  // borrowed view of its input, so the chain allocates nothing after warmup.
  // Layer i's input is layer i-1's owned output, which stays stable through
  // backward().
  const tensor::Matrix* current = &input;
  for (auto& layer : layers_) current = &layer.forward(*current);
  return *current;
}

tensor::Matrix Mlp::forward_inference(const tensor::Matrix& input) const {
  tensor::Matrix out;
  forward_inference_into(input, out);
  return out;
}

void Mlp::forward_inference_into(const tensor::Matrix& input,
                                 tensor::Matrix& out) const {
  if (layers_.empty()) {
    out = input;
    return;
  }
  // No-alias contract: the last layer's GEMM reads `input` (single-layer
  // net) or a scratch buffer while streaming results into `out`; if they
  // were the same Matrix the kernel would read rows it already clobbered
  // (and the resize could move the storage mid-read).  Reject it loudly
  // instead of returning garbage.  InferencePlan::run is alias-immune by
  // construction and is the right entry point for in-place use.
  if (&input == &out) {
    throw std::invalid_argument(
        "Mlp::forward_inference_into: out must not alias input");
  }
  // Ping-pong between two per-thread scratch buffers; the last layer writes
  // straight into `out`.  thread_local keeps concurrent scoring of a shared
  // const model safe.  Callers can never hold references to these buffers,
  // so `input` cannot alias them.
  thread_local tensor::Matrix ping, pong;
  tensor::Matrix* scratch[2] = {&ping, &pong};
  const tensor::Matrix* current = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    tensor::Matrix* dst = i + 1 == layers_.size() ? &out : scratch[i % 2];
    layers_[i].forward_inference_into(*current, *dst);
    current = dst;
  }
}

tensor::Matrix Mlp::backward(const tensor::Matrix& grad_output) {
  tensor::Matrix grad_input;
  backward_into(grad_output, grad_input);
  return grad_input;
}

void Mlp::backward_into(const tensor::Matrix& grad_output,
                        tensor::Matrix& grad_input) {
  if (layers_.empty()) {
    grad_input = grad_output;
    return;
  }
  const tensor::Matrix* current = &grad_output;
  for (std::size_t step = 0; step < layers_.size(); ++step) {
    const std::size_t i = layers_.size() - 1 - step;
    tensor::Matrix* dst = i == 0 ? &grad_input : &grad_scratch_[step % 2];
    layers_[i].backward_into(*current, *dst);
    current = dst;
  }
}

void Mlp::zero_gradients() noexcept {
  for (auto& layer : layers_) layer.zero_gradients();
}

void Mlp::register_with(Optimizer& optimizer) {
  for (auto& layer : layers_) {
    optimizer.register_parameters({layer.weights().data(),
                                   layer.weight_grad().data(),
                                   layer.weights().size()});
    optimizer.register_parameters({layer.bias().data(), layer.bias_grad().data(),
                                   layer.bias().size()});
  }
}

std::size_t Mlp::parameter_count() const noexcept {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer.parameter_count();
  return total;
}

void Mlp::save(util::BinaryWriter& writer) const {
  writer.write_u64(input_dim_);
  writer.write_u64(layers_.size());
  for (const auto& layer : layers_) layer.save(writer);
}

Mlp Mlp::load(util::BinaryReader& reader) {
  Mlp mlp;
  mlp.input_dim_ = reader.read_u64();
  if (mlp.input_dim_ == 0) {
    throw std::runtime_error("Mlp::load: input_dim is 0; stream is corrupt");
  }
  const auto count = reader.read_u64();
  mlp.layers_.reserve(count);
  // Cross-validate the layer chain as it streams in: a corrupted file must
  // fail here with a dimension message, not later as a confusing GEMM
  // shape error in the middle of inference.
  std::size_t expected_in = mlp.input_dim_;
  for (std::uint64_t i = 0; i < count; ++i) {
    Dense layer = Dense::load(reader);
    if (layer.in_features() != expected_in) {
      throw std::runtime_error(
          "Mlp::load: layer " + std::to_string(i) + " input dim " +
          std::to_string(layer.in_features()) +
          " does not chain from previous output dim " +
          std::to_string(expected_in) + "; stream is corrupt");
    }
    expected_in = layer.out_features();
    mlp.layers_.push_back(std::move(layer));
  }
  return mlp;
}

}  // namespace prodigy::nn
