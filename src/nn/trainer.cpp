#include "nn/trainer.hpp"

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/logging.hpp"

#include <algorithm>

namespace prodigy::nn {

std::vector<std::vector<std::size_t>> make_batches(std::size_t n,
                                                   std::size_t batch_size,
                                                   util::Rng& rng) {
  if (batch_size == 0) batch_size = 1;
  const auto perm = rng.permutation(n);
  std::vector<std::vector<std::size_t>> batches;
  batches.reserve((n + batch_size - 1) / batch_size);
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t stop = std::min(n, start + batch_size);
    batches.emplace_back(perm.begin() + static_cast<std::ptrdiff_t>(start),
                         perm.begin() + static_cast<std::ptrdiff_t>(stop));
  }
  return batches;
}

bool EarlyStopping::update(double validation_loss) noexcept {
  if (patience_ == 0) return false;
  if (validation_loss < best_) {
    best_ = validation_loss;
    since_best_ = 0;
    return false;
  }
  ++since_best_;
  return since_best_ >= patience_;
}

TrainHistory fit_reconstruction(Mlp& model, const tensor::Matrix& data,
                                const TrainOptions& options) {
  util::Rng rng(options.seed);
  TrainHistory history;

  // Optional validation carve-out from the tail of a shuffled copy.
  const auto perm = rng.permutation(data.rows());
  std::size_t val_count = 0;
  if (options.validation_split > 0.0 && data.rows() >= 4) {
    val_count = static_cast<std::size_t>(options.validation_split *
                                         static_cast<double>(data.rows()));
    val_count = std::min(val_count, data.rows() - 1);
  }
  const std::size_t train_count = data.rows() - val_count;
  std::vector<std::size_t> train_idx(perm.begin(),
                                     perm.begin() + static_cast<std::ptrdiff_t>(train_count));
  std::vector<std::size_t> val_idx(perm.begin() + static_cast<std::ptrdiff_t>(train_count),
                                   perm.end());
  const tensor::Matrix train = data.select_rows(train_idx);
  const tensor::Matrix validation = data.select_rows(val_idx);

  Adam optimizer(options.learning_rate);
  model.register_with(optimizer);
  EarlyStopping stopper(options.early_stopping_patience);

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    std::size_t batch_count = 0;
    for (const auto& batch : make_batches(train.rows(), options.batch_size, rng)) {
      const tensor::Matrix x = train.select_rows(batch);
      model.zero_gradients();
      const tensor::Matrix reconstruction = model.forward(x);
      const LossResult loss = mse_loss(reconstruction, x);
      model.backward(loss.grad);
      optimizer.step();
      epoch_loss += loss.value;
      ++batch_count;
    }
    epoch_loss /= std::max<std::size_t>(1, batch_count);
    history.train_loss.push_back(epoch_loss);
    ++history.epochs_run;

    if (val_count > 0) {
      const tensor::Matrix rec = model.forward_inference(validation);
      const double val_loss = mse_loss(rec, validation).value;
      history.validation_loss.push_back(val_loss);
      if (stopper.update(val_loss)) {
        history.stopped_early = true;
        break;
      }
    }
    if (options.verbose && epoch % 50 == 0) {
      util::log_info("fit_reconstruction epoch ", epoch, " loss ", epoch_loss);
    }
  }
  return history;
}

}  // namespace prodigy::nn
