// Fully-connected layer with manual backprop.
#pragma once

#include "nn/activation.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace prodigy::nn {

class Dense {
 public:
  Dense() = default;

  /// Initializes weights with He (ReLU) or Xavier (otherwise) scaling.
  Dense(std::size_t in_features, std::size_t out_features, Activation act,
        util::Rng& rng);

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }
  Activation activation() const noexcept { return act_; }

  /// Forward pass; caches input and activated output for backward().
  tensor::Matrix forward(const tensor::Matrix& input);

  /// Forward pass without caching (inference path; const).
  tensor::Matrix forward_inference(const tensor::Matrix& input) const;

  /// Given dL/d(output), accumulates weight/bias gradients and returns
  /// dL/d(input).  Must follow a forward() call with the matching batch.
  tensor::Matrix backward(const tensor::Matrix& grad_output);

  void zero_gradients() noexcept;

  tensor::Matrix& weights() noexcept { return weights_; }
  const tensor::Matrix& weights() const noexcept { return weights_; }
  std::vector<double>& bias() noexcept { return bias_; }
  const std::vector<double>& bias() const noexcept { return bias_; }
  tensor::Matrix& weight_grad() noexcept { return weight_grad_; }
  std::vector<double>& bias_grad() noexcept { return bias_grad_; }

  std::size_t parameter_count() const noexcept {
    return weights_.size() + bias_.size();
  }

  void save(util::BinaryWriter& writer) const;
  static Dense load(util::BinaryReader& reader);

 private:
  std::size_t in_ = 0;
  std::size_t out_ = 0;
  Activation act_ = Activation::Linear;
  tensor::Matrix weights_;       // (in x out)
  std::vector<double> bias_;     // (out)
  tensor::Matrix weight_grad_;   // (in x out)
  std::vector<double> bias_grad_;

  tensor::Matrix cached_input_;
  tensor::Matrix cached_output_;  // post-activation
};

}  // namespace prodigy::nn
