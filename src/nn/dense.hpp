// Fully-connected layer with manual backprop.
#pragma once

#include "nn/activation.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace prodigy::nn {

class Dense {
 public:
  Dense() = default;

  /// Initializes weights with He (ReLU) or Xavier (otherwise) scaling.
  Dense(std::size_t in_features, std::size_t out_features, Activation act,
        util::Rng& rng);

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }
  Activation activation() const noexcept { return act_; }

  /// Training forward pass (fused GEMM + bias + activation) into an owned,
  /// capacity-reused output buffer; returns a reference to it.  The input is
  /// cached as a borrowed view, not a copy: the caller must keep `input`
  /// alive and unmoved until the matching backward() returns (Mlp guarantees
  /// this by chaining layer-owned outputs).  The returned reference is
  /// invalidated by the next forward() on this layer.
  const tensor::Matrix& forward(const tensor::Matrix& input);

  /// Forward pass without caching (inference path; const, thread-safe).
  tensor::Matrix forward_inference(const tensor::Matrix& input) const;

  /// Same, writing into a caller-owned buffer (resized with capacity reuse)
  /// so steady-state inference is allocation-free.
  void forward_inference_into(const tensor::Matrix& input,
                              tensor::Matrix& out) const;

  /// Given dL/d(output), accumulates weight/bias gradients in place and
  /// returns dL/d(input).  Must follow a forward() call with the matching
  /// batch.
  tensor::Matrix backward(const tensor::Matrix& grad_output);

  /// Same, writing dL/d(input) into a caller-owned buffer.
  void backward_into(const tensor::Matrix& grad_output,
                     tensor::Matrix& grad_input);

  void zero_gradients() noexcept;

  tensor::Matrix& weights() noexcept { return weights_; }
  const tensor::Matrix& weights() const noexcept { return weights_; }
  std::vector<double>& bias() noexcept { return bias_; }
  const std::vector<double>& bias() const noexcept { return bias_; }
  tensor::Matrix& weight_grad() noexcept { return weight_grad_; }
  std::vector<double>& bias_grad() noexcept { return bias_grad_; }

  std::size_t parameter_count() const noexcept {
    return weights_.size() + bias_.size();
  }

  void save(util::BinaryWriter& writer) const;
  static Dense load(util::BinaryReader& reader);

 private:
  // Borrowed view of the training-forward input.  A copied Dense shares the
  // source's view (pointing at the original caller's buffer), which is safe
  // for the supported pattern of copying a layer and running inference on
  // the copy; backward() must only follow this object's own forward().
  struct InputView {
    const double* data = nullptr;
    std::size_t rows = 0;
    std::size_t cols = 0;
  };

  std::size_t in_ = 0;
  std::size_t out_ = 0;
  Activation act_ = Activation::Linear;
  tensor::Matrix weights_;       // (in x out)
  std::vector<double> bias_;     // (out)
  tensor::Matrix weight_grad_;   // (in x out)
  std::vector<double> bias_grad_;

  InputView cached_input_;        // borrowed; valid until backward()
  tensor::Matrix cached_output_;  // owned post-activation workspace
  tensor::Matrix grad_pre_;       // owned pre-activation-grad workspace
};

}  // namespace prodigy::nn
