// Loss functions: scalar value + gradient w.r.t. predictions, both averaged
// over batch elements so learning rates are batch-size independent.
#pragma once

#include "tensor/matrix.hpp"

namespace prodigy::nn {

struct LossResult {
  double value = 0.0;
  tensor::Matrix grad;  // dL/dpred, same shape as pred
};

/// Mean squared error over all elements.
LossResult mse_loss(const tensor::Matrix& pred, const tensor::Matrix& target);

/// Mean absolute error over all elements (subgradient 0 at ties).
LossResult mae_loss(const tensor::Matrix& pred, const tensor::Matrix& target);

/// KL( N(mu, exp(logvar)) || N(0, I) ), averaged over the batch.
/// Gradients are returned for mu and logvar separately.
struct KlResult {
  double value = 0.0;
  tensor::Matrix grad_mu;
  tensor::Matrix grad_logvar;
};
KlResult gaussian_kl(const tensor::Matrix& mu, const tensor::Matrix& logvar);

}  // namespace prodigy::nn
