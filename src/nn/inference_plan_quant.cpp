// Reduced-precision inference sweeps (PlanPrecision::Bf16 / Int8).  Unlike
// inference_plan.cpp this translation unit carries NO bit-exactness
// contract — quantized scoring is gated by the F1-delta accuracy harness,
// not EXPECT_EQ — so it is compiled without -ffp-contract=off and the
// compiler is free to fuse FMAs.  Activations and accumulation are fp32;
// weights stream as 2-byte bfloat16 (expanded by a bit shift) or 1-byte
// int8 (dequantized by a per-output-column scale fused into the epilogue),
// which is the 4x / 8x weight-traffic cut that buys the 1-row latency win.
#include "nn/inference_plan.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#if defined(PRODIGY_NO_SIMD)
#define PRODIGY_SIMD
#else
#define PRODIGY_SIMD _Pragma("omp simd")
#endif

namespace prodigy::nn::detail {

namespace {

inline float activate_f(Activation act, float v) {
  switch (act) {
    case Activation::Linear:
      return v;
    case Activation::ReLU:
      // NaN compares false and propagates, matching the fp64 epilogue.
      return v < 0.0f ? 0.0f : v;
    case Activation::Tanh:
      return std::tanh(v);
    case Activation::Sigmoid:
      return 1.0f / (1.0f + std::exp(-v));
  }
  return v;
}

// Per-thread float ping-pong pair sized to the widest activation.
float* quant_scratch(std::size_t floats) {
  thread_local std::vector<float> buf;
  if (buf.size() < floats) buf.resize(floats);
  return buf.data();
}

// Accumulator chunk width: like gemm_single_row, partial sums live in a
// chunk-local stack buffer the compiler can prove never aliases the weight
// stream (a heap destination forces reload checks inside the axpy).
constexpr std::size_t kChunk = 256;

}  // namespace

void run_rows_bf16(const InferencePlan& plan, const double* x,
                   std::size_t rows, double* out) {
  const std::size_t width = plan.max_width();
  float* scratch = quant_scratch(2 * width);
  float* ping = scratch;
  float* pong = scratch + width;
  const auto& layers = plan.layers();
  const std::uint16_t* weights = plan.packed_bf16().data();
  const float* biases = plan.quant_bias().data();
  const std::size_t in_dim = plan.input_dim();
  const std::size_t out_dim = plan.output_dim();

  for (std::size_t r = 0; r < rows; ++r) {
    const double* xr = x + r * in_dim;
    PRODIGY_SIMD
    for (std::size_t k = 0; k < in_dim; ++k) ping[k] = static_cast<float>(xr[k]);
    const float* cur = ping;
    for (std::size_t l = 0; l < layers.size(); ++l) {
      const InferencePlan::Layer& layer = layers[l];
      float* dst = cur == ping ? pong : ping;
      const std::uint16_t* w = weights + layer.w_off;
      const float* bias = biases + layer.b_off;
      const std::size_t n = layer.out;
      for (std::size_t j0 = 0; j0 < n; j0 += kChunk) {
        const std::size_t cw = std::min(n - j0, kChunk);
        float buf[kChunk];
        PRODIGY_SIMD
        for (std::size_t jj = 0; jj < cw; ++jj) buf[jj] = 0.0f;
        for (std::size_t kk = 0; kk < layer.in; ++kk) {
          const float av = cur[kk];
          const std::uint16_t* wrow = w + kk * n + j0;
          PRODIGY_SIMD
          for (std::size_t jj = 0; jj < cw; ++jj) {
            buf[jj] += av * bf16_to_float(wrow[jj]);
          }
        }
        for (std::size_t jj = 0; jj < cw; ++jj) {
          dst[j0 + jj] = activate_f(layer.act, buf[jj] + bias[j0 + jj]);
        }
      }
      cur = dst;
    }
    double* orow = out + r * out_dim;
    PRODIGY_SIMD
    for (std::size_t j = 0; j < out_dim; ++j) {
      orow[j] = static_cast<double>(cur[j]);
    }
  }
}

void run_rows_int8(const InferencePlan& plan, const double* x,
                   std::size_t rows, double* out) {
  const std::size_t width = plan.max_width();
  float* scratch = quant_scratch(2 * width);
  float* ping = scratch;
  float* pong = scratch + width;
  const auto& layers = plan.layers();
  const std::int8_t* weights = plan.packed_int8().data();
  const float* biases = plan.quant_bias().data();
  const float* scales = plan.quant_scales().data();
  const std::size_t in_dim = plan.input_dim();
  const std::size_t out_dim = plan.output_dim();

  for (std::size_t r = 0; r < rows; ++r) {
    const double* xr = x + r * in_dim;
    PRODIGY_SIMD
    for (std::size_t k = 0; k < in_dim; ++k) ping[k] = static_cast<float>(xr[k]);
    const float* cur = ping;
    for (std::size_t l = 0; l < layers.size(); ++l) {
      const InferencePlan::Layer& layer = layers[l];
      float* dst = cur == ping ? pong : ping;
      const std::int8_t* w = weights + layer.w_off;
      const float* bias = biases + layer.b_off;
      const float* scale = scales + layer.b_off;
      const std::size_t n = layer.out;
      for (std::size_t j0 = 0; j0 < n; j0 += kChunk) {
        const std::size_t cw = std::min(n - j0, kChunk);
        float buf[kChunk];
        PRODIGY_SIMD
        for (std::size_t jj = 0; jj < cw; ++jj) buf[jj] = 0.0f;
        for (std::size_t kk = 0; kk < layer.in; ++kk) {
          const float av = cur[kk];
          const std::int8_t* wrow = w + kk * n + j0;
          PRODIGY_SIMD
          for (std::size_t jj = 0; jj < cw; ++jj) {
            buf[jj] += av * static_cast<float>(wrow[jj]);
          }
        }
        // Dequantize in the epilogue: the whole accumulated integer-weight
        // sum scales by the column's amax/127 before bias + activation.
        for (std::size_t jj = 0; jj < cw; ++jj) {
          dst[j0 + jj] = activate_f(layer.act,
                                    buf[jj] * scale[j0 + jj] + bias[j0 + jj]);
        }
      }
      cur = dst;
    }
    double* orow = out + r * out_dim;
    PRODIGY_SIMD
    for (std::size_t j = 0; j < out_dim; ++j) {
      orow[j] = static_cast<double>(cur[j]);
    }
  }
}

}  // namespace prodigy::nn::detail
