// Activation functions applied element-wise by Dense layers.
#pragma once

#include "tensor/matrix.hpp"

#include <string>

namespace prodigy::nn {

enum class Activation { Linear, ReLU, Tanh, Sigmoid };

/// Applies the activation element-wise in place.
void apply_activation(Activation act, tensor::Matrix& values);

/// Multiplies `grad` in place by the activation derivative evaluated from the
/// *post-activation* values (all supported activations admit this form).
void apply_activation_gradient(Activation act, const tensor::Matrix& activated,
                               tensor::Matrix& grad);

std::string to_string(Activation act);
Activation activation_from_string(const std::string& name);

}  // namespace prodigy::nn
