#include "nn/optimizer.hpp"

#include <cmath>

namespace prodigy::nn {

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {}

void Sgd::register_parameters(ParamView view) {
  views_.push_back(view);
  velocity_.emplace_back(view.size, 0.0);
}

void Sgd::step() {
  for (std::size_t k = 0; k < views_.size(); ++k) {
    auto& view = views_[k];
    auto& vel = velocity_[k];
    for (std::size_t i = 0; i < view.size; ++i) {
      vel[i] = momentum_ * vel[i] - lr_ * view.grad[i];
      view.param[i] += vel[i];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double epsilon)
    : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

void Adam::register_parameters(ParamView view) {
  views_.push_back(view);
  m_.emplace_back(view.size, 0.0);
  v_.emplace_back(view.size, 0.0);
}

void Adam::step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t k = 0; k < views_.size(); ++k) {
    auto& view = views_[k];
    auto& m = m_[k];
    auto& v = v_[k];
    for (std::size_t i = 0; i < view.size; ++i) {
      const double g = view.grad[i];
      m[i] = beta1_ * m[i] + (1.0 - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0 - beta2_) * g * g;
      const double m_hat = m[i] / bias1;
      const double v_hat = v[i] / bias2;
      view.param[i] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace prodigy::nn
