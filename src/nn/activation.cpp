#include "nn/activation.hpp"

#include <cmath>
#include <stdexcept>

namespace prodigy::nn {

void apply_activation(Activation act, tensor::Matrix& values) {
  double* data = values.data();
  const std::size_t n = values.size();
  switch (act) {
    case Activation::Linear:
      return;
    case Activation::ReLU:
      for (std::size_t i = 0; i < n; ++i) {
        if (data[i] < 0.0) data[i] = 0.0;
      }
      return;
    case Activation::Tanh:
      for (std::size_t i = 0; i < n; ++i) data[i] = std::tanh(data[i]);
      return;
    case Activation::Sigmoid:
      for (std::size_t i = 0; i < n; ++i) data[i] = 1.0 / (1.0 + std::exp(-data[i]));
      return;
  }
}

void apply_activation_gradient(Activation act, const tensor::Matrix& activated,
                               tensor::Matrix& grad) {
  if (!activated.same_shape(grad)) {
    throw std::invalid_argument("apply_activation_gradient: shape mismatch");
  }
  const double* a = activated.data();
  double* g = grad.data();
  const std::size_t n = grad.size();
  switch (act) {
    case Activation::Linear:
      return;
    case Activation::ReLU:
      for (std::size_t i = 0; i < n; ++i) {
        if (a[i] <= 0.0) g[i] = 0.0;
      }
      return;
    case Activation::Tanh:
      for (std::size_t i = 0; i < n; ++i) g[i] *= 1.0 - a[i] * a[i];
      return;
    case Activation::Sigmoid:
      for (std::size_t i = 0; i < n; ++i) g[i] *= a[i] * (1.0 - a[i]);
      return;
  }
}

std::string to_string(Activation act) {
  switch (act) {
    case Activation::Linear: return "linear";
    case Activation::ReLU: return "relu";
    case Activation::Tanh: return "tanh";
    case Activation::Sigmoid: return "sigmoid";
  }
  return "linear";
}

Activation activation_from_string(const std::string& name) {
  if (name == "linear") return Activation::Linear;
  if (name == "relu") return Activation::ReLU;
  if (name == "tanh") return Activation::Tanh;
  if (name == "sigmoid") return Activation::Sigmoid;
  throw std::invalid_argument("unknown activation: " + name);
}

}  // namespace prodigy::nn
