#include "nn/dense.hpp"

#include "tensor/ops.hpp"

#include <cmath>

namespace prodigy::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Activation act,
             util::Rng& rng)
    : in_(in_features),
      out_(out_features),
      act_(act),
      weights_(in_features, out_features),
      bias_(out_features, 0.0),
      weight_grad_(in_features, out_features),
      bias_grad_(out_features, 0.0) {
  const double fan_in = static_cast<double>(in_features);
  const double fan_out = static_cast<double>(out_features);
  // He initialization suits ReLU; Xavier/Glorot suits saturating/linear units.
  const double scale = act == Activation::ReLU
                           ? std::sqrt(2.0 / fan_in)
                           : std::sqrt(2.0 / (fan_in + fan_out));
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_.data()[i] = rng.gaussian(0.0, scale);
  }
}

tensor::Matrix Dense::forward(const tensor::Matrix& input) {
  cached_input_ = input;
  tensor::Matrix out = tensor::matmul(input, weights_);
  tensor::add_row_vector(out, bias_);
  apply_activation(act_, out);
  cached_output_ = out;
  return out;
}

tensor::Matrix Dense::forward_inference(const tensor::Matrix& input) const {
  tensor::Matrix out = tensor::matmul(input, weights_);
  tensor::add_row_vector(out, bias_);
  apply_activation(act_, out);
  return out;
}

tensor::Matrix Dense::backward(const tensor::Matrix& grad_output) {
  tensor::Matrix grad_pre = grad_output;
  apply_activation_gradient(act_, cached_output_, grad_pre);

  // Accumulate parameter gradients.
  weight_grad_ += tensor::matmul_transposed_a(cached_input_, grad_pre);
  const auto bias_delta = tensor::column_sums(grad_pre);
  for (std::size_t i = 0; i < bias_grad_.size(); ++i) bias_grad_[i] += bias_delta[i];

  return tensor::matmul_transposed_b(grad_pre, weights_);
}

void Dense::zero_gradients() noexcept {
  std::fill(weight_grad_.storage().begin(), weight_grad_.storage().end(), 0.0);
  std::fill(bias_grad_.begin(), bias_grad_.end(), 0.0);
}

void Dense::save(util::BinaryWriter& writer) const {
  writer.write_u64(in_);
  writer.write_u64(out_);
  writer.write_string(to_string(act_));
  writer.write_f64_vector(weights_.storage());
  writer.write_f64_vector(bias_);
}

Dense Dense::load(util::BinaryReader& reader) {
  Dense layer;
  layer.in_ = reader.read_u64();
  layer.out_ = reader.read_u64();
  layer.act_ = activation_from_string(reader.read_string());
  layer.weights_ = tensor::Matrix(layer.in_, layer.out_);
  layer.weights_.storage() = reader.read_f64_vector();
  if (layer.weights_.storage().size() != layer.in_ * layer.out_) {
    throw std::runtime_error("Dense::load: weight size mismatch");
  }
  layer.bias_ = reader.read_f64_vector();
  if (layer.bias_.size() != layer.out_) {
    throw std::runtime_error("Dense::load: bias size mismatch");
  }
  layer.weight_grad_ = tensor::Matrix(layer.in_, layer.out_);
  layer.bias_grad_.assign(layer.out_, 0.0);
  return layer;
}

}  // namespace prodigy::nn
