#include "nn/dense.hpp"

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace prodigy::nn {

namespace {

tensor::kernels::FusedAct fused(Activation act) {
  switch (act) {
    case Activation::Linear:
      return tensor::kernels::FusedAct::None;
    case Activation::ReLU:
      return tensor::kernels::FusedAct::ReLU;
    case Activation::Tanh:
      return tensor::kernels::FusedAct::Tanh;
    case Activation::Sigmoid:
      return tensor::kernels::FusedAct::Sigmoid;
  }
  return tensor::kernels::FusedAct::None;
}

}  // namespace

Dense::Dense(std::size_t in_features, std::size_t out_features, Activation act,
             util::Rng& rng)
    : in_(in_features),
      out_(out_features),
      act_(act),
      weights_(in_features, out_features),
      bias_(out_features, 0.0),
      weight_grad_(in_features, out_features),
      bias_grad_(out_features, 0.0) {
  const double fan_in = static_cast<double>(in_features);
  const double fan_out = static_cast<double>(out_features);
  // He initialization suits ReLU; Xavier/Glorot suits saturating/linear units.
  const double scale = act == Activation::ReLU
                           ? std::sqrt(2.0 / fan_in)
                           : std::sqrt(2.0 / (fan_in + fan_out));
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_.data()[i] = rng.gaussian(0.0, scale);
  }
}

const tensor::Matrix& Dense::forward(const tensor::Matrix& input) {
  cached_input_ = {input.data(), input.rows(), input.cols()};
  tensor::kernels::dense_forward(input, weights_, bias_, fused(act_),
                                 cached_output_);
  return cached_output_;
}

tensor::Matrix Dense::forward_inference(const tensor::Matrix& input) const {
  tensor::Matrix out;
  forward_inference_into(input, out);
  return out;
}

void Dense::forward_inference_into(const tensor::Matrix& input,
                                   tensor::Matrix& out) const {
  tensor::kernels::dense_forward(input, weights_, bias_, fused(act_), out);
}

tensor::Matrix Dense::backward(const tensor::Matrix& grad_output) {
  tensor::Matrix grad_input;
  backward_into(grad_output, grad_input);
  return grad_input;
}

void Dense::backward_into(const tensor::Matrix& grad_output,
                          tensor::Matrix& grad_input) {
  grad_pre_.resize_for_overwrite(grad_output.rows(), grad_output.cols());
  std::copy(grad_output.data(), grad_output.data() + grad_output.size(),
            grad_pre_.data());
  apply_activation_gradient(act_, cached_output_, grad_pre_);

  // Accumulate parameter gradients in place: weight_grad_ += X^T * grad_pre
  // through the TN kernel's accumulate epilogue (no temporary), bias_grad_
  // through the order-preserving column-sum helper.  The cached input is a
  // borrowed view, so the raw-pointer kernel entry point is used directly.
  tensor::kernels::Epilogue accumulate;
  accumulate.accumulate = true;
  tensor::kernels::gemm(tensor::kernels::Layout::TN, in_, out_,
                        cached_input_.rows, cached_input_.data,
                        cached_input_.cols, grad_pre_.data(), grad_pre_.cols(),
                        weight_grad_.data(), weight_grad_.cols(), accumulate);
  tensor::kernels::column_sums_accumulate(grad_pre_, bias_grad_);

  tensor::matmul_transposed_b_into(grad_pre_, weights_, grad_input);
}

void Dense::zero_gradients() noexcept {
  std::fill(weight_grad_.storage().begin(), weight_grad_.storage().end(), 0.0);
  std::fill(bias_grad_.begin(), bias_grad_.end(), 0.0);
}

void Dense::save(util::BinaryWriter& writer) const {
  writer.write_u64(in_);
  writer.write_u64(out_);
  writer.write_string(to_string(act_));
  writer.write_f64_vector(weights_.storage());
  writer.write_f64_vector(bias_);
}

Dense Dense::load(util::BinaryReader& reader) {
  Dense layer;
  layer.in_ = reader.read_u64();
  layer.out_ = reader.read_u64();
  if (layer.in_ == 0 || layer.out_ == 0) {
    throw std::runtime_error("Dense::load: zero-sized layer (" +
                             std::to_string(layer.in_) + " x " +
                             std::to_string(layer.out_) +
                             "); stream is corrupt");
  }
  layer.act_ = activation_from_string(reader.read_string());
  layer.weights_ = tensor::Matrix(layer.in_, layer.out_);
  layer.weights_.storage() = reader.read_f64_vector();
  if (layer.weights_.storage().size() != layer.in_ * layer.out_) {
    throw std::runtime_error("Dense::load: weight size mismatch");
  }
  layer.bias_ = reader.read_f64_vector();
  if (layer.bias_.size() != layer.out_) {
    throw std::runtime_error("Dense::load: bias size mismatch");
  }
  layer.weight_grad_ = tensor::Matrix(layer.in_, layer.out_);
  layer.bias_grad_.assign(layer.out_, 0.0);
  return layer;
}

}  // namespace prodigy::nn
