// Sequential multi-layer perceptron: a stack of Dense layers with shared
// forward/backward plumbing.  The VAE encoder/decoder and the USAD
// autoencoders are built from this.
#pragma once

#include "nn/dense.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

#include <vector>

namespace prodigy::nn {

struct LayerSpec {
  std::size_t units = 0;
  Activation activation = Activation::ReLU;
};

class Mlp {
 public:
  Mlp() = default;

  /// Builds input_dim -> spec[0] -> spec[1] -> ... with fresh weights.
  Mlp(std::size_t input_dim, const std::vector<LayerSpec>& specs, util::Rng& rng);

  std::size_t input_dim() const noexcept { return input_dim_; }
  std::size_t output_dim() const noexcept {
    return layers_.empty() ? input_dim_ : layers_.back().out_features();
  }
  std::size_t layer_count() const noexcept { return layers_.size(); }
  Dense& layer(std::size_t i) { return layers_.at(i); }
  const Dense& layer(std::size_t i) const { return layers_.at(i); }

  /// Training forward pass; caches per-layer state for backward().  Returns
  /// a reference to the last layer's owned output (or to `input` itself for
  /// an empty stack); it stays valid until the next forward() and `input`
  /// must outlive the matching backward().
  const tensor::Matrix& forward(const tensor::Matrix& input);

  /// Inference forward pass without caching (const, thread-safe).
  tensor::Matrix forward_inference(const tensor::Matrix& input) const;

  /// Same, writing into a caller-owned buffer (capacity-reused, so repeated
  /// calls are allocation-free after warmup).  `out` must not alias `input`
  /// (throws std::invalid_argument — the kernels stream into `out` while the
  /// last layer still reads its input); use InferencePlan for in-place runs.
  void forward_inference_into(const tensor::Matrix& input,
                              tensor::Matrix& out) const;

  /// Backpropagates dL/d(output); accumulates layer gradients and returns
  /// dL/d(input).
  tensor::Matrix backward(const tensor::Matrix& grad_output);

  /// Same, writing dL/d(input) into a caller-owned buffer that must not
  /// alias `grad_output`.
  void backward_into(const tensor::Matrix& grad_output,
                     tensor::Matrix& grad_input);

  void zero_gradients() noexcept;

  /// Registers every layer's parameters with the optimizer.
  void register_with(Optimizer& optimizer);

  std::size_t parameter_count() const noexcept;

  void save(util::BinaryWriter& writer) const;
  static Mlp load(util::BinaryReader& reader);

 private:
  std::size_t input_dim_ = 0;
  std::vector<Dense> layers_;
  tensor::Matrix grad_scratch_[2];  // backward ping-pong workspace
};

}  // namespace prodigy::nn
