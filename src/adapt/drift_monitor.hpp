// Reconstruction-error drift detection via the Page–Hinkley test: the
// monitor watches the stream of per-window scores, normalizes each by the
// reference mean it learned during a warm-up window, and flags when the
// cumulative positive deviation of the normalized score from its running
// mean exceeds lambda.  Only upward shifts flag — a model whose errors are
// *growing* is going stale; shrinking errors never hurt detection.
//
// Normalizing by the warm-up mean makes delta/lambda dimensionless (fractions
// of the healthy-era error level), so one configuration works across models
// whose raw error magnitudes differ by orders of magnitude.
//
// Not internally locked: the owner (AdaptiveModelManager) serializes
// observe()/reset() under its own state mutex.
#pragma once

#include <cstdint>
#include <string>

namespace prodigy::util {
class Counter;
class Gauge;
}  // namespace prodigy::util

namespace prodigy::adapt {

struct DriftMonitorConfig {
  /// Scores accumulated before the test arms; they define the reference
  /// (healthy-era) mean the later stream is normalized by.
  std::size_t warmup_observations = 64;
  /// Page–Hinkley magnitude tolerance, in fractions of the reference mean:
  /// mean shifts smaller than this never accumulate.
  double delta = 0.02;
  /// Detection threshold on the cumulative statistic, in the same
  /// (dimensionless) units.  Smaller = more sensitive.
  double lambda = 8.0;
};

class DriftMonitor {
 public:
  /// `metrics_scope` non-empty (e.g. "shard3") scopes the exported metric
  /// names (prodigy_adapt_<scope>_drift_statistic, ..._drifts_total).
  explicit DriftMonitor(DriftMonitorConfig config = {},
                        const std::string& metrics_scope = "");

  /// Feeds one score; returns true when drift is flagged.  A flag resets
  /// the test (warm-up restarts), so consecutive detections are genuinely
  /// independent episodes.  Non-finite scores are ignored.
  bool observe(double score);

  /// Back to cold warm-up (call after a model swap: the new model defines a
  /// new reference error level).  Lifetime counters persist.
  void reset();

  /// Current Page–Hinkley statistic (0 while warming up).
  double statistic() const noexcept { return statistic_; }
  /// The statistic at the moment of the most recent detection (observe()
  /// resets the live statistic when it flags).
  double last_drift_statistic() const noexcept { return last_drift_statistic_; }
  bool armed() const noexcept { return armed_; }
  std::uint64_t observations() const noexcept { return observations_; }
  std::uint64_t drifts_detected() const noexcept { return drifts_; }

 private:
  DriftMonitorConfig config_;

  // Warm-up accumulation, then the PH state over normalized scores.
  bool armed_ = false;
  std::size_t warmup_count_ = 0;
  double warmup_sum_ = 0.0;
  double reference_mean_ = 1.0;  // normalization scale (>= tiny epsilon)
  std::uint64_t post_warmup_ = 0;
  double running_mean_ = 0.0;  // of normalized scores since arming
  double cumulative_ = 0.0;    // m_t = sum(z_i - mean_i - delta)
  double minimum_ = 0.0;       // min over t of m_t
  double statistic_ = 0.0;     // m_t - minimum_

  double last_drift_statistic_ = 0.0;
  std::uint64_t observations_ = 0;
  std::uint64_t drifts_ = 0;

  util::Gauge* statistic_gauge_ = nullptr;    // registry-owned
  util::Counter* drifts_counter_ = nullptr;   // registry-owned
};

}  // namespace prodigy::adapt
