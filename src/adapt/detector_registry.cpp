#include "adapt/detector_registry.hpp"

#include "baselines/gmm.hpp"
#include "baselines/heuristics.hpp"
#include "baselines/isolation_forest.hpp"
#include "baselines/kmeans.hpp"
#include "baselines/lof.hpp"
#include "baselines/pca.hpp"
#include "baselines/usad.hpp"
#include "core/prodigy_detector.hpp"

#include <stdexcept>
#include <utility>

namespace prodigy::adapt {

namespace {

core::ProdigyConfig prodigy_config(const DetectorOptions& options) {
  core::ProdigyConfig config;
  config.vae.encoder_hidden = options.vae_hidden;
  config.vae.latent_dim = options.vae_latent;
  config.train.epochs = options.epochs;
  config.train.batch_size = options.batch_size;
  config.train.learning_rate = options.learning_rate;
  config.train.validation_split = 0.0;
  config.train.early_stopping_patience = 0;
  return config;
}

baselines::UsadConfig usad_config(const DetectorOptions& options) {
  baselines::UsadConfig config;
  config.hidden = 96;  // paper Table 3: 200
  config.latent = 24;
  config.train.epochs = options.usad_epochs;
  config.train.batch_size = options.batch_size;
  config.train.learning_rate = options.learning_rate;
  return config;
}

DetectorRegistry built_in_registry() {
  DetectorRegistry registry;
  registry.register_detector("prodigy", "Prodigy", [](const DetectorOptions& o) {
    return std::make_unique<core::ProdigyDetector>(prodigy_config(o));
  });
  registry.register_detector("usad", "USAD", [](const DetectorOptions& o) {
    return std::make_unique<baselines::Usad>(usad_config(o));
  });
  registry.register_detector(
      "majority", "Majority Label Prediction", [](const DetectorOptions&) {
        return std::make_unique<baselines::MajorityLabelPrediction>();
      });
  registry.register_detector(
      "random", "Random Prediction", [](const DetectorOptions& o) {
        return std::make_unique<baselines::RandomPrediction>(o.seed);
      });
  registry.register_detector(
      "isolation-forest", "Isolation Forest", [](const DetectorOptions&) {
        return std::make_unique<baselines::IsolationForest>();
      });
  registry.register_detector(
      "lof", "Local Outlier Factor", [](const DetectorOptions&) {
        return std::make_unique<baselines::LocalOutlierFactor>();
      });
  registry.register_detector("kmeans", "K-means", [](const DetectorOptions&) {
    return std::make_unique<baselines::KMeansDetector>();
  });
  registry.register_detector(
      "gmm", "Gaussian Mixture", [](const DetectorOptions&) {
        return std::make_unique<baselines::GmmDetector>();
      });
  registry.register_detector(
      "pca", "PCA Reconstruction", [](const DetectorOptions&) {
        return std::make_unique<baselines::PcaDetector>();
      });
  return registry;
}

}  // namespace

DetectorRegistry& DetectorRegistry::global() {
  static DetectorRegistry registry = built_in_registry();
  return registry;
}

void DetectorRegistry::register_detector(std::string name,
                                         std::string display_name,
                                         Factory factory) {
  if (name.empty() || !factory) {
    throw std::invalid_argument("DetectorRegistry: empty name or factory");
  }
  const auto [it, inserted] = entries_.try_emplace(std::move(name));
  it->second.display_name = std::move(display_name);
  it->second.factory = std::move(factory);
  if (inserted) order_.push_back(it->first);
}

const DetectorRegistry::Entry& DetectorRegistry::entry(
    const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& n : order_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::out_of_range("DetectorRegistry: unknown detector '" + name +
                            "' (known: " + known + ")");
  }
  return it->second;
}

std::unique_ptr<core::Detector> DetectorRegistry::make(
    const std::string& name, const DetectorOptions& options) const {
  return entry(name).factory(options);
}

std::function<std::unique_ptr<core::Detector>()> DetectorRegistry::factory(
    const std::string& name, const DetectorOptions& options) const {
  Factory bound = entry(name).factory;  // resolve (and throw) eagerly; copy
  return [bound = std::move(bound), options] { return bound(options); };
}

bool DetectorRegistry::contains(const std::string& name) const {
  return entries_.contains(name);
}

const std::string& DetectorRegistry::display_name(
    const std::string& name) const {
  return entry(name).display_name;
}

std::vector<std::string> DetectorRegistry::names() const { return order_; }

}  // namespace prodigy::adapt
