#include "adapt/drift_monitor.hpp"

#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prodigy::adapt {

DriftMonitor::DriftMonitor(DriftMonitorConfig config,
                           const std::string& metrics_scope)
    : config_(config) {
  if (config_.warmup_observations == 0) {
    throw std::invalid_argument(
        "DriftMonitor: warmup_observations must be > 0");
  }
  if (config_.lambda <= 0.0) {
    throw std::invalid_argument("DriftMonitor: lambda must be > 0");
  }
  auto& registry = util::MetricsRegistry::global();
  const std::string prefix =
      metrics_scope.empty() ? std::string("prodigy_adapt")
                            : "prodigy_adapt_" + metrics_scope;
  statistic_gauge_ = &registry.gauge(prefix + "_drift_statistic");
  drifts_counter_ = &registry.counter(prefix + "_drifts_total");
}

bool DriftMonitor::observe(double score) {
  if (!std::isfinite(score)) return false;
  ++observations_;

  if (!armed_) {
    warmup_sum_ += score;
    if (++warmup_count_ >= config_.warmup_observations) {
      reference_mean_ = std::max(
          warmup_sum_ / static_cast<double>(warmup_count_), 1e-12);
      armed_ = true;
      // The warm-up itself contributes one aggregate observation at the
      // reference level, so the running mean starts at 1.0 (normalized).
      running_mean_ = 1.0;
      post_warmup_ = 1;
    }
    return false;
  }

  const double z = score / reference_mean_;
  ++post_warmup_;
  running_mean_ += (z - running_mean_) / static_cast<double>(post_warmup_);
  cumulative_ += z - running_mean_ - config_.delta;
  minimum_ = std::min(minimum_, cumulative_);
  statistic_ = cumulative_ - minimum_;
  statistic_gauge_->set(statistic_);

  if (statistic_ > config_.lambda) {
    ++drifts_;
    drifts_counter_->increment();
    last_drift_statistic_ = statistic_;
    reset();
    return true;
  }
  return false;
}

void DriftMonitor::reset() {
  armed_ = false;
  warmup_count_ = 0;
  warmup_sum_ = 0.0;
  reference_mean_ = 1.0;
  post_warmup_ = 0;
  running_mean_ = 0.0;
  cumulative_ = 0.0;
  minimum_ = 0.0;
  statistic_ = 0.0;
  statistic_gauge_->set(0.0);
}

}  // namespace prodigy::adapt
