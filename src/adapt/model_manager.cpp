#include "adapt/model_manager.hpp"

#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace prodigy::adapt {

AdaptiveModelManager::AdaptiveModelManager(core::ModelBundle initial,
                                           AdaptationConfig config,
                                           stream::EventBus* bus,
                                           std::string scope)
    : config_(config), bus_(bus), scope_(std::move(scope)),
      monitor_(config.drift, scope_), reservoir_(config.reservoir) {
  if (!initial.detector.fitted()) {
    throw std::invalid_argument(
        "AdaptiveModelManager: initial bundle must be fitted");
  }
  active_.bundle = std::make_shared<const core::ModelBundle>(std::move(initial));
  active_.number = 1;

  auto& registry = util::MetricsRegistry::global();
  const std::string prefix = scope_.empty()
                                 ? std::string("prodigy_adapt")
                                 : "prodigy_adapt_" + scope_;
  generation_gauge_ = &registry.gauge(prefix + "_model_generation");
  refits_counter_ = &registry.counter(prefix + "_refits_total");
  swaps_counter_ = &registry.counter(prefix + "_swaps_total");
  refusals_counter_ = &registry.counter(prefix + "_swap_refusals_total");
  refit_seconds_ = &registry.histogram(prefix + "_refit_seconds");
  generation_gauge_->set(1.0);

  if (!config_.synchronous) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

AdaptiveModelManager::~AdaptiveModelManager() { stop(); }

void AdaptiveModelManager::stop() {
  {
    std::lock_guard lock(worker_mutex_);
    worker_exit_ = true;
  }
  worker_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

AdaptiveModelManager::Lease AdaptiveModelManager::acquire() const {
  std::lock_guard lock(slot_mutex_);
  return {active_.bundle, active_.number};
}

std::uint64_t AdaptiveModelManager::generation() const {
  std::lock_guard lock(slot_mutex_);
  return active_.number;
}

void AdaptiveModelManager::publish(stream::DriftEvent::Kind kind,
                                   std::uint64_t generation, double statistic,
                                   double threshold) {
  if (bus_ == nullptr) return;
  stream::DriftEvent event;
  event.kind = kind;
  event.scope = scope_;
  event.generation = generation;
  event.statistic = statistic;
  event.threshold = threshold;
  event.reservoir_samples = reservoir_.size();
  bus_->publish(event);
}

void AdaptiveModelManager::on_verdict(const stream::VerdictEvent& event,
                                      std::span<const double> model_input) {
  // Verdict-gated reservoir: only windows the active model judged healthy
  // may become refit material (Borghesi-style self-supervision; a window
  // scored above threshold would poison the "healthy" pool).
  if (!event.anomalous) reservoir_.offer(model_input);

  bool flagged = false;
  double statistic = 0.0;
  bool trigger = false;
  {
    std::lock_guard lock(state_mutex_);
    flagged = monitor_.observe(event.score);
    if (flagged) {
      statistic = monitor_.last_drift_statistic();
      if (!refit_pending_ && reservoir_.size() >= config_.min_refit_samples) {
        refit_pending_ = true;
        trigger = true;
      }
    }
  }
  if (!flagged) return;

  {
    std::lock_guard lock(counter_mutex_);
    ++drifts_;
  }
  const Lease lease = acquire();
  publish(stream::DriftEvent::Kind::DriftDetected, lease.generation, statistic,
          lease.bundle->detector.threshold());
  if (!trigger) {
    util::log_info("AdaptiveModelManager", scope_.empty() ? "" : "(" + scope_ + ")",
                   ": drift flagged (statistic ", statistic,
                   ") but no refit scheduled (pending or reservoir below ",
                   config_.min_refit_samples, ")");
    return;
  }
  if (config_.synchronous) {
    run_refit_cycle();
  } else {
    {
      std::lock_guard lock(worker_mutex_);
      worker_wake_ = true;
    }
    worker_cv_.notify_one();
  }
}

void AdaptiveModelManager::worker_loop() {
  for (;;) {
    {
      std::unique_lock lock(worker_mutex_);
      worker_cv_.wait(lock, [&] { return worker_wake_ || worker_exit_; });
      if (worker_exit_) return;
      worker_wake_ = false;
    }
    run_refit_cycle();
  }
}

AdaptiveModelManager::RefitOutcome AdaptiveModelManager::refit_now() {
  return run_refit_cycle();
}

AdaptiveModelManager::RefitOutcome AdaptiveModelManager::run_refit_cycle() {
  util::Timer timer;
  RefitOutcome outcome = RefitOutcome::InsufficientSamples;
  const HealthyReservoir::Snapshot snap = reservoir_.snapshot();
  if (snap.train.rows() >= config_.min_refit_samples &&
      snap.holdout.rows() >= config_.min_holdout_samples) {
    {
      std::lock_guard lock(counter_mutex_);
      ++refits_;
    }
    refits_counter_->increment();
    const Lease incumbent = acquire();

    // Continual-learning refit: incumbent architecture, reduced epoch
    // budget, no validation split (the reservoir holdout IS the validation).
    core::ProdigyConfig refit_config = incumbent.bundle->detector.config();
    refit_config.train.epochs = config_.refit_epochs;
    refit_config.train.validation_split = 0.0;
    refit_config.train.early_stopping_patience = 0;
    core::ProdigyDetector candidate(refit_config);

    try {
      candidate.fit_healthy(snap.train);

      // Refuse-to-swap validation on the held-out slice (see file comment).
      const auto candidate_scores = candidate.score(snap.holdout);
      const auto incumbent_scores = incumbent.bundle->detector.score(snap.holdout);
      double candidate_sum = 0.0, incumbent_sum = 0.0;
      std::size_t false_alarms = 0;
      bool finite = true;
      for (std::size_t i = 0; i < candidate_scores.size(); ++i) {
        finite = finite && std::isfinite(candidate_scores[i]);
        candidate_sum += candidate_scores[i];
        incumbent_sum += incumbent_scores[i];
        if (candidate_scores[i] > candidate.threshold()) ++false_alarms;
      }
      const auto n = static_cast<double>(candidate_scores.size());
      const double candidate_mean = candidate_sum / n;
      const double incumbent_mean = incumbent_sum / n;
      const double false_alarm_rate = static_cast<double>(false_alarms) / n;

      const bool accept =
          finite &&
          candidate_mean <= config_.validation_margin * incumbent_mean &&
          false_alarm_rate <= config_.max_false_alarm_rate;
      if (accept) {
        core::ModelBundle next;
        next.detector = std::move(candidate);
        next.scaler = incumbent.bundle->scaler;
        next.metadata = incumbent.bundle->metadata;
        const std::uint64_t generation = swap_model(std::move(next));
        util::log_info("AdaptiveModelManager",
                       scope_.empty() ? "" : "(" + scope_ + ")",
                       ": refit on ", snap.train.rows(),
                       " reservoir rows promoted to generation ", generation,
                       " (holdout mean ", candidate_mean, " vs ",
                       incumbent_mean, ", false-alarm rate ", false_alarm_rate,
                       ")");
        outcome = RefitOutcome::Swapped;
      } else {
        {
          std::lock_guard lock(counter_mutex_);
          ++refusals_;
        }
        refusals_counter_->increment();
        publish(stream::DriftEvent::Kind::SwapRefused, incumbent.generation,
                0.0, candidate.threshold());
        util::log_warn("AdaptiveModelManager",
                       scope_.empty() ? "" : "(" + scope_ + ")",
                       ": candidate refused (holdout mean ", candidate_mean,
                       " vs incumbent ", incumbent_mean, ", false-alarm rate ",
                       false_alarm_rate, finite ? "" : ", non-finite scores",
                       "); incumbent generation ", incumbent.generation,
                       " keeps serving");
        outcome = RefitOutcome::RefusedValidation;
      }
    } catch (const std::exception& e) {
      // A failed refit (e.g. degenerate reservoir) must never take down the
      // scoring path; the incumbent keeps serving.
      {
        std::lock_guard lock(counter_mutex_);
        ++refusals_;
      }
      refusals_counter_->increment();
      publish(stream::DriftEvent::Kind::SwapRefused, incumbent.generation, 0.0,
              incumbent.bundle->detector.threshold());
      util::log_warn("AdaptiveModelManager: refit failed: ", e.what());
      outcome = RefitOutcome::RefusedValidation;
    }
  }
  {
    std::lock_guard lock(state_mutex_);
    refit_pending_ = false;
  }
  refit_seconds_->observe(timer.elapsed_seconds());
  return outcome;
}

std::uint64_t AdaptiveModelManager::swap_model(core::ModelBundle next) {
  if (!next.detector.fitted()) {
    throw std::invalid_argument("swap_model: bundle must be fitted");
  }
  const double threshold = next.detector.threshold();
  auto bundle = std::make_shared<const core::ModelBundle>(std::move(next));
  std::uint64_t generation = 0;
  {
    std::lock_guard lock(slot_mutex_);
    active_.bundle = std::move(bundle);
    generation = ++active_.number;
  }
  {
    // The new model defines a new reference error level; the drift test must
    // re-learn it rather than flag the swap itself as drift.
    std::lock_guard lock(state_mutex_);
    monitor_.reset();
  }
  {
    std::lock_guard lock(counter_mutex_);
    ++swaps_;
  }
  swaps_counter_->increment();
  generation_gauge_->set(static_cast<double>(generation));
  publish(stream::DriftEvent::Kind::ModelSwapped, generation, 0.0, threshold);
  return generation;
}

stream::AdaptationStats AdaptiveModelManager::adaptation_stats() const {
  stream::AdaptationStats stats;
  stats.generation = generation();
  {
    std::lock_guard lock(counter_mutex_);
    stats.drifts_detected = drifts_;
    stats.refits_started = refits_;
    stats.swaps_completed = swaps_;
    stats.swaps_refused = refusals_;
  }
  stats.reservoir_samples = reservoir_.size();
  stats.reservoir_offered = reservoir_.offered();
  return stats;
}

}  // namespace prodigy::adapt
