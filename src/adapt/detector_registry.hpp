// Anomalib-style detector registry (arXiv:2202.08341): every detector in the
// zoo — the paper's Prodigy VAE, the Figure-5 baselines, and the extended
// related-work models — sits behind one string -> factory table over
// core::Detector.  Tools, benches, and the adaptive path all construct
// models through here, so a detector's name, display label, and budget
// knobs have a single source of truth.
//
// Registration is open: call register_detector() to add project-local
// detectors (tests do).  The built-in roster self-registers on first use of
// global(), so linking the library is enough.
#pragma once

#include "core/detector_iface.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace prodigy::adapt {

/// Budget knobs shared by every factory.  A detector uses what applies to it
/// (e.g. the tree/neighbor baselines ignore the epoch counts).
struct DetectorOptions {
  std::size_t epochs = 300;        // VAE training epochs
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;
  std::size_t usad_epochs = 100;
  std::vector<std::size_t> vae_hidden = {64, 24};
  std::size_t vae_latent = 8;
  std::uint64_t seed = 99;  // seeded baselines (random prediction)
};

class DetectorRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<core::Detector>(const DetectorOptions&)>;

  /// The process-wide registry, with the built-in zoo pre-registered:
  /// prodigy, usad, majority, random, isolation-forest, lof, kmeans, gmm,
  /// pca.  Thread-safe to read after static initialization; registration is
  /// expected at startup (not concurrently with make()).
  static DetectorRegistry& global();

  /// Adds (or replaces) a detector.  `name` is the stable lookup key
  /// (kebab-case); `display_name` is the human label benches print.
  void register_detector(std::string name, std::string display_name,
                         Factory factory);

  /// Constructs a detector by name.  Throws std::out_of_range with the list
  /// of known names for an unknown one.
  std::unique_ptr<core::Detector> make(const std::string& name,
                                       const DetectorOptions& options = {}) const;

  /// Binds name + options into a reusable nullary factory (the shape
  /// eval::DetectorFactory and the bench roster want).
  std::function<std::unique_ptr<core::Detector>()> factory(
      const std::string& name, const DetectorOptions& options = {}) const;

  bool contains(const std::string& name) const;
  const std::string& display_name(const std::string& name) const;
  /// Registered names in registration order (built-ins first).
  std::vector<std::string> names() const;

 private:
  struct Entry {
    std::string display_name;
    Factory factory;
  };

  const Entry& entry(const std::string& name) const;

  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

}  // namespace prodigy::adapt
