// Bounded-memory healthy-sample reservoir for online refits: verdict-gated
// feature rows (model-input space, post column-selection + scaling) stream
// in, and two independent Algorithm-R reservoirs — a refit pool and a
// held-out validation slice — keep a uniform sample of everything ever
// offered.  Routing between the two is by arrival ordinal (every
// holdout_stride-th admitted row validates, the rest train), so a candidate
// model is never validated on rows it trained on.
//
// Determinism: for a fixed offer order and seed, the reservoir contents —
// and therefore every refit trained from them — are bit-identical across
// runs.  All methods are thread-safe (internally locked); the scorer's
// per-node feedback calls may arrive from many pool threads.
#pragma once

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace prodigy::adapt {

struct HealthyReservoirConfig {
  /// Refit-pool slots (rows the next refit trains on).
  std::size_t capacity = 512;
  /// Held-out slots (rows candidate validation scores); sized independently
  /// so a small holdout never starves the refit pool.
  std::size_t holdout_capacity = 128;
  /// Every holdout_stride-th offered row routes to the holdout reservoir;
  /// 0 disables the holdout entirely (snapshot().holdout stays empty).
  std::size_t holdout_stride = 4;
  std::uint64_t seed = 17;
};

class HealthyReservoir {
 public:
  explicit HealthyReservoir(HealthyReservoirConfig config = {});

  /// Offers one healthy feature row.  The first offer fixes the row width;
  /// rows of any other width are rejected (counted, not stored).
  void offer(std::span<const double> features);

  /// A consistent copy of both slices, rows in slot order.
  struct Snapshot {
    tensor::Matrix train;    // (filled train slots x width)
    tensor::Matrix holdout;  // (filled holdout slots x width)
    std::uint64_t offered = 0;
  };
  Snapshot snapshot() const;

  std::size_t size() const;          // filled refit-pool slots
  std::size_t holdout_size() const;  // filled holdout slots
  std::uint64_t offered() const;     // rows ever offered (incl. mismatched)
  std::uint64_t mismatched() const;  // rows rejected for width mismatch

  /// Drops every held row (width stays pinned); offered/mismatched persist.
  void clear();

 private:
  // One Algorithm-R reservoir: uniform over its `seen` stream.
  struct Slice {
    std::vector<std::vector<double>> slots;
    std::uint64_t seen = 0;
  };

  void admit(Slice& slice, std::size_t capacity,
             std::span<const double> features);

  HealthyReservoirConfig config_;

  mutable std::mutex mutex_;
  util::Rng rng_;
  Slice train_;
  Slice holdout_;
  std::size_t width_ = 0;  // fixed by the first offered row
  std::uint64_t offered_ = 0;
  std::uint64_t mismatched_ = 0;
};

}  // namespace prodigy::adapt
