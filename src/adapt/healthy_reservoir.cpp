#include "adapt/healthy_reservoir.hpp"

#include <stdexcept>

namespace prodigy::adapt {

HealthyReservoir::HealthyReservoir(HealthyReservoirConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.capacity == 0) {
    throw std::invalid_argument("HealthyReservoir: capacity must be > 0");
  }
  if (config_.holdout_stride == 1) {
    // Stride 1 would route EVERY row to the holdout and none to the refit
    // pool; that is never what a caller wants.
    throw std::invalid_argument(
        "HealthyReservoir: holdout_stride must be 0 (disabled) or >= 2");
  }
  train_.slots.reserve(config_.capacity);
  holdout_.slots.reserve(config_.holdout_capacity);
}

void HealthyReservoir::admit(Slice& slice, std::size_t capacity,
                             std::span<const double> features) {
  ++slice.seen;
  if (slice.slots.size() < capacity) {
    slice.slots.emplace_back(features.begin(), features.end());
    return;
  }
  // Algorithm R: row #seen replaces a uniform slot with probability
  // capacity/seen, keeping every slot a uniform draw from the stream.
  const std::uint64_t j = rng_.uniform_index(slice.seen);
  if (j < capacity) {
    slice.slots[static_cast<std::size_t>(j)].assign(features.begin(),
                                                    features.end());
  }
}

void HealthyReservoir::offer(std::span<const double> features) {
  if (features.empty()) return;
  std::lock_guard lock(mutex_);
  ++offered_;
  if (width_ == 0) width_ = features.size();
  if (features.size() != width_) {
    ++mismatched_;
    return;
  }
  const bool to_holdout =
      config_.holdout_stride != 0 && config_.holdout_capacity != 0 &&
      (offered_ - mismatched_) % config_.holdout_stride == 0;
  if (to_holdout) {
    admit(holdout_, config_.holdout_capacity, features);
  } else {
    admit(train_, config_.capacity, features);
  }
}

HealthyReservoir::Snapshot HealthyReservoir::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  snap.offered = offered_;
  snap.train = tensor::Matrix(train_.slots.size(), width_);
  for (std::size_t r = 0; r < train_.slots.size(); ++r) {
    snap.train.set_row(r, train_.slots[r]);
  }
  snap.holdout = tensor::Matrix(holdout_.slots.size(), width_);
  for (std::size_t r = 0; r < holdout_.slots.size(); ++r) {
    snap.holdout.set_row(r, holdout_.slots[r]);
  }
  return snap;
}

std::size_t HealthyReservoir::size() const {
  std::lock_guard lock(mutex_);
  return train_.slots.size();
}

std::size_t HealthyReservoir::holdout_size() const {
  std::lock_guard lock(mutex_);
  return holdout_.slots.size();
}

std::uint64_t HealthyReservoir::offered() const {
  std::lock_guard lock(mutex_);
  return offered_;
}

std::uint64_t HealthyReservoir::mismatched() const {
  std::lock_guard lock(mutex_);
  return mismatched_;
}

void HealthyReservoir::clear() {
  std::lock_guard lock(mutex_);
  train_.slots.clear();
  train_.seen = 0;
  holdout_.slots.clear();
  holdout_.seen = 0;
}

}  // namespace prodigy::adapt
