// Closes the loop from scoring back to training (ROADMAP "online continual
// learning", after Borghesi et al., arXiv:1902.08447): an
// AdaptiveModelManager is the stream::ModelProvider behind an OnlineScorer.
// Every published verdict feeds (a) the DriftMonitor with its score and
// (b) the HealthyReservoir with its model-input feature row when the window
// was judged healthy.  When drift is flagged, a refit cycle — on a
// background worker thread, or inline when `synchronous` — retrains the VAE
// on the reservoir's refit pool with the incumbent's architecture, validates
// the candidate on the held-out reservoir slice, and either hot-swaps it in
// (generation bump, atomic pointer swap, drift-monitor reset) or refuses it.
//
// Validation gate (the live stream carries no labels, so the tuned-F1
// comparison of bench/inference_latency --f1-delta is rephrased on the
// error profile the F1 sweep derives from):
//   1. candidate mean holdout error <= validation_margin x incumbent's, and
//   2. candidate false-alarm rate on the held-out HEALTHY windows
//      <= max_false_alarm_rate  (1 - the paper's healthy-percentile
//      threshold contract, with slack),
//   and every candidate holdout score finite.
// A refused candidate leaves the incumbent serving and publishes a
// SwapRefused drift event; ground-truth F1 comparison lives in
// bench/drift_adaptation.cpp where labels exist.
//
// The scaler and deployment metadata are frozen across refits: the reservoir
// stores rows in model-input space, so only the VAE + threshold retrain.
#pragma once

#include "adapt/drift_monitor.hpp"
#include "adapt/healthy_reservoir.hpp"
#include "stream/model_provider.hpp"

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace prodigy::util {
class Counter;
class Gauge;
class Histogram;
}  // namespace prodigy::util

namespace prodigy::adapt {

struct AdaptationConfig {
  HealthyReservoirConfig reservoir;
  DriftMonitorConfig drift;
  /// Refit-pool rows required before a flagged drift triggers a refit (a
  /// drift with a starved reservoir is recorded but not acted on).
  std::size_t min_refit_samples = 64;
  /// Holdout rows required to validate a candidate (refuse otherwise: an
  /// unvalidatable candidate must never replace a serving model).
  std::size_t min_holdout_samples = 8;
  /// Epochs per refit (continual-learning budget, much smaller than the
  /// offline fit; the incumbent's architecture is reused as-is).
  std::size_t refit_epochs = 60;
  /// Gate 1 margin: candidate mean holdout error may exceed the incumbent's
  /// by at most this factor.
  double validation_margin = 1.0;
  /// Gate 2 bound: fraction of held-out healthy windows the candidate may
  /// flag anomalous.
  double max_false_alarm_rate = 0.10;
  /// Run refit cycles inline inside on_verdict instead of on the worker
  /// thread: deterministic swap points for tests and paced replays.
  bool synchronous = false;
};

class AdaptiveModelManager final : public stream::ModelProvider {
 public:
  /// `bus` (optional) receives DriftEvents and must outlive the manager;
  /// `scope` tags those events and the exported metrics ("" or "shard<k>").
  explicit AdaptiveModelManager(core::ModelBundle initial,
                                AdaptationConfig config = {},
                                stream::EventBus* bus = nullptr,
                                std::string scope = "");
  ~AdaptiveModelManager() override;

  AdaptiveModelManager(const AdaptiveModelManager&) = delete;
  AdaptiveModelManager& operator=(const AdaptiveModelManager&) = delete;

  // stream::ModelProvider ----------------------------------------------
  Lease acquire() const override;
  void on_verdict(const stream::VerdictEvent& event,
                  std::span<const double> model_input) override;
  stream::AdaptationStats adaptation_stats() const override;

  // Direct control (tools, tests) --------------------------------------
  enum class RefitOutcome : std::uint8_t {
    Swapped,
    RefusedValidation,
    InsufficientSamples,
  };
  /// Runs one refit cycle on the calling thread, regardless of drift state.
  RefitOutcome refit_now();
  /// Forces `next` in as the new generation (no validation); returns the new
  /// generation.  The swap is atomic with respect to acquire().
  std::uint64_t swap_model(core::ModelBundle next);

  std::uint64_t generation() const;
  const HealthyReservoir& reservoir() const noexcept { return reservoir_; }

  /// Joins the worker thread (idempotent; the destructor calls it).  Call
  /// only after the scorer feeding this manager has drained.
  void stop();

 private:
  struct Generation {
    std::shared_ptr<const core::ModelBundle> bundle;
    std::uint64_t number = 1;
  };

  void worker_loop();
  RefitOutcome run_refit_cycle();
  void publish(stream::DriftEvent::Kind kind, std::uint64_t generation,
               double statistic, double threshold);

  AdaptationConfig config_;
  stream::EventBus* bus_;
  std::string scope_;

  // Active model slot.  A plain mutex around a shared_ptr copy: the
  // per-window cost is one lock + refcount bump, dwarfed by scoring itself,
  // and unlike std::atomic<shared_ptr> it is portable and TSAN-precise.
  mutable std::mutex slot_mutex_;
  Generation active_;

  // Feedback state (drift test + refit trigger).  The reservoir locks
  // itself; the monitor and trigger flags are guarded here.
  mutable std::mutex state_mutex_;
  DriftMonitor monitor_;
  bool refit_pending_ = false;

  HealthyReservoir reservoir_;

  mutable std::mutex counter_mutex_;
  std::uint64_t drifts_ = 0;
  std::uint64_t refits_ = 0;
  std::uint64_t swaps_ = 0;
  std::uint64_t refusals_ = 0;

  // Worker thread: parked until a drift flags refit_pending_.
  std::mutex worker_mutex_;
  std::condition_variable worker_cv_;
  bool worker_wake_ = false;
  bool worker_exit_ = false;
  std::thread worker_;

  // Registry-owned, resolved once.
  util::Gauge* generation_gauge_ = nullptr;
  util::Counter* refits_counter_ = nullptr;
  util::Counter* swaps_counter_ = nullptr;
  util::Counter* refusals_counter_ = nullptr;
  util::Histogram* refit_seconds_ = nullptr;
};

}  // namespace prodigy::adapt
