#include "comte/comte.hpp"

#include "tensor/ops.hpp"
#include "tensor/stats.hpp"
#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace prodigy::comte {

std::string metric_of_feature(const std::string& feature_name) {
  // "<Metric>::<sampler>::<feature>" -> "<Metric>::<sampler>".
  const auto first = feature_name.find("::");
  if (first == std::string::npos) return feature_name;
  const auto second = feature_name.find("::", first + 2);
  if (second == std::string::npos) return feature_name;
  return feature_name.substr(0, second);
}

ThresholdModelAdapter::ThresholdModelAdapter(const core::Detector& detector,
                                             double threshold, double scale)
    : detector_(detector), threshold_(threshold),
      scale_(scale > 0.0 ? scale : 1e-6) {}

double ThresholdModelAdapter::anomaly_margin(std::span<const double> x) const {
  tensor::Matrix row(1, x.size());
  row.set_row(0, x);
  const double score = detector_.score(row).at(0);
  return (score - threshold_) / scale_;
}

double ThresholdModelAdapter::anomaly_probability(std::span<const double> x) const {
  return 1.0 / (1.0 + std::exp(-anomaly_margin(x)));
}

double ThresholdModelAdapter::estimate_scale(
    const std::vector<double>& reference_scores) {
  // A quarter of the IQR gives a logistic that saturates just outside the
  // healthy score band.
  std::vector<double> sorted(reference_scores);
  std::sort(sorted.begin(), sorted.end());
  const double iqr = tensor::quantile_sorted(sorted, 0.75) -
                     tensor::quantile_sorted(sorted, 0.25);
  const double fallback = tensor::stddev(sorted);
  const double scale = iqr > 0.0 ? iqr / 4.0 : fallback;
  return scale > 0.0 ? scale : 1e-3;
}

namespace {

double logit(double p) {
  const double clamped = std::clamp(p, 1e-12, 1.0 - 1e-12);
  return std::log(clamped / (1.0 - clamped));
}

double sigmoid(double margin) { return 1.0 / (1.0 + std::exp(-margin)); }

}  // namespace

ComteExplainer::ComteExplainer(const ProbabilityModel& model, tensor::Matrix train_X,
                               std::vector<int> train_labels,
                               const std::vector<std::string>& feature_names,
                               ComteConfig config)
    : model_(model), train_(std::move(train_X)), config_(config) {
  if (train_.cols() != feature_names.size()) {
    throw std::invalid_argument("ComteExplainer: feature_names size mismatch");
  }
  if (train_.rows() != train_labels.size()) {
    throw std::invalid_argument("ComteExplainer: labels size mismatch");
  }
  for (std::size_t i = 0; i < train_labels.size(); ++i) {
    if (train_labels[i] == 0) healthy_rows_.push_back(i);
  }
  if (healthy_rows_.empty()) {
    throw std::invalid_argument("ComteExplainer: needs healthy training samples");
  }

  // Group columns by metric, preserving first-appearance order.
  std::map<std::string, std::size_t> seen;
  for (std::size_t c = 0; c < feature_names.size(); ++c) {
    const std::string metric = metric_of_feature(feature_names[c]);
    auto [it, inserted] = seen.emplace(metric, metrics_.size());
    if (inserted) {
      metrics_.push_back(metric);
      group_cols_.emplace_back();
    }
    group_cols_[it->second].push_back(c);
  }
}

std::vector<std::size_t> ComteExplainer::rank_distractors(
    std::span<const double> x) const {
  // Prefer healthy training samples the model itself classifies as healthy,
  // nearest to x first (the original picks in-class neighbours).
  struct Candidate {
    std::size_t row;
    double margin;
    double distance;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(healthy_rows_.size());
  for (const auto row : healthy_rows_) {
    const auto features = train_.row(row);
    candidates.push_back({row, model_.anomaly_margin(features),
                          tensor::euclidean_distance(x, features)});
  }
  const double margin_target = logit(config_.decision_probability);
  std::stable_sort(candidates.begin(), candidates.end(),
                   [margin_target](const Candidate& a, const Candidate& b) {
                     const bool a_ok = a.margin < margin_target;
                     const bool b_ok = b.margin < margin_target;
                     if (a_ok != b_ok) return a_ok;
                     return a.distance < b.distance;
                   });
  std::vector<std::size_t> rows;
  const std::size_t keep = std::min(config_.distractor_candidates, candidates.size());
  rows.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) rows.push_back(candidates[i].row);
  return rows;
}

std::vector<double> ComteExplainer::substitute(
    std::span<const double> x, std::size_t distractor,
    const std::vector<std::size_t>& metric_ids) const {
  std::vector<double> result(x.begin(), x.end());
  for (const auto id : metric_ids) {
    for (const auto col : group_cols_[id]) {
      result[col] = train_(distractor, col);
    }
  }
  return result;
}

Explanation ComteExplainer::finalize(std::span<const double> x,
                                     std::size_t distractor,
                                     std::vector<std::size_t> metric_ids,
                                     double original_margin, double final_margin,
                                     std::size_t evaluations) const {
  Explanation explanation;
  explanation.success = final_margin < logit(config_.decision_probability);
  auto& registry = util::MetricsRegistry::global();
  registry.counter("prodigy_comte_explanations_total").increment();
  if (explanation.success) registry.counter("prodigy_comte_flips_total").increment();
  registry.histogram("prodigy_comte_evaluations").observe(
      static_cast<double>(evaluations));
  explanation.distractor_row = distractor;
  explanation.original_probability = sigmoid(original_margin);
  explanation.final_probability = sigmoid(final_margin);
  explanation.evaluations = evaluations;
  for (const auto id : metric_ids) {
    MetricChange change;
    change.metric = metrics_[id];
    double delta = 0.0;
    for (const auto col : group_cols_[id]) {
      delta += train_(distractor, col) - x[col];
    }
    change.mean_delta = delta / static_cast<double>(group_cols_[id].size());
    explanation.changes.push_back(std::move(change));
  }
  return explanation;
}

Explanation ComteExplainer::explain_brute_force(std::span<const double> x) const {
  util::StageTimer stage("comte.explain_brute_force");
  const double original_margin = model_.anomaly_margin(x);
  const double margin_target = logit(config_.decision_probability);
  std::size_t evaluations = 1;

  double best_margin = original_margin;
  std::size_t best_distractor = healthy_rows_.front();
  std::vector<std::size_t> best_set;

  const auto distractors = rank_distractors(x);
  evaluations += healthy_rows_.size();
  const std::size_t m = metrics_.size();

  auto try_set = [&](std::size_t distractor, const std::vector<std::size_t>& set) {
    const auto candidate = substitute(x, distractor, set);
    const double margin = model_.anomaly_margin(candidate);
    ++evaluations;
    // Prefer flips with fewer metrics, then lower margin.
    const bool flips = margin < margin_target;
    const bool best_flips = best_margin < margin_target;
    const bool better =
        (flips && !best_flips) ||
        (flips == best_flips &&
         ((set.size() < best_set.size() || best_set.empty()) && margin < best_margin)) ||
        (flips == best_flips && set.size() == best_set.size() && margin < best_margin);
    if (better) {
      best_margin = margin;
      best_distractor = distractor;
      best_set = set;
    }
    return flips;
  };

  for (const auto distractor : distractors) {
    bool flipped = false;
    // Level 1: single metrics.
    for (std::size_t a = 0; a < m; ++a) {
      flipped |= try_set(distractor, {a});
    }
    if (flipped || config_.max_metrics < 2) continue;
    // Level 2: all pairs.
    for (std::size_t a = 0; a < m && !flipped; ++a) {
      for (std::size_t b = a + 1; b < m; ++b) {
        flipped |= try_set(distractor, {a, b});
      }
    }
    if (flipped || config_.max_metrics < 3) continue;
    // Level 3+: extend the current best set greedily rather than exhaustively.
    while (!flipped && best_set.size() < config_.max_metrics &&
           best_set.size() >= 2) {
      const auto frozen = best_set;
      bool extended = false;
      for (std::size_t c = 0; c < m && !flipped; ++c) {
        if (std::find(frozen.begin(), frozen.end(), c) != frozen.end()) continue;
        auto trial = frozen;
        trial.push_back(c);
        const double before = best_margin;
        flipped |= try_set(distractor, trial);
        extended |= best_margin < before;
      }
      if (!extended) break;
    }
    if (flipped) break;
  }

  return finalize(x, best_distractor, best_set, original_margin, best_margin,
                  evaluations);
}

Explanation ComteExplainer::explain_optimized(std::span<const double> x) const {
  util::StageTimer stage("comte.explain_optimized");
  const double original_margin = model_.anomaly_margin(x);
  const double margin_target = logit(config_.decision_probability);
  std::size_t evaluations = 1;
  util::Rng rng(config_.seed);

  const auto distractors = rank_distractors(x);
  evaluations += healthy_rows_.size();

  double best_margin = original_margin;
  std::size_t best_distractor = healthy_rows_.front();
  std::vector<std::size_t> best_set;

  const std::size_t restarts = std::max<std::size_t>(1, config_.restarts);
  for (std::size_t restart = 0; restart < restarts; ++restart) {
    const std::size_t distractor = distractors[restart % distractors.size()];
    std::vector<std::size_t> chosen;
    double current_margin = original_margin;

    // Greedy: repeatedly add the substitution with the largest margin drop,
    // visiting metrics in a shuffled order so restarts explore ties.
    while (chosen.size() < config_.max_metrics && current_margin >= margin_target) {
      const auto order = rng.permutation(metrics_.size());
      double step_best_margin = current_margin;
      std::vector<std::size_t> step_best_addition;
      for (const auto id : order) {
        if (std::find(chosen.begin(), chosen.end(), id) != chosen.end()) continue;
        auto trial = chosen;
        trial.push_back(id);
        const double margin =
            model_.anomaly_margin(substitute(x, distractor, trial));
        ++evaluations;
        if (margin < step_best_margin) {
          step_best_margin = margin;
          step_best_addition = {id};
        }
      }
      if (step_best_addition.empty() && chosen.size() + 2 <= config_.max_metrics) {
        // Plateau (e.g. the prediction is driven by the max over several
        // metrics): no single substitution helps — try pairs.
        for (std::size_t a = 0; a < metrics_.size(); ++a) {
          if (std::find(chosen.begin(), chosen.end(), a) != chosen.end()) continue;
          for (std::size_t b = a + 1; b < metrics_.size(); ++b) {
            if (std::find(chosen.begin(), chosen.end(), b) != chosen.end()) continue;
            auto trial = chosen;
            trial.push_back(a);
            trial.push_back(b);
            const double margin =
                model_.anomaly_margin(substitute(x, distractor, trial));
            ++evaluations;
            if (margin < step_best_margin) {
              step_best_margin = margin;
              step_best_addition = {a, b};
            }
          }
        }
      }
      if (step_best_addition.empty()) break;  // no improvement possible
      chosen.insert(chosen.end(), step_best_addition.begin(),
                    step_best_addition.end());
      current_margin = step_best_margin;
    }

    const bool flips = current_margin < margin_target;
    const bool best_flips = best_margin < margin_target;
    if ((flips && !best_flips) ||
        (flips == best_flips &&
         (chosen.size() < best_set.size() ||
          (chosen.size() == best_set.size() && current_margin < best_margin) ||
          best_set.empty()))) {
      best_margin = current_margin;
      best_set = chosen;
      best_distractor = distractor;
    }
    if (flips && best_set.size() == 1) break;  // cannot do better than one metric
  }

  return finalize(x, best_distractor, best_set, original_margin, best_margin,
                  evaluations);
}

}  // namespace prodigy::comte
