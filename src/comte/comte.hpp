// CoMTE: Counterfactual Explanations for Multivariate Time Series
// (Ates et al., ICAPAI'21), applied to anomaly predictions (paper §4.4).
//
// Given a sample classified anomalous, find (1) a *distractor* — a healthy
// training sample — and (2) the minimum set of metrics whose feature columns,
// substituted from the distractor, flip the classification to healthy.
//
// Prodigy predicts from a reconstruction-error threshold rather than class
// probabilities, so (as §5.4.4 describes) the search classes are adapted:
// ThresholdModelAdapter maps any Detector's score to a pseudo-probability
// with a logistic centered on the decision threshold.
#pragma once

#include "core/detector_iface.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace prodigy::comte {

/// CoMTE requires a model that returns classification probabilities.
class ProbabilityModel {
 public:
  virtual ~ProbabilityModel() = default;
  /// P(anomalous | x) for a single sample in model-input space.
  virtual double anomaly_probability(std::span<const double> x) const = 0;

  /// Monotone decision margin; > 0 means anomalous.  The search ranks
  /// candidate substitutions by this value because probabilities saturate in
  /// double precision for strong anomalies (sigmoid(45) == 1.0), which would
  /// blind a greedy search.  The default derives it from the probability;
  /// threshold models should return an unbounded raw margin.
  virtual double anomaly_margin(std::span<const double> x) const {
    return anomaly_probability(x) - 0.5;
  }
};

/// Adapts a threshold Detector: sigmoid((score - threshold) / scale).
class ThresholdModelAdapter final : public ProbabilityModel {
 public:
  /// `scale` controls the logistic steepness; estimate_scale() derives a
  /// reasonable value from the score spread of a reference set.
  ThresholdModelAdapter(const core::Detector& detector, double threshold,
                        double scale);

  double anomaly_probability(std::span<const double> x) const override;

  /// Raw margin (score - threshold) / scale — never saturates.
  double anomaly_margin(std::span<const double> x) const override;

  static double estimate_scale(const std::vector<double>& reference_scores);

 private:
  const core::Detector& detector_;
  double threshold_;
  double scale_;
};

/// One substituted metric and how the distractor differs on it (mean feature
/// delta; negative = "would be healthy if this metric were lower").
struct MetricChange {
  std::string metric;
  double mean_delta = 0.0;  // distractor features - sample features
};

struct Explanation {
  bool success = false;
  std::vector<MetricChange> changes;   // minimal metric set, most important first
  std::size_t distractor_row = 0;      // row in the healthy training matrix
  double original_probability = 0.0;
  double final_probability = 0.0;
  std::size_t evaluations = 0;         // model calls spent
};

struct ComteConfig {
  std::size_t max_metrics = 3;          // explanation size cap
  std::size_t distractor_candidates = 5;
  std::size_t restarts = 4;             // OptimizedSearch random restarts
  double decision_probability = 0.5;    // flip target
  std::uint64_t seed = 17;
};

class ComteExplainer {
 public:
  /// `train_X` is the (scaled, column-selected) training matrix the model was
  /// fitted on; `train_labels` its ground truth; `feature_names` the matching
  /// column names of the form "<Metric>::<sampler>::<feature>".
  ComteExplainer(const ProbabilityModel& model, tensor::Matrix train_X,
                 std::vector<int> train_labels,
                 const std::vector<std::string>& feature_names,
                 ComteConfig config = {});

  /// Exhaustive search over single metrics, then pairs, then triples (up to
  /// config.max_metrics), over the best distractor candidates.
  Explanation explain_brute_force(std::span<const double> x) const;

  /// Random-restart greedy search — the paper's OptimizedSearch.
  Explanation explain_optimized(std::span<const double> x) const;

  /// The distinct metric groups discovered from the feature names.
  const std::vector<std::string>& metric_names() const noexcept { return metrics_; }

 private:
  std::vector<std::size_t> rank_distractors(std::span<const double> x) const;
  std::vector<double> substitute(std::span<const double> x, std::size_t distractor,
                                 const std::vector<std::size_t>& metric_ids) const;
  Explanation finalize(std::span<const double> x, std::size_t distractor,
                       std::vector<std::size_t> metric_ids, double original_p,
                       double final_p, std::size_t evaluations) const;

  const ProbabilityModel& model_;
  tensor::Matrix train_;
  std::vector<std::size_t> healthy_rows_;
  ComteConfig config_;
  std::vector<std::string> metrics_;                  // group names
  std::vector<std::vector<std::size_t>> group_cols_;  // columns per group
};

/// Extracts the metric prefix ("MemFree::meminfo") from a full feature
/// column name ("MemFree::meminfo::mean").
std::string metric_of_feature(const std::string& feature_name);

}  // namespace prodigy::comte
