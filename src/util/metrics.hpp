// Process-wide observability: a thread-safe registry of named counters,
// gauges, and bounded histograms, plus a scoped StageTimer that traces
// per-stage wall time into the registry.  Every pipeline stage (telemetry
// query, preprocessing, feature extraction, scoring, CoMTE search) records
// here so deployments can export one snapshot in Prometheus text or JSON
// format.  See docs/observability.md for the naming scheme.
#pragma once

#include "util/timer.hpp"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace prodigy::util {

/// Monotonically increasing event count.  Lock-free.
class Counter {
 public:
  void increment(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value with an update_max variant for high-water marks.
/// Lock-free (CAS loops instead of fetch_add so pre-C++20-atomic-double
/// toolchains behave identically).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `v` if `v` exceeds the stored value.
  void update_max(double v) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (current < v && !value_.compare_exchange_weak(
                              current, v, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Bounded-memory distribution tracker: count/sum/min/max cover every
/// observation ever made; quantiles are nearest-rank over a sliding window
/// of the most recent `capacity` samples.
class Histogram {
 public:
  explicit Histogram(std::size_t capacity = kDefaultCapacity);

  void observe(double value);
  HistogramSnapshot snapshot() const;

  /// Drop all recorded state (count/sum/extrema and the quantile window).
  /// Unlike MetricsRegistry::reset(), references stay valid — benchmarks use
  /// this to isolate one pass's latency distribution from the previous one.
  void reset();

  static constexpr std::size_t kDefaultCapacity = 2048;

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;  // ring buffer of the most recent values
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metric registry.  Lookup lazily creates the metric; references stay
/// valid for the registry's lifetime.  A name is bound to exactly one metric
/// kind -- requesting it as another kind throws std::logic_error, which also
/// guarantees exports never emit duplicate metric names.  Names are
/// sanitized to Prometheus form on registration ('.', '/', '-' -> '_'), so
/// "pipeline.preprocess" and "pipeline_preprocess" address the same metric.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation point uses.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::size_t capacity = Histogram::kDefaultCapacity);

  /// Prometheus text exposition: one `# TYPE` line per metric (counter,
  /// gauge, or summary with p50/p95/p99 quantile samples plus _sum/_count).
  std::string to_prometheus() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string to_json() const;

  /// Writes to_json() when `path` ends in ".json", to_prometheus() otherwise.
  void write_file(const std::string& path) const;

  /// Drops every metric.  Intended for tests; references obtained earlier
  /// dangle afterwards.
  void reset();

  static std::string sanitize_name(const std::string& name);

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& lookup(const std::string& name, Kind kind, std::size_t capacity);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // sorted -> deterministic exports
};

/// RAII wall-time tracer for one pipeline stage.  On stop (or destruction)
/// it records the elapsed seconds into the global registry histogram
/// `prodigy_stage_<stage>_seconds`, optionally stores them into `*sink`
/// (used for per-request latency breakdowns), and emits a structured trace
/// line at debug log level.
class StageTimer {
 public:
  explicit StageTimer(std::string stage, double* sink = nullptr);
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer();

  /// Records now and returns the elapsed seconds.  Idempotent: later calls
  /// (and destruction) return the first measurement without re-recording.
  double stop();

 private:
  std::string stage_;
  double* sink_;
  Timer timer_;
  double recorded_ = 0.0;
  bool stopped_ = false;
};

}  // namespace prodigy::util
