// Tiny CSV reader/writer used to export experiment tables and to snapshot
// datasets for inspection.  Handles quoting of fields containing commas,
// quotes, or newlines; does not attempt full RFC 4180 edge cases beyond that.
#pragma once

#include <string>
#include <vector>

namespace prodigy::util {

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  std::size_t column_index(const std::string& name) const;  // throws if absent
};

/// Serializes one CSV field, quoting when necessary.
std::string csv_escape(const std::string& field);

/// Writes header + rows to `path`.  Throws std::runtime_error on I/O failure.
void write_csv(const std::string& path, const CsvTable& table);

/// Reads a CSV file written by write_csv (or any simple CSV with a header row).
CsvTable read_csv(const std::string& path);

}  // namespace prodigy::util
