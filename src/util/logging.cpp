#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace prodigy::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_io_mutex;

constexpr const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view message) {
  if (level < g_level.load()) return;
  std::lock_guard lock(g_io_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_tag(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace prodigy::util
