#include "util/thread_pool.hpp"

#include "util/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace prodigy::util {

namespace {
// Which pool (if any) the current thread belongs to.  Lets parallel_for
// detect re-entry from a worker of the same pool and run inline instead of
// deadlocking on futures stuck behind blocked workers.
thread_local const ThreadPool* tl_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : tasks_submitted_(&MetricsRegistry::global().counter(
          "prodigy_threadpool_tasks_submitted_total")),
      tasks_completed_(&MetricsRegistry::global().counter(
          "prodigy_threadpool_tasks_completed_total")),
      queue_high_water_(&MetricsRegistry::global().gauge(
          "prodigy_threadpool_queue_depth_high_water")) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  tl_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    tasks_completed_->increment();
  }
}

bool ThreadPool::on_worker_thread() const noexcept {
  return tl_worker_pool == this;
}

void ThreadPool::note_submit_locked(std::size_t queue_depth) noexcept {
  tasks_submitted_->increment();
  queue_high_water_->update_max(static_cast<double>(queue_depth));
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t workers = pool.size();
  // Re-entry from one of this pool's own workers must run inline: blocking
  // on chunk futures here would wedge the process once every worker sits in
  // the same wait while the chunks queue behind them.
  if (workers <= 1 || count <= grain || pool.on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Aim for a few chunks per worker so uneven iterations balance out.
  const std::size_t chunks = std::min(count, std::max<std::size_t>(1, workers * 4));
  const std::size_t chunk_size = std::max(grain, (count + chunks - 1) / chunks);

  std::vector<std::future<void>> futures;
  futures.reserve((count + chunk_size - 1) / chunk_size);
  for (std::size_t lo = begin; lo < end; lo += chunk_size) {
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t grain) {
  parallel_for(ThreadPool::global(), begin, end, body, grain);
}

}  // namespace prodigy::util
