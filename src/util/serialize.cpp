#include "util/serialize.hpp"

namespace prodigy::util {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary), path_(path) {
  if (!out_) throw std::runtime_error("BinaryWriter: cannot open " + path);
}

void BinaryWriter::write_raw(const void* data, std::size_t size) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (!out_) throw std::runtime_error("BinaryWriter: write failed for " + path_);
}

void BinaryWriter::write_u64(std::uint64_t value) { write_raw(&value, sizeof value); }
void BinaryWriter::write_i64(std::int64_t value) { write_raw(&value, sizeof value); }
void BinaryWriter::write_f64(double value) { write_raw(&value, sizeof value); }

void BinaryWriter::write_string(const std::string& value) {
  write_u64(value.size());
  if (!value.empty()) write_raw(value.data(), value.size());
}

void BinaryWriter::write_f64_vector(const std::vector<double>& values) {
  write_u64(values.size());
  if (!values.empty()) write_raw(values.data(), values.size() * sizeof(double));
}

void BinaryWriter::write_string_vector(const std::vector<std::string>& values) {
  write_u64(values.size());
  for (const auto& value : values) write_string(value);
}

void BinaryWriter::write_magic(std::uint64_t magic, std::uint64_t version) {
  write_u64(magic);
  write_u64(version);
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) throw std::runtime_error("BinaryReader: cannot open " + path);
}

void BinaryReader::read_raw(void* data, std::size_t size) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (!in_ || static_cast<std::size_t>(in_.gcount()) != size) {
    throw std::runtime_error("BinaryReader: truncated read from " + path_);
  }
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t value = 0;
  read_raw(&value, sizeof value);
  return value;
}

std::int64_t BinaryReader::read_i64() {
  std::int64_t value = 0;
  read_raw(&value, sizeof value);
  return value;
}

double BinaryReader::read_f64() {
  double value = 0;
  read_raw(&value, sizeof value);
  return value;
}

std::string BinaryReader::read_string() {
  const auto size = read_u64();
  std::string value(size, '\0');
  if (size > 0) read_raw(value.data(), size);
  return value;
}

std::vector<double> BinaryReader::read_f64_vector() {
  const auto size = read_u64();
  std::vector<double> values(size);
  if (size > 0) read_raw(values.data(), size * sizeof(double));
  return values;
}

std::vector<std::string> BinaryReader::read_string_vector() {
  const auto size = read_u64();
  std::vector<std::string> values;
  values.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) values.push_back(read_string());
  return values;
}

bool BinaryReader::at_end() { return in_.peek() == std::ifstream::traits_type::eof(); }

void BinaryReader::expect_magic(std::uint64_t magic, std::uint64_t version) {
  const auto got_magic = read_u64();
  const auto got_version = read_u64();
  if (got_magic != magic || got_version != version) {
    throw std::runtime_error("BinaryReader: bad magic/version in " + path_);
  }
}

}  // namespace prodigy::util
