// Bounded, thread-safe LRU cache used by the deployment request path (job
// analysis results keyed by store generation).  Header-only template; the
// optional Counter bindings feed the metrics registry so deployments can
// watch hit/miss/eviction rates without the cache knowing metric names.
#pragma once

#include "util/metrics.hpp"

#include <cstddef>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

namespace prodigy::util {

/// Least-recently-used cache over ordered keys.  All operations take the
/// internal lock, so concurrent get/put from pool workers and client threads
/// are safe.  A capacity of 0 disables caching: get always misses and put is
/// a no-op (the counters still record the misses, which keeps hit-rate math
/// honest when a deployment turns the cache off).
template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity, Counter* hits = nullptr,
                    Counter* misses = nullptr, Counter* evictions = nullptr)
      : capacity_(capacity), hits_(hits), misses_(misses), evictions_(evictions) {}

  /// Returns a copy of the cached value and marks the entry most-recent.
  std::optional<Value> get(const Key& key) {
    std::lock_guard lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      if (misses_ != nullptr) misses_->increment();
      return std::nullopt;
    }
    entries_.splice(entries_.begin(), entries_, it->second);
    if (hits_ != nullptr) hits_->increment();
    return it->second->second;
  }

  /// Inserts or refreshes `key`, evicting the least-recently-used entry when
  /// the cache is full.
  void put(const Key& key, Value value) {
    std::lock_guard lock(mutex_);
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(key, std::move(value));
    index_[key] = entries_.begin();
    evict_overflow_locked();
  }

  /// Resizes the cache, evicting least-recently-used entries if it shrinks.
  void set_capacity(std::size_t capacity) {
    std::lock_guard lock(mutex_);
    capacity_ = capacity;
    evict_overflow_locked();
  }

  void erase(const Key& key) {
    std::lock_guard lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    entries_.erase(it->second);
    index_.erase(it);
  }

  void clear() {
    std::lock_guard lock(mutex_);
    entries_.clear();
    index_.clear();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return entries_.size();
  }

  std::size_t capacity() const {
    std::lock_guard lock(mutex_);
    return capacity_;
  }

 private:
  using Entry = std::pair<Key, Value>;

  void evict_overflow_locked() {
    while (entries_.size() > capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
      if (evictions_ != nullptr) evictions_->increment();
    }
  }

  std::size_t capacity_;
  Counter* hits_;
  Counter* misses_;
  Counter* evictions_;
  mutable std::mutex mutex_;
  std::list<Entry> entries_;                            // front = most recent
  std::map<Key, typename std::list<Entry>::iterator> index_;
};

}  // namespace prodigy::util
