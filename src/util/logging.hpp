// Minimal leveled logger.  Experiments and the deployment service log
// progress through this; tests set the level to Warn to stay quiet.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace prodigy::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Writes one line to stderr if `level` is enabled.  Thread-safe.
void log_line(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
std::string format_parts(Args&&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log_line(LogLevel::Debug, detail::format_parts(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log_line(LogLevel::Info, detail::format_parts(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log_line(LogLevel::Warn, detail::format_parts(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::Error)
    log_line(LogLevel::Error, detail::format_parts(std::forward<Args>(args)...));
}

}  // namespace prodigy::util
