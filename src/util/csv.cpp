#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace prodigy::util {

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + name + "'");
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

namespace {

void write_row(std::ofstream& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out << ',';
    out << csv_escape(row[i]);
  }
  out << '\n';
}

std::vector<std::string> parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

void write_csv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  write_row(out, table.header);
  for (const auto& row : table.rows) write_row(out, row);
  if (!out) throw std::runtime_error("write_csv: write failed for " + path);
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty() && in.peek() == std::char_traits<char>::eof()) break;
    auto fields = parse_line(line);
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      table.rows.push_back(std::move(fields));
    }
  }
  return table;
}

}  // namespace prodigy::util
