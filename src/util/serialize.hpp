// Binary serialization helpers.  Model weights, scalers, and deployment
// metadata are persisted through these streams (the paper's ModelTrainer
// saves HDF files; we use a simple tagged little-endian binary container).
#pragma once

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace prodigy::util {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  void write_u64(std::uint64_t value);
  void write_i64(std::int64_t value);
  void write_f64(double value);
  void write_string(const std::string& value);
  void write_f64_vector(const std::vector<double>& values);
  void write_string_vector(const std::vector<std::string>& values);

  /// Magic/version header so loads can reject foreign files.
  void write_magic(std::uint64_t magic, std::uint64_t version);

 private:
  void write_raw(const void* data, std::size_t size);
  std::ofstream out_;
  std::string path_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  std::uint64_t read_u64();
  std::int64_t read_i64();
  double read_f64();
  std::string read_string();
  std::vector<double> read_f64_vector();
  std::vector<std::string> read_string_vector();

  /// Throws std::runtime_error if magic/version do not match.
  void expect_magic(std::uint64_t magic, std::uint64_t version);

  /// True when every byte has been consumed — used to iterate frame streams
  /// (e.g. a capture file of consecutive SampleBatch frames).
  bool at_end();

 private:
  void read_raw(void* data, std::size_t size);
  std::ifstream in_;
  std::string path_;
};

}  // namespace prodigy::util
