// Fixed-size thread pool with a blocking task queue and a chunked
// parallel_for built on top.  All heavy loops in the library (feature
// extraction, GEMM, distance matrices, cross-validation folds) run here so
// the degree of parallelism is controlled in one place.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace prodigy::util {

class Counter;
class Gauge;

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers.  Nested
  /// parallel constructs use this to execute inline instead of blocking on
  /// futures that can only be drained by already-blocked workers.
  bool on_worker_thread() const noexcept;

  /// Enqueue an arbitrary task; the future reports completion/exceptions.
  /// WARNING: blocking on the future from inside a pool task can deadlock
  /// once every worker is blocked; prefer parallel_for, which runs nested
  /// ranges inline.
  template <typename Fn>
  std::future<void> submit(Fn&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<Fn>(fn));
    std::future<void> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
      note_submit_locked(queue_.size());
    }
    cv_.notify_one();
    return result;
  }

  /// Process-wide shared pool.  Lazily constructed with the default size.
  static ThreadPool& global();

 private:
  void worker_loop();
  void note_submit_locked(std::size_t queue_depth) noexcept;

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  // Registry-owned instrumentation; bound in the constructor so the global
  // registry outlives every pool (and the hot path is one relaxed atomic).
  Counter* tasks_submitted_ = nullptr;
  Counter* tasks_completed_ = nullptr;
  Gauge* queue_high_water_ = nullptr;
};

/// Runs body(i) for i in [begin, end) across the pool in contiguous chunks.
/// Blocks until all iterations finish; rethrows the first task exception.
/// Executes inline when the range is small, the pool has one thread, or the
/// caller is already one of the pool's workers (nested parallel_for), so
/// nesting never deadlocks.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Convenience overload using the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace prodigy::util
