// Over-aligned heap allocation for SIMD working buffers.
//
// The feature/tensor kernel TUs are compiled with their own -march and read
// scratch buffers with full-width vector loads; allocating those buffers on
// a 64-byte (cache-line / zmm) boundary keeps every aligned-width load
// unsplit.  The allocator is a thin wrapper over the aligned operator new
// added in C++17, so vectors using it behave exactly like std::vector.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace prodigy::util {

template <class T, std::size_t Alignment = 64>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two >= alignof(T)");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// std::vector whose storage starts on a 64-byte boundary.
template <class T>
using AlignedVec = std::vector<T, AlignedAllocator<T, 64>>;

/// Debug-build check that a kernel scratch buffer really is over-aligned.
/// Compiles away in release builds; empty buffers pass (nothing to load).
inline void debug_assert_aligned([[maybe_unused]] const void* p,
                                 [[maybe_unused]] std::size_t alignment = 64) {
  assert(p == nullptr ||
         reinterpret_cast<std::uintptr_t>(p) % alignment == 0);
}

}  // namespace prodigy::util
