// Deterministic random number generation for reproducible experiments.
//
// Every component in the library draws randomness from an explicitly seeded
// Rng.  We use xoshiro256++ (public-domain algorithm by Blackman & Vigna)
// seeded through splitmix64, which gives high-quality streams from arbitrary
// 64-bit seeds and lets us derive independent child streams cheaply.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <vector>

namespace prodigy::util {

/// Counter-based seed expansion (splitmix64).  Used to turn one user seed
/// into well-separated internal state words.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator with Gaussian/uniform helpers.
///
/// Satisfies UniformRandomBitGenerator so it can also be used with
/// <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    cached_gauss_valid_ = false;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded integers.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (caches the second variate).
  double gaussian() noexcept {
    if (cached_gauss_valid_) {
      cached_gauss_valid_ = false;
      return cached_gauss_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_gauss_ = radius * std::sin(angle);
    cached_gauss_valid_ = true;
    return radius * std::cos(angle);
  }

  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derive an independent child stream; calls advance this generator.
  Rng fork() noexcept { return Rng((*this)()); }

  /// Fisher–Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = uniform_index(i);
      std::swap(perm[i - 1], perm[j]);
    }
    return perm;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_gauss_ = 0.0;
  bool cached_gauss_valid_ = false;
};

}  // namespace prodigy::util
