#include "util/metrics.hpp"

#include "util/logging.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace prodigy::util {

namespace {

std::string format_value(double v) {
  std::ostringstream out;
  out << std::setprecision(12) << v;
  return out.str();
}

/// Nearest-rank quantile over an already-sorted window.
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

Histogram::Histogram(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  samples_.reserve(std::min<std::size_t>(capacity_, 64));
}

void Histogram::observe(double value) {
  std::lock_guard lock(mutex_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (samples_.size() < capacity_) {
    samples_.push_back(value);
  } else {
    samples_[next_] = value;
    next_ = (next_ + 1) % capacity_;
  }
}

void Histogram::reset() {
  std::lock_guard lock(mutex_);
  samples_.clear();
  next_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

HistogramSnapshot Histogram::snapshot() const {
  std::vector<double> window;
  HistogramSnapshot snap;
  {
    std::lock_guard lock(mutex_);
    snap.count = count_;
    snap.sum = sum_;
    snap.min = min_;
    snap.max = max_;
    window = samples_;
  }
  std::sort(window.begin(), window.end());
  snap.p50 = quantile_sorted(window, 0.50);
  snap.p95 = quantile_sorted(window, 0.95);
  snap.p99 = quantile_sorted(window, 0.99);
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::string MetricsRegistry::sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) return "_";
  if (out.front() >= '0' && out.front() <= '9') out.insert(out.begin(), '_');
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::lookup(const std::string& name,
                                                Kind kind, std::size_t capacity) {
  const std::string key = sanitize_name(name);
  std::lock_guard lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::Counter: entry.counter = std::make_unique<Counter>(); break;
      case Kind::Gauge: entry.gauge = std::make_unique<Gauge>(); break;
      case Kind::Histogram:
        entry.histogram = std::make_unique<Histogram>(capacity);
        break;
    }
    it = entries_.emplace(key, std::move(entry)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("MetricsRegistry: metric '" + key +
                           "' already registered as a different kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return *lookup(name, Kind::Counter, 0).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return *lookup(name, Kind::Gauge, 0).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::size_t capacity) {
  return *lookup(name, Kind::Histogram, capacity).histogram;
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard lock(mutex_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::Counter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(entry.counter->value()) + "\n";
        break;
      case Kind::Gauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + format_value(entry.gauge->value()) + "\n";
        break;
      case Kind::Histogram: {
        const HistogramSnapshot snap = entry.histogram->snapshot();
        out += "# TYPE " + name + " summary\n";
        out += name + "{quantile=\"0.5\"} " + format_value(snap.p50) + "\n";
        out += name + "{quantile=\"0.95\"} " + format_value(snap.p95) + "\n";
        out += name + "{quantile=\"0.99\"} " + format_value(snap.p99) + "\n";
        out += name + "_sum " + format_value(snap.sum) + "\n";
        out += name + "_count " + std::to_string(snap.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::string counters, gauges, histograms;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::Counter:
        counters += counters.empty() ? "" : ",";
        counters += "\n    \"" + name + "\": " +
                    std::to_string(entry.counter->value());
        break;
      case Kind::Gauge:
        gauges += gauges.empty() ? "" : ",";
        gauges += "\n    \"" + name + "\": " + format_value(entry.gauge->value());
        break;
      case Kind::Histogram: {
        const HistogramSnapshot snap = entry.histogram->snapshot();
        histograms += histograms.empty() ? "" : ",";
        histograms += "\n    \"" + name + "\": {";
        histograms += "\"count\": " + std::to_string(snap.count);
        histograms += ", \"sum\": " + format_value(snap.sum);
        histograms += ", \"min\": " + format_value(snap.min);
        histograms += ", \"max\": " + format_value(snap.max);
        histograms += ", \"p50\": " + format_value(snap.p50);
        histograms += ", \"p95\": " + format_value(snap.p95);
        histograms += ", \"p99\": " + format_value(snap.p99);
        histograms += "}";
        break;
      }
    }
  }
  std::string out = "{\n";
  out += "  \"counters\": {" + counters + (counters.empty() ? "" : "\n  ") + "},\n";
  out += "  \"gauges\": {" + gauges + (gauges.empty() ? "" : "\n  ") + "},\n";
  out += "  \"histograms\": {" + histograms +
         (histograms.empty() ? "" : "\n  ") + "}\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::write_file(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    throw std::runtime_error("MetricsRegistry: cannot write " + path);
  }
  const bool json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  file << (json ? to_json() : to_prometheus());
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  entries_.clear();
}

StageTimer::StageTimer(std::string stage, double* sink)
    : stage_(std::move(stage)), sink_(sink) {}

StageTimer::~StageTimer() { stop(); }

double StageTimer::stop() {
  if (stopped_) return recorded_;
  stopped_ = true;
  recorded_ = timer_.elapsed_seconds();
  if (sink_) *sink_ = recorded_;
  MetricsRegistry::global()
      .histogram("prodigy_stage_" + MetricsRegistry::sanitize_name(stage_) +
                 "_seconds")
      .observe(recorded_);
  log_debug("trace stage=", stage_, " seconds=", recorded_);
  return recorded_;
}

}  // namespace prodigy::util
