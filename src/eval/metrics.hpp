// Classification metrics.  The paper reports the macro-average F1-score
// (harmonic mean of precision and recall averaged over both classes with
// equal weight), which is robust to the heavy class imbalance of the Eclipse
// (90% anomalous) and Volta (10% anomalous) test sets.
#pragma once

#include <cstddef>
#include <vector>

namespace prodigy::eval {

struct ConfusionMatrix {
  std::size_t true_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;

  std::size_t total() const noexcept {
    return true_positive + true_negative + false_positive + false_negative;
  }
};

ConfusionMatrix confusion_matrix(const std::vector<int>& truth,
                                 const std::vector<int>& predictions);

double accuracy(const ConfusionMatrix& cm) noexcept;
/// Precision/recall/F1 of the positive (anomalous) class.
double precision(const ConfusionMatrix& cm) noexcept;
double recall(const ConfusionMatrix& cm) noexcept;
double f1_score(const ConfusionMatrix& cm) noexcept;
/// Macro-average F1: mean of the per-class F1 scores.
double macro_f1(const ConfusionMatrix& cm) noexcept;

double macro_f1(const std::vector<int>& truth, const std::vector<int>& predictions);
double accuracy(const std::vector<int>& truth, const std::vector<int>& predictions);

/// Converts scores to predictions at a threshold (score > threshold -> 1).
std::vector<int> predictions_at_threshold(const std::vector<double>& scores,
                                          double threshold);

struct ThresholdSearch {
  double best_threshold = 0.0;
  double best_macro_f1 = 0.0;
};

/// Sweeps `steps` evenly spaced thresholds across [min(scores), max(scores)]
/// and returns the macro-F1 maximizer (paper §5.4.4 iterates 0..1 in 0.001
/// steps over normalized scores; this generalizes to unnormalized errors).
ThresholdSearch best_threshold_by_f1(const std::vector<double>& scores,
                                     const std::vector<int>& truth,
                                     std::size_t steps = 1000);

}  // namespace prodigy::eval
