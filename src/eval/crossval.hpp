// Evaluation harnesses for the Figure-5 style comparisons:
//  * evaluate_fold: scale -> fit -> (optional) threshold tuning -> metrics;
//  * repeated_prodigy_eval: the paper's 20-80 split with a 10% training
//    anomaly cap, repeated with fresh seeds (their "5-fold cross-validation"
//    over the fixed collection);
//  * kfold_eval: classic stratified k-fold, provided for ablations.
#pragma once

#include "core/detector_iface.hpp"
#include "eval/metrics.hpp"
#include "features/feature_matrix.hpp"
#include "pipeline/scaler.hpp"

#include <functional>
#include <memory>

namespace prodigy::eval {

using DetectorFactory = std::function<std::unique_ptr<core::Detector>()>;

struct DetectorEvaluation {
  ConfusionMatrix cm;
  double macro_f1 = 0.0;
  double accuracy = 0.0;
  double train_seconds = 0.0;
  double inference_seconds = 0.0;
  std::size_t train_size = 0;
  std::size_t test_size = 0;
};

struct EvalOptions {
  pipeline::ScalerKind scaler = pipeline::ScalerKind::MinMax;
  /// Let the detector tune its threshold on the (labeled) test scores, as
  /// the paper does for Prodigy and USAD (§5.4.4).
  bool tune_on_test = true;
};

/// Scales (fit on train), fits the detector, optionally tunes, and scores
/// the test split.
DetectorEvaluation evaluate_fold(core::Detector& detector,
                                 const tensor::Matrix& X_train,
                                 const std::vector<int>& y_train,
                                 const tensor::Matrix& X_test,
                                 const std::vector<int>& y_test,
                                 const EvalOptions& options);

struct RepeatedEvaluation {
  std::vector<DetectorEvaluation> rounds;

  double mean_f1() const noexcept;
  double stddev_f1() const noexcept;
  double mean_accuracy() const noexcept;
};

/// Paper split repeated `rounds` times with derived seeds: 20% train
/// (anomaly ratio capped at 10%), 80% test.
RepeatedEvaluation repeated_prodigy_eval(const DetectorFactory& factory,
                                         const features::FeatureDataset& dataset,
                                         std::size_t rounds, std::uint64_t seed,
                                         const EvalOptions& options,
                                         double train_fraction = 0.2,
                                         double train_anomaly_ratio = 0.1);

/// Classic stratified k-fold over the dataset.
RepeatedEvaluation kfold_eval(const DetectorFactory& factory,
                              const features::FeatureDataset& dataset,
                              std::size_t folds, std::uint64_t seed,
                              const EvalOptions& options);

}  // namespace prodigy::eval
