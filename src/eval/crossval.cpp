#include "eval/crossval.hpp"

#include "pipeline/splits.hpp"
#include "tensor/stats.hpp"
#include "util/timer.hpp"

#include <cmath>

namespace prodigy::eval {

DetectorEvaluation evaluate_fold(core::Detector& detector,
                                 const tensor::Matrix& X_train,
                                 const std::vector<int>& y_train,
                                 const tensor::Matrix& X_test,
                                 const std::vector<int>& y_test,
                                 const EvalOptions& options) {
  DetectorEvaluation result;
  result.train_size = X_train.rows();
  result.test_size = X_test.rows();

  pipeline::Scaler scaler(options.scaler);
  const tensor::Matrix train_scaled = scaler.fit_transform(X_train);
  const tensor::Matrix test_scaled = scaler.transform(X_test);

  util::Timer timer;
  detector.fit(train_scaled, y_train);
  result.train_seconds = timer.elapsed_seconds();

  if (options.tune_on_test) detector.tune(test_scaled, y_test);

  timer.reset();
  const auto predictions = detector.predict(test_scaled);
  result.inference_seconds = timer.elapsed_seconds();

  result.cm = confusion_matrix(y_test, predictions);
  result.macro_f1 = macro_f1(result.cm);
  result.accuracy = accuracy(result.cm);
  return result;
}

double RepeatedEvaluation::mean_f1() const noexcept {
  if (rounds.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& round : rounds) acc += round.macro_f1;
  return acc / static_cast<double>(rounds.size());
}

double RepeatedEvaluation::stddev_f1() const noexcept {
  if (rounds.size() < 2) return 0.0;
  const double mean = mean_f1();
  double acc = 0.0;
  for (const auto& round : rounds) {
    const double d = round.macro_f1 - mean;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(rounds.size()));
}

double RepeatedEvaluation::mean_accuracy() const noexcept {
  if (rounds.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& round : rounds) acc += round.accuracy;
  return acc / static_cast<double>(rounds.size());
}

namespace {

RepeatedEvaluation run_rounds(
    const DetectorFactory& factory, const features::FeatureDataset& dataset,
    const std::vector<pipeline::SplitIndices>& splits, const EvalOptions& options) {
  RepeatedEvaluation result;
  result.rounds.reserve(splits.size());
  for (const auto& split : splits) {
    const auto train = dataset.select_rows(split.train);
    const auto test = dataset.select_rows(split.test);
    auto detector = factory();
    result.rounds.push_back(evaluate_fold(*detector, train.X, train.labels,
                                          test.X, test.labels, options));
  }
  return result;
}

}  // namespace

RepeatedEvaluation repeated_prodigy_eval(const DetectorFactory& factory,
                                         const features::FeatureDataset& dataset,
                                         std::size_t rounds, std::uint64_t seed,
                                         const EvalOptions& options,
                                         double train_fraction,
                                         double train_anomaly_ratio) {
  util::Rng rng(seed);
  std::vector<pipeline::SplitIndices> splits;
  splits.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    splits.push_back(pipeline::prodigy_split(dataset.labels, train_fraction,
                                             train_anomaly_ratio, rng()));
  }
  return run_rounds(factory, dataset, splits, options);
}

RepeatedEvaluation kfold_eval(const DetectorFactory& factory,
                              const features::FeatureDataset& dataset,
                              std::size_t folds, std::uint64_t seed,
                              const EvalOptions& options) {
  const auto splits = pipeline::stratified_kfold(dataset.labels, folds, seed);
  return run_rounds(factory, dataset, splits, options);
}

}  // namespace prodigy::eval
