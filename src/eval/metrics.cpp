#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace prodigy::eval {

ConfusionMatrix confusion_matrix(const std::vector<int>& truth,
                                 const std::vector<int>& predictions) {
  if (truth.size() != predictions.size()) {
    throw std::invalid_argument("confusion_matrix: size mismatch");
  }
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const bool actual = truth[i] != 0;
    const bool predicted = predictions[i] != 0;
    if (actual && predicted) ++cm.true_positive;
    else if (!actual && !predicted) ++cm.true_negative;
    else if (!actual && predicted) ++cm.false_positive;
    else ++cm.false_negative;
  }
  return cm;
}

double accuracy(const ConfusionMatrix& cm) noexcept {
  const auto total = cm.total();
  if (total == 0) return 0.0;
  return static_cast<double>(cm.true_positive + cm.true_negative) /
         static_cast<double>(total);
}

double precision(const ConfusionMatrix& cm) noexcept {
  const auto denom = cm.true_positive + cm.false_positive;
  return denom == 0 ? 0.0
                    : static_cast<double>(cm.true_positive) / static_cast<double>(denom);
}

double recall(const ConfusionMatrix& cm) noexcept {
  const auto denom = cm.true_positive + cm.false_negative;
  return denom == 0 ? 0.0
                    : static_cast<double>(cm.true_positive) / static_cast<double>(denom);
}

double f1_score(const ConfusionMatrix& cm) noexcept {
  const double p = precision(cm);
  const double r = recall(cm);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double macro_f1(const ConfusionMatrix& cm) noexcept {
  // F1 of the negative class is the F1 of the positive class of the
  // label-swapped problem.
  const ConfusionMatrix swapped{cm.true_negative, cm.true_positive,
                                cm.false_negative, cm.false_positive};
  return 0.5 * (f1_score(cm) + f1_score(swapped));
}

double macro_f1(const std::vector<int>& truth, const std::vector<int>& predictions) {
  return macro_f1(confusion_matrix(truth, predictions));
}

double accuracy(const std::vector<int>& truth, const std::vector<int>& predictions) {
  return accuracy(confusion_matrix(truth, predictions));
}

std::vector<int> predictions_at_threshold(const std::vector<double>& scores,
                                          double threshold) {
  std::vector<int> predictions(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    predictions[i] = scores[i] > threshold ? 1 : 0;
  }
  return predictions;
}

ThresholdSearch best_threshold_by_f1(const std::vector<double>& scores,
                                     const std::vector<int>& truth,
                                     std::size_t steps) {
  if (scores.empty() || scores.size() != truth.size()) {
    throw std::invalid_argument("best_threshold_by_f1: bad inputs");
  }
  // Exact sweep over the sorted scores (the paper iterates normalized scores
  // in 0.001 steps; an equidistant grid breaks down when a few extreme
  // outlier scores stretch the range, so we sweep candidate thresholds at
  // every observed score instead and update the confusion counts
  // incrementally).  `steps` bounds nothing here; kept for API stability.
  (void)steps;

  // A NaN score compares false against every threshold, so `score > t` in
  // predictions_at_threshold / ProdigyDetector::predict classifies it healthy
  // no matter what t is.  Keep the sweep consistent with that: NaN rows sit
  // permanently in the predicted-healthy column of the confusion matrix and
  // are excluded from the candidate-threshold walk.  (They previously wedged
  // the tie-grouping loop below — NaN == NaN is false, so it never advanced.)
  std::vector<std::size_t> order;
  order.reserve(scores.size());
  ConfusionMatrix cm{0, 0, 0, 0};
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (std::isnan(scores[i])) {
      if (truth[i] != 0) ++cm.false_negative;
      else ++cm.true_negative;
    } else {
      order.push_back(i);
    }
  }
  std::sort(order.begin(), order.end(), [&scores](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  // Start with threshold above every score: nothing predicted anomalous.
  for (const std::size_t i : order) {
    if (truth[i] != 0) ++cm.false_negative;
    else ++cm.true_negative;
  }
  if (order.empty()) {
    // Every score is NaN: any threshold yields the all-healthy prediction.
    return ThresholdSearch{std::numeric_limits<double>::infinity(), macro_f1(cm)};
  }
  const double max_score = scores[order.front()];
  ThresholdSearch best{std::nextafter(max_score, max_score + 1.0), macro_f1(cm)};

  for (std::size_t i = 0; i < order.size();) {
    // Lower the threshold just below the next distinct score value; all ties
    // flip to predicted-anomalous together.
    const double value = scores[order[i]];
    while (i < order.size() && scores[order[i]] == value) {
      if (truth[order[i]] != 0) {
        ++cm.true_positive;
        --cm.false_negative;
      } else {
        ++cm.false_positive;
        --cm.true_negative;
      }
      ++i;
    }
    const double threshold =
        i < order.size() ? 0.5 * (value + scores[order[i]])
                         : std::nextafter(value, value - 1.0);
    const double f1 = macro_f1(cm);
    if (f1 > best.best_macro_f1) {
      best.best_macro_f1 = f1;
      best.best_threshold = threshold;
    }
  }
  return best;
}

}  // namespace prodigy::eval
