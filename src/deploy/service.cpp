#include "deploy/service.hpp"

#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

#include <cstdio>
#include <stdexcept>

namespace prodigy::deploy {

AnalyticsService::AnalyticsService(const DsosStore& store, core::ModelBundle bundle,
                                   pipeline::PreprocessOptions preprocess,
                                   bool explain, comte::ComteConfig explanations)
    : store_(store), bundle_(std::move(bundle)), preprocess_(preprocess),
      explain_(explain), explanations_(explanations) {}

void AnalyticsService::build_explainer_context(
    const features::FeatureDataset& train_data) {
  explain_train_ = bundle_.transform_full(train_data.X);
  explain_labels_ = train_data.labels;
  std::vector<std::size_t> healthy;
  for (std::size_t i = 0; i < explain_labels_.size(); ++i) {
    if (explain_labels_[i] == 0) healthy.push_back(i);
  }
  const auto healthy_scores =
      bundle_.detector.score(explain_train_.select_rows(healthy));
  probability_scale_ = comte::ThresholdModelAdapter::estimate_scale(healthy_scores);
}

JobAnalysis AnalyticsService::analyze_job(std::int64_t job_id) const {
  util::Timer timer;
  JobAnalysis analysis;
  analysis.job_id = job_id;
  util::MetricsRegistry::global().counter("prodigy_deploy_requests_total").increment();

  double query_s = 0.0, features_s = 0.0, score_s = 0.0, verdicts_s = 0.0;

  util::StageTimer query_timer("deploy.request.query", &query_s);
  const telemetry::JobTelemetry job = store_.query_job(job_id);
  query_timer.stop();
  analysis.app = job.app;

  // DataGenerator/DataPipeline: preprocess + feature extraction.
  util::StageTimer features_timer("deploy.request.features", &features_s);
  std::vector<telemetry::JobTelemetry> jobs{job};
  const features::FeatureDataset dataset =
      pipeline::DataPipeline::build_from_jobs(jobs, preprocess_);
  features_timer.stop();

  // AnomalyDetector: column selection + scaler + model.
  util::StageTimer score_timer("deploy.request.score", &score_s);
  const tensor::Matrix model_input = bundle_.transform_full(dataset.X);
  const auto scores = bundle_.detector.score(model_input);
  const double threshold = bundle_.detector.threshold();
  score_timer.stop();

  // Verdict assembly, including CoMTE explanations for anomalous nodes.
  util::StageTimer verdicts_timer("deploy.request.verdicts", &verdicts_s);
  std::optional<comte::ThresholdModelAdapter> adapter;
  std::optional<comte::ComteExplainer> explainer;
  if (explain_ && explain_train_.rows() > 0) {
    adapter.emplace(bundle_.detector, threshold, probability_scale_);
    explainer.emplace(*adapter, explain_train_, explain_labels_,
                      bundle_.metadata.feature_names, explanations_);
  }

  analysis.nodes.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    NodeVerdict verdict;
    verdict.component_id = dataset.meta[i].component_id;
    verdict.score = scores[i];
    verdict.threshold = threshold;
    verdict.anomalous = scores[i] > threshold;
    if (verdict.anomalous) {
      util::MetricsRegistry::global()
          .counter("prodigy_deploy_anomalous_nodes_total")
          .increment();
    }
    if (verdict.anomalous && explainer) {
      verdict.explanation = explainer->explain_optimized(model_input.row(i));
    }
    analysis.nodes.push_back(std::move(verdict));
  }
  verdicts_timer.stop();

  analysis.stages = {{"query", query_s},
                     {"features", features_s},
                     {"score", score_s},
                     {"verdicts", verdicts_s}};
  analysis.seconds = timer.elapsed_seconds();
  return analysis;
}

NodeVerdict AnalyticsService::analyze_node(std::int64_t job_id,
                                           std::int64_t component_id) const {
  const JobAnalysis analysis = analyze_job(job_id);
  for (const auto& node : analysis.nodes) {
    if (node.component_id == component_id) return node;
  }
  throw std::out_of_range("analyze_node: component " +
                          std::to_string(component_id) + " not in job " +
                          std::to_string(job_id));
}

std::string render_markdown_report(const JobAnalysis& analysis) {
  std::string out;
  out += "## Anomaly detection: job " + std::to_string(analysis.job_id) + " (" +
         analysis.app + ")\n\n";
  std::size_t anomalous = 0;
  for (const auto& node : analysis.nodes) anomalous += node.anomalous ? 1 : 0;
  out += std::to_string(anomalous) + " of " + std::to_string(analysis.nodes.size()) +
         " compute nodes anomalous; analyzed in " +
         std::to_string(analysis.seconds) + " s\n\n";
  out += "| component | verdict | score | threshold |\n";
  out += "|---|---|---|---|\n";
  for (const auto& node : analysis.nodes) {
    out += "| " + std::to_string(node.component_id) + " | " +
           (node.anomalous ? "**ANOMALOUS**" : "healthy") + " | " +
           std::to_string(node.score) + " | " + std::to_string(node.threshold) +
           " |\n";
  }
  if (!analysis.stages.empty()) {
    out += "\n### Stage latency breakdown\n\n";
    out += "| stage | seconds | share |\n";
    out += "|---|---|---|\n";
    for (const auto& stage : analysis.stages) {
      const double share =
          analysis.seconds > 0.0 ? 100.0 * stage.seconds / analysis.seconds : 0.0;
      char share_text[32];
      std::snprintf(share_text, sizeof(share_text), "%.1f%%", share);
      out += "| " + stage.stage + " | " + std::to_string(stage.seconds) + " | " +
             share_text + " |\n";
    }
  }
  for (const auto& node : analysis.nodes) {
    if (!node.explanation) continue;
    out += "\n### Why component " + std::to_string(node.component_id) +
           " looks anomalous\n";
    const auto& explanation = *node.explanation;
    if (explanation.changes.empty()) {
      out += "- no counterfactual found within the search budget\n";
      continue;
    }
    for (const auto& change : explanation.changes) {
      out += "- would be classified healthy if `" + change.metric + "` were " +
             (change.mean_delta < 0 ? "lower" : "higher") + "\n";
    }
    out += "- P(anomalous) " + std::to_string(explanation.original_probability) +
           " -> " + std::to_string(explanation.final_probability) +
           (explanation.success ? " (flips to healthy)\n" : " (no flip)\n");
  }
  return out;
}

AnalyticsService AnalyticsService::train_from_store(
    const DsosStore& store, const std::vector<std::int64_t>& train_jobs,
    const TrainFromStoreOptions& options, bool explain) {
  if (train_jobs.empty()) {
    throw std::invalid_argument("train_from_store: no training jobs");
  }
  std::vector<telemetry::JobTelemetry> jobs;
  jobs.reserve(train_jobs.size());
  for (const auto job_id : train_jobs) jobs.push_back(store.query_job(job_id));

  util::StageTimer features_timer("deploy.train.features");
  const features::FeatureDataset dataset =
      pipeline::DataPipeline::build_from_jobs(jobs, options.preprocess);
  features_timer.stop();

  // Offline feature selection (Fig. 1, stage 1): chi-square needs both
  // classes; a purely-healthy store falls back to variance ranking.
  util::StageTimer select_timer("deploy.train.select");
  features::SelectionResult selection;
  const std::size_t anomalous = dataset.anomalous_count();
  if (anomalous > 0 && anomalous < dataset.size()) {
    pipeline::Scaler scaler(pipeline::ScalerKind::MinMax);
    features::FeatureDataset scaled = dataset;
    scaled.X = scaler.fit_transform(dataset.X);
    selection = features::select_features_chi2(scaled, options.top_k_features);
    util::log_info("train_from_store: chi-square selection over ", anomalous,
                   " anomalous / ", dataset.size(), " total samples");
  } else {
    selection = features::select_features_variance(dataset, options.top_k_features);
    util::log_info("train_from_store: variance selection (single-class store)");
  }
  select_timer.stop();

  util::StageTimer fit_timer("deploy.train.fit");
  const core::ModelTrainer trainer(options.model);
  core::ModelBundle bundle =
      trainer.train(dataset, selection.selected, options.system_name);
  fit_timer.stop();

  AnalyticsService service(store, std::move(bundle), options.preprocess, explain,
                           options.explanations);
  if (explain) service.build_explainer_context(dataset);
  return service;
}

}  // namespace prodigy::deploy
