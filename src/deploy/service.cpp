#include "deploy/service.hpp"

#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

#include <atomic>
#include <cstdio>
#include <stdexcept>

namespace prodigy::deploy {

namespace {
// Process-unique bundle stamps so result-cache keys from different services
// (e.g. after a retrain) can never collide.
std::uint64_t next_bundle_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

AnalyticsService::AnalyticsService(const DsosStore& store, core::ModelBundle bundle,
                                   pipeline::PreprocessOptions preprocess,
                                   bool explain, comte::ComteConfig explanations,
                                   std::size_t cache_capacity)
    : store_(store), bundle_mutex_(std::make_unique<std::mutex>()),
      state_(std::make_shared<const BundleState>(
          BundleState{std::move(bundle), next_bundle_id()})),
      preprocess_(preprocess), explain_(explain),
      cache_(std::make_unique<AnalysisCache>(
          cache_capacity,
          &util::MetricsRegistry::global().counter("prodigy_deploy_cache_hits_total"),
          &util::MetricsRegistry::global().counter(
              "prodigy_deploy_cache_misses_total"),
          &util::MetricsRegistry::global().counter(
              "prodigy_deploy_cache_evictions_total"))),
      explanations_(explanations) {}

std::shared_ptr<const AnalyticsService::BundleState>
AnalyticsService::bundle_state() const {
  std::lock_guard lock(*bundle_mutex_);
  return state_;
}

std::uint64_t AnalyticsService::bundle_id() const { return bundle_state()->id; }

void AnalyticsService::set_bundle(core::ModelBundle next) {
  auto state = std::make_shared<const BundleState>(
      BundleState{std::move(next), next_bundle_id()});
  std::lock_guard lock(*bundle_mutex_);
  state_ = std::move(state);
  // The explainer context was built in the OLD bundle's model-input space;
  // reusing it against the new model would explain with mismatched
  // dimensions.  Queries fall back to score-only verdicts after a swap.
  explain_ = false;
}

void AnalyticsService::build_explainer_context(
    const features::FeatureDataset& train_data) {
  const auto state = bundle_state();
  explain_train_ = state->bundle.transform_full(train_data.X);
  explain_labels_ = train_data.labels;
  std::vector<std::size_t> healthy;
  for (std::size_t i = 0; i < explain_labels_.size(); ++i) {
    if (explain_labels_[i] == 0) healthy.push_back(i);
  }
  const auto healthy_scores =
      state->bundle.detector.score(explain_train_.select_rows(healthy));
  probability_scale_ = comte::ThresholdModelAdapter::estimate_scale(healthy_scores);
}

JobAnalysis AnalyticsService::analyze_job(std::int64_t job_id) const {
  util::Timer timer;
  auto& registry = util::MetricsRegistry::global();
  registry.counter("prodigy_deploy_requests_total").increment();

  // Load the served model exactly once for the whole request: scoring,
  // thresholds, explanations, and the cache key below all come from this
  // state even if set_bundle() swaps concurrently (the shared_ptr keeps the
  // old bundle alive until the request finishes).
  std::shared_ptr<const BundleState> state;
  bool explain = false;
  {
    std::lock_guard lock(*bundle_mutex_);
    state = state_;
    explain = explain_;
  }
  const core::ModelBundle& bundle = state->bundle;
  const std::uint64_t bundle_id = state->id;

  // Fast path: a finished analysis for this exact (job, generation, bundle)
  // triple.  The generation probe takes only a shared DSOS lock; if a writer
  // re-ingests between the probe and the lookup we merely miss and recompute.
  if (auto cached =
          cache_->get({job_id, store_.job_generation(job_id), bundle_id})) {
    JobAnalysis analysis = **cached;
    analysis.from_cache = true;
    analysis.seconds = timer.elapsed_seconds();
    return analysis;
  }

  JobAnalysis analysis;
  analysis.job_id = job_id;

  double query_s = 0.0, features_s = 0.0, score_s = 0.0, verdicts_s = 0.0;
  util::ThreadPool& pool = pool_ != nullptr ? *pool_ : util::ThreadPool::global();

  // The generation stamp is read under the same lock as the telemetry, so
  // the cached entry below can never pair new data with an old stamp.
  std::uint64_t generation = 0;
  util::StageTimer query_timer("deploy.request.query", &query_s);
  const telemetry::JobTelemetry job = store_.query_job(job_id, &generation);
  query_timer.stop();
  analysis.app = job.app;
  analysis.store_generation = generation;

  // DataGenerator/DataPipeline: per-node preprocess + feature extraction,
  // fanned out across the pool (rows written by index -> deterministic).
  util::StageTimer features_timer("deploy.request.features", &features_s);
  std::vector<telemetry::JobTelemetry> jobs{job};
  const features::FeatureDataset dataset =
      pipeline::DataPipeline::build_from_jobs(jobs, preprocess_, &pool);
  features_timer.stop();

  // AnomalyDetector: column selection + scaler + model (batched, serial
  // w.r.t. nodes so scores match the single-threaded reference exactly).
  util::StageTimer score_timer("deploy.request.score", &score_s);
  const tensor::Matrix model_input = bundle.transform_full(dataset.X);
  const auto scores = bundle.detector.score(model_input);
  const double threshold = bundle.detector.threshold();
  score_timer.stop();

  // Verdict assembly, including CoMTE explanations for anomalous nodes.
  // Each node's verdict is independent (CoMTE search is seeded per call), so
  // the loop fans out; per-node timings land in a per-index slot and are
  // merged into the registry after the join, keeping the metrics race-free.
  util::StageTimer verdicts_timer("deploy.request.verdicts", &verdicts_s);
  std::optional<comte::ThresholdModelAdapter> adapter;
  std::optional<comte::ComteExplainer> explainer;
  if (explain && explain_train_.rows() > 0) {
    adapter.emplace(bundle.detector, threshold, probability_scale_);
    explainer.emplace(*adapter, explain_train_, explain_labels_,
                      bundle.metadata.feature_names, explanations_);
  }

  const std::size_t node_count = dataset.size();
  analysis.nodes.resize(node_count);
  std::vector<double> node_seconds(node_count, 0.0);
  std::atomic<std::uint64_t> anomalous_nodes{0};
  util::parallel_for(pool, 0, node_count, [&](std::size_t i) {
    util::Timer node_timer;
    NodeVerdict verdict;
    verdict.component_id = dataset.meta[i].component_id;
    verdict.score = scores[i];
    verdict.threshold = threshold;
    verdict.anomalous = scores[i] > threshold;
    if (verdict.anomalous) {
      anomalous_nodes.fetch_add(1, std::memory_order_relaxed);
      if (explainer) {
        verdict.explanation = explainer->explain_optimized(model_input.row(i));
      }
    }
    analysis.nodes[i] = std::move(verdict);
    node_seconds[i] = node_timer.elapsed_seconds();
  });
  verdicts_timer.stop();

  // Merge the per-thread measurements now that the workers are done.
  registry.counter("prodigy_deploy_anomalous_nodes_total")
      .increment(anomalous_nodes.load(std::memory_order_relaxed));
  auto& node_histogram =
      registry.histogram("prodigy_stage_deploy_request_node_verdict_seconds");
  for (const double seconds : node_seconds) node_histogram.observe(seconds);

  analysis.stages = {{"query", query_s},
                     {"features", features_s},
                     {"score", score_s},
                     {"verdicts", verdicts_s}};
  analysis.seconds = timer.elapsed_seconds();
  cache_->put({job_id, generation, bundle_id},
              std::make_shared<const JobAnalysis>(analysis));
  return analysis;
}

NodeVerdict AnalyticsService::analyze_node(std::int64_t job_id,
                                           std::int64_t component_id) const {
  const JobAnalysis analysis = analyze_job(job_id);
  for (const auto& node : analysis.nodes) {
    if (node.component_id == component_id) return node;
  }
  throw std::out_of_range("analyze_node: component " +
                          std::to_string(component_id) + " not in job " +
                          std::to_string(job_id));
}

std::string render_markdown_report(const JobAnalysis& analysis) {
  std::string out;
  out += "## Anomaly detection: job " + std::to_string(analysis.job_id) + " (" +
         analysis.app + ")\n\n";
  std::size_t anomalous = 0;
  for (const auto& node : analysis.nodes) anomalous += node.anomalous ? 1 : 0;
  out += std::to_string(anomalous) + " of " + std::to_string(analysis.nodes.size()) +
         " compute nodes anomalous; analyzed in " +
         std::to_string(analysis.seconds) + " s" +
         (analysis.from_cache ? " (cache hit)" : "") + "\n\n";
  out += "| component | verdict | score | threshold |\n";
  out += "|---|---|---|---|\n";
  for (const auto& node : analysis.nodes) {
    out += "| " + std::to_string(node.component_id) + " | " +
           (node.anomalous ? "**ANOMALOUS**" : "healthy") + " | " +
           std::to_string(node.score) + " | " + std::to_string(node.threshold) +
           " |\n";
  }
  if (!analysis.stages.empty()) {
    out += "\n### Stage latency breakdown\n\n";
    out += "| stage | seconds | share |\n";
    out += "|---|---|---|\n";
    for (const auto& stage : analysis.stages) {
      const double share =
          analysis.seconds > 0.0 ? 100.0 * stage.seconds / analysis.seconds : 0.0;
      char share_text[32];
      std::snprintf(share_text, sizeof(share_text), "%.1f%%", share);
      out += "| " + stage.stage + " | " + std::to_string(stage.seconds) + " | " +
             share_text + " |\n";
    }
  }
  for (const auto& node : analysis.nodes) {
    if (!node.explanation) continue;
    out += "\n### Why component " + std::to_string(node.component_id) +
           " looks anomalous\n";
    const auto& explanation = *node.explanation;
    if (explanation.changes.empty()) {
      out += "- no counterfactual found within the search budget\n";
      continue;
    }
    for (const auto& change : explanation.changes) {
      out += "- would be classified healthy if `" + change.metric + "` were " +
             (change.mean_delta < 0 ? "lower" : "higher") + "\n";
    }
    out += "- P(anomalous) " + std::to_string(explanation.original_probability) +
           " -> " + std::to_string(explanation.final_probability) +
           (explanation.success ? " (flips to healthy)\n" : " (no flip)\n");
  }
  return out;
}

AnalyticsService AnalyticsService::train_from_store(
    const DsosStore& store, const std::vector<std::int64_t>& train_jobs,
    const TrainFromStoreOptions& options, bool explain) {
  if (train_jobs.empty()) {
    throw std::invalid_argument("train_from_store: no training jobs");
  }
  std::vector<telemetry::JobTelemetry> jobs;
  jobs.reserve(train_jobs.size());
  for (const auto job_id : train_jobs) jobs.push_back(store.query_job(job_id));

  util::StageTimer features_timer("deploy.train.features");
  const features::FeatureDataset dataset =
      pipeline::DataPipeline::build_from_jobs(jobs, options.preprocess);
  features_timer.stop();

  // Offline feature selection (Fig. 1, stage 1): chi-square needs both
  // classes; a purely-healthy store falls back to variance ranking.
  util::StageTimer select_timer("deploy.train.select");
  features::SelectionResult selection;
  const std::size_t anomalous = dataset.anomalous_count();
  if (anomalous > 0 && anomalous < dataset.size()) {
    pipeline::Scaler scaler(pipeline::ScalerKind::MinMax);
    features::FeatureDataset scaled = dataset;
    scaled.X = scaler.fit_transform(dataset.X);
    selection = features::select_features_chi2(scaled, options.top_k_features);
    util::log_info("train_from_store: chi-square selection over ", anomalous,
                   " anomalous / ", dataset.size(), " total samples");
  } else {
    selection = features::select_features_variance(dataset, options.top_k_features);
    util::log_info("train_from_store: variance selection (single-class store)");
  }
  select_timer.stop();

  util::StageTimer fit_timer("deploy.train.fit");
  const core::ModelTrainer trainer(options.model);
  core::ModelBundle bundle =
      trainer.train(dataset, selection.selected, options.system_name);
  fit_timer.stop();

  AnalyticsService service(store, std::move(bundle), options.preprocess, explain,
                           options.explanations, options.cache_capacity);
  if (explain) service.build_explainer_context(dataset);
  return service;
}

}  // namespace prodigy::deploy
