// The analytics pipeline of Figures 2 and 4: a user supplies a job ID and
// selects the anomaly-detection dashboard; the backend calls DataGenerator ->
// DataPipeline -> AnomalyDetector, returns one binary verdict per compute
// node, and attaches CoMTE counterfactual explanations to anomalous
// predictions.  Offline training (Fig. 3) runs through train_from_store.
#pragma once

#include "comte/comte.hpp"
#include "core/model_trainer.hpp"
#include "deploy/dsos.hpp"
#include "pipeline/data_pipeline.hpp"

#include <memory>
#include <optional>

namespace prodigy::deploy {

struct NodeVerdict {
  std::int64_t component_id = 0;
  bool anomalous = false;
  double score = 0.0;     // reconstruction error
  double threshold = 0.0;
  std::optional<comte::Explanation> explanation;
};

/// One entry of the per-request latency breakdown: how long one contiguous
/// stage of analyze_job took.  The stages cover the whole request, so their
/// seconds sum to ~JobAnalysis::seconds.
struct StageLatency {
  std::string stage;
  double seconds = 0.0;
};

struct JobAnalysis {
  std::int64_t job_id = 0;
  std::string app;
  std::vector<NodeVerdict> nodes;
  double seconds = 0.0;  // end-to-end request latency
  std::vector<StageLatency> stages;  // query / features / score / verdicts
};

struct TrainFromStoreOptions {
  pipeline::PreprocessOptions preprocess;
  core::ProdigyConfig model;
  std::size_t top_k_features = 2000;  // paper's best (§5.4.3)
  std::string system_name = "Eclipse";
  /// Counterfactual search budget; strong anomalies (e.g. a full memleak)
  /// genuinely require several substituted metrics to flip.
  comte::ComteConfig explanations{/*max_metrics=*/12, /*distractor_candidates=*/5,
                                  /*restarts=*/3};
};

class AnalyticsService {
 public:
  /// `store` must outlive the service.  When `explain` is true, anomalous
  /// node verdicts carry CoMTE explanations (built from the bundle's
  /// training-space data captured at train time).
  AnalyticsService(const DsosStore& store, core::ModelBundle bundle,
                   pipeline::PreprocessOptions preprocess, bool explain,
                   comte::ComteConfig explanations = {});

  /// The Grafana request: job ID in, per-node verdicts out.
  JobAnalysis analyze_job(std::int64_t job_id) const;

  /// Node-level analysis (paper: "job- and node-level analysis"): the
  /// verdict for one compute node of a job.  Throws std::out_of_range if the
  /// component is not part of the job.
  NodeVerdict analyze_node(std::int64_t job_id, std::int64_t component_id) const;

  const core::ModelBundle& bundle() const noexcept { return bundle_; }

  /// Offline training flow (Fig. 3): builds the feature dataset from the
  /// given stored jobs, selects efficient features (chi-square when both
  /// classes are present, variance ranking otherwise), trains the VAE on the
  /// healthy rows, and returns the service wired to the fresh bundle.
  static AnalyticsService train_from_store(const DsosStore& store,
                                           const std::vector<std::int64_t>& train_jobs,
                                           const TrainFromStoreOptions& options,
                                           bool explain = true);

 private:
  void build_explainer_context(const features::FeatureDataset& train_data);

  const DsosStore& store_;
  core::ModelBundle bundle_;
  pipeline::PreprocessOptions preprocess_;
  bool explain_;

  // Explainer context: scaled training matrix + labels in model-input space.
  tensor::Matrix explain_train_;
  std::vector<int> explain_labels_;
  double probability_scale_ = 1e-3;
  comte::ComteConfig explanations_;
};

/// Renders a job analysis as the markdown block the Grafana dashboard
/// displays (verdict table + explanation bullets per anomalous node).
std::string render_markdown_report(const JobAnalysis& analysis);

}  // namespace prodigy::deploy
