// The analytics pipeline of Figures 2 and 4: a user supplies a job ID and
// selects the anomaly-detection dashboard; the backend calls DataGenerator ->
// DataPipeline -> AnomalyDetector, returns one binary verdict per compute
// node, and attaches CoMTE counterfactual explanations to anomalous
// predictions.  Offline training (Fig. 3) runs through train_from_store.
#pragma once

#include "comte/comte.hpp"
#include "core/model_trainer.hpp"
#include "deploy/dsos.hpp"
#include "pipeline/data_pipeline.hpp"
#include "util/lru_cache.hpp"
#include "util/thread_pool.hpp"

#include <memory>
#include <mutex>
#include <optional>
#include <tuple>

namespace prodigy::deploy {

struct NodeVerdict {
  std::int64_t component_id = 0;
  bool anomalous = false;
  double score = 0.0;     // reconstruction error
  double threshold = 0.0;
  std::optional<comte::Explanation> explanation;
};

/// One entry of the per-request latency breakdown: how long one contiguous
/// stage of analyze_job took.  The stages cover the whole request, so their
/// seconds sum to ~JobAnalysis::seconds.
struct StageLatency {
  std::string stage;
  double seconds = 0.0;
};

struct JobAnalysis {
  std::int64_t job_id = 0;
  std::string app;
  std::vector<NodeVerdict> nodes;
  double seconds = 0.0;  // end-to-end request latency
  std::vector<StageLatency> stages;  // query / features / score / verdicts
  /// DSOS generation stamp of the telemetry this analysis was computed from
  /// (read under the same lock as the data, so the pair is consistent even
  /// with concurrent ingest).
  std::uint64_t store_generation = 0;
  bool from_cache = false;  // true when served from the result cache
};

struct TrainFromStoreOptions {
  pipeline::PreprocessOptions preprocess;
  core::ProdigyConfig model;
  std::size_t top_k_features = 2000;  // paper's best (§5.4.3)
  std::string system_name = "Eclipse";
  /// Counterfactual search budget; strong anomalies (e.g. a full memleak)
  /// genuinely require several substituted metrics to flip.
  comte::ComteConfig explanations{/*max_metrics=*/12, /*distractor_candidates=*/5,
                                  /*restarts=*/3};
  /// Result-cache capacity for the returned service (0 disables caching).
  std::size_t cache_capacity = 128;
};

class AnalyticsService {
 public:
  /// `store` must outlive the service.  When `explain` is true, anomalous
  /// node verdicts carry CoMTE explanations (built from the bundle's
  /// training-space data captured at train time).  `cache_capacity` bounds
  /// the LRU result cache (0 disables it).
  AnalyticsService(const DsosStore& store, core::ModelBundle bundle,
                   pipeline::PreprocessOptions preprocess, bool explain,
                   comte::ComteConfig explanations = {},
                   std::size_t cache_capacity = 128);

  /// The Grafana request: job ID in, per-node verdicts out.
  ///
  /// Thread-safe: per-node work (preprocess, feature extraction, verdict
  /// assembly, CoMTE search) fans out across the configured thread pool, and
  /// many client threads may call analyze_job concurrently.  Results are
  /// bit-identical for any pool size.  Repeated requests for a job whose
  /// DSOS generation has not changed are served from a bounded LRU cache
  /// keyed by (job id, store generation, bundle id); any re-ingest bumps the
  /// generation and therefore invalidates the cached entry.
  JobAnalysis analyze_job(std::int64_t job_id) const;

  /// Overrides the worker pool used for per-node fan-out (nullptr restores
  /// the process-global pool).  Intended for tests and benchmarks that pin
  /// the degree of parallelism.
  void set_thread_pool(util::ThreadPool* pool) noexcept { pool_ = pool; }

  /// Resizes the result cache; shrinking evicts least-recently-used entries
  /// and 0 disables caching entirely.
  void set_cache_capacity(std::size_t capacity) { cache_->set_capacity(capacity); }
  std::size_t cached_analyses() const { return cache_->size(); }

  /// Process-unique stamp of the model bundle this service serves; part of
  /// the result-cache key so verdicts from different bundles never mix.
  std::uint64_t bundle_id() const;

  /// Hot-swaps the served model (the online-adaptation path: a refit
  /// promoted by adapt::AdaptiveModelManager must also serve queries).
  /// Thread-safe against concurrent analyze_job calls: each request reads
  /// the (bundle, id) pair exactly once, and the fresh process-unique id
  /// guarantees no cache entry computed by any earlier bundle is ever
  /// served afterwards.  The explainer context keeps the training-time
  /// bundle's feature space, so swapping disables explanations.
  void set_bundle(core::ModelBundle next);

  /// Node-level analysis (paper: "job- and node-level analysis"): the
  /// verdict for one compute node of a job.  Throws std::out_of_range if the
  /// component is not part of the job.
  NodeVerdict analyze_node(std::int64_t job_id, std::int64_t component_id) const;

  /// The currently served bundle.  The reference stays valid while the
  /// returned state is the active one; callers that may race set_bundle()
  /// should prefer bundle_state().
  const core::ModelBundle& bundle() const { return bundle_state()->bundle; }

  /// Offline training flow (Fig. 3): builds the feature dataset from the
  /// given stored jobs, selects efficient features (chi-square when both
  /// classes are present, variance ranking otherwise), trains the VAE on the
  /// healthy rows, and returns the service wired to the fresh bundle.
  static AnalyticsService train_from_store(const DsosStore& store,
                                           const std::vector<std::int64_t>& train_jobs,
                                           const TrainFromStoreOptions& options,
                                           bool explain = true);

 private:
  // (job id, DSOS generation, bundle id) -> finished analysis.  Immutable
  // shared_ptr payloads keep hits copy-cheap and safe to hand out while other
  // threads insert or evict.
  using CacheKey = std::tuple<std::int64_t, std::uint64_t, std::uint64_t>;
  using AnalysisCache =
      util::LruCache<CacheKey, std::shared_ptr<const JobAnalysis>>;

  // The served model and its cache stamp travel together as one immutable
  // state: analyze_job loads the pointer once per request, so a concurrent
  // set_bundle can never pair a new bundle with an old id (or serve a torn
  // half-swapped model).  Old states stay alive until their last in-flight
  // request drops them.
  struct BundleState {
    core::ModelBundle bundle;
    std::uint64_t id = 0;
  };

  void build_explainer_context(const features::FeatureDataset& train_data);
  std::shared_ptr<const BundleState> bundle_state() const;

  const DsosStore& store_;
  // unique_ptr members keep the service movable (mutexes are not), which
  // train_from_store returning by value requires.
  mutable std::unique_ptr<std::mutex> bundle_mutex_;
  std::shared_ptr<const BundleState> state_;
  pipeline::PreprocessOptions preprocess_;
  bool explain_;
  util::ThreadPool* pool_ = nullptr;  // nullptr -> util::ThreadPool::global()
  // unique_ptr (not a direct member) so the service stays movable: the cache
  // owns a mutex, and train_from_store returns the service by value.
  mutable std::unique_ptr<AnalysisCache> cache_;

  // Explainer context: scaled training matrix + labels in model-input space.
  tensor::Matrix explain_train_;
  std::vector<int> explain_labels_;
  double probability_scale_ = 1e-3;
  comte::ComteConfig explanations_;
};

/// Renders a job analysis as the markdown block the Grafana dashboard
/// displays (verdict table + explanation bullets per anomalous node).
std::string render_markdown_report(const JobAnalysis& analysis);

}  // namespace prodigy::deploy
