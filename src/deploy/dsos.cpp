#include "deploy/dsos.hpp"

#include "util/metrics.hpp"

#include <stdexcept>

namespace prodigy::deploy {

namespace {
constexpr std::uint64_t kStoreMagic = 0x50524f4453544f52ULL;  // "PRODSTOR"

void write_node(util::BinaryWriter& writer, const telemetry::NodeSeries& node) {
  writer.write_i64(node.job_id);
  writer.write_i64(node.component_id);
  writer.write_string(node.app);
  writer.write_string(node.anomaly);
  writer.write_i64(node.label);
  writer.write_u64(node.values.rows());
  writer.write_u64(node.values.cols());
  writer.write_f64_vector(node.values.storage());
}

telemetry::NodeSeries read_node(util::BinaryReader& reader) {
  telemetry::NodeSeries node;
  node.job_id = reader.read_i64();
  node.component_id = reader.read_i64();
  node.app = reader.read_string();
  node.anomaly = reader.read_string();
  node.label = static_cast<int>(reader.read_i64());
  const auto rows = reader.read_u64();
  const auto cols = reader.read_u64();
  node.values = tensor::Matrix(rows, cols);
  node.values.storage() = reader.read_f64_vector();
  if (node.values.storage().size() != rows * cols) {
    throw std::runtime_error("DsosStore: corrupt node record");
  }
  return node;
}

}  // namespace

void DsosStore::ingest(const telemetry::JobTelemetry& job) {
  std::unique_lock lock(mutex_);
  job_apps_[job.job_id] = job.app;
  job_generation_[job.job_id] = ++generation_;
  for (const auto& node : job.nodes) {
    nodes_[{node.job_id, node.component_id}] = node;
  }
  util::MetricsRegistry::global().counter("prodigy_dsos_ingests_total").increment();
}

void DsosStore::ingest_node(const telemetry::NodeSeries& node) {
  std::unique_lock lock(mutex_);
  // Assign (not emplace): a re-ingested job must pick up the new app name,
  // exactly like whole-job ingest does.
  job_apps_[node.job_id] = node.app;
  job_generation_[node.job_id] = ++generation_;
  nodes_[{node.job_id, node.component_id}] = node;
  util::MetricsRegistry::global().counter("prodigy_dsos_ingests_total").increment();
}

void DsosStore::append_node(const telemetry::NodeSeries& delta) {
  std::unique_lock lock(mutex_);
  job_apps_[delta.job_id] = delta.app;
  job_generation_[delta.job_id] = ++generation_;
  const NodeKey key{delta.job_id, delta.component_id};
  const auto it = nodes_.find(key);
  if (it == nodes_.end()) {
    nodes_[key] = delta;
  } else {
    telemetry::NodeSeries& existing = it->second;
    if (existing.values.cols() != delta.values.cols()) {
      throw std::invalid_argument(
          "DsosStore::append_node: column mismatch for node " +
          std::to_string(delta.job_id) + "/" + std::to_string(delta.component_id) +
          " (" + std::to_string(existing.values.cols()) + " vs " +
          std::to_string(delta.values.cols()) + ")");
    }
    // Grow the series in place; identity/ground truth of the first insert is
    // authoritative (a live stream has no labels to contribute).
    tensor::Matrix grown(existing.values.rows() + delta.values.rows(),
                         existing.values.cols());
    std::copy(existing.values.data(),
              existing.values.data() + existing.values.size(), grown.data());
    std::copy(delta.values.data(), delta.values.data() + delta.values.size(),
              grown.data() + existing.values.size());
    existing.values = std::move(grown);
  }
  util::MetricsRegistry::global().counter("prodigy_dsos_appends_total").increment();
}

std::vector<std::int64_t> DsosStore::job_ids() const {
  std::shared_lock lock(mutex_);
  std::vector<std::int64_t> ids;
  ids.reserve(job_apps_.size());
  for (const auto& [id, app] : job_apps_) ids.push_back(id);
  return ids;
}

bool DsosStore::has_job(std::int64_t job_id) const {
  std::shared_lock lock(mutex_);
  return job_apps_.contains(job_id);
}

telemetry::JobTelemetry DsosStore::query_job(std::int64_t job_id,
                                             std::uint64_t* generation) const {
  util::StageTimer stage("deploy.dsos.query_job");
  std::shared_lock lock(mutex_);
  const auto app_it = job_apps_.find(job_id);
  if (app_it == job_apps_.end()) {
    throw std::out_of_range("DsosStore: unknown job " + std::to_string(job_id));
  }
  telemetry::JobTelemetry job;
  job.job_id = job_id;
  job.app = app_it->second;
  for (auto it = nodes_.lower_bound({job_id, INT64_MIN});
       it != nodes_.end() && it->first.first == job_id; ++it) {
    job.nodes.push_back(it->second);
  }
  if (generation != nullptr) {
    const auto gen_it = job_generation_.find(job_id);
    *generation = gen_it == job_generation_.end() ? 0 : gen_it->second;
  }
  return job;
}

std::vector<std::int64_t> DsosStore::components_of(std::int64_t job_id) const {
  std::shared_lock lock(mutex_);
  std::vector<std::int64_t> components;
  for (auto it = nodes_.lower_bound({job_id, INT64_MIN});
       it != nodes_.end() && it->first.first == job_id; ++it) {
    components.push_back(it->first.second);
  }
  return components;
}

telemetry::NodeSeries DsosStore::query_node(std::int64_t job_id,
                                            std::int64_t component_id) const {
  std::shared_lock lock(mutex_);
  const auto it = nodes_.find({job_id, component_id});
  if (it == nodes_.end()) {
    throw std::out_of_range("DsosStore: unknown node " + std::to_string(job_id) +
                            "/" + std::to_string(component_id));
  }
  return it->second;
}

std::uint64_t DsosStore::job_generation(std::int64_t job_id) const {
  std::shared_lock lock(mutex_);
  const auto it = job_generation_.find(job_id);
  return it == job_generation_.end() ? 0 : it->second;
}

std::uint64_t DsosStore::generation() const {
  std::shared_lock lock(mutex_);
  return generation_;
}

std::size_t DsosStore::job_count() const {
  std::shared_lock lock(mutex_);
  return job_apps_.size();
}

std::size_t DsosStore::datapoint_count() const {
  std::shared_lock lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, node] : nodes_) total += node.values.size();
  return total;
}

void DsosStore::save(const std::string& path) const {
  std::shared_lock lock(mutex_);
  util::BinaryWriter writer(path);
  writer.write_magic(kStoreMagic, 1);
  writer.write_u64(job_apps_.size());
  for (const auto& [id, app] : job_apps_) {
    writer.write_i64(id);
    writer.write_string(app);
  }
  writer.write_u64(nodes_.size());
  for (const auto& [key, node] : nodes_) write_node(writer, node);
}

DsosStore DsosStore::load(const std::string& path) {
  util::BinaryReader reader(path);
  reader.expect_magic(kStoreMagic, 1);
  DsosStore store;
  const auto job_count = reader.read_u64();
  for (std::uint64_t i = 0; i < job_count; ++i) {
    const auto id = reader.read_i64();
    store.job_apps_[id] = reader.read_string();
    store.job_generation_[id] = ++store.generation_;
  }
  const auto node_count = reader.read_u64();
  for (std::uint64_t i = 0; i < node_count; ++i) {
    auto node = read_node(reader);
    store.nodes_[{node.job_id, node.component_id}] = std::move(node);
  }
  return store;
}

}  // namespace prodigy::deploy
