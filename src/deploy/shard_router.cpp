#include "deploy/shard_router.hpp"

namespace prodigy::deploy {

namespace {

/// SplitMix64 finalizer: a full-avalanche 64-bit permutation.  Constants are
/// Stafford's Mix13 variant — part of the frozen contract (see header).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::uint64_t node_placement_hash(std::int64_t job_id,
                                  std::int64_t component_id) noexcept {
  // Two chained finalizer rounds with an odd-constant offset between them:
  // (job, component) and (component, job) hash independently, and sequential
  // component ids (the common fleet layout: node 0..N-1) avalanche apart.
  const auto a = static_cast<std::uint64_t>(job_id);
  const auto b = static_cast<std::uint64_t>(component_id);
  return mix64(mix64(a + 0x9e3779b97f4a7c15ULL) ^ (b + 0x9e3779b97f4a7c15ULL));
}

std::size_t shard_of(std::int64_t job_id, std::int64_t component_id,
                     std::size_t shard_count) noexcept {
  if (shard_count <= 1) return 0;
  // Fixed-point multiply (Lemire reduction) instead of `% shard_count`: no
  // modulo bias from the high bits and the mapping for shard_count == 2^k
  // uses the hash's top bits, which avalanche hardest.
  const std::uint64_t hash = node_placement_hash(job_id, component_id);
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(hash) * shard_count) >> 64);
}

}  // namespace prodigy::deploy
