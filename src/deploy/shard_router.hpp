// Node-hash shard placement for the fleet-scale analytics service: every
// (job, component) pair maps to exactly one of N shards, so per-node state
// (telemetry series, sliding windows, debounce history) never straddles a
// shard boundary.  Per-node online scoring is embarrassingly shardable
// (Borghesi et al., arXiv:1902.08447 run per-node detectors independently at
// fleet scale); the router is the only piece of global knowledge.
//
// The hash is FROZEN: tests/shard_router_test.cpp pins golden vectors so a
// change here cannot silently reshuffle a deployed fleet (a reshuffle would
// orphan every shard-local window and cache entry).  Change the constants
// only together with an explicit fleet-migration story and new goldens.
#pragma once

#include <cstddef>
#include <cstdint>

namespace prodigy::deploy {

/// Stable 64-bit mix of a node identity (SplitMix64 finalizer over the two
/// ids).  Deterministic across processes, platforms, and library versions —
/// never std::hash, whose value is implementation-defined.
std::uint64_t node_placement_hash(std::int64_t job_id,
                                  std::int64_t component_id) noexcept;

/// Maps a node to its owning shard in [0, shard_count).  shard_count == 0 is
/// treated as 1 (everything on shard 0).  Uniform over real node-ID corpora
/// (chi-square-tested) and stable: the same node always lands on the same
/// shard for a given shard count.
std::size_t shard_of(std::int64_t job_id, std::int64_t component_id,
                     std::size_t shard_count) noexcept;

}  // namespace prodigy::deploy
