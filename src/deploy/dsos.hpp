// DSOS stand-in (paper §4.1): the monitoring cluster's object store that
// continuously ingests ldmsd sampler data and answers job-scoped queries
// from the analytics pipeline.  In-memory with a binary file snapshot; keyed
// by (job_id, component_id) exactly as the paper's prepared frames are.
//
// Concurrency model: readers (dashboard queries) take a shared lock and run
// in parallel; writers (ldmsd ingest) take an exclusive lock.  Every ingest
// bumps a store-wide generation counter and stamps the touched job with it,
// so callers can key caches by (job, generation) and detect re-ingest
// without holding the lock across the whole analysis.
#pragma once

#include "telemetry/generator.hpp"
#include "util/serialize.hpp"

#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace prodigy::deploy {

class DsosStore {
 public:
  DsosStore() = default;

  // Movable (fresh mutex in the destination); not copyable.  The source is
  // locked exclusively while its maps are stolen so a move racing with
  // concurrent ingest never reads torn map internals.
  DsosStore(DsosStore&& other) noexcept {
    std::unique_lock lock(other.mutex_);
    nodes_ = std::move(other.nodes_);
    job_apps_ = std::move(other.job_apps_);
    job_generation_ = std::move(other.job_generation_);
    generation_ = other.generation_;
  }
  DsosStore& operator=(DsosStore&& other) noexcept {
    if (this != &other) {
      std::scoped_lock lock(mutex_, other.mutex_);
      nodes_ = std::move(other.nodes_);
      job_apps_ = std::move(other.job_apps_);
      job_generation_ = std::move(other.job_generation_);
      generation_ = other.generation_;
    }
    return *this;
  }
  DsosStore(const DsosStore&) = delete;
  DsosStore& operator=(const DsosStore&) = delete;

  /// Ingests one job's telemetry (all nodes).  Thread-safe; re-ingesting a
  /// job id replaces its data (aggregation restart semantics).
  void ingest(const telemetry::JobTelemetry& job);

  /// Ingests a single node series (streaming ldmsd aggregation path).
  /// Re-ingesting a (job, component) replaces that series wholesale.
  void ingest_node(const telemetry::NodeSeries& node);

  /// Appends the delta's rows to the (job, component) series, creating it
  /// when absent — how a streaming aggregator accumulates telemetry.  The
  /// delta's column count must match the existing series (throws
  /// std::invalid_argument otherwise).  When appending to an existing
  /// series, the original label/anomaly ground truth is kept; the app name
  /// is reassigned like ingest's.
  void append_node(const telemetry::NodeSeries& delta);

  std::vector<std::int64_t> job_ids() const;
  bool has_job(std::int64_t job_id) const;

  /// Full telemetry of one job; throws std::out_of_range if absent.  When
  /// `generation` is non-null it receives the job's generation stamp read
  /// under the same lock as the data, i.e. the data/generation pair is a
  /// consistent snapshot even with concurrent writers.
  telemetry::JobTelemetry query_job(std::int64_t job_id,
                                    std::uint64_t* generation = nullptr) const;

  /// Component ids attached to a job.
  std::vector<std::int64_t> components_of(std::int64_t job_id) const;

  /// One node's series; throws std::out_of_range if absent.
  telemetry::NodeSeries query_node(std::int64_t job_id,
                                   std::int64_t component_id) const;

  /// Monotonic per-job ingest stamp: 0 for unknown jobs, otherwise the value
  /// of the store-wide generation counter when the job was last written.
  std::uint64_t job_generation(std::int64_t job_id) const;

  /// Store-wide generation counter: total number of ingest operations.
  std::uint64_t generation() const;

  std::size_t job_count() const;
  /// Total stored readings (timestamps x metrics over all nodes).
  std::size_t datapoint_count() const;

  void save(const std::string& path) const;
  static DsosStore load(const std::string& path);

 private:
  using NodeKey = std::pair<std::int64_t, std::int64_t>;  // (job, component)

  mutable std::shared_mutex mutex_;
  std::map<NodeKey, telemetry::NodeSeries> nodes_;
  std::map<std::int64_t, std::string> job_apps_;
  std::map<std::int64_t, std::uint64_t> job_generation_;
  std::uint64_t generation_ = 0;
};

}  // namespace prodigy::deploy
