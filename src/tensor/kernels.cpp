// This translation unit is compiled with -ffp-contract=off (see
// src/CMakeLists.txt): with contraction allowed, a compiler targeting an
// FMA ISA could fuse `acc += a * b` in one loop body and not in another,
// and the bit-identity between full tiles, tail tiles, and the naive
// oracle — which the streaming-vs-batch equality tests rely on — would
// silently depend on codegen.  Disabling contraction here pins every path
// to mul-then-add rounding.
#include "tensor/kernels.hpp"

#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#if defined(PRODIGY_NO_SIMD)
#define PRODIGY_SIMD
#else
#define PRODIGY_SIMD _Pragma("omp simd")
#endif

namespace prodigy::tensor::kernels {

namespace {

// Register-tile shape: MR x NR accumulators live in registers across the
// whole k loop.  NR = 16 doubles spans four AVX2 (two AVX-512) vectors, so
// each loaded B row amortizes its loads over MR = 4 rows of A while the
// 4 x 16 accumulator block still fits the vector register file (8 zmm, or
// 16 of the 32 ymm that AVX-512VL provides; narrower ISAs spill some of the
// block to the stack, which the no-SIMD CI leg keeps honest).
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 16;
// Column-panel width for cache blocking: a packed k x kNc B panel stays L2
// resident while every row band of C streams across it.
constexpr std::size_t kNc = 512;
// Flop threshold (m*n*k) above which the row/column banding is worth the
// thread-pool dispatch.  Matches the historical ops.cpp threshold.
constexpr std::size_t kParallelFlops = std::size_t{1} << 20;

inline double activate(FusedAct act, double v) {
  switch (act) {
    case FusedAct::None:
      return v;
    case FusedAct::ReLU:
      // `v < 0 ? 0 : v` so NaN compares false and propagates, matching
      // nn::apply_activation.
      return v < 0.0 ? 0.0 : v;
    case FusedAct::Tanh:
      return std::tanh(v);
    case FusedAct::Sigmoid:
      return 1.0 / (1.0 + std::exp(-v));
  }
  return v;
}

// Computes acc[ii][jj] = sum over k (ascending) of a(ii, kk) * b(kk, jj)
// for ii < mr, jj < nr, where a(ii, kk) = a[ii*sa_row + kk*sa_col] and
// b(kk, jj) = b[kk*sb + jj] (B rows contiguous in jj, packed or direct).
// No zero-skip: 0 * NaN must stay NaN so corrupted activations propagate.
inline void micro_kernel(std::size_t mr, std::size_t nr, std::size_t k,
                         const double* a, std::size_t sa_row,
                         std::size_t sa_col, const double* b, std::size_t sb,
                         double acc[kMr][kNr]) {
  for (std::size_t ii = 0; ii < kMr; ++ii) {
    PRODIGY_SIMD
    for (std::size_t jj = 0; jj < kNr; ++jj) acc[ii][jj] = 0.0;
  }
  if (mr == kMr && nr == kNr) {
    // Full tile: fixed trip counts so the jj loops vectorize and the
    // accumulator block stays in registers.
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double* brow = b + kk * sb;
      for (std::size_t ii = 0; ii < kMr; ++ii) {
        const double av = a[ii * sa_row + kk * sa_col];
        PRODIGY_SIMD
        for (std::size_t jj = 0; jj < kNr; ++jj) acc[ii][jj] += av * brow[jj];
      }
    }
  } else {
    // Tail tile: same loop body (and, with -ffp-contract=off, the same
    // rounding) with runtime bounds.
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double* brow = b + kk * sb;
      for (std::size_t ii = 0; ii < mr; ++ii) {
        const double av = a[ii * sa_row + kk * sa_col];
        PRODIGY_SIMD
        for (std::size_t jj = 0; jj < nr; ++jj) acc[ii][jj] += av * brow[jj];
      }
    }
  }
}

// Commits an accumulator tile to C with the epilogue fused in while the
// tile is register/L1 hot: v = acc (+ C) (+ bias[j]); C = act(v).
template <FusedAct Act>
inline void commit_tile_impl(std::size_t mr, std::size_t nr,
                             const double acc[kMr][kNr], double* c,
                             std::size_t ldc, std::size_t j0,
                             const double* bias, bool accumulate) {
  for (std::size_t ii = 0; ii < mr; ++ii) {
    double* crow = c + ii * ldc + j0;
    if (accumulate) {
      PRODIGY_SIMD
      for (std::size_t jj = 0; jj < nr; ++jj) {
        double v = acc[ii][jj] + crow[jj];
        if (bias != nullptr) v += bias[j0 + jj];
        crow[jj] = activate(Act, v);
      }
    } else {
      PRODIGY_SIMD
      for (std::size_t jj = 0; jj < nr; ++jj) {
        double v = acc[ii][jj];
        if (bias != nullptr) v += bias[j0 + jj];
        crow[jj] = activate(Act, v);
      }
    }
  }
}

inline void commit_tile(std::size_t mr, std::size_t nr,
                        const double acc[kMr][kNr], double* c, std::size_t ldc,
                        std::size_t j0, const Epilogue& ep) {
  switch (ep.act) {
    case FusedAct::None:
      return commit_tile_impl<FusedAct::None>(mr, nr, acc, c, ldc, j0, ep.bias,
                                              ep.accumulate);
    case FusedAct::ReLU:
      return commit_tile_impl<FusedAct::ReLU>(mr, nr, acc, c, ldc, j0, ep.bias,
                                              ep.accumulate);
    case FusedAct::Tanh:
      return commit_tile_impl<FusedAct::Tanh>(mr, nr, acc, c, ldc, j0, ep.bias,
                                              ep.accumulate);
    case FusedAct::Sigmoid:
      return commit_tile_impl<FusedAct::Sigmoid>(mr, nr, acc, c, ldc, j0,
                                                 ep.bias, ep.accumulate);
  }
}

// Single-row fast path (m == 1): the streaming scorer's shape.  The tiled
// kernel's register blocking pays off only when several C rows reuse each
// loaded B row; with one output row a contiguous sweep over B wins.  Per-element
// numerics are unchanged: each C(j) is still the pure ascending-k sum,
// built from zero in a stack chunk (axpy) or a register (dot) and committed
// once through the epilogue, so bits match the tiled path and the oracle —
// including accumulate mode, which must add the finished sum onto C rather
// than accumulate in place.
void gemm_single_row(Layout layout, std::size_t n, std::size_t k,
                     const double* a, std::size_t lda, const double* b,
                     std::size_t ldb, double* c, const Epilogue& ep,
                     util::ThreadPool& tp) {
  constexpr std::size_t kChunk = 256;
  auto run_chunk = [&](std::size_t chunk) {
    const std::size_t j0 = chunk * kChunk;
    const std::size_t j1 = std::min(n, j0 + kChunk);
    const std::size_t w = j1 - j0;
    double buf[kChunk];
    if (layout == Layout::NT) {
      // Row of A against rows of B: contiguous dot products.
      for (std::size_t j = j0; j < j1; ++j) {
        const double* brow = b + j * ldb;
        double acc = 0.0;
        for (std::size_t kk = 0; kk < k; ++kk) acc += a[kk] * brow[kk];
        buf[j - j0] = acc;
      }
    } else {
      const std::size_t sa = layout == Layout::TN ? lda : 1;
      PRODIGY_SIMD
      for (std::size_t jj = 0; jj < w; ++jj) buf[jj] = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double av = a[kk * sa];
        const double* brow = b + kk * ldb + j0;
        PRODIGY_SIMD
        for (std::size_t jj = 0; jj < w; ++jj) buf[jj] += av * brow[jj];
      }
    }
    for (std::size_t jj = 0; jj < w; ++jj) {
      double v = buf[jj];
      if (ep.accumulate) v += c[j0 + jj];
      if (ep.bias != nullptr) v += ep.bias[j0 + jj];
      c[j0 + jj] = activate(ep.act, v);
    }
  };
  const std::size_t chunks = (n + kChunk - 1) / kChunk;
  if (n * k < kParallelFlops || chunks < 2 || tp.size() <= 1) {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) run_chunk(chunk);
  } else {
    util::parallel_for(tp, 0, chunks, run_chunk, 1);
  }
}

}  // namespace

double* Workspace::pack_a(std::size_t doubles) {
  if (a_.size() < doubles) a_.resize(doubles);
  return a_.data();
}

double* Workspace::pack_b(std::size_t doubles) {
  if (b_.size() < doubles) b_.resize(doubles);
  return b_.data();
}

Workspace& Workspace::tls() {
  thread_local Workspace ws;
  return ws;
}

void gemm(Layout layout, std::size_t m, std::size_t n, std::size_t k,
          const double* a, std::size_t lda, const double* b, std::size_t ldb,
          double* c, std::size_t ldc, const Epilogue& epilogue,
          util::ThreadPool* pool) {
  if (m == 0 || n == 0) return;

  util::ThreadPool& pool_ref =
      pool != nullptr ? *pool : util::ThreadPool::global();
  if (m == 1) {
    gemm_single_row(layout, n, k, a, lda, b, ldb, c, epilogue, pool_ref);
    return;
  }

  const std::size_t i_tiles = (m + kMr - 1) / kMr;
  const std::size_t j_tiles = (n + kNr - 1) / kNr;
  const std::size_t panel_tiles = kNc / kNr;

  // NT reads B column-wise, so its panels are always packed (the gather
  // makes every micro-kernel B row contiguous).  NN and TN read B in place:
  // their rows are already contiguous in jj, and for every layer shape this
  // model family uses the whole B operand fits in L2, so a pack pass only
  // adds traffic (measured: ~10-25% slower on the dense-forward shapes).
  // TN instead packs the strided A columns per row band below.
  const bool pack_b = k > 0 && layout == Layout::NT;

  util::ThreadPool& tp = pool_ref;
  const bool banded = m * n * k >= kParallelFlops && tp.size() > 1;

  // One i-tile of C against the j-tiles [t0, t1) of the current panel.
  auto run_i_tile = [&](std::size_t it, std::size_t t0, std::size_t t1,
                        const double* panel) {
    const std::size_t i0 = it * kMr;
    const std::size_t mr = std::min(kMr, m - i0);
    const double* aptr;
    std::size_t sa_row, sa_col;
    if (layout == Layout::TN) {
      // A is physically k x m; pack the mr columns [i0, i0+mr) into an
      // interleaved k x kMr panel so the k loop walks contiguously.
      double* pa = Workspace::tls().pack_a(std::max<std::size_t>(1, k) * kMr);
      for (std::size_t kk = 0; kk < k; ++kk) {
        for (std::size_t ii = 0; ii < mr; ++ii) {
          pa[kk * kMr + ii] = a[kk * lda + i0 + ii];
        }
      }
      aptr = pa;
      sa_row = 1;
      sa_col = kMr;
    } else {
      aptr = a + i0 * lda;
      sa_row = lda;
      sa_col = 1;
    }
    for (std::size_t t = t0; t < t1; ++t) {
      const std::size_t j0 = t * kNr;
      const std::size_t nr = std::min(kNr, n - j0);
      const double* bptr;
      std::size_t sb;
      if (panel != nullptr) {
        bptr = panel + (t - t0) * k * kNr;
        sb = kNr;
      } else {
        bptr = b + j0;
        sb = ldb;
      }
      double acc[kMr][kNr];
      micro_kernel(mr, nr, k, aptr, sa_row, sa_col, bptr, sb, acc);
      commit_tile(mr, nr, acc, c + i0 * ldc, ldc, j0, epilogue);
    }
  };

  for (std::size_t t0 = 0; t0 < j_tiles; t0 += panel_tiles) {
    const std::size_t t1 = std::min(j_tiles, t0 + panel_tiles);
    const double* panel = nullptr;
    if (pack_b) {
      double* pb = Workspace::tls().pack_b((t1 - t0) * k * kNr);
      for (std::size_t t = t0; t < t1; ++t) {
        const std::size_t j0 = t * kNr;
        const std::size_t nr = std::min(kNr, n - j0);
        double* dst = pb + (t - t0) * k * kNr;
        // Gather: packed(kk, jj) = B[(j0+jj)][kk].
        for (std::size_t jj = 0; jj < nr; ++jj) {
          const double* bcol = b + (j0 + jj) * ldb;
          for (std::size_t kk = 0; kk < k; ++kk) dst[kk * kNr + jj] = bcol[kk];
        }
      }
      panel = pb;
    }

    if (!banded) {
      for (std::size_t it = 0; it < i_tiles; ++it) run_i_tile(it, t0, t1, panel);
    } else if (i_tiles > 1) {
      // Band over row tiles: each C element is still the one ascending-k
      // sum computed by exactly one task, so any pool size gives identical
      // bits.  The shared packed panel is read-only inside the fan-out.
      util::parallel_for(
          tp, 0, i_tiles,
          [&](std::size_t it) { run_i_tile(it, t0, t1, panel); }, 1);
    } else {
      // Single row band but a wide panel (e.g. 1 x N streaming GEMM):
      // band over column tiles instead.
      util::parallel_for(
          tp, t0, t1, [&](std::size_t t) { run_i_tile(0, t, t + 1, panel); },
          1);
    }
  }
}

namespace {

void shapes(Layout layout, const Matrix& a, const Matrix& b, std::size_t& m,
            std::size_t& n, std::size_t& k, const char* op) {
  std::size_t inner_b = b.rows();
  switch (layout) {
    case Layout::NN:
      m = a.rows();
      k = a.cols();
      n = b.cols();
      break;
    case Layout::TN:
      m = a.cols();
      k = a.rows();
      n = b.cols();
      break;
    case Layout::NT:
      m = a.rows();
      k = a.cols();
      n = b.rows();
      inner_b = b.cols();
      break;
  }
  if (k != inner_b) {
    throw std::invalid_argument(std::string(op) + ": inner dimensions differ (" +
                                std::to_string(k) + " vs " +
                                std::to_string(inner_b) + ")");
  }
}

}  // namespace

void gemm(Layout layout, const Matrix& a, const Matrix& b, Matrix& c,
          const Epilogue& epilogue, util::ThreadPool* pool) {
  std::size_t m = 0, n = 0, k = 0;
  shapes(layout, a, b, m, n, k, "kernels::gemm");
  if (epilogue.accumulate) {
    if (c.rows() != m || c.cols() != n) {
      throw std::invalid_argument("kernels::gemm: accumulate shape mismatch");
    }
  } else {
    c.resize_for_overwrite(m, n);
  }
  gemm(layout, m, n, k, a.data(), a.cols(), b.data(), b.cols(), c.data(),
       c.cols(), epilogue, pool);
}

void dense_forward(const Matrix& x, const Matrix& w,
                   std::span<const double> bias, FusedAct act, Matrix& out) {
  if (!bias.empty() && bias.size() != w.cols()) {
    throw std::invalid_argument("kernels::dense_forward: bias length mismatch");
  }
  Epilogue ep;
  ep.bias = bias.empty() ? nullptr : bias.data();
  ep.act = act;
  gemm(Layout::NN, x, w, out, ep);
}

void column_sums_accumulate(const Matrix& a, std::span<double> acc) {
  if (acc.size() != a.cols()) {
    throw std::invalid_argument("column_sums_accumulate: length mismatch");
  }
  // Sums are built rows-ascending in a scratch vector and committed with one
  // add per column, preserving the historical column_sums-then-+= rounding.
  thread_local std::vector<double> sums;
  sums.assign(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.data() + r * a.cols();
    PRODIGY_SIMD
    for (std::size_t c = 0; c < a.cols(); ++c) sums[c] += row[c];
  }
  for (std::size_t c = 0; c < a.cols(); ++c) acc[c] += sums[c];
}

void gemm_naive(Layout layout, std::size_t m, std::size_t n, std::size_t k,
                const double* a, std::size_t lda, const double* b,
                std::size_t ldb, double* c, std::size_t ldc,
                const Epilogue& epilogue) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        double av, bv;
        switch (layout) {
          case Layout::NN:
            av = a[i * lda + kk];
            bv = b[kk * ldb + j];
            break;
          case Layout::TN:
            av = a[kk * lda + i];
            bv = b[kk * ldb + j];
            break;
          case Layout::NT:
            av = a[i * lda + kk];
            bv = b[j * ldb + kk];
            break;
          default:
            av = bv = 0.0;
            break;
        }
        acc += av * bv;
      }
      double v = acc;
      if (epilogue.accumulate) v += c[i * ldc + j];
      if (epilogue.bias != nullptr) v += epilogue.bias[j];
      c[i * ldc + j] = activate(epilogue.act, v);
    }
  }
}

}  // namespace prodigy::tensor::kernels
