// SIMD-blocked GEMM kernel library: the single compute core behind every
// matmul layout (`NN` = A*B, `TN` = A^T*B, `NT` = A*B^T) and the fused
// dense-layer forward (GEMM + bias + activation in one pass).
//
// Design (see docs/performance.md for the full write-up):
//  - one register-tiled micro-kernel (MR x NR accumulator block, k innermost)
//    shared by every layout; layouts differ only in how A is addressed and
//    whether a B panel is packed first,
//  - cache blocking over column panels (NC) so a B panel stays resident
//    while every row band of C streams over it, with B-panel packing on the
//    layouts/shapes where the panel would otherwise be strided or revisited,
//  - thread-pool banding over rows of C (or column panels when C has too few
//    rows), sized by a flop threshold.
//
// Determinism contract: element C(i, j) is always the pure ascending-k sum
// of its products, accumulated in registers and committed once.  Banding,
// blocking, packing, and tile tails never change that order, so results are
// bit-identical for any thread-pool size and any batch height m — a window
// scored alone (m = 1) matches the same row scored inside a training batch.
// The kernels translation unit is compiled with -ffp-contract=off so full
// tiles and tail tiles round identically whether or not the target ISA has
// FMA.  NaN/Inf propagation follows IEEE 754: there is no zero-skip, so a
// zero weight times a NaN/Inf activation stays NaN instead of vanishing.
//
// Building with -DPRODIGY_NO_SIMD=ON compiles the same loops without the
// vectorization pragmas (the portable scalar path); numeric results are
// identical by the argument above.
#pragma once

#include "tensor/matrix.hpp"

#include <cstddef>
#include <span>

namespace prodigy::util {
class ThreadPool;
}

namespace prodigy::tensor::kernels {

/// GEMM operand layout: C = A*B, C = A^T*B, or C = A*B^T.
enum class Layout { NN, TN, NT };

/// Activation fused into the GEMM epilogue (mirror of nn::Activation; kept
/// here so the tensor layer stays below nn in the dependency order).
enum class FusedAct { None, ReLU, Tanh, Sigmoid };

/// Epilogue applied to each output tile while it is still register-hot:
///   v = sum_k(a_ik * b_kj) [+ C(i,j) if accumulate] [+ bias[j]] ; act(v).
struct Epilogue {
  const double* bias = nullptr;  ///< length n; nullptr = no bias
  FusedAct act = FusedAct::None;
  bool accumulate = false;  ///< C += result instead of C = result
};

/// Per-thread packing arena: panel buffers grow once and are reused by every
/// subsequent kernel call on that thread (zero-alloc after warmup).
class Workspace {
 public:
  /// Returns a buffer of at least `doubles` doubles (contents undefined).
  double* pack_a(std::size_t doubles);
  double* pack_b(std::size_t doubles);

  static Workspace& tls();

 private:
  std::vector<double> a_;
  std::vector<double> b_;
};

/// C(m x n) = op(A) * op(B) with the epilogue fused in.  `lda`/`ldb`/`ldc`
/// are row strides of the *physical* (row-major) operands:
///   NN: A is m x k, B is k x n;  TN: A is k x m;  NT: B is n x k.
/// Banding runs on `pool` (nullptr = the global pool) above a flop
/// threshold; results are identical for any pool size, including none.
void gemm(Layout layout, std::size_t m, std::size_t n, std::size_t k,
          const double* a, std::size_t lda, const double* b, std::size_t ldb,
          double* c, std::size_t ldc, const Epilogue& epilogue = {},
          util::ThreadPool* pool = nullptr);

/// Convenience overload on Matrix with shape checking; `c` is resized.
void gemm(Layout layout, const Matrix& a, const Matrix& b, Matrix& c,
          const Epilogue& epilogue = {}, util::ThreadPool* pool = nullptr);

/// Fused dense-layer forward: out = act(x * w + bias), one pass, `out`
/// resized (capacity-reusing, so repeated calls are allocation-free).
/// `x` is (batch x in), `w` is (in x out_features), bias length out_features.
void dense_forward(const Matrix& x, const Matrix& w,
                   std::span<const double> bias, FusedAct act, Matrix& out);

/// Column-wise sums of `a` accumulated into `acc` (length = a.cols()).
/// Row-major ascending accumulation into a full-column temporary is NOT
/// used: each acc[j] receives the complete rows-ascending sum in one add,
/// matching the historical `column_sums` + `+=` order exactly.
void column_sums_accumulate(const Matrix& a, std::span<double> acc);

/// Naive triple-loop reference with identical NaN/zero-skip semantics and
/// ascending-k order; the oracle for the parity property tests and the
/// pre-PR scalar baseline in bench/micro_substrate.
void gemm_naive(Layout layout, std::size_t m, std::size_t n, std::size_t k,
                const double* a, std::size_t lda, const double* b,
                std::size_t ldb, double* c, std::size_t ldc,
                const Epilogue& epilogue = {});

}  // namespace prodigy::tensor::kernels
