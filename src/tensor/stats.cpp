#include "tensor/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prodigy::tensor {

double sum(std::span<const double> xs) noexcept {
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc;
}

double mean(std::span<const double> xs) noexcept {
  return xs.empty() ? 0.0 : sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs, double mean) noexcept {
  if (xs.size() < 2) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  return variance(xs, mean(xs));
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double min_value(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(q, 0.0, 1.0);
  const double pos = clamped * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::span<const double> xs, double q) {
  // NaN input propagates: std::sort on NaN violates strict weak ordering
  // (undefined behavior), and in practice NaNs land at the tail where the
  // upper quantiles silently read them.  A quantile of a set containing
  // NaN is NaN, by contract.
  std::vector<double> copy;
  copy.reserve(xs.size());
  for (double x : xs) {
    if (x != x) return x;
    copy.push_back(x);
  }
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double skewness(std::span<const double> xs, double mean, double stddev) noexcept {
  if (xs.size() < 3) return 0.0;
  if (stddev == 0.0) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    const double z = (x - mean) / stddev;
    acc += z * z * z;
  }
  return acc / static_cast<double>(xs.size());
}

double skewness(std::span<const double> xs) noexcept {
  return skewness(xs, mean(xs), stddev(xs));
}

double kurtosis(std::span<const double> xs, double mean, double stddev) noexcept {
  if (xs.size() < 4) return 0.0;
  if (stddev == 0.0) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    const double z = (x - mean) / stddev;
    acc += z * z * z * z;
  }
  return acc / static_cast<double>(xs.size()) - 3.0;
}

double kurtosis(std::span<const double> xs) noexcept {
  return kurtosis(xs, mean(xs), stddev(xs));
}

double pearson_correlation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson_correlation: length mismatch");
  }
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double autocorrelation(std::span<const double> xs, std::size_t lag, double mean,
                       double variance) noexcept {
  if (xs.size() <= lag + 1) return 0.0;
  if (variance == 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i + lag < xs.size(); ++i) {
    acc += (xs[i] - mean) * (xs[i + lag] - mean);
  }
  return acc / (static_cast<double>(xs.size() - lag) * variance);
}

double autocorrelation(std::span<const double> xs, std::size_t lag) noexcept {
  return autocorrelation(xs, lag, mean(xs), variance(xs));
}

}  // namespace prodigy::tensor
