#include "tensor/matrix.hpp"

#include <algorithm>

namespace prodigy::tensor {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  Matrix result;
  result.rows_ = rows.size();
  result.cols_ = rows.empty() ? 0 : rows.front().size();
  result.data_.reserve(result.rows_ * result.cols_);
  for (const auto& row : rows) {
    if (row.size() != result.cols_) {
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    }
    result.data_.insert(result.data_.end(), row.begin(), row.end());
  }
  return result;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at(" + std::to_string(r) + "," +
                            std::to_string(c) + ") out of " + shape_string());
  }
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  return const_cast<Matrix*>(this)->at(r, c);
}

std::vector<double> Matrix::column(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::column out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::set_column(std::size_t c, std::span<const double> values) {
  if (c >= cols_ || values.size() != rows_) {
    throw std::out_of_range("Matrix::set_column shape mismatch");
  }
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  if (r >= rows_ || values.size() != cols_) {
    throw std::out_of_range("Matrix::set_row shape mismatch");
  }
  std::copy(values.begin(), values.end(), data_.begin() + r * cols_);
}

Matrix Matrix::slice_rows(std::size_t first, std::size_t count) const {
  if (first + count > rows_) {
    throw std::out_of_range("Matrix::slice_rows out of range");
  }
  Matrix out(count, cols_);
  std::copy(data_.begin() + first * cols_, data_.begin() + (first + count) * cols_,
            out.data_.begin());
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) throw std::out_of_range("select_rows: bad index");
    out.set_row(i, row(indices[i]));
  }
  return out;
}

Matrix Matrix::select_columns(std::span<const std::size_t> indices) const {
  Matrix out(rows_, indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j) {
    if (indices[j] >= cols_) throw std::out_of_range("select_columns: bad index");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t j = 0; j < indices.size(); ++j) {
      out(r, j) = (*this)(r, indices[j]);
    }
  }
  return out;
}

void Matrix::check_shape(const Matrix& other, const char* op) const {
  if (!same_shape(other)) {
    throw std::invalid_argument(std::string("Matrix ") + op + ": shape " +
                                shape_string() + " vs " + other.shape_string());
  }
}

Matrix& Matrix::operator+=(const Matrix& other) {
  check_shape(other, "+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  check_shape(other, "-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (auto& value : data_) value *= scalar;
  return *this;
}

std::string Matrix::shape_string() const {
  return "(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")";
}

}  // namespace prodigy::tensor
