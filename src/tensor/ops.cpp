#include "tensor/ops.hpp"

#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prodigy::tensor {

namespace {

constexpr std::size_t kBlock = 64;          // cache-block edge for GEMM
constexpr std::size_t kParallelFlops = 1u << 20;  // threshold for threading

void check_inner(std::size_t a_cols, std::size_t b_rows, const char* op) {
  if (a_cols != b_rows) {
    throw std::invalid_argument(std::string(op) + ": inner dimensions differ (" +
                                std::to_string(a_cols) + " vs " +
                                std::to_string(b_rows) + ")");
  }
}

// Multiplies the row band [r0, r1) of A into C.  B is indexed (k, j).
void gemm_rows(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
               std::size_t r1) {
  const std::size_t n = b.cols();
  const std::size_t inner = a.cols();
  for (std::size_t kk = 0; kk < inner; kk += kBlock) {
    const std::size_t k_hi = std::min(inner, kk + kBlock);
    for (std::size_t r = r0; r < r1; ++r) {
      const double* a_row = a.data() + r * inner;
      double* c_row = c.data() + r * n;
      // No zero-skip: dense weights make the branch useless, and skipping a
      // zero a_val would silently absorb NaN/Inf from B (0 * NaN must stay
      // NaN so bad activations propagate instead of vanishing).
      for (std::size_t k = kk; k < k_hi; ++k) {
        const double a_val = a_row[k];
        const double* b_row = b.data() + k * n;
        for (std::size_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
      }
    }
  }
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  check_inner(a.cols(), b.rows(), "matmul");
  Matrix c(a.rows(), b.cols());
  const std::size_t flops = a.rows() * a.cols() * b.cols();
  if (flops < kParallelFlops || a.rows() < 2) {
    gemm_rows(a, b, c, 0, a.rows());
  } else {
    util::parallel_for(0, a.rows(),
                       [&](std::size_t r) { gemm_rows(a, b, c, r, r + 1); }, 8);
  }
  return c;
}

Matrix matmul_transposed_b(const Matrix& a, const Matrix& b) {
  check_inner(a.cols(), b.cols(), "matmul_transposed_b");
  Matrix c(a.rows(), b.rows());
  const std::size_t inner = a.cols();
  auto body = [&](std::size_t r) {
    const double* a_row = a.data() + r * inner;
    double* c_row = c.data() + r * b.rows();
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* b_row = b.data() + j * inner;
      double acc = 0.0;
      for (std::size_t k = 0; k < inner; ++k) acc += a_row[k] * b_row[k];
      c_row[j] = acc;
    }
  };
  const std::size_t flops = a.rows() * inner * b.rows();
  if (flops < kParallelFlops) {
    for (std::size_t r = 0; r < a.rows(); ++r) body(r);
  } else {
    util::parallel_for(0, a.rows(), body, 8);
  }
  return c;
}

Matrix matmul_transposed_a(const Matrix& a, const Matrix& b) {
  check_inner(a.rows(), b.rows(), "matmul_transposed_a");
  Matrix c(a.cols(), b.cols());
  // C[i][j] = sum_k A[k][i] * B[k][j]; accumulate row bands of B.
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* a_row = a.data() + k * a.cols();
    const double* b_row = b.data() + k * b.cols();
    // No zero-skip, for the same NaN-propagation reason as gemm_rows.
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double a_val = a_row[i];
      double* c_row = c.data() + i * b.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) c_row[j] += a_val * b_row[j];
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) out(c, r) = a(r, c);
  }
  return out;
}

void add_row_vector(Matrix& m, std::span<const double> bias) {
  if (bias.size() != m.cols()) {
    throw std::invalid_argument("add_row_vector: bias length mismatch");
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

Matrix map(const Matrix& a, const std::function<double(double)>& fn) {
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) out.data()[i] = fn(a.data()[i]);
  return out;
}

void hadamard_inplace(Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("hadamard_inplace: shape mismatch");
  }
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] *= b.data()[i];
}

std::vector<double> column_sums(const Matrix& a) {
  std::vector<double> sums(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.data() + r * a.cols();
    for (std::size_t c = 0; c < a.cols(); ++c) sums[c] += row[c];
  }
  return sums;
}

std::vector<double> rowwise_mean_abs_error(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("rowwise_mean_abs_error: shape mismatch");
  }
  std::vector<double> errors(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    const double* ra = a.data() + r * a.cols();
    const double* rb = b.data() + r * a.cols();
    for (std::size_t c = 0; c < a.cols(); ++c) acc += std::abs(ra[c] - rb[c]);
    errors[r] = a.cols() == 0 ? 0.0 : acc / static_cast<double>(a.cols());
  }
  return errors;
}

std::vector<double> rowwise_mean_squared_error(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("rowwise_mean_squared_error: shape mismatch");
  }
  std::vector<double> errors(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    const double* ra = a.data() + r * a.cols();
    const double* rb = b.data() + r * a.cols();
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const double d = ra[c] - rb[c];
      acc += d * d;
    }
    errors[r] = a.cols() == 0 ? 0.0 : acc / static_cast<double>(a.cols());
  }
  return errors;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("squared_distance: length mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double euclidean_distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

Matrix vstack(const Matrix& top, const Matrix& bottom) {
  if (top.empty()) return bottom;
  if (bottom.empty()) return top;
  if (top.cols() != bottom.cols()) {
    throw std::invalid_argument("vstack: column mismatch");
  }
  Matrix out(top.rows() + bottom.rows(), top.cols());
  std::copy(top.data(), top.data() + top.size(), out.data());
  std::copy(bottom.data(), bottom.data() + bottom.size(), out.data() + top.size());
  return out;
}

}  // namespace prodigy::tensor
