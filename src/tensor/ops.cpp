#include "tensor/ops.hpp"

#include "tensor/kernels.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prodigy::tensor {

namespace {

constexpr std::size_t kBlock = 64;                // cache-block edge (transpose)
constexpr std::size_t kParallelFlops = 1u << 20;  // threshold for threading

}  // namespace

// All three matmul layouts lower onto the shared register-tiled micro-kernel
// in tensor/kernels.cpp.  Accumulation there is the same ascending-k order as
// the historical scalar loops, so results are bit-identical to the previous
// implementation (and to the naive oracle) for every shape and pool size.

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_into(a, b, c);
  return c;
}

void matmul_into(const Matrix& a, const Matrix& b, Matrix& c) {
  kernels::gemm(kernels::Layout::NN, a, b, c);
}

Matrix matmul_transposed_b(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_transposed_b_into(a, b, c);
  return c;
}

void matmul_transposed_b_into(const Matrix& a, const Matrix& b, Matrix& c) {
  kernels::gemm(kernels::Layout::NT, a, b, c);
}

Matrix matmul_transposed_a(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_transposed_a_into(a, b, c);
  return c;
}

void matmul_transposed_a_into(const Matrix& a, const Matrix& b, Matrix& c) {
  kernels::gemm(kernels::Layout::TN, a, b, c);
}

void matmul_transposed_a_accumulate(const Matrix& a, const Matrix& b,
                                    Matrix& c) {
  kernels::Epilogue ep;
  ep.accumulate = true;
  kernels::gemm(kernels::Layout::TN, a, b, c, ep);
}

Matrix transpose(const Matrix& a) {
  Matrix out;
  transpose_into(a, out);
  return out;
}

void transpose_into(const Matrix& a, Matrix& out) {
  out.resize_for_overwrite(a.cols(), a.rows());
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  // Blocked so both the kBlock x kBlock read tile and write tile stay cache
  // resident; row-tile bands go wide when the matrix is large enough.
  auto band = [&](std::size_t rb) {
    const std::size_t r0 = rb * kBlock;
    const std::size_t r1 = std::min(rows, r0 + kBlock);
    for (std::size_t c0 = 0; c0 < cols; c0 += kBlock) {
      const std::size_t c1 = std::min(cols, c0 + kBlock);
      for (std::size_t r = r0; r < r1; ++r) {
        const double* src = a.data() + r * cols;
        for (std::size_t c = c0; c < c1; ++c) out.data()[c * rows + r] = src[c];
      }
    }
  };
  const std::size_t row_tiles = (rows + kBlock - 1) / kBlock;
  if (rows * cols < kParallelFlops || row_tiles < 2) {
    for (std::size_t rb = 0; rb < row_tiles; ++rb) band(rb);
  } else {
    util::parallel_for(0, row_tiles, band, 1);
  }
}

void add_row_vector(Matrix& m, std::span<const double> bias) {
  if (bias.size() != m.cols()) {
    throw std::invalid_argument("add_row_vector: bias length mismatch");
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

Matrix map(const Matrix& a, const std::function<double(double)>& fn) {
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) out.data()[i] = fn(a.data()[i]);
  return out;
}

void hadamard_inplace(Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("hadamard_inplace: shape mismatch");
  }
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] *= b.data()[i];
}

std::vector<double> column_sums(const Matrix& a) {
  std::vector<double> sums(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.data() + r * a.cols();
    for (std::size_t c = 0; c < a.cols(); ++c) sums[c] += row[c];
  }
  return sums;
}

std::vector<double> rowwise_mean_abs_error(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("rowwise_mean_abs_error: shape mismatch");
  }
  std::vector<double> errors(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    const double* ra = a.data() + r * a.cols();
    const double* rb = b.data() + r * a.cols();
    for (std::size_t c = 0; c < a.cols(); ++c) acc += std::abs(ra[c] - rb[c]);
    errors[r] = a.cols() == 0 ? 0.0 : acc / static_cast<double>(a.cols());
  }
  return errors;
}

std::vector<double> rowwise_mean_squared_error(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("rowwise_mean_squared_error: shape mismatch");
  }
  std::vector<double> errors(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    const double* ra = a.data() + r * a.cols();
    const double* rb = b.data() + r * a.cols();
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const double d = ra[c] - rb[c];
      acc += d * d;
    }
    errors[r] = a.cols() == 0 ? 0.0 : acc / static_cast<double>(a.cols());
  }
  return errors;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("squared_distance: length mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double euclidean_distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

Matrix vstack(const Matrix& top, const Matrix& bottom) {
  if (top.empty()) return bottom;
  if (bottom.empty()) return top;
  if (top.cols() != bottom.cols()) {
    throw std::invalid_argument("vstack: column mismatch");
  }
  Matrix out(top.rows() + bottom.rows(), top.cols());
  std::copy(top.data(), top.data() + top.size(), out.data());
  std::copy(bottom.data(), bottom.data() + bottom.size(), out.data() + top.size());
  return out;
}

}  // namespace prodigy::tensor
