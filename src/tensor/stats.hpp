// Scalar statistics on spans of doubles.  These are the primitives the
// TSFRESH-style extractors and the thresholding logic are built from.
#pragma once

#include <span>
#include <vector>

namespace prodigy::tensor {

double sum(std::span<const double> xs) noexcept;
double mean(std::span<const double> xs) noexcept;
/// Population variance (ddof = 0); returns 0 for n < 1.
double variance(std::span<const double> xs) noexcept;
double stddev(std::span<const double> xs) noexcept;
double min_value(std::span<const double> xs) noexcept;
double max_value(std::span<const double> xs) noexcept;
double median(std::span<const double> xs);
/// Linear-interpolated quantile, q in [0, 1].  Copies and sorts.  Any NaN
/// in the input propagates (returns NaN) rather than feeding std::sort,
/// whose ordering contract NaN violates.
double quantile(std::span<const double> xs, double q);
/// Quantile over an already-sorted sequence (no copy).  The sequence must
/// be NaN-free (use quantile() when it may not be).
double quantile_sorted(std::span<const double> sorted, double q) noexcept;
double skewness(std::span<const double> xs) noexcept;
/// Excess kurtosis (normal -> 0).
double kurtosis(std::span<const double> xs) noexcept;

// Moment-reusing variants: identical arithmetic to the single-argument
// forms (which delegate here), for callers that already hold the moments
// (the SeriesProfile feature engine computes mean/stddev once per series).
double variance(std::span<const double> xs, double mean) noexcept;
double skewness(std::span<const double> xs, double mean, double stddev) noexcept;
double kurtosis(std::span<const double> xs, double mean, double stddev) noexcept;
double autocorrelation(std::span<const double> xs, std::size_t lag, double mean,
                       double variance) noexcept;
/// Pearson correlation; returns 0 when either side is constant.
double pearson_correlation(std::span<const double> xs, std::span<const double> ys);
/// Autocorrelation at the given lag; 0 when undefined.
double autocorrelation(std::span<const double> xs, std::size_t lag) noexcept;

}  // namespace prodigy::tensor
