// Linear-algebra kernels on Matrix: blocked & threaded GEMM variants and the
// element-wise helpers the NN layers need.
#pragma once

#include "tensor/matrix.hpp"

#include <functional>
#include <span>

namespace prodigy::tensor {

// The GEMM entry points below all lower onto the register-tiled kernels in
// tensor/kernels.hpp; see that header for the determinism and NaN contract.
// The `_into` variants write into a caller-owned matrix (resized with
// capacity reuse) so hot paths can stay allocation-free after warmup.

/// C = A * B.  Register-tiled and cache-blocked; bands of C are distributed
/// over the thread pool when the product is large enough to amortize the
/// dispatch.
Matrix matmul(const Matrix& a, const Matrix& b);
void matmul_into(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B^T without materializing the transpose.
Matrix matmul_transposed_b(const Matrix& a, const Matrix& b);
void matmul_transposed_b_into(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A^T * B without materializing the transpose.
Matrix matmul_transposed_a(const Matrix& a, const Matrix& b);
void matmul_transposed_a_into(const Matrix& a, const Matrix& b, Matrix& c);

/// C += A^T * B in place (no temporary), for gradient accumulation.
void matmul_transposed_a_accumulate(const Matrix& a, const Matrix& b,
                                    Matrix& c);

Matrix transpose(const Matrix& a);
void transpose_into(const Matrix& a, Matrix& out);

/// Adds `bias` (length = cols) to every row of `m` in place.
void add_row_vector(Matrix& m, std::span<const double> bias);

/// Element-wise map, out-of-place.
Matrix map(const Matrix& a, const std::function<double(double)>& fn);

/// Element-wise product (Hadamard), in place on `a`.
void hadamard_inplace(Matrix& a, const Matrix& b);

/// Column-wise sum, returning a vector of length cols.
std::vector<double> column_sums(const Matrix& a);

/// Per-row mean absolute difference between two equal-shaped matrices.
std::vector<double> rowwise_mean_abs_error(const Matrix& a, const Matrix& b);

/// Per-row mean squared difference between two equal-shaped matrices.
std::vector<double> rowwise_mean_squared_error(const Matrix& a, const Matrix& b);

/// Euclidean distance between two rows (spans of equal length).
double euclidean_distance(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance.
double squared_distance(std::span<const double> a, std::span<const double> b);

/// Vertically stacks two matrices with equal column counts.
Matrix vstack(const Matrix& top, const Matrix& bottom);

}  // namespace prodigy::tensor
