// Linear-algebra kernels on Matrix: blocked & threaded GEMM variants and the
// element-wise helpers the NN layers need.
#pragma once

#include "tensor/matrix.hpp"

#include <functional>
#include <span>

namespace prodigy::tensor {

/// C = A * B.  Cache-blocked; rows of A are distributed over the thread pool
/// when the product is large enough to amortize the dispatch.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A * B^T without materializing the transpose.
Matrix matmul_transposed_b(const Matrix& a, const Matrix& b);

/// C = A^T * B without materializing the transpose.
Matrix matmul_transposed_a(const Matrix& a, const Matrix& b);

Matrix transpose(const Matrix& a);

/// Adds `bias` (length = cols) to every row of `m` in place.
void add_row_vector(Matrix& m, std::span<const double> bias);

/// Element-wise map, out-of-place.
Matrix map(const Matrix& a, const std::function<double(double)>& fn);

/// Element-wise product (Hadamard), in place on `a`.
void hadamard_inplace(Matrix& a, const Matrix& b);

/// Column-wise sum, returning a vector of length cols.
std::vector<double> column_sums(const Matrix& a);

/// Per-row mean absolute difference between two equal-shaped matrices.
std::vector<double> rowwise_mean_abs_error(const Matrix& a, const Matrix& b);

/// Per-row mean squared difference between two equal-shaped matrices.
std::vector<double> rowwise_mean_squared_error(const Matrix& a, const Matrix& b);

/// Euclidean distance between two rows (spans of equal length).
double euclidean_distance(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance.
double squared_distance(std::span<const double> a, std::span<const double> b);

/// Vertically stacks two matrices with equal column counts.
Matrix vstack(const Matrix& top, const Matrix& bottom);

}  // namespace prodigy::tensor
