// Row-major dense matrix of doubles.  The single numeric container used by
// the NN library, feature matrices, and baseline models.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace prodigy::tensor {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  std::vector<double>& storage() noexcept { return data_; }
  const std::vector<double>& storage() const noexcept { return data_; }

  /// Reshapes to rows x cols without preserving contents.  Capacity is
  /// reused (never shrunk), so out-parameter kernels that write every
  /// element become allocation-free once a workspace matrix has warmed up.
  void resize_for_overwrite(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Returns a copy of column `c`.
  std::vector<double> column(std::size_t c) const;
  void set_column(std::size_t c, std::span<const double> values);
  void set_row(std::size_t r, std::span<const double> values);

  /// Returns the sub-matrix containing rows [first, first+count).
  Matrix slice_rows(std::size_t first, std::size_t count) const;

  /// Returns a matrix with only the listed rows, in the given order.
  Matrix select_rows(std::span<const std::size_t> indices) const;

  /// Returns a matrix with only the listed columns, in the given order.
  Matrix select_columns(std::span<const std::size_t> indices) const;

  /// Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar) noexcept;

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string shape_string() const;

 private:
  void check_shape(const Matrix& other, const char* op) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace prodigy::tensor
