// The paper's ModelTrainer (Fig. 3): trains the provided model and persists
// everything production inference needs — model weights and architecture,
// the fitted scaler, and deployment metadata (selected feature columns,
// training-time column names) — into an output directory on the monitoring
// server's storage.
#pragma once

#include "core/prodigy_detector.hpp"
#include "features/feature_matrix.hpp"
#include "pipeline/scaler.hpp"

#include <string>
#include <vector>

namespace prodigy::core {

/// Everything the production AnomalyDetector loads (paper's "deployment
/// metadata": training columns and extracted features).
struct DeploymentMetadata {
  std::string system;                       // e.g. "Eclipse"
  std::vector<std::string> feature_names;   // selected "efficient features"
  std::vector<std::size_t> selected_columns;  // indices into the full matrix
  double train_anomaly_ratio = 0.0;
  std::size_t training_samples = 0;

  void save(util::BinaryWriter& writer) const;
  static DeploymentMetadata load(util::BinaryReader& reader);
};

/// A trained, deployable model bundle.
struct ModelBundle {
  ProdigyDetector detector;
  pipeline::Scaler scaler;
  DeploymentMetadata metadata;

  /// Applies metadata column selection + scaler, then predicts.
  std::vector<int> predict_full(const tensor::Matrix& full_features) const;
  std::vector<double> score_full(const tensor::Matrix& full_features) const;
  /// Column selection + scaling only (the model-input view of the features).
  tensor::Matrix transform_full(const tensor::Matrix& full_features) const;

  /// Persists to `<dir>/model.bin`, `<dir>/scaler.bin`, `<dir>/metadata.bin`.
  void save(const std::string& dir) const;
  static ModelBundle load(const std::string& dir);
};

class ModelTrainer {
 public:
  explicit ModelTrainer(ProdigyConfig config = {},
                        pipeline::ScalerKind scaler_kind = pipeline::ScalerKind::MinMax)
      : config_(std::move(config)), scaler_kind_(scaler_kind) {}

  /// Full training flow on an already-extracted feature dataset:
  /// select the given columns, fit the scaler on the healthy rows, train the
  /// VAE on the scaled healthy rows, and assemble the deployable bundle.
  ModelBundle train(const features::FeatureDataset& train_data,
                    const std::vector<std::size_t>& selected_columns,
                    const std::string& system_name) const;

 private:
  ProdigyConfig config_;
  pipeline::ScalerKind scaler_kind_;
};

}  // namespace prodigy::core
