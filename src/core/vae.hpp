// Variational autoencoder (paper §3.3) with manual backpropagation through
// the reparameterization trick:
//   q(z|x) = N(mu(x), diag(exp(logvar(x)))),  z = mu + exp(logvar/2) * eps,
//   loss   = E[recon(x, xhat)] + kl_weight * KL(q(z|x) || N(0, I)).
#pragma once

#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"
#include "util/serialize.hpp"

#include <string>
#include <vector>

namespace prodigy::core {

enum class ReconLoss { Mse, Mae };

struct VaeConfig {
  std::size_t input_dim = 0;  // set from the data at construction/fit
  std::vector<std::size_t> encoder_hidden = {64, 32};
  std::size_t latent_dim = 8;
  nn::Activation hidden_activation = nn::Activation::ReLU;
  double kl_weight = 1.0;
  ReconLoss recon_loss = ReconLoss::Mse;
  std::uint64_t seed = 7;
};

class VariationalAutoencoder {
 public:
  VariationalAutoencoder() = default;
  explicit VariationalAutoencoder(const VaeConfig& config);

  const VaeConfig& config() const noexcept { return config_; }
  std::size_t parameter_count() const noexcept;

  /// Trains on (assumed-healthy) data.  Returns per-epoch total loss; the
  /// validation split is driven by options.validation_split.
  nn::TrainHistory fit(const tensor::Matrix& X, const nn::TrainOptions& options);

  /// Posterior mean of the latent code.
  tensor::Matrix encode_mean(const tensor::Matrix& X) const;

  /// Deterministic reconstruction through the posterior mean (z = mu).
  tensor::Matrix reconstruct(const tensor::Matrix& X) const;

  /// Per-sample mean absolute reconstruction error (the paper's anomaly
  /// score, §3.3-3.4).
  std::vector<double> reconstruction_error(const tensor::Matrix& X) const;

  /// Draws n new samples from the prior through the decoder (generative use).
  tensor::Matrix sample(std::size_t n, util::Rng& rng) const;

  /// Total loss (recon + kl_weight * KL) on a dataset, stochastic pass.
  double evaluate_loss(const tensor::Matrix& X, util::Rng& rng) const;

  void save(util::BinaryWriter& writer) const;
  static VariationalAutoencoder load(util::BinaryReader& reader);

 private:
  struct StepResult {
    double recon = 0.0;
    double kl = 0.0;
  };
  /// One optimization step over a batch; gradients accumulate into layers.
  StepResult forward_backward(const tensor::Matrix& x, util::Rng& rng);

  VaeConfig config_;
  nn::Mlp encoder_;        // input -> last hidden
  nn::Dense mu_head_;      // hidden -> latent (linear)
  nn::Dense logvar_head_;  // hidden -> latent (linear)
  nn::Mlp decoder_;        // latent -> ... -> input (linear output)
};

}  // namespace prodigy::core
