// Variational autoencoder (paper §3.3) with manual backpropagation through
// the reparameterization trick:
//   q(z|x) = N(mu(x), diag(exp(logvar(x)))),  z = mu + exp(logvar/2) * eps,
//   loss   = E[recon(x, xhat)] + kl_weight * KL(q(z|x) || N(0, I)).
#pragma once

#include "nn/inference_plan.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"
#include "util/serialize.hpp"

#include <memory>
#include <string>
#include <vector>

namespace prodigy::core {

enum class ReconLoss { Mse, Mae };

struct VaeConfig {
  std::size_t input_dim = 0;  // set from the data at construction/fit
  std::vector<std::size_t> encoder_hidden = {64, 32};
  std::size_t latent_dim = 8;
  nn::Activation hidden_activation = nn::Activation::ReLU;
  double kl_weight = 1.0;
  ReconLoss recon_loss = ReconLoss::Mse;
  std::uint64_t seed = 7;
};

class VariationalAutoencoder {
 public:
  VariationalAutoencoder() = default;
  explicit VariationalAutoencoder(const VaeConfig& config);

  const VaeConfig& config() const noexcept { return config_; }
  std::size_t parameter_count() const noexcept;

  /// Trains on (assumed-healthy) data.  Returns per-epoch total loss; the
  /// validation split is driven by options.validation_split.
  nn::TrainHistory fit(const tensor::Matrix& X, const nn::TrainOptions& options);

  /// Posterior mean of the latent code.
  tensor::Matrix encode_mean(const tensor::Matrix& X) const;

  /// Deterministic reconstruction through the posterior mean (z = mu).
  tensor::Matrix reconstruct(const tensor::Matrix& X) const;

  /// Per-sample mean absolute reconstruction error (the paper's anomaly
  /// score, §3.3-3.4).  Runs through the fused encoder→mu→decoder
  /// InferencePlan; at PlanPrecision::Full the result is bit-identical to
  /// reconstruction_error_layerwise().
  std::vector<double> reconstruction_error(const tensor::Matrix& X) const;

  /// The original layer-by-layer scoring path, kept as the bit-exactness
  /// oracle for the fused plan (parity-tested with EXPECT_EQ).
  std::vector<double> reconstruction_error_layerwise(const tensor::Matrix& X) const;

  /// Rebuilds the fused inference plan at the given precision.  Full is the
  /// default everywhere; Bf16/Int8 are the opt-in reduced-precision modes
  /// (see docs/performance.md for the accuracy gate).
  void build_inference_plan(nn::PlanPrecision precision);
  nn::PlanPrecision inference_precision() const noexcept {
    return plan_ ? plan_->precision() : nn::PlanPrecision::Full;
  }
  /// The active fused plan (never null after construction/fit/load).
  std::shared_ptr<const nn::InferencePlan> inference_plan() const noexcept {
    return plan_;
  }

  // Component access (read-only): used by the fused-plan parity tests and
  // the training-loss replication test.
  const nn::Mlp& encoder() const noexcept { return encoder_; }
  const nn::Dense& mu_head() const noexcept { return mu_head_; }
  const nn::Dense& logvar_head() const noexcept { return logvar_head_; }
  const nn::Mlp& decoder() const noexcept { return decoder_; }

  /// Draws n new samples from the prior through the decoder (generative use).
  tensor::Matrix sample(std::size_t n, util::Rng& rng) const;

  /// Total loss (recon + kl_weight * KL) on a dataset, stochastic pass.
  double evaluate_loss(const tensor::Matrix& X, util::Rng& rng) const;

  void save(util::BinaryWriter& writer) const;
  static VariationalAutoencoder load(util::BinaryReader& reader);

 private:
  struct StepResult {
    double recon = 0.0;
    double kl = 0.0;
  };
  /// One optimization step over a batch; gradients accumulate into layers.
  StepResult forward_backward(const tensor::Matrix& x, util::Rng& rng);

  VaeConfig config_;
  nn::Mlp encoder_;        // input -> last hidden
  nn::Dense mu_head_;      // hidden -> latent (linear)
  nn::Dense logvar_head_;  // hidden -> latent (linear)
  nn::Mlp decoder_;        // latent -> ... -> input (linear output)
  // Fused encoder→mu→decoder plan for the scoring paths.  shared_ptr so
  // copies of the VAE (ModelBundle, OnlineScorer) share the immutable packed
  // weights; rebuilt whenever the parameters change (ctor, fit, load).
  std::shared_ptr<const nn::InferencePlan> plan_;
};

}  // namespace prodigy::core
