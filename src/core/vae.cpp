#include "core/vae.hpp"

#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prodigy::core {

namespace {

constexpr std::uint64_t kVaeMagic = 0x50524f5456414531ULL;  // "PROTVAE1"
constexpr double kLogvarClamp = 10.0;

std::vector<nn::LayerSpec> hidden_specs(const std::vector<std::size_t>& sizes,
                                        nn::Activation act) {
  std::vector<nn::LayerSpec> specs;
  specs.reserve(sizes.size());
  for (const auto units : sizes) specs.push_back({units, act});
  return specs;
}

// Per-thread workspaces for the training step and the inference/score paths.
// Every matrix is capacity-reused across calls, so steady-state training and
// scoring allocate nothing; thread_local keeps concurrent scoring of a shared
// const model race-free.  These never alias the Mlp-internal ping-pong
// buffers (callers cannot reference those), so handing them to
// forward_inference_into is safe.
struct StepScratch {
  tensor::Matrix eps, sigma, z, grad_z, grad_mu, grad_logvar, grad_hidden,
      grad_hidden2, grad_input_sink;
};
struct InferScratch {
  tensor::Matrix h, mu, logvar, z, recon;
};

thread_local StepScratch step_scratch;
thread_local InferScratch infer_scratch;
thread_local InferScratch eval_scratch;

}  // namespace

VariationalAutoencoder::VariationalAutoencoder(const VaeConfig& config)
    : config_(config) {
  if (config.input_dim == 0) {
    throw std::invalid_argument("VariationalAutoencoder: input_dim must be set");
  }
  if (config.encoder_hidden.empty()) {
    throw std::invalid_argument("VariationalAutoencoder: need >= 1 hidden layer");
  }
  util::Rng rng(config.seed);

  encoder_ = nn::Mlp(config.input_dim,
                     hidden_specs(config.encoder_hidden, config.hidden_activation), rng);
  const std::size_t hidden_out = config.encoder_hidden.back();
  mu_head_ = nn::Dense(hidden_out, config.latent_dim, nn::Activation::Linear, rng);
  logvar_head_ = nn::Dense(hidden_out, config.latent_dim, nn::Activation::Linear, rng);

  // Mirrored decoder: latent -> reversed hidden -> input (linear output).
  std::vector<std::size_t> decoder_sizes(config.encoder_hidden.rbegin(),
                                         config.encoder_hidden.rend());
  auto specs = hidden_specs(decoder_sizes, config.hidden_activation);
  specs.push_back({config.input_dim, nn::Activation::Linear});
  decoder_ = nn::Mlp(config.latent_dim, specs, rng);

  build_inference_plan(nn::PlanPrecision::Full);
}

void VariationalAutoencoder::build_inference_plan(nn::PlanPrecision precision) {
  nn::InferencePlan::Builder builder;
  builder.add(encoder_).add(mu_head_).add(decoder_);
  plan_ = std::make_shared<const nn::InferencePlan>(builder.build(precision));
}

std::size_t VariationalAutoencoder::parameter_count() const noexcept {
  return encoder_.parameter_count() + mu_head_.parameter_count() +
         logvar_head_.parameter_count() + decoder_.parameter_count();
}

VariationalAutoencoder::StepResult VariationalAutoencoder::forward_backward(
    const tensor::Matrix& x, util::Rng& rng) {
  StepScratch& s = step_scratch;

  // Forward.  Layer outputs are references into layer-owned workspaces; the
  // inputs they view (x, hidden, s.z) all stay alive through the backward
  // pass below.
  const tensor::Matrix& hidden = encoder_.forward(x);
  const tensor::Matrix& mu = mu_head_.forward(hidden);
  const tensor::Matrix& logvar = logvar_head_.forward(hidden);

  s.eps.resize_for_overwrite(mu.rows(), mu.cols());
  for (std::size_t i = 0; i < s.eps.size(); ++i) s.eps.data()[i] = rng.gaussian();

  s.z = mu;
  s.sigma.resize_for_overwrite(mu.rows(), mu.cols());
  for (std::size_t i = 0; i < s.z.size(); ++i) {
    const double lv = std::clamp(logvar.data()[i], -kLogvarClamp, kLogvarClamp);
    s.sigma.data()[i] = std::exp(0.5 * lv);
    s.z.data()[i] += s.sigma.data()[i] * s.eps.data()[i];
  }

  const tensor::Matrix& reconstruction = decoder_.forward(s.z);

  // Losses.
  const nn::LossResult recon = config_.recon_loss == ReconLoss::Mse
                                   ? nn::mse_loss(reconstruction, x)
                                   : nn::mae_loss(reconstruction, x);
  const nn::KlResult kl = nn::gaussian_kl(mu, logvar);

  // Backward through decoder to the latent sample.
  decoder_.backward_into(recon.grad, s.grad_z);

  // Reparameterization: dL/dmu = dL/dz ; dL/dlogvar = dL/dz * 0.5*sigma*eps.
  s.grad_mu = s.grad_z;
  s.grad_logvar.resize_for_overwrite(s.grad_z.rows(), s.grad_z.cols());
  for (std::size_t i = 0; i < s.grad_z.size(); ++i) {
    s.grad_logvar.data()[i] =
        s.grad_z.data()[i] * 0.5 * s.sigma.data()[i] * s.eps.data()[i];
  }
  // Plus the KL term's direct gradients.
  for (std::size_t i = 0; i < s.grad_mu.size(); ++i) {
    s.grad_mu.data()[i] += config_.kl_weight * kl.grad_mu.data()[i];
    s.grad_logvar.data()[i] += config_.kl_weight * kl.grad_logvar.data()[i];
  }

  // Backward through the two heads into the shared encoder trunk.
  mu_head_.backward_into(s.grad_mu, s.grad_hidden);
  logvar_head_.backward_into(s.grad_logvar, s.grad_hidden2);
  s.grad_hidden += s.grad_hidden2;
  encoder_.backward_into(s.grad_hidden, s.grad_input_sink);

  return {recon.value, kl.value};
}

nn::TrainHistory VariationalAutoencoder::fit(const tensor::Matrix& X,
                                             const nn::TrainOptions& options) {
  util::StageTimer fit_stage("core.vae.fit");
  if (X.cols() != config_.input_dim) {
    throw std::invalid_argument("VariationalAutoencoder::fit: input width " +
                                std::to_string(X.cols()) + " != configured " +
                                std::to_string(config_.input_dim));
  }
  util::Rng rng(options.seed);
  nn::TrainHistory history;

  // Validation carve-out (the paper uses an 80-20 train/validation split of
  // the healthy samples to pick the operating threshold).
  const auto perm = rng.permutation(X.rows());
  std::size_t val_count = 0;
  if (options.validation_split > 0.0 && X.rows() >= 4) {
    val_count = std::min<std::size_t>(
        static_cast<std::size_t>(options.validation_split * static_cast<double>(X.rows())),
        X.rows() - 1);
  }
  const std::size_t train_count = X.rows() - val_count;
  const tensor::Matrix train = X.select_rows(
      {perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(train_count)});
  const tensor::Matrix validation = X.select_rows(
      {perm.begin() + static_cast<std::ptrdiff_t>(train_count), perm.end()});

  nn::Adam optimizer(options.learning_rate);
  encoder_.register_with(optimizer);
  optimizer.register_parameters({mu_head_.weights().data(),
                                 mu_head_.weight_grad().data(),
                                 mu_head_.weights().size()});
  optimizer.register_parameters({mu_head_.bias().data(), mu_head_.bias_grad().data(),
                                 mu_head_.bias().size()});
  optimizer.register_parameters({logvar_head_.weights().data(),
                                 logvar_head_.weight_grad().data(),
                                 logvar_head_.weights().size()});
  optimizer.register_parameters({logvar_head_.bias().data(),
                                 logvar_head_.bias_grad().data(),
                                 logvar_head_.bias().size()});
  decoder_.register_with(optimizer);

  nn::EarlyStopping stopper(options.early_stopping_patience);
  util::Rng eval_rng(options.seed ^ 0xabcdef);

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    std::size_t epoch_rows = 0;
    for (const auto& batch : nn::make_batches(train.rows(), options.batch_size, rng)) {
      const tensor::Matrix x = train.select_rows(batch);
      encoder_.zero_gradients();
      mu_head_.zero_gradients();
      logvar_head_.zero_gradients();
      decoder_.zero_gradients();
      const StepResult step = forward_backward(x, rng);
      optimizer.step();
      // Row-weighted epoch loss: forward_backward returns per-batch *means*,
      // so the ragged final batch of a non-divisible epoch must contribute
      // proportionally to its row count, or train_loss is skewed against
      // validation_loss (which is a plain mean over all rows).
      epoch_loss +=
          (step.recon + config_.kl_weight * step.kl) * static_cast<double>(x.rows());
      epoch_rows += x.rows();
    }
    epoch_loss /= static_cast<double>(std::max<std::size_t>(1, epoch_rows));
    history.train_loss.push_back(epoch_loss);
    ++history.epochs_run;
    util::MetricsRegistry::global().counter("prodigy_vae_epochs_total").increment();

    if (val_count > 0) {
      const double val_loss = evaluate_loss(validation, eval_rng);
      history.validation_loss.push_back(val_loss);
      if (stopper.update(val_loss)) {
        history.stopped_early = true;
        util::MetricsRegistry::global()
            .counter("prodigy_vae_early_stops_total")
            .increment();
        util::MetricsRegistry::global()
            .gauge("prodigy_vae_last_early_stop_epoch")
            .set(static_cast<double>(epoch));
        break;
      }
    }
    if (options.verbose && epoch % 100 == 0) {
      util::log_info("VAE epoch ", epoch, " loss ", epoch_loss);
    }
  }
  // Repack the fused plan from the trained weights, keeping whatever
  // precision the caller had opted into.
  build_inference_plan(inference_precision());
  return history;
}

tensor::Matrix VariationalAutoencoder::encode_mean(const tensor::Matrix& X) const {
  InferScratch& s = infer_scratch;
  encoder_.forward_inference_into(X, s.h);
  return mu_head_.forward_inference(s.h);
}

tensor::Matrix VariationalAutoencoder::reconstruct(const tensor::Matrix& X) const {
  if (plan_) {
    tensor::Matrix out;
    plan_->run(X, out);
    return out;
  }
  InferScratch& s = infer_scratch;
  encoder_.forward_inference_into(X, s.h);
  mu_head_.forward_inference_into(s.h, s.mu);
  return decoder_.forward_inference(s.mu);
}

std::vector<double> VariationalAutoencoder::reconstruction_error(
    const tensor::Matrix& X) const {
  // The anomaly-score hot path: one fused sweep through the packed
  // encoder→mu→decoder plan into per-thread scratch — zero matrix
  // allocations once a thread has warmed up, and at Full precision
  // bit-identical to the layerwise oracle below.
  if (plan_) {
    InferScratch& s = infer_scratch;
    plan_->run(X, s.recon);
    return tensor::rowwise_mean_abs_error(X, s.recon);
  }
  return reconstruction_error_layerwise(X);
}

std::vector<double> VariationalAutoencoder::reconstruction_error_layerwise(
    const tensor::Matrix& X) const {
  InferScratch& s = infer_scratch;
  encoder_.forward_inference_into(X, s.h);
  mu_head_.forward_inference_into(s.h, s.mu);
  decoder_.forward_inference_into(s.mu, s.recon);
  return tensor::rowwise_mean_abs_error(X, s.recon);
}

tensor::Matrix VariationalAutoencoder::sample(std::size_t n, util::Rng& rng) const {
  tensor::Matrix z(n, config_.latent_dim);
  for (std::size_t i = 0; i < z.size(); ++i) z.data()[i] = rng.gaussian();
  return decoder_.forward_inference(z);
}

double VariationalAutoencoder::evaluate_loss(const tensor::Matrix& X,
                                             util::Rng& rng) const {
  InferScratch& s = eval_scratch;
  encoder_.forward_inference_into(X, s.h);
  mu_head_.forward_inference_into(s.h, s.mu);
  logvar_head_.forward_inference_into(s.h, s.logvar);

  s.z = s.mu;
  for (std::size_t i = 0; i < s.z.size(); ++i) {
    const double lv = std::clamp(s.logvar.data()[i], -kLogvarClamp, kLogvarClamp);
    s.z.data()[i] += std::exp(0.5 * lv) * rng.gaussian();
  }
  decoder_.forward_inference_into(s.z, s.recon);
  const double recon = config_.recon_loss == ReconLoss::Mse
                           ? nn::mse_loss(s.recon, X).value
                           : nn::mae_loss(s.recon, X).value;
  return recon + config_.kl_weight * nn::gaussian_kl(s.mu, s.logvar).value;
}

void VariationalAutoencoder::save(util::BinaryWriter& writer) const {
  writer.write_magic(kVaeMagic, 1);
  writer.write_u64(config_.input_dim);
  writer.write_u64(config_.latent_dim);
  writer.write_u64(config_.encoder_hidden.size());
  for (const auto units : config_.encoder_hidden) writer.write_u64(units);
  writer.write_string(nn::to_string(config_.hidden_activation));
  writer.write_f64(config_.kl_weight);
  writer.write_u64(config_.recon_loss == ReconLoss::Mse ? 0 : 1);
  writer.write_u64(config_.seed);
  encoder_.save(writer);
  mu_head_.save(writer);
  logvar_head_.save(writer);
  decoder_.save(writer);
}

VariationalAutoencoder VariationalAutoencoder::load(util::BinaryReader& reader) {
  reader.expect_magic(kVaeMagic, 1);
  VariationalAutoencoder vae;
  vae.config_.input_dim = reader.read_u64();
  vae.config_.latent_dim = reader.read_u64();
  const auto hidden_count = reader.read_u64();
  vae.config_.encoder_hidden.clear();
  for (std::uint64_t i = 0; i < hidden_count; ++i) {
    vae.config_.encoder_hidden.push_back(reader.read_u64());
  }
  vae.config_.hidden_activation = nn::activation_from_string(reader.read_string());
  vae.config_.kl_weight = reader.read_f64();
  vae.config_.recon_loss = reader.read_u64() == 0 ? ReconLoss::Mse : ReconLoss::Mae;
  vae.config_.seed = reader.read_u64();
  vae.encoder_ = nn::Mlp::load(reader);
  vae.mu_head_ = nn::Dense::load(reader);
  vae.logvar_head_ = nn::Dense::load(reader);
  vae.decoder_ = nn::Mlp::load(reader);

  // Cross-validate the loaded components against the header config: a
  // corrupted or truncated-and-spliced file must fail here with a dimension
  // message, not later as a GEMM shape error (or a silently wrong score).
  const auto check = [](bool ok, const std::string& what) {
    if (!ok) {
      throw std::runtime_error("VariationalAutoencoder::load: " + what +
                               "; model file is corrupt");
    }
  };
  const auto& cfg = vae.config_;
  check(cfg.input_dim > 0, "input_dim is 0");
  check(cfg.latent_dim > 0, "latent_dim is 0");
  check(!cfg.encoder_hidden.empty(), "no encoder hidden layers");
  check(vae.encoder_.input_dim() == cfg.input_dim,
        "encoder input dim " + std::to_string(vae.encoder_.input_dim()) +
            " != config input_dim " + std::to_string(cfg.input_dim));
  check(vae.encoder_.layer_count() == cfg.encoder_hidden.size(),
        "encoder has " + std::to_string(vae.encoder_.layer_count()) +
            " layers, config lists " +
            std::to_string(cfg.encoder_hidden.size()));
  for (std::size_t i = 0; i < cfg.encoder_hidden.size(); ++i) {
    check(vae.encoder_.layer(i).out_features() == cfg.encoder_hidden[i],
          "encoder layer " + std::to_string(i) + " width " +
              std::to_string(vae.encoder_.layer(i).out_features()) +
              " != config encoder_hidden " +
              std::to_string(cfg.encoder_hidden[i]));
  }
  const std::size_t hidden_out = cfg.encoder_hidden.back();
  check(vae.mu_head_.in_features() == hidden_out,
        "mu head input dim " + std::to_string(vae.mu_head_.in_features()) +
            " != encoder_hidden.back() " + std::to_string(hidden_out));
  check(vae.mu_head_.out_features() == cfg.latent_dim,
        "mu head output dim " + std::to_string(vae.mu_head_.out_features()) +
            " != latent_dim " + std::to_string(cfg.latent_dim));
  check(vae.logvar_head_.in_features() == hidden_out,
        "logvar head input dim " +
            std::to_string(vae.logvar_head_.in_features()) +
            " != encoder_hidden.back() " + std::to_string(hidden_out));
  check(vae.logvar_head_.out_features() == cfg.latent_dim,
        "logvar head output dim " +
            std::to_string(vae.logvar_head_.out_features()) +
            " != latent_dim " + std::to_string(cfg.latent_dim));
  check(vae.decoder_.input_dim() == cfg.latent_dim,
        "decoder input dim " + std::to_string(vae.decoder_.input_dim()) +
            " != latent_dim " + std::to_string(cfg.latent_dim));
  check(vae.decoder_.output_dim() == cfg.input_dim,
        "decoder output dim " + std::to_string(vae.decoder_.output_dim()) +
            " != input_dim " + std::to_string(cfg.input_dim));

  vae.build_inference_plan(nn::PlanPrecision::Full);
  return vae;
}

}  // namespace prodigy::core
