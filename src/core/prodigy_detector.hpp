// The Prodigy anomaly detector (paper §3): a VAE trained on healthy samples
// with a reconstruction-error threshold set at a percentile (99th by
// default) of the healthy training errors.  Samples whose mean-absolute
// reconstruction error exceeds the threshold are flagged anomalous.
#pragma once

#include "core/detector_iface.hpp"
#include "core/vae.hpp"

#include <optional>

namespace prodigy::core {

struct ProdigyConfig {
  VaeConfig vae;               // input_dim may be 0; then set from the data
  nn::TrainOptions train;
  /// Percentile (0-100] of healthy training reconstruction errors.
  double threshold_percentile = 99.0;

  ProdigyConfig() {
    // Paper Table 3 optima: lr 1e-4, batch 256, epochs 2400.  The defaults
    // here are budget-scaled for single-core runs; the bench binaries expose
    // flags to restore paper values.
    train.learning_rate = 1e-4;
    train.batch_size = 64;
    train.epochs = 200;
    train.validation_split = 0.2;
    train.early_stopping_patience = 40;
  }
};

class ProdigyDetector final : public Detector {
 public:
  ProdigyDetector() = default;
  explicit ProdigyDetector(ProdigyConfig config) : config_(std::move(config)) {}

  std::string name() const override { return "Prodigy"; }

  /// Trains on the healthy subset of X (rows with label 0), as §5.4.4:
  /// anomalous rows are removed before training.
  void fit(const tensor::Matrix& X, const std::vector<int>& labels) override;

  /// Trains on data assumed to be all healthy (deployment path).
  void fit_healthy(const tensor::Matrix& X);

  struct UnsupervisedFitReport {
    std::size_t rounds = 0;                       // refinement rounds executed
    std::vector<std::size_t> excluded_per_round;  // rows dropped each round
    std::size_t final_training_size = 0;
    std::vector<std::size_t> kept_indices;        // rows of X the final fit used
  };

  /// The paper's §7 "fully unsupervised pipeline" future-work direction:
  /// trains with NO labels on telemetry that may contain a small fraction of
  /// anomalous samples.  Iteratively trains, drops the `assumed_contamination`
  /// fraction with the highest reconstruction errors (self-labeling the most
  /// suspicious samples), and retrains on the remainder.
  UnsupervisedFitReport fit_unsupervised(const tensor::Matrix& X,
                                         double assumed_contamination = 0.05,
                                         std::size_t refinement_rounds = 2);

  std::vector<double> score(const tensor::Matrix& X) const override;
  std::vector<int> predict(const tensor::Matrix& X) const override;

  double threshold() const noexcept { return threshold_; }
  void set_threshold(double threshold) noexcept { threshold_ = threshold; }

  /// Paper §5.4.4: sweeps candidate thresholds (0..max_error, 1000 steps)
  /// on a labeled validation set and keeps the macro-F1 maximizer.
  double tune_threshold(const tensor::Matrix& X, const std::vector<int>& labels);

  void tune(const tensor::Matrix& X, const std::vector<int>& labels) override {
    tune_threshold(X, labels);
  }

  /// Rebuilds the VAE's fused inference plan at the given precision.
  /// PlanPrecision::Full (the default) is bit-identical to the layerwise
  /// oracle; Bf16/Int8 are the opt-in reduced-precision modes gated by the
  /// F1-delta harness (bench/inference_latency --f1-delta).  Requires a
  /// fitted or loaded model (throws std::logic_error otherwise).
  void set_inference_precision(nn::PlanPrecision precision);
  nn::PlanPrecision inference_precision() const noexcept {
    return model_ ? model_->inference_precision() : nn::PlanPrecision::Full;
  }

  const VariationalAutoencoder& vae() const { return model_.value(); }
  const nn::TrainHistory& history() const noexcept { return history_; }
  const ProdigyConfig& config() const noexcept { return config_; }
  bool fitted() const noexcept { return model_.has_value(); }

  void save(util::BinaryWriter& writer) const;
  static ProdigyDetector load(util::BinaryReader& reader);

 private:
  ProdigyConfig config_;
  std::optional<VariationalAutoencoder> model_;
  nn::TrainHistory history_;
  double threshold_ = 0.0;
};

}  // namespace prodigy::core
