#include "core/prodigy_detector.hpp"

#include "eval/metrics.hpp"
#include "tensor/stats.hpp"
#include "util/metrics.hpp"

#include <stdexcept>

namespace prodigy::core {

namespace {
constexpr std::uint64_t kDetectorMagic = 0x50524f4447593144ULL;  // "PRODGY1D"
}

void ProdigyDetector::fit(const tensor::Matrix& X, const std::vector<int>& labels) {
  if (X.rows() != labels.size()) {
    throw std::invalid_argument("ProdigyDetector::fit: rows != labels");
  }
  std::vector<std::size_t> healthy;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 0) healthy.push_back(i);
  }
  if (healthy.empty()) {
    throw std::invalid_argument("ProdigyDetector::fit: no healthy samples");
  }
  fit_healthy(X.select_rows(healthy));
}

void ProdigyDetector::fit_healthy(const tensor::Matrix& X) {
  util::StageTimer stage("core.prodigy_detector.fit");
  if (X.rows() == 0) {
    throw std::invalid_argument("ProdigyDetector::fit_healthy: empty training set");
  }
  VaeConfig vae_config = config_.vae;
  if (vae_config.input_dim == 0) vae_config.input_dim = X.cols();
  model_.emplace(vae_config);
  history_ = model_->fit(X, config_.train);

  // Threshold = percentile of healthy training reconstruction errors (§3.3).
  const auto errors = model_->reconstruction_error(X);
  threshold_ = tensor::quantile(errors, config_.threshold_percentile / 100.0);
}

ProdigyDetector::UnsupervisedFitReport ProdigyDetector::fit_unsupervised(
    const tensor::Matrix& X, double assumed_contamination,
    std::size_t refinement_rounds) {
  if (assumed_contamination < 0.0 || assumed_contamination >= 0.5) {
    throw std::invalid_argument(
        "fit_unsupervised: contamination must be in [0, 0.5)");
  }
  UnsupervisedFitReport report;
  std::vector<std::size_t> kept(X.rows());
  for (std::size_t i = 0; i < kept.size(); ++i) kept[i] = i;

  // Screening rounds train briefly on purpose: an underfitted VAE has not
  // yet absorbed the rare anomalous modes, so their reconstruction errors
  // still stand out.  Only the final round trains to the full budget.  The
  // guard restores the configured budget even when a fit throws mid-loop;
  // without it an exception would leave the detector stuck at screen_epochs.
  struct EpochsGuard {
    nn::TrainOptions& options;
    std::size_t saved;
    ~EpochsGuard() { options.epochs = saved; }
  };
  const auto full_epochs = config_.train.epochs;
  const EpochsGuard epochs_guard{config_.train, full_epochs};
  const auto screen_epochs = std::max<std::size_t>(20, full_epochs / 4);

  for (std::size_t round = 0; round <= refinement_rounds; ++round) {
    const bool final_round =
        round == refinement_rounds || assumed_contamination == 0.0;
    config_.train.epochs = final_round ? full_epochs : screen_epochs;
    const tensor::Matrix current = X.select_rows(kept);
    fit_healthy(current);
    ++report.rounds;
    if (final_round) break;

    // Self-label: drop the most suspicious fraction and retrain.
    const auto errors = model_->reconstruction_error(current);
    const double cutoff = tensor::quantile(errors, 1.0 - assumed_contamination);
    std::vector<std::size_t> next;
    next.reserve(kept.size());
    for (std::size_t i = 0; i < kept.size(); ++i) {
      if (errors[i] <= cutoff) next.push_back(kept[i]);
    }
    report.excluded_per_round.push_back(kept.size() - next.size());
    if (next.size() == kept.size() || next.size() < 4) {
      // Converged (or would starve): skip straight to the final full fit.
      if (next.size() >= 4) kept = std::move(next);
      round = refinement_rounds - 1;
      continue;
    }
    kept = std::move(next);
  }
  report.final_training_size = kept.size();
  report.kept_indices = std::move(kept);
  return report;
}

void ProdigyDetector::set_inference_precision(nn::PlanPrecision precision) {
  if (!model_) {
    throw std::logic_error(
        "ProdigyDetector::set_inference_precision before fit/load");
  }
  model_->build_inference_plan(precision);
}

std::vector<double> ProdigyDetector::score(const tensor::Matrix& X) const {
  if (!model_) throw std::logic_error("ProdigyDetector::score before fit");
  util::StageTimer stage("core.prodigy_detector.score");
  util::MetricsRegistry::global()
      .counter("prodigy_detector_samples_scored_total")
      .increment(X.rows());
  return model_->reconstruction_error(X);
}

std::vector<int> ProdigyDetector::predict(const tensor::Matrix& X) const {
  const auto errors = score(X);
  std::vector<int> predictions(errors.size());
  for (std::size_t i = 0; i < errors.size(); ++i) {
    predictions[i] = errors[i] > threshold_ ? 1 : 0;
  }
  return predictions;
}

double ProdigyDetector::tune_threshold(const tensor::Matrix& X,
                                       const std::vector<int>& labels) {
  const auto search = eval::best_threshold_by_f1(score(X), labels);
  threshold_ = search.best_threshold;
  return search.best_macro_f1;
}

void ProdigyDetector::save(util::BinaryWriter& writer) const {
  if (!model_) throw std::logic_error("ProdigyDetector::save before fit");
  writer.write_magic(kDetectorMagic, 1);
  writer.write_f64(threshold_);
  writer.write_f64(config_.threshold_percentile);
  model_->save(writer);
}

ProdigyDetector ProdigyDetector::load(util::BinaryReader& reader) {
  reader.expect_magic(kDetectorMagic, 1);
  ProdigyDetector detector;
  detector.threshold_ = reader.read_f64();
  detector.config_.threshold_percentile = reader.read_f64();
  detector.model_ = VariationalAutoencoder::load(reader);
  // Repopulate the architecture config from the persisted model: otherwise a
  // later fit_healthy would train a fresh default-architecture VAE that
  // ignores the loaded input_dim/latent_dim/hidden layout.
  detector.config_.vae = detector.model_->config();
  return detector;
}

}  // namespace prodigy::core
