// Common interface for every anomaly-detection model in the repository —
// Prodigy itself and all the §5.3 baselines — so the evaluation harness and
// the deployment service treat them uniformly.
#pragma once

#include "tensor/matrix.hpp"

#include <string>
#include <vector>

namespace prodigy::core {

class Detector {
 public:
  virtual ~Detector() = default;

  virtual std::string name() const = 0;

  /// Trains the model.  `labels` is the training ground truth; unsupervised
  /// models may use it only to discard anomalous rows (as Prodigy and USAD
  /// do, §5.4.4) or to honour a contamination ratio (IF/LOF); the heuristic
  /// baselines use it directly.
  virtual void fit(const tensor::Matrix& X, const std::vector<int>& labels) = 0;

  /// Per-sample anomaly score; higher means more anomalous.
  virtual std::vector<double> score(const tensor::Matrix& X) const = 0;

  /// Binary predictions (1 = anomalous).
  virtual std::vector<int> predict(const tensor::Matrix& X) const = 0;

  /// Optional threshold calibration on a labeled set.  The paper (§5.4.4)
  /// sweeps thresholds in 0.001 steps and keeps the macro-F1 maximizer for
  /// Prodigy and USAD; models without a tunable threshold ignore this.
  virtual void tune(const tensor::Matrix& /*X*/, const std::vector<int>& /*labels*/) {}
};

}  // namespace prodigy::core
