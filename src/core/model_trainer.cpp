#include "core/model_trainer.hpp"

#include "util/metrics.hpp"

#include <filesystem>
#include <stdexcept>

namespace prodigy::core {

namespace {
constexpr std::uint64_t kMetadataMagic = 0x50524f444d455441ULL;  // "PRODMETA"
}

void DeploymentMetadata::save(util::BinaryWriter& writer) const {
  writer.write_magic(kMetadataMagic, 1);
  writer.write_string(system);
  writer.write_string_vector(feature_names);
  writer.write_u64(selected_columns.size());
  for (const auto column : selected_columns) writer.write_u64(column);
  writer.write_f64(train_anomaly_ratio);
  writer.write_u64(training_samples);
}

DeploymentMetadata DeploymentMetadata::load(util::BinaryReader& reader) {
  reader.expect_magic(kMetadataMagic, 1);
  DeploymentMetadata metadata;
  metadata.system = reader.read_string();
  metadata.feature_names = reader.read_string_vector();
  const auto count = reader.read_u64();
  metadata.selected_columns.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    metadata.selected_columns.push_back(reader.read_u64());
  }
  metadata.train_anomaly_ratio = reader.read_f64();
  metadata.training_samples = reader.read_u64();
  return metadata;
}

tensor::Matrix ModelBundle::transform_full(const tensor::Matrix& full_features) const {
  util::StageTimer stage("core.model_trainer.transform");
  const tensor::Matrix selected = full_features.select_columns(metadata.selected_columns);
  return scaler.transform(selected);
}

std::vector<int> ModelBundle::predict_full(const tensor::Matrix& full_features) const {
  return detector.predict(transform_full(full_features));
}

std::vector<double> ModelBundle::score_full(const tensor::Matrix& full_features) const {
  return detector.score(transform_full(full_features));
}

void ModelBundle::save(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  {
    util::BinaryWriter writer(dir + "/model.bin");
    detector.save(writer);
  }
  {
    util::BinaryWriter writer(dir + "/scaler.bin");
    scaler.save(writer);
  }
  {
    util::BinaryWriter writer(dir + "/metadata.bin");
    metadata.save(writer);
  }
}

ModelBundle ModelBundle::load(const std::string& dir) {
  ModelBundle bundle;
  {
    util::BinaryReader reader(dir + "/model.bin");
    bundle.detector = ProdigyDetector::load(reader);
  }
  {
    util::BinaryReader reader(dir + "/scaler.bin");
    bundle.scaler = pipeline::Scaler::load(reader);
  }
  {
    util::BinaryReader reader(dir + "/metadata.bin");
    bundle.metadata = DeploymentMetadata::load(reader);
  }
  return bundle;
}

ModelBundle ModelTrainer::train(const features::FeatureDataset& train_data,
                                const std::vector<std::size_t>& selected_columns,
                                const std::string& system_name) const {
  if (selected_columns.empty()) {
    throw std::invalid_argument("ModelTrainer::train: no feature columns selected");
  }
  // Keep only healthy rows for scaler fitting and VAE training (§5.4.4).
  std::vector<std::size_t> healthy_rows;
  for (std::size_t i = 0; i < train_data.labels.size(); ++i) {
    if (train_data.labels[i] == 0) healthy_rows.push_back(i);
  }
  if (healthy_rows.empty()) {
    throw std::invalid_argument("ModelTrainer::train: no healthy training rows");
  }

  ModelBundle bundle;
  bundle.scaler = pipeline::Scaler(scaler_kind_);
  const tensor::Matrix healthy =
      train_data.X.select_rows(healthy_rows).select_columns(selected_columns);
  const tensor::Matrix scaled = bundle.scaler.fit_transform(healthy);

  bundle.detector = ProdigyDetector(config_);
  bundle.detector.fit_healthy(scaled);

  bundle.metadata.system = system_name;
  bundle.metadata.selected_columns = selected_columns;
  bundle.metadata.feature_names.reserve(selected_columns.size());
  for (const auto column : selected_columns) {
    bundle.metadata.feature_names.push_back(train_data.feature_names.at(column));
  }
  bundle.metadata.train_anomaly_ratio = train_data.anomaly_ratio();
  bundle.metadata.training_samples = healthy_rows.size();
  return bundle;
}

}  // namespace prodigy::core
