#include "features/registry.hpp"

#include "features/extractors.hpp"
#include "features/fft.hpp"
#include "tensor/stats.hpp"

#include <cmath>

namespace prodigy::features {

namespace {

std::vector<FeatureDef> build_registry() {
  std::vector<FeatureDef> defs;
  auto add = [&defs](std::string name, FeatureFn fn) {
    defs.push_back({std::move(name), std::move(fn)});
  };

  // Descriptive statistics.
  add("sum", [](auto xs) { return tensor::sum(xs); });
  add("mean", [](auto xs) { return tensor::mean(xs); });
  add("median", [](auto xs) { return tensor::median(xs); });
  add("minimum", [](auto xs) { return tensor::min_value(xs); });
  add("maximum", [](auto xs) { return tensor::max_value(xs); });
  add("standard_deviation", [](auto xs) { return tensor::stddev(xs); });
  add("variance", [](auto xs) { return tensor::variance(xs); });
  add("skewness", [](auto xs) { return tensor::skewness(xs); });
  add("kurtosis", [](auto xs) { return tensor::kurtosis(xs); });
  add("range", [](auto xs) { return value_range(xs); });
  add("interquartile_range", [](auto xs) { return interquartile_range(xs); });
  add("variation_coefficient", [](auto xs) { return variation_coefficient(xs); });
  add("root_mean_square", [](auto xs) { return root_mean_square(xs); });
  add("abs_energy", [](auto xs) { return abs_energy(xs); });

  for (const double q : {0.05, 0.1, 0.25, 0.75, 0.9, 0.95}) {
    add("quantile_q" + std::to_string(static_cast<int>(q * 100)),
        [q](auto xs) { return tensor::quantile(xs, q); });
  }

  // Change statistics.
  add("mean_abs_change", [](auto xs) { return mean_abs_change(xs); });
  add("mean_change", [](auto xs) { return mean_change(xs); });
  add("absolute_sum_of_changes", [](auto xs) { return absolute_sum_of_changes(xs); });
  add("mean_second_derivative_central",
      [](auto xs) { return mean_second_derivative_central(xs); });

  // Location of extrema.
  add("first_location_of_maximum", [](auto xs) { return first_location_of_maximum(xs); });
  add("last_location_of_maximum", [](auto xs) { return last_location_of_maximum(xs); });
  add("first_location_of_minimum", [](auto xs) { return first_location_of_minimum(xs); });
  add("last_location_of_minimum", [](auto xs) { return last_location_of_minimum(xs); });

  // Counts, strikes, crossings, peaks.
  add("count_above_mean", [](auto xs) { return count_above_mean(xs); });
  add("count_below_mean", [](auto xs) { return count_below_mean(xs); });
  add("longest_strike_above_mean", [](auto xs) { return longest_strike_above_mean(xs); });
  add("longest_strike_below_mean", [](auto xs) { return longest_strike_below_mean(xs); });
  add("mean_crossing_rate", [](auto xs) { return mean_crossing_rate(xs); });
  for (const std::size_t support : {1u, 3u, 5u}) {
    add("number_peaks_support_" + std::to_string(support),
        [support](auto xs) { return number_peaks(xs, support); });
  }
  for (const double r : {1.0, 2.0, 3.0}) {
    add("ratio_beyond_" + std::to_string(static_cast<int>(r)) + "_sigma",
        [r](auto xs) { return ratio_beyond_r_sigma(xs, r); });
  }

  // Autocorrelation structure.
  for (const std::size_t lag : {1u, 2u, 5u, 10u, 20u}) {
    add("autocorrelation_lag_" + std::to_string(lag),
        [lag](auto xs) { return tensor::autocorrelation(xs, lag); });
  }

  // Nonlinearity / complexity.
  for (const std::size_t lag : {1u, 2u, 3u}) {
    add("c3_lag_" + std::to_string(lag), [lag](auto xs) { return c3(xs, lag); });
  }
  for (const std::size_t lag : {1u, 2u, 3u}) {
    add("time_reversal_asymmetry_lag_" + std::to_string(lag),
        [lag](auto xs) { return time_reversal_asymmetry(xs, lag); });
  }
  add("cid_ce_normalized", [](auto xs) { return cid_ce(xs, true); });
  add("cid_ce", [](auto xs) { return cid_ce(xs, false); });
  add("approximate_entropy_m2_r02",
      [](auto xs) { return approximate_entropy(xs, 2, 0.2); });
  add("binned_entropy_10", [](auto xs) { return binned_entropy(xs, 10); });
  add("benford_correlation", [](auto xs) { return benford_correlation(xs); });

  // Linear trend.
  add("linear_trend_slope", [](auto xs) { return linear_trend(xs).slope; });
  add("linear_trend_intercept", [](auto xs) { return linear_trend(xs).intercept; });
  add("linear_trend_r_squared", [](auto xs) { return linear_trend(xs).r_squared; });

  // Spectral (power spectral density aggregates).
  add("spectral_total_power", [](auto xs) { return spectral_summary(xs).total_power; });
  add("spectral_centroid", [](auto xs) { return spectral_summary(xs).centroid; });
  add("spectral_spread", [](auto xs) { return spectral_summary(xs).spread; });
  add("spectral_entropy", [](auto xs) { return spectral_summary(xs).entropy; });
  add("spectral_peak_frequency",
      [](auto xs) { return spectral_summary(xs).peak_frequency; });
  for (int band = 0; band < 4; ++band) {
    add("spectral_band_power_" + std::to_string(band), [band](auto xs) {
      return spectral_summary(xs).band_power[band];
    });
  }

  return defs;
}

}  // namespace

const std::vector<FeatureDef>& feature_registry() {
  static const std::vector<FeatureDef> registry = build_registry();
  return registry;
}

std::size_t features_per_metric() { return feature_registry().size(); }

std::vector<double> compute_all_features(std::span<const double> series) {
  const auto& registry = feature_registry();
  std::vector<double> values;
  values.reserve(registry.size());
  for (const auto& def : registry) {
    const double value = def.fn(series);
    values.push_back(std::isfinite(value) ? value : 0.0);
  }
  return values;
}

}  // namespace prodigy::features
