#include "features/registry.hpp"

#include "features/extractors.hpp"
#include "features/fft.hpp"
#include "features/kernels.hpp"
#include "features/series_profile.hpp"
#include "tensor/stats.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace prodigy::features {

namespace {

double relative(std::size_t index, std::size_t n) noexcept {
  return n == 0 ? 0.0 : static_cast<double>(index) / static_cast<double>(n);
}

/// Order statistics over a series containing NaN are NaN (the profile's
/// sorted view excludes NaNs, so reading it directly would silently compute
/// quantiles of the truncated finite subset instead).  The final non-finite
/// clamp in compute_all_features turns the NaN into the documented 0.0.
double quantile_or_nan(const SeriesProfile& p, double q) noexcept {
  if (p.nan_count > 0) return std::numeric_limits<double>::quiet_NaN();
  return tensor::quantile_sorted(p.sorted, q);
}

struct GroupBuilder {
  std::vector<FeatureGroup> groups;
  std::vector<FeatureDef> defs;

  void add(std::string group_name, std::vector<std::string> names,
           std::function<void(const SeriesProfile&, double*)> fn) {
    FeatureGroup group;
    group.name = group_name;
    group.first = defs.size();
    group.count = names.size();
    group.fn = std::move(fn);
    for (auto& name : names) defs.push_back({std::move(name), group_name});
    groups.push_back(std::move(group));
  }
};

GroupBuilder build_groups() {
  GroupBuilder b;

  // Descriptive statistics: moments, order statistics, energy.  One sorted
  // copy serves median/IQR; mean/stddev are computed once in the profile.
  b.add("descriptive",
        {"sum", "mean", "median", "minimum", "maximum", "standard_deviation",
         "variance", "skewness", "kurtosis", "range", "interquartile_range",
         "variation_coefficient", "root_mean_square", "abs_energy"},
        [](const SeriesProfile& p, double* out) {
          const auto n = p.n;
          out[0] = p.sum;
          out[1] = p.mean;
          out[2] = quantile_or_nan(p, 0.5);
          out[3] = p.min;
          out[4] = p.max;
          out[5] = p.stddev;
          out[6] = p.variance;
          // One fused z-moment pass replaces the separate skewness and
          // kurtosis loops; the guards replicate tensor::skewness (n >= 3)
          // and tensor::kurtosis (n >= 4, excess -3) exactly.
          out[7] = 0.0;
          out[8] = 0.0;
          if (n >= 3 && p.stddev != 0.0) {
            const auto zm = kernels::zmoment_sums(p.xs, p.mean, p.stddev);
            out[7] = zm.z3 / static_cast<double>(n);
            if (n >= 4) out[8] = zm.z4 / static_cast<double>(n) - 3.0;
          }
          out[9] = n == 0 ? 0.0 : p.max - p.min;
          out[10] = n == 0 ? 0.0
                           : quantile_or_nan(p, 0.75) - quantile_or_nan(p, 0.25);
          out[11] = variation_coefficient(p.mean, p.stddev);
          out[12] = n == 0 ? 0.0
                           : std::sqrt(p.abs_energy / static_cast<double>(n));
          out[13] = p.abs_energy;
        });

  {
    static constexpr double kQuantiles[] = {0.05, 0.1, 0.25, 0.75, 0.9, 0.95};
    std::vector<std::string> names;
    for (const double q : kQuantiles) {
      names.push_back("quantile_q" + std::to_string(static_cast<int>(q * 100)));
    }
    b.add("quantiles", std::move(names), [](const SeriesProfile& p, double* out) {
      for (std::size_t i = 0; i < std::size(kQuantiles); ++i) {
        out[i] = quantile_or_nan(p, kQuantiles[i]);
      }
    });
  }

  // Change statistics; |dx| is summed once in the profile.
  b.add("changes",
        {"mean_abs_change", "mean_change", "absolute_sum_of_changes",
         "mean_second_derivative_central"},
        [](const SeriesProfile& p, double* out) {
          const auto n = p.n;
          out[0] = n < 2 ? 0.0
                         : p.abs_change_sum / static_cast<double>(n - 1);
          out[1] = n < 2 ? 0.0
                         : (p.xs.back() - p.xs.front()) /
                               static_cast<double>(n - 1);
          out[2] = n < 2 ? 0.0 : p.abs_change_sum;
          out[3] = n < 3 ? 0.0
                         : kernels::second_derivative_sum(p.xs) /
                               static_cast<double>(n - 2);
        });

  b.add("extrema_location",
        {"first_location_of_maximum", "last_location_of_maximum",
         "first_location_of_minimum", "last_location_of_minimum"},
        [](const SeriesProfile& p, double* out) {
          out[0] = relative(p.first_max, p.n);
          out[1] = relative(p.last_max, p.n);
          out[2] = relative(p.first_min, p.n);
          out[3] = relative(p.last_min, p.n);
        });

  // Counts, strikes, crossings relative to the mean: one profile pass.
  b.add("mean_runs",
        {"count_above_mean", "count_below_mean", "longest_strike_above_mean",
         "longest_strike_below_mean", "mean_crossing_rate"},
        [](const SeriesProfile& p, double* out) {
          const double n = static_cast<double>(p.n);
          out[0] = p.n == 0 ? 0.0 : static_cast<double>(p.count_above) / n;
          out[1] = p.n == 0 ? 0.0 : static_cast<double>(p.count_below) / n;
          out[2] = p.n == 0 ? 0.0 : static_cast<double>(p.longest_above) / n;
          out[3] = p.n == 0 ? 0.0 : static_cast<double>(p.longest_below) / n;
          out[4] = p.n < 2 ? 0.0
                           : static_cast<double>(p.crossings) / (n - 1.0);
        });

  {
    std::vector<std::string> names;
    for (const auto support : kPeakSupports) {
      names.push_back("number_peaks_support_" + std::to_string(support));
    }
    b.add("peaks", std::move(names), [](const SeriesProfile& p, double* out) {
      if (p.rolling && p.rolling->has_peaks) {
        for (std::size_t i = 0; i < kPeakSupportCount; ++i) {
          out[i] = p.rolling->peaks[i];
        }
        return;
      }
      for (std::size_t i = 0; i < kPeakSupportCount; ++i) {
        out[i] = number_peaks(p.xs, kPeakSupports[i]);
      }
    });
  }

  {
    static constexpr double kSigmas[] = {1.0, 2.0, 3.0};
    std::vector<std::string> names;
    for (const double r : kSigmas) {
      names.push_back("ratio_beyond_" + std::to_string(static_cast<int>(r)) +
                      "_sigma");
    }
    b.add("sigma_ratios", std::move(names),
          [](const SeriesProfile& p, double* out) {
            // Same guards and threshold expression (r * stddev, rounded
            // once) as ratio_beyond_r_sigma; the count is an integer, so
            // the vectorized tally is bit-exact.
            for (std::size_t i = 0; i < std::size(kSigmas); ++i) {
              if (p.n == 0 || p.stddev == 0.0) {
                out[i] = 0.0;
                continue;
              }
              const std::size_t count = kernels::count_beyond(
                  p.xs, p.mean, kSigmas[i] * p.stddev);
              out[i] = static_cast<double>(count) / static_cast<double>(p.n);
            }
          });
  }

  {
    static constexpr std::size_t kLags[] = {1, 2, 5, 10, 20};
    std::vector<std::string> names;
    for (const auto lag : kLags) {
      names.push_back("autocorrelation_lag_" + std::to_string(lag));
    }
    b.add("autocorrelation", std::move(names),
          [](const SeriesProfile& p, double* out) {
            // One lane-kernel pass per lag.  The lag-offset product stream
            // stays in i-ascending order inside each lane, so the result
            // tracks the standalone tensor::autocorrelation oracle within
            // the parity tolerance (the lane tree rounds ~1 ulp apart from
            // the serial chain, same as every other kernel reduction).
            const std::size_t n = p.n;
            for (std::size_t l = 0; l < std::size(kLags); ++l) {
              const std::size_t lag = kLags[l];
              out[l] = n <= lag + 1 || p.variance == 0.0
                           ? 0.0
                           : kernels::centered_lag_mac(p.xs, p.mean, lag) /
                                 (static_cast<double>(n - lag) * p.variance);
            }
          });
  }

  b.add("nonlinearity",
        {"c3_lag_1", "c3_lag_2", "c3_lag_3", "time_reversal_asymmetry_lag_1",
         "time_reversal_asymmetry_lag_2", "time_reversal_asymmetry_lag_3",
         "cid_ce_normalized", "cid_ce"},
        [](const SeriesProfile& p, double* out) {
          for (std::size_t lag = 1; lag <= 3; ++lag) {
            // c3 and time_reversal_asymmetry share the same index window;
            // the fused kernel feeds both accumulators with the standalone
            // extractors' per-term arithmetic.
            if (p.n < 2 * lag + 1) {
              out[lag - 1] = 0.0;
              out[lag + 2] = 0.0;
              continue;
            }
            const std::size_t terms = p.n - 2 * lag;
            const auto s = kernels::c3_tr_sums(p.xs, lag);
            out[lag - 1] = s.c3 / static_cast<double>(terms);
            out[lag + 2] = s.tr / static_cast<double>(terms);
          }
          // cid_ce's guards, per-element normalization, and final sqrt,
          // with the squared-difference sums through the lane kernels.
          out[6] = p.n < 2 || p.stddev == 0.0
                       ? 0.0
                       : std::sqrt(kernels::sq_zchange_sum(p.xs, p.mean,
                                                           p.stddev));
          out[7] = p.n < 2 ? 0.0 : std::sqrt(kernels::sq_change_sum(p.xs));
        });

  b.add("entropy",
        {"approximate_entropy_m2_r02", "binned_entropy_10",
         "benford_correlation"},
        [](const SeriesProfile& p, double* out) {
          out[0] = approximate_entropy(p.xs, 2, 0.2);
          // Clean windows take the sorted-search variant (bit-identical
          // counts); NaN/inf windows keep the historical scatter scan.
          out[1] = p.n == 0 ? 0.0
                   : p.nan_count == 0 && std::isfinite(p.min) &&
                           std::isfinite(p.max)
                       ? binned_entropy_sorted(p.sorted, 10, p.min, p.max)
                       : binned_entropy(p.xs, 10, p.min, p.max);
          out[2] = p.rolling && p.rolling->has_benford ? p.rolling->benford
                                                       : benford_correlation(p.xs);
        });

  b.add("linear_trend",
        {"linear_trend_slope", "linear_trend_intercept",
         "linear_trend_r_squared"},
        [](const SeriesProfile& p, double* out) {
          out[0] = p.trend.slope;
          out[1] = p.trend.intercept;
          out[2] = p.trend.r_squared;
        });

  b.add("spectral",
        {"spectral_total_power", "spectral_centroid", "spectral_spread",
         "spectral_entropy", "spectral_peak_frequency",
         "spectral_band_power_0", "spectral_band_power_1",
         "spectral_band_power_2", "spectral_band_power_3"},
        [](const SeriesProfile& p, double* out) {
          out[0] = p.spectral.total_power;
          out[1] = p.spectral.centroid;
          out[2] = p.spectral.spread;
          out[3] = p.spectral.entropy;
          out[4] = p.spectral.peak_frequency;
          for (int band = 0; band < 4; ++band) {
            out[5 + band] = p.spectral.band_power[band];
          }
        });

  return b;
}

const GroupBuilder& builder() {
  static const GroupBuilder instance = build_groups();
  return instance;
}

}  // namespace

const std::vector<FeatureDef>& feature_registry() { return builder().defs; }

const std::vector<FeatureGroup>& feature_groups() { return builder().groups; }

std::size_t features_per_metric() { return feature_registry().size(); }

void compute_features_from_profile(const SeriesProfile& profile,
                                   std::span<double> out) {
  if (out.size() != features_per_metric()) {
    throw std::invalid_argument(
        "compute_features_from_profile: bad output size");
  }
  for (const auto& group : feature_groups()) {
    group.fn(profile, out.data() + group.first);
  }
  for (double& value : out) {
    if (!std::isfinite(value)) value = 0.0;
  }
}

void compute_all_features(std::span<const double> series, std::span<double> out,
                          FeatureScratch& scratch) {
  const SeriesProfile profile = compute_series_profile(series, scratch);
  compute_features_from_profile(profile, out);
}

std::vector<double> compute_all_features(std::span<const double> series) {
  std::vector<double> values(features_per_metric(), 0.0);
  FeatureScratch scratch;
  compute_all_features(series, values, scratch);
  return values;
}

}  // namespace prodigy::features
