// SIMD kernel library for the feature-extraction inner loops.
//
// PR 6's incremental engine left a handful of intentionally-exact O(W)
// passes on the per-emission path: approximate entropy's symmetric pair
// sweep, the linear aggregates (sum/energy/variance/|dx|), the
// mean-relative run statistics, the trend/moment/autocorrelation
// accumulators, and the sliding-DFT apply loop.  This TU vectorizes them
// with the same per-TU discipline as tensor/kernels.cpp: compiled with its
// own -march (PRODIGY_FEATURE_ARCH, defaulting to PRODIGY_KERNEL_ARCH),
// -ffp-contract=off so no FMA contraction can change results between the
// vector and scalar paths, and a portable scalar fallback under
// PRODIGY_NO_SIMD.
//
// Determinism contract
// --------------------
// Every kernel's result is a pure function of its inputs — independent of
// ISA, vector width, and build flags:
//
//  * Integer kernels (ApEn match counts, run statistics, sigma counts,
//    peak-flag counts) tally order-invariant integers; any iteration order
//    produces identical counts, so the SIMD path is bit-identical to the
//    verbatim historical loop kept as its scalar oracle.
//  * Floating-point reductions use kSumLanes fixed partial sums: element i
//    always lands in lane i % kSumLanes and lanes are folded in ascending
//    lane order.  That arithmetic DAG is the contract — the "SIMD" and
//    "scalar" builds evaluate the same tree, so results are EXPECT_EQ-equal
//    across every build mode.  (The lane tree rounds differently from the
//    historical serial chain by ~1 ulp per partial; the batch and
//    incremental paths both route through these kernels, which is what
//    keeps them bit-exact against each other.)
//  * The sliding-DFT apply vectorizes across bins while preserving each
//    bin's delta-ascending accumulation order, so it too is bit-identical
//    to its scalar oracle.
//
// The dispatch seam: each public entry point runs the vector path unless
// force_scalar(true) was called (tests and the before/after bench gauges
// flip it); the *_scalar twins are always available for direct comparison.
#pragma once

#include "util/aligned.hpp"

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace prodigy::features::kernels {

/// Fixed partial-sum fan-out for every floating-point reduction.  Part of
/// the numeric contract — changing it changes feature bits.
inline constexpr std::size_t kSumLanes = 16;

/// When true, every dispatching kernel below runs its scalar oracle
/// instead of the vector path.  Not thread-synchronized: flip it only from
/// single-threaded test/bench setup code.
void force_scalar(bool on) noexcept;
bool scalar_forced() noexcept;

// ---------------------------------------------------------------------------
// Linear aggregates (SeriesProfile pass 1/2/3 and the per-emission pass).

struct SumEnergy {
  double sum = 0.0;
  double energy = 0.0;  // sum of x^2
};

/// One interleaved pass: sum(x) and sum(x^2), kSumLanes partial sums each.
SumEnergy sum_energy(std::span<const double> xs) noexcept;
SumEnergy sum_energy_scalar(std::span<const double> xs) noexcept;

/// Lane-structured sum(x) (linear_trend's mean uses it).
double lane_sum(std::span<const double> xs) noexcept;
double lane_sum_scalar(std::span<const double> xs) noexcept;

/// Sum of (i * scale) * xs[i] — the spectral centroid numerator with
/// scale = 1 / bins (per-element frequency times power).
double freq_weighted_sum(std::span<const double> xs, double scale) noexcept;
double freq_weighted_sum_scalar(std::span<const double> xs,
                                double scale) noexcept;

/// Sum of (i * scale - center)^2 * xs[i] — the spectral spread numerator
/// around a known centroid.
double freq_spread_sum(std::span<const double> xs, double scale,
                       double center) noexcept;
double freq_spread_sum_scalar(std::span<const double> xs, double scale,
                              double center) noexcept;

/// Variance numerator sum((x - mean)^2); caller divides by n.
double centered_sq_sum(std::span<const double> xs, double mean) noexcept;
double centered_sq_sum_scalar(std::span<const double> xs,
                              double mean) noexcept;

/// sum |x[i] - x[i-1]| over successive pairs.
double abs_change_sum(std::span<const double> xs) noexcept;
double abs_change_sum_scalar(std::span<const double> xs) noexcept;

/// sum (x[i] - x[i-1])^2 — cid_ce's unnormalized accumulator.
double sq_change_sum(std::span<const double> xs) noexcept;
double sq_change_sum_scalar(std::span<const double> xs) noexcept;

/// cid_ce's normalized accumulator: z[i] = (x[i] - mean) / stddev,
/// sum (z[i] - z[i-1])^2 with the standalone extractor's per-element ops.
double sq_zchange_sum(std::span<const double> xs, double mean,
                      double stddev) noexcept;
double sq_zchange_sum_scalar(std::span<const double> xs, double mean,
                             double stddev) noexcept;

/// Central second differences: sum 0.5 * (x[i+1] - 2 x[i] + x[i-1]).
double second_derivative_sum(std::span<const double> xs) noexcept;
double second_derivative_sum_scalar(std::span<const double> xs) noexcept;

struct ZMoments {
  double z3 = 0.0;  // sum ((x - mean)/stddev)^3
  double z4 = 0.0;  // sum ((x - mean)/stddev)^4
};

/// Standardized third/fourth moment sums (skewness/kurtosis numerators).
ZMoments zmoment_sums(std::span<const double> xs, double mean,
                      double stddev) noexcept;
ZMoments zmoment_sums_scalar(std::span<const double> xs, double mean,
                             double stddev) noexcept;

struct TrendSums {
  double stx = 0.0;  // sum dt * dx
  double stt = 0.0;  // sum dt * dt
  double sxx = 0.0;  // sum dx * dx
};

/// Least-squares accumulators for linear_trend: dt = i - t_mean,
/// dx = x[i] - x_mean.
TrendSums trend_sums(std::span<const double> xs, double t_mean,
                     double x_mean) noexcept;
TrendSums trend_sums_scalar(std::span<const double> xs, double t_mean,
                            double x_mean) noexcept;

/// sum (x[i] - mean) * (x[i + lag] - mean) over i in [0, n - lag).
double centered_lag_mac(std::span<const double> xs, double mean,
                        std::size_t lag) noexcept;
double centered_lag_mac_scalar(std::span<const double> xs, double mean,
                               std::size_t lag) noexcept;

struct C3TrSums {
  double c3 = 0.0;  // sum x[i+2L] * x[i+L] * x[i]
  double tr = 0.0;  // sum x[i+2L]^2 * x[i+L] - x[i+L] * x[i]^2
};

/// Fused c3 / time-reversal-asymmetry accumulators over i in
/// [0, n - 2*lag); requires n >= 2*lag + 1 (callers guard).
C3TrSums c3_tr_sums(std::span<const double> xs, std::size_t lag) noexcept;
C3TrSums c3_tr_sums_scalar(std::span<const double> xs,
                           std::size_t lag) noexcept;

// ---------------------------------------------------------------------------
// Integer window statistics (order-invariant counts: bit-exact by
// construction under any vector width).

struct RunStats {
  std::size_t count_above = 0;
  std::size_t count_below = 0;
  std::size_t longest_above = 0;
  std::size_t longest_below = 0;
  std::size_t crossings = 0;
};

/// Mean-relative counts, longest strikes, and sign crossings.  NaN
/// elements compare false on both sides of the mean (neither above nor
/// below), exactly like the historical branch pair.
RunStats run_stats(std::span<const double> xs, double mean);
RunStats run_stats_scalar(std::span<const double> xs, double mean) noexcept;

/// Count of |x - mean| > threshold (ratio_beyond_r_sigma numerator).
std::size_t count_beyond(std::span<const double> xs, double mean,
                         double threshold) noexcept;
std::size_t count_beyond_scalar(std::span<const double> xs, double mean,
                                double threshold) noexcept;

/// Count of flag bytes with `bit` set — the rolling peak-count tally over
/// one contiguous ring segment.
std::size_t count_flag_bits(std::span<const std::uint8_t> flags,
                            std::uint8_t bit) noexcept;
std::size_t count_flag_bits_scalar(std::span<const std::uint8_t> flags,
                                   std::uint8_t bit) noexcept;

// ---------------------------------------------------------------------------
// Approximate entropy's symmetric pair sweep.

/// Reused lane buffers for the sweep (thread_local at the call site).
struct ApEnScratch {
  std::vector<std::pair<double, std::uint32_t>> order;
  util::AlignedVec<double> vals;  // sorted first components, lane-contiguous
  util::AlignedVec<double> next;  // level-major: series[idx + k], k = 1..m
  std::vector<std::uint32_t> idxs;
  util::AlignedVec<std::uint32_t> mask;       // per-diagonal dim-m matches
  util::AlignedVec<std::uint32_t> maskh;      // per-diagonal dim-(m+1)
  util::AlignedVec<std::uint32_t> lo_by_pos;  // deferred counts, sort order
  util::AlignedVec<std::uint32_t> hi_by_pos;
};

/// Fills matches_lo/matches_hi (pre-seeded with the self-match 1) with the
/// exact integer pair-match counts for embedding dims m and m+1: pair
/// (i, j) matches at dim m when every component distance
/// |series[i+k] - series[j+k]|, k < m, passes !(d > r), and at dim m+1 when
/// the next component also agrees (tested only while both windows exist,
/// max(i,j) < matches_hi.size()).  The negated predicate is the historical
/// NaN semantics; r must be finite (approximate_entropy short-circuits
/// non-finite r before sweeping, which also keeps NaN out of the sort).
/// matches_lo.size() must be series.size() - m + 1 and matches_hi.size()
/// one less.  Counts are integers, so the SIMD lane sweep is bit-identical
/// to the scalar run scan.
void apen_match_counts(std::span<const double> series, std::size_t m,
                       double r, std::span<std::uint32_t> matches_lo,
                       std::span<std::uint32_t> matches_hi,
                       ApEnScratch& scratch);
void apen_match_counts_scalar(std::span<const double> series, std::size_t m,
                              double r, std::span<std::uint32_t> matches_lo,
                              std::span<std::uint32_t> matches_hi,
                              ApEnScratch& scratch);

// ---------------------------------------------------------------------------
// Sliding-DFT apply.

/// Applies the pending deltas to every bin: for delta j (sample at global
/// ring position u0 + j), bin_re/bin_im[k] += deltas[j] * w^{k * (u0+j)},
/// with the exact twiddle table w^t split into planar tw_re/tw_im arrays of
/// length w (a power of two; indices reduce with & (w - 1)).  Zero deltas
/// are skipped (they add +0.0, indistinguishable downstream).  The delta
/// loop stays outer and the bin loop vectorizes, so each bin sees its
/// deltas in ascending-j order — bit-identical to the scalar
/// strength-reduced loop.
void sdft_apply(double* bin_re, double* bin_im, std::size_t nbins,
                const double* tw_re, const double* tw_im, std::uint32_t w,
                std::size_t u0, std::span<const double> deltas) noexcept;
void sdft_apply_scalar(double* bin_re, double* bin_im, std::size_t nbins,
                       const double* tw_re, const double* tw_im,
                       std::uint32_t w, std::size_t u0,
                       std::span<const double> deltas) noexcept;

}  // namespace prodigy::features::kernels
